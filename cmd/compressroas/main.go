// Command compressroas is the repository's drop-in equivalent of the
// paper's compress_roas utility (§7.1): it reads a list of (prefix,
// maxLength, ASN) tuples — from a VRP CSV or by cryptographically scanning a
// .roa repository directory — compresses it with the trie algorithm, and
// writes the compressed CSV. With -verify it proves the output authorizes
// exactly the same routes as the input.
//
// Usage:
//
//	compressroas [-in vrps.csv | -repo dir] [-out out.csv] [-mode strict|literal]
//	             [-subsume] [-verify] [-stats] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/rpkix"
)

func main() {
	var (
		in       = flag.String("in", "", "input VRP CSV file ('-' for stdin)")
		repoDir  = flag.String("repo", "", "scan a signed .roa repository directory instead of reading CSV")
		out      = flag.String("out", "-", "output CSV file ('-' for stdout)")
		mode     = flag.String("mode", "strict", "compression mode: strict (semantics-preserving) or literal (paper's Algorithm 1 verbatim)")
		subsume  = flag.Bool("subsume", false, "also delete tuples subsumed by an ancestor tuple")
		verify   = flag.Bool("verify", true, "verify the output authorizes exactly the input's routes")
		stats    = flag.Bool("stats", false, "print compression statistics to stderr")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "build/compress/extract that many tries concurrently (1 = sequential)")
	)
	flag.Parse()
	if err := run(*in, *repoDir, *out, *mode, *subsume, *verify, *stats, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "compressroas:", err)
		os.Exit(1)
	}
}

func run(in, repoDir, out, mode string, subsume, verify, stats bool, parallel int) error {
	set, err := load(in, repoDir)
	if err != nil {
		return err
	}
	opts := core.Options{Subsumption: subsume, Parallelism: parallel}
	switch mode {
	case "strict":
		opts.Mode = core.Strict
	case "literal":
		opts.Mode = core.Literal
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	start := time.Now()
	compressed, res := core.Compress(set, opts)
	elapsed := time.Since(start)
	if verify {
		if err := core.VerifyCompression(set, compressed); err != nil {
			if opts.Mode == core.Literal {
				fmt.Fprintf(os.Stderr, "compressroas: WARNING (literal mode): %v\n", err)
			} else {
				return err
			}
		}
	}
	if stats {
		fmt.Fprintf(os.Stderr, "compressroas: %d -> %d tuples (%.2f%% saved) in %v; merged=%d subsumed=%d raised=%d tries=%d\n",
			res.In, res.Out, 100*res.SavedFraction(), elapsed.Round(time.Millisecond),
			res.Merged, res.Subsumed, res.Raised, res.TrieCount)
	}
	return save(out, compressed)
}

func load(in, repoDir string) (*rpki.Set, error) {
	switch {
	case repoDir != "":
		res, err := rpkix.ScanROAs(repoDir)
		if err != nil {
			return nil, err
		}
		for name, err := range res.Rejected {
			fmt.Fprintf(os.Stderr, "compressroas: rejected %s: %v\n", name, err)
		}
		return res.VRPs, nil
	case in == "-":
		return rpki.ReadCSV(os.Stdin)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rpki.ReadCSV(f)
	default:
		return nil, fmt.Errorf("one of -in or -repo is required")
	}
}

func save(out string, set *rpki.Set) error {
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rpki.WriteCSV(w, set)
}
