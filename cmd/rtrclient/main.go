// Command rtrclient plays the router side of Figure 1: it connects to an
// RPKI-to-Router cache, synchronizes the validated prefix table, prints it
// as CSV, and (with -follow) keeps applying incremental updates as the cache
// announces them — surviving cache restarts through the reconnect
// supervisor, which redials with backoff and resumes the session with a
// Serial Query (falling back to a full resync only when the cache forces
// it). Without -follow the command is one-shot: a single dial and sync,
// exiting with an error if the cache is unreachable.
//
// Usage:
//
//	rtrclient [-cache 127.0.0.1:8282] [-follow] [-version 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync/atomic"

	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rtr"
)

func main() {
	var (
		cache   = flag.String("cache", "127.0.0.1:8282", "cache address")
		follow  = flag.Bool("follow", false, "stay connected and apply serial updates, reconnecting across cache restarts")
		version = flag.Int("version", 1, "protocol version (0 or 1)")
	)
	flag.Parse()
	var protoVersion byte
	switch *version {
	case 0:
		protoVersion = rtr.Version0
	case 1:
		protoVersion = rtr.Version1
	default:
		log.Fatalf("rtrclient: bad -version %d", *version)
	}

	if !*follow {
		// One-shot: a single dial and sync, failing fast — scripts piping
		// the CSV need an exit code, not an endless redial loop.
		c, err := rtr.Dial(*cache)
		if err != nil {
			log.Fatalf("rtrclient: %v", err)
		}
		defer c.Close()
		c.Version = protoVersion
		serial, err := c.Sync()
		if err != nil {
			log.Fatalf("rtrclient: sync: %v", err)
		}
		log.Printf("rtrclient: synchronized %d VRPs at serial %d (session %#x)",
			c.Len(), serial, c.SessionID())
		if err := rpki.WriteCSV(os.Stdout, c.Set()); err != nil {
			log.Fatalf("rtrclient: %v", err)
		}
		return
	}

	// Follow mode: the reconnect supervisor owns the session lifecycle.
	// The validation index follows the protocol's deltas in place (O(delta)
	// per update) instead of being rebuilt from the table after every sync.
	// The supervisor re-registers the subscribers on every reconnect and
	// seeds each new client with the carried table, so the delta stream
	// stays continuous across cache restarts; only when the carried state
	// expires during an outage is the index reset to the full table.
	// The counters are atomic: the subscriber runs on the client's dispatch
	// goroutine while the follow loop reads them from this one.
	live := rov.NewLiveIndex(rpki.NewSet(nil))
	var announced, withdrawn atomic.Int64

	sup := rtr.NewSupervisor(func() (net.Conn, error) { return net.Dial("tcp", *cache) })
	sup.Version = protoVersion
	sup.Logf = func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	sup.Subscribe(func(ann, wd []rpki.VRP) {
		live.Apply(ann, wd)
		announced.Add(int64(len(ann)))
		withdrawn.Add(int64(len(wd)))
	})
	sup.OnReset(live.ResetTo)
	updates := make(chan rtr.Serial, 64)
	sup.OnUpdate = func(serial rtr.Serial) {
		// Never block the supervisor: dropping an update only skips a log
		// line — the table and index are already current.
		select {
		case updates <- serial:
		default:
		}
	}

	runErr := make(chan error, 1)
	go func() { runErr <- sup.Run() }()

	// First successful sync: print the table. The LiveIndex is the source —
	// the client generation that produced the sync may already be gone (the
	// supervisor could be mid-redial), but the index carries the table.
	var serial rtr.Serial
	select {
	case serial = <-updates:
	case err := <-runErr:
		log.Fatalf("rtrclient: %v", err)
	}
	table := rpki.NewSet(live.Snapshot().AppendVRPs(nil))
	log.Printf("rtrclient: synchronized %d VRPs at serial %d", table.Len(), serial)
	if err := rpki.WriteCSV(os.Stdout, table); err != nil {
		log.Fatalf("rtrclient: %v", err)
	}
	for serial := range updates {
		st := sup.Stats()
		fmt.Fprintf(os.Stderr, "# update: synced to %d, %d VRPs (+%d -%d applied since start; %d dials, %d serial resumes, %d reset fallbacks, %d rebuilds)\n",
			serial, live.Len(), announced.Load(), withdrawn.Load(), st.Dials, st.SerialResumes, st.ResetFallbacks, st.Rebuilds)
	}
}
