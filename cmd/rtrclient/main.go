// Command rtrclient plays the router side of Figure 1: it connects to an
// RPKI-to-Router cache, synchronizes the validated prefix table, prints it
// as CSV, and (with -follow) keeps applying incremental updates as the cache
// announces them.
//
// Usage:
//
//	rtrclient [-cache 127.0.0.1:8282] [-follow] [-version 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rtr"
)

func main() {
	var (
		cache   = flag.String("cache", "127.0.0.1:8282", "cache address")
		follow  = flag.Bool("follow", false, "stay connected and apply serial updates")
		version = flag.Int("version", 1, "protocol version (0 or 1)")
	)
	flag.Parse()
	c, err := rtr.Dial(*cache)
	if err != nil {
		log.Fatalf("rtrclient: %v", err)
	}
	defer c.Close()
	switch *version {
	case 0:
		c.Version = rtr.Version0
	case 1:
		c.Version = rtr.Version1
	default:
		log.Fatalf("rtrclient: bad -version %d", *version)
	}
	// The validation index follows the protocol's deltas in place (O(delta)
	// per update) instead of being rebuilt from the table after every sync.
	// The client's dispatch loop delivers each applied delta to every
	// subscriber sequentially, so the index and the counters below stay
	// consistent with each other without any locking.
	live := rov.NewLiveIndex(rpki.NewSet(nil))
	c.Subscribe(func(announced, withdrawn []rpki.VRP) {
		live.Apply(announced, withdrawn)
	})
	var announced, withdrawn int
	c.Subscribe(func(ann, wd []rpki.VRP) {
		announced += len(ann)
		withdrawn += len(wd)
	})
	serial, err := c.Sync()
	if err != nil {
		log.Fatalf("rtrclient: sync: %v", err)
	}
	log.Printf("rtrclient: synchronized %d VRPs at serial %d (session %#x)",
		c.Len(), serial, c.SessionID())
	if err := rpki.WriteCSV(os.Stdout, c.Set()); err != nil {
		log.Fatalf("rtrclient: %v", err)
	}
	if !*follow {
		return
	}
	for {
		notified, err := c.WaitNotify()
		if err != nil {
			log.Fatalf("rtrclient: notify: %v", err)
		}
		serial, err := c.Sync()
		if err != nil {
			log.Fatalf("rtrclient: sync: %v", err)
		}
		fmt.Fprintf(os.Stderr, "# update: notify serial %d, synced to %d, %d VRPs (+%d -%d applied since start, live index updated in place)\n",
			notified, serial, live.Len(), announced, withdrawn)
	}
}
