// Command rtrclient plays the router side of Figure 1: it connects to an
// RPKI-to-Router cache, synchronizes the validated prefix table, prints it
// as CSV, and (with -follow) keeps applying incremental updates as the cache
// announces them. -cache accepts a comma-separated list of cache addresses
// in preference order: follow mode runs the multi-cache failover supervisor,
// which serves from the most preferred reachable cache, fails over when it
// dies, fails back when it recovers, and delivers every switch to the local
// table as a structural delta rather than a rebuild. On SIGINT the client
// prints per-cache failover/failback statistics before exiting. Without
// -follow the command is one-shot: the addresses are tried in order and the
// first reachable cache is synchronized once, exiting with an error if none
// answers.
//
// Usage:
//
//	rtrclient [-cache 127.0.0.1:8282,127.0.0.1:8283] [-follow] [-version 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"

	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rtr"
)

// parseCaches splits the -cache flag into a preference-ordered address list.
func parseCaches(flagValue string) []string {
	var addrs []string
	for _, a := range strings.Split(flagValue, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func main() {
	var (
		cache   = flag.String("cache", "127.0.0.1:8282", "comma-separated cache addresses in preference order")
		follow  = flag.Bool("follow", false, "stay connected and apply serial updates, failing over across caches and reconnecting across restarts")
		version = flag.Int("version", 1, "protocol version (0 or 1)")
	)
	flag.Parse()
	var protoVersion byte
	switch *version {
	case 0:
		protoVersion = rtr.Version0
	case 1:
		protoVersion = rtr.Version1
	default:
		log.Fatalf("rtrclient: bad -version %d", *version)
	}
	addrs := parseCaches(*cache)
	if len(addrs) == 0 {
		log.Fatal("rtrclient: -cache names no addresses")
	}

	if !*follow {
		// One-shot: try the caches in preference order, sync the first that
		// answers, and fail fast — scripts piping the CSV need an exit code,
		// not an endless redial loop.
		var lastErr error
		for _, addr := range addrs {
			c, err := rtr.Dial(addr)
			if err != nil {
				lastErr = err
				fmt.Fprintf(os.Stderr, "# cache %s unreachable: %v\n", addr, err)
				continue
			}
			c.Version = protoVersion
			serial, err := c.Sync()
			if err != nil {
				lastErr = err
				c.Close()
				fmt.Fprintf(os.Stderr, "# cache %s sync failed: %v\n", addr, err)
				continue
			}
			log.Printf("rtrclient: synchronized %d VRPs from %s at serial %d (session %#x)",
				c.Len(), addr, serial, c.SessionID())
			err = rpki.WriteCSV(os.Stdout, c.Set())
			c.Close()
			if err != nil {
				log.Fatalf("rtrclient: %v", err)
			}
			return
		}
		log.Fatalf("rtrclient: no cache reachable: %v", lastErr)
	}

	// Follow mode: the multi-cache supervisor owns the session lifecycles —
	// one reconnect supervisor per cache, the most preferred healthy one
	// serving. The validation index follows the delta stream in place
	// (O(delta) per update); a cache switch arrives as the structural diff
	// between the carried table and the new cache's table, so the index is
	// reset to a full table only when every cache was out past the Expire
	// window. The counters are atomic: the subscriber runs on supervisor
	// goroutines while the follow loop reads them from this one.
	live := rov.NewLiveIndex(rpki.NewSet(nil))
	var announced, withdrawn atomic.Int64

	ups := make([]rtr.Upstream, 0, len(addrs))
	for _, addr := range addrs {
		addr := addr
		ups = append(ups, rtr.Upstream{
			Name: addr,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		})
	}
	m := rtr.NewMultiSupervisor(ups...)
	m.Version = protoVersion
	m.Logf = func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	m.Subscribe(func(ann, wd []rpki.VRP) {
		live.Apply(ann, wd)
		announced.Add(int64(len(ann)))
		withdrawn.Add(int64(len(wd)))
	})
	m.OnReset(live.ResetTo)
	updates := make(chan rtr.Serial, 64)
	m.OnUpdate = func(serial rtr.Serial) {
		// Never block the supervisor: dropping an update only skips a log
		// line — the table and index are already current.
		select {
		case updates <- serial:
		default:
		}
	}

	runErr := make(chan error, 1)
	go func() { runErr <- m.Run() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)

	// First successful sync: print the table. The LiveIndex is the source —
	// the client generation that produced the sync may already be gone (the
	// supervisor could be mid-redial), but the index carries the table.
	select {
	case serial := <-updates:
		table := rpki.NewSet(live.Snapshot().AppendVRPs(nil))
		log.Printf("rtrclient: synchronized %d VRPs at serial %d", table.Len(), serial)
		if err := rpki.WriteCSV(os.Stdout, table); err != nil {
			log.Fatalf("rtrclient: %v", err)
		}
	case <-sigc:
		printStats(m)
		return
	case err := <-runErr:
		log.Fatalf("rtrclient: %v", err)
	}
	for {
		select {
		case serial := <-updates:
			st := m.Stats()
			active := "none"
			if a := m.Active(); a >= 0 && a < len(st.Upstreams) {
				active = st.Upstreams[a].Name
			}
			// Which structure a validation query would hit right now: the
			// path-compressed index when the table has been quiet long enough
			// for a compaction to republish it, the bit trie in between.
			engine := "bit-trie"
			if live.CompactSnapshot() != nil {
				engine = "compact"
			}
			fmt.Fprintf(os.Stderr, "# update: synced to %d via %s, %d VRPs (+%d -%d applied since start; %d switches, %d rebuilds; serving from %s index)\n",
				serial, active, live.Len(), announced.Load(), withdrawn.Load(), st.Switches, st.Rebuilds, engine)
		case <-sigc:
			m.Stop()
			<-runErr
			printStats(m)
			return
		case err := <-runErr:
			log.Fatalf("rtrclient: %v", err)
		}
	}
}

// printStats writes the per-cache failover statistics to stderr, the
// shutdown report promised by -follow.
func printStats(m *rtr.MultiSupervisor) {
	st := m.Stats()
	fmt.Fprintf(os.Stderr, "# rtrclient: shutting down: %d cache switches, %d rebuilds\n", st.Switches, st.Rebuilds)
	for _, u := range st.Upstreams {
		fmt.Fprintf(os.Stderr, "# cache %s: up=%t active=%t failovers=%d failbacks=%d dials=%d serial-resumes=%d reset-fallbacks=%d rebuilds=%d\n",
			u.Name, u.Up, u.Active, u.Failovers, u.Failbacks,
			u.Supervisor.Dials, u.Supervisor.SerialResumes, u.Supervisor.ResetFallbacks, u.Supervisor.Rebuilds)
	}
}
