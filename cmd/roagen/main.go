// Command roagen generates the calibrated synthetic datasets that stand in
// for the paper's RouteViews + RPKI snapshots: a BGP table dump, the
// status-quo VRP CSV, and (optionally) a cryptographically signed .roa
// repository for the ROAs of the snapshot's first ROAs.
//
// Usage:
//
//	roagen -date 2017-06-01 -outdir data/ [-scale 0.01] [-sign-repo N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bgp"
	"repro/internal/rpki"
	"repro/internal/rpkix"
	"repro/internal/synth"
)

func main() {
	var (
		date     = flag.String("date", "2017-06-01", "snapshot date (weekly snapshots 2017-04-13..2017-06-01)")
		outdir   = flag.String("outdir", "data", "output directory")
		scale    = flag.Float64("scale", 1.0, "scale all block counts (e.g. 0.01 for a quick run)")
		signRepo = flag.Int("sign-repo", 0, "also sign the first N ROAs into <outdir>/repo as .roa objects")
	)
	flag.Parse()
	d, err := time.Parse("2006-01-02", *date)
	if err != nil {
		log.Fatalf("roagen: bad -date: %v", err)
	}
	params := synth.SnapshotParams(d).Scale(*scale)
	ds := synth.Generate(params)
	log.Printf("roagen: %s", ds.Summary())

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatalf("roagen: %v", err)
	}
	tag := d.Format("20060102")
	bgpPath := filepath.Join(*outdir, fmt.Sprintf("bgp-%s.txt", tag))
	vrpPath := filepath.Join(*outdir, fmt.Sprintf("vrps-%s.csv", tag))
	if err := writeBGP(bgpPath, ds); err != nil {
		log.Fatalf("roagen: %v", err)
	}
	if err := writeVRPs(vrpPath, ds); err != nil {
		log.Fatalf("roagen: %v", err)
	}
	log.Printf("roagen: wrote %s (%d routes) and %s (%d tuples)",
		bgpPath, ds.Table.Len(), vrpPath, ds.VRPs.Len())

	if *signRepo > 0 {
		dir := filepath.Join(*outdir, "repo")
		n, err := signROAs(dir, ds, *signRepo)
		if err != nil {
			log.Fatalf("roagen: signing repo: %v", err)
		}
		log.Printf("roagen: signed %d ROA objects into %s", n, dir)
	}
}

func writeBGP(path string, ds *synth.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bgp.WriteTable(f, ds.Table)
}

func writeVRPs(path string, ds *synth.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rpki.WriteCSV(f, ds.VRPs)
}

// signROAs builds a one-CA repository holding all resources and signs the
// first n ROAs of the dataset.
func signROAs(dir string, ds *synth.Dataset, n int) (int, error) {
	repo, err := rpkix.NewRepository("roagen TA")
	if err != nil {
		return 0, err
	}
	ca, err := repo.AddCA("roagen CA", []string{"0.0.0.0/0", "::/0"})
	if err != nil {
		return 0, err
	}
	count := 0
	for _, roa := range ds.ROAs {
		if count >= n {
			break
		}
		if err := repo.PublishROA(ca, roa); err != nil {
			return count, err
		}
		count++
	}
	return count, repo.Write(dir)
}
