// Command mrtconv converts between the repository's plain-text BGP dumps
// and the MRT TABLE_DUMP_V2 binary format RouteViews publishes (RFC 6396),
// in either direction.
//
// Usage:
//
//	mrtconv -totext rib.mrt > table.txt
//	mrtconv -tomrt table.txt -timestamp 1496275200 > rib.mrt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bgp"
)

func main() {
	var (
		toText    = flag.String("totext", "", "MRT file to convert to text (stdout)")
		toMRT     = flag.String("tomrt", "", "text dump to convert to MRT (stdout)")
		timestamp = flag.Uint("timestamp", 1496275200, "MRT record timestamp (UNIX; default 6/1/2017)")
	)
	flag.Parse()
	switch {
	case *toText != "" && *toMRT == "":
		if err := mrtToText(*toText); err != nil {
			fmt.Fprintln(os.Stderr, "mrtconv:", err)
			os.Exit(1)
		}
	case *toMRT != "" && *toText == "":
		if err := textToMRT(*toMRT, uint32(*timestamp)); err != nil {
			fmt.Fprintln(os.Stderr, "mrtconv:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "mrtconv: exactly one of -totext or -tomrt is required")
		os.Exit(2)
	}
}

func mrtToText(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	anns, err := bgp.ReadMRT(f)
	if err != nil {
		return err
	}
	for _, a := range anns {
		fmt.Print(a.Prefix)
		for _, as := range a.Path {
			fmt.Printf(" %d", uint32(as))
		}
		fmt.Println()
	}
	return nil
}

func textToMRT(path string, ts uint32) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	anns, err := bgp.ReadDump(f)
	if err != nil {
		return err
	}
	mw := bgp.NewMRTWriter(os.Stdout, ts)
	for _, a := range anns {
		if err := mw.WriteAnnouncement(a); err != nil {
			return err
		}
	}
	return mw.Flush()
}
