// Command rtrcache runs the Figure 1 "trusted local cache": it loads a VRP
// CSV (optionally compressing it first with the §7 algorithm), serves it to
// routers over the RPKI-to-Router protocol, and re-reads the file on SIGHUP,
// pushing incremental updates to connected routers.
//
// Usage:
//
//	rtrcache -vrps vrps.csv [-listen :8282] [-compress] [-session N] [-serial N]
//
// -session/-serial control the RFC 8210 session identity the cache serves
// from. A cache restarted with its previous session and serial lets routers
// resume their incremental stream with a Serial Query; omitting -session
// picks a random session ID, which forces reconnecting routers through
// Cache Reset and a full resync — the two restart modes the reconnect
// supervisor in rtrclient distinguishes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/rtr"
)

func main() {
	var (
		vrpsPath = flag.String("vrps", "", "VRP CSV file to serve (required)")
		listen   = flag.String("listen", "127.0.0.1:8282", "listen address")
		compress = flag.Bool("compress", false, "compress the PDU list before serving (§7)")
		session  = flag.Int("session", -1, "session ID to serve (0..65535); -1 picks a random one, as a freshly restarted cache should")
		serial   = flag.Uint("serial", 1, "serial number to start from (with -session, resumes a previous cache identity)")
	)
	flag.Parse()
	if *vrpsPath == "" {
		fmt.Fprintln(os.Stderr, "rtrcache: -vrps is required")
		os.Exit(2)
	}
	if *session > 0xffff || *session < -1 {
		fmt.Fprintln(os.Stderr, "rtrcache: -session must be -1 (random) or fit in 16 bits")
		os.Exit(2)
	}
	if *serial > 0xffffffff {
		fmt.Fprintln(os.Stderr, "rtrcache: -serial must fit in 32 bits")
		os.Exit(2)
	}
	set, err := loadSet(*vrpsPath, *compress)
	if err != nil {
		log.Fatalf("rtrcache: %v", err)
	}
	srv := rtr.NewServer(set)
	srv.Logf = log.Printf
	if *session >= 0 {
		srv.SetSession(uint16(*session), rtr.Serial(*serial))
	} else {
		srv.SetSession(uint16(rand.Uint32()), rtr.Serial(*serial))
	}
	log.Printf("rtrcache: serving %d PDUs on %s (serial %d, session %#x)",
		set.Len(), *listen, srv.Serial(), srv.SessionID())

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			next, err := loadSet(*vrpsPath, *compress)
			if err != nil {
				log.Printf("rtrcache: reload failed: %v", err)
				continue
			}
			srv.UpdateSet(next)
			log.Printf("rtrcache: reloaded %d PDUs, serial now %d", next.Len(), srv.Serial())
		}
	}()
	log.Fatal(srv.ListenAndServe(*listen))
}

func loadSet(path string, compress bool) (*rpki.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := rpki.ReadCSV(f)
	if err != nil {
		return nil, err
	}
	if compress {
		compressed, res := core.Compress(set, core.Options{})
		if err := core.VerifyCompression(set, compressed); err != nil {
			return nil, err
		}
		log.Printf("rtrcache: compressed %d -> %d PDUs (%.2f%%)", res.In, res.Out, 100*res.SavedFraction())
		set = compressed
	}
	return set, nil
}
