// Command rtrcache runs the Figure 1 "trusted local cache": it loads a VRP
// CSV (optionally compressing it first with the §7 algorithm), serves it to
// routers over the RPKI-to-Router protocol, and re-reads the file on SIGHUP,
// pushing incremental updates to connected routers.
//
// Usage:
//
//	rtrcache -vrps vrps.csv [-listen :8282] [-compress]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/rtr"
)

func main() {
	var (
		vrpsPath = flag.String("vrps", "", "VRP CSV file to serve (required)")
		listen   = flag.String("listen", "127.0.0.1:8282", "listen address")
		compress = flag.Bool("compress", false, "compress the PDU list before serving (§7)")
	)
	flag.Parse()
	if *vrpsPath == "" {
		fmt.Fprintln(os.Stderr, "rtrcache: -vrps is required")
		os.Exit(2)
	}
	set, err := loadSet(*vrpsPath, *compress)
	if err != nil {
		log.Fatalf("rtrcache: %v", err)
	}
	srv := rtr.NewServer(set)
	srv.Logf = log.Printf
	log.Printf("rtrcache: serving %d PDUs on %s (serial %d, session %#x)",
		set.Len(), *listen, srv.Serial(), srv.SessionID())

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			next, err := loadSet(*vrpsPath, *compress)
			if err != nil {
				log.Printf("rtrcache: reload failed: %v", err)
				continue
			}
			srv.UpdateSet(next)
			log.Printf("rtrcache: reloaded %d PDUs, serial now %d", next.Len(), srv.Serial())
		}
	}()
	log.Fatal(srv.ListenAndServe(*listen))
}

func loadSet(path string, compress bool) (*rpki.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := rpki.ReadCSV(f)
	if err != nil {
		return nil, err
	}
	if compress {
		compressed, res := core.Compress(set, core.Options{})
		if err := core.VerifyCompression(set, compressed); err != nil {
			return nil, err
		}
		log.Printf("rtrcache: compressed %d -> %d PDUs (%.2f%%)", res.In, res.Out, 100*res.SavedFraction())
		set = compressed
	}
	return set, nil
}
