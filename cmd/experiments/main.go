// Command experiments regenerates the paper's evaluation: Table 1, Figure
// 3a, Figure 3b, and the §6/§7.2 statistics, from the calibrated synthetic
// snapshots. Output is paper-vs-measured so discrepancies are visible at a
// glance; -csv additionally writes machine-readable figure data.
//
// Usage:
//
//	experiments [-table1] [-fig3a] [-fig3b] [-stats] [-hijack] [-all]
//	            [-scale 1.0] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "reproduce Table 1")
		fig3a    = flag.Bool("fig3a", false, "reproduce Figure 3a")
		fig3b    = flag.Bool("fig3b", false, "reproduce Figure 3b")
		stats    = flag.Bool("stats", false, "reproduce the §6/§7.2 statistics")
		hijack   = flag.Bool("hijack", false, "run the §4/§5 hijack capture simulation")
		adoption = flag.Bool("adoption", false, "run the ROV partial-adoption sweep (extension)")
		overhead = flag.Bool("overhead", false, "measure §7.2 computational overhead")
		all      = flag.Bool("all", false, "run everything")
		scale    = flag.Float64("scale", 1.0, "scale dataset size (1.0 = paper scale)")
		csvDir   = flag.String("csv", "", "also write figure data as CSV into this directory")
		plot     = flag.Bool("plot", false, "render figures as ASCII charts instead of data tables")
	)
	flag.Parse()
	if *all {
		*table1, *fig3a, *fig3b, *stats, *hijack, *adoption, *overhead = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig3a && !*fig3b && !*stats && !*hijack && !*adoption && !*overhead {
		*table1, *stats = true, true
	}

	evaluate := func(date time.Time) experiments.Table1 {
		t := experiments.ComputeTable1(synth.Generate(synth.SnapshotParams(date).Scale(*scale)))
		t.Date = date
		return t
	}

	var headline experiments.Table1
	needHeadline := *table1 || *stats
	if needHeadline {
		start := time.Now()
		headline = evaluate(synth.Dates6_1()[7])
		log.Printf("experiments: 6/1 snapshot evaluated in %v", time.Since(start).Round(time.Millisecond))
	}
	if *table1 {
		fmt.Println("== Table 1: number of PDUs processed by routers (6/1/2017 dataset) ==")
		if *scale == 1.0 {
			if err := experiments.CompareToPaper(os.Stdout, headline); err != nil {
				log.Fatal(err)
			}
		} else if err := headline.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *stats {
		fmt.Println("== §6 / §7.2 statistics ==")
		d := synth.Generate(synth.SnapshotParams(synth.Dates6_1()[7]).Scale(*scale))
		st := experiments.ComputeSection6(d, headline)
		if err := st.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	for _, fig := range []struct {
		run  bool
		full bool
		name string
	}{{*fig3a, false, "fig3a"}, {*fig3b, true, "fig3b"}} {
		if !fig.run {
			continue
		}
		f := experiments.ComputeFigure3(fig.full, evaluate)
		if *plot {
			if err := f.RenderPlot(os.Stdout, 16); err != nil {
				log.Fatal(err)
			}
		} else if err := f.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, fig.name, f); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *hijack {
		fmt.Println("== §4/§5 hijack capture rates (1000-AS Gao-Rexford topology, 32 trials) ==")
		topo := bgpsim.Generate(bgpsim.GenerateParams{Seed: 2017, N: 1000})
		rates := bgpsim.RunAll(topo, 32)
		if err := bgpsim.RenderResults(os.Stdout, rates); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *overhead {
		fmt.Println("== §7.2 computational overhead ==")
		d := synth.Generate(synth.SnapshotParams(synth.Dates6_1()[7]).Scale(*scale))
		if err := experiments.RenderOverhead(os.Stdout, experiments.MeasureOverhead(d)); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *adoption {
		fmt.Println("== ROV adoption sweep (extension; 1000-AS topology, 8 trials) ==")
		topo := bgpsim.Generate(bgpsim.GenerateParams{Seed: 2017, N: 1000})
		shares := []float64{0, 0.1, 0.25, 0.5, 0.75, 1}
		for _, kind := range []bgpsim.ScenarioKind{bgpsim.SubprefixMinimalROA, bgpsim.ForgedOriginSubprefix} {
			pts := bgpsim.AdoptionSweep(topo, kind, shares, 8)
			if err := bgpsim.RenderAdoption(os.Stdout, kind, pts); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}
}

func writeCSV(dir, name string, f experiments.Figure3) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	log.Printf("experiments: writing %s", path)
	return f.WriteCSV(out)
}
