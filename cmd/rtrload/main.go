// Command rtrload is the router-population soak harness for the RTR cache
// server: one in-process cache under sustained churn, thousands of
// concurrent poller clients (each running the WaitNotify → Sync loop a real
// router runs), and optionally a population of wedged routers that connect,
// query, and never read. It exists to prove the publish path's isolation
// property at scale — UpdateSet latency must be a function of the table
// delta, not of the slowest router — and to put numbers on it:
//
//   - publish latency: wall time of each ApplyDelta call (queue handoff
//     and snapshot roll only; no router socket on this path)
//   - notify-to-sync latency: publish instant → a client finishing the
//     incremental Sync for that serial, measured per client per publish
//
// Usage:
//
//	rtrload [-clients 2000] [-duration 30s] [-vrps 50000] [-churn 64]
//	        [-interval 100ms] [-stall 0] [-bench-out FILE] [-cpuprofile FILE]
//
// With -bench-out the percentiles are also written as go-bench result lines
// (BenchmarkRTRLoad/...) so cmd/benchjson folds them into the per-PR
// benchmark archive; make soak-smoke runs a small configuration in CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
	"repro/internal/rtr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtrload: ")
	var (
		clients    = flag.Int("clients", 2000, "concurrent poller clients")
		duration   = flag.Duration("duration", 30*time.Second, "churn phase length")
		vrps       = flag.Int("vrps", 50_000, "base table size")
		churn      = flag.Int("churn", 64, "VRPs announced or withdrawn per publish")
		interval   = flag.Duration("interval", 100*time.Millisecond, "publish interval")
		writers    = flag.Int("writers", 0, "server writer-pool size (0 = server default)")
		queue      = flag.Int("queue", 0, "server per-conn queue depth (0 = server default)")
		wtimeout   = flag.Duration("write-timeout", 5*time.Second, "server per-write deadline")
		stall      = flag.Int("stall", 0, "wedged routers: connect, query, never read")
		ramp       = flag.Int("ramp", 64, "concurrent dials while connecting the population")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the churn phase")
		benchOut   = flag.String("bench-out", "", "append results as go-bench lines for benchjson")
	)
	flag.Parse()
	if *clients < 1 || *vrps < 1 || *churn < 1 || *interval <= 0 || *duration <= 0 {
		log.Fatal("-clients, -vrps, -churn must be >= 1 and -interval, -duration positive")
	}

	srv := rtr.NewServer(baseTable(*vrps))
	if *writers > 0 {
		srv.Writers = *writers
	}
	if *queue > 0 {
		srv.QueueDepth = *queue
	}
	srv.WriteTimeout = *wtimeout
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//repro:owns-goroutine (*rtr.Server).Close
	go srv.Serve(l)
	defer srv.Close()
	addr := l.Addr().String()

	// Connect the population, ramped so the accept queue and the full-table
	// responses don't all land in the same instant.
	log.Printf("connecting %d clients to %s (%d-VRP table)...", *clients, addr, *vrps)
	rampStart := time.Now()
	pop := make([]*rtr.Client, *clients)
	sem := make(chan struct{}, *ramp)
	var rampWG sync.WaitGroup
	var rampErr atomic.Pointer[error]
	for i := range pop {
		rampWG.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer rampWG.Done()
			defer func() { <-sem }()
			// A client can be shed mid-ramp by the server's own write
			// deadline when the CPU is saturated with concurrent full-table
			// transfers — a legitimate disconnect, so the harness redials.
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				var c *rtr.Client
				c, err = rtr.Dial(addr)
				if err == nil {
					if err = c.Reset(); err == nil {
						pop[i] = c
						return
					}
					c.Close()
				}
			}
			err = fmt.Errorf("client %d: %w", i, err)
			rampErr.CompareAndSwap(nil, &err)
		}(i)
	}
	rampWG.Wait()
	if perr := rampErr.Load(); perr != nil {
		log.Fatalf("connect ramp failed: %v", *perr)
	}
	log.Printf("population connected and synced in %v", time.Since(rampStart).Round(time.Millisecond))

	// The wedged routers: tiny receive window, a few full-table queries,
	// and then silence. The server must shed them by write deadline or
	// queue overflow without the publish path ever noticing.
	stalled := make([]net.Conn, 0, *stall)
	for i := 0; i < *stall; i++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			log.Fatalf("stall conn %d: %v", i, err)
		}
		defer nc.Close()
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetReadBuffer(4096)
		}
		for q := 0; q < 4; q++ {
			if err := rtr.WritePDU(nc, rtr.Version1, &rtr.ResetQuery{}); err != nil {
				break
			}
		}
		stalled = append(stalled, nc)
	}

	// Publish-time ledger: slot k holds the UnixNano instant publish k+1
	// (serial base+k+1) started, written before ApplyDelta runs so the
	// measured latency includes the whole notify fan-out.
	maxPubs := int(*duration / *interval)
	pubTimes := make([]atomic.Int64, maxPubs+1)
	base := srv.Serial()

	var syncs, syncErrs atomic.Int64
	samples := make([][]time.Duration, *clients)
	var popWG sync.WaitGroup
	for i, c := range pop {
		popWG.Add(1)
		go func(i int, c *rtr.Client) {
			defer popWG.Done()
			for {
				if _, err := c.WaitNotify(); err != nil {
					return // harness closed the client
				}
				s, err := c.Sync()
				if err != nil {
					syncErrs.Add(1)
					return
				}
				syncs.Add(1)
				// WaitNotify coalesces, so s may be several publishes past
				// the serial that woke us; it is always the newest synced
				// one, and its publish instant is the honest latency base.
				if k := int(uint32(s) - uint32(base)); k >= 1 && k <= maxPubs {
					if t := pubTimes[k].Load(); t != 0 {
						samples[i] = append(samples[i], time.Since(time.Unix(0, t)))
					}
				}
			}
		}(i, c)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Churn phase: alternate announcing and withdrawing a dedicated churn
	// set, one ApplyDelta per tick. The churn prefixes live outside the
	// base table so the delta is always exactly -churn VRPs.
	log.Printf("churning: %d publishes of %d VRPs at %v intervals...", maxPubs, *churn, *interval)
	churnSet := make([]rpki.VRP, *churn)
	for i := range churnSet {
		churnSet[i] = vrpAt(1<<22, i) // disjoint from baseTable's index range
	}
	pubLat := make([]time.Duration, 0, maxPubs)
	tick := time.NewTicker(*interval)
	for k := 1; k <= maxPubs; k++ {
		<-tick.C
		pubTimes[k].Store(time.Now().UnixNano())
		start := time.Now()
		if k%2 == 1 {
			srv.ApplyDelta(churnSet, nil)
		} else {
			srv.ApplyDelta(nil, churnSet)
		}
		pubLat = append(pubLat, time.Since(start))
	}
	tick.Stop()

	// Let in-flight syncs land, then tear the population down; the pollers
	// exit through WaitNotify's sticky error.
	time.Sleep(2 * *interval)
	alive := srv.ConnCount()
	for _, c := range pop {
		c.Close()
	}
	popWG.Wait()

	all := make([]time.Duration, 0, len(samples)*maxPubs/2)
	for _, s := range samples {
		all = append(all, s...)
	}
	pubP := percentiles(pubLat)
	syncP := percentiles(all)
	fmt.Printf("rtrload: %d clients + %d stalled, %d-VRP table, %d publishes x %d VRPs over %v\n",
		*clients, *stall, *vrps, maxPubs, *churn, *duration)
	fmt.Printf("publish (ApplyDelta): p50 %v  p90 %v  p99 %v  max %v\n",
		pubP[0], pubP[1], pubP[2], pubP[3])
	fmt.Printf("notify-to-sync:       p50 %v  p90 %v  p99 %v  max %v  (%d syncs, %d errors)\n",
		syncP[0], syncP[1], syncP[2], syncP[3], syncs.Load(), syncErrs.Load())
	stalledLeft := alive - *clients
	if stalledLeft < 0 {
		stalledLeft = 0
	}
	fmt.Printf("sessions: %d registered at end of churn (%d pollers); stalled routers shed: %d of %d\n",
		alive, *clients, len(stalled)-stalledLeft, *stall)

	if *benchOut != "" {
		if err := writeBench(*benchOut, pubP, syncP); err != nil {
			log.Fatal(err)
		}
	}
	if syncErrs.Load() > 0 {
		log.Fatalf("%d pollers died mid-soak", syncErrs.Load())
	}
	if alive < *clients {
		log.Fatalf("only %d of %d pollers still registered after the churn phase", alive, *clients)
	}
}

// baseTable builds the n-VRP starting table.
func baseTable(n int) *rpki.Set {
	vrps := make([]rpki.VRP, 0, n)
	for i := 0; i < n; i++ {
		vrps = append(vrps, vrpAt(0, i))
	}
	return rpki.NewSet(vrps)
}

// vrpAt maps (offset, i) to a distinct /24 VRP; offsets carve out disjoint
// index ranges (the churn set must never collide with the base table).
func vrpAt(offset, i int) rpki.VRP {
	k := offset + i
	p, err := prefix.Make(prefix.IPv4, uint64(10+(k>>16))<<56|uint64((k>>8)&0xff)<<48|uint64(k&0xff)<<40, 0, 24)
	if err != nil {
		panic(err)
	}
	return rpki.VRP{Prefix: p, MaxLength: 24, AS: rpki.ASN(64496 + i%1000)}
}

// writeBench appends the headline percentiles as go-bench result lines so
// cmd/benchjson archives them next to the in-package benchmarks.
func writeBench(path string, pubP, syncP [4]time.Duration) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "pkg: repro/cmd/rtrload\n")
	fmt.Fprintf(f, "BenchmarkRTRLoad/publish_p50 1 %d ns/op\n", pubP[0].Nanoseconds())
	fmt.Fprintf(f, "BenchmarkRTRLoad/publish_p99 1 %d ns/op\n", pubP[2].Nanoseconds())
	fmt.Fprintf(f, "BenchmarkRTRLoad/notify_sync_p50 1 %d ns/op\n", syncP[0].Nanoseconds())
	fmt.Fprintf(f, "BenchmarkRTRLoad/notify_sync_p99 1 %d ns/op\n", syncP[2].Nanoseconds())
	return f.Close()
}

// percentiles returns {p50, p90, p99, max} of d (zeros when empty).
func percentiles(d []time.Duration) [4]time.Duration {
	if len(d) == 0 {
		return [4]time.Duration{}
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return [4]time.Duration{at(0.50), at(0.90), at(0.99), s[len(s)-1]}
}
