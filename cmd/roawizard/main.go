// Command roawizard implements the paper's §8 recommendation for RIR user
// interfaces: given looking-glass (BGP table) data and an origin AS, it
// suggests the minimal ROA the operator should configure — no maxLength,
// exactly the announced prefixes — plus a compressed equivalent, and audits
// an existing ROA (from a VRP CSV) for vulnerable, stale, and missing
// entries.
//
// Usage:
//
//	roawizard -bgp table.txt -as 31283 [-audit vrps.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/rpki"
)

func main() {
	var (
		bgpPath  = flag.String("bgp", "", "BGP table dump (looking-glass data, required)")
		asFlag   = flag.String("as", "", "origin AS to advise (required)")
		auditCSV = flag.String("audit", "", "audit this VRP CSV's entries for the AS instead of only suggesting")
	)
	flag.Parse()
	if *bgpPath == "" || *asFlag == "" {
		fmt.Fprintln(os.Stderr, "roawizard: -bgp and -as are required")
		os.Exit(2)
	}
	as, err := rpki.ParseASN(*asFlag)
	if err != nil {
		log.Fatalf("roawizard: %v", err)
	}
	f, err := os.Open(*bgpPath)
	if err != nil {
		log.Fatalf("roawizard: %v", err)
	}
	table, err := bgp.ReadTable(f)
	f.Close()
	if err != nil {
		log.Fatalf("roawizard: %v", err)
	}

	s, ok := core.Suggest(as, table)
	if !ok {
		fmt.Printf("%s announces no prefixes in the BGP data; no ROA is needed.\n", as)
		return
	}
	if err := core.RenderSuggestion(os.Stdout, s); err != nil {
		log.Fatal(err)
	}

	if *auditCSV == "" {
		return
	}
	af, err := os.Open(*auditCSV)
	if err != nil {
		log.Fatalf("roawizard: %v", err)
	}
	set, err := rpki.ReadCSV(af)
	af.Close()
	if err != nil {
		log.Fatalf("roawizard: %v", err)
	}
	roa := rpki.ROA{AS: as}
	for _, v := range set.VRPs() {
		if v.AS == as {
			roa.Prefixes = append(roa.Prefixes, rpki.ROAPrefix{Prefix: v.Prefix, MaxLength: v.MaxLength})
		}
	}
	if len(roa.Prefixes) == 0 {
		fmt.Printf("\naudit: no existing entries for %s in %s\n", as, *auditCSV)
		return
	}
	findings := core.Audit(roa, table)
	if len(findings) == 0 {
		fmt.Printf("\naudit: the existing ROA for %s is minimal — no findings.\n", as)
		return
	}
	fmt.Printf("\naudit of the existing ROA for %s (%d findings):\n", as, len(findings))
	for _, fd := range findings {
		switch fd.Kind {
		case core.VulnerableEntry, core.StaleEntry:
			fmt.Printf("  [%s] entry %-28s %s\n", fd.Kind, fd.Entry, fd.Detail)
		default:
			fmt.Printf("  [%s] prefix %-27s %s\n", fd.Kind, fd.Prefix, fd.Detail)
		}
	}
	os.Exit(1) // findings => non-zero, for scripting
}
