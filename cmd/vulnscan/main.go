// Command vulnscan is the §4/§6 analyzer: given a VRP CSV and a BGP table
// dump, it reports which maxLength-using tuples are non-minimal and thus
// vulnerable to forged-origin subprefix hijacks, a concrete hijackable
// witness route per tuple, and the exposed address space per origin AS.
//
// Usage:
//
//	vulnscan -vrps vrps.csv -bgp table.txt [-details] [-top 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/rpki"
)

func main() {
	var (
		vrpsPath = flag.String("vrps", "", "VRP CSV (required)")
		bgpPath  = flag.String("bgp", "", "BGP table dump (required)")
		details  = flag.Bool("details", false, "list each vulnerable tuple with its witness route")
		top      = flag.Int("top", 10, "show the N most-exposed origin ASes")
	)
	flag.Parse()
	if *vrpsPath == "" || *bgpPath == "" {
		fmt.Fprintln(os.Stderr, "vulnscan: -vrps and -bgp are required")
		os.Exit(2)
	}
	set, table, err := load(*vrpsPath, *bgpPath)
	if err != nil {
		log.Fatalf("vulnscan: %v", err)
	}
	rep := core.AnalyzeVulnerabilities(set, table, *details)
	fmt.Printf("tuples:                 %d\n", rep.Tuples)
	fmt.Printf("using maxLength:        %d (%.1f%%)\n", rep.UsingMaxLength, 100*rep.MaxLengthShare())
	fmt.Printf("vulnerable (non-minimal): %d (%.1f%% of maxLength users)\n",
		rep.Vulnerable, 100*rep.VulnerableShare())
	fmt.Printf("hijack-effective today: %d\n", rep.Effective)
	if *details {
		fmt.Println("\nvulnerable tuples (tuple => hijackable witness route):")
		for _, vu := range rep.Vulnerabilities {
			fmt.Printf("  %-40s => %-30s (%d unannounced routes)\n",
				vu.VRP, vu.Witness, vu.UnannouncedRoutes)
		}
	}
	if *top > 0 {
		exposure := core.VulnerableAddressSpace(set, table)
		type row struct {
			as  rpki.ASN
			exp uint64
		}
		rows := make([]row, 0, len(exposure))
		for as, e := range exposure {
			rows = append(rows, row{as, e})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].exp != rows[j].exp {
				return rows[i].exp > rows[j].exp
			}
			return rows[i].as < rows[j].as
		})
		if len(rows) > *top {
			rows = rows[:*top]
		}
		fmt.Printf("\nmost exposed origins (addresses hijackable at the maxLength level):\n")
		for _, r := range rows {
			fmt.Printf("  %-12s %d\n", r.as, r.exp)
		}
	}
}

func load(vrpsPath, bgpPath string) (*rpki.Set, *bgp.Table, error) {
	vf, err := os.Open(vrpsPath)
	if err != nil {
		return nil, nil, err
	}
	defer vf.Close()
	set, err := rpki.ReadCSV(vf)
	if err != nil {
		return nil, nil, err
	}
	bf, err := os.Open(bgpPath)
	if err != nil {
		return nil, nil, err
	}
	defer bf.Close()
	table, err := bgp.ReadTable(bf)
	if err != nil {
		return nil, nil, err
	}
	return set, table, nil
}
