package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata loads the named testdata packages (paths relative to
// testdata/src) with the real loader and runs every analyzer over them.
func loadTestdata(t *testing.T, names ...string) []Finding {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, len(names))
	for i, name := range names {
		dirs[i] = filepath.Join(wd, "testdata", "src", filepath.FromSlash(name))
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	return runAnalyzers(loader.Fset, pkgs, analyzers)
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// wantsIn scans the named testdata packages' files for // want "substring"
// comments, keyed by file:line.
func wantsIn(t *testing.T, names ...string) map[string]string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string]string)
	for _, name := range names {
		dir := filepath.Join(wd, "testdata", "src", filepath.FromSlash(name))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				if m := wantRE.FindStringSubmatch(line); m != nil {
					wants[fmt.Sprintf("%s:%d", path, i+1)] = m[1]
				}
			}
		}
	}
	return wants
}

// checkGolden matches findings against want comments one-to-one by file and
// line, with substring message matching.
func checkGolden(t *testing.T, findings []Finding, wants map[string]string) {
	t.Helper()
	matched := make(map[string]bool)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Check+": "+f.Msg, want) {
			t.Errorf("finding at %s: got [%s] %q, want substring %q", key, f.Check, f.Msg, want)
			continue
		}
		matched[key] = true
	}
	for key, want := range wants {
		if !matched[key] {
			t.Errorf("missing finding at %s: want %q", key, want)
		}
	}
}

func TestSerialCmpGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "serialcmp"), wantsIn(t, "serialcmp"))
}

func TestArenaPtrGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "arenaptr"), wantsIn(t, "arenaptr"))
}

func TestSnapshotWriteGolden(t *testing.T) {
	names := []string{"snapshotwrite/types", "snapshotwrite/writer"}
	checkGolden(t, loadTestdata(t, names...), wantsIn(t, names...))
}

func TestBlockingLockGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "blockinglock"), wantsIn(t, "blockinglock"))
}

// lineOf returns the 1-based line of the first line of file whose trimmed
// text equals want.
func lineOf(t *testing.T, file, want string) int {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == want {
			return i + 1
		}
	}
	t.Fatalf("%s: no line %q", file, want)
	return 0
}

// TestSuppression exercises //lint:ignore end to end: a correct directive
// (above or trailing) suppresses its finding, a directive naming the wrong
// check suppresses nothing, and a directive without a reason is malformed —
// the finding survives and the directive is reported itself. Expectations
// are content-anchored because a // want comment appended to a //lint:ignore
// line would parse as the directive's reason.
func TestSuppression(t *testing.T) {
	findings := loadTestdata(t, "suppress")
	wd, _ := os.Getwd()
	file := filepath.Join(wd, "testdata", "src", "suppress", "suppress.go")

	byLine := make(map[int][]Finding)
	for _, f := range findings {
		if f.Pos.Filename != file {
			t.Errorf("finding outside suppress.go: %s", f)
			continue
		}
		byLine[f.Pos.Line] = append(byLine[f.Pos.Line], f)
	}

	expectNone := func(stmt string) {
		t.Helper()
		if line := lineOf(t, file, stmt); len(byLine[line]) > 0 {
			t.Errorf("line %d (%q): finding not suppressed: %v", line, stmt, byLine[line])
		}
	}
	expectOne := func(stmt, check string) {
		t.Helper()
		line := lineOf(t, file, stmt)
		fs := byLine[line]
		if len(fs) != 1 || fs[0].Check != check {
			t.Errorf("line %d (%q): want one [%s] finding, got %v", line, stmt, check, fs)
		}
	}

	expectNone("return aOK < bOK")
	expectNone("return cOK < dOK //lint:ignore serialcmp testdata: trailing form")
	expectOne("return aWrong < bWrong", "serialcmp")
	expectOne("return aBare < bBare", "serialcmp")
	expectOne("//lint:ignore serialcmp", "lint")

	if want := 3; len(findings) != want {
		t.Errorf("got %d findings, want %d: %v", len(findings), want, findings)
	}
}

// TestRepoClean is the lint gate's own regression test: the repository must
// stay free of unsuppressed findings.
func TestRepoClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range runAnalyzers(loader.Fset, pkgs, analyzers) {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// TestFactsCollected guards the annotation plumbing: the rov snapshot types
// and constructors must be visible in the facts table when the module is
// loaded, otherwise snapshotwrite silently checks nothing.
func TestFactsCollected(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	facts := collectFacts(pkgs)
	for _, ty := range []string{
		"repro/internal/rov.Index",
		"repro/internal/rov.CompactIndex",
	} {
		if !facts.ImmutableTypes[ty] {
			t.Errorf("%s not in ImmutableTypes: %v", ty, facts.ImmutableTypes)
		}
	}
	for _, fn := range []string{
		"repro/internal/rov.NewIndex",
		"repro/internal/rov.NewCompactIndex",
		"repro/internal/rov.CompactFromIndex",
		"(*repro/internal/rov.LiveIndex).Snapshot",
		"(*repro/internal/rov.LiveIndex).CompactSnapshot",
	} {
		if !facts.ImmutableFuncs[fn] {
			t.Errorf("%s not in ImmutableFuncs: %v", fn, facts.ImmutableFuncs)
		}
	}
	for _, fn := range []string{
		"(*repro/internal/rov.Index).Validate",
		"repro/internal/rov.validateOn",
		"(*repro/internal/rov.CompactIndex).Validate",
		"(*repro/internal/rov.CompactIndex).ValidateRoute",
		"(*repro/internal/rov.CompactIndex).ValidateBatchSorted",
		"(*repro/internal/rov.famCompact).validateCompact",
		"repro/internal/rov.keyMatch",
	} {
		if !facts.NoallocFuncs[fn] {
			t.Errorf("%s not in NoallocFuncs: %v", fn, facts.NoallocFuncs)
		}
	}
}
