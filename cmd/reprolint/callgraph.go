package main

// callgraph.go: the module-internal call graph underpinning the
// inter-procedural checks (lockorder, goroleak, hotalloc). Every function
// declaration and function literal in the loaded packages becomes a node;
// edges come from direct calls, interface method calls (conservatively
// widened to every module type implementing the interface), and
// function/method-value references. Strongly connected components are
// computed once, in callees-first order, so checks can compose
// intraprocedural summaries bottom-up with a fixpoint only inside recursive
// groups — the same topo-order discipline the loader already applies to
// type-checking.
//
// Known limitation, shared by every summary built on the graph: a call
// through an unresolved func value (a field, a parameter, a var assigned
// more than once) contributes no edges. Single-assignment local bindings
// (`key := func(...)...; key(x)`) are resolved to the literal.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

type edgeKind int

const (
	// edgeStatic is a direct call with a known callee.
	edgeStatic edgeKind = iota
	// edgeIface is an interface method call, widened to every
	// module-internal concrete type implementing the interface.
	edgeIface
	// edgeRef is a function or method value that is created here but not
	// provably called here.
	edgeRef
)

type callEdge struct {
	callee *funcNode
	kind   edgeKind
	pos    token.Pos
	// spawn marks edges whose call is a `go` statement: the callee runs on
	// another goroutine, so it is not part of the caller's own execution.
	spawn bool
	// deferred marks `defer f(...)` edges: they run, but at function exit.
	deferred bool
}

// funcNode is one function declaration or function literal.
type funcNode struct {
	pkg  *Package
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	obj  *types.Func   // nil for literals and for blank/invalid decls
	name string        // display name: "(*rtr.Client).dispatch", "rov.famSlot", "rtr.Serve$1"
	body *ast.BlockStmt
	out  []callEdge

	binds *funcBindings // single-assignment local func-value bindings

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
	sccID          int
}

func (n *funcNode) Pos() token.Pos {
	if n.decl != nil {
		return n.decl.Pos()
	}
	return n.lit.Pos()
}

// funcBindings records local variables bound exactly once to a function
// literal, so calls through them resolve statically.
type funcBindings struct {
	varLit map[*types.Var]*ast.FuncLit
	bound  map[*ast.FuncLit]bool
}

// CallGraph is the module-internal call graph over one loaded package set.
type CallGraph struct {
	fset  *token.FileSet
	nodes []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
	// sccs lists strongly connected components callees-first: every edge
	// leaving an SCC points at an earlier one.
	sccs [][]*funcNode

	// concrete lists the module's non-generic, non-interface named types,
	// the widening universe for interface dispatch.
	concrete []*types.Named
}

// buildCallGraph constructs the graph over the loaded packages.
func buildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		fset:  fset,
		byObj: make(map[*types.Func]*funcNode),
		byLit: make(map[*ast.FuncLit]*funcNode),
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			g.registerFile(p, file)
		}
		scope := p.Types.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 || types.IsInterface(named) {
				continue
			}
			g.concrete = append(g.concrete, named)
		}
	}
	for _, n := range g.nodes {
		g.scan(n)
	}
	g.computeSCCs()
	return g
}

// NodeFor returns the node for a declared function or method, resolving
// generic instantiations to their origin declaration.
func (g *CallGraph) NodeFor(fn *types.Func) *funcNode {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return g.byObj[fn]
}

// registerFile creates nodes for every function declaration and literal in
// the file. Literals are named after their enclosing function with a $n
// ordinal; literals in package-level initializers hang off "pkg.init".
func (g *CallGraph) registerFile(p *Package, file *ast.File) {
	short := shortPkg(p.Path)
	var registerLits func(root ast.Node, owner string)
	registerLits = func(root ast.Node, owner string) {
		ctr := 0
		ast.Inspect(root, func(nd ast.Node) bool {
			if nd == root {
				return true
			}
			switch t := nd.(type) {
			case *ast.FuncLit:
				ctr++
				name := fmt.Sprintf("%s$%d", owner, ctr)
				fn := &funcNode{pkg: p, lit: t, name: name, body: t.Body}
				g.nodes = append(g.nodes, fn)
				g.byLit[t] = fn
				registerLits(t, name)
				return false
			case *ast.FuncDecl:
				return false
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			obj, _ := p.Info.Defs[d.Name].(*types.Func)
			name := short + "." + d.Name.Name
			if obj != nil {
				name = shortFuncName(obj)
			}
			fn := &funcNode{pkg: p, decl: d, obj: obj, name: name, body: d.Body}
			g.nodes = append(g.nodes, fn)
			if obj != nil {
				g.byObj[obj] = fn
			}
			if d.Body != nil {
				registerLits(d.Body, name)
			}
		case *ast.GenDecl:
			registerLits(d, short+".init")
		}
	}
}

// scan resolves the edges out of one node's immediate body. Nested literal
// bodies are skipped: each literal is its own node and scans itself.
func (g *CallGraph) scan(n *funcNode) {
	if n.body == nil {
		return
	}
	n.binds = g.localFuncBindings(n)

	// Pre-pass: which expressions sit in call position, and which calls are
	// go/defer statements.
	callFun := make(map[ast.Expr]bool)
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch t := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goCalls[t.Call] = true
		case *ast.DeferStmt:
			deferCalls[t.Call] = true
		case *ast.CallExpr:
			callFun[unparen(t.Fun)] = true
		}
		return true
	})

	var walk func(nd ast.Node) bool
	walk = func(nd ast.Node) bool {
		switch t := nd.(type) {
		case *ast.FuncLit:
			// A literal that is neither immediately invoked nor bound to a
			// single-assignment local escapes as a value: a reference edge.
			if child := g.byLit[t]; child != nil && !callFun[t] && !n.binds.bound[t] {
				n.out = append(n.out, callEdge{callee: child, kind: edgeRef, pos: t.Pos()})
			}
			return false
		case *ast.CallExpr:
			targets, kind := g.resolveCall(n.pkg, t, n.binds)
			for _, c := range targets {
				n.out = append(n.out, callEdge{
					callee:   c,
					kind:     kind,
					pos:      t.Pos(),
					spawn:    goCalls[t],
					deferred: deferCalls[t],
				})
			}
			return true
		case *ast.Ident:
			if !callFun[t] {
				if fn, ok := n.pkg.Info.Uses[t].(*types.Func); ok {
					if c := g.NodeFor(fn); c != nil {
						n.out = append(n.out, callEdge{callee: c, kind: edgeRef, pos: t.Pos()})
					}
				}
			}
		case *ast.SelectorExpr:
			if callFun[t] || g.refSelector(n, t) {
				// The selector is consumed (call position, or recorded as a
				// reference); only its receiver expression remains to scan.
				ast.Inspect(t.X, walk)
				return false
			}
		}
		return true
	}
	ast.Inspect(n.body, walk)
}

// refSelector records a reference edge for a selector that denotes a
// function or method value, returning whether the selector was one.
func (g *CallGraph) refSelector(n *funcNode, sel *ast.SelectorExpr) bool {
	info := n.pkg.Info
	if s, ok := info.Selections[sel]; ok {
		switch s.Kind() {
		case types.MethodVal:
			if types.IsInterface(s.Recv()) {
				for _, c := range g.widen(s.Recv(), sel.Sel.Name) {
					n.out = append(n.out, callEdge{callee: c, kind: edgeRef, pos: sel.Pos()})
				}
				return true
			}
			if m, ok := s.Obj().(*types.Func); ok {
				if c := g.NodeFor(m); c != nil {
					n.out = append(n.out, callEdge{callee: c, kind: edgeRef, pos: sel.Pos()})
				}
				return true
			}
		case types.MethodExpr:
			if m, ok := s.Obj().(*types.Func); ok {
				if c := g.NodeFor(m); c != nil {
					n.out = append(n.out, callEdge{callee: c, kind: edgeRef, pos: sel.Pos()})
				}
				return true
			}
		}
		return false
	}
	// Qualified identifier: pkg.F used as a value.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if c := g.NodeFor(fn); c != nil {
			n.out = append(n.out, callEdge{callee: c, kind: edgeRef, pos: sel.Pos()})
		}
		return true
	}
	return false
}

// resolveCall resolves a call expression to its possible module-internal
// callees. Conversions and builtins resolve to nothing.
func (g *CallGraph) resolveCall(p *Package, call *ast.CallExpr, binds *funcBindings) ([]*funcNode, edgeKind) {
	fun := unparen(call.Fun)
	// Explicit generic instantiation: f[T](...) — unwrap to f when it
	// denotes a function, not an index operation.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(p, ix.X) {
			fun = unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if isFuncExpr(p, ix.X) {
			fun = unparen(ix.X)
		}
	}
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return nil, 0 // conversion, not a call
	}
	switch f := fun.(type) {
	case *ast.FuncLit:
		if c := g.byLit[f]; c != nil {
			return []*funcNode{c}, edgeStatic
		}
	case *ast.Ident:
		switch obj := p.Info.Uses[f].(type) {
		case *types.Func:
			if c := g.NodeFor(obj); c != nil {
				return []*funcNode{c}, edgeStatic
			}
		case *types.Var:
			if binds != nil {
				if lit := binds.varLit[obj]; lit != nil {
					if c := g.byLit[lit]; c != nil {
						return []*funcNode{c}, edgeStatic
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[f]; ok {
			switch s.Kind() {
			case types.MethodVal:
				if types.IsInterface(s.Recv()) {
					return g.widen(s.Recv(), f.Sel.Name), edgeIface
				}
				if m, ok := s.Obj().(*types.Func); ok {
					if c := g.NodeFor(m); c != nil {
						return []*funcNode{c}, edgeStatic
					}
				}
			case types.MethodExpr:
				if m, ok := s.Obj().(*types.Func); ok {
					if c := g.NodeFor(m); c != nil {
						return []*funcNode{c}, edgeStatic
					}
				}
			}
			return nil, 0
		}
		if fn, ok := p.Info.Uses[f.Sel].(*types.Func); ok {
			if c := g.NodeFor(fn); c != nil {
				return []*funcNode{c}, edgeStatic
			}
		}
	}
	return nil, 0
}

func isFuncExpr(p *Package, e ast.Expr) bool {
	switch t := unparen(e).(type) {
	case *ast.Ident:
		_, ok := p.Info.Uses[t].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := p.Info.Uses[t.Sel].(*types.Func)
		return ok
	}
	return false
}

// widen resolves an interface method call to every module-internal concrete
// type implementing the interface — the conservative over-approximation of
// dynamic dispatch.
func (g *CallGraph) widen(recv types.Type, method string) []*funcNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*funcNode
	seen := make(map[*funcNode]bool)
	for _, named := range g.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if c := g.NodeFor(m); c != nil && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// localFuncBindings finds local variables bound exactly once to a function
// literal with no reassignment and no address taken — calls through them are
// static.
func (g *CallGraph) localFuncBindings(n *funcNode) *funcBindings {
	b := &funcBindings{
		varLit: make(map[*types.Var]*ast.FuncLit),
		bound:  make(map[*ast.FuncLit]bool),
	}
	info := n.pkg.Info
	assigned := make(map[*types.Var]int)
	dropped := make(map[*types.Var]bool)
	varOf := func(e ast.Expr) *types.Var {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch t := nd.(type) {
		case *ast.AssignStmt:
			balanced := len(t.Lhs) == len(t.Rhs)
			for i, lhs := range t.Lhs {
				v := varOf(lhs)
				if v == nil {
					continue
				}
				assigned[v]++
				if balanced && t.Tok == token.DEFINE {
					if fl, ok := unparen(t.Rhs[i]).(*ast.FuncLit); ok {
						if _, dup := b.varLit[v]; !dup {
							b.varLit[v] = fl
							continue
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range t.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				assigned[v]++
				if i < len(t.Values) {
					if fl, ok := unparen(t.Values[i]).(*ast.FuncLit); ok {
						if _, dup := b.varLit[v]; !dup {
							b.varLit[v] = fl
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if t.Op == token.AND {
				if v := varOf(t.X); v != nil {
					dropped[v] = true
				}
			}
		}
		return true
	})
	for v := range b.varLit {
		if assigned[v] != 1 || dropped[v] {
			delete(b.varLit, v)
		}
	}
	for _, fl := range b.varLit {
		b.bound[fl] = true
	}
	return b
}

// computeSCCs runs Tarjan's algorithm. Tarjan emits each SCC only after
// every SCC it can reach, so g.sccs comes out callees-first — the order
// bottom-up summary composition needs.
func (g *CallGraph) computeSCCs() {
	index := 0
	var stack []*funcNode
	var connect func(n *funcNode)
	connect = func(n *funcNode) {
		index++
		n.index, n.lowlink = index, index
		stack = append(stack, n)
		n.onStack = true
		for _, e := range n.out {
			c := e.callee
			if c.index == 0 {
				connect(c)
				if c.lowlink < n.lowlink {
					n.lowlink = c.lowlink
				}
			} else if c.onStack && c.index < n.lowlink {
				n.lowlink = c.index
			}
		}
		if n.lowlink == n.index {
			var scc []*funcNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				m.sccID = len(g.sccs)
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			g.sccs = append(g.sccs, scc)
		}
	}
	for _, n := range g.nodes {
		if n.index == 0 {
			connect(n)
		}
	}
}

// composeBottomUp calls update on every node in callees-first SCC order,
// iterating each SCC to a fixpoint. update must return true only when the
// node's summary grew.
func (g *CallGraph) composeBottomUp(update func(*funcNode) bool) {
	for _, scc := range g.sccs {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if update(n) {
					changed = true
				}
			}
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// shortPkg returns the last path element of an import path.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// shortFuncName renders a function or method name with its package path
// shortened to the last element: "(*rtr.Client).dispatch", "rov.NewIndex".
func shortFuncName(obj *types.Func) string {
	full := obj.FullName()
	if pkg := obj.Pkg(); pkg != nil {
		full = strings.Replace(full, pkg.Path()+".", shortPkg(pkg.Path())+".", 1)
	}
	return full
}
