package main

// serialcmp: RTR serials (rtr.Serial) live on the RFC 1982 ring, where `<`
// has no meaning — a long-lived cache wraps past 2^32 and a raw comparison
// silently inverts. All ordering must go through SerialLess/SerialNewer, and
// raw subtraction (ring "distance") is equally undefined across the
// antipode. Code that genuinely wants wrapping uint32 arithmetic converts
// explicitly, which is greppable and reviewable; anything else is flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// serialTypePkg/serialTypeName anchor the check on the one type that carries
// the invariant.
const (
	serialTypePkg  = "repro/internal/rtr"
	serialTypeName = "Serial"
)

var serialCmpAnalyzer = &Analyzer{
	Name: "serialcmp",
	Doc:  "flags raw </>/<=/>= and subtraction on rtr.Serial; ordering must use SerialLess/SerialNewer (RFC 1982)",
	Run:  runSerialCmp,
}

func isSerialType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == serialTypeName && obj.Pkg() != nil && obj.Pkg().Path() == serialTypePkg
}

func runSerialCmp(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var verb string
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				verb = "ordering comparison"
			case token.SUB:
				verb = "subtraction"
			default:
				return true
			}
			if isSerialType(pass.TypeOf(be.X)) || isSerialType(pass.TypeOf(be.Y)) {
				pass.Reportf(be.OpPos,
					"raw %s (%s) on rtr.Serial: serials wrap at 2^32, use SerialLess/SerialNewer (RFC 1982) or convert through uint32 explicitly",
					verb, be.Op)
			}
			return true
		})
	}
}
