package main

// hotalloc: functions annotated //repro:noalloc are verified allocation-free,
// transitively through module-internal calls. PR 8 proved the compact
// validation path runs at 0 allocs/op on the benchmark rig; this check turns
// that into a build-time invariant by walking the call graph from each
// annotated function and flagging every allocation site reachable through
// calls that actually execute (static and interface-dispatch edges; reference
// edges are excluded because storing a func value does not run it, and spawn
// edges because the goroutine's allocations are its own).
//
// Flagged sites: make/new/append and the printing builtins, slice and map
// composite literals, map-index assignment (may trigger growth), non-constant
// string concatenation, string<->[]byte/[]rune conversions, implicit
// conversion to interface of non-pointer-shaped values (boxing), closures
// that capture enclosing variables, go statements, calls into fmt, calls to
// external packages reprolint cannot verify (sync/atomic, math/bits, and
// unsafe are trusted), and indirect calls through func values.
//
// An annotated callee is a composition barrier: it is trusted at its call
// sites and verified separately at its own declaration.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var hotAllocAnalyzer = &Analyzer{
	Name:      "hotalloc",
	Doc:       "//repro:noalloc functions must be allocation-free transitively through module-internal calls",
	RunModule: runHotAlloc,
}

// allocSite is one allocation inside a single function body.
type allocSite struct {
	pos  token.Pos
	desc string
}

// allocWitness is the first allocation reachable from a function, with the
// call chain that reaches it.
type allocWitness struct {
	pos   token.Pos
	desc  string
	chain []string
}

// trustedPkgs are external packages hotalloc accepts calls into: none of
// their exported functions allocate.
var trustedPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"unsafe":      true,
}

func runHotAlloc(m *ModulePass) {
	g := m.Graph

	modulePkgs := make(map[string]bool, len(m.Pkgs))
	for _, p := range m.Pkgs {
		modulePkgs[p.Path] = true
	}

	annotated := make(map[*funcNode]bool)
	for _, n := range g.nodes {
		if n.obj != nil && m.Facts.NoallocFuncs[n.obj.FullName()] {
			annotated[n] = true
		}
	}
	if len(annotated) == 0 {
		return
	}

	sites := make(map[*funcNode][]allocSite, len(g.nodes))
	for _, n := range g.nodes {
		if n.body != nil {
			sites[n] = allocSitesIn(m, g, n, modulePkgs)
		}
	}

	// Bottom-up: a function has a witness if it allocates itself or calls a
	// non-annotated function that does. Annotated callees are barriers.
	witness := make(map[*funcNode]*allocWitness)
	g.composeBottomUp(func(n *funcNode) bool {
		if witness[n] != nil {
			return false
		}
		if own := sites[n]; len(own) > 0 {
			witness[n] = &allocWitness{pos: own[0].pos, desc: own[0].desc}
			return true
		}
		for _, e := range n.out {
			if e.kind == edgeRef || e.spawn || annotated[e.callee] {
				continue
			}
			if w := witness[e.callee]; w != nil {
				chain := make([]string, 0, len(w.chain)+1)
				chain = append(chain, e.callee.name)
				chain = append(chain, w.chain...)
				witness[n] = &allocWitness{pos: w.pos, desc: w.desc, chain: chain}
				return true
			}
		}
		return false
	})

	for _, n := range g.nodes {
		if !annotated[n] || n.body == nil {
			continue
		}
		for _, s := range sites[n] {
			m.Reportf(s.pos, "hot path %s: %s", n.name, s.desc)
		}
		reported := make(map[token.Pos]bool)
		for _, e := range n.out {
			if e.kind == edgeRef || e.spawn || annotated[e.callee] || reported[e.pos] {
				continue
			}
			w := witness[e.callee]
			if w == nil {
				continue
			}
			reported[e.pos] = true
			detail := fmt.Sprintf("%s at %s", w.desc, m.Fset.Position(w.pos))
			if len(w.chain) > 0 {
				detail += " via " + strings.Join(w.chain, " → ")
			}
			m.Reportf(e.pos, "hot path %s calls %s, which allocates (%s)", n.name, e.callee.name, detail)
		}
	}
}

// allocSitesIn walks one function body (nested literals excluded — they are
// their own nodes) and records every allocation site.
func allocSitesIn(m *ModulePass, g *CallGraph, n *funcNode, modulePkgs map[string]bool) []allocSite {
	p := n.pkg
	var out []allocSite
	add := func(pos token.Pos, desc string) {
		out = append(out, allocSite{pos: pos, desc: desc})
	}

	ast.Inspect(n.body, func(nd ast.Node) bool {
		switch t := nd.(type) {
		case *ast.FuncLit:
			if closureCaptures(p, n, t) {
				add(t.Pos(), "closure captures enclosing variables and allocates")
			}
			return false
		case *ast.GoStmt:
			add(t.Pos(), "go statement allocates")
		case *ast.CompositeLit:
			typ := typeOfIn(p, t)
			if typ != nil {
				switch typ.Underlying().(type) {
				case *types.Slice:
					add(t.Pos(), "slice literal allocates")
					return false
				case *types.Map:
					add(t.Pos(), "map literal allocates")
					return false
				}
			}
		case *ast.BinaryExpr:
			if t.Op == token.ADD {
				if tv, ok := p.Info.Types[t]; ok && tv.Value == nil && isStringType(tv.Type) {
					add(t.OpPos, "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			scanAssign(p, t, add)
		case *ast.ReturnStmt:
			scanReturn(p, n, t, add)
		case *ast.SendStmt:
			if ct := typeOfIn(p, t.Chan); ct != nil {
				if ch, ok := ct.Underlying().(*types.Chan); ok {
					checkBox(p, t.Value, ch.Elem(), add)
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(t.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := objForIdent(p, id).(*types.Builtin); isBuiltin {
					return false // cold unwind path: a panic may allocate its argument
				}
			}
			scanCall(m, g, n, t, modulePkgs, add)
		}
		return true
	})
	return out
}

// scanAssign flags map-index assignment and interface boxing on plain `=`
// assignments. `:=` declares the variable with the concrete type of its
// initializer, so no boxing happens there.
func scanAssign(p *Package, t *ast.AssignStmt, add func(token.Pos, string)) {
	for _, lhs := range t.Lhs {
		if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
			if xt := typeOfIn(p, idx.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					add(idx.Pos(), "map assignment may allocate")
				}
			}
		}
	}
	if t.Tok != token.ASSIGN || len(t.Lhs) != len(t.Rhs) {
		return
	}
	for i, lhs := range t.Lhs {
		if lt := typeOfIn(p, lhs); lt != nil {
			checkBox(p, t.Rhs[i], lt, add)
		}
	}
}

// scanReturn flags interface boxing of returned values.
func scanReturn(p *Package, n *funcNode, t *ast.ReturnStmt, add func(token.Pos, string)) {
	var sig *types.Signature
	if n.obj != nil {
		sig, _ = n.obj.Type().(*types.Signature)
	} else if n.lit != nil {
		if lt := typeOfIn(p, n.lit); lt != nil {
			sig, _ = lt.(*types.Signature)
		}
	}
	if sig == nil || sig.Results() == nil || len(t.Results) != sig.Results().Len() {
		return
	}
	for i, r := range t.Results {
		checkBox(p, r, sig.Results().At(i).Type(), add)
	}
}

// scanCall classifies one call expression: builtin, conversion, module call
// (handled by graph edges, but arguments may still box), external call, or
// indirect call.
func scanCall(m *ModulePass, g *CallGraph, n *funcNode, call *ast.CallExpr, modulePkgs map[string]bool, add func(token.Pos, string)) {
	p := n.pkg
	fun := unparen(call.Fun)

	// Conversions.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(p, call, tv.Type, add)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := objForIdent(p, id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				add(call.Pos(), "append may grow its backing array")
			case "println", "print":
				add(call.Pos(), "println allocates its arguments")
			}
			return
		}
	}

	// Interface boxing at argument positions, for any real call.
	if ft := typeOfIn(p, call.Fun); ft != nil {
		if sig, ok := ft.Underlying().(*types.Signature); ok {
			checkCallArgs(p, call, sig, add)
		}
	}

	if targets, _ := g.resolveCall(p, call, n.binds); len(targets) > 0 {
		return // module-internal: composed through graph edges
	}

	// External or indirect.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if modulePkgs[path] {
				return // module call the graph could not pin down; edges cover the candidates
			}
			if trustedPkgs[path] {
				return
			}
			if path == "fmt" {
				add(call.Pos(), fmt.Sprintf("calls fmt.%s, which allocates", obj.Name()))
				return
			}
			add(call.Pos(), fmt.Sprintf("calls external function %s.%s, which reprolint cannot verify is allocation-free", shortPkg(path), obj.Name()))
			return
		}
	}
	add(call.Pos(), "indirect call through a func value; reprolint cannot verify it is allocation-free")
}

// checkConversion flags allocating conversions: to/from string and boxing
// conversions to interface types.
func checkConversion(p *Package, call *ast.CallExpr, target types.Type, add func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if _, isIface := target.Underlying().(*types.Interface); isIface {
		checkBox(p, arg, target, add)
		return
	}
	at := typeOfIn(p, arg)
	if at == nil {
		return
	}
	if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil {
		return // constant-folded
	}
	if isStringType(target) && !isStringType(at) {
		add(call.Pos(), "conversion to string allocates")
		return
	}
	if isStringType(at) {
		if _, isSlice := target.Underlying().(*types.Slice); isSlice {
			add(call.Pos(), "conversion from string allocates")
		}
	}
}

// checkCallArgs flags interface boxing at each argument position, including
// the implicit []T the compiler builds for variadic calls.
func checkCallArgs(p *Package, call *ast.CallExpr, sig *types.Signature, add func(token.Pos, string)) {
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			last := params.At(np - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
				if i == np-1 {
					add(arg.Pos(), "variadic call allocates its argument slice")
				}
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt != nil {
			checkBox(p, arg, pt, add)
		}
	}
}

// checkBox reports an interface-boxing allocation when expr, of a concrete
// non-pointer-shaped type, is converted to an interface-typed destination.
// Pointer-shaped values (pointers, channels, maps, funcs) fit in the
// interface word without allocating; constants are folded into read-only
// data; nil never boxes.
func checkBox(p *Package, expr ast.Expr, dst types.Type, add func(token.Pos, string)) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := p.Info.Types[unparen(expr)]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if _, isIface := src.Underlying().(*types.Interface); isIface {
		return // interface-to-interface carries the existing word
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	add(expr.Pos(), "implicit conversion to interface allocates")
}

// closureCaptures reports whether the literal references variables declared
// in the enclosing function (capture forces a heap-allocated closure).
func closureCaptures(p *Package, n *funcNode, lit *ast.FuncLit) bool {
	enclosing := n.span()
	inner := span{lit.Pos(), lit.End()}
	captures := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if captures {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		dp := v.Pos()
		if enclosing.contains(dp) && !inner.contains(dp) {
			captures = true
			return false
		}
		return true
	})
	return captures
}

type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.lo && p <= s.hi }

// span returns the source extent of the node's declaration.
func (n *funcNode) span() span {
	if n.decl != nil {
		return span{n.decl.Pos(), n.decl.End()}
	}
	return span{n.lit.Pos(), n.lit.End()}
}

// objForIdent resolves an identifier through Uses.
func objForIdent(p *Package, id *ast.Ident) types.Object {
	return p.Info.Uses[id]
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
