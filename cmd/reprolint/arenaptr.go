package main

// arenaptr: the core arena engine (core.Engine[V]) stores every trie node in
// one contiguous slab addressed by int32 indices. Taking the address of a
// slab element (`&e.Nodes[i]`, `&nodes[i].Val`) yields a pointer that goes
// stale the moment the slab grows — Alloc/Clone/Ensure/PathInsert append,
// and append relocates the backing array, after which the old pointer reads
// and writes a dead copy. The discipline: slab pointers may exist only as
// short-lived locals with no slab growth between creation and last use, and
// must never escape the function. Everything else is flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
)

const enginePkg = "repro/internal/core"

// engineTypeNames are the slab-owning types whose methods can grow a slab:
// the bit-at-a-time Engine, the path-compressed CompactEngine, and the
// CompactBuilder (whose Add/Reset grow the engine it wraps).
var engineTypeNames = map[string]bool{
	"Engine": true, "CompactEngine": true, "CompactBuilder": true,
}

// nodeTypeNames are the slab element types; a pointer into either kind of
// slab shares the relocation hazard.
var nodeTypeNames = map[string]bool{
	"Node": true, "CNode": true,
}

var arenaPtrAnalyzer = &Analyzer{
	Name: "arenaptr",
	Doc:  "flags slab-element pointers (&e.Nodes[i]) that escape or are held across a slab-growing call",
	Run:  runArenaPtr,
}

// growthMethods are the engine methods that can append to a slab and
// relocate it (Add and Reset are CompactBuilder's growth paths; the receiver
// type check keeps unrelated methods of the same name out).
var growthMethods = map[string]bool{
	"Alloc": true, "Clone": true, "Ensure": true,
	"PathInsert": true, "Init": true,
	"Add": true, "Reset": true,
}

// isNodeSlabSlice reports whether t is []core.Node[V] — the engine slab (or
// a slice aliasing it, which shares the staleness hazard).
func isNodeSlabSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return nodeTypeNames[obj.Name()] && obj.Pkg() != nil && obj.Pkg().Path() == enginePkg
}

// isEngineType reports whether t is a slab-owning core type (Engine,
// CompactEngine, CompactBuilder) or a pointer to one.
func isEngineType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return engineTypeNames[obj.Name()] && obj.Pkg() != nil && obj.Pkg().Path() == enginePkg
}

// isSlabElemAddr reports whether e is `&expr` where expr indexes into an
// engine slab somewhere along its selector/index chain.
func (v *arenaVisitor) isSlabElemAddr(e ast.Expr) bool {
	ue, ok := e.(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return false
	}
	for x := ue.X; ; {
		switch t := x.(type) {
		case *ast.IndexExpr:
			if isNodeSlabSlice(v.pass.TypeOf(t.X)) {
				return true
			}
			x = t.X
		case *ast.SelectorExpr:
			x = t.X
		case *ast.ParenExpr:
			x = t.X
		default:
			return false
		}
	}
}

// isGrowthCall reports whether n is a call that can grow a slab: an Engine
// growth method, or an append whose result lands in a slab-typed expression
// (e.Nodes = append(e.Nodes, ...) sits inside the engine itself, but the
// pattern is checked everywhere).
func (v *arenaVisitor) isGrowthCall(n ast.Node) bool {
	switch t := n.(type) {
	case *ast.CallExpr:
		sel, ok := t.Fun.(*ast.SelectorExpr)
		if !ok || !growthMethods[sel.Sel.Name] {
			return false
		}
		return isEngineType(v.pass.TypeOf(sel.X))
	case *ast.AssignStmt:
		for i, rhs := range t.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if i < len(t.Lhs) && isNodeSlabSlice(v.pass.TypeOf(t.Lhs[i])) {
				return true
			}
		}
	}
	return false
}

type arenaVisitor struct {
	pass *Pass
}

func runArenaPtr(pass *Pass) {
	v := &arenaVisitor{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if d, ok := n.(*ast.FuncDecl); ok {
				if d.Body != nil {
					v.checkFunc(d.Body)
				}
				return false
			}
			return true
		})
	}
}

// checkFunc flags every slab-element pointer in body that escapes or spans a
// growth call. Nested closures are checked recursively as functions of their
// own; a slab pointer captured from the enclosing function escapes by
// definition and is caught in the enclosing function's capture scan.
func (v *arenaVisitor) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			v.checkFunc(fl.Body)
			return false
		}
		return true
	})
	// Pass 1: classify each slab-pointer creation site.
	type local struct {
		obj      types.Object
		bindPos  token.Pos // start of the binding statement, for reporting
		liveFrom token.Pos // end of the binding statement: growth inside the
		// binding RHS (&e.Nodes[e.PathInsert(...)]) runs before the pointer
		// exists and is the sanctioned grow-then-address idiom
		lastUse  token.Pos
		reported bool
	}
	var locals []*local

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // handled as its own function
		}
		as, ok := n.(*ast.AssignStmt)
		if ok {
			for i, rhs := range as.Rhs {
				if !v.isSlabElemAddr(rhs) || i >= len(as.Lhs) {
					continue
				}
				if id, isIdent := as.Lhs[i].(*ast.Ident); isIdent && id.Name != "_" {
					var obj types.Object
					if o := v.pass.Info.Defs[id]; o != nil {
						obj = o
					} else if o := v.pass.Info.Uses[id]; o != nil {
						obj = o
					}
					if obj != nil && isLocalVar(obj) {
						locals = append(locals, &local{obj: obj, bindPos: as.Pos(), liveFrom: as.End()})
						continue
					}
				}
				// Assignment anywhere but a plain local: the pointer outlives
				// this statement list.
				v.pass.Reportf(rhs.Pos(), "slab-element pointer escapes into %s: it goes stale when the slab grows; keep the int32 index instead", describeLHS(as.Lhs[i]))
			}
			return true
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if v.isSlabElemAddr(r) {
					v.pass.Reportf(r.Pos(), "slab-element pointer escapes via return: it goes stale when the slab grows; return the int32 index instead")
				}
			}
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if v.isSlabElemAddr(arg) {
					v.pass.Reportf(arg.Pos(), "slab-element pointer passed to a call: the callee may retain it or grow the slab; pass the int32 index instead")
				}
			}
			return true
		}
		if cl, ok := n.(*ast.CompositeLit); ok {
			for _, el := range cl.Elts {
				e := el
				if kv, isKV := el.(*ast.KeyValueExpr); isKV {
					e = kv.Value
				}
				if v.isSlabElemAddr(e) {
					v.pass.Reportf(e.Pos(), "slab-element pointer stored in a composite literal: it goes stale when the slab grows; store the int32 index instead")
				}
			}
			return true
		}
		if send, ok := n.(*ast.SendStmt); ok {
			if v.isSlabElemAddr(send.Value) {
				v.pass.Reportf(send.Value.Pos(), "slab-element pointer sent on a channel: it goes stale when the slab grows; send the int32 index instead")
			}
			return true
		}
		return true
	})

	if len(locals) == 0 {
		return
	}

	// Pass 2: last textual use of each tracked local, and whether a closure
	// captures it (capture = escape: the closure can run after any growth).
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				for _, lc := range locals {
					if v.pass.Info.Uses[id] == lc.obj && !lc.reported {
						lc.reported = true
						v.pass.Reportf(id.Pos(), "slab-element pointer %s captured by a closure: it goes stale when the slab grows; capture the int32 index instead", lc.obj.Name())
					}
				}
				return true
			})
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		for _, lc := range locals {
			if v.pass.Info.Uses[id] == lc.obj && id.Pos() > lc.lastUse {
				lc.lastUse = id.Pos()
			}
		}
		return true
	})

	// Pass 3: growth calls inside each local's live window. A window is the
	// textual span bind..lastUse, widened to a whole loop body when the
	// binding sits outside a loop that uses the pointer — iteration N may
	// grow after iteration N's last use and before iteration N+1's first.
	var growths []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if v.isGrowthCall(n) {
			growths = append(growths, n)
		}
		return true
	})
	if len(growths) == 0 {
		return
	}
	var loops []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.FuncLit:
			return false
		}
		return true
	})
	within := func(pos token.Pos, n ast.Node) bool { return n.Pos() <= pos && pos <= n.End() }
	for _, lc := range locals {
		if lc.reported || lc.lastUse == token.NoPos {
			continue
		}
		for _, g := range growths {
			direct := lc.liveFrom <= g.Pos() && g.Pos() <= lc.lastUse
			wrapped := false
			for _, loop := range loops {
				if !within(lc.liveFrom, loop) && within(lc.lastUse, loop) && within(g.Pos(), loop) {
					wrapped = true
					break
				}
			}
			if direct || wrapped {
				lc.reported = true
				v.pass.Reportf(lc.bindPos, "slab-element pointer %s is held across a slab-growing call (%s): the growth relocates the slab and the pointer goes stale; re-index after growth or keep the int32 index",
					lc.obj.Name(), v.pass.Fset.Position(g.Pos()))
				break
			}
		}
	}
}

func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-scope variables hold the pointer beyond any growth call.
	return v.Parent() != v.Pkg().Scope()
}

func describeLHS(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		return "field " + t.Sel.Name
	case *ast.IndexExpr:
		return "a slice/map element"
	case *ast.StarExpr:
		return "a dereferenced pointer"
	case *ast.Ident:
		return "package-level variable " + t.Name
	}
	return "a non-local location"
}
