package main

// The analyzer framework: findings with positions, a cross-package
// annotation table built from //repro:* directives, and //lint:ignore
// suppression. Analyzers are deliberately small — each one encodes exactly
// one invariant the hot paths of this repository depend on.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one invariant check. Exactly one of Run and RunModule is set:
// Run analyzers see one package at a time and fan out on the worker pool;
// RunModule analyzers see every loaded package at once plus the call graph,
// and run after the per-package phase.
type Analyzer struct {
	// Name is the check name used in findings and //lint:ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded module through the call graph.
	RunModule func(m *ModulePass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	*Package
	Fset  *token.FileSet
	Facts *Facts

	check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check: p.check,
		Pos:   p.Fset.Position(pos),
		Msg:   fmt.Sprintf(format, args...),
	})
}

// ModulePass is one module-level analyzer's view of the whole loaded
// package set.
type ModulePass struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Facts *Facts
	Graph *CallGraph

	check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (m *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*m.findings = append(*m.findings, Finding{
		Check: m.check,
		Pos:   m.Fset.Position(pos),
		Msg:   fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Finding is one reported invariant violation.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Facts is the cross-package annotation table, built from every loaded
// package's directive comments before any analyzer runs.
type Facts struct {
	// ImmutableTypes holds "pkgpath.TypeName" for type declarations
	// annotated //repro:immutable: values of the type reachable from a
	// published snapshot must never be written through.
	ImmutableTypes map[string]bool
	// ImmutableFuncs holds (*types.Func).FullName() strings for functions
	// annotated //repro:immutable: their return values are published
	// snapshots.
	ImmutableFuncs map[string]bool
	// NoallocFuncs holds (*types.Func).FullName() strings for functions
	// annotated //repro:noalloc: hot paths that must stay allocation-free,
	// transitively through module-internal calls (checked by hotalloc).
	NoallocFuncs map[string]bool
}

const (
	immutableDirective = "//repro:immutable"
	noallocDirective   = "//repro:noalloc"
)

// collectFacts scans the loaded packages' declaration comments for
// //repro:* directives.
func collectFacts(pkgs []*Package) *Facts {
	f := &Facts{
		ImmutableTypes: make(map[string]bool),
		ImmutableFuncs: make(map[string]bool),
		NoallocFuncs:   make(map[string]bool),
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					declHas := hasDirective(d.Doc, immutableDirective)
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if declHas || hasDirective(ts.Doc, immutableDirective) || hasDirective(ts.Comment, immutableDirective) {
							f.ImmutableTypes[p.Path+"."+ts.Name.Name] = true
						}
					}
				case *ast.FuncDecl:
					obj, ok := p.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					if hasDirective(d.Doc, immutableDirective) {
						f.ImmutableFuncs[obj.FullName()] = true
					}
					if hasDirective(d.Doc, noallocDirective) {
						f.NoallocFuncs[obj.FullName()] = true
					}
				}
			}
		}
	}
	return f
}

func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	checks []string // check names the directive suppresses
	valid  bool     // false: missing check name or reason
	used   bool
}

// collectIgnores parses every //lint:ignore directive in the loaded files.
// The returned map is keyed by filename; each file's directives are keyed by
// the line they apply to (their own line — a trailing comment suppresses its
// statement — and, for a directive alone on its line, the line below).
func collectIgnores(fset *token.FileSet, pkgs []*Package) map[string]map[int][]*ignoreDirective {
	out := make(map[string]map[int][]*ignoreDirective)
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					d := &ignoreDirective{pos: pos}
					// Valid form: //lint:ignore check1,check2 reason...
					fields := strings.Fields(rest)
					if strings.HasPrefix(rest, " ") && len(fields) >= 2 {
						d.checks = strings.Split(fields[0], ",")
						d.valid = true
					}
					m := out[pos.Filename]
					if m == nil {
						m = make(map[int][]*ignoreDirective)
						out[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], d)
				}
			}
		}
	}
	return out
}

func (d *ignoreDirective) matches(check string) bool {
	if !d.valid {
		return false
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// runStats reports where a run spent its wall-clock, for reprolint -v.
type runStats struct {
	Packages int
	Workers  int
	PkgPhase time.Duration // parallel per-package checks
	ModPhase time.Duration // call-graph build + module-level checks
}

// runAnalyzers runs every analyzer over every package, applies suppression,
// and returns the surviving findings sorted by position. Malformed
// //lint:ignore directives are themselves findings (check "lint"): a
// suppression without a stated reason suppresses nothing and documents
// nothing, and a suppression naming a check that is not registered guards
// nothing.
func runAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	return runAnalyzersTimed(fset, pkgs, analyzers, nil)
}

// runAnalyzersTimed is runAnalyzers with optional phase timing. Type
// checking already happened in dependency order inside the loader; the
// per-package check phase is embarrassingly parallel over read-only
// types.Info, so it fans out on a bounded worker pool. Module-level
// analyzers then run over the shared call graph, each collecting into its
// own slice, and everything is merged, suppressed, and sorted at the end —
// output is deterministic regardless of scheduling.
func runAnalyzersTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, stats *runStats) []Finding {
	facts := collectFacts(pkgs)
	ignores := collectIgnores(fset, pkgs)

	var pkgAnalyzers, modAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modAnalyzers = append(modAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) && len(pkgs) > 0 {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	pkgStart := time.Now()
	perPkg := make([][]Finding, len(pkgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p := pkgs[i]
				for _, a := range pkgAnalyzers {
					if a.AppliesTo != nil && !a.AppliesTo(p.Path) {
						continue
					}
					pass := &Pass{
						Package:  p,
						Fset:     fset,
						Facts:    facts,
						check:    a.Name,
						findings: &perPkg[i],
					}
					a.Run(pass)
				}
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	pkgPhase := time.Since(pkgStart)

	modStart := time.Now()
	perMod := make([][]Finding, len(modAnalyzers))
	if len(modAnalyzers) > 0 {
		graph := buildCallGraph(fset, pkgs)
		var mwg sync.WaitGroup
		for i, a := range modAnalyzers {
			mwg.Add(1)
			go func(i int, a *Analyzer) {
				defer mwg.Done()
				m := &ModulePass{
					Fset:     fset,
					Pkgs:     pkgs,
					Facts:    facts,
					Graph:    graph,
					check:    a.Name,
					findings: &perMod[i],
				}
				a.RunModule(m)
			}(i, a)
		}
		mwg.Wait()
	}
	modPhase := time.Since(modStart)

	if stats != nil {
		stats.Packages = len(pkgs)
		stats.Workers = workers
		stats.PkgPhase = pkgPhase
		stats.ModPhase = modPhase
	}

	var raw []Finding
	for _, fs := range perPkg {
		raw = append(raw, fs...)
	}
	for _, fs := range perMod {
		raw = append(raw, fs...)
	}

	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Finding
	for _, f := range raw {
		if d := suppressing(ignores, f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	for _, byLine := range ignores {
		for _, ds := range byLine {
			for _, d := range ds {
				if !d.valid {
					out = append(out, Finding{
						Check: "lint",
						Pos:   d.pos,
						Msg:   "malformed //lint:ignore: want \"//lint:ignore <check>[,<check>] <reason>\" — a suppression must name its check and justify itself",
					})
					continue
				}
				for _, c := range d.checks {
					if !known[c] {
						out = append(out, Finding{
							Check: "lint",
							Pos:   d.pos,
							Msg:   fmt.Sprintf("//lint:ignore names unknown check %q — it suppresses nothing (run reprolint -checks for the registry)", c),
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// suppressing returns the directive that suppresses f, or nil. A directive
// applies to findings on its own line and on the line directly below it (the
// standalone-comment-above-the-statement form).
func suppressing(ignores map[string]map[int][]*ignoreDirective, f Finding) *ignoreDirective {
	byLine := ignores[f.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.matches(f.Check) {
				return d
			}
		}
	}
	return nil
}
