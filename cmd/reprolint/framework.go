package main

// The analyzer framework: findings with positions, a cross-package
// annotation table built from //repro:* directives, and //lint:ignore
// suppression. Analyzers are deliberately small — each one encodes exactly
// one invariant the hot paths of this repository depend on.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant check.
type Analyzer struct {
	// Name is the check name used in findings and //lint:ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(pass *Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	*Package
	Fset  *token.FileSet
	Facts *Facts

	check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check: p.check,
		Pos:   p.Fset.Position(pos),
		Msg:   fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Finding is one reported invariant violation.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Facts is the cross-package annotation table, built from every loaded
// package's directive comments before any analyzer runs.
type Facts struct {
	// ImmutableTypes holds "pkgpath.TypeName" for type declarations
	// annotated //repro:immutable: values of the type reachable from a
	// published snapshot must never be written through.
	ImmutableTypes map[string]bool
	// ImmutableFuncs holds (*types.Func).FullName() strings for functions
	// annotated //repro:immutable: their return values are published
	// snapshots.
	ImmutableFuncs map[string]bool
}

const immutableDirective = "//repro:immutable"

// collectFacts scans the loaded packages' declaration comments for
// //repro:* directives.
func collectFacts(pkgs []*Package) *Facts {
	f := &Facts{
		ImmutableTypes: make(map[string]bool),
		ImmutableFuncs: make(map[string]bool),
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					declHas := hasDirective(d.Doc, immutableDirective)
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if declHas || hasDirective(ts.Doc, immutableDirective) || hasDirective(ts.Comment, immutableDirective) {
							f.ImmutableTypes[p.Path+"."+ts.Name.Name] = true
						}
					}
				case *ast.FuncDecl:
					if !hasDirective(d.Doc, immutableDirective) {
						continue
					}
					if obj, ok := p.Info.Defs[d.Name].(*types.Func); ok {
						f.ImmutableFuncs[obj.FullName()] = true
					}
				}
			}
		}
	}
	return f
}

func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	checks []string // check names the directive suppresses
	valid  bool     // false: missing check name or reason
	used   bool
}

// collectIgnores parses every //lint:ignore directive in the loaded files.
// The returned map is keyed by filename; each file's directives are keyed by
// the line they apply to (their own line — a trailing comment suppresses its
// statement — and, for a directive alone on its line, the line below).
func collectIgnores(fset *token.FileSet, pkgs []*Package) map[string]map[int][]*ignoreDirective {
	out := make(map[string]map[int][]*ignoreDirective)
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					d := &ignoreDirective{pos: pos}
					// Valid form: //lint:ignore check1,check2 reason...
					fields := strings.Fields(rest)
					if strings.HasPrefix(rest, " ") && len(fields) >= 2 {
						d.checks = strings.Split(fields[0], ",")
						d.valid = true
					}
					m := out[pos.Filename]
					if m == nil {
						m = make(map[int][]*ignoreDirective)
						out[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], d)
				}
			}
		}
	}
	return out
}

func (d *ignoreDirective) matches(check string) bool {
	if !d.valid {
		return false
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// runAnalyzers runs every analyzer over every package, applies suppression,
// and returns the surviving findings sorted by position. Malformed
// //lint:ignore directives are themselves findings (check "lint"): a
// suppression without a stated reason suppresses nothing and documents
// nothing.
func runAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	facts := collectFacts(pkgs)
	ignores := collectIgnores(fset, pkgs)

	var raw []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(p.Path) {
				continue
			}
			pass := &Pass{
				Package:  p,
				Fset:     fset,
				Facts:    facts,
				check:    a.Name,
				findings: &raw,
			}
			a.Run(pass)
		}
	}

	var out []Finding
	for _, f := range raw {
		if d := suppressing(ignores, f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	for _, byLine := range ignores {
		for _, ds := range byLine {
			for _, d := range ds {
				if !d.valid {
					out = append(out, Finding{
						Check: "lint",
						Pos:   d.pos,
						Msg:   "malformed //lint:ignore: want \"//lint:ignore <check>[,<check>] <reason>\" — a suppression must name its check and justify itself",
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// suppressing returns the directive that suppresses f, or nil. A directive
// applies to findings on its own line and on the line directly below it (the
// standalone-comment-above-the-statement form).
func suppressing(ignores map[string]map[int][]*ignoreDirective, f Finding) *ignoreDirective {
	byLine := ignores[f.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.matches(f.Check) {
				return d
			}
		}
	}
	return nil
}
