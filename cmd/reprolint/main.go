// Command reprolint enforces this repository's load-bearing invariants with
// static analysis. Four per-package checks: RFC 1982 serial ordering
// (serialcmp), arena slab pointer discipline (arenaptr), snapshot
// copy-on-write (snapshotwrite), and no blocking under RTR locks
// (blockinglock). Three module-level checks composed over an inter-procedural
// call graph: consistent lock acquisition order (lockorder), provable stop
// paths for every goroutine (goroleak), and allocation-free //repro:noalloc
// hot paths (hotalloc). It is built on go/parser and go/types alone, keeping
// the module dependency-free.
//
// Usage:
//
//	reprolint [-tests] [-json] [-v] [packages]
//
// Packages default to ./... relative to the working directory. Findings are
// printed one per line as file:line:col: [check] message, or as one JSON
// object per line with -json. Exit status is 0 when clean, 1 when findings
// remain, 2 on load or usage errors. -v reports load and check wall-clock
// to stderr.
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//lint:ignore <check>[,<check>] <reason>
//
// The reason is mandatory: an unexplained suppression is itself reported,
// and so is a suppression naming an unregistered check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

var analyzers = []*Analyzer{
	serialCmpAnalyzer,
	arenaPtrAnalyzer,
	snapshotWriteAnalyzer,
	blockingLockAnalyzer,
	lockOrderAnalyzer,
	goroLeakAnalyzer,
	hotAllocAnalyzer,
}

// jsonFinding is the -json record shape; the field names are part of the CI
// problem-matcher contract in .github/reprolint-problem-matcher.json.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("checks", false, "list the registered checks and exit")
	asJSON := flag.Bool("json", false, "emit findings as one JSON object per line")
	verbose := flag.Bool("v", false, "report load and check wall-clock to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-tests] [-json] [-v] [packages]\n\nChecks:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	loader.Tests = *tests

	loadStart := time.Now()
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	var stats runStats
	findings := runAnalyzersTimed(loader.Fset, pkgs, analyzers, &stats)
	if *verbose {
		fmt.Fprintf(os.Stderr, "reprolint: %d packages; load+typecheck %v; package checks %v (%d workers); module checks %v\n",
			stats.Packages, loadTime.Round(time.Millisecond), stats.PkgPhase.Round(time.Millisecond), stats.Workers, stats.ModPhase.Round(time.Millisecond))
	}

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *asJSON {
			enc.Encode(jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column, Check: f.Check, Message: f.Msg})
		} else {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
