// Command reprolint enforces this repository's load-bearing invariants with
// static analysis: RFC 1982 serial ordering (serialcmp), arena slab pointer
// discipline (arenaptr), snapshot copy-on-write (snapshotwrite), and no
// blocking under RTR locks (blockinglock). It is built on go/parser and
// go/types alone, keeping the module dependency-free.
//
// Usage:
//
//	reprolint [-tests] [packages]
//
// Packages default to ./... relative to the working directory. Findings are
// printed one per line as file:line:col: [check] message. Exit status is 0
// when clean, 1 when findings remain, 2 on load or usage errors.
//
// A finding is suppressed by a directive on its line or the line above:
//
//	//lint:ignore <check>[,<check>] <reason>
//
// The reason is mandatory: an unexplained suppression is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
)

var analyzers = []*Analyzer{
	serialCmpAnalyzer,
	arenaPtrAnalyzer,
	snapshotWriteAnalyzer,
	blockingLockAnalyzer,
}

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	list := flag.Bool("checks", false, "list the registered checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-tests] [packages]\n\nChecks:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
	loader.Tests = *tests

	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}

	findings := runAnalyzers(loader.Fset, pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
