package main

// snapshotwrite: lock-free readers (rov.LiveIndex and anything built on the
// same idiom) depend on published snapshots being immutable — a writer never
// mutates a value a Load() may have handed to a concurrent reader; it path-
// copies into fresh cells and publishes a new root. The analyzer enforces
// the copy-on-write discipline:
//
//   - a type annotated //repro:immutable marks its values as
//     published-immutable once they cross a package boundary;
//   - a function annotated //repro:immutable returns published snapshots;
//   - Load() on a sync/atomic.Pointer[T] of an annotated T yields a
//     published snapshot.
//
// Any assignment that writes *through* such a value (x.f = v, x.s[i] = v,
// *p = v, x.f++) is flagged. Rebinding the variable itself is fine. Inside
// the annotated type's own package, values reached via parameters are
// exempt — that is where the sanctioned construction and compaction paths
// live — but Load() results are immutable everywhere, including there.

import (
	"go/ast"
	"go/types"
	"strings"
)

var snapshotWriteAnalyzer = &Analyzer{
	Name: "snapshotwrite",
	Doc:  "flags writes through values obtained from a snapshot Load() or annotated //repro:immutable",
	Run:  runSnapshotWrite,
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T] (or *that) and
// returns T.
func atomicPointerElem(t types.Type) (types.Type, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil, false
	}
	return args.At(0), true
}

// immutableTypeName returns the Facts key ("pkgpath.TypeName") for t when t
// is a named type or pointer to one, stripping one pointer level.
func immutableTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}

type snapVisitor struct {
	pass *Pass
}

func runSnapshotWrite(pass *Pass) {
	v := &snapVisitor{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					v.checkFunc(d.Type, d.Body)
				}
				return false
			case *ast.FuncLit:
				v.checkFunc(d.Type, d.Body)
				return false
			}
			return true
		})
	}
}

// isImmutableSource reports whether evaluating e yields a published
// snapshot: a Load() on an atomic pointer to an annotated type, or a call to
// an annotated function.
func (v *snapVisitor) isImmutableSource(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok && sel.Sel.Name == "Load" {
		if elem, isAtomic := atomicPointerElem(v.pass.TypeOf(sel.X)); isAtomic {
			if name, named := immutableTypeName(elem); named && v.pass.Facts.ImmutableTypes[name] {
				return true
			}
		}
	}
	// Annotated function or method.
	var callee types.Object
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		callee = v.pass.Info.Uses[fn]
	case *ast.SelectorExpr:
		callee = v.pass.Info.Uses[fn.Sel]
	}
	if f, ok := callee.(*types.Func); ok && v.pass.Facts.ImmutableFuncs[f.FullName()] {
		return true
	}
	return false
}

// immutableParam reports whether obj is a parameter of an annotated type
// declared outside the type's own package (the defining package holds the
// sanctioned construction paths).
func (v *snapVisitor) immutableParam(obj types.Object, paramObjs map[types.Object]bool) bool {
	if !paramObjs[obj] {
		return false
	}
	name, ok := immutableTypeName(obj.Type())
	if !ok || !v.pass.Facts.ImmutableTypes[name] {
		return false
	}
	typePkg := name[:strings.LastIndex(name, ".")]
	return typePkg != v.pass.Path
}

func (v *snapVisitor) checkFunc(ftype *ast.FuncType, body *ast.BlockStmt) {
	// Parameters of annotated types (cross-package rule).
	paramObjs := make(map[types.Object]bool)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := v.pass.Info.Defs[name]; obj != nil {
					paramObjs[obj] = true
				}
			}
		}
	}

	// Locals bound (directly or transitively) to an immutable source. One
	// in-order pass per iteration, to a fixpoint: Go forbids use before
	// declaration for locals, but `x := imm; y := x` across nested blocks is
	// easier to close transitively than to order.
	immLocals := make(map[types.Object]bool)
	isImmutableExpr := func(e ast.Expr) bool { return false } // forward decl
	isImmutableExpr = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch t := e.(type) {
		case *ast.Ident:
			obj := v.pass.Info.Uses[t]
			if obj == nil {
				obj = v.pass.Info.Defs[t]
			}
			if obj == nil {
				return false
			}
			return immLocals[obj] || v.immutableParam(obj, paramObjs)
		case *ast.SelectorExpr:
			return isImmutableExpr(t.X)
		case *ast.IndexExpr:
			return isImmutableExpr(t.X)
		case *ast.StarExpr:
			return isImmutableExpr(t.X)
		case *ast.CallExpr:
			return v.isImmutableSource(t)
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := v.pass.Info.Defs[id]
				if obj == nil {
					obj = v.pass.Info.Uses[id]
				}
				if obj == nil || immLocals[obj] {
					continue
				}
				if isImmutableExpr(rhs) {
					immLocals[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Flag writes through immutable values: at least one selector/index/
	// deref step between the assigned location and an immutable root.
	writesThrough := func(lhs ast.Expr) bool {
		lhs = ast.Unparen(lhs)
		switch t := lhs.(type) {
		case *ast.SelectorExpr:
			return isImmutableExpr(t.X)
		case *ast.IndexExpr:
			return isImmutableExpr(t.X)
		case *ast.StarExpr:
			return isImmutableExpr(t.X)
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		// FuncLits are traversed in place: a closure writing through a
		// captured snapshot is the same violation, and captured locals
		// resolve to the same objects tracked in immLocals.
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if writesThrough(lhs) {
					v.pass.Reportf(lhs.Pos(), "write through a published snapshot: the value is //repro:immutable once published; path-copy into fresh cells and republish instead")
				}
			}
		case *ast.IncDecStmt:
			if writesThrough(s.X) {
				v.pass.Reportf(s.X.Pos(), "write through a published snapshot: the value is //repro:immutable once published; path-copy into fresh cells and republish instead")
			}
		}
		return true
	})
}
