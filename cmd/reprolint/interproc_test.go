package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLockOrderGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "lockorder"), wantsIn(t, "lockorder"))
}

func TestGoroLeakGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "goroleak"), wantsIn(t, "goroleak"))
}

func TestHotAllocGolden(t *testing.T) {
	checkGolden(t, loadTestdata(t, "hotalloc"), wantsIn(t, "hotalloc"))
}

// buildTestGraph loads one testdata package and builds its call graph.
func buildTestGraph(t *testing.T, name string) *CallGraph {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{filepath.Join(wd, "testdata", "src", name)})
	if err != nil {
		t.Fatal(err)
	}
	return buildCallGraph(loader.Fset, pkgs)
}

// TestCallGraph pins the call-graph builder's own behavior: recursion,
// mutual recursion, interface dispatch widening, method values, and
// single-assignment func-literal bindings, plus the callees-first SCC order
// every summary composition depends on.
func TestCallGraph(t *testing.T) {
	g := buildTestGraph(t, "callgraph")

	node := func(name string) *funcNode {
		t.Helper()
		for _, n := range g.nodes {
			if n.name == name {
				return n
			}
		}
		var names []string
		for _, n := range g.nodes {
			names = append(names, n.name)
		}
		t.Fatalf("no node %q; have %v", name, names)
		return nil
	}
	edgesTo := func(n *funcNode, callee string) []callEdge {
		var out []callEdge
		for _, e := range n.out {
			if e.callee.name == callee {
				out = append(out, e)
			}
		}
		return out
	}

	// Self-recursion: fact calls itself statically.
	fact := node("callgraph.fact")
	if es := edgesTo(fact, "callgraph.fact"); len(es) != 1 || es[0].kind != edgeStatic {
		t.Errorf("fact self-edge: got %+v", es)
	}

	// Mutual recursion: ping and pong share one SCC of size two.
	ping, pong := node("callgraph.ping"), node("callgraph.pong")
	if ping.sccID != pong.sccID {
		t.Errorf("ping sccID %d != pong sccID %d", ping.sccID, pong.sccID)
	}
	sccSize := 0
	for _, n := range g.nodes {
		if n.sccID == ping.sccID {
			sccSize++
		}
	}
	if sccSize != 2 {
		t.Errorf("ping/pong SCC size = %d, want 2", sccSize)
	}

	// Interface dispatch widens to every concrete implementation.
	dispatch := node("callgraph.dispatch")
	for _, impl := range []string{"(callgraph.A).Do", "(*callgraph.B).Do"} {
		if es := edgesTo(dispatch, impl); len(es) != 1 || es[0].kind != edgeIface {
			t.Errorf("dispatch -> %s: got %+v", impl, es)
		}
	}

	// A method value is a reference, not a call.
	takeValue := node("callgraph.takeValue")
	if es := edgesTo(takeValue, "(callgraph.A).Do"); len(es) != 1 || es[0].kind != edgeRef {
		t.Errorf("takeValue -> (callgraph.A).Do: got %+v", es)
	}

	// A single-assignment local binding resolves the literal statically,
	// and the literal's own edges compose onward.
	useBound := node("callgraph.useBound")
	if es := edgesTo(useBound, "callgraph.useBound$1"); len(es) == 0 || es[0].kind != edgeStatic {
		t.Errorf("useBound -> useBound$1: got %+v", es)
	}
	lit := node("callgraph.useBound$1")
	if es := edgesTo(lit, "callgraph.fact"); len(es) != 1 || es[0].kind != edgeStatic {
		t.Errorf("useBound$1 -> fact: got %+v", es)
	}

	// Callees-first: every cross-SCC edge points at an earlier SCC, the
	// invariant composeBottomUp's single forward pass relies on.
	for _, n := range g.nodes {
		for _, e := range n.out {
			if e.callee.sccID != n.sccID && e.callee.sccID > n.sccID {
				t.Errorf("edge %s -> %s breaks callees-first SCC order (%d -> %d)",
					n.name, e.callee.name, n.sccID, e.callee.sccID)
			}
		}
	}
}

// TestSuppressionInventory audits every //lint:ignore in the repository:
// each directive must be well-formed and name only registered checks, so a
// typo'd suppression cannot silently guard nothing.
func TestSuppressionInventory(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}

	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	seen := make(map[*ignoreDirective]bool)
	for _, byLine := range collectIgnores(loader.Fset, pkgs) {
		for _, ds := range byLine {
			for _, d := range ds {
				if seen[d] {
					continue // indexed under both its line and the line below
				}
				seen[d] = true
				if !d.valid {
					t.Errorf("%s: malformed //lint:ignore", d.pos)
					continue
				}
				for _, c := range d.checks {
					if !known[c] {
						t.Errorf("%s: suppression names unregistered check %q", d.pos, c)
					}
					// The RTR server's writer-pool rework removed the last
					// blockinglock suppression (a publisher that wrote to
					// router sockets under its own lock). The check's
					// invariant now holds everywhere unaided; a new
					// suppression would mean a publish path blocking on I/O
					// again and needs that design argument re-made, not a
					// directive.
					if c == "blockinglock" {
						t.Errorf("%s: blockinglock suppression reintroduced; hold-and-write designs were retired with the RTR writer pool", d.pos)
					}
				}
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no //lint:ignore directives found; inventory test is scanning nothing")
	}
}

// TestHotAllocProbe verifies the check actually fails the build when an
// allocation is injected into an annotated hot path: the module's internal
// packages are copied to a temp dir, a fmt.Sprintf is inserted into
// keyMatch, and hotalloc must flag that exact line.
func TestHotAllocProbe(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/reprolint -> repo root
	tmp := t.TempDir()

	copyFile := func(src, dst string) {
		t.Helper()
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile(filepath.Join(root, "go.mod"), filepath.Join(tmp, "go.mod"))
	err = filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		copyFile(path, filepath.Join(tmp, rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Inject the allocation.
	target := filepath.Join(tmp, "internal", "rov", "compact.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	anchor := "func keyMatch(nhi, nlo, qhi, qlo uint64, plen uint8) bool {\n"
	if strings.Count(src, anchor) != 1 {
		t.Fatalf("keyMatch anchor not found exactly once in %s", target)
	}
	src = strings.Replace(src, anchor, anchor+"\t_ = fmt.Sprintf(\"%d\", plen)\n", 1)
	src = strings.Replace(src, "package rov\n", "package rov\n\nimport \"fmt\"\n", 1)
	if err := os.WriteFile(target, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "fmt.Sprintf(\"%d\", plen)") {
			injected = i + 1
			break
		}
	}

	loader, err := NewLoader(tmp)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings := runAnalyzers(loader.Fset, pkgs, analyzers)
	if len(findings) == 0 {
		t.Fatal("injected fmt.Sprintf into keyMatch produced no findings")
	}
	sawSprintf := false
	for _, f := range findings {
		if f.Check != "hotalloc" || f.Pos.Filename != target || f.Pos.Line != injected {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if strings.Contains(f.Msg, "fmt.Sprintf") {
			sawSprintf = true
		}
	}
	if !sawSprintf {
		t.Errorf("no hotalloc finding names fmt.Sprintf: %v", findings)
	}
}
