package main

// The loader is reprolint's package front end: it discovers the module's
// packages, parses them with comments (the directives live there), and
// type-checks them in dependency order. It is built on go/parser and
// go/types alone — module-internal imports are served from the loader's own
// checked results, and only standard-library imports fall through to the
// go/importer source importer — so the tool matches the repository's
// zero-dependency go.mod.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/rtr").
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	imports []string // module-internal imports, for the topological sort
}

// Loader loads and type-checks module packages.
type Loader struct {
	// Tests includes in-package _test.go files. External test packages
	// (package foo_test) are out of scope: they cannot hold the invariants
	// the analyzers check without also holding the in-package API.
	Tests bool

	Fset *token.FileSet

	moduleRoot string
	modulePath string
	checked    map[string]*types.Package // self-checked packages, by path
	stdImp     types.ImporterFrom
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: path,
		checked:    make(map[string]*types.Package),
		stdImp:     imp,
	}, nil
}

// findModule walks up from dir to the first go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// Load resolves patterns — "./..." for every package under the module root,
// or explicit directory paths — and returns the packages type-checked in
// dependency order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			walked, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				addDir(d)
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		addDir(abs)
	}

	var pkgs []*Package
	byPath := make(map[string]*Package)
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no buildable files
		}
		pkgs = append(pkgs, p)
		byPath[p.Path] = p
	}

	order, err := toposort(pkgs, byPath)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		if err := l.typecheck(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// walkModule returns every package directory under the module root, skipping
// testdata, vendor, hidden, and underscore-prefixed directories — the same
// pruning the go tool applies to "./..." patterns.
func (l *Loader) walkModule() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.moduleRoot &&
				(name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of one directory contiguously, but be safe about
	// duplicates after sorting.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// parseDir parses one package directory. It returns nil when the directory
// holds no buildable non-test files.
func (l *Loader) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil {
		return nil, fmt.Errorf("%s: outside module %s", dir, l.moduleRoot)
	}
	importPath := l.modulePath
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}

	p := &Package{Path: importPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.Tests {
			continue
		}
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			continue // external test package: out of scope (see Loader.Tests)
		}
		p.Files = append(p.Files, file)
	}
	if len(p.Files) == 0 {
		return nil, nil
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
				p.imports = append(p.imports, path)
			}
		}
	}
	return p, nil
}

// toposort orders pkgs so every module-internal import either precedes its
// importer or is absent from the loaded set (and will be resolved by the
// source importer instead).
func toposort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current path: a grey edge is an import cycle
		black = 2 // done
	)
	color := make(map[string]int, len(pkgs))
	order := make([]*Package, 0, len(pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch color[p.Path] {
		case grey:
			return fmt.Errorf("import cycle through %s", p.Path)
		case black:
			return nil
		}
		color[p.Path] = grey
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		color[p.Path] = black
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Import serves module packages already checked in this run and defers
// everything else to the source importer. It makes the Loader usable as a
// types.Importer for its own type-checking passes.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	// Resolve from the module root, not the importing file's directory: the
	// source importer needs a directory inside the module to pick up the
	// module context, and every loaded file satisfies that.
	return l.stdImp.ImportFrom(path, l.moduleRoot, 0)
}

// typecheck runs go/types over one parsed package.
func (l *Loader) typecheck(p *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	cfg := &types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := cfg.Check(p.Path, l.Fset, p.Files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("type checking %s:\n\t%s", p.Path, strings.Join(msgs, "\n\t"))
	}
	p.Types = tpkg
	p.Info = info
	l.checked[p.Path] = tpkg
	return nil
}
