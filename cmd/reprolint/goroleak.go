package main

// goroleak: every `go` statement in non-test module code must have a
// provable stop path. The supervisor/compactor/dispatch/writer-pool
// lifecycles all follow one of three shapes, checked in order through the
// call graph:
//
//  1. the goroutine (transitively) blocks on a channel — a select with no
//     default, a plain receive, or a range over a channel — so closing the
//     channel (or sending the sentinel) stops it;
//  2. the goroutine provably terminates: nothing it (transitively) calls
//     contains an unconditioned `for` loop;
//  3. neither can be shown, and a `//repro:owns-goroutine <stopper>`
//     annotation on the go statement (or the line above) names the
//     Close/Stop method responsible for terminating it — validated to
//     resolve to a declared module function or method.
//
// Selects *with* a default are non-blocking and do not count as stop paths
// (the dispatch loop's drop-stale-notify select is exactly the shape that
// must not pass). Spawn edges do not propagate either property: a nested
// goroutine's receive stops the nested goroutine, not its parent.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var goroLeakAnalyzer = &Analyzer{
	Name:      "goroleak",
	Doc:       "every go statement needs a provable stop path (blocking receive/select, termination, or //repro:owns-goroutine <stopper>)",
	RunModule: runGoroLeak,
}

const ownsDirective = "//repro:owns-goroutine"

func goroLeakScoped(path string) bool {
	if strings.Contains(path, "testdata/src/") {
		return strings.Contains(path, "testdata/src/goroleak")
	}
	return true
}

// ownsAnnotation is one parsed //repro:owns-goroutine directive.
type ownsAnnotation struct {
	pos     token.Pos
	line    int
	stopper string
	used    bool
}

// loopWhere records which function an unbounded loop was found in, for the
// finding message.
type loopWhere struct {
	fn    string
	chain []string
}

func runGoroLeak(m *ModulePass) {
	g := m.Graph

	// Property composition over the call graph. canStop: a blocking
	// receive/select is reachable (ref edges included — a stored handler
	// with a receive is still a stop path once invoked). hasLoop: an
	// unconditioned for loop is reachable through calls that actually run
	// (static + interface edges only).
	canStop := make(map[*funcNode]bool)
	hasLoop := make(map[*funcNode]*loopWhere)
	ownStop := make(map[*funcNode]bool)
	ownLoop := make(map[*funcNode]bool)
	for _, n := range g.nodes {
		if n.body == nil {
			continue
		}
		ownStop[n] = bodyHasBlockingReceive(n)
		ownLoop[n] = bodyHasUnboundedLoop(n)
	}
	g.composeBottomUp(func(n *funcNode) bool {
		grew := false
		if !canStop[n] {
			if ownStop[n] {
				canStop[n] = true
				grew = true
			} else {
				for _, e := range n.out {
					if e.spawn {
						continue
					}
					if canStop[e.callee] {
						canStop[n] = true
						grew = true
						break
					}
				}
			}
		}
		if hasLoop[n] == nil {
			if ownLoop[n] {
				hasLoop[n] = &loopWhere{fn: n.name}
				grew = true
			} else {
				for _, e := range n.out {
					if e.spawn || e.kind == edgeRef {
						continue
					}
					if w := hasLoop[e.callee]; w != nil {
						chain := make([]string, 0, len(w.chain)+1)
						chain = append(chain, e.callee.name)
						chain = append(chain, w.chain...)
						hasLoop[n] = &loopWhere{fn: w.fn, chain: chain}
						grew = true
						break
					}
				}
			}
		}
		return grew
	})

	// Collect annotations per file, then check every go statement in scope.
	annots := make(map[string]map[int]*ownsAnnotation)
	for _, p := range m.Pkgs {
		if !goroLeakScoped(p.Path) {
			continue
		}
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ownsDirective)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					a := &ownsAnnotation{pos: c.Pos(), line: pos.Line}
					if fields := strings.Fields(rest); len(fields) > 0 && strings.HasPrefix(rest, " ") {
						a.stopper = fields[0]
					}
					byLine := annots[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]*ownsAnnotation)
						annots[pos.Filename] = byLine
					}
					byLine[pos.Line] = a
				}
			}
		}
	}

	for _, n := range g.nodes {
		if n.body == nil || !goroLeakScoped(n.pkg.Path) {
			continue
		}
		pos := m.Fset.Position(n.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(n.body, func(nd ast.Node) bool {
			switch t := nd.(type) {
			case *ast.FuncLit:
				return false // its own node
			case *ast.GoStmt:
				checkGoStmt(m, g, n, t, annots, canStop, hasLoop)
			}
			return true
		})
	}

	// Annotations that matched no go statement are stale.
	for _, byLine := range annots {
		for _, a := range byLine {
			if !a.used {
				m.Reportf(a.pos, "%s matches no go statement on its line or the line below", ownsDirective)
			}
		}
	}
}

func checkGoStmt(m *ModulePass, g *CallGraph, n *funcNode, gs *ast.GoStmt,
	annots map[string]map[int]*ownsAnnotation, canStop map[*funcNode]bool, hasLoop map[*funcNode]*loopWhere) {

	pos := m.Fset.Position(gs.Pos())
	var annot *ownsAnnotation
	if byLine := annots[pos.Filename]; byLine != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			if a := byLine[line]; a != nil {
				annot = a
				break
			}
		}
	}
	if annot != nil {
		annot.used = true
		if annot.stopper == "" {
			m.Reportf(annot.pos, "%s needs a stopper: name the Close/Stop method that terminates this goroutine", ownsDirective)
			return
		}
		if !stopperDeclared(g, annot.stopper) {
			m.Reportf(annot.pos, "%s names %q, which matches no declared function or method in the module", ownsDirective, annot.stopper)
		}
		return
	}

	// Resolve the spawned function.
	var targets []*funcNode
	if fl, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if c := g.byLit[fl]; c != nil {
			targets = []*funcNode{c}
		}
	} else {
		targets, _ = g.resolveCall(n.pkg, gs.Call, n.binds)
	}
	if len(targets) == 0 {
		m.Reportf(gs.Pos(), "goroutine spawns a function reprolint cannot resolve; annotate with %s <stopper> naming what terminates it", ownsDirective)
		return
	}
	for _, tgt := range targets {
		if canStop[tgt] {
			return // a blocking receive/select is reachable: close-able stop path
		}
	}
	for _, tgt := range targets {
		if w := hasLoop[tgt]; w != nil {
			// The chain ends at the looping function itself; only the
			// intermediate hops are worth naming.
			where := w.fn
			if len(w.chain) > 1 {
				where += " (via " + strings.Join(w.chain[:len(w.chain)-1], " → ") + ")"
			}
			m.Reportf(gs.Pos(), "goroutine has no provable stop path: %s loops unconditionally in %s and never blocks on a channel; add a stop channel or annotate with %s <stopper>", tgt.name, where, ownsDirective)
			return
		}
	}
	// No receive, but no unbounded loop either: the goroutine terminates.
}

// bodyHasBlockingReceive reports whether the node's own body (literals
// excluded) contains a select with no default, a blocking receive, or a
// range over a channel. Receives that are the comm clause of a select with a
// default are non-blocking and do not count.
func bodyHasBlockingReceive(n *funcNode) bool {
	nonBlocking := make(map[ast.Node]bool)
	found := false
	ast.Inspect(n.body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch t := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range t.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				found = true
				return false
			}
			for _, c := range t.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if arrow := commReceive(cc.Comm); arrow != nil {
					nonBlocking[arrow] = true
				}
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && !nonBlocking[t] {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if typ := typeOfIn(n.pkg, t.X); typ != nil {
				if _, isChan := typ.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// commReceive extracts the receive expression from a select comm clause.
func commReceive(s ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch t := s.(type) {
	case *ast.ExprStmt:
		e = t.X
	case *ast.AssignStmt:
		if len(t.Rhs) == 1 {
			e = t.Rhs[0]
		}
	}
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}

// bodyHasUnboundedLoop reports whether the node's own body (literals
// excluded) contains a `for` with no condition. Range loops are bounded
// (range over a channel is a receive, caught by the receive scan).
func bodyHasUnboundedLoop(n *funcNode) bool {
	found := false
	ast.Inspect(n.body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch t := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if t.Cond == nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stopperDeclared validates a //repro:owns-goroutine stopper name against
// the module's declared functions: "(*Type).Method", "Type.Method",
// "pkg.Func", or a bare "Func"/"Method" all resolve.
func stopperDeclared(g *CallGraph, name string) bool {
	clean := strings.NewReplacer("(", "", ")", "", "*", "").Replace(name)
	parts := strings.Split(clean, ".")
	method := parts[len(parts)-1]
	qual := ""
	if len(parts) >= 2 {
		qual = parts[len(parts)-2]
	}
	for _, n := range g.nodes {
		if n.decl == nil || n.decl.Name == nil || n.decl.Name.Name != method {
			continue
		}
		if qual == "" {
			return true
		}
		if recvBaseName(n.obj) == qual || shortPkg(n.pkg.Path) == qual {
			return true
		}
	}
	return false
}

// recvBaseName returns the receiver's named-type name, or "".
func recvBaseName(obj *types.Func) string {
	if obj == nil {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return ""
}
