// Package arenaptr is reprolint testdata: true positives and true negatives
// for the arenaptr check.
package arenaptr

import (
	"repro/internal/core"
	"repro/internal/prefix"
)

var pool = core.NewSlabPool[int](4, 1<<20)

type holder struct {
	ptr *core.Node[int]
}

var sink *core.Node[int]

// True positives: slab pointers that escape or span a growth call.

func escapeReturn(e *core.Engine[int]) *core.Node[int] {
	return &e.Nodes[0] // want "escapes via return"
}

func escapeField(e *core.Engine[int], h *holder) {
	h.ptr = &e.Nodes[0] // want "escapes into field ptr"
}

func escapePackageVar(e *core.Engine[int]) {
	sink = &e.Nodes[0] // want "escapes into package-level variable sink"
}

func escapeCallArg(e *core.Engine[int]) {
	consume(&e.Nodes[0]) // want "passed to a call"
}

func escapeComposite(e *core.Engine[int]) holder {
	return holder{ptr: &e.Nodes[0]} // want "stored in a composite literal"
}

func escapeChannel(e *core.Engine[int], ch chan *core.Node[int]) {
	ch <- &e.Nodes[0] // want "sent on a channel"
}

func heldAcrossGrowth(e *core.Engine[int]) int {
	n := &e.Nodes[0] // want "held across a slab-growing call"
	e.Alloc(7)
	return n.Val
}

func capturedByClosure(e *core.Engine[int]) func() int {
	n := &e.Nodes[0]
	return func() int {
		return n.Val // want "captured by a closure"
	}
}

func heldAcrossLoopGrowth(e *core.Engine[int], vals []int) {
	n := &e.Nodes[0] // want "held across a slab-growing call"
	for _, v := range vals {
		n.Val += v
		e.Alloc(v)
	}
}

// True negatives: the sanctioned idioms.

// growThenAddress is the canonical pattern: grow first, address the result,
// use it before anything else can grow.
func growThenAddress(e *core.Engine[int]) {
	n := &e.Nodes[e.Alloc(3)]
	n.Val = 9
}

func shortLived(e *core.Engine[int]) int {
	n := &e.Nodes[0]
	n.Val++
	return n.Val
}

// indexSurvivesGrowth holds the int32 index — not a pointer — across growth.
func indexSurvivesGrowth(e *core.Engine[int]) int {
	i := e.Alloc(1)
	e.Alloc(2)
	return e.Nodes[i].Val
}

// growthBeforeBinding: the growth precedes the pointer's creation entirely.
func growthBeforeBinding(e *core.Engine[int]) int {
	e.Alloc(5)
	n := &e.Nodes[0]
	return n.Val
}

func consume(n *core.Node[int]) { _ = n }

// The compact engine shares the slab discipline: CNode pointers go stale on
// CompactEngine/CompactBuilder growth (Alloc, Init, Add, Reset) exactly like
// Node pointers on Engine growth.

var csink *core.CNode[int]

func compactEscapeReturn(e *core.CompactEngine[int]) *core.CNode[int] {
	return &e.Nodes[0] // want "escapes via return"
}

func compactEscapePackageVar(e *core.CompactEngine[int]) {
	csink = &e.Nodes[0] // want "escapes into package-level variable csink"
}

func compactHeldAcrossGrowth(e *core.CompactEngine[int], p prefix.Prefix) int {
	n := &e.Nodes[0] // want "held across a slab-growing call"
	e.Alloc(p, 7)
	return n.Val
}

func compactHeldAcrossBuilderAdd(b *core.CompactBuilder[int], e *core.CompactEngine[int], p prefix.Prefix) int {
	n := &e.Nodes[0] // want "held across a slab-growing call"
	b.Add(p, 0)
	return n.Val
}

func compactHeldAcrossBuilderReset(b *core.CompactBuilder[int], e *core.CompactEngine[int]) int {
	n := &e.Nodes[0] // want "held across a slab-growing call"
	b.Reset(e, 8, prefix.IPv4, 0)
	return n.Val
}

// Sanctioned: grow first, address the result, use before the next growth.
func compactGrowThenAddress(e *core.CompactEngine[int], p prefix.Prefix) {
	n := &e.Nodes[e.Alloc(p, 3)]
	n.Val = 9
}

// Sanctioned: the int32 index survives builder growth; re-index afterwards.
func compactIndexSurvivesGrowth(b *core.CompactBuilder[int], e *core.CompactEngine[int], p, q prefix.Prefix) int {
	i := b.Add(p, 1)
	b.Add(q, 2)
	return e.Nodes[i].Val
}
