// Package blockinglock is reprolint testdata: true positives and true
// negatives for the blockinglock check.
package blockinglock

import (
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	n  int
}

// True positives: blocking while a lock is held.

func (s *server) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) sendUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "channel send while s.mu is held"
}

func (s *server) receiveUnderLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want "channel receive while s.rw is held"
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Second) // want "blocking call time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *server) waitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want "blocking call WaitGroup.Wait while s.mu is held"
}

func (s *server) selectUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select with no default while s.mu is held"
	case s.ch <- 1:
	case <-done:
	}
}

// True negatives: blocking after release, non-blocking selects, and work
// handed to other goroutines.

func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
}

func (s *server) nonBlockingSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *server) spawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

func (s *server) branchReleases() {
	s.mu.Lock()
	if s.n > 0 {
		s.n--
	}
	s.mu.Unlock()
	<-s.ch
}
