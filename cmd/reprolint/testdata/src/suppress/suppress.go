// Package suppress is reprolint testdata for the //lint:ignore mechanism.
// Expectations live in reprolint_test.go (content-anchored, not // want
// comments: a want comment appended to a //lint:ignore line would become
// the directive's reason and change what is being tested).
package suppress

import "repro/internal/rtr"

// suppressedAbove: a correct directive on the line above the finding.
func suppressedAbove(aOK, bOK rtr.Serial) bool {
	//lint:ignore serialcmp testdata: exercising the suppression mechanism
	return aOK < bOK
}

// suppressedSameLine: a correct trailing directive on the finding's line.
func suppressedSameLine(cOK, dOK rtr.Serial) bool {
	return cOK < dOK //lint:ignore serialcmp testdata: trailing form
}

// wrongCheck: the directive names a different check, so the serialcmp
// finding must survive.
func wrongCheck(aWrong, bWrong rtr.Serial) bool {
	//lint:ignore arenaptr testdata: names the wrong check on purpose
	return aWrong < bWrong
}

// missingReason: a directive with no reason is malformed — it suppresses
// nothing (the finding survives) and is itself reported.
func missingReason(aBare, bBare rtr.Serial) bool {
	//lint:ignore serialcmp
	return aBare < bBare
}
