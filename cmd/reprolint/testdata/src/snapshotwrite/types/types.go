// Package types is reprolint testdata: it defines an annotated snapshot
// type and exercises the snapshotwrite rules that apply inside the defining
// package (construction is sanctioned; Load() results are frozen even here).
package types

import "sync/atomic"

// Table is a published snapshot.
//
//repro:immutable
type Table struct {
	Vals []int
	N    int
}

// Holder publishes tables to lock-free readers.
type Holder struct {
	Cur atomic.Pointer[Table]
}

// New returns a published table.
//
//repro:immutable
func New(n int) *Table {
	t := &Table{N: n}
	fill(t, n)
	return t
}

// fill is a sanctioned construction path: t arrives as a parameter inside
// the defining package, so writes through it are allowed.
func fill(t *Table, v int) {
	t.Vals = append(t.Vals, v)
	t.N = v
}

// badCompact shows that Load() results are frozen even in the defining
// package: a compactor must path-copy, not patch.
func badCompact(h *Holder) {
	t := h.Cur.Load()
	t.N++ // want "write through a published snapshot"
}

// goodCompact path-copies and republishes.
func goodCompact(h *Holder) {
	old := h.Cur.Load()
	nw := &Table{N: old.N + 1, Vals: append([]int(nil), old.Vals...)}
	h.Cur.Store(nw)
}

var _ = badCompact
var _ = goodCompact
