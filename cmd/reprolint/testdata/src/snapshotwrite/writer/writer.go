// Package writer is reprolint testdata: true positives and true negatives
// for the snapshotwrite check from outside the annotated type's package.
package writer

import "repro/cmd/reprolint/testdata/src/snapshotwrite/types"

// True positives: writes through published snapshots.

func writeThroughLoad(h *types.Holder) {
	t := h.Cur.Load()
	t.N = 9 // want "write through a published snapshot"
}

func writeThroughElem(h *types.Holder) {
	t := h.Cur.Load()
	t.Vals[0] = 1 // want "write through a published snapshot"
}

func writeThroughParam(t *types.Table) {
	t.N = 9 // want "write through a published snapshot"
}

func writeThroughAnnotatedFunc() {
	t := types.New(1)
	t.N++ // want "write through a published snapshot"
}

func writeThroughAlias(h *types.Holder) {
	t := h.Cur.Load()
	u := t
	u.N = 2 // want "write through a published snapshot"
}

func writeInClosure(h *types.Holder) func() {
	t := h.Cur.Load()
	return func() {
		t.N = 3 // want "write through a published snapshot"
	}
}

// True negatives: reads, rebinding, and locally built tables.

func readOnly(h *types.Holder) int {
	t := h.Cur.Load()
	return t.N + len(t.Vals)
}

// rebind swaps which snapshot the variable names — allowed; only writes
// through the pointed-to value are violations. (The analyzer is
// object-keyed, so mutating a fresh Table must use a fresh variable, as
// freshTable does.)
func rebind(h, h2 *types.Holder) *types.Table {
	t := h.Cur.Load()
	t = h2.Cur.Load()
	return t
}

func freshTable() *types.Table {
	nw := &types.Table{N: 1}
	nw.Vals = append(nw.Vals, 1)
	return nw
}
