// Package hotalloc is golden testdata for the hotalloc check: Sum is
// allocation-free through an unannotated helper (clean), and each flagged
// function demonstrates one allocation class — direct builtin, fmt call,
// capturing closure, transitive callee, interface boxing, string concat.
package hotalloc

import "fmt"

//repro:noalloc
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += scale(x)
	}
	return t
}

// scale is not annotated; it is verified through Sum's composition.
func scale(x int) int { return x * 2 }

//repro:noalloc
func Describe() string {
	return fmt.Sprint() // want "hotalloc: hot path hotalloc.Describe: calls fmt.Sprint, which allocates"
}

//repro:noalloc
func Collect(xs []int) []int {
	out := make([]int, 0, len(xs)) // want "hotalloc: hot path hotalloc.Collect: make allocates"
	for _, x := range xs {
		out = append(out, x) // want "hotalloc: hot path hotalloc.Collect: append may grow its backing array"
	}
	return out
}

//repro:noalloc
func Indirect(x int) int {
	f := func() int { return x } // want "hotalloc: hot path hotalloc.Indirect: closure captures enclosing variables and allocates"
	return f()
}

//repro:noalloc
func Via(xs []int) []int {
	return grow(xs) // want "hotalloc: hot path hotalloc.Via calls hotalloc.grow, which allocates"
}

// grow allocates; Via is charged with it at the call site.
func grow(xs []int) []int {
	return append(xs, 1)
}

//repro:noalloc
func Boxed(x int) any {
	return x // want "hotalloc: hot path hotalloc.Boxed: implicit conversion to interface allocates"
}

//repro:noalloc
func Concat(a, b string) string {
	return a + b // want "hotalloc: hot path hotalloc.Concat: string concatenation allocates"
}
