// Package goroleak is golden testdata for the goroleak check: one
// goroutine per lifecycle shape. StartLoop, StartDrain, and StartOnce have
// provable stop paths; StartOwned is convention-managed but annotated;
// StartLeak, StartBadOwner, Dangling, and Launch each violate one rule.
package goroleak

type W struct {
	stop chan struct{}
	in   chan int
}

func (w *W) Stop() { close(w.stop) }

func (w *W) spin() {
	for {
	}
}

// StartLeak spins forever without ever blocking on a channel.
func (w *W) StartLeak() {
	go func() { // want "goroleak: goroutine has no provable stop path"
		for {
		}
	}()
}

// StartLoop blocks on a select with no default: closing w.stop ends it.
func (w *W) StartLoop() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case v := <-w.in:
				_ = v
			}
		}
	}()
}

// StartDrain ranges over a channel: closing w.in ends it.
func (w *W) StartDrain() {
	go func() {
		for v := range w.in {
			_ = v
		}
	}()
}

// StartOnce terminates: every loop it reaches is bounded.
func (w *W) StartOnce() {
	go func() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}()
}

// StartOwned has no receive, but the annotation names its stopper.
func (w *W) StartOwned() {
	//repro:owns-goroutine (*W).Stop
	go w.spin()
}

// StartBadOwner names a stopper that does not exist.
func (w *W) StartBadOwner() {
	//repro:owns-goroutine (*W).Halt // want "matches no declared function"
	go w.spin()
}

// Dangling has an annotation with no go statement under it.
func (w *W) Dangling() {
	//repro:owns-goroutine (*W).Stop // want "matches no go statement"
	_ = w
}

// Launch spawns through a parameter the call graph cannot resolve.
func Launch(f func()) {
	go f() // want "goroleak: goroutine spawns a function reprolint cannot resolve"
}
