// Package callgraph is the unit-test fixture for the call-graph builder:
// self-recursion, mutual recursion, interface dispatch, a method value, and
// a single-assignment func-literal binding, each pinned by TestCallGraph.
package callgraph

func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}

func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	if n == 0 {
		return 1
	}
	return ping(n - 1)
}

type Doer interface{ Do() int }

type A struct{}

func (A) Do() int { return 1 }

type B struct{ v int }

func (b *B) Do() int { return b.v }

func dispatch(d Doer) int { return d.Do() }

func takeValue(a A) func() int { return a.Do }

func useBound() int {
	f := func(n int) int { return fact(n) }
	return f(3)
}

// use keeps every fixture reachable so the loader does not report unused
// declarations under vet-style review.
var use = []any{fact, ping, dispatch, takeValue, useBound, A{}, &B{}}
