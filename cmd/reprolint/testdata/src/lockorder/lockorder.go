// Package lockorder is golden testdata for the lockorder check: ab and
// ba/lockA take the a/b pair in opposite orders across a call chain
// (cycle), okOuter/okInner take a then c consistently (clean), and
// again/relock re-acquires a mutex the caller already holds
// (self-deadlock, a cycle of length one).
package lockorder

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
}

func (s *S) ab() {
	s.a.Lock()
	s.b.Lock() // want "lockorder: lock-order cycle: lockorder.S.a → lockorder.S.b → lockorder.S.a"
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) ba() {
	s.b.Lock()
	s.lockA()
	s.b.Unlock()
}

func (s *S) lockA() {
	s.a.Lock()
	s.a.Unlock()
}

func (s *S) okOuter() {
	s.a.Lock()
	s.okInner()
	s.a.Unlock()
}

func (s *S) okInner() {
	s.c.Lock()
	s.c.Unlock()
}

func (s *S) again() {
	s.c.Lock()
	s.relock() // want "lockorder: lock-order cycle: lockorder.S.c → lockorder.S.c"
	s.c.Unlock()
}

func (s *S) relock() {
	s.c.Lock()
	s.c.Unlock()
}
