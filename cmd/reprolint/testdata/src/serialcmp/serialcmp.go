// Package serialcmp is reprolint testdata: true positives and true
// negatives for the serialcmp check.
package serialcmp

import "repro/internal/rtr"

// True positives: raw ordering and subtraction on rtr.Serial.

func rawLess(a, b rtr.Serial) bool {
	return a < b // want "raw ordering comparison"
}

func rawGreaterEq(a, b rtr.Serial) bool {
	return a >= b // want "raw ordering comparison"
}

func rawSub(a, b rtr.Serial) rtr.Serial {
	return a - b // want "raw subtraction"
}

func mixedOperand(a rtr.Serial, n uint32) bool {
	return a > rtr.Serial(n) // want "raw ordering comparison"
}

// True negatives: equality, explicit uint32 escape hatch, and the sanctioned
// helpers.

func equality(a, b rtr.Serial) bool {
	return a == b && a != b+1
}

func explicitConversion(a, b rtr.Serial) uint32 {
	if uint32(a) < uint32(b) {
		return uint32(b) - uint32(a)
	}
	return 0
}

func sanctioned(a, b rtr.Serial) bool {
	return rtr.SerialLess(a, b) || rtr.SerialNewer(a, b)
}

func unrelatedInts(x, y uint32) bool {
	return x < y && x-y > 0
}
