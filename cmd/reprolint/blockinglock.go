package main

// blockinglock: the RTR layer serializes connection writes and session state
// behind sync.Mutex/RWMutex. A blocking operation — a channel send or
// receive, a select with no default, a network or PDU write — performed
// while such a lock is held turns one slow peer into a stall for everyone
// queued on the lock: exactly the notify-fan-out hazard of the cache
// server's UpdateSet path (ROADMAP item 2). The analyzer tracks lock-held
// regions intraprocedurally (Lock/RLock opens one, Unlock/RUnlock closes it,
// defer Unlock holds to function end) and flags blocking operations inside
// them. It is scoped to internal/rtr, where the invariant is load-bearing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var blockingLockAnalyzer = &Analyzer{
	Name: "blockinglock",
	Doc:  "flags channel operations and blocking calls made while a sync.Mutex/RWMutex is held in internal/rtr",
	AppliesTo: func(pkgPath string) bool {
		// The invariant is enforced where the fan-out paths live, plus the
		// analyzer's own testdata packages.
		return strings.Contains(pkgPath, "internal/rtr") ||
			strings.Contains(pkgPath, "testdata/src/blockinglock")
	},
	Run: runBlockingLock,
}

// blockingFuncs are fully-qualified functions that block on I/O or time.
var blockingFuncs = map[string]bool{
	"time.Sleep":  true,
	"io.ReadFull": true,
	"io.Copy":     true,
	// The RTR PDU codec reads and writes sockets.
	"repro/internal/rtr.WritePDU": true,
	"repro/internal/rtr.ReadPDU":  true,
}

// blockingMethods are methods that block, keyed by receiver type path.name
// and method name.
var blockingMethods = map[string]map[string]bool{
	"sync.WaitGroup": {"Wait": true},
	"sync.Cond":      {"Wait": true},
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

type lockVisitor struct {
	pass *Pass
}

// heldLocks maps a lock's source text ("c.mu") to the position it was
// acquired. Keys are syntactic: two spellings of one lock are two entries,
// and distinct locks with one spelling alias — a sound-enough approximation
// for lint, with //lint:ignore as the pressure valve.
type heldLocks map[string]token.Pos

func (h heldLocks) clone() heldLocks {
	c := make(heldLocks, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldLocks) any() (string, bool) {
	for k := range h {
		return k, true
	}
	return "", false
}

func runBlockingLock(pass *Pass) {
	v := &lockVisitor{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if d, ok := n.(*ast.FuncDecl); ok {
				if d.Body != nil {
					v.scanStmts(d.Body.List, make(heldLocks))
				}
				return false
			}
			return true
		})
	}
}

// exprText renders the lock receiver expression for use as a held-set key.
func exprText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprText(t.X) + "." + t.Sel.Name
	case *ast.ParenExpr:
		return exprText(t.X)
	case *ast.StarExpr:
		return exprText(t.X)
	case *ast.IndexExpr:
		return exprText(t.X) + "[...]"
	case *ast.CallExpr:
		return exprText(t.Fun) + "(...)"
	}
	return "<lock>"
}

// lockOp classifies a call as Lock/RLock (acquire) or Unlock/RUnlock
// (release) on a mutex, returning the held-set key.
func (v *lockVisitor) lockOp(call *ast.CallExpr) (key string, acquire, release bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	if !isMutexType(v.pass.TypeOf(sel.X)) {
		return "", false, false
	}
	return exprText(sel.X), acquire, release
}

// isBlockingCall reports whether the call is on the blocking list. Both
// qualified (io.Copy, c.wg.Wait) and same-package unqualified (WritePDU
// inside internal/rtr) spellings are recognized.
func (v *lockVisitor) isBlockingCall(call *ast.CallExpr) (string, bool) {
	var fnIdent *ast.Ident
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if isSel {
		fnIdent = sel.Sel
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		fnIdent = id
	} else {
		return "", false
	}
	if obj, ok := v.pass.Info.Uses[fnIdent].(*types.Func); ok {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil {
			if pkg := obj.Pkg(); pkg != nil {
				name := pkg.Path() + "." + obj.Name()
				if blockingFuncs[name] {
					return name, true
				}
			}
		}
	}
	if !isSel {
		return "", false
	}
	t := v.pass.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if methods := blockingMethods[obj.Pkg().Path()+"."+obj.Name()]; methods[sel.Sel.Name] {
				return obj.Name() + "." + sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// scanExpr walks one expression in evaluation order, updating the held set
// at lock calls and flagging blocking operations while any lock is held.
// FuncLits start fresh: their bodies run later, on whatever goroutine calls
// them.
func (v *lockVisitor) scanExpr(e ast.Expr, held heldLocks) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			v.scanStmts(t.Body.List, make(heldLocks))
			return false
		case *ast.CallExpr:
			if key, acquire, release := v.lockOp(t); acquire || release {
				if acquire {
					held[key] = t.Pos()
				} else {
					delete(held, key)
				}
				return true
			}
			if name, blocking := v.isBlockingCall(t); blocking {
				if lock, anyHeld := held.any(); anyHeld {
					v.pass.Reportf(t.Pos(), "blocking call %s while %s is held (locked at %s): a slow peer stalls every goroutine queued on the lock", name, lock, v.pass.Fset.Position(held[lock]))
				}
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				if lock, anyHeld := held.any(); anyHeld {
					v.pass.Reportf(t.Pos(), "channel receive while %s is held (locked at %s): the sender may never come; release the lock first", lock, v.pass.Fset.Position(held[lock]))
				}
			}
		}
		return true
	})
}

// scanStmts walks a statement list in source order, threading the held set
// through it. Branch bodies get copies of the entry state; the state after a
// branch is the entry state (an unbalanced Lock inside a branch is under-
// approximated, which can miss but never false-positives on the joined
// path).
func (v *lockVisitor) scanStmts(stmts []ast.Stmt, held heldLocks) {
	for _, s := range stmts {
		v.scanStmt(s, held)
	}
}

func (v *lockVisitor) scanStmt(s ast.Stmt, held heldLocks) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		v.scanExpr(t.X, held)
	case *ast.SendStmt:
		v.scanExpr(t.Chan, held)
		v.scanExpr(t.Value, held)
		if lock, anyHeld := held.any(); anyHeld {
			v.pass.Reportf(t.Arrow, "channel send while %s is held (locked at %s): a full channel stalls every goroutine queued on the lock; buffer outside the lock or use a non-blocking send", lock, v.pass.Fset.Position(held[lock]))
		}
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			v.scanExpr(e, held)
		}
		for _, e := range t.Lhs {
			v.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						v.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to function end — no state
		// change. Other deferred calls run after the region, and a deferred
		// FuncLit runs with whatever is held at return; approximate the
		// common defer-cleanup case by scanning the literal lock-free.
		if _, _, release := v.lockOp(t.Call); !release {
			v.scanExpr(t.Call.Fun, held)
			for _, a := range t.Call.Args {
				v.scanExpr(a, held)
			}
		}
	case *ast.GoStmt:
		// The spawned body runs elsewhere: fresh held state. Arguments are
		// evaluated here, though.
		for _, a := range t.Call.Args {
			v.scanExpr(a, held)
		}
		if fl, ok := t.Call.Fun.(*ast.FuncLit); ok {
			v.scanStmts(fl.Body.List, make(heldLocks))
		}
	case *ast.IfStmt:
		if t.Init != nil {
			v.scanStmt(t.Init, held)
		}
		v.scanExpr(t.Cond, held)
		v.scanStmts(t.Body.List, held.clone())
		if t.Else != nil {
			v.scanStmt(t.Else, held.clone())
		}
	case *ast.ForStmt:
		if t.Init != nil {
			v.scanStmt(t.Init, held)
		}
		v.scanExpr(t.Cond, held)
		body := held.clone()
		v.scanStmts(t.Body.List, body)
		if t.Post != nil {
			v.scanStmt(t.Post, body)
		}
	case *ast.RangeStmt:
		v.scanExpr(t.X, held)
		v.scanStmts(t.Body.List, held.clone())
	case *ast.SwitchStmt:
		if t.Init != nil {
			v.scanStmt(t.Init, held)
		}
		v.scanExpr(t.Tag, held)
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			v.scanStmt(t.Init, held)
		}
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if lock, anyHeld := held.any(); anyHeld {
				v.pass.Reportf(t.Select, "select with no default while %s is held (locked at %s): the select can block indefinitely with the lock held", lock, v.pass.Fset.Position(held[lock]))
			}
		}
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.BlockStmt:
		v.scanStmts(t.List, held)
	case *ast.LabeledStmt:
		v.scanStmt(t.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			v.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		v.scanExpr(t.X, held)
	}
}
