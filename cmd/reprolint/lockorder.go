package main

// lockorder: the RTR and ROV layers stack several mutexes — per-client
// request and state locks, the server's registry and per-conn locks, the
// multi-supervisor's delivery and state locks, the live index's writer lock.
// Two functions that acquire the same two locks in opposite orders are a
// deadlock waiting for the interleaving that -race never draws; the sharded
// session registry of ROADMAP item 2 multiplies exactly this shape. The
// check identifies each lock by its declaration — pkg.Type.field for struct
// mutexes, pkg.var for package-level ones — collects every acquisition in
// internal/rtr + internal/rov, composes a transitive acquires-summary per
// function bottom-up over the call graph, builds the lock-ordering graph
// ("A is held while B is acquired"), and reports every cycle with a full
// witness path. `go` statements do not extend the holder's order (the
// spawned goroutine holds nothing of the spawner's), and calls through
// unresolved func values contribute no edges (the call graph's documented
// limitation).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var lockOrderAnalyzer = &Analyzer{
	Name:      "lockorder",
	Doc:       "builds the inter-procedural lock-ordering graph over internal/rtr + internal/rov and reports every cycle with its witness path",
	RunModule: runLockOrder,
}

func lockOrderScoped(path string) bool {
	return strings.Contains(path, "internal/rtr") ||
		strings.Contains(path, "internal/rov") ||
		strings.Contains(path, "testdata/src/lockorder")
}

// lockAcq is one (possibly transitive) lock acquisition in a function's
// summary: where it happens and through which call chain.
type lockAcq struct {
	pos   token.Pos
	chain []string // callee names from the summarized function down; empty = direct
}

// lockPair is one direct "to acquired while from held" observation.
type lockPair struct {
	from, to       string
	fromPos, toPos token.Pos
}

// lockCallSite is a resolved call made while locks are held.
type lockCallSite struct {
	held   map[string]token.Pos
	callee *funcNode
	pos    token.Pos
}

// lockFnInfo is the intraprocedural harvest of one function.
type lockFnInfo struct {
	node     *funcNode
	acquires map[string]token.Pos
	pairs    []lockPair
	calls    []lockCallSite
}

// lockWitness is one lock-graph edge's evidence.
type lockWitness struct {
	to      string
	fn      string    // function where the edge was observed
	heldPos token.Pos // where `from` was acquired
	atPos   token.Pos // where `to` was acquired, or the call that leads to it
	acqPos  token.Pos // the eventual acquisition site of `to`
	chain   []string  // call chain from fn to the acquisition; empty = direct
}

func runLockOrder(m *ModulePass) {
	g := m.Graph

	// Phase 1: intraprocedural scan of every function in scope.
	infoByNode := make(map[*funcNode]*lockFnInfo)
	var scoped []*funcNode
	for _, n := range g.nodes {
		if n.body == nil || !lockOrderScoped(n.pkg.Path) {
			continue
		}
		fi := &lockFnInfo{node: n, acquires: make(map[string]token.Pos)}
		scanLockFn(m, fi)
		infoByNode[n] = fi
		scoped = append(scoped, n)
	}

	// Phase 2: compose transitive acquires bottom-up over the call graph.
	// Direct acquisitions only exist for scoped functions, but composition
	// runs module-wide so a scoped→unscoped→scoped call chain still carries.
	summaries := make(map[*funcNode]map[string]lockAcq)
	g.composeBottomUp(func(n *funcNode) bool {
		s := summaries[n]
		if s == nil {
			s = make(map[string]lockAcq)
			summaries[n] = s
		}
		grew := false
		if fi := infoByNode[n]; fi != nil {
			for k, pos := range fi.acquires {
				if _, ok := s[k]; !ok {
					s[k] = lockAcq{pos: pos}
					grew = true
				}
			}
		}
		for _, e := range n.out {
			if e.kind == edgeRef || e.spawn {
				continue
			}
			for k, a := range summaries[e.callee] {
				if _, ok := s[k]; !ok {
					chain := make([]string, 0, len(a.chain)+1)
					chain = append(chain, e.callee.name)
					chain = append(chain, a.chain...)
					s[k] = lockAcq{pos: a.pos, chain: chain}
					grew = true
				}
			}
		}
		return grew
	})

	// Phase 3: generate the lock-ordering graph. First witness per edge
	// wins; node iteration order is deterministic (loader topo × file ×
	// position), so so is the witness choice.
	edges := make(map[string]map[string]*lockWitness)
	addEdge := func(from string, w *lockWitness) {
		byTo := edges[from]
		if byTo == nil {
			byTo = make(map[string]*lockWitness)
			edges[from] = byTo
		}
		if byTo[w.to] == nil {
			byTo[w.to] = w
		}
	}
	for _, n := range scoped {
		fi := infoByNode[n]
		for _, pr := range fi.pairs {
			addEdge(pr.from, &lockWitness{
				to: pr.to, fn: n.name,
				heldPos: pr.fromPos, atPos: pr.toPos, acqPos: pr.toPos,
			})
		}
		for _, cs := range fi.calls {
			sum := summaries[cs.callee]
			if len(sum) == 0 {
				continue
			}
			heldKeys := make([]string, 0, len(cs.held))
			for h := range cs.held {
				heldKeys = append(heldKeys, h)
			}
			sort.Strings(heldKeys)
			sumKeys := make([]string, 0, len(sum))
			for k := range sum {
				sumKeys = append(sumKeys, k)
			}
			sort.Strings(sumKeys)
			for _, h := range heldKeys {
				for _, k := range sumKeys {
					a := sum[k]
					chain := make([]string, 0, len(a.chain)+1)
					chain = append(chain, cs.callee.name)
					chain = append(chain, a.chain...)
					addEdge(h, &lockWitness{
						to: k, fn: n.name,
						heldPos: cs.held[h], atPos: cs.pos, acqPos: a.pos,
						chain: chain,
					})
				}
			}
		}
	}

	reportLockCycles(m, edges)
}

// scanLockFn walks one function body tracking the held-lock set with the
// same branch-clone semantics blockinglock uses: branch bodies get copies of
// the entry state, defer Unlock holds to function end, nested literals and
// spawned goroutines run with nothing of ours held.
func scanLockFn(m *ModulePass, fi *lockFnInfo) {
	n := fi.node

	var scanStmts func(stmts []ast.Stmt, held map[string]token.Pos)
	var scanStmt func(s ast.Stmt, held map[string]token.Pos)

	clone := func(h map[string]token.Pos) map[string]token.Pos {
		c := make(map[string]token.Pos, len(h))
		for k, v := range h {
			c[k] = v
		}
		return c
	}

	scanExpr := func(e ast.Expr, held map[string]token.Pos) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(nd ast.Node) bool {
			switch t := nd.(type) {
			case *ast.FuncLit:
				return false // its own node; runs with its caller's held set
			case *ast.CallExpr:
				if key, acq, rel, ok := lockOpKey(m, n, t); ok {
					if acq {
						// Record ordering edges from everything currently
						// held — including the key itself: re-acquiring a
						// held sync.Mutex is a self-deadlock.
						for h, hp := range held {
							fi.pairs = append(fi.pairs, lockPair{from: h, to: key, fromPos: hp, toPos: t.Pos()})
						}
						if _, dup := fi.acquires[key]; !dup {
							fi.acquires[key] = t.Pos()
						}
						held[key] = t.Pos()
					} else if rel {
						delete(held, key)
					}
					return true
				}
				if targets, kind := m.Graph.resolveCall(n.pkg, t, n.binds); kind != edgeRef {
					for _, c := range targets {
						fi.calls = append(fi.calls, lockCallSite{held: clone(held), callee: c, pos: t.Pos()})
					}
				}
			}
			return true
		})
	}

	scanStmts = func(stmts []ast.Stmt, held map[string]token.Pos) {
		for _, s := range stmts {
			scanStmt(s, held)
		}
	}
	scanStmt = func(s ast.Stmt, held map[string]token.Pos) {
		switch t := s.(type) {
		case *ast.ExprStmt:
			scanExpr(t.X, held)
		case *ast.SendStmt:
			scanExpr(t.Chan, held)
			scanExpr(t.Value, held)
		case *ast.AssignStmt:
			for _, e := range t.Rhs {
				scanExpr(e, held)
			}
			for _, e := range t.Lhs {
				scanExpr(e, held)
			}
		case *ast.DeclStmt:
			if gd, ok := t.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							scanExpr(e, held)
						}
					}
				}
			}
		case *ast.DeferStmt:
			// defer x.Unlock() keeps the lock to function end: no state
			// change. Other deferred calls run at exit with an unknowable
			// held set — record the call with nothing held (their transitive
			// acquisitions still enter this function's summary via the call
			// graph's deferred edges).
			if _, _, rel, ok := lockOpKey(m, n, t.Call); ok && rel {
				return
			}
			if targets, kind := m.Graph.resolveCall(n.pkg, t.Call, n.binds); kind != edgeRef {
				for _, c := range targets {
					fi.calls = append(fi.calls, lockCallSite{held: make(map[string]token.Pos), callee: c, pos: t.Call.Pos()})
				}
			}
			for _, a := range t.Call.Args {
				scanExpr(a, held)
			}
		case *ast.GoStmt:
			// The spawned goroutine holds none of our locks; only argument
			// evaluation happens here.
			for _, a := range t.Call.Args {
				scanExpr(a, held)
			}
		case *ast.IfStmt:
			if t.Init != nil {
				scanStmt(t.Init, held)
			}
			scanExpr(t.Cond, held)
			scanStmts(t.Body.List, clone(held))
			if t.Else != nil {
				scanStmt(t.Else, clone(held))
			}
		case *ast.ForStmt:
			if t.Init != nil {
				scanStmt(t.Init, held)
			}
			scanExpr(t.Cond, held)
			body := clone(held)
			scanStmts(t.Body.List, body)
			if t.Post != nil {
				scanStmt(t.Post, body)
			}
		case *ast.RangeStmt:
			scanExpr(t.X, held)
			scanStmts(t.Body.List, clone(held))
		case *ast.SwitchStmt:
			if t.Init != nil {
				scanStmt(t.Init, held)
			}
			scanExpr(t.Tag, held)
			for _, c := range t.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(cc.Body, clone(held))
				}
			}
		case *ast.TypeSwitchStmt:
			if t.Init != nil {
				scanStmt(t.Init, held)
			}
			for _, c := range t.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(cc.Body, clone(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range t.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(cc.Body, clone(held))
				}
			}
		case *ast.BlockStmt:
			scanStmts(t.List, held)
		case *ast.LabeledStmt:
			scanStmt(t.Stmt, held)
		case *ast.ReturnStmt:
			for _, e := range t.Results {
				scanExpr(e, held)
			}
		case *ast.IncDecStmt:
			scanExpr(t.X, held)
		}
	}
	scanStmts(n.body.List, make(map[string]token.Pos))
}

// lockOpKey classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex/RWMutex and derives the lock's declaration-anchored identity:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level mutexes,
// "fn.var" for locals. RLock orders like Lock: a reader and a writer on the
// same two locks in opposite orders still deadlock.
func lockOpKey(m *ModulePass, n *funcNode, call *ast.CallExpr) (key string, acquire, release, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false, false
	}
	recv := unparen(sel.X)
	t := typeOfIn(n.pkg, recv)
	if !isMutexType(t) {
		return "", false, false, false
	}
	return lockKeyFor(n, recv), acquire, release, true
}

func typeOfIn(p *Package, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// lockKeyFor anchors a mutex expression on its declaration so the same lock
// spells the same key in every function that touches it.
func lockKeyFor(n *funcNode, e ast.Expr) string {
	p := n.pkg
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[t]; ok && s.Kind() == types.FieldVal {
			field := s.Obj()
			recv := s.Recv()
			if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				obj := named.Obj()
				pkgName := ""
				if obj.Pkg() != nil {
					pkgName = shortPkg(obj.Pkg().Path()) + "."
				}
				return pkgName + obj.Name() + "." + field.Name()
			}
		}
		// pkg.mu: a package-level mutex through a qualifier.
		if v, ok := p.Info.Uses[t.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return shortPkg(v.Pkg().Path()) + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := p.Info.Uses[t].(*types.Var)
		if !ok {
			v, _ = p.Info.Defs[t].(*types.Var)
		}
		if v != nil {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return shortPkg(v.Pkg().Path()) + "." + v.Name()
			}
			return n.name + "." + v.Name()
		}
	}
	return n.name + "." + exprText(e)
}

// reportLockCycles finds strongly connected components of the lock graph
// and reports one finding per cycle, anchored on the first edge's
// acquisition site so a //lint:ignore can sit next to real code.
func reportLockCycles(m *ModulePass, edges map[string]map[string]*lockWitness) {
	keys := make([]string, 0, len(edges))
	index := make(map[string]int)
	for k := range edges {
		keys = append(keys, k)
	}
	for _, byTo := range edges {
		for to := range byTo {
			if _, ok := edges[to]; !ok {
				keys = append(keys, to)
				edges[to] = nil
			}
		}
	}
	sort.Strings(keys)
	for i, k := range keys {
		index[k] = i
	}

	// Tarjan over the lock graph.
	n := len(keys)
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	var stack []int
	counter := 0
	var sccs [][]int
	var connect func(v int)
	connect = func(v int) {
		counter++
		idx[v], low[v] = counter, counter
		stack = append(stack, v)
		onStack[v] = true
		byTo := edges[keys[v]]
		tos := make([]string, 0, len(byTo))
		for to := range byTo {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			w := index[to]
			if idx[w] == 0 {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && idx[w] < low[v] {
				low[v] = idx[w]
			}
		}
		if low[v] == idx[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if idx[v] == 0 {
			connect(v)
		}
	}

	for _, scc := range sccs {
		inSCC := make(map[string]bool, len(scc))
		for _, v := range scc {
			inSCC[keys[v]] = true
		}
		if len(scc) == 1 {
			k := keys[scc[0]]
			if edges[k][k] == nil {
				continue // no self-loop: acyclic singleton
			}
		}
		start := keys[scc[0]]
		for _, v := range scc {
			if keys[v] < start {
				start = keys[v]
			}
		}
		cycle := findCycle(edges, inSCC, start)
		if len(cycle) == 0 {
			continue
		}
		var path strings.Builder
		path.WriteString(cycle[0])
		var detail strings.Builder
		for i := 0; i+1 <= len(cycle)-1; i++ {
			from, to := cycle[i], cycle[i+1]
			w := edges[from][to]
			path.WriteString(" → ")
			path.WriteString(to)
			if i > 0 {
				detail.WriteString("; ")
			}
			fmt.Fprintf(&detail, "%s acquires %s at %s while holding %s (since %s)",
				w.fn, to, m.Fset.Position(w.acqPos), from, m.Fset.Position(w.heldPos))
			if len(w.chain) > 0 {
				fmt.Fprintf(&detail, " via %s", strings.Join(w.chain, " → "))
			}
		}
		first := edges[cycle[0]][cycle[1]]
		m.Reportf(first.atPos, "lock-order cycle: %s — %s", path.String(), detail.String())
	}
}

// findCycle returns a lock cycle [start ... start] inside one SCC.
func findCycle(edges map[string]map[string]*lockWitness, inSCC map[string]bool, start string) []string {
	// DFS restricted to SCC members until we step back onto start.
	var path []string
	visited := make(map[string]bool)
	var dfs func(k string) bool
	dfs = func(k string) bool {
		path = append(path, k)
		byTo := edges[k]
		tos := make([]string, 0, len(byTo))
		for to := range byTo {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !inSCC[to] {
				continue
			}
			if to == start {
				path = append(path, start)
				return true
			}
			if visited[to] {
				continue
			}
			visited[to] = true
			if dfs(to) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	visited[start] = true
	if dfs(start) {
		return path
	}
	return nil
}
