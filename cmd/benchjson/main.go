// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark result, so benchmark runs can be
// committed and diffed in-repo (make bench writes BENCH_PR<N>.json with it).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH.json
//	benchjson -in bench.out -out BENCH.json
//	benchjson -diff [-threshold 15] old.json new.json
//
// Standard fields (ns/op, B/op, allocs/op) get their own keys; any extra
// b.ReportMetric units land in "metrics". Lines that are not benchmark
// results (pkg:, cpu:, PASS, ...) are skipped, except that pkg: lines set
// the "package" of subsequent results. benchjson exits nonzero when the
// input contains no benchmark results at all.
//
// With -diff, benchjson instead compares two archived runs (the files make
// bench writes) and prints a per-benchmark delta table for ns/op, B/op, and
// allocs/op — the in-repo perf trend across PRs, `make bench-diff`. When
// -threshold is positive, any benchmark whose ns/op, B/op, or allocs/op
// regressed by more than that percentage makes benchjson exit 1, so the
// diff doubles as a CI gate. The per-metric flags -threshold-ns,
// -threshold-bytes, and -threshold-allocs override the shared threshold for
// one metric (0 disables that metric's gate): wall-clock numbers need a
// generous threshold on noisy hardware, while allocation metrics are exact
// and can be gated tightly. The exception is benchmarks whose allocation
// profile is itself scheduler-dependent (parallel workers growing
// worker-local arenas by demand-order doubling): list those with
// -mem-noisy to gate their memory metrics at the wall-clock threshold.
// Benchmarks whose timed loop couples to background work (the live index's
// asynchronous compactor amortizing O(table) rebuilds into the window) swing
// even further on identical code: list those with -time-noisy and set
// -threshold-time-noisy to give their ns/op the extra headroom.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path"
	"strconv"
	"strings"
)

type result struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     *float64           `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	diffMode := flag.Bool("diff", false, "compare two archived runs: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 0, "with -diff: exit 1 when any ns/op, B/op, or allocs/op regression exceeds this percentage (0 disables the gate)")
	thresholdNs := flag.Float64("threshold-ns", -1, "with -diff: per-metric override of -threshold for ns/op (-1 inherits, 0 disables)")
	thresholdBytes := flag.Float64("threshold-bytes", -1, "with -diff: per-metric override of -threshold for B/op (-1 inherits, 0 disables)")
	thresholdAllocs := flag.Float64("threshold-allocs", -1, "with -diff: per-metric override of -threshold for allocs/op (-1 inherits, 0 disables)")
	memNoisy := flag.String("mem-noisy", "", "with -diff: comma-separated glob patterns of package-qualified benchmarks whose B/op and allocs/op are scheduler-dependent; they are gated at the ns/op threshold instead of the memory one")
	timeNoisy := flag.String("time-noisy", "", "with -diff: comma-separated glob patterns of package-qualified benchmarks whose ns/op is scheduler-dependent; they are gated at -threshold-time-noisy instead of the ns/op threshold")
	thresholdTimeNoisy := flag.Float64("threshold-time-noisy", -1, "with -diff: ns/op threshold for -time-noisy benchmarks (-1 inherits the ns/op threshold, 0 disables)")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			log.Fatal("-diff needs exactly two arguments: old.json new.json")
		}
		old, err := loadResults(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := loadResults(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		memMatcher, err := globMatcher("-mem-noisy", *memNoisy)
		if err != nil {
			log.Fatal(err)
		}
		timeMatcher, err := globMatcher("-time-noisy", *timeNoisy)
		if err != nil {
			log.Fatal(err)
		}
		rows, worst := diffResults(old, cur, memMatcher, timeMatcher)
		printDiff(os.Stdout, flag.Arg(0), flag.Arg(1), rows)
		failures := gateFailures(worst, *threshold, *thresholdNs, *thresholdBytes, *thresholdAllocs, *thresholdTimeNoisy)
		for _, f := range failures {
			log.Print(f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark results in input")
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(results), *outPath)
}

func parse(in io.Reader) ([]result, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []result
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo --- FAIL"
		}
		r := result{Package: pkg, Name: trimProcs(fields[0]), Iterations: iters}
		// The tail is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			val := v
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = &val
			case "B/op":
				r.BytesPerOp = &val
			case "allocs/op":
				r.AllocsPerOp = &val
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = val
			}
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// globMatcher compiles a noisy-benchmark flag (comma-separated path.Match
// patterns against the package-qualified benchmark key) into a predicate;
// an empty flag yields nil (no benchmark matches).
func globMatcher(flagName, flagValue string) (func(key string) bool, error) {
	var pats []string
	for _, p := range strings.Split(flagValue, ",") {
		if p = strings.TrimSpace(p); p != "" {
			if _, err := path.Match(p, "probe"); err != nil {
				return nil, fmt.Errorf("%s pattern %q: %v", flagName, p, err)
			}
			pats = append(pats, p)
		}
	}
	if len(pats) == 0 {
		return nil, nil
	}
	return func(key string) bool {
		for _, p := range pats {
			if ok, _ := path.Match(p, key); ok {
				return true
			}
		}
		return false
	}, nil
}

// trimProcs drops the -GOMAXPROCS suffix go test appends to benchmark names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
