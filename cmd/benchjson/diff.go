package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

// diffRow is one benchmark's old-vs-new comparison. A nil *metricDelta means
// the metric is absent from one side or both.
type diffRow struct {
	Key    string // package-qualified benchmark name
	Ns     *metricDelta
	Bytes  *metricDelta
	Allocs *metricDelta
	// OnlyOld/OnlyNew mark benchmarks present in just one run (added or
	// removed since the old archive).
	OnlyOld, OnlyNew bool
}

type metricDelta struct {
	Old, New float64
	// Pct is the relative change in percent; +Inf when Old is zero and New
	// is not.
	Pct float64
}

func delta(old, cur *float64) *metricDelta {
	if old == nil || cur == nil {
		return nil
	}
	d := &metricDelta{Old: *old, New: *cur}
	switch {
	case *old == *cur:
		d.Pct = 0
	case *old == 0:
		d.Pct = math.Inf(1)
	default:
		d.Pct = 100 * (*cur - *old) / *old
	}
	return d
}

// loadResults reads one archived run (the JSON array make bench writes).
func loadResults(path string) ([]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []result
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return out, nil
}

// worstRegressions is the most positive (worst) regression per metric, in
// percent, across benchmarks present in both runs; 0 when a metric never
// appears on both sides. NoisyMem collects the B/op and allocs/op
// regressions of benchmarks declared mem-noisy — those are gated at the
// wall-clock threshold instead of the tight memory one. NoisyNs collects
// the ns/op regressions of benchmarks declared time-noisy — those are gated
// at their own, looser threshold.
type worstRegressions struct {
	Ns, Bytes, Allocs, NoisyMem, NoisyNs float64
}

// diffResults joins two runs on package+name and computes per-metric deltas.
// It returns the rows sorted by key and the worst regression per metric
// across benchmarks present in both runs. memNoisy (nil for none) marks
// benchmarks whose memory metrics are scheduler-dependent — their B/op and
// allocs/op regressions land in worst.NoisyMem rather than Bytes/Allocs.
// timeNoisy (nil for none) marks benchmarks whose wall clock is
// scheduler-dependent — their ns/op regressions land in worst.NoisyNs.
func diffResults(old, cur []result, memNoisy, timeNoisy func(key string) bool) (rows []diffRow, worst worstRegressions) {
	key := func(r result) string {
		if r.Package == "" {
			return r.Name
		}
		return r.Package + "." + r.Name
	}
	oldBy := make(map[string]result, len(old))
	for _, r := range old {
		oldBy[key(r)] = r
	}
	seen := make(map[string]bool, len(cur))
	worst = worstRegressions{Ns: math.Inf(-1), Bytes: math.Inf(-1), Allocs: math.Inf(-1), NoisyMem: math.Inf(-1), NoisyNs: math.Inf(-1)}
	bump := func(w *float64, d *metricDelta) {
		if d != nil && d.Pct > *w {
			*w = d.Pct
		}
	}
	for _, c := range cur {
		k := key(c)
		seen[k] = true
		o, ok := oldBy[k]
		if !ok {
			rows = append(rows, diffRow{Key: k, OnlyNew: true})
			continue
		}
		row := diffRow{
			Key:    k,
			Ns:     delta(o.NsPerOp, c.NsPerOp),
			Bytes:  delta(o.BytesPerOp, c.BytesPerOp),
			Allocs: delta(o.AllocsPerOp, c.AllocsPerOp),
		}
		if timeNoisy != nil && timeNoisy(k) {
			bump(&worst.NoisyNs, row.Ns)
		} else {
			bump(&worst.Ns, row.Ns)
		}
		if memNoisy != nil && memNoisy(k) {
			bump(&worst.NoisyMem, row.Bytes)
			bump(&worst.NoisyMem, row.Allocs)
		} else {
			bump(&worst.Bytes, row.Bytes)
			bump(&worst.Allocs, row.Allocs)
		}
		rows = append(rows, row)
	}
	for _, o := range old {
		if k := key(o); !seen[k] {
			rows = append(rows, diffRow{Key: k, OnlyOld: true})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	for _, w := range []*float64{&worst.Ns, &worst.Bytes, &worst.Allocs, &worst.NoisyMem, &worst.NoisyNs} {
		if math.IsInf(*w, -1) {
			*w = 0
		}
	}
	return rows, worst
}

// gateFailures applies the regression thresholds and returns a message per
// failing metric. base is the -threshold value shared by all metrics; the
// per-metric overrides replace it when non-negative (0 disables that
// metric's gate, matching base's semantics). timeNoisy is the threshold for
// time-noisy benchmarks' ns/op; it inherits the ns/op threshold when
// negative.
func gateFailures(w worstRegressions, base, ns, bytes, allocs, timeNoisy float64) []string {
	pick := func(override float64) float64 {
		if override < 0 {
			return base
		}
		return override
	}
	var out []string
	check := func(name string, worst, thr float64) {
		if thr > 0 && worst > thr {
			out = append(out, fmt.Sprintf("worst %s regression %+.1f%% exceeds threshold %.1f%%", name, worst, thr))
		}
	}
	nsThr := pick(ns)
	check("ns/op", w.Ns, nsThr)
	check("B/op", w.Bytes, pick(bytes))
	check("allocs/op", w.Allocs, pick(allocs))
	// Mem-noisy benchmarks still get gated, but with the wall-clock
	// threshold's headroom — their allocation sizes depend on scheduler
	// interleaving, not on the code under test alone.
	check("mem-noisy B/op|allocs/op", w.NoisyMem, nsThr)
	// Time-noisy benchmarks couple their timed loop to background work
	// (the live index's compactor), so their wall clock swings far beyond
	// the ordinary noise floor on identical code; they get their own
	// headroom.
	tnThr := timeNoisy
	if tnThr < 0 {
		tnThr = nsThr
	}
	check("time-noisy ns/op", w.NoisyNs, tnThr)
	return out
}

// printDiff renders the delta table. Values are printed in the benchmark's
// native units (ns/op, B/op, allocs/op) with the relative change alongside.
func printDiff(w io.Writer, oldPath, newPath string, rows []diffRow) {
	fmt.Fprintf(w, "benchmark deltas: %s -> %s\n", oldPath, newPath)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op\tΔns\tB/op\tΔB\tallocs/op\tΔallocs")
	cell := func(d *metricDelta) (string, string) {
		if d == nil {
			return "-", "-"
		}
		return formatValue(d.New), formatPct(d.Pct)
	}
	for _, r := range rows {
		switch {
		case r.OnlyNew:
			fmt.Fprintf(tw, "%s\t(new)\t\t\t\t\t\n", r.Key)
		case r.OnlyOld:
			fmt.Fprintf(tw, "%s\t(removed)\t\t\t\t\t\n", r.Key)
		default:
			ns, dns := cell(r.Ns)
			by, dby := cell(r.Bytes)
			al, dal := cell(r.Allocs)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", r.Key, ns, dns, by, dby, al, dal)
		}
	}
	tw.Flush()
}

// formatValue prints a metric compactly: integers without decimals, large
// values with engineering suffixes so columns stay readable.
func formatValue(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func formatPct(pct float64) string {
	if math.IsInf(pct, 1) {
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}
