package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestDiffResults(t *testing.T) {
	old := []result{
		{Package: "repro/internal/rov", Name: "BenchmarkIndexBuild", NsPerOp: fp(1000), BytesPerOp: fp(4096), AllocsPerOp: fp(100)},
		{Package: "repro/internal/rov", Name: "BenchmarkValidate", NsPerOp: fp(80), AllocsPerOp: fp(0)},
		{Package: "repro/internal/core", Name: "BenchmarkGone", NsPerOp: fp(5)},
	}
	cur := []result{
		{Package: "repro/internal/rov", Name: "BenchmarkIndexBuild", NsPerOp: fp(1200), BytesPerOp: fp(2048), AllocsPerOp: fp(100)},
		{Package: "repro/internal/rov", Name: "BenchmarkValidate", NsPerOp: fp(40), AllocsPerOp: fp(0)},
		{Package: "repro/internal/core", Name: "BenchmarkFresh", NsPerOp: fp(7)},
	}
	rows, worst := diffResults(old, cur)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 common + 1 removed + 1 new)", len(rows))
	}
	byKey := map[string]diffRow{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	ib := byKey["repro/internal/rov.BenchmarkIndexBuild"]
	if ib.Ns == nil || ib.Ns.Pct != 20 {
		t.Fatalf("IndexBuild ns delta = %+v, want +20%%", ib.Ns)
	}
	if ib.Bytes == nil || ib.Bytes.Pct != -50 {
		t.Fatalf("IndexBuild bytes delta = %+v, want -50%%", ib.Bytes)
	}
	if ib.Allocs == nil || ib.Allocs.Pct != 0 {
		t.Fatalf("IndexBuild allocs delta = %+v, want 0%%", ib.Allocs)
	}
	v := byKey["repro/internal/rov.BenchmarkValidate"]
	if v.Ns == nil || v.Ns.Pct != -50 {
		t.Fatalf("Validate ns delta = %+v, want -50%%", v.Ns)
	}
	if v.Bytes != nil {
		t.Fatalf("Validate bytes delta = %+v, want nil (absent in both)", v.Bytes)
	}
	if !byKey["repro/internal/core.BenchmarkGone"].OnlyOld {
		t.Fatal("removed benchmark not marked OnlyOld")
	}
	if !byKey["repro/internal/core.BenchmarkFresh"].OnlyNew {
		t.Fatal("added benchmark not marked OnlyNew")
	}
	// Worst ns/op regression is IndexBuild's +20% (Validate improved; the
	// new/removed rows have no delta to compare).
	if worst != 20 {
		t.Fatalf("worst regression = %v, want 20", worst)
	}
}

func TestDiffResultsZeroOld(t *testing.T) {
	old := []result{{Name: "BenchmarkX", NsPerOp: fp(0)}}
	cur := []result{{Name: "BenchmarkX", NsPerOp: fp(3)}}
	rows, worst := diffResults(old, cur)
	if rows[0].Ns == nil || !math.IsInf(rows[0].Ns.Pct, 1) {
		t.Fatalf("zero-baseline delta = %+v, want +inf", rows[0].Ns)
	}
	if !math.IsInf(worst, 1) {
		t.Fatalf("worst = %v, want +inf", worst)
	}
}

func TestDiffResultsNoCommon(t *testing.T) {
	rows, worst := diffResults(
		[]result{{Name: "BenchmarkA", NsPerOp: fp(1)}},
		[]result{{Name: "BenchmarkB", NsPerOp: fp(1)}})
	if len(rows) != 2 || worst != 0 {
		t.Fatalf("rows=%d worst=%v, want 2 rows and worst 0", len(rows), worst)
	}
}

func TestPrintDiffRenders(t *testing.T) {
	rows, _ := diffResults(
		[]result{{Name: "BenchmarkA", NsPerOp: fp(100), BytesPerOp: fp(1 << 20), AllocsPerOp: fp(3)}},
		[]result{{Name: "BenchmarkA", NsPerOp: fp(90), BytesPerOp: fp(1 << 19), AllocsPerOp: fp(3)}})
	var buf bytes.Buffer
	printDiff(&buf, "old.json", "new.json", rows)
	out := buf.String()
	for _, want := range []string{"BenchmarkA", "-10.0%", "-50.0%", "+0.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}
