package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestDiffResults(t *testing.T) {
	old := []result{
		{Package: "repro/internal/rov", Name: "BenchmarkIndexBuild", NsPerOp: fp(1000), BytesPerOp: fp(4096), AllocsPerOp: fp(100)},
		{Package: "repro/internal/rov", Name: "BenchmarkValidate", NsPerOp: fp(80), AllocsPerOp: fp(0)},
		{Package: "repro/internal/core", Name: "BenchmarkGone", NsPerOp: fp(5)},
	}
	cur := []result{
		{Package: "repro/internal/rov", Name: "BenchmarkIndexBuild", NsPerOp: fp(1200), BytesPerOp: fp(2048), AllocsPerOp: fp(100)},
		{Package: "repro/internal/rov", Name: "BenchmarkValidate", NsPerOp: fp(40), AllocsPerOp: fp(0)},
		{Package: "repro/internal/core", Name: "BenchmarkFresh", NsPerOp: fp(7)},
	}
	rows, worst := diffResults(old, cur, nil, nil)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 common + 1 removed + 1 new)", len(rows))
	}
	byKey := map[string]diffRow{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	ib := byKey["repro/internal/rov.BenchmarkIndexBuild"]
	if ib.Ns == nil || ib.Ns.Pct != 20 {
		t.Fatalf("IndexBuild ns delta = %+v, want +20%%", ib.Ns)
	}
	if ib.Bytes == nil || ib.Bytes.Pct != -50 {
		t.Fatalf("IndexBuild bytes delta = %+v, want -50%%", ib.Bytes)
	}
	if ib.Allocs == nil || ib.Allocs.Pct != 0 {
		t.Fatalf("IndexBuild allocs delta = %+v, want 0%%", ib.Allocs)
	}
	v := byKey["repro/internal/rov.BenchmarkValidate"]
	if v.Ns == nil || v.Ns.Pct != -50 {
		t.Fatalf("Validate ns delta = %+v, want -50%%", v.Ns)
	}
	if v.Bytes != nil {
		t.Fatalf("Validate bytes delta = %+v, want nil (absent in both)", v.Bytes)
	}
	if !byKey["repro/internal/core.BenchmarkGone"].OnlyOld {
		t.Fatal("removed benchmark not marked OnlyOld")
	}
	if !byKey["repro/internal/core.BenchmarkFresh"].OnlyNew {
		t.Fatal("added benchmark not marked OnlyNew")
	}
	// Worst regressions per metric: ns/op is IndexBuild's +20% (Validate
	// improved; the new/removed rows have no delta to compare), B/op is
	// IndexBuild's -50% improvement (the only B/op pair), allocs/op is flat.
	if worst.Ns != 20 || worst.Bytes != -50 || worst.Allocs != 0 {
		t.Fatalf("worst = %+v, want {Ns:20 Bytes:-50 Allocs:0}", worst)
	}
}

func TestDiffResultsZeroOld(t *testing.T) {
	old := []result{{Name: "BenchmarkX", NsPerOp: fp(0)}}
	cur := []result{{Name: "BenchmarkX", NsPerOp: fp(3)}}
	rows, worst := diffResults(old, cur, nil, nil)
	if rows[0].Ns == nil || !math.IsInf(rows[0].Ns.Pct, 1) {
		t.Fatalf("zero-baseline delta = %+v, want +inf", rows[0].Ns)
	}
	if !math.IsInf(worst.Ns, 1) {
		t.Fatalf("worst = %+v, want Ns +inf", worst)
	}
}

func TestDiffResultsNoCommon(t *testing.T) {
	rows, worst := diffResults(
		[]result{{Name: "BenchmarkA", NsPerOp: fp(1)}},
		[]result{{Name: "BenchmarkB", NsPerOp: fp(1)}}, nil, nil)
	if len(rows) != 2 || worst != (worstRegressions{}) {
		t.Fatalf("rows=%d worst=%+v, want 2 rows and zero worsts", len(rows), worst)
	}
}

// TestGateFailures pins the multi-metric threshold semantics: the shared
// -threshold gates all three metrics, per-metric overrides replace it when
// non-negative, 0 (shared or override) disables, and improvements never
// trip a gate.
func TestGateFailures(t *testing.T) {
	w := worstRegressions{Ns: 40, Bytes: 12, Allocs: -5}
	cases := []struct {
		name                   string
		base, ns, bytes, alloc float64
		want                   int
	}{
		{"disabled", 0, -1, -1, -1, 0},
		{"shared gates all", 10, -1, -1, -1, 2},           // ns 40>10, bytes 12>10; allocs improved
		{"shared loose", 50, -1, -1, -1, 0},               // nothing beyond 50
		{"bytes override tight", 50, -1, 10, -1, 1},       // only bytes 12>10
		{"ns override disables", 10, 0, -1, -1, 1},        // bytes still gated by shared
		{"alloc override alone", 0, -1, -1, 1, 0},         // allocs improved: no failure
		{"alloc regression gated", 0, -1, -1, 1, 1},       // see flip below
		{"override looser than shared", 10, 45, -1, 0, 1}, /* ns passes at 45, bytes 12>10, allocs off */
	}
	for _, c := range cases {
		ww := w
		if c.name == "alloc regression gated" {
			ww.Allocs = 3
		}
		got := gateFailures(ww, c.base, c.ns, c.bytes, c.alloc, -1)
		if len(got) != c.want {
			t.Errorf("%s: gateFailures(%+v, %v, %v, %v, %v) = %v, want %d failures",
				c.name, ww, c.base, c.ns, c.bytes, c.alloc, got, c.want)
		}
	}
	// The failure text names the metric and both percentages.
	msgs := gateFailures(worstRegressions{Ns: 33}, 20, -1, -1, -1, -1)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "ns/op") || !strings.Contains(msgs[0], "+33.0%") || !strings.Contains(msgs[0], "20.0%") {
		t.Fatalf("failure message = %q", msgs)
	}
}

func TestPrintDiffRenders(t *testing.T) {
	rows, _ := diffResults(
		[]result{{Name: "BenchmarkA", NsPerOp: fp(100), BytesPerOp: fp(1 << 20), AllocsPerOp: fp(3)}},
		[]result{{Name: "BenchmarkA", NsPerOp: fp(90), BytesPerOp: fp(1 << 19), AllocsPerOp: fp(3)}}, nil, nil)
	var buf bytes.Buffer
	printDiff(&buf, "old.json", "new.json", rows)
	out := buf.String()
	for _, want := range []string{"BenchmarkA", "-10.0%", "-50.0%", "+0.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffResultsMemNoisy pins the -mem-noisy routing: a matched
// benchmark's B/op and allocs/op regressions land in worst.NoisyMem (gated
// at the wall-clock threshold) instead of worst.Bytes/Allocs, while its
// ns/op and every unmatched benchmark keep the strict gates.
func TestDiffResultsMemNoisy(t *testing.T) {
	old := []result{
		{Package: "repro", Name: "BenchmarkPar/p8", NsPerOp: fp(1000), BytesPerOp: fp(1000), AllocsPerOp: fp(10)},
		{Package: "repro", Name: "BenchmarkExact", NsPerOp: fp(1000), BytesPerOp: fp(1000), AllocsPerOp: fp(10)},
	}
	cur := []result{
		{Package: "repro", Name: "BenchmarkPar/p8", NsPerOp: fp(1100), BytesPerOp: fp(1300), AllocsPerOp: fp(10)},
		{Package: "repro", Name: "BenchmarkExact", NsPerOp: fp(1000), BytesPerOp: fp(1050), AllocsPerOp: fp(10)},
	}
	matcher, err := globMatcher("-mem-noisy", "repro.BenchmarkPar/*")
	if err != nil {
		t.Fatal(err)
	}
	_, worst := diffResults(old, cur, matcher, nil)
	if worst.NoisyMem != 30 {
		t.Fatalf("worst.NoisyMem = %v, want 30 (the matched benchmark's B/op)", worst.NoisyMem)
	}
	if worst.Bytes != 5 {
		t.Fatalf("worst.Bytes = %v, want 5 (the unmatched benchmark only)", worst.Bytes)
	}
	if worst.Ns != 10 {
		t.Fatalf("worst.Ns = %v, want 10 (ns/op stays strict for matched benchmarks)", worst.Ns)
	}
	// NoisyMem is gated at the ns threshold: 30% passes a 50% wall-clock
	// gate but would have failed the 10% memory gate.
	if msgs := gateFailures(worst, 50, -1, 10, 10, -1); len(msgs) != 0 {
		t.Fatalf("gateFailures = %v, want none (noisy mem inside wall-clock threshold)", msgs)
	}
	if msgs := gateFailures(worst, 20, -1, 10, 10, -1); len(msgs) != 1 || !strings.Contains(msgs[0], "mem-noisy") {
		t.Fatalf("gateFailures = %v, want one mem-noisy failure at a 20%% gate", msgs)
	}
	// An invalid pattern is a flag error, not a silent no-match.
	if _, err := globMatcher("-mem-noisy", "[bad"); err == nil {
		t.Fatal("globMatcher accepted an invalid pattern")
	}
}

// TestDiffResultsTimeNoisy pins the -time-noisy routing: a matched
// benchmark's ns/op regression lands in worst.NoisyNs (gated at
// -threshold-time-noisy) instead of worst.Ns, while its memory metrics and
// every unmatched benchmark keep their usual gates.
func TestDiffResultsTimeNoisy(t *testing.T) {
	old := []result{
		{Package: "repro", Name: "BenchmarkLive/delta1", NsPerOp: fp(1000), BytesPerOp: fp(1000), AllocsPerOp: fp(2)},
		{Package: "repro", Name: "BenchmarkSteady", NsPerOp: fp(1000), BytesPerOp: fp(1000), AllocsPerOp: fp(2)},
	}
	cur := []result{
		{Package: "repro", Name: "BenchmarkLive/delta1", NsPerOp: fp(2000), BytesPerOp: fp(1000), AllocsPerOp: fp(2)},
		{Package: "repro", Name: "BenchmarkSteady", NsPerOp: fp(1200), BytesPerOp: fp(1000), AllocsPerOp: fp(2)},
	}
	matcher, err := globMatcher("-time-noisy", "repro.BenchmarkLive/*")
	if err != nil {
		t.Fatal(err)
	}
	_, worst := diffResults(old, cur, nil, matcher)
	if worst.NoisyNs != 100 {
		t.Fatalf("worst.NoisyNs = %v, want 100 (the matched benchmark's ns/op)", worst.NoisyNs)
	}
	if worst.Ns != 20 {
		t.Fatalf("worst.Ns = %v, want 20 (the unmatched benchmark only)", worst.Ns)
	}
	// The +100% matched regression passes a 200% time-noisy gate while the
	// strict 50% ns/op gate still covers the unmatched benchmark.
	if msgs := gateFailures(worst, 50, -1, 10, 10, 200); len(msgs) != 0 {
		t.Fatalf("gateFailures = %v, want none (time-noisy inside its own threshold)", msgs)
	}
	if msgs := gateFailures(worst, 50, -1, 10, 10, 80); len(msgs) != 1 || !strings.Contains(msgs[0], "time-noisy") {
		t.Fatalf("gateFailures = %v, want one time-noisy failure at an 80%% gate", msgs)
	}
	// With no explicit time-noisy threshold, the ns/op threshold applies.
	if msgs := gateFailures(worst, 50, -1, 10, 10, -1); len(msgs) != 1 || !strings.Contains(msgs[0], "time-noisy") {
		t.Fatalf("gateFailures = %v, want the inherited 50%% gate to fail", msgs)
	}
}
