// Package synth generates the synthetic Internet-scale datasets that stand
// in for the paper's RouteViews BGP tables and RPKI repository snapshots
// (weekly, 4/13/2017–6/1/2017). Public data for those dates is unavailable
// offline, so the generator reproduces the *joint structure* of the two
// datasets — which fully determines every quantity the evaluation measures —
// rather than the concrete prefixes.
//
// # Calibration
//
// The generator composes "blocks", each owned by one AS and carved from a
// disjoint base prefix. Block kinds, with their contribution to the measured
// quantities:
//
//	single       one announced route; no ROA.
//	sibC         announced parent + both children (1-level full
//	             de-aggregation): trie compression merges 3→1 (saves 2);
//	             the max-permissive lower bound also saves 2.
//	sibD         2-level full de-aggregation (7 routes): saves 6 both ways.
//	partial      announced parent + one child: compression saves 0, the
//	             lower bound saves 1 (this gap is the paper's 730,008 vs
//	             729,371).
//	roaSingle    announced route with an exact (no-maxLength) ROA tuple.
//	roaSibC      sibC where all three routes also have ROA tuples: the
//	             status-quo PDU list compresses by 2 here, and still does
//	             after minimalization.
//	roaStale     ROA tuples for a parent and both children, but only the
//	             parent announced: status quo compresses by 2, but
//	             minimalization drops the children, destroying the saving —
//	             this is why the paper's minimal sets compress by only 6.5%
//	             while the status quo compresses by 15.9%.
//	roaMinML     a minimal maxLength-using ROA (p/l-(l+1)) whose full
//	             expansion (p + both children) is announced: not vulnerable;
//	             minimalization expands 1→3 tuples which then re-compress.
//	roaVulnML    a NON-minimal maxLength-using ROA (p/l-(l+3)) with only a
//	             few scattered /l+3 subprefixes announced (and p itself
//	             unannounced): vulnerable to forged-origin subprefix hijack.
//
// Solving the paper's published totals for the block counts gives the
// defaults in Params6_1 (see DESIGN.md §2 for the full derivation):
//
//	tuples          = roaSingle + 3·roaSibC + 3·roaStale + roaMinML + roaVulnML        = 39,949
//	statusCompressed= tuples − 2·(roaSibC + roaStale)                                  = 33,615  (−15.86%)
//	minimalPairs    = roaSingle + 3·roaSibC + roaStale + 3·roaMinML + extras           = 52,745
//	minimalComp     = minimalPairs − 2·(roaSibC + roaMinML)                            = 49,307  (−6.5%)
//	routes          = everything announced                                             = 776,945
//	fullComp        = routes − 2·(sibC + roaSibC + roaMinML) − 6·sibD                  = 730,007
//	lowerBound      = routes − SubprefixRoutes                                         = 729,370
//
// matching Table 1 within ±1 PDU per row.
package synth

import (
	"fmt"
	"time"

	"repro/internal/bgp"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// Params controls the generator. All counts refer to block counts, not
// route/tuple counts (see the package comment for the mapping).
type Params struct {
	Seed uint64 // address-layout permutation seed

	// BGP-only blocks.
	Singles   int // plain announced routes, IPv4
	SinglesV6 int // plain announced routes, IPv6
	SibC      int // 1-level full de-aggregation families
	SibD      int // 2-level full de-aggregation families
	Partial   int // parent + single child families

	// RPKI-covered blocks.
	ROASingles  int // exact-match no-maxLength tuples
	ROASibC     int // fully announced compressible tuple families
	ROAStale    int // tuple families with unannounced children
	ROAMinML    int // minimal maxLength users (not vulnerable)
	ROAVulnML   int // non-minimal maxLength users (vulnerable)
	VulnExtras  int // announced scattered subprefixes per vulnerable tuple
	VulnBonus   int // number of vulnerable tuples that get one extra route
	ROAOriginAS int // number of distinct RPKI origin ASes (≈ ROA count)
}

// Params6_1 returns the calibration for the paper's 6/1/2017 dataset.
func Params6_1() Params {
	return Params{
		Seed:        0x5eed_2017_0601,
		Singles:     623676,
		SinglesV6:   40000,
		SibC:        12750,
		SibD:        3000,
		Partial:     637,
		ROASingles:  25818,
		ROASibC:     978,
		ROAStale:    2189,
		ROAMinML:    741,
		ROAVulnML:   3889,
		VulnExtras:  5,
		VulnBonus:   136,
		ROAOriginAS: 7499,
	}
}

// Scale returns a copy of p with every block count multiplied by f (>0),
// used to produce the weekly growth of Figure 3. Per-tuple knobs
// (VulnExtras) and the seed are preserved; the seed is re-derived from the
// factor so snapshots differ in layout as well as size.
func (p Params) Scale(f float64) Params {
	if f == 1 {
		return p
	}
	s := p
	mul := func(n int) int {
		v := int(float64(n)*f + 0.5)
		if n > 0 && v < 1 {
			v = 1
		}
		return v
	}
	s.Singles = mul(p.Singles)
	s.SinglesV6 = mul(p.SinglesV6)
	s.SibC = mul(p.SibC)
	s.SibD = mul(p.SibD)
	s.Partial = mul(p.Partial)
	s.ROASingles = mul(p.ROASingles)
	s.ROASibC = mul(p.ROASibC)
	s.ROAStale = mul(p.ROAStale)
	s.ROAMinML = mul(p.ROAMinML)
	s.ROAVulnML = mul(p.ROAVulnML)
	s.VulnBonus = mul(p.VulnBonus)
	s.ROAOriginAS = mul(p.ROAOriginAS)
	s.Seed = p.Seed ^ uint64(f*1e6)
	return s
}

// Dates6_1 returns the paper's eight weekly snapshot dates,
// 4/13/2017–6/1/2017.
func Dates6_1() []time.Time {
	start := time.Date(2017, 4, 13, 0, 0, 0, 0, time.UTC)
	out := make([]time.Time, 8)
	for i := range out {
		out[i] = start.AddDate(0, 0, 7*i)
	}
	return out
}

// SnapshotParams returns the calibration for one of the Figure 3 dates:
// the table grows ≈0.45%/week toward the 6/1 targets.
func SnapshotParams(date time.Time) Params {
	dates := Dates6_1()
	weeks := 0
	for i, d := range dates {
		if !date.Before(d) {
			weeks = i
		}
	}
	f := 1.0 - 0.0045*float64(len(dates)-1-weeks)
	return Params6_1().Scale(f)
}

// Dataset is one generated snapshot.
type Dataset struct {
	Params Params
	Table  *bgp.Table // the BGP "RouteViews" table
	ROAs   []rpki.ROA // one ROA per RPKI origin AS
	VRPs   *rpki.Set  // the status-quo PDU list (expansion of ROAs)
}

// Generate builds a deterministic snapshot from the parameters.
func Generate(p Params) *Dataset {
	g := &generator{
		p:    p,
		perm: newPermuter(p.Seed),
	}
	g.run()
	roas := make([]rpki.ROA, 0, len(g.roaOrder))
	for _, as := range g.roaOrder {
		roas = append(roas, rpki.ROA{AS: as, Prefixes: g.roaPrefixes[as]})
	}
	return &Dataset{
		Params: p,
		Table:  bgp.NewTable(g.routes),
		ROAs:   roas,
		VRPs:   rpki.SetFromROAs(roas),
	}
}

// generator carries the allocation state during a run.
type generator struct {
	p           Params
	perm        *permuter
	nextBlock   uint64 // sequential /20 block index (pre-permutation)
	nextV6      uint64 // sequential IPv6 /32 index
	nextEdgeAS  uint32 // non-RPKI origin allocator
	edgeBlocks  int    // blocks assigned to the current edge AS
	nextROAIdx  int    // round-robin RPKI AS allocator
	routes      []bgp.Route
	roaPrefixes map[rpki.ASN][]rpki.ROAPrefix
	roaOrder    []rpki.ASN
}

const (
	baseLen         = 20 // IPv4 block base prefix length
	v6BaseLen       = 32
	edgeASBase      = 100000 // non-RPKI ASes start here
	roaASBase       = 1000   // RPKI ASes occupy [roaASBase, roaASBase+ROAOriginAS)
	blocksPerEdgeAS = 12
)

// nextBase returns the next disjoint IPv4 /20 base prefix. Block indexes are
// passed through a bijective permutation so addresses look scattered while
// remaining collision-free.
func (g *generator) nextBase() prefix.Prefix {
	idx := g.perm.permute20(g.nextBlock)
	g.nextBlock++
	if g.nextBlock >= 1<<baseLen {
		panic("synth: exhausted IPv4 /20 block space")
	}
	p, err := prefix.Make(prefix.IPv4, idx<<(64-baseLen), 0, baseLen)
	if err != nil {
		panic(err)
	}
	return p
}

// nextV6Base returns the next disjoint IPv6 /32 under 2000::/3.
func (g *generator) nextV6Base() prefix.Prefix {
	idx := g.nextV6
	g.nextV6++
	// hi = 0010 (3 bits of 2000::/3) then 29 permuted bits then /32 boundary.
	hi := uint64(0x2)<<60 | g.perm.permute29(idx)<<32
	p, err := prefix.Make(prefix.IPv6, hi, 0, v6BaseLen)
	if err != nil {
		panic(err)
	}
	return p
}

// edgeAS hands out non-RPKI origin ASes, a dozen blocks per AS.
func (g *generator) edgeAS() rpki.ASN {
	if g.edgeBlocks >= blocksPerEdgeAS {
		g.nextEdgeAS++
		g.edgeBlocks = 0
	}
	g.edgeBlocks++
	return rpki.ASN(edgeASBase + g.nextEdgeAS)
}

// roaAS hands out RPKI origin ASes round-robin, so tuples spread evenly
// across the p.ROAOriginAS ROAs (≈5.3 tuples per ROA at the 6/1 defaults).
func (g *generator) roaAS() rpki.ASN {
	as := rpki.ASN(roaASBase + g.nextROAIdx%g.p.ROAOriginAS)
	g.nextROAIdx++
	return as
}

func (g *generator) announce(p prefix.Prefix, as rpki.ASN) {
	g.routes = append(g.routes, bgp.Route{Prefix: p, Origin: as})
}

func (g *generator) authorize(as rpki.ASN, p prefix.Prefix, maxLength uint8) {
	if g.roaPrefixes == nil {
		g.roaPrefixes = make(map[rpki.ASN][]rpki.ROAPrefix)
	}
	if _, ok := g.roaPrefixes[as]; !ok {
		g.roaOrder = append(g.roaOrder, as)
	}
	g.roaPrefixes[as] = append(g.roaPrefixes[as], rpki.ROAPrefix{Prefix: p, MaxLength: maxLength})
}

func (g *generator) run() {
	p := g.p
	if p.ROAOriginAS <= 0 {
		p.ROAOriginAS = 1
		g.p = p
	}
	// BGP-only blocks.
	for i := 0; i < p.Singles; i++ {
		g.announce(g.nextBase(), g.edgeAS())
	}
	for i := 0; i < p.SinglesV6; i++ {
		g.announce(g.nextV6Base(), g.edgeAS())
	}
	for i := 0; i < p.SibC; i++ {
		as, base := g.edgeAS(), g.nextBase()
		g.announce(base, as)
		g.announce(base.Child(0), as)
		g.announce(base.Child(1), as)
	}
	for i := 0; i < p.SibD; i++ {
		as, base := g.edgeAS(), g.nextBase()
		g.announce(base, as)
		for _, c := range []prefix.Prefix{base.Child(0), base.Child(1)} {
			g.announce(c, as)
			g.announce(c.Child(0), as)
			g.announce(c.Child(1), as)
		}
	}
	for i := 0; i < p.Partial; i++ {
		as, base := g.edgeAS(), g.nextBase()
		g.announce(base, as)
		g.announce(base.Child(uint8(i%2)), as)
	}

	// RPKI-covered blocks.
	for i := 0; i < p.ROASingles; i++ {
		as, base := g.roaAS(), g.nextBase()
		g.announce(base, as)
		g.authorize(as, base, base.Len())
	}
	for i := 0; i < p.ROASibC; i++ {
		as, base := g.roaAS(), g.nextBase()
		for _, q := range []prefix.Prefix{base, base.Child(0), base.Child(1)} {
			g.announce(q, as)
			g.authorize(as, q, q.Len())
		}
	}
	for i := 0; i < p.ROAStale; i++ {
		as, base := g.roaAS(), g.nextBase()
		g.announce(base, as) // children authorized but NOT announced
		for _, q := range []prefix.Prefix{base, base.Child(0), base.Child(1)} {
			g.authorize(as, q, q.Len())
		}
	}
	for i := 0; i < p.ROAMinML; i++ {
		as, base := g.roaAS(), g.nextBase()
		g.announce(base, as)
		g.announce(base.Child(0), as)
		g.announce(base.Child(1), as)
		g.authorize(as, base, base.Len()+1) // minimal despite maxLength
	}
	for i := 0; i < p.ROAVulnML; i++ {
		as, base := g.roaAS(), g.nextBase()
		extras := p.VulnExtras
		if i < p.VulnBonus {
			extras++
		}
		// Scattered /base+3 subprefixes (odd leaves first): none nests in
		// another, holes always remain, and no announced full-sibling pair
		// acquires an announced parent.
		leaves := base.Subprefixes(nil, base.Len()+3)
		order := []int{1, 3, 5, 7, 0, 2, 4, 6}
		for j := 0; j < extras && j < len(order); j++ {
			g.announce(leaves[order[j]], as)
		}
		g.authorize(as, base, base.Len()+3) // base itself unannounced: vulnerable
	}
}

// permuter provides deterministic bijections over 20- and 29-bit indexes
// (a few rounds of a Feistel network keyed by the seed), so block addresses
// are scattered but provably collision-free.
type permuter struct{ keys [4]uint64 }

func newPermuter(seed uint64) *permuter {
	p := &permuter{}
	x := seed | 1
	for i := range p.keys {
		// splitmix64 step.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.keys[i] = z ^ (z >> 31)
	}
	return p
}

// feistel runs a balanced Feistel network over 2*half bits.
func (p *permuter) feistel(x uint64, half uint) uint64 {
	mask := uint64(1)<<half - 1
	l, r := x>>half&mask, x&mask
	for _, k := range p.keys {
		f := (r*0x9e3779b1 + k) ^ (r >> 3)
		l, r = r, (l^f)&mask
	}
	return l<<half | r
}

func (p *permuter) permute20(x uint64) uint64 { return p.feistel(x, 10) }

// permute29 permutes 28 bits via Feistel and passes the top bit through,
// covering the full 29-bit index space injectively.
func (p *permuter) permute29(x uint64) uint64 {
	return x&(1<<28) | p.feistel(x&((1<<28)-1), 14)
}

// Summary describes a generated dataset in the paper's terms; used by tests
// and cmd/roagen.
func (d *Dataset) Summary() string {
	st := d.VRPs.ComputeStats()
	return fmt.Sprintf("routes=%d roas=%d tuples=%d usingMaxLength=%d",
		d.Table.Len(), len(d.ROAs), st.Tuples, st.UsingMaxLength)
}
