package synth

import (
	"testing"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// smallParams keeps unit tests fast while exercising every block kind.
func smallParams() Params {
	return Params{
		Seed:        7,
		Singles:     200,
		SinglesV6:   20,
		SibC:        10,
		SibD:        5,
		Partial:     4,
		ROASingles:  50,
		ROASibC:     6,
		ROAStale:    5,
		ROAMinML:    4,
		ROAVulnML:   8,
		VulnExtras:  5,
		VulnBonus:   2,
		ROAOriginAS: 20,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(smallParams()), Generate(smallParams())
	if a.Table.Len() != b.Table.Len() || !a.VRPs.Equal(b.VRPs) {
		t.Fatal("generator is not deterministic")
	}
	for i, r := range a.Table.Routes() {
		if r != b.Table.Routes()[i] {
			t.Fatalf("route %d differs: %v vs %v", i, r, b.Table.Routes()[i])
		}
	}
}

func TestGeneratedCounts(t *testing.T) {
	p := smallParams()
	d := Generate(p)
	wantRoutes := p.Singles + p.SinglesV6 + 3*p.SibC + 7*p.SibD + 2*p.Partial +
		p.ROASingles + 3*p.ROASibC + p.ROAStale + 3*p.ROAMinML +
		p.ROAVulnML*p.VulnExtras + p.VulnBonus
	if d.Table.Len() != wantRoutes {
		t.Errorf("routes = %d, want %d", d.Table.Len(), wantRoutes)
	}
	wantTuples := p.ROASingles + 3*p.ROASibC + 3*p.ROAStale + p.ROAMinML + p.ROAVulnML
	if d.VRPs.Len() != wantTuples {
		t.Errorf("tuples = %d, want %d", d.VRPs.Len(), wantTuples)
	}
	if len(d.ROAs) != p.ROAOriginAS {
		t.Errorf("ROAs = %d, want %d", len(d.ROAs), p.ROAOriginAS)
	}
	for _, r := range d.ROAs {
		if err := r.Validate(); err != nil {
			t.Fatalf("generated ROA invalid: %v", err)
		}
	}
	st := d.VRPs.ComputeStats()
	if st.UsingMaxLength != p.ROAMinML+p.ROAVulnML {
		t.Errorf("UsingMaxLength = %d, want %d", st.UsingMaxLength, p.ROAMinML+p.ROAVulnML)
	}
}

func TestGeneratedBlocksDisjoint(t *testing.T) {
	d := Generate(smallParams())
	// No announced prefix may contain another announced prefix of a
	// *different* AS (blocks are disjoint; structure is intra-AS only).
	routes := d.Table.Routes()
	for i, a := range routes {
		for _, b := range routes[i+1:] {
			if a.Prefix.Overlaps(b.Prefix) && a.Origin != b.Origin {
				t.Fatalf("cross-AS overlap: %v and %v", a, b)
			}
		}
	}
}

func TestGeneratedStructure(t *testing.T) {
	p := smallParams()
	d := Generate(p)
	st := d.Table.ComputeDeaggStats()
	// Full sibling parents: SibC + 2-level SibD contributes 3 each (base and
	// both children) + ROASibC + ROAMinML.
	want := p.SibC + 3*p.SibD + p.ROASibC + p.ROAMinML
	if st.FullSiblingParents != want {
		t.Errorf("FullSiblingParents = %d, want %d", st.FullSiblingParents, want)
	}
	// Covered routes: 2 per SibC, 6 per SibD, 1 per Partial, 2 per ROASibC,
	// 2 per ROAMinML.
	wantCovered := 2*p.SibC + 6*p.SibD + p.Partial + 2*p.ROASibC + 2*p.ROAMinML
	if st.SubprefixRoutes != wantCovered {
		t.Errorf("SubprefixRoutes = %d, want %d", st.SubprefixRoutes, wantCovered)
	}
}

func TestGeneratedVulnerabilityShape(t *testing.T) {
	p := smallParams()
	d := Generate(p)
	rep := core.AnalyzeVulnerabilities(d.VRPs, d.Table, false)
	if rep.UsingMaxLength != p.ROAMinML+p.ROAVulnML {
		t.Errorf("UsingMaxLength = %d", rep.UsingMaxLength)
	}
	if rep.Vulnerable != p.ROAVulnML {
		t.Errorf("Vulnerable = %d, want %d (only the non-minimal ML tuples)", rep.Vulnerable, p.ROAVulnML)
	}
	if rep.Effective != p.ROAVulnML {
		t.Errorf("Effective = %d, want %d (holes always remain)", rep.Effective, p.ROAVulnML)
	}
}

func TestGeneratedCompressionShape(t *testing.T) {
	p := smallParams()
	d := Generate(p)

	// Status quo compression: 2 saved per ROASibC and per ROAStale family.
	comp, res := core.Compress(d.VRPs, core.Options{})
	wantSaved := 2 * (p.ROASibC + p.ROAStale)
	if res.In-res.Out != wantSaved {
		t.Errorf("status quo compression saved %d, want %d", res.In-res.Out, wantSaved)
	}
	if err := core.VerifyCompression(d.VRPs, comp); err != nil {
		t.Fatal(err)
	}

	// Minimal conversion counts.
	min := core.Minimalize(d.VRPs, d.Table)
	wantMin := p.ROASingles + 3*p.ROASibC + p.ROAStale + 3*p.ROAMinML +
		p.ROAVulnML*p.VulnExtras + p.VulnBonus
	if min.Len() != wantMin {
		t.Errorf("minimal pairs = %d, want %d", min.Len(), wantMin)
	}
	for _, v := range min.VRPs() {
		if v.UsesMaxLength() {
			t.Fatalf("minimal set uses maxLength: %v", v)
		}
	}
	// Compressed minimal: saves 2 per ROASibC + per ROAMinML family.
	_, res2 := core.Compress(min, core.Options{})
	wantSaved2 := 2 * (p.ROASibC + p.ROAMinML)
	if res2.In-res2.Out != wantSaved2 {
		t.Errorf("minimal compression saved %d, want %d", res2.In-res2.Out, wantSaved2)
	}

	// Full deployment.
	full := core.FullDeploymentMinimal(d.Table)
	if full.Len() != d.Table.Len() {
		t.Fatalf("full deployment tuples = %d, want %d", full.Len(), d.Table.Len())
	}
	_, res3 := core.Compress(full, core.Options{})
	wantSaved3 := 2*(p.SibC+p.ROASibC+p.ROAMinML) + 6*p.SibD
	if res3.In-res3.Out != wantSaved3 {
		t.Errorf("full-deployment compression saved %d, want %d", res3.In-res3.Out, wantSaved3)
	}
	lb := core.FullDeploymentLowerBound(d.Table)
	wantLB := d.Table.Len() - (2*(p.SibC+p.ROASibC+p.ROAMinML) + 6*p.SibD + p.Partial)
	if lb.Len() != wantLB {
		t.Errorf("lower bound = %d, want %d", lb.Len(), wantLB)
	}
	if lb.Len() > res3.Out {
		t.Errorf("lower bound %d exceeds compressed size %d", lb.Len(), res3.Out)
	}
}

func TestScaleAndSnapshots(t *testing.T) {
	p := Params6_1()
	half := p.Scale(0.5)
	if half.Singles != (p.Singles+1)/2 && half.Singles != p.Singles/2 {
		t.Errorf("Scale halving wrong: %d", half.Singles)
	}
	if half.VulnExtras != p.VulnExtras {
		t.Error("Scale must not change per-tuple knobs")
	}
	dates := Dates6_1()
	if len(dates) != 8 {
		t.Fatalf("dates = %v", dates)
	}
	prev := 0
	for _, d := range dates {
		sp := SnapshotParams(d)
		total := sp.Singles + sp.ROASingles
		if total <= 0 || total < prev {
			t.Errorf("snapshot %v not monotone: %d < %d", d, total, prev)
		}
		prev = total
	}
	if SnapshotParams(dates[7]) != Params6_1() {
		t.Error("6/1 snapshot must equal the headline calibration")
	}
}

func TestPermuterBijective(t *testing.T) {
	p := newPermuter(99)
	seen := make(map[uint64]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := p.permute20(i)
		if v >= 1<<20 {
			t.Fatalf("permute20(%d) = %d out of range", i, v)
		}
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
	seen29 := make(map[uint64]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := p.permute29(i)
		if v >= 1<<29 {
			t.Fatalf("permute29(%d) = %d out of range", i, v)
		}
		if seen29[v] {
			t.Fatalf("29-bit collision at %d", i)
		}
		seen29[v] = true
	}
}

func TestSummary(t *testing.T) {
	d := Generate(smallParams())
	if s := d.Summary(); len(s) == 0 {
		t.Error("empty summary")
	}
}

func TestROAOriginASDefaulting(t *testing.T) {
	p := smallParams()
	p.ROAOriginAS = 0
	d := Generate(p) // must not panic (mod by zero guard)
	if len(d.ROAs) != 1 {
		t.Errorf("ROAs = %d, want 1", len(d.ROAs))
	}
}

func TestGeneratedIPv6(t *testing.T) {
	d := Generate(smallParams())
	v6 := 0
	for _, r := range d.Table.Routes() {
		if r.Prefix.Family() == prefix.IPv6 {
			v6++
			if r.Prefix.Len() != 32 {
				t.Errorf("v6 route %v not a /32", r)
			}
		}
	}
	if v6 != smallParams().SinglesV6 {
		t.Errorf("v6 routes = %d", v6)
	}
}

func TestDatesExact(t *testing.T) {
	d := Dates6_1()
	if d[0].Month() != 4 || d[0].Day() != 13 || d[7].Month() != 6 || d[7].Day() != 1 {
		t.Errorf("date range wrong: %v .. %v", d[0], d[7])
	}
}

var _ = rpki.ASN(0)
