package bgp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// Speaker is a minimal eBGP speaker: it performs the OPEN/KEEPALIVE
// handshake, announces routes, and accumulates routes learned from the peer
// into an adj-RIB-in. It exists to exercise the wire codec end to end —
// e.g. sending the paper's forged-origin announcement to a peer that
// validates with ROV — not to implement the full RFC 4271 FSM.
type Speaker struct {
	AS       rpki.ASN
	BGPID    uint32
	HoldTime uint16

	conn   net.Conn
	peerAS rpki.ASN

	mu     sync.Mutex
	ribIn  map[prefix.Prefix]Announcement
	closed bool
}

// NewSpeaker wraps an established transport connection.
func NewSpeaker(conn net.Conn, as rpki.ASN, bgpID uint32) *Speaker {
	return &Speaker{AS: as, BGPID: bgpID, HoldTime: 90, conn: conn, ribIn: make(map[prefix.Prefix]Announcement)}
}

// Handshake exchanges OPEN and the confirming KEEPALIVE with the peer and
// returns the peer's AS.
func (s *Speaker) Handshake() (rpki.ASN, error) {
	if err := WriteMessage(s.conn, &Open{AS: s.AS, HoldTime: s.HoldTime, BGPID: s.BGPID}); err != nil {
		return 0, err
	}
	msg, err := ReadMessage(s.conn)
	if err != nil {
		return 0, err
	}
	open, ok := msg.(*Open)
	if !ok {
		return 0, fmt.Errorf("bgp: expected OPEN, got %T", msg)
	}
	if err := WriteMessage(s.conn, &Keepalive{}); err != nil {
		return 0, err
	}
	if msg, err = ReadMessage(s.conn); err != nil {
		return 0, err
	}
	if _, ok := msg.(*Keepalive); !ok {
		return 0, fmt.Errorf("bgp: expected KEEPALIVE, got %T", msg)
	}
	s.peerAS = open.AS
	return open.AS, nil
}

// PeerAS returns the AS learned during the handshake.
func (s *Speaker) PeerAS() rpki.ASN { return s.peerAS }

// Announce sends one UPDATE for the given announcement, prepending the
// speaker's own AS to the path if not already present (a hijacker passes a
// pre-forged path instead).
func (s *Speaker) Announce(a Announcement) error {
	path := a.Path
	if len(path) == 0 || path[0] != s.AS {
		path = append([]rpki.ASN{s.AS}, path...)
	}
	return WriteMessage(s.conn, &Update{Path: path, NLRI: []prefix.Prefix{a.Prefix}})
}

// Withdraw sends a withdrawal for an IPv4 prefix.
func (s *Speaker) Withdraw(p prefix.Prefix) error {
	return WriteMessage(s.conn, &Update{Withdrawn: []prefix.Prefix{p}})
}

// AnnounceTable announces every route of a table with origin-only paths.
func (s *Speaker) AnnounceTable(t *Table) error {
	for _, r := range t.Routes() {
		if err := s.Announce(Announcement{Prefix: r.Prefix, Path: []rpki.ASN{r.Origin}}); err != nil {
			return err
		}
	}
	return nil
}

// ReadLoop consumes messages until the connection closes, applying UPDATEs
// to the adj-RIB-in. accept, when non-nil, filters incoming announcements
// (return false to reject — the hook where ROV drops Invalids). ReadLoop
// returns nil on clean close and the received Notification as an error.
func (s *Speaker) ReadLoop(accept func(Announcement) bool) error {
	for {
		msg, err := ReadMessage(s.conn)
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) ||
				errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // session torn down by either side
			}
			return err
		}
		switch m := msg.(type) {
		case *Keepalive:
		case *Update:
			s.mu.Lock()
			for _, p := range m.Withdrawn {
				delete(s.ribIn, p)
			}
			for _, p := range m.NLRI {
				a := Announcement{Prefix: p, Path: m.Path}
				if accept == nil || accept(a) {
					s.ribIn[p] = a
				}
			}
			s.mu.Unlock()
		case *Notification:
			return m
		default:
			return fmt.Errorf("bgp: unexpected %T mid-session", msg)
		}
	}
}

// RIBIn snapshots the routes learned from the peer.
func (s *Speaker) RIBIn() []Announcement {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Announcement, 0, len(s.ribIn))
	for _, a := range s.ribIn {
		out = append(out, a)
	}
	return out
}

// RIBInTable projects the adj-RIB-in to a (prefix, origin) Table.
func (s *Speaker) RIBInTable() *Table {
	return TableFromAnnouncements(s.RIBIn())
}

// Notify sends a NOTIFICATION and closes the session.
func (s *Speaker) Notify(code, subcode byte) error {
	err := WriteMessage(s.conn, &Notification{Code: code, Subcode: subcode})
	s.Close()
	return err
}

// Close closes the transport.
func (s *Speaker) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

func (s *Speaker) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Keepalives starts a keepalive ticker (HoldTime/3 per RFC 4271) and
// returns a stop function.
func (s *Speaker) Keepalives() (stop func()) {
	interval := time.Duration(s.HoldTime) * time.Second / 3
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := WriteMessage(s.conn, &Keepalive{}); err != nil {
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
