package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// BGP-4 wire format (RFC 4271) with 4-octet AS numbers (RFC 6793) and
// multiprotocol IPv6 NLRI (RFC 4760). This is the message layer the paper's
// announcements — legitimate, de-aggregated, and hijacked alike — travel
// over; internal/bgpsim abstracts propagation policy, this file provides the
// concrete encoding and a Speaker for wire-level experiments.
//
// Every message starts with the RFC 4271 header: a 16-byte all-ones marker,
// a 2-byte length (including the header), and a 1-byte type.

// Message types.
const (
	MsgOpen         byte = 1
	MsgUpdate       byte = 2
	MsgNotification byte = 3
	MsgKeepalive    byte = 4
)

// Attribute type codes (beyond the MRT ones).
const (
	attrNextHop     byte = 3
	attrMPReachNLRI byte = 14
)

// Capability codes used in OPEN.
const (
	capMultiprotocol byte = 1
	capFourOctetAS   byte = 65
)

const (
	markerLen     = 16
	msgHeaderLen  = markerLen + 3
	maxMessageLen = 4096 // RFC 4271 §4
	asTrans       = 23456
)

// Open is a BGP OPEN message (always advertising 4-octet-AS and IPv6
// multiprotocol capabilities).
type Open struct {
	AS       rpki.ASN
	HoldTime uint16
	BGPID    uint32
}

// Update is a BGP UPDATE: withdrawn prefixes plus announced NLRI sharing one
// attribute set. IPv4 NLRI ride in the classic fields; IPv6 NLRI are carried
// in MP_REACH_NLRI.
type Update struct {
	Withdrawn []prefix.Prefix
	Path      []rpki.ASN // AS_PATH, one AS_SEQUENCE; empty = no announcements
	NextHop   uint32     // IPv4 next hop (the toy speaker does not forward)
	NLRI      []prefix.Prefix
}

// Notification is a BGP NOTIFICATION; sending one closes the session.
type Notification struct {
	Code, Subcode byte
	Data          []byte
}

// Error implements error so a received NOTIFICATION can propagate directly.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification %d/%d", n.Code, n.Subcode)
}

// Keepalive is the heartbeat message.
type Keepalive struct{}

// Message is any BGP message.
type Message interface{ msgType() byte }

func (*Open) msgType() byte         { return MsgOpen }
func (*Update) msgType() byte       { return MsgUpdate }
func (*Notification) msgType() byte { return MsgNotification }
func (*Keepalive) msgType() byte    { return MsgKeepalive }

// WriteMessage serializes one message.
func WriteMessage(w io.Writer, m Message) error {
	var body []byte
	var err error
	switch t := m.(type) {
	case *Open:
		body = marshalOpen(t)
	case *Update:
		body, err = marshalUpdate(t)
		if err != nil {
			return err
		}
	case *Notification:
		body = append([]byte{t.Code, t.Subcode}, t.Data...)
	case *Keepalive:
	default:
		return fmt.Errorf("bgp: unknown message %T", m)
	}
	total := msgHeaderLen + len(body)
	if total > maxMessageLen {
		return fmt.Errorf("bgp: message of %d bytes exceeds the 4096-byte limit", total)
	}
	hdr := make([]byte, msgHeaderLen)
	for i := 0; i < markerLen; i++ {
		hdr[i] = 0xff
	}
	binary.BigEndian.PutUint16(hdr[markerLen:], uint16(total))
	hdr[markerLen+2] = m.msgType()
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func marshalOpen(o *Open) []byte {
	two := uint16(asTrans)
	if uint32(o.AS) < 1<<16 {
		two = uint16(o.AS)
	}
	caps := []byte{
		capMultiprotocol, 4, 0, 2, 0, 1, // AFI 2 (IPv6), SAFI 1 (unicast)
		capFourOctetAS, 4, 0, 0, 0, 0,
	}
	binary.BigEndian.PutUint32(caps[8:], uint32(o.AS))
	opt := append([]byte{2, byte(len(caps))}, caps...) // param type 2 = capabilities
	body := make([]byte, 0, 10+len(opt))
	body = append(body, 4) // BGP version
	body = be16(body, two)
	body = be16(body, o.HoldTime)
	body = be32(body, o.BGPID)
	body = append(body, byte(len(opt)))
	return append(body, opt...)
}

func marshalUpdate(u *Update) ([]byte, error) {
	var withdrawn, nlri4, nlri6 []byte
	for _, p := range u.Withdrawn {
		if p.Family() != prefix.IPv4 {
			return nil, fmt.Errorf("bgp: IPv6 withdrawal of %s needs MP_UNREACH (unsupported)", p)
		}
		withdrawn = appendNLRI(withdrawn, p)
	}
	for _, p := range u.NLRI {
		if p.Family() == prefix.IPv4 {
			nlri4 = appendNLRI(nlri4, p)
		} else {
			nlri6 = appendNLRI(nlri6, p)
		}
	}
	var attrs []byte
	if len(nlri4) > 0 || len(nlri6) > 0 {
		if len(u.Path) == 0 {
			return nil, errors.New("bgp: announcement without an AS path")
		}
		if len(u.Path) > 63 {
			return nil, fmt.Errorf("bgp: %d-hop path exceeds the writer's limit", len(u.Path))
		}
		attrs = append(attrs, 0x40, attrOrigin, 1, 0)
		attrs = append(attrs, 0x40, attrASPath, byte(2+4*len(u.Path)), asPathSequence, byte(len(u.Path)))
		for _, as := range u.Path {
			attrs = be32(attrs, uint32(as))
		}
	}
	if len(nlri4) > 0 {
		attrs = append(attrs, 0x40, attrNextHop, 4)
		attrs = be32(attrs, u.NextHop)
	}
	if len(nlri6) > 0 {
		// MP_REACH_NLRI: AFI(2) SAFI(1) nhlen(1) nexthop(16) reserved(1) NLRI.
		val := []byte{0, 2, 1, 16}
		val = append(val, make([]byte, 16)...) // zero next hop: toy speaker
		val = append(val, 0)
		val = append(val, nlri6...)
		if len(val) > 255 {
			attrs = append(attrs, 0x90, attrMPReachNLRI) // optional + extended length
			attrs = be16(attrs, uint16(len(val)))
		} else {
			attrs = append(attrs, 0x80, attrMPReachNLRI, byte(len(val)))
		}
		attrs = append(attrs, val...)
	}
	body := be16(nil, uint16(len(withdrawn)))
	body = append(body, withdrawn...)
	body = be16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	return append(body, nlri4...), nil
}

func appendNLRI(b []byte, p prefix.Prefix) []byte {
	b = append(b, p.Len())
	return append(b, prefixBytes(p)...)
}

// ReadMessage reads and parses one message.
func ReadMessage(r io.Reader) (Message, error) {
	hdr := make([]byte, msgHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	for i := 0; i < markerLen; i++ {
		if hdr[i] != 0xff {
			return nil, errors.New("bgp: bad marker")
		}
	}
	total := int(binary.BigEndian.Uint16(hdr[markerLen:]))
	typ := hdr[markerLen+2]
	if total < msgHeaderLen || total > maxMessageLen {
		return nil, fmt.Errorf("bgp: bad message length %d", total)
	}
	body := make([]byte, total-msgHeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	switch typ {
	case MsgOpen:
		return parseOpen(body)
	case MsgUpdate:
		return parseUpdate(body)
	case MsgNotification:
		if len(body) < 2 {
			return nil, errors.New("bgp: short NOTIFICATION")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, errors.New("bgp: KEEPALIVE with body")
		}
		return &Keepalive{}, nil
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", typ)
	}
}

func parseOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, errors.New("bgp: short OPEN")
	}
	if body[0] != 4 {
		return nil, fmt.Errorf("bgp: version %d, want 4", body[0])
	}
	o := &Open{
		AS:       rpki.ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    binary.BigEndian.Uint32(body[5:9]),
	}
	optLen := int(body[9])
	opt := body[10:]
	if len(opt) != optLen {
		return nil, errors.New("bgp: OPEN optional parameter length mismatch")
	}
	for len(opt) >= 2 {
		ptype, plen := opt[0], int(opt[1])
		if len(opt) < 2+plen {
			return nil, errors.New("bgp: truncated OPEN parameter")
		}
		val := opt[2 : 2+plen]
		opt = opt[2+plen:]
		if ptype != 2 {
			continue
		}
		for len(val) >= 2 {
			code, clen := val[0], int(val[1])
			if len(val) < 2+clen {
				return nil, errors.New("bgp: truncated capability")
			}
			if code == capFourOctetAS && clen == 4 {
				o.AS = rpki.ASN(binary.BigEndian.Uint32(val[2:6]))
			}
			val = val[2+clen:]
		}
	}
	return o, nil
}

func parseUpdate(body []byte) (*Update, error) {
	u := &Update{}
	if len(body) < 2 {
		return nil, errors.New("bgp: short UPDATE")
	}
	wlen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+wlen+2 {
		return nil, errors.New("bgp: UPDATE withdrawn length overflow")
	}
	var err error
	if u.Withdrawn, err = parseNLRIList(body[2:2+wlen], prefix.IPv4); err != nil {
		return nil, err
	}
	rest := body[2+wlen:]
	alen := int(binary.BigEndian.Uint16(rest))
	if len(rest) < 2+alen {
		return nil, errors.New("bgp: UPDATE attribute length overflow")
	}
	attrs := rest[2 : 2+alen]
	if u.NLRI, err = parseNLRIList(rest[2+alen:], prefix.IPv4); err != nil {
		return nil, err
	}
	// Attribute walk: AS_PATH, NEXT_HOP, MP_REACH_NLRI.
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, errors.New("bgp: truncated attribute")
		}
		flags, typ := attrs[0], attrs[1]
		var vlen, off int
		if flags&0x10 != 0 {
			if len(attrs) < 4 {
				return nil, errors.New("bgp: truncated extended attribute")
			}
			vlen, off = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			vlen, off = int(attrs[2]), 3
		}
		if len(attrs) < off+vlen {
			return nil, fmt.Errorf("bgp: attribute %d overruns message", typ)
		}
		val := attrs[off : off+vlen]
		attrs = attrs[off+vlen:]
		switch typ {
		case attrASPath:
			path, err := parseASPathSegments(val)
			if err != nil {
				return nil, err
			}
			u.Path = path
		case attrNextHop:
			if len(val) == 4 {
				u.NextHop = binary.BigEndian.Uint32(val)
			}
		case attrMPReachNLRI:
			if len(val) < 5 {
				return nil, errors.New("bgp: short MP_REACH_NLRI")
			}
			afi := binary.BigEndian.Uint16(val[:2])
			nhLen := int(val[3])
			if len(val) < 4+nhLen+1 {
				return nil, errors.New("bgp: MP_REACH_NLRI next hop overflow")
			}
			if afi == 2 {
				v6, err := parseNLRIList(val[4+nhLen+1:], prefix.IPv6)
				if err != nil {
					return nil, err
				}
				u.NLRI = append(u.NLRI, v6...)
			}
		}
	}
	if len(u.NLRI) > 0 && len(u.Path) == 0 {
		return nil, errors.New("bgp: UPDATE announces NLRI without AS_PATH")
	}
	return u, nil
}

func parseNLRIList(b []byte, fam prefix.Family) ([]prefix.Prefix, error) {
	var out []prefix.Prefix
	for len(b) > 0 {
		plen := b[0]
		if plen > fam.MaxLen() {
			return nil, fmt.Errorf("bgp: NLRI length %d exceeds %v max", plen, fam)
		}
		n := int(plen+7) / 8
		if len(b) < 1+n {
			return nil, errors.New("bgp: truncated NLRI")
		}
		p, err := prefixFromBytes(fam, b[1:1+n], plen)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = b[1+n:]
	}
	return out, nil
}
