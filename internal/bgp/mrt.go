package bgp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// MRT TABLE_DUMP_V2 (RFC 6396) — the binary format RouteViews publishes its
// RIB snapshots in (§6's dataset: "the BGP tables of all Route Views
// collectors"). This file implements the subset a route-origin study needs:
// the PEER_INDEX_TABLE and the RIB_IPV4_UNICAST / RIB_IPV6_UNICAST entry
// types, with ORIGIN and (4-byte) AS_PATH attributes.
//
// Every MRT record starts with a common header:
//
//	timestamp(4) type(2) subtype(2) length(4)
//
// followed by `length` bytes of message.

// MRT type and subtype codes (RFC 6396 §4).
const (
	mrtTypeTableDumpV2 uint16 = 13

	mrtPeerIndexTable uint16 = 1
	mrtRIBIPv4Unicast uint16 = 2
	mrtRIBIPv6Unicast uint16 = 4
)

// BGP path attribute codes used in RIB entries.
const (
	attrOrigin byte = 1
	attrASPath byte = 2

	asPathSet      byte = 1
	asPathSequence byte = 2
)

// MRTWriter streams a TABLE_DUMP_V2 RIB dump: one PEER_INDEX_TABLE record
// followed by one RIB record per announcement.
type MRTWriter struct {
	w         *bufio.Writer
	seq       uint32
	timestamp uint32
	started   bool
}

// NewMRTWriter creates a writer stamping records with the given UNIX time.
func NewMRTWriter(w io.Writer, timestamp uint32) *MRTWriter {
	return &MRTWriter{w: bufio.NewWriter(w), timestamp: timestamp}
}

func (m *MRTWriter) record(typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], m.timestamp)
	binary.BigEndian.PutUint16(hdr[4:], typ)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := m.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := m.w.Write(body)
	return err
}

// writePeerIndex emits the mandatory leading PEER_INDEX_TABLE with a single
// synthetic IPv4 peer (AS 0 placeholder — RIB entries carry the real path).
func (m *MRTWriter) writePeerIndex() error {
	name := []byte("repro-collector")
	body := make([]byte, 0, 32+len(name))
	body = append(body, 0x0a, 0x00, 0x00, 0x01) // collector BGP ID 10.0.0.1
	body = be16(body, uint16(len(name)))
	body = append(body, name...)
	body = be16(body, 1)                        // peer count
	body = append(body, 0x02)                   // peer type: IPv4 addr, 4-byte AS
	body = append(body, 0x0a, 0x00, 0x00, 0x02) // peer BGP ID
	body = append(body, 0x0a, 0x00, 0x00, 0x02) // peer IPv4 address
	body = append(body, 0x00, 0x00, 0x00, 0x00) // peer AS 0
	return m.record(mrtTypeTableDumpV2, mrtPeerIndexTable, body)
}

func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32(b []byte, v uint32) []byte { return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }

// WriteAnnouncement appends one RIB entry record.
func (m *MRTWriter) WriteAnnouncement(a Announcement) error {
	if !m.started {
		if err := m.writePeerIndex(); err != nil {
			return err
		}
		m.started = true
	}
	if len(a.Path) == 0 {
		return fmt.Errorf("bgp: MRT announcement for %s has an empty path", a.Prefix)
	}
	if len(a.Path) > 63 {
		// 2+4*len must fit the 1-byte attribute length we emit.
		return fmt.Errorf("bgp: MRT path with %d hops exceeds the writer's 63-hop limit", len(a.Path))
	}
	subtype := mrtRIBIPv4Unicast
	if a.Prefix.Family() == prefix.IPv6 {
		subtype = mrtRIBIPv6Unicast
	}
	// Attributes: ORIGIN (IGP) + AS_PATH (one AS_SEQUENCE segment, 4-byte ASNs).
	attrs := []byte{
		0x40, attrOrigin, 1, 0, // well-known transitive, len 1, IGP
	}
	pathLen := byte(len(a.Path))
	attrs = append(attrs, 0x40, attrASPath, byte(2+4*len(a.Path)), asPathSequence, pathLen)
	for _, as := range a.Path {
		attrs = be32(attrs, uint32(as))
	}

	body := make([]byte, 0, 32+len(attrs))
	body = be32(body, m.seq)
	m.seq++
	body = append(body, a.Prefix.Len())
	body = append(body, prefixBytes(a.Prefix)...)
	body = be16(body, 1) // entry count
	body = be16(body, 0) // peer index
	body = be32(body, m.timestamp)
	body = be16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	return m.record(mrtTypeTableDumpV2, subtype, body)
}

// Flush flushes buffered records. An empty dump still emits the peer index.
func (m *MRTWriter) Flush() error {
	if !m.started {
		if err := m.writePeerIndex(); err != nil {
			return err
		}
		m.started = true
	}
	return m.w.Flush()
}

// prefixBytes returns the RFC 4271 NLRI encoding of the network bits
// (ceil(len/8) bytes).
func prefixBytes(p prefix.Prefix) []byte {
	hi, lo := p.Bits()
	n := (int(p.Len()) + 7) / 8
	out := make([]byte, n)
	for i := 0; i < n && i < 8; i++ {
		out[i] = byte(hi >> (56 - 8*i))
	}
	for i := 8; i < n; i++ {
		out[i] = byte(lo >> (56 - 8*(i-8)))
	}
	return out
}

// WriteMRT writes a whole table as a TABLE_DUMP_V2 dump, synthesizing
// origin-only AS paths.
func WriteMRT(w io.Writer, t *Table, timestamp uint32) error {
	mw := NewMRTWriter(w, timestamp)
	for _, r := range t.Routes() {
		a := Announcement{Prefix: r.Prefix, Path: []rpki.ASN{r.Origin}}
		if err := mw.WriteAnnouncement(a); err != nil {
			return err
		}
	}
	return mw.Flush()
}

// ReadMRT parses a TABLE_DUMP_V2 dump into announcements. Records other
// than RIB_IPV4_UNICAST / RIB_IPV6_UNICAST (including the peer index) are
// skipped; AS_SET-terminated paths are dropped, matching ReadDump's policy.
func ReadMRT(r io.Reader) ([]Announcement, error) {
	br := bufio.NewReader(r)
	var out []Announcement
	for recno := 0; ; recno++ {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("bgp: MRT record %d header: %w", recno, err)
		}
		typ := binary.BigEndian.Uint16(hdr[4:])
		subtype := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if length > 1<<24 {
			return nil, fmt.Errorf("bgp: MRT record %d implausibly long (%d bytes)", recno, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("bgp: MRT record %d body: %w", recno, err)
		}
		if typ != mrtTypeTableDumpV2 {
			continue
		}
		var fam prefix.Family
		switch subtype {
		case mrtRIBIPv4Unicast:
			fam = prefix.IPv4
		case mrtRIBIPv6Unicast:
			fam = prefix.IPv6
		default:
			continue
		}
		anns, err := parseRIBEntry(body, fam)
		if err != nil {
			return nil, fmt.Errorf("bgp: MRT record %d: %w", recno, err)
		}
		out = append(out, anns...)
	}
}

// parseRIBEntry decodes one RIB_IPVx_UNICAST record into announcements (one
// per RIB entry with a usable AS_PATH).
func parseRIBEntry(body []byte, fam prefix.Family) ([]Announcement, error) {
	cur := body
	take := func(n int) ([]byte, error) {
		if len(cur) < n {
			return nil, fmt.Errorf("truncated RIB entry (want %d bytes, have %d)", n, len(cur))
		}
		out := cur[:n]
		cur = cur[n:]
		return out, nil
	}
	if _, err := take(4); err != nil { // sequence number
		return nil, err
	}
	lb, err := take(1)
	if err != nil {
		return nil, err
	}
	plen := lb[0]
	if plen > fam.MaxLen() {
		return nil, fmt.Errorf("prefix length %d exceeds %v maximum", plen, fam)
	}
	pb, err := take(int(plen+7) / 8)
	if err != nil {
		return nil, err
	}
	p, err := prefixFromBytes(fam, pb, plen)
	if err != nil {
		return nil, err
	}
	cb, err := take(2)
	if err != nil {
		return nil, err
	}
	count := binary.BigEndian.Uint16(cb)
	var out []Announcement
	for e := uint16(0); e < count; e++ {
		if _, err := take(2 + 4); err != nil { // peer index + originated time
			return nil, err
		}
		alb, err := take(2)
		if err != nil {
			return nil, err
		}
		attrs, err := take(int(binary.BigEndian.Uint16(alb)))
		if err != nil {
			return nil, err
		}
		path, err := parseASPath(attrs)
		if err != nil {
			return nil, err
		}
		if path != nil {
			out = append(out, Announcement{Prefix: p, Path: path})
		}
	}
	return out, nil
}

// parseASPath walks the BGP attribute block and decodes the AS_PATH
// attribute (4-byte ASNs per RFC 6396 §4.3.4). It returns nil (no error)
// when the path is absent or ends in an AS_SET.
func parseASPath(attrs []byte) ([]rpki.ASN, error) {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, fmt.Errorf("truncated attribute header")
		}
		flags, typ := attrs[0], attrs[1]
		var alen int
		var off int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return nil, fmt.Errorf("truncated extended attribute")
			}
			alen = int(binary.BigEndian.Uint16(attrs[2:4]))
			off = 4
		} else {
			alen = int(attrs[2])
			off = 3
		}
		if len(attrs) < off+alen {
			return nil, fmt.Errorf("attribute %d overruns block", typ)
		}
		val := attrs[off : off+alen]
		attrs = attrs[off+alen:]
		if typ != attrASPath {
			continue
		}
		return parseASPathSegments(val)
	}
	return nil, nil
}

// parseASPathSegments decodes raw AS_PATH segment bytes (4-byte ASNs). It
// returns nil (no error) for AS_SET-bearing or empty paths.
func parseASPathSegments(val []byte) ([]rpki.ASN, error) {
	var path []rpki.ASN
	for len(val) > 0 {
		if len(val) < 2 {
			return nil, fmt.Errorf("truncated AS_PATH segment")
		}
		segType, n := val[0], int(val[1])
		if len(val) < 2+4*n {
			return nil, fmt.Errorf("truncated AS_PATH segment body")
		}
		if segType == asPathSet {
			return nil, nil // AS_SET origin: unusable for ROV, drop
		}
		if segType != asPathSequence {
			return nil, fmt.Errorf("unknown AS_PATH segment type %d", segType)
		}
		for i := 0; i < n; i++ {
			path = append(path, rpki.ASN(binary.BigEndian.Uint32(val[2+4*i:])))
		}
		val = val[2+4*n:]
	}
	if len(path) == 0 {
		return nil, nil
	}
	return path, nil
}

func prefixFromBytes(fam prefix.Family, b []byte, plen uint8) (prefix.Prefix, error) {
	var hi, lo uint64
	for i, by := range b {
		if i < 8 {
			hi |= uint64(by) << (56 - 8*i)
		} else if i < 16 {
			lo |= uint64(by) << (56 - 8*(i-8))
		}
	}
	return prefix.Make(fam, hi, lo, plen)
}

// ReadMRTTable is a convenience wrapper: parse an MRT dump and build the
// (prefix, origin) Table.
func ReadMRTTable(r io.Reader) (*Table, error) {
	anns, err := ReadMRT(r)
	if err != nil {
		return nil, err
	}
	return TableFromAnnouncements(anns), nil
}
