package bgp

import (
	"bytes"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// FuzzReadMessage checks the BGP message parser on arbitrary input and that
// accepted messages survive a re-encode/re-parse cycle.
func FuzzReadMessage(f *testing.F) {
	for _, m := range []Message{
		&Open{AS: 4200000001, HoldTime: 90, BGPID: 7},
		&Update{Path: []rpki.ASN{666, 111}, NLRI: []prefix.Prefix{mp("168.122.0.0/24")}},
		&Update{},
		&Notification{Code: 6, Subcode: 2},
		&Keepalive{},
	} {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return // some parsed values (e.g. >63 hop paths) are not re-encodable
		}
		if _, err := ReadMessage(&buf); err != nil {
			t.Fatalf("re-parse of accepted %T failed: %v", m, err)
		}
	})
}

// FuzzReadMRT checks the MRT parser never panics.
func FuzzReadMRT(f *testing.F) {
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 1)
	_ = mw.WriteAnnouncement(Announcement{Prefix: mp("10.0.0.0/8"), Path: []rpki.ASN{7}})
	_ = mw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		anns, err := ReadMRT(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, a := range anns {
			if !a.Prefix.IsValid() {
				t.Fatal("parser produced an invalid prefix")
			}
			if len(a.Path) == 0 {
				t.Fatal("parser produced an empty path")
			}
		}
	})
}
