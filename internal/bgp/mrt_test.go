package bgp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func TestMRTRoundTrip(t *testing.T) {
	anns := []Announcement{
		{Prefix: mp("168.122.0.0/16"), Path: []rpki.ASN{3356, 111}},
		{Prefix: mp("168.122.225.0/24"), Path: []rpki.ASN{111}},
		{Prefix: mp("87.254.32.0/19"), Path: []rpki.ASN{3356, 6939, 31283}},
		{Prefix: mp("2001:db8::/32"), Path: []rpki.ASN{64496}},
		{Prefix: mp("0.0.0.0/0"), Path: []rpki.ASN{7018}}, // zero-length prefix bytes
	}
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 1496275200) // 6/1/2017
	for _, a := range anns {
		if err := mw.WriteAnnouncement(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(anns) {
		t.Fatalf("parsed %d announcements, want %d", len(got), len(anns))
	}
	for i, a := range anns {
		g := got[i]
		if g.Prefix != a.Prefix || len(g.Path) != len(a.Path) {
			t.Fatalf("announcement %d: %+v vs %+v", i, g, a)
		}
		for j := range a.Path {
			if g.Path[j] != a.Path[j] {
				t.Fatalf("announcement %d path[%d]: %v vs %v", i, j, g.Path[j], a.Path[j])
			}
		}
	}
}

func TestMRTTableRoundTrip(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	if err := WriteMRT(&buf, tbl, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMRTTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("round trip: %d vs %d routes", got.Len(), tbl.Len())
	}
	for i, r := range got.Routes() {
		if r != tbl.Routes()[i] {
			t.Fatalf("route %d: %v vs %v", i, r, tbl.Routes()[i])
		}
	}
}

func TestMRTEmptyDump(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 0)
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Just the peer index: parses to zero announcements.
	if buf.Len() == 0 {
		t.Fatal("peer index record missing")
	}
	got, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d announcements from empty dump", len(got))
	}
}

func TestMRTRejectsEmptyPath(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 0)
	if err := mw.WriteAnnouncement(Announcement{Prefix: mp("10.0.0.0/8")}); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestMRTSkipsUnknownRecords(t *testing.T) {
	// A BGP4MP record (type 16) interleaved in the stream must be skipped.
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 0)
	if err := mw.WriteAnnouncement(Announcement{Prefix: mp("10.0.0.0/8"), Path: []rpki.ASN{7}}); err != nil {
		t.Fatal(err)
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	var alien bytes.Buffer
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint16(hdr[4:], 16) // BGP4MP
	binary.BigEndian.PutUint32(hdr[8:], 3)
	alien.Write(hdr)
	alien.Write([]byte{1, 2, 3})
	alien.Write(buf.Bytes())

	got, err := ReadMRT(&alien)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d announcements", len(got))
	}
}

func TestMRTTruncationErrors(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 0)
	if err := mw.WriteAnnouncement(Announcement{Prefix: mp("10.0.0.0/8"), Path: []rpki.ASN{7}}); err != nil {
		t.Fatal(err)
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncating anywhere inside a record must error, not panic or loop.
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := ReadMRT(bytes.NewReader(full[:cut])); err == nil && cut < len(full) {
			// Cuts at exact record boundaries parse cleanly; others must not.
			if cut != 12+recordLen(full) {
				continue
			}
		}
	}
	// Corrupt length field.
	bad := append([]byte(nil), full...)
	binary.BigEndian.PutUint32(bad[8:], 1<<25)
	if _, err := ReadMRT(bytes.NewReader(bad)); err == nil {
		t.Fatal("implausible record length accepted")
	}
}

// recordLen returns the body length of the first record.
func recordLen(b []byte) int { return int(binary.BigEndian.Uint32(b[8:])) }

func TestMRTASSetDropped(t *testing.T) {
	// Hand-craft a RIB record whose AS_PATH is an AS_SET: parser must skip
	// the entry without error (RFC 6811 treats AS_SET origins as unusable).
	attrs := []byte{0x40, attrASPath, 6, asPathSet, 1, 0, 0, 0, 99}
	body := []byte{}
	body = be32(body, 0)    // seq
	body = append(body, 8)  // prefix len
	body = append(body, 10) // 10.0.0.0/8
	body = be16(body, 1)    // entry count
	body = be16(body, 0)    // peer index
	body = be32(body, 0)    // originated
	body = be16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	var buf bytes.Buffer
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint16(hdr[4:], mrtTypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], mrtRIBIPv4Unicast)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	buf.Write(hdr)
	buf.Write(body)
	got, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("AS_SET entry parsed: %+v", got)
	}
}

func TestMRTExtendedLengthAttribute(t *testing.T) {
	// AS_PATH with the extended-length flag set (0x50) must parse.
	path := []rpki.ASN{3356, 111}
	attrVal := []byte{asPathSequence, byte(len(path))}
	for _, as := range path {
		attrVal = be32(attrVal, uint32(as))
	}
	attrs := []byte{0x50, attrASPath}
	attrs = be16(attrs, uint16(len(attrVal)))
	attrs = append(attrs, attrVal...)

	body := []byte{}
	body = be32(body, 0)
	body = append(body, 16)
	body = append(body, 168, 122) // 168.122.0.0/16
	body = be16(body, 1)
	body = be16(body, 0)
	body = be32(body, 0)
	body = be16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	var buf bytes.Buffer
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint16(hdr[4:], mrtTypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], mrtRIBIPv4Unicast)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	buf.Write(hdr)
	buf.Write(body)
	got, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Origin() != 111 || got[0].Prefix != mp("168.122.0.0/16") {
		t.Fatalf("got %+v", got)
	}
}

func TestMRTRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var anns []Announcement
	for i := 0; i < 300; i++ {
		fam := prefix.IPv4
		if rng.Intn(4) == 0 {
			fam = prefix.IPv6
		}
		l := uint8(rng.Intn(int(fam.MaxLen()) + 1))
		hi, lo := rng.Uint64(), rng.Uint64()
		if fam == prefix.IPv4 {
			hi &= 0xffffffff00000000
			lo = 0
		}
		p, err := prefix.Make(fam, hi, lo, l)
		if err != nil {
			t.Fatal(err)
		}
		path := make([]rpki.ASN, 1+rng.Intn(5))
		for j := range path {
			path[j] = rpki.ASN(rng.Uint32())
		}
		anns = append(anns, Announcement{Prefix: p, Path: path})
	}
	var buf bytes.Buffer
	mw := NewMRTWriter(&buf, 42)
	for _, a := range anns {
		if err := mw.WriteAnnouncement(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(anns) {
		t.Fatalf("parsed %d, want %d", len(got), len(anns))
	}
	for i := range anns {
		if got[i].Prefix != anns[i].Prefix || got[i].Origin() != anns[i].Origin() {
			t.Fatalf("announcement %d mismatch", i)
		}
	}
}
