// Package bgp models the BGP routing data the paper measures against: the
// set of (IP prefix, origin AS) pairs observed at RouteViews collectors
// (§6), plus AS-path announcements and longest-prefix-match lookup.
//
// The paper's quantities — which ROAs are minimal, how many PDUs a minimal
// RPKI needs, how much maxLength can compress — are all functions of this
// table, so the package exposes exactly the queries those computations need:
// membership, per-origin subtree scans, de-aggregation statistics, and LPM.
package bgp

import (
	"fmt"
	"sort"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// Route is one (prefix, origin AS) pair from a BGP table. It is comparable
// and usable as a map key.
type Route struct {
	Prefix prefix.Prefix
	Origin rpki.ASN
}

// String renders "168.122.0.0/16: AS111", the paper's announcement notation.
func (r Route) String() string { return r.Prefix.String() + ": " + r.Origin.String() }

// Announcement is a BGP update with a full AS path; the origin is the last
// element of the path (the AS closest to the destination).
type Announcement struct {
	Prefix prefix.Prefix
	Path   []rpki.ASN
}

// Origin returns the final AS of the path, or 0 for an empty path.
func (a Announcement) Origin() rpki.ASN {
	if len(a.Path) == 0 {
		return 0
	}
	return a.Path[len(a.Path)-1]
}

// Route projects the announcement to its (prefix, origin) pair.
func (a Announcement) Route() Route { return Route{Prefix: a.Prefix, Origin: a.Origin()} }

// Table is a normalized BGP table: the deduplicated set of (prefix, origin)
// pairs, indexed two ways — by prefix (for coverage and LPM queries) and by
// (origin, prefix) (for per-AS subtree scans). Build one with NewTable; a
// Table is immutable afterwards and safe for concurrent readers.
type Table struct {
	byPrefix []Route // sorted by (prefix, origin)
	byOrigin []Route // sorted by (origin, prefix)
}

// NewTable builds a Table from routes. The input slice is not retained.
func NewTable(routes []Route) *Table {
	bp := append([]Route(nil), routes...)
	sort.Slice(bp, func(i, j int) bool {
		if c := bp[i].Prefix.Compare(bp[j].Prefix); c != 0 {
			return c < 0
		}
		return bp[i].Origin < bp[j].Origin
	})
	// Dedup.
	out := bp[:0]
	for i, r := range bp {
		if i == 0 || r != bp[i-1] {
			out = append(out, r)
		}
	}
	bp = out
	bo := append([]Route(nil), bp...)
	sort.Slice(bo, func(i, j int) bool {
		if bo[i].Origin != bo[j].Origin {
			return bo[i].Origin < bo[j].Origin
		}
		return bo[i].Prefix.Compare(bo[j].Prefix) < 0
	})
	return &Table{byPrefix: bp, byOrigin: bo}
}

// TableFromAnnouncements projects announcements to routes and builds a Table.
func TableFromAnnouncements(anns []Announcement) *Table {
	routes := make([]Route, 0, len(anns))
	for _, a := range anns {
		if len(a.Path) == 0 {
			continue
		}
		routes = append(routes, a.Route())
	}
	return NewTable(routes)
}

// Len returns the number of distinct (prefix, origin) pairs — the paper's
// "777K advertised (IP prefix, AS) pairs" quantity.
func (t *Table) Len() int { return len(t.byPrefix) }

// Routes returns all pairs in (prefix, origin) order. Callers must not
// modify the returned slice.
func (t *Table) Routes() []Route { return t.byPrefix }

// Contains reports whether the exact (prefix, origin) pair is announced.
func (t *Table) Contains(p prefix.Prefix, origin rpki.ASN) bool {
	i := sort.Search(len(t.byPrefix), func(i int) bool {
		if c := t.byPrefix[i].Prefix.Compare(p); c != 0 {
			return c > 0
		}
		return t.byPrefix[i].Origin >= origin
	})
	return i < len(t.byPrefix) && t.byPrefix[i] == (Route{Prefix: p, Origin: origin})
}

// ContainsPrefix reports whether any origin announces p.
func (t *Table) ContainsPrefix(p prefix.Prefix) bool {
	i := sort.Search(len(t.byPrefix), func(i int) bool {
		return t.byPrefix[i].Prefix.Compare(p) >= 0
	})
	return i < len(t.byPrefix) && t.byPrefix[i].Prefix == p
}

// originRange returns the half-open index range of byOrigin holding routes
// of the given origin.
func (t *Table) originRange(origin rpki.ASN) (int, int) {
	lo := sort.Search(len(t.byOrigin), func(i int) bool { return t.byOrigin[i].Origin >= origin })
	hi := sort.Search(len(t.byOrigin), func(i int) bool { return t.byOrigin[i].Origin > origin })
	return lo, hi
}

// PrefixesOf returns the prefixes announced by origin, in canonical order.
// The returned slice is freshly allocated.
func (t *Table) PrefixesOf(origin rpki.ASN) []prefix.Prefix {
	lo, hi := t.originRange(origin)
	out := make([]prefix.Prefix, 0, hi-lo)
	for _, r := range t.byOrigin[lo:hi] {
		out = append(out, r.Prefix)
	}
	return out
}

// WalkAnnouncedUnder calls fn for every prefix q announced by origin with
// p.Contains(q) and q.Len() <= maxLen, in canonical order. It returns the
// number of prefixes visited. fn may be nil when only the count is needed.
//
// This is the query behind both the minimality test of §4 ("is every
// subprefix of p up to length m announced?") and the minimal-ROA conversion
// of §6 ("identify the IP prefixes made valid by the ROA that are announced").
func (t *Table) WalkAnnouncedUnder(origin rpki.ASN, p prefix.Prefix, maxLen uint8, fn func(prefix.Prefix)) int {
	lo, hi := t.originRange(origin)
	rows := t.byOrigin[lo:hi]
	// Find the first route at or after (p, p.Len()). Canonical prefix order
	// places every descendant of p contiguously from there (ancestors of p
	// share its address but sort earlier by length).
	start := sort.Search(len(rows), func(i int) bool { return rows[i].Prefix.Compare(p) >= 0 })
	n := 0
	for _, r := range rows[start:] {
		if !p.Contains(r.Prefix) {
			break
		}
		if r.Prefix.Len() <= maxLen {
			n++
			if fn != nil {
				fn(r.Prefix)
			}
		}
	}
	return n
}

// CoveredBy reports whether route (q, origin) has some announced... (see rov
// for RPKI semantics). Here it answers the §6 measurement question: is q
// covered by a *different, shorter* announced prefix (any origin)? Used to
// find the "13K additional prefixes" that minimal ROAs must list.
func (t *Table) CoveredBy(q prefix.Prefix) (Route, bool) {
	r, ok := t.longestMatch(q, q.Len()-1)
	return r, ok
}

// LongestMatch returns the longest announced prefix containing q (possibly q
// itself), mimicking a router's longest-prefix-match forwarding decision.
// When several origins announce the winning prefix the lowest origin is
// returned.
func (t *Table) LongestMatch(q prefix.Prefix) (Route, bool) {
	return t.longestMatch(q, q.Len())
}

func (t *Table) longestMatch(q prefix.Prefix, maxLen uint8) (Route, bool) {
	if maxLen > q.Len() || !q.IsValid() {
		return Route{}, false
	}
	for l := int(maxLen); l >= 0; l-- {
		cand, err := truncate(q, uint8(l))
		if err != nil {
			return Route{}, false
		}
		i := sort.Search(len(t.byPrefix), func(i int) bool {
			return t.byPrefix[i].Prefix.Compare(cand) >= 0
		})
		if i < len(t.byPrefix) && t.byPrefix[i].Prefix == cand {
			return t.byPrefix[i], true
		}
	}
	return Route{}, false
}

func truncate(p prefix.Prefix, l uint8) (prefix.Prefix, error) {
	hi, lo := p.Bits()
	return prefix.Make(p.Family(), hi, lo, l)
}

// AnyAnnouncedUnder reports whether some route's prefix is contained in q
// (any origin). Canonical order places all descendants of q contiguously at
// the lower bound for q, so a single probe decides.
func (t *Table) AnyAnnouncedUnder(q prefix.Prefix) bool {
	i := sort.Search(len(t.byPrefix), func(i int) bool {
		return t.byPrefix[i].Prefix.Compare(q) >= 0
	})
	return i < len(t.byPrefix) && q.Contains(t.byPrefix[i].Prefix)
}

// DeaggStats summarizes de-aggregation structure: how often announced
// prefixes sit under a same-origin announced parent, and how often full
// sibling pairs occur. FullSiblingParents bounds what trie compression can
// merge (§7), and SubprefixPairs/Len bounds maxLength's usefulness (§6:
// "most ASes do not send BGP announcements for subprefixes of their
// prefixes").
type DeaggStats struct {
	Routes             int // total (prefix, origin) pairs
	SubprefixRoutes    int // routes strictly contained in a same-origin announced ancestor
	FullSiblingParents int // announced (p, AS) where both children of p are announced by AS
}

// ComputeDeaggStats scans the table once per origin.
func (t *Table) ComputeDeaggStats() DeaggStats {
	st := DeaggStats{Routes: len(t.byPrefix)}
	for lo := 0; lo < len(t.byOrigin); {
		origin := t.byOrigin[lo].Origin
		hi := lo
		for hi < len(t.byOrigin) && t.byOrigin[hi].Origin == origin {
			hi++
		}
		rows := t.byOrigin[lo:hi]
		// Membership set for this origin.
		member := make(map[prefix.Prefix]struct{}, len(rows))
		for _, r := range rows {
			member[r.Prefix] = struct{}{}
		}
		for _, r := range rows {
			p := r.Prefix
			// Subprefix of an announced same-origin ancestor?
			for q := p; q.Len() > 0; {
				q = q.Parent()
				if _, ok := member[q]; ok {
					st.SubprefixRoutes++
					break
				}
			}
			if p.Len() < p.MaxLen() {
				if _, ok := member[p.Child(0)]; ok {
					if _, ok := member[p.Child(1)]; ok {
						st.FullSiblingParents++
					}
				}
			}
		}
		lo = hi
	}
	return st
}

// Origins returns the distinct origin ASes in ascending order.
func (t *Table) Origins() []rpki.ASN {
	var out []rpki.ASN
	for i, r := range t.byOrigin {
		if i == 0 || r.Origin != t.byOrigin[i-1].Origin {
			out = append(out, r.Origin)
		}
	}
	return out
}

// Validate sanity-checks the table invariants; used by tests.
func (t *Table) Validate() error {
	if len(t.byPrefix) != len(t.byOrigin) {
		return fmt.Errorf("bgp: index size mismatch %d vs %d", len(t.byPrefix), len(t.byOrigin))
	}
	for i := 1; i < len(t.byPrefix); i++ {
		a, b := t.byPrefix[i-1], t.byPrefix[i]
		if c := a.Prefix.Compare(b.Prefix); c > 0 || (c == 0 && a.Origin >= b.Origin) {
			return fmt.Errorf("bgp: byPrefix out of order at %d", i)
		}
	}
	return nil
}
