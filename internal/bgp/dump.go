package bgp

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// The dump format is a RouteViews-style plain-text RIB: one announcement per
// line, "prefix AS-path", where the path is a space-separated AS sequence
// whose last element is the origin (e.g. "168.122.0.0/16 3356 111"). Lines
// may also carry just an origin ("168.122.0.0/16 111"). '#' comments and
// blank lines are ignored. AS_SET segments ("{1,2}") at the path tail are
// rejected, as they are by ROV (RFC 6811 treats AS_SET-originated routes as
// having no usable origin).

// ReadDump parses announcements from r.
func ReadDump(r io.Reader) ([]Announcement, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Announcement
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := parseDumpLine(line)
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: reading dump: %w", err)
	}
	return out, nil
}

func parseDumpLine(line string) (Announcement, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Announcement{}, fmt.Errorf("want 'prefix path...', got %q", line)
	}
	p, err := prefix.Parse(fields[0])
	if err != nil {
		return Announcement{}, err
	}
	path := make([]rpki.ASN, 0, len(fields)-1)
	for _, f := range fields[1:] {
		if strings.ContainsAny(f, "{}") {
			return Announcement{}, fmt.Errorf("AS_SET segment %q not supported", f)
		}
		as, err := rpki.ParseASN(f)
		if err != nil {
			return Announcement{}, err
		}
		path = append(path, as)
	}
	return Announcement{Prefix: p, Path: path}, nil
}

// ReadTable is a convenience wrapper: parse a dump and build the Table.
func ReadTable(r io.Reader) (*Table, error) {
	anns, err := ReadDump(r)
	if err != nil {
		return nil, err
	}
	return TableFromAnnouncements(anns), nil
}

// WriteTable writes the table as "prefix origin" lines in canonical order.
func WriteTable(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Routes() {
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.Prefix, uint32(r.Origin)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
