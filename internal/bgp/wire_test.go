package bgp

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func wireRoundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", m, err)
	}
	return out
}

func TestOpenRoundTrip(t *testing.T) {
	// 4-octet AS above the 16-bit range must survive via the capability.
	in := &Open{AS: 4200000001, HoldTime: 90, BGPID: 0x0a000001}
	out := wireRoundTrip(t, in).(*Open)
	if out.AS != in.AS || out.HoldTime != in.HoldTime || out.BGPID != in.BGPID {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
	// Small AS too.
	in2 := &Open{AS: 111, HoldTime: 30, BGPID: 1}
	if out := wireRoundTrip(t, in2).(*Open); out.AS != 111 {
		t.Fatalf("small AS: %+v", out)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := &Update{
		Withdrawn: []prefix.Prefix{mp("10.0.0.0/8")},
		Path:      []rpki.ASN{666, 111},
		NextHop:   0x0a000001,
		NLRI:      []prefix.Prefix{mp("168.122.0.0/24"), mp("2001:db8::/32")},
	}
	out := wireRoundTrip(t, in).(*Update)
	if len(out.Withdrawn) != 1 || out.Withdrawn[0] != mp("10.0.0.0/8") {
		t.Fatalf("withdrawn: %v", out.Withdrawn)
	}
	if len(out.Path) != 2 || out.Path[0] != 666 || out.Path[1] != 111 {
		t.Fatalf("path: %v", out.Path)
	}
	if out.NextHop != in.NextHop {
		t.Fatalf("next hop: %x", out.NextHop)
	}
	// IPv4 NLRI first (classic field), then IPv6 (MP_REACH).
	if len(out.NLRI) != 2 || out.NLRI[0] != mp("168.122.0.0/24") || out.NLRI[1] != mp("2001:db8::/32") {
		t.Fatalf("NLRI: %v", out.NLRI)
	}
}

func TestUpdateEndOfRIB(t *testing.T) {
	out := wireRoundTrip(t, &Update{}).(*Update)
	if len(out.NLRI) != 0 || len(out.Withdrawn) != 0 {
		t.Fatalf("end-of-RIB: %+v", out)
	}
}

func TestNotificationKeepaliveRoundTrip(t *testing.T) {
	n := wireRoundTrip(t, &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}).(*Notification)
	if n.Code != 6 || n.Subcode != 2 || string(n.Data) != "bye" {
		t.Fatalf("notification: %+v", n)
	}
	if _, ok := wireRoundTrip(t, &Keepalive{}).(*Keepalive); !ok {
		t.Fatal("keepalive type lost")
	}
}

func TestUpdateMarshalErrors(t *testing.T) {
	if err := WriteMessage(bytes.NewBuffer(nil), &Update{NLRI: []prefix.Prefix{mp("10.0.0.0/8")}}); err == nil {
		t.Error("announcement without path accepted")
	}
	if err := WriteMessage(bytes.NewBuffer(nil), &Update{
		Withdrawn: []prefix.Prefix{mp("2001:db8::/32")}}); err == nil {
		t.Error("IPv6 classic withdrawal accepted")
	}
	long := make([]rpki.ASN, 64)
	if err := WriteMessage(bytes.NewBuffer(nil), &Update{
		Path: long, NLRI: []prefix.Prefix{mp("10.0.0.0/8")}}); err == nil {
		t.Error("64-hop path accepted")
	}
}

func TestReadMessageErrors(t *testing.T) {
	// Bad marker.
	raw := make([]byte, msgHeaderLen)
	raw[markerLen] = 0
	raw[markerLen+1] = msgHeaderLen
	raw[markerLen+2] = MsgKeepalive
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Error("bad marker accepted")
	}
	// Bad length.
	for i := 0; i < markerLen; i++ {
		raw[i] = 0xff
	}
	raw[markerLen+1] = 5
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Error("short length accepted")
	}
	// Unknown type.
	raw[markerLen+1] = msgHeaderLen
	raw[markerLen+2] = 99
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Error("unknown type accepted")
	}
	// Truncated stream.
	if _, err := ReadMessage(bytes.NewReader(raw[:5])); err == nil {
		t.Error("truncated header accepted")
	}
}

// tcpPair returns two connected TCP loopback endpoints. Speakers must not
// share an unbuffered net.Pipe: both sides write OPEN before reading, which
// deadlocks without transport buffering.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() {
		client.Close()
		r.c.Close()
	})
	return client, r.c
}

// TestSpeakerSessionWithROV runs the paper's attack over a real BGP session:
// a hijacker speaker announces both a legitimate-looking forged-origin
// subprefix and a plainly invalid subprefix to a validating peer.
func TestSpeakerSessionWithROV(t *testing.T) {
	client, server := tcpPair(t)
	attacker := NewSpeaker(client, 666, 0x0a000002)
	victimSide := NewSpeaker(server, 64500, 0x0a000001)

	// The validating peer has the §4 non-minimal ROA for AS 111. The RFC 6811
	// check is inlined (one VRP) rather than importing rov, whose arena index
	// now builds on internal/core — which imports this package for its BGP
	// table model, so the test would close an import cycle.
	vrp := rpki.VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111}
	accept := func(a Announcement) bool {
		invalid := vrp.Covers(a.Prefix) && !vrp.Matches(a.Prefix, a.Origin())
		return !invalid
	}

	done := make(chan error, 2)
	go func() {
		_, err := victimSide.Handshake()
		done <- err
	}()
	if _, err := attacker.Handshake(); err != nil {
		t.Fatalf("attacker handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("peer handshake: %v", err)
	}
	if attacker.PeerAS() != 64500 || victimSide.PeerAS() != 666 {
		t.Fatalf("peer ASes: %v / %v", attacker.PeerAS(), victimSide.PeerAS())
	}

	loopDone := make(chan error, 1)
	go func() { loopDone <- victimSide.ReadLoop(accept) }()

	// 1. Forged-origin subprefix: path [666, 111], prefix authorized by the
	// non-minimal ROA -> accepted despite validation.
	if err := attacker.Announce(Announcement{
		Prefix: mp("168.122.0.0/24"), Path: []rpki.ASN{666, 111}}); err != nil {
		t.Fatal(err)
	}
	// 2. Naked subprefix hijack with the attacker's own origin -> Invalid,
	// dropped by the accept hook.
	if err := attacker.Announce(Announcement{
		Prefix: mp("168.122.1.0/24"), Path: []rpki.ASN{666}}); err != nil {
		t.Fatal(err)
	}
	// 3. Unrelated prefix (NotFound) -> accepted.
	if err := attacker.Announce(Announcement{
		Prefix: mp("198.51.100.0/24"), Path: []rpki.ASN{666}}); err != nil {
		t.Fatal(err)
	}

	waitRIB := func(want int) {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if len(victimSide.RIBIn()) == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("RIB-in = %v, want %d routes", victimSide.RIBIn(), want)
	}
	waitRIB(2)
	tbl := victimSide.RIBInTable()
	if !tbl.Contains(mp("168.122.0.0/24"), 111) {
		t.Error("forged-origin route missing: the attack should have succeeded")
	}
	if tbl.ContainsPrefix(mp("168.122.1.0/24")) {
		t.Error("Invalid route accepted")
	}

	// Withdrawal removes the forged route.
	if err := attacker.Withdraw(mp("168.122.0.0/24")); err != nil {
		t.Fatal(err)
	}
	waitRIB(1)

	attacker.Close()
	victimSide.Close()
	if err := <-loopDone; err != nil {
		t.Fatalf("read loop: %v", err)
	}
}

func TestSpeakerNotification(t *testing.T) {
	client, server := tcpPair(t)
	a := NewSpeaker(client, 1, 1)
	b := NewSpeaker(server, 2, 2)
	done := make(chan error, 1)
	go func() {
		_, err := b.Handshake()
		done <- err
	}()
	if _, err := a.Handshake(); err != nil {
		t.Fatal(err)
	}
	<-done
	loopDone := make(chan error, 1)
	go func() { loopDone <- b.ReadLoop(nil) }()
	go a.Notify(6, 4) // administrative reset; async because net.Pipe is unbuffered
	err := <-loopDone
	n, ok := err.(*Notification)
	if !ok || n.Code != 6 || n.Subcode != 4 {
		t.Fatalf("read loop returned %v, want the notification", err)
	}
	b.Close()
}

func TestSpeakerAnnounceTable(t *testing.T) {
	client, server := tcpPair(t)
	a := NewSpeaker(client, 64496, 1)
	b := NewSpeaker(server, 64497, 2)
	done := make(chan error, 1)
	go func() {
		_, err := b.Handshake()
		done <- err
	}()
	if _, err := a.Handshake(); err != nil {
		t.Fatal(err)
	}
	<-done
	go b.ReadLoop(nil)
	tbl := sampleTable()
	if err := a.AnnounceTable(tbl); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if b.RIBInTable().Len() == tbl.Len() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := b.RIBInTable()
	if got.Len() != tbl.Len() {
		t.Fatalf("RIB-in %d routes, want %d", got.Len(), tbl.Len())
	}
	// Paths were prepended with the announcer's AS; origins preserved.
	for _, r := range tbl.Routes() {
		if !got.Contains(r.Prefix, r.Origin) {
			t.Errorf("missing %v", r)
		}
	}
	a.Close()
	b.Close()
}
