package bgp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func sampleTable() *Table {
	return NewTable([]Route{
		{Prefix: mp("168.122.0.0/16"), Origin: 111},
		{Prefix: mp("168.122.225.0/24"), Origin: 111},
		{Prefix: mp("87.254.32.0/19"), Origin: 31283},
		{Prefix: mp("87.254.32.0/20"), Origin: 31283},
		{Prefix: mp("87.254.48.0/20"), Origin: 31283},
		{Prefix: mp("87.254.32.0/21"), Origin: 31283},
		{Prefix: mp("10.0.0.0/8"), Origin: 7},
		{Prefix: mp("2001:db8::/32"), Origin: 111},
	})
}

func TestTableBasics(t *testing.T) {
	tbl := sampleTable()
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 8 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if !tbl.Contains(mp("168.122.0.0/16"), 111) {
		t.Error("missing route")
	}
	if tbl.Contains(mp("168.122.0.0/16"), 112) {
		t.Error("wrong-origin route reported present")
	}
	if !tbl.ContainsPrefix(mp("10.0.0.0/8")) || tbl.ContainsPrefix(mp("10.0.0.0/9")) {
		t.Error("ContainsPrefix wrong")
	}
	// Duplicate insertion dedups.
	dup := NewTable(append(tbl.Routes(), Route{Prefix: mp("10.0.0.0/8"), Origin: 7}))
	if dup.Len() != tbl.Len() {
		t.Error("dedup failed")
	}
}

func TestAnnouncementOrigin(t *testing.T) {
	a := Announcement{Prefix: mp("168.122.0.0/16"), Path: []rpki.ASN{3356, 111}}
	if a.Origin() != 111 {
		t.Errorf("Origin = %v", a.Origin())
	}
	if (Announcement{}).Origin() != 0 {
		t.Error("empty path origin must be 0")
	}
	if a.Route() != (Route{Prefix: mp("168.122.0.0/16"), Origin: 111}) {
		t.Error("Route projection wrong")
	}
}

func TestPrefixesOf(t *testing.T) {
	tbl := sampleTable()
	ps := tbl.PrefixesOf(31283)
	if len(ps) != 4 {
		t.Fatalf("PrefixesOf(31283) = %v", ps)
	}
	if len(tbl.PrefixesOf(9999)) != 0 {
		t.Error("unknown origin should have no prefixes")
	}
	// AS 111 announces both an IPv4 and an IPv6 prefix.
	if len(tbl.PrefixesOf(111)) != 3 {
		t.Errorf("PrefixesOf(111) = %v", tbl.PrefixesOf(111))
	}
}

func TestWalkAnnouncedUnder(t *testing.T) {
	tbl := sampleTable()
	// All of AS 31283's announcements sit under 87.254.32.0/19 up to /21.
	var got []string
	n := tbl.WalkAnnouncedUnder(31283, mp("87.254.32.0/19"), 21, func(p prefix.Prefix) {
		got = append(got, p.String())
	})
	if n != 4 || len(got) != 4 {
		t.Fatalf("walk found %d (%v)", n, got)
	}
	want := []string{"87.254.32.0/19", "87.254.32.0/20", "87.254.32.0/21", "87.254.48.0/20"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("walk[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// maxLen filter.
	if n := tbl.WalkAnnouncedUnder(31283, mp("87.254.32.0/19"), 20, nil); n != 3 {
		t.Errorf("maxLen 20 walk = %d, want 3", n)
	}
	// Origin filter.
	if n := tbl.WalkAnnouncedUnder(111, mp("87.254.32.0/19"), 24, nil); n != 0 {
		t.Errorf("wrong-origin walk = %d, want 0", n)
	}
	// Subtree restriction: only the left /20's subtree.
	if n := tbl.WalkAnnouncedUnder(31283, mp("87.254.32.0/20"), 21, nil); n != 2 {
		t.Errorf("/20 subtree walk = %d, want 2", n)
	}
}

func TestWalkAnnouncedUnderBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var routes []Route
	for i := 0; i < 500; i++ {
		l := uint8(8 + rng.Intn(17))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		routes = append(routes, Route{Prefix: p, Origin: rpki.ASN(rng.Intn(5))})
	}
	tbl := NewTable(routes)
	for trial := 0; trial < 200; trial++ {
		l := uint8(6 + rng.Intn(12))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		origin := rpki.ASN(rng.Intn(5))
		maxLen := l + uint8(rng.Intn(int(32-l)+1))
		want := 0
		for _, r := range tbl.Routes() {
			if r.Origin == origin && p.Contains(r.Prefix) && r.Prefix.Len() <= maxLen {
				want++
			}
		}
		if got := tbl.WalkAnnouncedUnder(origin, p, maxLen, nil); got != want {
			t.Fatalf("WalkAnnouncedUnder(%v, %s, %d) = %d, want %d", origin, p, maxLen, got, want)
		}
	}
}

func TestLongestMatch(t *testing.T) {
	tbl := sampleTable()
	cases := []struct {
		q    string
		want string
		ok   bool
	}{
		{"168.122.225.0/24", "168.122.225.0/24", true}, // exact
		{"168.122.225.128/25", "168.122.225.0/24", true},
		{"168.122.0.0/24", "168.122.0.0/16", true}, // the forged-origin target: only the /16 exists
		{"168.122.0.0/16", "168.122.0.0/16", true},
		{"87.254.40.0/21", "87.254.32.0/20", true}, // sibling hole: covered by the /20, not announced itself
		{"87.254.48.0/21", "87.254.48.0/20", true},
		{"87.254.63.255/32", "87.254.48.0/20", true},
		{"9.9.9.9/32", "", false},
		{"2001:db8::1/128", "2001:db8::/32", true},
	}
	for _, c := range cases {
		r, ok := tbl.LongestMatch(mp(c.q))
		if ok != c.ok {
			t.Errorf("LongestMatch(%s) ok = %v, want %v", c.q, ok, c.ok)
			continue
		}
		if ok && r.Prefix.String() != c.want {
			t.Errorf("LongestMatch(%s) = %s, want %s", c.q, r.Prefix, c.want)
		}
	}
}

func TestCoveredBy(t *testing.T) {
	tbl := sampleTable()
	// 168.122.0.0/24 is covered by the announced /16 (this is what makes the
	// forged-origin subprefix hijack possible).
	r, ok := tbl.CoveredBy(mp("168.122.0.0/24"))
	if !ok || r.Prefix != mp("168.122.0.0/16") {
		t.Errorf("CoveredBy = %v, %v", r, ok)
	}
	// The /16 itself has no shorter covering announcement.
	if _, ok := tbl.CoveredBy(mp("168.122.0.0/16")); ok {
		t.Error("/16 should not be covered")
	}
	// /0 cannot be covered by anything shorter.
	if _, ok := tbl.CoveredBy(mp("0.0.0.0/0")); ok {
		t.Error("/0 covered?")
	}
}

func TestDeaggStats(t *testing.T) {
	tbl := sampleTable()
	st := tbl.ComputeDeaggStats()
	if st.Routes != 8 {
		t.Errorf("Routes = %d", st.Routes)
	}
	// Subprefix routes: 168.122.225.0/24 (under /16), 87.254.32.0/20,
	// 87.254.48.0/20 (under /19), 87.254.32.0/21 (under /20) = 4.
	if st.SubprefixRoutes != 4 {
		t.Errorf("SubprefixRoutes = %d, want 4", st.SubprefixRoutes)
	}
	// Full sibling parents: 87.254.32.0/19 has both /20 children announced.
	if st.FullSiblingParents != 1 {
		t.Errorf("FullSiblingParents = %d, want 1", st.FullSiblingParents)
	}
}

func TestOrigins(t *testing.T) {
	tbl := sampleTable()
	os := tbl.Origins()
	if len(os) != 3 || os[0] != 7 || os[1] != 111 || os[2] != 31283 {
		t.Errorf("Origins = %v", os)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	in := `# RouteViews-style dump
168.122.0.0/16 3356 111
168.122.225.0/24 111
87.254.32.0/19 3356 6939 31283
2001:db8::/32 111
`
	anns, err := ReadDump(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 4 {
		t.Fatalf("parsed %d announcements", len(anns))
	}
	if anns[0].Origin() != 111 || len(anns[0].Path) != 2 {
		t.Errorf("announcement 0 = %+v", anns[0])
	}
	tbl := TableFromAnnouncements(anns)
	var buf bytes.Buffer
	if err := WriteTable(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	tbl2, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != tbl.Len() {
		t.Errorf("round trip: %d vs %d routes", tbl2.Len(), tbl.Len())
	}
	for i, r := range tbl2.Routes() {
		if r != tbl.Routes()[i] {
			t.Errorf("route %d: %v vs %v", i, r, tbl.Routes()[i])
		}
	}
}

func TestDumpErrors(t *testing.T) {
	for _, bad := range []string{
		"168.122.0.0/16\n",        // no path
		"notaprefix 111\n",        // bad prefix
		"10.0.0.0/8 {1,2}\n",      // AS_SET
		"10.0.0.0/8 3356 bogus\n", // bad ASN
		"10.0.0.0/33 111\n",       // bad length
	} {
		if _, err := ReadDump(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadDump(%q) succeeded", bad)
		}
	}
	// Announcements with empty paths are skipped by TableFromAnnouncements.
	tbl := TableFromAnnouncements([]Announcement{{Prefix: mp("10.0.0.0/8")}})
	if tbl.Len() != 0 {
		t.Error("empty-path announcement should be dropped")
	}
}

func TestLongestMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var routes []Route
	for i := 0; i < 300; i++ {
		l := uint8(4 + rng.Intn(25))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		routes = append(routes, Route{Prefix: p, Origin: rpki.ASN(rng.Intn(8))})
	}
	tbl := NewTable(routes)
	for trial := 0; trial < 300; trial++ {
		l := uint8(rng.Intn(33))
		q, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		var want prefix.Prefix
		found := false
		for _, r := range tbl.Routes() {
			if r.Prefix.Contains(q) && (!found || r.Prefix.Len() > want.Len()) {
				want, found = r.Prefix, true
			}
		}
		got, ok := tbl.LongestMatch(q)
		if ok != found || (ok && got.Prefix != want) {
			t.Fatalf("LongestMatch(%s) = %v,%v want %v,%v", q, got.Prefix, ok, want, found)
		}
	}
}
