package rpkix

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// Authority is a certification authority in the simplified RPKI hierarchy:
// the trust anchor (self-signed, all resources) or a subordinate CA (an RIR
// or an address holder). Authorities issue subordinate CAs and per-ROA EE
// certificates, enforcing the RFC 6487 resource-containment invariant at
// issuance time; ValidateROA re-checks it at relying-party time.
type Authority struct {
	Cert      *x509.Certificate
	Key       *ecdsa.PrivateKey
	Resources []prefix.Prefix

	serial int64
}

// NewTrustAnchor creates a self-signed trust anchor holding all address
// space.
func NewTrustAnchor(name string) (*Authority, error) {
	return newAuthority(nil, name, AllResources())
}

// NewChild issues a subordinate CA certificate for the given resources,
// which must be contained in the parent's.
func (a *Authority) NewChild(name string, resources []prefix.Prefix) (*Authority, error) {
	if !ResourcesContain(a.Resources, resources) {
		return nil, fmt.Errorf("rpkix: child resources exceed %q's holdings", a.Cert.Subject.CommonName)
	}
	return newAuthority(a, name, resources)
}

func newAuthority(parent *Authority, name string, resources []prefix.Prefix) (*Authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	ext, err := EncodeIPResources(resources)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		ExtraExtensions:       []pkix.Extension{ext},
		SubjectKeyId:          keyID(&key.PublicKey),
	}
	signerCert, signerKey := tmpl, key // self-signed trust anchor
	if parent != nil {
		tmpl.SerialNumber = big.NewInt(parent.nextSerial())
		signerCert, signerKey = parent.Cert, parent.Key
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, signerCert, &key.PublicKey, signerKey)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Authority{Cert: cert, Key: key, Resources: resources}, nil
}

func (a *Authority) nextSerial() int64 {
	a.serial++
	return a.serial + 1
}

// keyID derives a SubjectKeyIdentifier from the public key, per RFC 7093
// method 1 (SHA-256 truncated).
func keyID(pub *ecdsa.PublicKey) []byte {
	h := sha256.Sum256(elliptic.Marshal(pub.Curve, pub.X, pub.Y))
	return h[:20]
}

// IssueROA creates the complete signed object for a ROA: a one-off EE
// certificate holding exactly the ROA's prefixes, and the CMS envelope over
// the RFC 6482 eContent. It returns the DER object.
func (a *Authority) IssueROA(r rpki.ROA) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	need := make([]prefix.Prefix, 0, len(r.Prefixes))
	for _, rp := range r.Prefixes {
		need = append(need, rp.Prefix)
	}
	if !ResourcesContain(a.Resources, need) {
		return nil, fmt.Errorf("rpkix: ROA for %s exceeds issuer resources", r.AS)
	}
	eeKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	ext, err := EncodeIPResources(need)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:    big.NewInt(a.nextSerial()),
		Subject:         pkix.Name{CommonName: fmt.Sprintf("ROA-EE-%s", r.AS)},
		NotBefore:       time.Now().Add(-time.Hour),
		NotAfter:        time.Now().Add(18 * 30 * 24 * time.Hour),
		KeyUsage:        x509.KeyUsageDigitalSignature,
		ExtraExtensions: []pkix.Extension{ext},
		SubjectKeyId:    keyID(&eeKey.PublicKey),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.Cert, &eeKey.PublicKey, a.Key)
	if err != nil {
		return nil, err
	}
	eeCert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	eContent, err := EncodeROAContent(r)
	if err != nil {
		return nil, err
	}
	return SignROA(eContent, eeCert, eeKey)
}

// ValidateROA performs relying-party validation of a DER signed object
// against the chain ta → intermediates → EE: CMS parse, signature check,
// X.509 chain verification, resource containment at every step, and
// eContent type/consistency checks. On success it returns the ROA.
func ValidateROA(der []byte, ta *x509.Certificate, intermediates []*x509.Certificate) (rpki.ROA, error) {
	obj, err := ParseSignedObject(der)
	if err != nil {
		return rpki.ROA{}, err
	}
	if !obj.EContentType.Equal(oidRouteOriginAttestation) {
		return rpki.ROA{}, fmt.Errorf("rpkix: eContentType %v is not a ROA", obj.EContentType)
	}
	if err := obj.VerifySignature(); err != nil {
		return rpki.ROA{}, err
	}
	roots := x509.NewCertPool()
	acknowledgeResources(ta)
	roots.AddCert(ta)
	pool := x509.NewCertPool()
	for _, c := range intermediates {
		acknowledgeResources(c)
		pool.AddCert(c)
	}
	acknowledgeResources(obj.EECert)
	chains, err := obj.EECert.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: pool,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	})
	if err != nil {
		return rpki.ROA{}, fmt.Errorf("rpkix: chain validation: %w", err)
	}
	r, err := DecodeROAContent(obj.EContent)
	if err != nil {
		return rpki.ROA{}, err
	}
	// Resource containment along the (first) chain: EE covers the ROA, each
	// issuer covers its subject.
	chain := chains[0]
	roaPrefixes := make([]prefix.Prefix, 0, len(r.Prefixes))
	for _, rp := range r.Prefixes {
		roaPrefixes = append(roaPrefixes, rp.Prefix)
	}
	need := roaPrefixes
	for _, cert := range chain {
		res, err := certResources(cert)
		if err != nil {
			return rpki.ROA{}, err
		}
		if !ResourcesContain(res, need) {
			return rpki.ROA{}, fmt.Errorf("rpkix: %q does not hold the resources it certifies", cert.Subject.CommonName)
		}
		need = res
	}
	return r, nil
}

// acknowledgeResources removes id-pe-ipAddrBlocks from a certificate's
// unhandled-critical-extension list: the package validates resource
// containment itself, so crypto/x509's chain verification must not reject
// the (correctly critical, RFC 6487 §4.8.10) extension as unknown.
func acknowledgeResources(cert *x509.Certificate) {
	kept := cert.UnhandledCriticalExtensions[:0]
	for _, id := range cert.UnhandledCriticalExtensions {
		if !id.Equal(oidIPAddrBlocks) {
			kept = append(kept, id)
		}
	}
	cert.UnhandledCriticalExtensions = kept
}

// certResources extracts the RFC 3779 prefixes of a certificate.
func certResources(cert *x509.Certificate) ([]prefix.Prefix, error) {
	for _, ext := range cert.Extensions {
		if ext.Id.Equal(oidIPAddrBlocks) {
			return DecodeIPResources(ext)
		}
	}
	return nil, fmt.Errorf("rpkix: %q has no IP resources extension", cert.Subject.CommonName)
}
