package rpkix

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// Repository layout on disk, mirroring an RPKI publication point:
//
//	<dir>/ta.cer           trust anchor certificate (PEM)
//	<dir>/<name>.cer       CA certificates (PEM)
//	<dir>/<name>.roa       signed ROA objects (DER)
//
// WriteRepository publishes, ScanROAs plays the relying party: validate
// everything, collect VRPs — the scan_roas role of §7.1.

// Repository is an in-memory publication point.
type Repository struct {
	TA      *Authority
	CAs     []*Authority
	ROAs    [][]byte // DER signed objects
	Revoked []int64  // revoked EE certificate serials, published in the CRL
}

// timeNow is swappable in tests.
var timeNow = time.Now

// NewRepository creates a publication point with a fresh trust anchor.
func NewRepository(taName string) (*Repository, error) {
	ta, err := NewTrustAnchor(taName)
	if err != nil {
		return nil, err
	}
	return &Repository{TA: ta}, nil
}

// AddCA issues a subordinate CA under the trust anchor.
func (r *Repository) AddCA(name string, resources []string) (*Authority, error) {
	ps, err := parsePrefixes(resources)
	if err != nil {
		return nil, err
	}
	ca, err := r.TA.NewChild(name, ps)
	if err != nil {
		return nil, err
	}
	r.CAs = append(r.CAs, ca)
	return ca, nil
}

// PublishROA signs the ROA under the given CA and stores the object.
func (r *Repository) PublishROA(ca *Authority, roa rpki.ROA) error {
	der, err := ca.IssueROA(roa)
	if err != nil {
		return err
	}
	r.ROAs = append(r.ROAs, der)
	return nil
}

// Write serializes the repository to a directory, including a signed
// manifest (manifest.mft) inventorying every published object and a CRL
// (ca.crl) from the first CA (or the TA when no CA exists).
func (r *Repository) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writePEMCert(filepath.Join(dir, "ta.cer"), r.TA.Cert); err != nil {
		return err
	}
	for i, ca := range r.CAs {
		if err := writePEMCert(filepath.Join(dir, fmt.Sprintf("ca%04d.cer", i)), ca.Cert); err != nil {
			return err
		}
	}
	mft := Manifest{
		Number:     1,
		ThisUpdate: timeNow().Add(-time.Hour),
		NextUpdate: timeNow().Add(30 * 24 * time.Hour),
		Files:      make(map[string][32]byte, len(r.ROAs)),
	}
	for i, der := range r.ROAs {
		name := fmt.Sprintf("roa%05d.roa", i)
		if err := os.WriteFile(filepath.Join(dir, name), der, 0o644); err != nil {
			return err
		}
		mft.Files[name] = sha256.Sum256(der)
	}
	signer := r.TA
	if len(r.CAs) > 0 {
		signer = r.CAs[0]
	}
	mftDER, err := signer.IssueManifest(mft)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.mft"), mftDER, 0o644); err != nil {
		return err
	}
	crlDER, err := signer.IssueCRL(r.Revoked, 1)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "ca.crl"), crlDER, 0o644)
}

func writePEMCert(path string, cert *x509.Certificate) error {
	return os.WriteFile(path, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw}), 0o644)
}

func readPEMCert(path string) (*x509.Certificate, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(raw)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, fmt.Errorf("rpkix: %s is not a PEM certificate", path)
	}
	return x509.ParseCertificate(block.Bytes)
}

// ScanResult reports a repository scan.
type ScanResult struct {
	ROAs     []rpki.ROA
	VRPs     *rpki.Set
	Rejected map[string]error // object file -> why it failed validation
	// Manifest is the validated inventory, when manifest.mft exists.
	Manifest *Manifest
	// MissingFromDisk lists manifest entries whose file is absent or whose
	// hash mismatches (possible deletion/substitution attack).
	MissingFromDisk []string
	// NotInManifest lists .roa files on disk the manifest does not vouch for.
	NotInManifest []string
}

// ScanROAs validates every .roa object in dir against the ta.cer trust
// anchor and all .cer intermediates, returning the validated ROAs and their
// VRP expansion. Invalid objects are recorded in Rejected, not fatal — a
// relying party must tolerate garbage in a publication point. When a
// manifest is present it is validated and cross-checked against the on-disk
// objects; when a CRL is present, ROAs whose EE certificate is revoked are
// rejected.
func ScanROAs(dir string) (*ScanResult, error) {
	ta, err := readPEMCert(filepath.Join(dir, "ta.cer"))
	if err != nil {
		return nil, fmt.Errorf("rpkix: loading trust anchor: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var certs []*x509.Certificate
	var roaFiles []string
	var mftDER, crlDER []byte
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == "ta.cer":
		case strings.HasSuffix(name, ".cer"):
			c, err := readPEMCert(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("rpkix: loading %s: %w", name, err)
			}
			certs = append(certs, c)
		case strings.HasSuffix(name, ".roa"):
			roaFiles = append(roaFiles, name)
		case strings.HasSuffix(name, ".mft"):
			if mftDER, err = os.ReadFile(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
		case strings.HasSuffix(name, ".crl"):
			if crlDER, err = os.ReadFile(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
		}
	}
	sort.Strings(roaFiles)
	res := &ScanResult{Rejected: make(map[string]error)}
	if mftDER != nil {
		m, err := ValidateManifest(mftDER, ta, certs)
		if err != nil {
			return nil, fmt.Errorf("rpkix: manifest: %w", err)
		}
		res.Manifest = &m
	}
	revoked := func(serial int64) bool { return false }
	if crlDER != nil {
		issuer := ta
		if len(certs) > 0 {
			issuer = certs[0]
		}
		revoked = func(serial int64) bool {
			r, err := CheckCRL(crlDER, issuer, bigInt(serial))
			return err == nil && r
		}
	}
	seen := make(map[string]bool, len(roaFiles))
	for _, name := range roaFiles {
		seen[name] = true
		der, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if res.Manifest != nil {
			want, listed := res.Manifest.Files[name]
			if !listed {
				res.NotInManifest = append(res.NotInManifest, name)
				res.Rejected[name] = fmt.Errorf("rpkix: %s not listed in the manifest", name)
				continue
			}
			if got := sha256.Sum256(der); !bytes.Equal(got[:], want[:]) {
				res.MissingFromDisk = append(res.MissingFromDisk, name)
				res.Rejected[name] = fmt.Errorf("rpkix: %s does not match its manifest hash", name)
				continue
			}
		}
		obj, err := ParseSignedObject(der)
		if err == nil && obj.EECert.SerialNumber.IsInt64() && revoked(obj.EECert.SerialNumber.Int64()) {
			res.Rejected[name] = fmt.Errorf("rpkix: %s EE certificate is revoked", name)
			continue
		}
		roa, err := ValidateROA(der, ta, certs)
		if err != nil {
			res.Rejected[name] = err
			continue
		}
		res.ROAs = append(res.ROAs, roa)
	}
	if res.Manifest != nil {
		for name := range res.Manifest.Files {
			if !seen[name] {
				res.MissingFromDisk = append(res.MissingFromDisk, name)
			}
		}
		sort.Strings(res.MissingFromDisk)
	}
	res.VRPs = rpki.SetFromROAs(res.ROAs)
	return res, nil
}

func bigInt(v int64) *big.Int { return big.NewInt(v) }

func parsePrefixes(ss []string) ([]prefix.Prefix, error) {
	out := make([]prefix.Prefix, 0, len(ss))
	for _, s := range ss {
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
