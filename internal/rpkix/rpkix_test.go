package rpkix

import (
	"crypto/x509"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func sampleROA() rpki.ROA {
	return rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 24},
		{Prefix: mp("168.122.225.0/24"), MaxLength: 24},
		{Prefix: mp("2001:db8::/32"), MaxLength: 32},
	}}
}

func TestEContentRoundTrip(t *testing.T) {
	in := sampleROA()
	der, err := EncodeROAContent(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeROAContent(der)
	if err != nil {
		t.Fatal(err)
	}
	if out.AS != in.AS || len(out.Prefixes) != len(in.Prefixes) {
		t.Fatalf("round trip: %+v", out)
	}
	for i := range in.Prefixes {
		if out.Prefixes[i] != in.Prefixes[i] {
			t.Errorf("prefix %d: %v vs %v", i, out.Prefixes[i], in.Prefixes[i])
		}
	}
}

func TestEContentOmitsRedundantMaxLength(t *testing.T) {
	// An entry with maxLength == len must encode without the optional field,
	// making the DER shorter than the maxLength-using version.
	a, err := EncodeROAContent(rpki.ROA{AS: 1, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeROAContent(rpki.ROA{AS: 1, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 24}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) >= len(b) {
		t.Errorf("no-maxLength encoding (%d bytes) not shorter than maxLength one (%d)", len(a), len(b))
	}
}

func TestEContentRejectsBad(t *testing.T) {
	if _, err := EncodeROAContent(rpki.ROA{AS: 1}); err == nil {
		t.Error("empty ROA encoded")
	}
	if _, err := DecodeROAContent([]byte{0x30, 0x00}); err == nil {
		t.Error("empty SEQUENCE decoded")
	}
	if _, err := DecodeROAContent([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
	// Trailing bytes.
	der, _ := EncodeROAContent(sampleROA())
	if _, err := DecodeROAContent(append(der, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEContentQuick(t *testing.T) {
	f := func(addr uint64, l8, mlDelta uint8, as uint32, v6 bool) bool {
		fam := prefix.IPv4
		if v6 {
			fam = prefix.IPv6
		}
		l := l8 % (fam.MaxLen() + 1)
		hi, lo := addr, addr*0x2545f4914f6cdd1d
		if fam == prefix.IPv4 {
			hi &= 0xffffffff00000000
			lo = 0
		}
		p, err := prefix.Make(fam, hi, lo, l)
		if err != nil {
			return false
		}
		ml := l + mlDelta%(fam.MaxLen()-l+1)
		in := rpki.ROA{AS: rpki.ASN(as), Prefixes: []rpki.ROAPrefix{{Prefix: p, MaxLength: ml}}}
		der, err := EncodeROAContent(in)
		if err != nil {
			return false
		}
		out, err := DecodeROAContent(der)
		if err != nil {
			return false
		}
		return out.AS == in.AS && len(out.Prefixes) == 1 && out.Prefixes[0] == in.Prefixes[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesRoundTrip(t *testing.T) {
	in := []prefix.Prefix{mp("10.0.0.0/8"), mp("168.122.0.0/16"), mp("2001:db8::/32")}
	ext, err := EncodeIPResources(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Critical {
		t.Error("resources extension must be critical (RFC 6487)")
	}
	out, err := DecodeIPResources(ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("resource %d: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestResourcesContain(t *testing.T) {
	have := []prefix.Prefix{mp("10.0.0.0/8"), mp("2001:db8::/32")}
	if !ResourcesContain(have, []prefix.Prefix{mp("10.5.0.0/16"), mp("2001:db8:1::/48")}) {
		t.Error("containment failed")
	}
	if ResourcesContain(have, []prefix.Prefix{mp("11.0.0.0/16")}) {
		t.Error("non-contained accepted")
	}
	if !ResourcesContain(AllResources(), []prefix.Prefix{mp("10.0.0.0/8"), mp("::/0")}) {
		t.Error("AllResources must contain everything")
	}
}

// buildChain creates TA -> RIR CA -> org CA for the running example.
func buildChain(t *testing.T) (*Authority, *Authority, *Authority) {
	t.Helper()
	ta, err := NewTrustAnchor("Test TA")
	if err != nil {
		t.Fatal(err)
	}
	rir, err := ta.NewChild("Test RIR", []prefix.Prefix{mp("168.0.0.0/8"), mp("2001:db8::/32")})
	if err != nil {
		t.Fatal(err)
	}
	org, err := rir.NewChild("Boston University", []prefix.Prefix{mp("168.122.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	return ta, rir, org
}

func TestIssueAndValidateROA(t *testing.T) {
	ta, rir, org := buildChain(t)
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 16},
		{Prefix: mp("168.122.225.0/24"), MaxLength: 24},
	}}
	der, err := org.IssueROA(roa)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateROA(der, ta.Cert, []*x509.Certificate{rir.Cert, org.Cert})
	if err != nil {
		t.Fatal(err)
	}
	if got.AS != 111 || len(got.Prefixes) != 2 {
		t.Fatalf("validated ROA = %+v", got)
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	ta, rir, org := buildChain(t)
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{{Prefix: mp("168.122.0.0/16"), MaxLength: 16}}}
	der, err := org.IssueROA(roa)
	if err != nil {
		t.Fatal(err)
	}
	ints := []*x509.Certificate{rir.Cert, org.Cert}

	// Flip a byte somewhere in the middle (the eContent region).
	tampered := append([]byte(nil), der...)
	tampered[len(tampered)/2] ^= 0xff
	if _, err := ValidateROA(tampered, ta.Cert, ints); err == nil {
		t.Error("tampered object validated")
	}
}

func TestValidateRejectsWrongAnchor(t *testing.T) {
	ta, rir, org := buildChain(t)
	_ = ta
	other, err := NewTrustAnchor("Evil TA")
	if err != nil {
		t.Fatal(err)
	}
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{{Prefix: mp("168.122.0.0/16"), MaxLength: 16}}}
	der, err := org.IssueROA(roa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateROA(der, other.Cert, []*x509.Certificate{rir.Cert, org.Cert}); err == nil {
		t.Error("object chained to the wrong anchor validated")
	}
}

func TestIssueRejectsResourceOverclaim(t *testing.T) {
	_, _, org := buildChain(t) // org holds only 168.122.0.0/16
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{{Prefix: mp("10.0.0.0/8"), MaxLength: 8}}}
	if _, err := org.IssueROA(roa); err == nil {
		t.Error("over-claiming ROA issued")
	}
	// A child CA cannot exceed its parent either.
	if _, err := org.NewChild("too big", []prefix.Prefix{mp("0.0.0.0/0")}); err == nil {
		t.Error("over-claiming child CA issued")
	}
}

func TestRepositoryScan(t *testing.T) {
	dir := t.TempDir()
	repo, err := NewRepository("Scan TA")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := repo.AddCA("Org", []string{"168.122.0.0/16", "87.254.32.0/19"})
	if err != nil {
		t.Fatal(err)
	}
	roas := []rpki.ROA{
		{AS: 111, Prefixes: []rpki.ROAPrefix{{Prefix: mp("168.122.0.0/16"), MaxLength: 24}}},
		{AS: 31283, Prefixes: []rpki.ROAPrefix{
			{Prefix: mp("87.254.32.0/19"), MaxLength: 19},
			{Prefix: mp("87.254.32.0/20"), MaxLength: 20},
		}},
	}
	for _, r := range roas {
		if err := repo.PublishROA(ca, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Write(dir); err != nil {
		t.Fatal(err)
	}
	// Drop a garbage object alongside: scan must reject it, not die.
	if err := os.WriteFile(filepath.Join(dir, "zzgarbage.roa"), []byte("not DER"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := ScanROAs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ROAs) != 2 {
		t.Fatalf("scanned %d ROAs, want 2 (rejected: %v)", len(res.ROAs), res.Rejected)
	}
	if len(res.Rejected) != 1 {
		t.Fatalf("rejected = %v, want the garbage file only", res.Rejected)
	}
	want := rpki.NewSet([]rpki.VRP{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111},
		{Prefix: mp("87.254.32.0/19"), MaxLength: 19, AS: 31283},
		{Prefix: mp("87.254.32.0/20"), MaxLength: 20, AS: 31283},
	})
	if !res.VRPs.Equal(want) {
		t.Fatalf("VRPs = %v, want %v", res.VRPs.VRPs(), want.VRPs())
	}
}

func TestScanMissingTA(t *testing.T) {
	if _, err := ScanROAs(t.TempDir()); err == nil {
		t.Error("scan without ta.cer succeeded")
	}
}

func TestParseSignedObjectErrors(t *testing.T) {
	if _, err := ParseSignedObject([]byte("junk")); err == nil {
		t.Error("junk parsed")
	}
}
