package rpkix

import (
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"

	"repro/internal/prefix"
)

// RFC 3779 IP resource extension (prefixes-only profile: no ranges, no
// "inherit").
//
//	IPAddrBlocks      ::= SEQUENCE OF IPAddressFamily
//	IPAddressFamily   ::= SEQUENCE { addressFamily OCTET STRING,
//	                                 addressesOrRanges SEQUENCE OF BIT STRING }
type ipAddressFamilyASN1 struct {
	AddressFamily []byte
	Addresses     []asn1.BitString
}

// EncodeIPResources builds the id-pe-ipAddrBlocks extension value for the
// given prefixes. The extension is marked critical, as RFC 6487 requires.
func EncodeIPResources(prefixes []prefix.Prefix) (pkix.Extension, error) {
	var v4, v6 []asn1.BitString
	for _, p := range prefixes {
		if !p.IsValid() {
			return pkix.Extension{}, fmt.Errorf("rpkix: invalid prefix in resources")
		}
		if p.Family() == prefix.IPv4 {
			v4 = append(v4, prefixToBitString(p))
		} else {
			v6 = append(v6, prefixToBitString(p))
		}
	}
	var blocks []ipAddressFamilyASN1
	if len(v4) > 0 {
		blocks = append(blocks, ipAddressFamilyASN1{AddressFamily: afiIPv4, Addresses: v4})
	}
	if len(v6) > 0 {
		blocks = append(blocks, ipAddressFamilyASN1{AddressFamily: afiIPv6, Addresses: v6})
	}
	der, err := asn1.Marshal(blocks)
	if err != nil {
		return pkix.Extension{}, err
	}
	return pkix.Extension{Id: oidIPAddrBlocks, Critical: true, Value: der}, nil
}

// DecodeIPResources parses an id-pe-ipAddrBlocks extension value.
func DecodeIPResources(ext pkix.Extension) ([]prefix.Prefix, error) {
	if !ext.Id.Equal(oidIPAddrBlocks) {
		return nil, fmt.Errorf("rpkix: extension %v is not id-pe-ipAddrBlocks", ext.Id)
	}
	var blocks []ipAddressFamilyASN1
	rest, err := asn1.Unmarshal(ext.Value, &blocks)
	if err != nil {
		return nil, fmt.Errorf("rpkix: parsing IP resources: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("rpkix: trailing bytes in IP resources")
	}
	var out []prefix.Prefix
	for _, blk := range blocks {
		var fam prefix.Family
		switch string(blk.AddressFamily) {
		case string(afiIPv4):
			fam = prefix.IPv4
		case string(afiIPv6):
			fam = prefix.IPv6
		default:
			return nil, fmt.Errorf("rpkix: unknown AFI %x in resources", blk.AddressFamily)
		}
		for _, bs := range blk.Addresses {
			p, err := bitStringToPrefix(fam, bs)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// ResourcesContain reports whether every prefix in need is contained in some
// prefix of have — the RFC 6487 issuance invariant checked along the chain.
func ResourcesContain(have, need []prefix.Prefix) bool {
	for _, n := range need {
		ok := false
		for _, h := range have {
			if h.Contains(n) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// AllResources returns the prefixes covering the whole address space, used
// by the trust anchor.
func AllResources() []prefix.Prefix {
	return []prefix.Prefix{prefix.MustParse("0.0.0.0/0"), prefix.MustParse("::/0")}
}
