package rpkix

import (
	"crypto/x509"
	"math/big"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/rpki"
)

func TestManifestContentRoundTrip(t *testing.T) {
	in := Manifest{
		Number:     42,
		ThisUpdate: time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		NextUpdate: time.Date(2017, 7, 1, 0, 0, 0, 0, time.UTC),
		Files: map[string][32]byte{
			"roa00000.roa": {1, 2, 3},
			"roa00001.roa": {4, 5, 6},
		},
	}
	der, err := EncodeManifestContent(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeManifestContent(der)
	if err != nil {
		t.Fatal(err)
	}
	if out.Number != in.Number || !out.ThisUpdate.Equal(in.ThisUpdate) || !out.NextUpdate.Equal(in.NextUpdate) {
		t.Fatalf("round trip: %+v", out)
	}
	if len(out.Files) != 2 || out.Files["roa00000.roa"] != in.Files["roa00000.roa"] {
		t.Fatalf("files: %+v", out.Files)
	}
	// Deterministic encoding regardless of map order.
	der2, err := EncodeManifestContent(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(der) != string(der2) {
		t.Error("manifest encoding not deterministic")
	}
	if _, err := DecodeManifestContent([]byte("junk")); err == nil {
		t.Error("junk manifest decoded")
	}
}

func TestIssueAndValidateManifest(t *testing.T) {
	ta, rir, org := buildChain(t)
	m := Manifest{
		Number:     7,
		ThisUpdate: time.Now().Add(-time.Hour),
		NextUpdate: time.Now().Add(time.Hour),
		Files:      map[string][32]byte{"a.roa": {9}},
	}
	der, err := org.IssueManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateManifest(der, ta.Cert, []*x509.Certificate{rir.Cert, org.Cert})
	if err != nil {
		t.Fatal(err)
	}
	if got.Number != 7 || len(got.Files) != 1 {
		t.Fatalf("validated manifest: %+v", got)
	}
	// Wrong anchor fails.
	evil, err := NewTrustAnchor("evil")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateManifest(der, evil.Cert, []*x509.Certificate{rir.Cert, org.Cert}); err == nil {
		t.Error("manifest chained to wrong anchor validated")
	}
	// A ROA object is not a manifest.
	roaDER, err := org.IssueROA(rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 16}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateManifest(roaDER, ta.Cert, []*x509.Certificate{rir.Cert, org.Cert}); err == nil {
		t.Error("ROA accepted as manifest")
	}
}

func TestCRLIssueAndCheck(t *testing.T) {
	_, _, org := buildChain(t)
	crl, err := org.IssueCRL([]int64{5, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		serial int64
		want   bool
	}{{5, true}, {9, true}, {6, false}} {
		got, err := CheckCRL(crl, org.Cert, big.NewInt(c.serial))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CheckCRL(%d) = %v, want %v", c.serial, got, c.want)
		}
	}
	// Wrong issuer fails signature check.
	other, err := NewTrustAnchor("other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckCRL(crl, other.Cert, big.NewInt(5)); err == nil {
		t.Error("CRL verified against the wrong issuer")
	}
	if _, err := CheckCRL([]byte("junk"), org.Cert, big.NewInt(5)); err == nil {
		t.Error("junk CRL parsed")
	}
}

// writeTestRepo builds a 2-ROA signed repository and returns its dir.
func writeTestRepo(t *testing.T) (string, *Repository) {
	t.Helper()
	dir := t.TempDir()
	repo, err := NewRepository("MFT TA")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := repo.AddCA("MFT CA", []string{"168.122.0.0/16", "87.254.32.0/19"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []rpki.ROA{
		{AS: 111, Prefixes: []rpki.ROAPrefix{{Prefix: mp("168.122.0.0/16"), MaxLength: 16}}},
		{AS: 31283, Prefixes: []rpki.ROAPrefix{{Prefix: mp("87.254.32.0/19"), MaxLength: 19}}},
	} {
		if err := repo.PublishROA(ca, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Write(dir); err != nil {
		t.Fatal(err)
	}
	return dir, repo
}

func TestScanWithManifest(t *testing.T) {
	dir, _ := writeTestRepo(t)
	res, err := ScanROAs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest == nil {
		t.Fatal("manifest not picked up")
	}
	if len(res.ROAs) != 2 || len(res.Rejected) != 0 {
		t.Fatalf("ROAs=%d rejected=%v", len(res.ROAs), res.Rejected)
	}
	if len(res.MissingFromDisk) != 0 || len(res.NotInManifest) != 0 {
		t.Fatalf("spurious manifest discrepancies: %v / %v", res.MissingFromDisk, res.NotInManifest)
	}
}

func TestScanDetectsUnlistedObject(t *testing.T) {
	dir, repo := writeTestRepo(t)
	// Adversary drops in a validly signed but unlisted object.
	extra, err := repo.CAs[0].IssueROA(rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 24}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sneaky.roa"), extra, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ScanROAs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ROAs) != 2 {
		t.Fatalf("accepted %d ROAs, want 2 (the unlisted one rejected)", len(res.ROAs))
	}
	if len(res.NotInManifest) != 1 || res.NotInManifest[0] != "sneaky.roa" {
		t.Fatalf("NotInManifest = %v", res.NotInManifest)
	}
}

func TestScanDetectsSubstitutedObject(t *testing.T) {
	dir, repo := writeTestRepo(t)
	// Substitute a listed object with different (even validly signed) bytes.
	other, err := repo.CAs[0].IssueROA(rpki.ROA{AS: 31283, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("87.254.32.0/19"), MaxLength: 24}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "roa00001.roa"), other, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ScanROAs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ROAs) != 1 {
		t.Fatalf("accepted %d ROAs, want 1", len(res.ROAs))
	}
	if len(res.MissingFromDisk) != 1 {
		t.Fatalf("MissingFromDisk = %v", res.MissingFromDisk)
	}
}

func TestScanDetectsDeletedObject(t *testing.T) {
	dir, _ := writeTestRepo(t)
	if err := os.Remove(filepath.Join(dir, "roa00000.roa")); err != nil {
		t.Fatal(err)
	}
	res, err := ScanROAs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissingFromDisk) != 1 || res.MissingFromDisk[0] != "roa00000.roa" {
		t.Fatalf("MissingFromDisk = %v", res.MissingFromDisk)
	}
	if len(res.ROAs) != 1 {
		t.Fatalf("ROAs = %d, want the surviving one", len(res.ROAs))
	}
}

func TestScanRejectsRevokedROA(t *testing.T) {
	dir := t.TempDir()
	repo, err := NewRepository("CRL TA")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := repo.AddCA("CRL CA", []string{"168.122.0.0/16"})
	if err != nil {
		t.Fatal(err)
	}
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{{Prefix: mp("168.122.0.0/16"), MaxLength: 16}}}
	if err := repo.PublishROA(ca, roa); err != nil {
		t.Fatal(err)
	}
	// Find the EE serial of the published object and revoke it.
	obj, err := ParseSignedObject(repo.ROAs[0])
	if err != nil {
		t.Fatal(err)
	}
	repo.Revoked = []int64{obj.EECert.SerialNumber.Int64()}
	if err := repo.Write(dir); err != nil {
		t.Fatal(err)
	}
	res, err := ScanROAs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ROAs) != 0 {
		t.Fatalf("revoked ROA accepted: %v", res.ROAs)
	}
	if len(res.Rejected) != 1 {
		t.Fatalf("Rejected = %v", res.Rejected)
	}
}
