// Package rpkix implements the cryptographic envelope of the RPKI objects
// the paper's pipeline consumes: the RFC 6482 RouteOriginAttestation
// eContent in DER, a CMS SignedData profile shaped after RFC 6488, an X.509
// chain (trust anchor → CA → per-ROA EE certificate) carrying RFC 3779 IP
// resource extensions, and an on-disk repository with a ScanROAs entry point
// — the drop-in role of the scan_roas utility in §7.1: cryptographically
// validate ROA objects and emit (prefix, maxLength, origin AS) tuples.
//
// Profile simplifications relative to a production RPKI (documented in
// DESIGN.md): ECDSA P-256 instead of RSA-2048 (fast enough to sign
// thousands of objects in tests), no manifests or CRLs, and CMS signatures
// computed directly over the eContent (no signedAttrs). None of these affect
// the quantities the paper measures; the validation *pipeline* — parse,
// verify signature, verify chain, verify resource containment, extract VRPs
// — is the real one.
package rpkix

import (
	"encoding/asn1"
	"fmt"
	"math"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// OIDs used by the profile.
var (
	oidRouteOriginAttestation = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 16, 1, 24} // id-ct-routeOriginAuthz
	oidSignedData             = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 7, 2}
	oidSHA256                 = asn1.ObjectIdentifier{2, 16, 840, 1, 101, 3, 4, 2, 1}
	oidECDSAWithSHA256        = asn1.ObjectIdentifier{1, 2, 840, 10045, 4, 3, 2}
	oidIPAddrBlocks           = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 7} // id-pe-ipAddrBlocks
)

// Address family identifiers used in ROA eContent and RFC 3779 extensions.
var (
	afiIPv4 = []byte{0x00, 0x01}
	afiIPv6 = []byte{0x00, 0x02}
)

// roaASN1 mirrors RouteOriginAttestation (RFC 6482 §3).
type roaASN1 struct {
	Version      int `asn1:"optional,explicit,default:0,tag:0"`
	ASID         int64
	IPAddrBlocks []roaIPAddressFamily
}

type roaIPAddressFamily struct {
	AddressFamily []byte
	Addresses     []roaIPAddress
}

type roaIPAddress struct {
	Address   asn1.BitString
	MaxLength int64 `asn1:"optional,default:-1"`
}

// prefixToBitString encodes a prefix as the RFC 3779 BIT STRING form:
// the network bits, most significant first, BitLength = prefix length.
func prefixToBitString(p prefix.Prefix) asn1.BitString {
	hi, lo := p.Bits()
	nbytes := (int(p.Len()) + 7) / 8
	buf := make([]byte, nbytes)
	for i := 0; i < nbytes && i < 8; i++ {
		buf[i] = byte(hi >> (56 - 8*i))
	}
	for i := 8; i < nbytes; i++ {
		buf[i] = byte(lo >> (56 - 8*(i-8)))
	}
	return asn1.BitString{Bytes: buf, BitLength: int(p.Len())}
}

// bitStringToPrefix decodes the RFC 3779 BIT STRING form.
func bitStringToPrefix(fam prefix.Family, bs asn1.BitString) (prefix.Prefix, error) {
	if bs.BitLength < 0 || bs.BitLength > int(fam.MaxLen()) {
		return prefix.Prefix{}, fmt.Errorf("rpkix: bit length %d out of range for %v", bs.BitLength, fam)
	}
	if want := (bs.BitLength + 7) / 8; len(bs.Bytes) != want {
		return prefix.Prefix{}, fmt.Errorf("rpkix: bit string has %d bytes, want %d", len(bs.Bytes), want)
	}
	var hi, lo uint64
	for i, b := range bs.Bytes {
		if i < 8 {
			hi |= uint64(b) << (56 - 8*i)
		} else if i < 16 {
			lo |= uint64(b) << (56 - 8*(i-8))
		}
	}
	return prefix.Make(fam, hi, lo, uint8(bs.BitLength))
}

// EncodeROAContent serializes a ROA to its RFC 6482 eContent DER. Entries
// whose maxLength equals the prefix length omit the optional maxLength
// field, as the RFC recommends.
func EncodeROAContent(r rpki.ROA) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if uint32(r.AS) > math.MaxUint32 {
		return nil, fmt.Errorf("rpkix: ASN out of range")
	}
	var v4, v6 []roaIPAddress
	for _, rp := range r.Prefixes {
		addr := roaIPAddress{Address: prefixToBitString(rp.Prefix), MaxLength: -1}
		if rp.UsesMaxLength() {
			addr.MaxLength = int64(rp.MaxLength)
		}
		if rp.Prefix.Family() == prefix.IPv4 {
			v4 = append(v4, addr)
		} else {
			v6 = append(v6, addr)
		}
	}
	var blocks []roaIPAddressFamily
	if len(v4) > 0 {
		blocks = append(blocks, roaIPAddressFamily{AddressFamily: afiIPv4, Addresses: v4})
	}
	if len(v6) > 0 {
		blocks = append(blocks, roaIPAddressFamily{AddressFamily: afiIPv6, Addresses: v6})
	}
	return asn1.Marshal(roaASN1{ASID: int64(uint32(r.AS)), IPAddrBlocks: blocks})
}

// DecodeROAContent parses RFC 6482 eContent DER into a ROA.
func DecodeROAContent(der []byte) (rpki.ROA, error) {
	var raw roaASN1
	rest, err := asn1.Unmarshal(der, &raw)
	if err != nil {
		return rpki.ROA{}, fmt.Errorf("rpkix: parsing ROA eContent: %w", err)
	}
	if len(rest) != 0 {
		return rpki.ROA{}, fmt.Errorf("rpkix: %d trailing bytes after ROA eContent", len(rest))
	}
	if raw.Version != 0 {
		return rpki.ROA{}, fmt.Errorf("rpkix: unsupported ROA version %d", raw.Version)
	}
	if raw.ASID < 0 || raw.ASID > math.MaxUint32 {
		return rpki.ROA{}, fmt.Errorf("rpkix: ASID %d out of range", raw.ASID)
	}
	out := rpki.ROA{AS: rpki.ASN(raw.ASID)}
	for _, blk := range raw.IPAddrBlocks {
		var fam prefix.Family
		switch {
		case string(blk.AddressFamily) == string(afiIPv4):
			fam = prefix.IPv4
		case string(blk.AddressFamily) == string(afiIPv6):
			fam = prefix.IPv6
		default:
			return rpki.ROA{}, fmt.Errorf("rpkix: unknown address family %x", blk.AddressFamily)
		}
		for _, a := range blk.Addresses {
			p, err := bitStringToPrefix(fam, a.Address)
			if err != nil {
				return rpki.ROA{}, err
			}
			ml := p.Len()
			if a.MaxLength >= 0 {
				if a.MaxLength > int64(fam.MaxLen()) {
					return rpki.ROA{}, fmt.Errorf("rpkix: maxLength %d out of range", a.MaxLength)
				}
				ml = uint8(a.MaxLength)
			}
			out.Prefixes = append(out.Prefixes, rpki.ROAPrefix{Prefix: p, MaxLength: ml})
		}
	}
	if err := out.Validate(); err != nil {
		return rpki.ROA{}, err
	}
	return out, nil
}
