package rpkix

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"math/big"
	"time"
)

// Manifests (RFC 6486-shaped) and CRLs complete the publication-point
// validation story: the manifest is a signed inventory of every object the
// CA currently publishes (file name + SHA-256), so a relying party can
// detect deleted or substituted objects; the CRL revokes EE certificates of
// withdrawn objects. The profile keeps RFC 6486's eContent structure with
// the same simplifications as the rest of the package (ECDSA, no
// signedAttrs).

var oidManifest = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 16, 1, 26} // id-ct-rpkiManifest

// manifestASN1 mirrors RFC 6486 §4.2.1.
type manifestASN1 struct {
	Version        int `asn1:"optional,explicit,default:0,tag:0"`
	ManifestNumber int64
	ThisUpdate     time.Time `asn1:"generalized"`
	NextUpdate     time.Time `asn1:"generalized"`
	FileHashAlg    asn1.ObjectIdentifier
	FileList       []fileAndHash
}

type fileAndHash struct {
	File string `asn1:"ia5"`
	Hash asn1.BitString
}

// Manifest is the decoded inventory.
type Manifest struct {
	Number     int64
	ThisUpdate time.Time
	NextUpdate time.Time
	Files      map[string][32]byte // file name -> SHA-256
}

// EncodeManifestContent serializes a manifest eContent.
func EncodeManifestContent(m Manifest) ([]byte, error) {
	raw := manifestASN1{
		ManifestNumber: m.Number,
		ThisUpdate:     m.ThisUpdate.UTC().Truncate(time.Second),
		NextUpdate:     m.NextUpdate.UTC().Truncate(time.Second),
		FileHashAlg:    oidSHA256,
	}
	// Deterministic file order for reproducible objects.
	names := make([]string, 0, len(m.Files))
	for name := range m.Files {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		h := m.Files[name]
		raw.FileList = append(raw.FileList, fileAndHash{
			File: name,
			Hash: asn1.BitString{Bytes: h[:], BitLength: 256},
		})
	}
	return asn1.Marshal(raw)
}

// DecodeManifestContent parses a manifest eContent.
func DecodeManifestContent(der []byte) (Manifest, error) {
	var raw manifestASN1
	rest, err := asn1.Unmarshal(der, &raw)
	if err != nil {
		return Manifest{}, fmt.Errorf("rpkix: parsing manifest: %w", err)
	}
	if len(rest) != 0 {
		return Manifest{}, fmt.Errorf("rpkix: trailing bytes after manifest")
	}
	if !raw.FileHashAlg.Equal(oidSHA256) {
		return Manifest{}, fmt.Errorf("rpkix: manifest hash algorithm %v unsupported", raw.FileHashAlg)
	}
	m := Manifest{
		Number:     raw.ManifestNumber,
		ThisUpdate: raw.ThisUpdate,
		NextUpdate: raw.NextUpdate,
		Files:      make(map[string][32]byte, len(raw.FileList)),
	}
	for _, fh := range raw.FileList {
		if fh.Hash.BitLength != 256 {
			return Manifest{}, fmt.Errorf("rpkix: manifest hash for %q has %d bits", fh.File, fh.Hash.BitLength)
		}
		var h [32]byte
		copy(h[:], fh.Hash.Bytes)
		m.Files[fh.File] = h
	}
	return m, nil
}

// sortStrings is a tiny insertion sort to keep the file free of the sort
// import churn (file lists are small).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// IssueManifest signs a manifest under the authority with a fresh EE
// certificate (the manifest EE carries the issuer's full resources).
func (a *Authority) IssueManifest(m Manifest) ([]byte, error) {
	eContent, err := EncodeManifestContent(m)
	if err != nil {
		return nil, err
	}
	eeKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	ext, err := EncodeIPResources(a.Resources)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:    big.NewInt(a.nextSerial()),
		Subject:         pkix.Name{CommonName: fmt.Sprintf("MFT-EE-%s", a.Cert.Subject.CommonName)},
		NotBefore:       time.Now().Add(-time.Hour),
		NotAfter:        time.Now().Add(30 * 24 * time.Hour),
		KeyUsage:        x509.KeyUsageDigitalSignature,
		ExtraExtensions: []pkix.Extension{ext},
		SubjectKeyId:    keyID(&eeKey.PublicKey),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.Cert, &eeKey.PublicKey, a.Key)
	if err != nil {
		return nil, err
	}
	eeCert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return signObject(oidManifest, eContent, eeCert, eeKey)
}

// ValidateManifest verifies a signed manifest object against the chain and
// returns the decoded inventory.
func ValidateManifest(der []byte, ta *x509.Certificate, intermediates []*x509.Certificate) (Manifest, error) {
	obj, err := ParseSignedObject(der)
	if err != nil {
		return Manifest{}, err
	}
	if !obj.EContentType.Equal(oidManifest) {
		return Manifest{}, fmt.Errorf("rpkix: eContentType %v is not a manifest", obj.EContentType)
	}
	if err := obj.VerifySignature(); err != nil {
		return Manifest{}, err
	}
	if err := verifyChain(obj.EECert, ta, intermediates); err != nil {
		return Manifest{}, err
	}
	m, err := DecodeManifestContent(obj.EContent)
	if err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// verifyChain runs x509 verification with the resource extension
// acknowledged, shared by ROA and manifest validation.
func verifyChain(ee *x509.Certificate, ta *x509.Certificate, intermediates []*x509.Certificate) error {
	roots := x509.NewCertPool()
	acknowledgeResources(ta)
	roots.AddCert(ta)
	pool := x509.NewCertPool()
	for _, c := range intermediates {
		acknowledgeResources(c)
		pool.AddCert(c)
	}
	acknowledgeResources(ee)
	_, err := ee.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: pool,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	})
	if err != nil {
		return fmt.Errorf("rpkix: chain validation: %w", err)
	}
	return nil
}

// IssueCRL signs a certificate revocation list over the given revoked
// serial numbers.
func (a *Authority) IssueCRL(revokedSerials []int64, number int64) ([]byte, error) {
	tmpl := &x509.RevocationList{
		Number:     big.NewInt(number),
		ThisUpdate: time.Now().Add(-time.Hour),
		NextUpdate: time.Now().Add(30 * 24 * time.Hour),
	}
	for _, s := range revokedSerials {
		tmpl.RevokedCertificateEntries = append(tmpl.RevokedCertificateEntries,
			x509.RevocationListEntry{SerialNumber: big.NewInt(s), RevocationTime: time.Now()})
	}
	return x509.CreateRevocationList(rand.Reader, tmpl, a.Cert, a.Key)
}

// CheckCRL verifies the CRL's signature against the issuer and reports
// whether serial is revoked.
func CheckCRL(crlDER []byte, issuer *x509.Certificate, serial *big.Int) (bool, error) {
	rl, err := x509.ParseRevocationList(crlDER)
	if err != nil {
		return false, fmt.Errorf("rpkix: parsing CRL: %w", err)
	}
	if err := rl.CheckSignatureFrom(issuer); err != nil {
		return false, fmt.Errorf("rpkix: CRL signature: %w", err)
	}
	for _, e := range rl.RevokedCertificateEntries {
		if e.SerialNumber.Cmp(serial) == 0 {
			return true, nil
		}
	}
	return false, nil
}

// signObject generalizes SignROA to any eContent type.
func signObject(contentType asn1.ObjectIdentifier, eContent []byte, eeCert *x509.Certificate, eeKey *ecdsa.PrivateKey) ([]byte, error) {
	digest := sha256.Sum256(eContent)
	sig, err := ecdsa.SignASN1(rand.Reader, eeKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("rpkix: signing: %w", err)
	}
	sd := signedData{
		Version:          3,
		DigestAlgorithms: []algorithmIdentifier{{Algorithm: oidSHA256}},
		EncapContentInfo: encapContentInfo{
			EContentType: contentType,
			EContent:     eContent,
		},
		Certificates: []asn1.RawValue{{FullBytes: eeCert.Raw}},
		SignerInfos: []signerInfo{{
			Version:            3,
			SubjectKeyID:       eeCert.SubjectKeyId,
			DigestAlgorithm:    algorithmIdentifier{Algorithm: oidSHA256},
			SignatureAlgorithm: algorithmIdentifier{Algorithm: oidECDSAWithSHA256},
			Signature:          sig,
		}},
	}
	return asn1.Marshal(contentInfo{ContentType: oidSignedData, Content: sd})
}
