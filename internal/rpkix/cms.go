package rpkix

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/asn1"
	"fmt"
)

// CMS SignedData (RFC 5652), profiled per RFC 6488: exactly one signer,
// SHA-256 digest, the EE certificate embedded, signerIdentifier by
// SubjectKeyIdentifier. Signatures are computed over the eContent octets
// directly (no signedAttrs), which RFC 5652 §5.4 permits.

type contentInfo struct {
	ContentType asn1.ObjectIdentifier
	Content     signedData `asn1:"explicit,tag:0"`
}

type signedData struct {
	Version          int
	DigestAlgorithms []algorithmIdentifier `asn1:"set"`
	EncapContentInfo encapContentInfo
	Certificates     []asn1.RawValue `asn1:"optional,tag:0"`
	SignerInfos      []signerInfo    `asn1:"set"`
}

type algorithmIdentifier struct {
	Algorithm asn1.ObjectIdentifier
}

type encapContentInfo struct {
	EContentType asn1.ObjectIdentifier
	EContent     []byte `asn1:"explicit,optional,tag:0"`
}

type signerInfo struct {
	Version            int
	SubjectKeyID       []byte `asn1:"tag:0"`
	DigestAlgorithm    algorithmIdentifier
	SignatureAlgorithm algorithmIdentifier
	Signature          []byte
}

// SignedObject is a parsed, not-yet-validated RPKI signed object.
type SignedObject struct {
	EContentType asn1.ObjectIdentifier
	EContent     []byte
	EECert       *x509.Certificate
	signature    []byte
	subjectKeyID []byte
}

// SignROA wraps a ROA eContent in a SignedData envelope signed by the EE
// key, embedding the EE certificate.
func SignROA(eContent []byte, eeCert *x509.Certificate, eeKey *ecdsa.PrivateKey) ([]byte, error) {
	return signObject(oidRouteOriginAttestation, eContent, eeCert, eeKey)
}

// ParseSignedObject parses a SignedData envelope without validating it.
func ParseSignedObject(der []byte) (*SignedObject, error) {
	var ci contentInfo
	rest, err := asn1.Unmarshal(der, &ci)
	if err != nil {
		return nil, fmt.Errorf("rpkix: parsing ContentInfo: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("rpkix: trailing bytes after ContentInfo")
	}
	if !ci.ContentType.Equal(oidSignedData) {
		return nil, fmt.Errorf("rpkix: contentType %v is not SignedData", ci.ContentType)
	}
	sd := ci.Content
	if sd.Version != 3 {
		return nil, fmt.Errorf("rpkix: SignedData version %d, want 3", sd.Version)
	}
	if len(sd.SignerInfos) != 1 {
		return nil, fmt.Errorf("rpkix: %d signers, want exactly 1", len(sd.SignerInfos))
	}
	si := sd.SignerInfos[0]
	if !si.DigestAlgorithm.Algorithm.Equal(oidSHA256) ||
		!si.SignatureAlgorithm.Algorithm.Equal(oidECDSAWithSHA256) {
		return nil, fmt.Errorf("rpkix: unsupported signer algorithms")
	}
	if len(sd.Certificates) != 1 {
		return nil, fmt.Errorf("rpkix: %d embedded certificates, want 1", len(sd.Certificates))
	}
	ee, err := x509.ParseCertificate(sd.Certificates[0].FullBytes)
	if err != nil {
		return nil, fmt.Errorf("rpkix: parsing EE certificate: %w", err)
	}
	return &SignedObject{
		EContentType: sd.EncapContentInfo.EContentType,
		EContent:     sd.EncapContentInfo.EContent,
		EECert:       ee,
		signature:    si.Signature,
		subjectKeyID: si.SubjectKeyID,
	}, nil
}

// VerifySignature checks the signer binding and the ECDSA signature over the
// eContent with the embedded EE certificate's public key.
func (o *SignedObject) VerifySignature() error {
	if !bytes.Equal(o.subjectKeyID, o.EECert.SubjectKeyId) {
		return fmt.Errorf("rpkix: signerInfo SKI does not match EE certificate")
	}
	pub, ok := o.EECert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("rpkix: EE certificate key is %T, want ECDSA", o.EECert.PublicKey)
	}
	digest := sha256.Sum256(o.EContent)
	if !ecdsa.VerifyASN1(pub, digest[:], o.signature) {
		return fmt.Errorf("rpkix: signature verification failed")
	}
	return nil
}
