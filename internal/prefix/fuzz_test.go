package prefix

import "testing"

// FuzzParse checks the parser never panics and that accepted inputs
// round-trip through String canonically.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/8", "168.122.0.0/16", "0.0.0.0/0", "255.255.255.255/32",
		"2001:db8::/32", "::/0", "::1/128", "fe80::1:2:3/64",
		"", "/", "10.0.0.0", "10.0.0.0/", "x/8", "1:2::3::4/64",
		"999.1.1.1/8", "10.0.0.0/33", "2001:db8::/129",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", p, s, err)
		}
		if q != p {
			t.Fatalf("round trip changed %q: %v vs %v", s, q, p)
		}
	})
}
