// Package prefix implements IP prefix arithmetic for IPv4 and IPv6.
//
// The central type is Prefix, an immutable, comparable value representing an
// IP prefix such as 168.122.0.0/16 or 2001:db8::/32. Prefix values are
// canonical (host bits are always zero), so they may be used directly as map
// keys and compared with ==.
//
// Internally a prefix is stored as a 128-bit address (two uint64 halves) with
// the network bits left-aligned, a bit length, and an address-family flag.
// IPv4 prefixes occupy the top 32 bits. This representation makes the
// operations the rest of the repository is built on — containment tests,
// parent/child/sibling navigation, canonical ordering — simple shift-and-mask
// arithmetic with no allocation.
package prefix

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Family identifies the address family of a Prefix.
type Family uint8

// Address families.
const (
	IPv4 Family = 4
	IPv6 Family = 6
)

// String returns "IPv4" or "IPv6".
func (f Family) String() string {
	switch f {
	case IPv4:
		return "IPv4"
	case IPv6:
		return "IPv6"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// MaxLen returns the maximum prefix length for the family: 32 or 128.
func (f Family) MaxLen() uint8 {
	if f == IPv4 {
		return 32
	}
	return 128
}

// Prefix is an immutable IP prefix. The zero value is not a valid prefix;
// use Make, Parse or MustParse.
type Prefix struct {
	hi, lo uint64 // network bits, left-aligned in 128 bits (IPv4 in top 32 of hi)
	len    uint8
	fam    Family
}

// Errors returned by Parse and Make.
var (
	ErrBadPrefix = errors.New("prefix: malformed prefix")
	ErrBadLength = errors.New("prefix: length out of range")
)

// Make constructs a canonical Prefix from raw 128-bit left-aligned address
// halves, a length, and a family. Host bits beyond length are cleared.
func Make(fam Family, hi, lo uint64, length uint8) (Prefix, error) {
	if fam != IPv4 && fam != IPv6 {
		return Prefix{}, fmt.Errorf("%w: unknown family %d", ErrBadPrefix, fam)
	}
	if length > fam.MaxLen() {
		return Prefix{}, fmt.Errorf("%w: /%d exceeds /%d", ErrBadLength, length, fam.MaxLen())
	}
	if fam == IPv4 && lo != 0 {
		return Prefix{}, fmt.Errorf("%w: IPv4 address has bits beyond 32", ErrBadPrefix)
	}
	hi, lo = maskBits(hi, lo, length)
	return Prefix{hi: hi, lo: lo, len: length, fam: fam}, nil
}

// maskBits clears all bits at positions >= length (0-indexed from the MSB of hi).
func maskBits(hi, lo uint64, length uint8) (uint64, uint64) {
	switch {
	case length == 0:
		return 0, 0
	case length < 64:
		return hi &^ (math.MaxUint64 >> length), 0
	case length == 64:
		return hi, 0
	case length < 128:
		return hi, lo &^ (math.MaxUint64 >> (length - 64))
	default:
		return hi, lo
	}
}

// Parse parses a prefix in CIDR notation, e.g. "10.0.0.0/8" or "2001:db8::/32".
func Parse(s string) (Prefix, error) {
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	l, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q bad length: %v", ErrBadPrefix, s, err)
	}
	addr := s[:slash]
	if strings.ContainsRune(addr, ':') {
		hi, lo, err := parseIPv6(addr)
		if err != nil {
			return Prefix{}, fmt.Errorf("%w: %q: %v", ErrBadPrefix, s, err)
		}
		return Make(IPv6, hi, lo, uint8(l))
	}
	v4, err := parseIPv4(addr)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q: %v", ErrBadPrefix, s, err)
	}
	return Make(IPv4, uint64(v4)<<32, 0, uint8(l))
}

// MustParse is like Parse but panics on error. Intended for tests and
// package-level literals.
func MustParse(s string) Prefix {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseIPv4(s string) (uint32, error) {
	var v uint32
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, errors.New("want 4 octets")
	}
	for _, part := range parts {
		n, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad octet %q", part)
		}
		if len(part) > 1 && part[0] == '0' {
			return 0, fmt.Errorf("leading zero in octet %q", part)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}

func parseIPv6(s string) (hi, lo uint64, err error) {
	// Split on "::" for zero compression.
	var head, tail []uint16
	dc := strings.Index(s, "::")
	parse16 := func(fields string) ([]uint16, error) {
		if fields == "" {
			return nil, nil
		}
		var out []uint16
		for _, f := range strings.Split(fields, ":") {
			if f == "" {
				return nil, errors.New("empty group")
			}
			n, err := strconv.ParseUint(f, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("bad group %q", f)
			}
			out = append(out, uint16(n))
		}
		return out, nil
	}
	if dc >= 0 {
		if strings.Contains(s[dc+2:], "::") {
			return 0, 0, errors.New("multiple ::")
		}
		if head, err = parse16(s[:dc]); err != nil {
			return 0, 0, err
		}
		if tail, err = parse16(s[dc+2:]); err != nil {
			return 0, 0, err
		}
		if len(head)+len(tail) > 7 {
			return 0, 0, errors.New("too many groups around ::")
		}
	} else {
		if head, err = parse16(s); err != nil {
			return 0, 0, err
		}
		if len(head) != 8 {
			return 0, 0, errors.New("want 8 groups")
		}
	}
	var groups [8]uint16
	copy(groups[:], head)
	copy(groups[8-len(tail):], tail)
	for i := 0; i < 4; i++ {
		hi = hi<<16 | uint64(groups[i])
	}
	for i := 4; i < 8; i++ {
		lo = lo<<16 | uint64(groups[i])
	}
	return hi, lo, nil
}

// Family returns the address family.
func (p Prefix) Family() Family { return p.fam }

// Len returns the prefix length in bits.
func (p Prefix) Len() uint8 { return p.len }

// Bits returns the left-aligned 128-bit network address.
func (p Prefix) Bits() (hi, lo uint64) { return p.hi, p.lo }

// IsValid reports whether p was constructed by Make/Parse (the zero Prefix
// has family 0 and is invalid).
func (p Prefix) IsValid() bool { return p.fam == IPv4 || p.fam == IPv6 }

// MaxLen returns the maximum prefix length for p's family.
func (p Prefix) MaxLen() uint8 { return p.fam.MaxLen() }

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	if !p.IsValid() {
		return "invalid/0"
	}
	var b strings.Builder
	if p.fam == IPv4 {
		v := uint32(p.hi >> 32)
		fmt.Fprintf(&b, "%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		writeIPv6(&b, p.hi, p.lo)
	}
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(int(p.len)))
	return b.String()
}

// writeIPv6 writes the canonical RFC 5952 text form of the address.
func writeIPv6(b *strings.Builder, hi, lo uint64) {
	var g [8]uint16
	for i := 0; i < 4; i++ {
		g[i] = uint16(hi >> (48 - 16*i))
		g[i+4] = uint16(lo >> (48 - 16*i))
	}
	// Find the longest run of zero groups (length >= 2) for "::".
	bestStart, bestLen := -1, 1
	for i := 0; i < 8; {
		if g[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && g[j] == 0 {
			j++
		}
		if j-i > bestLen {
			bestStart, bestLen = i, j-i
		}
		i = j
	}
	for i := 0; i < 8; i++ {
		if i == bestStart {
			b.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && (bestStart < 0 || i != bestStart+bestLen) {
			b.WriteByte(':')
		}
		fmt.Fprintf(b, "%x", g[i])
	}
}

// Bit returns bit i of the network address (0 = most significant). It panics
// if i >= MaxLen().
func (p Prefix) Bit(i uint8) uint8 {
	if i >= p.MaxLen() {
		panic(fmt.Sprintf("prefix: bit index %d out of range for %s", i, p.fam))
	}
	if i < 64 {
		return uint8(p.hi >> (63 - i) & 1)
	}
	return uint8(p.lo >> (127 - i) & 1)
}

// Contains reports whether q is equal to or a subprefix of p. Prefixes of
// different families never contain one another.
func (p Prefix) Contains(q Prefix) bool {
	if p.fam != q.fam || q.len < p.len {
		return false
	}
	hi, lo := maskBits(q.hi, q.lo, p.len)
	return hi == p.hi && lo == p.lo
}

// Overlaps reports whether p and q share any addresses (one contains the other).
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q) || q.Contains(p)
}

// Parent returns the prefix one bit shorter than p. It panics for length 0.
func (p Prefix) Parent() Prefix {
	if p.len == 0 {
		panic("prefix: Parent of /0")
	}
	hi, lo := maskBits(p.hi, p.lo, p.len-1)
	return Prefix{hi: hi, lo: lo, len: p.len - 1, fam: p.fam}
}

// Child returns the subprefix of p one bit longer, with the new bit set to
// bit (0 or 1). It panics if p is already at maximum length.
func (p Prefix) Child(bit uint8) Prefix {
	if p.len >= p.MaxLen() {
		panic("prefix: Child of maximum-length prefix")
	}
	hi, lo := p.hi, p.lo
	if bit != 0 {
		if p.len < 64 {
			hi |= 1 << (63 - p.len)
		} else {
			lo |= 1 << (127 - p.len)
		}
	}
	return Prefix{hi: hi, lo: lo, len: p.len + 1, fam: p.fam}
}

// Sibling returns the prefix that shares p's parent with the last bit
// flipped. It panics for length 0.
func (p Prefix) Sibling() Prefix {
	if p.len == 0 {
		panic("prefix: Sibling of /0")
	}
	hi, lo := p.hi, p.lo
	if p.len <= 64 {
		hi ^= 1 << (64 - p.len)
	} else {
		lo ^= 1 << (128 - p.len)
	}
	return Prefix{hi: hi, lo: lo, len: p.len, fam: p.fam}
}

// LastBit returns the final bit of the prefix (the bit at position Len()-1).
// It panics for length 0.
func (p Prefix) LastBit() uint8 {
	if p.len == 0 {
		panic("prefix: LastBit of /0")
	}
	return p.Bit(p.len - 1)
}

// Compare orders prefixes canonically: by family (IPv4 first), then by
// network address, then by length (shorter first). It returns -1, 0 or 1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.fam != q.fam:
		if p.fam < q.fam {
			return -1
		}
		return 1
	case p.hi != q.hi:
		if p.hi < q.hi {
			return -1
		}
		return 1
	case p.lo != q.lo:
		if p.lo < q.lo {
			return -1
		}
		return 1
	case p.len != q.len:
		if p.len < q.len {
			return -1
		}
		return 1
	}
	return 0
}

// NumSubprefixes returns the number of subprefixes of p with length exactly
// l, saturating at math.MaxUint64. It returns 0 when l < p.Len() or l exceeds
// the family maximum.
func (p Prefix) NumSubprefixes(l uint8) uint64 {
	if l < p.len || l > p.MaxLen() {
		return 0
	}
	d := l - p.len
	if d >= 64 {
		return math.MaxUint64
	}
	return 1 << d
}

// NumSubprefixesUpTo returns the total number of subprefixes of p with length
// in [p.Len(), maxLen], inclusive of p itself, saturating at math.MaxUint64.
func (p Prefix) NumSubprefixesUpTo(maxLen uint8) uint64 {
	if maxLen < p.len {
		return 0
	}
	if maxLen > p.MaxLen() {
		maxLen = p.MaxLen()
	}
	d := maxLen - p.len
	if d >= 63 {
		return math.MaxUint64
	}
	return (1 << (d + 1)) - 1 // 2^0 + 2^1 + ... + 2^d
}

// Subprefixes appends to dst every subprefix of p with length exactly l, in
// address order, and returns the extended slice. It panics if the expansion
// would exceed 1<<24 prefixes, which indicates a logic error upstream.
func (p Prefix) Subprefixes(dst []Prefix, l uint8) []Prefix {
	n := p.NumSubprefixes(l)
	if n == 0 {
		return dst
	}
	if n > 1<<24 {
		panic(fmt.Sprintf("prefix: refusing to expand %s to %d /%d subprefixes", p, n, l))
	}
	var rec func(q Prefix)
	rec = func(q Prefix) {
		if q.len == l {
			dst = append(dst, q)
			return
		}
		rec(q.Child(0))
		rec(q.Child(1))
	}
	rec(p)
	return dst
}

// WalkSubprefixes calls fn for every subprefix of p with length in
// (p.Len(), maxLen], in depth-first pre-order. If fn returns false the walk
// skips that subtree. The walk panics if maxLen implies more than 1<<24
// visits on a single level.
func (p Prefix) WalkSubprefixes(maxLen uint8, fn func(Prefix) bool) {
	if maxLen > p.MaxLen() {
		maxLen = p.MaxLen()
	}
	if p.NumSubprefixes(maxLen) > 1<<24 {
		panic(fmt.Sprintf("prefix: refusing to walk %s down to /%d", p, maxLen))
	}
	var rec func(q Prefix)
	rec = func(q Prefix) {
		if q.len >= maxLen {
			return
		}
		for bit := uint8(0); bit < 2; bit++ {
			c := q.Child(bit)
			if fn(c) {
				rec(c)
			}
		}
	}
	rec(p)
}

// CommonPrefixLen returns the length of the longest prefix containing both
// p and q — CommonAncestor's length without materializing the ancestor,
// for hot paths (trie pre-sizing) that only need the shared bit count.
// Both must share a family or CommonPrefixLen panics.
func CommonPrefixLen(p, q Prefix) uint8 {
	if p.fam != q.fam {
		panic("prefix: CommonPrefixLen across families")
	}
	l := p.len
	if q.len < l {
		l = q.len
	}
	if d := commonBits(p.hi, p.lo, q.hi, q.lo); d < l {
		return d
	}
	return l
}

// CommonAncestor returns the longest prefix containing both p and q. Both
// must share a family or CommonAncestor panics.
func CommonAncestor(p, q Prefix) Prefix {
	if p.fam != q.fam {
		panic("prefix: CommonAncestor across families")
	}
	l := p.len
	if q.len < l {
		l = q.len
	}
	// Find the first differing bit within the first l bits.
	d := commonBits(p.hi, p.lo, q.hi, q.lo)
	if d < l {
		l = d
	}
	hi, lo := maskBits(p.hi, p.lo, l)
	return Prefix{hi: hi, lo: lo, len: l, fam: p.fam}
}

// commonBits returns the number of leading bits shared by the two 128-bit values.
func commonBits(ahi, alo, bhi, blo uint64) uint8 {
	if x := ahi ^ bhi; x != 0 {
		return uint8(leadingZeros64(x))
	}
	if x := alo ^ blo; x != 0 {
		return 64 + uint8(leadingZeros64(x))
	}
	return 128
}

func leadingZeros64(x uint64) int {
	n := 0
	if x>>32 == 0 {
		n += 32
		x <<= 32
	}
	if x>>48 == 0 {
		n += 16
		x <<= 16
	}
	if x>>56 == 0 {
		n += 8
		x <<= 8
	}
	if x>>60 == 0 {
		n += 4
		x <<= 4
	}
	if x>>62 == 0 {
		n += 2
		x <<= 2
	}
	if x>>63 == 0 {
		n++
	}
	return n
}

// Sort sorts prefixes in canonical order (see Compare) using an in-place
// pattern-defeating-free quicksort via the standard library contract.
func Sort(ps []Prefix) {
	sortSlice(ps, func(a, b Prefix) bool { return a.Compare(b) < 0 })
}
