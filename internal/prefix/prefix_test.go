package prefix

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		fam  Family
		len  uint8
		want string // canonical re-rendering
	}{
		{"0.0.0.0/0", IPv4, 0, "0.0.0.0/0"},
		{"10.0.0.0/8", IPv4, 8, "10.0.0.0/8"},
		{"168.122.0.0/16", IPv4, 16, "168.122.0.0/16"},
		{"168.122.225.0/24", IPv4, 24, "168.122.225.0/24"},
		{"255.255.255.255/32", IPv4, 32, "255.255.255.255/32"},
		{"87.254.32.0/19", IPv4, 19, "87.254.32.0/19"},
		{"10.1.2.3/8", IPv4, 8, "10.0.0.0/8"}, // host bits cleared
		{"::/0", IPv6, 0, "::/0"},
		{"2001:db8::/32", IPv6, 32, "2001:db8::/32"},
		{"2001:db8:0:0:0:0:0:0/32", IPv6, 32, "2001:db8::/32"},
		{"2001:db8::1/128", IPv6, 128, "2001:db8::1/128"},
		{"fe80::1:2:3/64", IPv6, 64, "fe80::/64"},
		{"::ffff:0:0/96", IPv6, 96, "::ffff:0:0/96"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if p.Family() != c.fam || p.Len() != c.len {
			t.Errorf("Parse(%q) = family %v len %d, want %v/%d", c.in, p.Family(), p.Len(), c.fam, c.len)
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{
		"", "10.0.0.0", "10.0.0.0/33", "10.0.0/8", "10.0.0.0.0/8",
		"256.0.0.0/8", "10.0.0.0/-1", "10.0.0.0/x", "01.2.3.4/8",
		"2001:db8::/129", "2001:db8::g/32", "1:2:3:4:5:6:7:8:9/32",
		"::1::2/32", "2001:db8/32", "1:2:3/32",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, l8 uint8, v6 bool) bool {
		fam := IPv4
		if v6 {
			fam = IPv6
		}
		l := l8 % (fam.MaxLen() + 1)
		if fam == IPv4 {
			hi &= 0xffffffff00000000
			lo = 0
		}
		p, err := Make(fam, hi, lo, l)
		if err != nil {
			return false
		}
		q, err := Parse(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	p16 := MustParse("168.122.0.0/16")
	p24 := MustParse("168.122.0.0/24")
	p24b := MustParse("168.122.225.0/24")
	other := MustParse("168.123.0.0/24")
	v6 := MustParse("2001:db8::/32")

	if !p16.Contains(p16) {
		t.Error("prefix must contain itself")
	}
	if !p16.Contains(p24) || !p16.Contains(p24b) {
		t.Error("/16 must contain its /24s")
	}
	if p24.Contains(p16) {
		t.Error("/24 must not contain its /16")
	}
	if p16.Contains(other) {
		t.Error("168.122/16 must not contain 168.123/24")
	}
	if p16.Contains(v6) || v6.Contains(p16) {
		t.Error("cross-family containment must be false")
	}
	if !p16.Overlaps(p24) || !p24.Overlaps(p16) || p24.Overlaps(p24b) {
		t.Error("Overlaps wrong")
	}
}

func TestParentChildSibling(t *testing.T) {
	p := MustParse("168.122.0.0/16")
	l, r := p.Child(0), p.Child(1)
	if l.String() != "168.122.0.0/17" || r.String() != "168.122.128.0/17" {
		t.Fatalf("children = %v, %v", l, r)
	}
	if l.Parent() != p || r.Parent() != p {
		t.Error("Parent(Child) != p")
	}
	if l.Sibling() != r || r.Sibling() != l {
		t.Error("Sibling wrong")
	}
	if l.LastBit() != 0 || r.LastBit() != 1 {
		t.Error("LastBit wrong")
	}
}

func TestChildSiblingProperty(t *testing.T) {
	f := func(hi, lo uint64, l8 uint8, v6 bool) bool {
		fam := IPv4
		if v6 {
			fam = IPv6
		}
		if fam == IPv4 {
			hi &= 0xffffffff00000000
			lo = 0
		}
		l := l8 % fam.MaxLen() // strictly less than max so Child is legal
		p, err := Make(fam, hi, lo, l)
		if err != nil {
			return false
		}
		c0, c1 := p.Child(0), p.Child(1)
		return c0 != c1 && c0.Parent() == p && c1.Parent() == p &&
			c0.Sibling() == c1 && p.Contains(c0) && p.Contains(c1) &&
			!c0.Contains(c1) && !c1.Contains(c0) &&
			c0.LastBit() == 0 && c1.LastBit() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBit(t *testing.T) {
	p := MustParse("128.0.0.0/1")
	if p.Bit(0) != 1 {
		t.Error("MSB of 128.0.0.0 must be 1")
	}
	q := MustParse("0.0.0.1/32")
	if q.Bit(31) != 1 || q.Bit(30) != 0 {
		t.Error("LSB bits wrong")
	}
	v6 := MustParse("::1/128")
	if v6.Bit(127) != 1 || v6.Bit(126) != 0 || v6.Bit(0) != 0 {
		t.Error("IPv6 bit extraction wrong")
	}
}

func TestCompareOrdering(t *testing.T) {
	ps := []Prefix{
		MustParse("2001:db8::/32"),
		MustParse("10.0.0.0/8"),
		MustParse("10.0.0.0/16"),
		MustParse("9.0.0.0/8"),
		MustParse("10.128.0.0/9"),
	}
	Sort(ps)
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9", "2001:db8::/32"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("sorted[%d] = %s, want %s (full: %v)", i, ps[i], w, ps)
		}
	}
}

func TestCompareProperties(t *testing.T) {
	f := func(a, b uint64, la, lb uint8) bool {
		p, err1 := Make(IPv4, a&0xffffffff00000000, 0, la%33)
		q, err2 := Make(IPv4, b&0xffffffff00000000, 0, lb%33)
		if err1 != nil || err2 != nil {
			return false
		}
		c := p.Compare(q)
		if c != -q.Compare(p) {
			return false
		}
		if (c == 0) != (p == q) {
			return false
		}
		return p.Compare(p) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNumSubprefixes(t *testing.T) {
	p := MustParse("168.122.0.0/16")
	if n := p.NumSubprefixes(16); n != 1 {
		t.Errorf("NumSubprefixes(16) = %d, want 1", n)
	}
	if n := p.NumSubprefixes(24); n != 256 {
		t.Errorf("NumSubprefixes(24) = %d, want 256", n)
	}
	if n := p.NumSubprefixes(15); n != 0 {
		t.Errorf("NumSubprefixes(15) = %d, want 0", n)
	}
	if n := p.NumSubprefixes(33); n != 0 {
		t.Errorf("NumSubprefixes(33) = %d, want 0", n)
	}
	if n := p.NumSubprefixesUpTo(18); n != 1+2+4 {
		t.Errorf("NumSubprefixesUpTo(18) = %d, want 7", n)
	}
	if n := p.NumSubprefixesUpTo(15); n != 0 {
		t.Errorf("NumSubprefixesUpTo(15) = %d, want 0", n)
	}
	v6 := MustParse("::/0")
	if n := v6.NumSubprefixes(128); n != math.MaxUint64 {
		t.Errorf("saturation expected, got %d", n)
	}
}

func TestSubprefixesEnumeration(t *testing.T) {
	p := MustParse("168.122.0.0/22")
	got := p.Subprefixes(nil, 24)
	if len(got) != 4 {
		t.Fatalf("got %d subprefixes, want 4", len(got))
	}
	want := []string{"168.122.0.0/24", "168.122.1.0/24", "168.122.2.0/24", "168.122.3.0/24"}
	for i, w := range want {
		if got[i].String() != w {
			t.Errorf("subprefix[%d] = %s, want %s", i, got[i], w)
		}
	}
	// Enumerating at own length returns the prefix itself.
	self := p.Subprefixes(nil, 22)
	if len(self) != 1 || self[0] != p {
		t.Errorf("Subprefixes at own length = %v", self)
	}
}

func TestWalkSubprefixes(t *testing.T) {
	p := MustParse("10.0.0.0/8")
	var visited []string
	p.WalkSubprefixes(10, func(q Prefix) bool {
		visited = append(visited, q.String())
		return true
	})
	// 2 prefixes at /9 + 4 at /10.
	if len(visited) != 6 {
		t.Fatalf("visited %d prefixes: %v", len(visited), visited)
	}
	// Pruned walk: refuse to descend into the 0-child.
	var count int
	p.WalkSubprefixes(10, func(q Prefix) bool {
		count++
		return q.LastBit() == 1
	})
	if count != 4 { // /9 pair, then only right /9's two children
		t.Fatalf("pruned walk visited %d, want 4", count)
	}
}

func TestCommonAncestor(t *testing.T) {
	a := MustParse("168.122.0.0/24")
	b := MustParse("168.122.225.0/24")
	got := CommonAncestor(a, b)
	if got.String() != "168.122.0.0/16" {
		t.Errorf("CommonAncestor = %s, want 168.122.0.0/16", got)
	}
	if CommonAncestor(a, a) != a {
		t.Error("CommonAncestor(a,a) != a")
	}
	p16 := MustParse("168.122.0.0/16")
	if CommonAncestor(a, p16) != p16 {
		t.Error("CommonAncestor with ancestor must be the ancestor")
	}
}

func TestCommonAncestorProperty(t *testing.T) {
	f := func(a, b uint64, la, lb uint8) bool {
		p, _ := Make(IPv4, a&0xffffffff00000000, 0, la%33)
		q, _ := Make(IPv4, b&0xffffffff00000000, 0, lb%33)
		c := CommonAncestor(p, q)
		if !c.Contains(p) || !c.Contains(q) {
			return false
		}
		// Maximality: extending c by the next bit of p must lose q (when possible).
		if c.Len() < p.Len() && c.Len() < q.Len() {
			ext := c.Child(p.Bit(c.Len()))
			if ext.Contains(p) && ext.Contains(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeErrors(t *testing.T) {
	if _, err := Make(IPv4, 0, 0, 33); err == nil {
		t.Error("IPv4 /33 must fail")
	}
	if _, err := Make(IPv6, 0, 0, 129); err == nil {
		t.Error("IPv6 /129 must fail")
	}
	if _, err := Make(IPv4, 0, 1, 32); err == nil {
		t.Error("IPv4 with low bits must fail")
	}
	if _, err := Make(Family(9), 0, 0, 0); err == nil {
		t.Error("unknown family must fail")
	}
}

func TestZeroPrefixInvalid(t *testing.T) {
	var p Prefix
	if p.IsValid() {
		t.Error("zero Prefix must be invalid")
	}
	if !strings.Contains(p.String(), "invalid") {
		t.Errorf("zero Prefix String = %q", p.String())
	}
}

func TestSearchContaining(t *testing.T) {
	ps := []Prefix{
		MustParse("0.0.0.0/0"),
		MustParse("168.0.0.0/8"),
		MustParse("168.122.0.0/16"),
		MustParse("168.122.0.0/24"),
		MustParse("10.0.0.0/8"),
	}
	Sort(ps)
	q := MustParse("168.122.0.0/24")
	idx := SearchContaining(ps, q)
	if len(idx) != 4 {
		t.Fatalf("found %d ancestors, want 4: %v", len(idx), idx)
	}
	for i := 1; i < len(idx); i++ {
		if ps[idx[i-1]].Len() >= ps[idx[i]].Len() {
			t.Error("ancestors must come shortest-first")
		}
	}
	q2 := MustParse("192.168.0.0/16")
	if got := SearchContaining(ps, q2); len(got) != 1 || ps[got[0]].Len() != 0 {
		t.Errorf("only /0 should contain %s, got %v", q2, got)
	}
}

func TestContainsConsistentWithSubprefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		l := uint8(rng.Intn(20))
		p, _ := Make(IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		sub := p.Subprefixes(nil, l+4)
		for _, s := range sub {
			if !p.Contains(s) {
				t.Fatalf("%s should contain enumerated %s", p, s)
			}
		}
		if uint64(len(sub)) != p.NumSubprefixes(l+4) {
			t.Fatalf("enumeration count mismatch for %s", p)
		}
		if !sort.SliceIsSorted(sub, func(i, j int) bool { return sub[i].Compare(sub[j]) < 0 }) {
			t.Fatalf("Subprefixes of %s not sorted", p)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if IPv4.String() != "IPv4" || IPv6.String() != "IPv6" {
		t.Error("Family.String wrong")
	}
	if !strings.Contains(Family(3).String(), "3") {
		t.Error("unknown family string should embed the value")
	}
}

func BenchmarkContains(b *testing.B) {
	p := MustParse("168.122.0.0/16")
	q := MustParse("168.122.225.0/24")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Contains(q) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("168.122.225.0/24"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		p, q string
		want uint8
	}{
		{"10.0.0.0/8", "10.0.0.0/8", 8},
		{"10.0.0.0/8", "10.0.0.0/16", 8},
		{"10.0.0.0/9", "10.128.0.0/9", 8},
		{"0.0.0.0/0", "255.0.0.0/8", 0},
		{"192.0.2.0/24", "198.51.100.0/24", 5},
		{"2001:db8::/32", "2001:db8:1::/48", 32},
		{"2001:db8::/128", "2001:db8::1/128", 127},
	}
	for _, c := range cases {
		p, q := MustParse(c.p), MustParse(c.q)
		if got := CommonPrefixLen(p, q); got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := CommonPrefixLen(q, p); got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.q, c.p, got, c.want)
		}
		// Must agree with CommonAncestor's length.
		if got, want := CommonPrefixLen(p, q), CommonAncestor(p, q).Len(); got != want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, CommonAncestor length %d", c.p, c.q, got, want)
		}
	}
}
