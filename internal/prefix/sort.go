package prefix

import "sort"

// sortSlice is a thin wrapper over sort.Slice kept separate so prefix.go
// stays free of the sort import.
func sortSlice(ps []Prefix, less func(a, b Prefix) bool) {
	sort.Slice(ps, func(i, j int) bool { return less(ps[i], ps[j]) })
}

// SearchContaining returns the indexes in the canonically sorted slice ps of
// all prefixes that contain q, shortest first. ps must be sorted with Sort.
func SearchContaining(ps []Prefix, q Prefix) []int {
	var out []int
	// Every ancestor of q sorts at or before q; walk candidate ancestors by
	// truncating q to each possible length and binary-searching.
	for l := uint8(0); l <= q.Len(); l++ {
		hi, lo := maskBits(q.hi, q.lo, l)
		cand := Prefix{hi: hi, lo: lo, len: l, fam: q.fam}
		i := sort.Search(len(ps), func(i int) bool { return ps[i].Compare(cand) >= 0 })
		if i < len(ps) && ps[i] == cand {
			out = append(out, i)
		}
	}
	return out
}
