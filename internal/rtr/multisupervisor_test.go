package rtr

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rov"
	"repro/internal/rpki"
)

// addVRPs returns a fresh set holding base plus the extra VRPs.
func addVRPs(base *rpki.Set, extra ...rpki.VRP) *rpki.Set {
	vrps := append([]rpki.VRP(nil), base.VRPs()...)
	vrps = append(vrps, extra...)
	return rpki.NewSet(vrps)
}

// TestMultiSupervisorFailoverFailback is the end-to-end cache-set proof
// against real servers: a primary and a (slightly divergent) secondary
// cache, the primary killed mid-run, and later restarted with a newer
// table. The MultiSupervisor must fail over to the secondary and fail back
// to the primary, and every one of those switches must reach the
// subscriber as a structural delta — the OnReset path must never fire,
// because no outage exceeds the Expire window. Run under -race by make
// race.
func TestMultiSupervisorFailoverFailback(t *testing.T) {
	tableP := testVRPs()
	// The secondary validated a moment later: one extra ROA. The failover
	// delta must announce exactly that difference.
	extraS := rpki.VRP{Prefix: mp("203.0.113.0/24"), MaxLength: 24, AS: 64501}
	tableS := addVRPs(tableP, extraS)

	srvP := NewServer(tableP)
	lp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrP := lp.Addr().String()
	go srvP.Serve(lp)

	srvS := NewServer(tableS)
	ls, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrS := ls.Addr().String()
	go srvS.Serve(ls)
	defer srvS.Close()

	live := rov.NewLiveIndex(rpki.NewSet(nil))
	var mu sync.Mutex
	resets := 0
	m := NewMultiSupervisor(
		Upstream{Name: "primary", Dial: func() (net.Conn, error) { return net.Dial("tcp", addrP) }},
		Upstream{Name: "secondary", Dial: func() (net.Conn, error) { return net.Dial("tcp", addrS) }},
	)
	m.BackoffMin = 2 * time.Millisecond
	m.BackoffMax = 20 * time.Millisecond
	m.Subscribe(live.Apply)
	m.OnReset(func(table []rpki.VRP) {
		mu.Lock()
		resets++
		mu.Unlock()
		live.ResetTo(table)
	})
	runErr := make(chan error, 1)
	go func() { runErr <- m.Run() }()
	defer func() {
		m.Stop()
		if err := <-runErr; err != nil {
			t.Errorf("Run returned %v after Stop", err)
		}
	}()

	// Startup: the preferred upstream serves, whatever order the two
	// supervisors happened to sync in.
	waitFor(t, func() bool { return m.Active() == 0 && liveTable(live).Equal(tableP) })
	if !m.Healthy() {
		t.Fatal("unhealthy after initial sync")
	}
	base := m.Stats()
	if !base.Upstreams[0].Up || !base.Upstreams[1].Up {
		t.Fatalf("both upstreams should be up after startup: %+v", base)
	}

	// Phase 1: kill the primary. Service must move to the secondary, and
	// the subscriber table must converge to the secondary's view by delta.
	sess := srvP.SessionID()
	srvP.Close()
	waitFor(t, func() bool { return m.Active() == 1 && liveTable(live).Equal(tableS) })
	st := m.Stats()
	if st.Upstreams[0].Failovers < base.Upstreams[0].Failovers+1 {
		t.Fatalf("failover not counted: %+v", st.Upstreams[0])
	}
	if st.Switches < base.Switches+1 {
		t.Fatalf("switch not counted: %d -> %d", base.Switches, st.Switches)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("failover must be a delta, not a rebuild: %+v", st)
	}

	// Phase 2: the secondary publishes an update while it serves; the
	// steady-state relay must keep flowing from the new active upstream.
	extraS2 := rpki.VRP{Prefix: mp("10.64.0.0/10"), MaxLength: 12, AS: 64502}
	tableS2 := addVRPs(tableS, extraS2)
	srvS.UpdateSet(tableS2)
	waitFor(t, func() bool { return liveTable(live).Equal(tableS2) })

	// Phase 3: the primary returns with a fresher table than it died with.
	// The supervisor must fail back to it, again by delta: the subscriber
	// goes from the secondary's table to the new primary table without a
	// reset, no matter that the two sides of that diff came from different
	// caches.
	tableP2 := addVRPs(tableP, rpki.VRP{Prefix: mp("192.0.2.0/24"), MaxLength: 24, AS: 64503})
	failbacks := st.Upstreams[0].Failbacks
	srvP2 := NewServer(tableP2)
	srvP2.SetSession(sess+1, 1)
	lp2 := relisten(t, addrP)
	go srvP2.Serve(lp2)
	defer srvP2.Close()

	waitFor(t, func() bool { return m.Active() == 0 && liveTable(live).Equal(tableP2) })
	end := m.Stats()
	if end.Upstreams[0].Failbacks < failbacks+1 {
		t.Fatalf("failback not counted: %+v", end.Upstreams[0])
	}
	if end.Rebuilds != 0 {
		t.Fatalf("failback must be a delta, not a rebuild: %+v", end)
	}
	mu.Lock()
	gotResets := resets
	mu.Unlock()
	if gotResets != 0 {
		t.Fatalf("OnReset fired %d times; every switch should have been a delta", gotResets)
	}
	if !m.Healthy() {
		t.Fatal("unhealthy at end although the active upstream just synced")
	}
	if end.Upstreams[0].Name != "primary" || end.Upstreams[1].Name != "secondary" {
		t.Fatalf("stats lost upstream names: %+v", end)
	}
	if !end.Upstreams[0].Active || end.Upstreams[1].Active {
		t.Fatalf("active flag wrong after failback: %+v", end)
	}
}

// TestMultiSupervisorExpiryRebuild exercises the one path that is allowed
// to rebuild: every cache stays unreachable past the Expire window the
// active cache advertised (1s here), so the carried table is no longer a
// valid diff base. When a cache returns — with a new session and a
// different table — the delivery must go through OnReset, and the
// supervisor must count it as a rebuild. Run under -race by make race.
func TestMultiSupervisorExpiryRebuild(t *testing.T) {
	table1 := testVRPs()
	srv1 := NewServer(table1)
	srv1.Expire = 1 // seconds; the supervisor adopts this advertised window
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	go srv1.Serve(l1)
	sess := srv1.SessionID()

	live := rov.NewLiveIndex(rpki.NewSet(nil))
	var mu sync.Mutex
	resets := 0
	m := NewMultiSupervisor(
		Upstream{Name: "only", Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }},
	)
	m.BackoffMin = 2 * time.Millisecond
	m.BackoffMax = 25 * time.Millisecond
	m.Subscribe(live.Apply)
	m.OnReset(func(table []rpki.VRP) {
		mu.Lock()
		resets++
		mu.Unlock()
		live.ResetTo(table)
	})
	runErr := make(chan error, 1)
	go func() { runErr <- m.Run() }()
	defer func() {
		m.Stop()
		if err := <-runErr; err != nil {
			t.Errorf("Run returned %v after Stop", err)
		}
	}()

	waitFor(t, func() bool { return liveTable(live).Equal(table1) })
	if !m.Healthy() {
		t.Fatal("unhealthy after initial sync")
	}

	// Total outage past the Expire window: health must decay to false
	// before any cache returns.
	srv1.Close()
	waitFor(t, func() bool { return !m.Healthy() })
	if a := m.Active(); a != -1 {
		t.Fatalf("Active() = %d during total outage, want -1", a)
	}

	// The cache returns as a different process: new session, new table.
	table2 := addVRPs(table1, rpki.VRP{Prefix: mp("198.51.100.0/24"), MaxLength: 24, AS: 64504})
	srv2 := NewServer(table2)
	srv2.Expire = 1
	srv2.SetSession(sess+1, 1)
	l2 := relisten(t, addr)
	go srv2.Serve(l2)
	defer srv2.Close()

	waitFor(t, func() bool { return liveTable(live).Equal(table2) })
	st := m.Stats()
	if st.Rebuilds < 1 {
		t.Fatalf("recovery from an expired outage must be a rebuild: %+v", st)
	}
	mu.Lock()
	gotResets := resets
	mu.Unlock()
	if gotResets < 1 {
		t.Fatal("OnReset never fired although the delivered table had expired")
	}
	if st.Upstreams[0].Failovers < 1 || st.Upstreams[0].Failbacks < 1 {
		t.Fatalf("outage and recovery not counted: %+v", st.Upstreams[0])
	}
	if a := m.Active(); a != 0 {
		t.Fatalf("Active() = %d after recovery, want 0", a)
	}
}
