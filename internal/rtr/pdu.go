// Package rtr implements the RPKI-to-Router protocol — RFC 6810 (version 0)
// and RFC 8210 (version 1) — the channel of Figure 1 through which an RPKI
// local cache pushes its validated (prefix, maxLength, origin AS) PDUs to
// routers. The package provides the binary PDU codec, a cache server with
// serial-numbered incremental updates, and a router-side client that
// maintains the validated prefix table routers feed into origin validation.
//
// Every PDU starts with a common 8-byte header:
//
//	0          8          16         24        31
//	+----------+----------+----------+----------+
//	| version  | PDU type |  session id / zero  |
//	+----------+----------+----------+----------+
//	|                 length                    |
//	+-------------------------------------------+
//
// followed by a type-specific body. All integers are big-endian.
package rtr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// Protocol versions.
const (
	Version0 byte = 0 // RFC 6810
	Version1 byte = 1 // RFC 8210
)

// PDU type codes.
const (
	TypeSerialNotify  byte = 0
	TypeSerialQuery   byte = 1
	TypeResetQuery    byte = 2
	TypeCacheResponse byte = 3
	TypeIPv4Prefix    byte = 4
	TypeIPv6Prefix    byte = 6
	TypeEndOfData     byte = 7
	TypeCacheReset    byte = 8
	TypeRouterKey     byte = 9 // version 1 only
	TypeErrorReport   byte = 10
)

// Error Report codes (RFC 6810 §10, RFC 8210 §12).
const (
	ErrCorruptData           uint16 = 0
	ErrInternalError         uint16 = 1
	ErrNoDataAvailable       uint16 = 2
	ErrInvalidRequest        uint16 = 3
	ErrUnsupportedVersion    uint16 = 4
	ErrUnsupportedPDUType    uint16 = 5
	ErrWithdrawalOfUnknown   uint16 = 6
	ErrDuplicateAnnouncement uint16 = 7
)

// Prefix PDU flags.
const (
	FlagWithdraw byte = 0 // bit 0 clear: withdraw
	FlagAnnounce byte = 1 // bit 0 set: announce
)

// MaxPDUSize bounds accepted PDUs; Error Report text is truncated to fit.
const MaxPDUSize = 1 << 16

const headerLen = 8

// PDU is one protocol data unit.
type PDU interface {
	// Type returns the PDU type code.
	Type() byte
	// write serializes the PDU (with header) for the given protocol version.
	write(w io.Writer, version byte) error
}

// SerialNotify tells routers new data is available at Serial.
type SerialNotify struct {
	SessionID uint16
	Serial    Serial
}

// SerialQuery asks the cache for changes since Serial.
type SerialQuery struct {
	SessionID uint16
	Serial    Serial
}

// ResetQuery asks the cache for the complete data set.
type ResetQuery struct{}

// CacheResponse opens a sequence of prefix PDUs.
type CacheResponse struct {
	SessionID uint16
}

// Prefix announces or withdraws one VRP. It serializes as an IPv4 Prefix or
// IPv6 Prefix PDU depending on the VRP's family.
type Prefix struct {
	Flags byte
	VRP   rpki.VRP
}

// EndOfData closes an update sequence. The Refresh/Retry/Expire timers exist
// only in version 1 and are ignored when marshalling version 0.
type EndOfData struct {
	SessionID uint16
	Serial    Serial
	Refresh   uint32
	Retry     uint32
	Expire    uint32
}

// CacheReset tells the router its serial is unusable: fall back to a Reset
// Query.
type CacheReset struct{}

// RouterKey is the version-1 BGPsec router key PDU. The repository does not
// evaluate BGPsec (the paper's setting is "RPKI deployed, BGPsec not"), so
// the fields are carried opaquely for protocol completeness.
type RouterKey struct {
	Flags byte
	SKI   [20]byte
	AS    rpki.ASN
	SPKI  []byte
}

// ErrorReport carries an error code, the PDU that caused it, and diagnostic
// text.
type ErrorReport struct {
	Code       uint16
	CausingPDU []byte
	Text       string
}

// Error implements the error interface so an ErrorReport can be returned
// directly from client calls.
func (e *ErrorReport) Error() string {
	return fmt.Sprintf("rtr: error report code %d: %s", e.Code, e.Text)
}

func (*SerialNotify) Type() byte  { return TypeSerialNotify }
func (*SerialQuery) Type() byte   { return TypeSerialQuery }
func (*ResetQuery) Type() byte    { return TypeResetQuery }
func (*CacheResponse) Type() byte { return TypeCacheResponse }
func (p *Prefix) Type() byte {
	if p.VRP.Prefix.Family() == prefix.IPv6 {
		return TypeIPv6Prefix
	}
	return TypeIPv4Prefix
}
func (*EndOfData) Type() byte   { return TypeEndOfData }
func (*CacheReset) Type() byte  { return TypeCacheReset }
func (*RouterKey) Type() byte   { return TypeRouterKey }
func (*ErrorReport) Type() byte { return TypeErrorReport }

func writeHeader(buf []byte, version, pduType byte, sessionOrZero uint16, length uint32) {
	buf[0] = version
	buf[1] = pduType
	binary.BigEndian.PutUint16(buf[2:], sessionOrZero)
	binary.BigEndian.PutUint32(buf[4:], length)
}

func (p *SerialNotify) write(w io.Writer, version byte) error {
	var buf [12]byte
	writeHeader(buf[:], version, TypeSerialNotify, p.SessionID, 12)
	binary.BigEndian.PutUint32(buf[8:], uint32(p.Serial))
	_, err := w.Write(buf[:])
	return err
}

func (p *SerialQuery) write(w io.Writer, version byte) error {
	var buf [12]byte
	writeHeader(buf[:], version, TypeSerialQuery, p.SessionID, 12)
	binary.BigEndian.PutUint32(buf[8:], uint32(p.Serial))
	_, err := w.Write(buf[:])
	return err
}

func (p *ResetQuery) write(w io.Writer, version byte) error {
	var buf [8]byte
	writeHeader(buf[:], version, TypeResetQuery, 0, 8)
	_, err := w.Write(buf[:])
	return err
}

func (p *CacheResponse) write(w io.Writer, version byte) error {
	var buf [8]byte
	writeHeader(buf[:], version, TypeCacheResponse, p.SessionID, 8)
	_, err := w.Write(buf[:])
	return err
}

func (p *Prefix) write(w io.Writer, version byte) error {
	var buf [32]byte
	_, err := w.Write(appendPrefix(buf[:0], version, p))
	return err
}

// appendPrefix appends the wire encoding of an IPv4/IPv6 Prefix PDU to buf
// and returns the extended slice. It is the encoder behind (*Prefix).write,
// exposed in append form so full-table streaming can encode tens of
// thousands of prefixes through one reused buffer: handing a stack array to
// an io.Writer forces it to escape, which costs an allocation per PDU.
func appendPrefix(buf []byte, version byte, p *Prefix) []byte {
	v := p.VRP
	hi, lo := v.Prefix.Bits()
	if v.Prefix.Family() == prefix.IPv4 {
		var b [20]byte
		writeHeader(b[:], version, TypeIPv4Prefix, 0, 20)
		b[8] = p.Flags
		b[9] = v.Prefix.Len()
		b[10] = v.MaxLength
		binary.BigEndian.PutUint32(b[12:], uint32(hi>>32))
		binary.BigEndian.PutUint32(b[16:], uint32(v.AS))
		return append(buf, b[:]...)
	}
	var b [32]byte
	writeHeader(b[:], version, TypeIPv6Prefix, 0, 32)
	b[8] = p.Flags
	b[9] = v.Prefix.Len()
	b[10] = v.MaxLength
	binary.BigEndian.PutUint64(b[12:], hi)
	binary.BigEndian.PutUint64(b[20:], lo)
	binary.BigEndian.PutUint32(b[28:], uint32(v.AS))
	return append(buf, b[:]...)
}

func (p *EndOfData) write(w io.Writer, version byte) error {
	if version == Version0 {
		var buf [12]byte
		writeHeader(buf[:], version, TypeEndOfData, p.SessionID, 12)
		binary.BigEndian.PutUint32(buf[8:], uint32(p.Serial))
		_, err := w.Write(buf[:])
		return err
	}
	var buf [24]byte
	writeHeader(buf[:], version, TypeEndOfData, p.SessionID, 24)
	binary.BigEndian.PutUint32(buf[8:], uint32(p.Serial))
	binary.BigEndian.PutUint32(buf[12:], p.Refresh)
	binary.BigEndian.PutUint32(buf[16:], p.Retry)
	binary.BigEndian.PutUint32(buf[20:], p.Expire)
	_, err := w.Write(buf[:])
	return err
}

func (p *CacheReset) write(w io.Writer, version byte) error {
	var buf [8]byte
	writeHeader(buf[:], version, TypeCacheReset, 0, 8)
	_, err := w.Write(buf[:])
	return err
}

func (p *RouterKey) write(w io.Writer, version byte) error {
	if version == Version0 {
		return errors.New("rtr: Router Key PDU requires version 1")
	}
	length := uint32(headerLen + 20 + 4 + len(p.SPKI))
	buf := make([]byte, length)
	writeHeader(buf, version, TypeRouterKey, uint16(p.Flags)<<8, length)
	copy(buf[8:], p.SKI[:])
	binary.BigEndian.PutUint32(buf[28:], uint32(p.AS))
	copy(buf[32:], p.SPKI)
	_, err := w.Write(buf)
	return err
}

func (p *ErrorReport) write(w io.Writer, version byte) error {
	// Both variable fields are truncated so the whole PDU fits MaxPDUSize.
	const fieldCap = (MaxPDUSize - headerLen - 8) / 2
	text := []byte(p.Text)
	if len(text) > fieldCap {
		text = text[:fieldCap]
	}
	causing := p.CausingPDU
	if len(causing) > fieldCap {
		causing = causing[:fieldCap]
	}
	length := uint32(headerLen + 4 + len(causing) + 4 + len(text))
	buf := make([]byte, length)
	writeHeader(buf, version, TypeErrorReport, p.Code, length)
	off := headerLen
	binary.BigEndian.PutUint32(buf[off:], uint32(len(causing)))
	off += 4
	copy(buf[off:], causing)
	off += len(causing)
	binary.BigEndian.PutUint32(buf[off:], uint32(len(text)))
	off += 4
	copy(buf[off:], text)
	_, err := w.Write(buf)
	return err
}

// WritePDU serializes one PDU for the given protocol version.
func WritePDU(w io.Writer, version byte, p PDU) error {
	if version != Version0 && version != Version1 {
		return fmt.Errorf("rtr: unknown protocol version %d", version)
	}
	return p.write(w, version)
}

// ProtocolError describes a malformed or unexpected PDU and maps onto an
// Error Report code.
type ProtocolError struct {
	Code uint16
	Msg  string
}

func (e *ProtocolError) Error() string { return "rtr: " + e.Msg }

func protoErr(code uint16, format string, args ...interface{}) error {
	return &ProtocolError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// ReadPDU reads and parses one PDU. It returns the PDU, its version byte,
// and an error. Malformed input yields a *ProtocolError whose Code is
// suitable for an Error Report.
func ReadPDU(r io.Reader) (PDU, byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	version := hdr[0]
	pduType := hdr[1]
	sess := binary.BigEndian.Uint16(hdr[2:])
	length := binary.BigEndian.Uint32(hdr[4:])
	if version != Version0 && version != Version1 {
		return nil, version, protoErr(ErrUnsupportedVersion, "unsupported version %d", version)
	}
	if length < headerLen || length > MaxPDUSize {
		return nil, version, protoErr(ErrCorruptData, "bad PDU length %d", length)
	}
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, version, err
	}
	need := func(n int) error {
		if len(body) != n {
			return protoErr(ErrCorruptData, "type %d PDU body length %d, want %d", pduType, len(body), n)
		}
		return nil
	}
	switch pduType {
	case TypeSerialNotify:
		if err := need(4); err != nil {
			return nil, version, err
		}
		return &SerialNotify{SessionID: sess, Serial: Serial(binary.BigEndian.Uint32(body))}, version, nil
	case TypeSerialQuery:
		if err := need(4); err != nil {
			return nil, version, err
		}
		return &SerialQuery{SessionID: sess, Serial: Serial(binary.BigEndian.Uint32(body))}, version, nil
	case TypeResetQuery:
		if err := need(0); err != nil {
			return nil, version, err
		}
		return &ResetQuery{}, version, nil
	case TypeCacheResponse:
		if err := need(0); err != nil {
			return nil, version, err
		}
		return &CacheResponse{SessionID: sess}, version, nil
	case TypeIPv4Prefix:
		if err := need(12); err != nil {
			return nil, version, err
		}
		return parsePrefixPDU(body, prefix.IPv4, version)
	case TypeIPv6Prefix:
		if err := need(24); err != nil {
			return nil, version, err
		}
		return parsePrefixPDU(body, prefix.IPv6, version)
	case TypeEndOfData:
		if version == Version0 {
			if err := need(4); err != nil {
				return nil, version, err
			}
			return &EndOfData{SessionID: sess, Serial: Serial(binary.BigEndian.Uint32(body))}, version, nil
		}
		if err := need(16); err != nil {
			return nil, version, err
		}
		return &EndOfData{
			SessionID: sess,
			Serial:    Serial(binary.BigEndian.Uint32(body)),
			Refresh:   binary.BigEndian.Uint32(body[4:]),
			Retry:     binary.BigEndian.Uint32(body[8:]),
			Expire:    binary.BigEndian.Uint32(body[12:]),
		}, version, nil
	case TypeCacheReset:
		if err := need(0); err != nil {
			return nil, version, err
		}
		return &CacheReset{}, version, nil
	case TypeRouterKey:
		if version == Version0 {
			return nil, version, protoErr(ErrUnsupportedPDUType, "Router Key PDU in version 0")
		}
		if len(body) < 24 {
			return nil, version, protoErr(ErrCorruptData, "short Router Key PDU")
		}
		rk := &RouterKey{Flags: byte(sess >> 8), AS: rpki.ASN(binary.BigEndian.Uint32(body[20:24]))}
		copy(rk.SKI[:], body[:20])
		rk.SPKI = append([]byte(nil), body[24:]...)
		return rk, version, nil
	case TypeErrorReport:
		return parseErrorReport(body, sess, version)
	default:
		return nil, version, protoErr(ErrUnsupportedPDUType, "unknown PDU type %d", pduType)
	}
}

func parsePrefixPDU(body []byte, fam prefix.Family, version byte) (PDU, byte, error) {
	flags, plen, maxLen := body[0], body[1], body[2]
	var hi, lo uint64
	var as rpki.ASN
	if fam == prefix.IPv4 {
		hi = uint64(binary.BigEndian.Uint32(body[4:])) << 32
		as = rpki.ASN(binary.BigEndian.Uint32(body[8:]))
	} else {
		hi = binary.BigEndian.Uint64(body[4:])
		lo = binary.BigEndian.Uint64(body[12:])
		as = rpki.ASN(binary.BigEndian.Uint32(body[20:]))
	}
	p, err := prefix.Make(fam, hi, lo, plen)
	if err != nil {
		return nil, version, protoErr(ErrCorruptData, "bad prefix in PDU: %v", err)
	}
	v := rpki.VRP{Prefix: p, MaxLength: maxLen, AS: as}
	if err := v.Validate(); err != nil {
		return nil, version, protoErr(ErrCorruptData, "bad VRP in PDU: %v", err)
	}
	return &Prefix{Flags: flags & FlagAnnounce, VRP: v}, version, nil
}

func parseErrorReport(body []byte, code uint16, version byte) (PDU, byte, error) {
	if len(body) < 8 {
		return nil, version, protoErr(ErrCorruptData, "short Error Report")
	}
	cl := binary.BigEndian.Uint32(body)
	if uint64(4+cl+4) > uint64(len(body)) {
		return nil, version, protoErr(ErrCorruptData, "Error Report causing-PDU length overflow")
	}
	causing := append([]byte(nil), body[4:4+cl]...)
	rest := body[4+cl:]
	tl := binary.BigEndian.Uint32(rest)
	if uint64(4+tl) > uint64(len(rest)) {
		return nil, version, protoErr(ErrCorruptData, "Error Report text length overflow")
	}
	return &ErrorReport{Code: code, CausingPDU: causing, Text: string(rest[4 : 4+tl])}, version, nil
}
