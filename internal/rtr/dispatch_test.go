package rtr

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rpki"
)

// TestIdleErrorReportFailsClient pins the dispatch loop's idle-state
// handling of an Error Report arriving between syncs: RFC 8210 §8 makes it
// fatal to the session, so the client must surface it as the sticky error,
// close the connection, and fail every subsequent call fast. The old
// blocking-reader design would instead have misparsed it as an unexpected
// PDU inside the next exchange.
func TestIdleErrorReportFailsClient(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	c := NewClient(cliConn)
	defer c.Close()

	// Unsolicited Error Report while no exchange is in flight (net.Pipe
	// writes rendezvous with the dispatch loop's read, hence the goroutine).
	go WritePDU(srvConn, Version1, &ErrorReport{Code: ErrInternalError, Text: "cache going down"})

	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch loop did not terminate on idle Error Report")
	}
	var er *ErrorReport
	if !errors.As(c.Err(), &er) || er.Code != ErrInternalError {
		t.Fatalf("sticky error = %v, want the internal-error Error Report", c.Err())
	}
	// Failed client: every call reports the same sticky error without
	// touching the (closed) connection.
	if _, err := c.Sync(); !errors.As(err, &er) {
		t.Fatalf("Sync after failure = %v, want the Error Report", err)
	}
	if _, err := c.WaitNotify(); !errors.As(err, &er) {
		t.Fatalf("WaitNotify after failure = %v, want the Error Report", err)
	}
	// The client closed its side as §8 requires: the cache sees EOF.
	srvConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := ReadPDU(srvConn); err == nil {
		t.Fatal("client did not close the connection after the idle Error Report")
	}
}

// TestConcurrentSyncResetDispatch hammers the dispatch loop with concurrent
// Sync and Reset callers while the cache keeps updating (run under -race by
// make race): the at-most-one-in-flight serialization must keep every
// exchange intact and the table convergent.
func TestConcurrentSyncResetDispatch(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines, rounds = 4, 8
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					if _, err := c.Sync(); err != nil {
						errs <- err
						return
					}
				} else {
					if err := c.Reset(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	// Updates (and their Serial Notifies) race the exchanges.
	cur := set
	for i := 0; i < rounds; i++ {
		cur = rpki.NewSet(append(cur.VRPs(),
			rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(8 + i), AS: rpki.ASN(300 + i)}))
		srv.UpdateSet(cur)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent exchange failed: %v", err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if !c.Set().Equal(cur) {
		t.Fatalf("after concurrent exchanges: %d VRPs, want %d", c.Len(), cur.Len())
	}
}

// TestSubscribeMultipleConsumers pins the Subscribe contract: every
// registered consumer — and the deprecated OnDelta hook, first — sees every
// applied delta exactly once, sequentially, in registration order, with
// delivery completing before the Sync that produced it returns. A second
// consumer keeps simple counters, the cmd/rtrclient pattern.
func TestSubscribeMultipleConsumers(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Delivery is serialized on the dispatch goroutine and happens-before
	// Sync returns, so none of this state needs locking.
	var order []string
	mirror := map[rpki.VRP]struct{}{}
	var announced, withdrawn int
	c.OnDelta = func(ann, wd []rpki.VRP) {
		order = append(order, "ondelta")
	}
	c.Subscribe(func(ann, wd []rpki.VRP) {
		order = append(order, "mirror")
		for _, v := range ann {
			if _, ok := mirror[v]; ok {
				t.Errorf("announced already-present VRP %s", v)
			}
			mirror[v] = struct{}{}
		}
		for _, v := range wd {
			if _, ok := mirror[v]; !ok {
				t.Errorf("withdrew absent VRP %s", v)
			}
			delete(mirror, v)
		}
	})
	c.Subscribe(func(ann, wd []rpki.VRP) {
		order = append(order, "counter")
		announced += len(ann)
		withdrawn += len(wd)
	})
	wantOrder := func(want ...string) {
		t.Helper()
		if len(order) != len(want) {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("delivery order %v, want %v", order, want)
			}
		}
	}
	checkMirror := func() {
		t.Helper()
		vrps := make([]rpki.VRP, 0, len(mirror))
		for v := range mirror {
			vrps = append(vrps, v)
		}
		if got := rpki.NewSet(vrps); !got.Equal(c.Set()) {
			t.Fatalf("subscriber mirror %v != table %v", got.VRPs(), c.Set().VRPs())
		}
	}

	if _, err := c.Sync(); err != nil { // initial full sync
		t.Fatal(err)
	}
	wantOrder("ondelta", "mirror", "counter")
	checkMirror()
	if announced != set.Len() || withdrawn != 0 {
		t.Fatalf("counters after full sync: +%d -%d, want +%d -0", announced, withdrawn, set.Len())
	}

	// Incremental update: one VRP dropped, one added; all consumers fire
	// again, same order.
	next := rpki.NewSet(append(set.VRPs()[1:],
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	srv.UpdateSet(next)
	if _, err := c.WaitNotify(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	wantOrder("ondelta", "mirror", "counter", "ondelta", "mirror", "counter")
	checkMirror()
	if announced != set.Len()+1 || withdrawn != 1 {
		t.Fatalf("counters after incremental sync: +%d -%d, want +%d -1", announced, withdrawn, set.Len()+1)
	}

	// A no-op sync delivers nothing.
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	wantOrder("ondelta", "mirror", "counter", "ondelta", "mirror", "counter")
	checkMirror()
}
