package rtr

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rpki"
)

// TestIdleErrorReportFailsClient pins the dispatch loop's idle-state
// handling of an Error Report arriving between syncs: RFC 8210 §8 makes it
// fatal to the session, so the client must surface it as the sticky error,
// close the connection, and fail every subsequent call fast. The old
// blocking-reader design would instead have misparsed it as an unexpected
// PDU inside the next exchange.
func TestIdleErrorReportFailsClient(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	c := NewClient(cliConn)
	defer c.Close()

	// Unsolicited Error Report while no exchange is in flight (net.Pipe
	// writes rendezvous with the dispatch loop's read, hence the goroutine).
	go WritePDU(srvConn, Version1, &ErrorReport{Code: ErrInternalError, Text: "cache going down"})

	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch loop did not terminate on idle Error Report")
	}
	var er *ErrorReport
	if !errors.As(c.Err(), &er) || er.Code != ErrInternalError {
		t.Fatalf("sticky error = %v, want the internal-error Error Report", c.Err())
	}
	// Failed client: every call reports the same sticky error without
	// touching the (closed) connection.
	if _, err := c.Sync(); !errors.As(err, &er) {
		t.Fatalf("Sync after failure = %v, want the Error Report", err)
	}
	if _, err := c.WaitNotify(); !errors.As(err, &er) {
		t.Fatalf("WaitNotify after failure = %v, want the Error Report", err)
	}
	// The client closed its side as §8 requires: the cache sees EOF.
	srvConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := ReadPDU(srvConn); err == nil {
		t.Fatal("client did not close the connection after the idle Error Report")
	}
}

// TestConcurrentSyncResetDispatch hammers the dispatch loop with concurrent
// Sync and Reset callers while the cache keeps updating (run under -race by
// make race): the at-most-one-in-flight serialization must keep every
// exchange intact and the table convergent.
func TestConcurrentSyncResetDispatch(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines, rounds = 4, 8
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					if _, err := c.Sync(); err != nil {
						errs <- err
						return
					}
				} else {
					if err := c.Reset(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	// Updates (and their Serial Notifies) race the exchanges.
	cur := set
	for i := 0; i < rounds; i++ {
		cur = rpki.NewSet(append(cur.VRPs(),
			rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(8 + i), AS: rpki.ASN(300 + i)}))
		srv.UpdateSet(cur)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent exchange failed: %v", err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if !c.Set().Equal(cur) {
		t.Fatalf("after concurrent exchanges: %d VRPs, want %d", c.Len(), cur.Len())
	}
}

// TestSubscribeMultipleConsumers pins the post-fan-out Subscribe contract:
// every registered consumer sees every applied non-empty delta exactly once
// and in commit order on its own drainer goroutine; the deprecated OnDelta
// hook still fires synchronously before Sync returns; and FlushSubscribers
// is the point after which consumer state may be asserted on. A second
// consumer keeps simple counters, the cmd/rtrclient pattern.
func TestSubscribeMultipleConsumers(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// OnDelta keeps the synchronous contract: delivery on the dispatch
	// goroutine happens-before Sync returns, no locking needed.
	onDeltaCalls := 0
	c.OnDelta = func(ann, wd []rpki.VRP) {
		onDeltaCalls++
	}
	// Subscribe consumers each run on their own drainer goroutine: their
	// state is read only after FlushSubscribers, which is the documented
	// synchronization point, so plain fields are still race-free.
	mirror := map[rpki.VRP]struct{}{}
	mirrorDeliveries := 0
	c.Subscribe(func(ann, wd []rpki.VRP) {
		mirrorDeliveries++
		for _, v := range ann {
			if _, ok := mirror[v]; ok {
				t.Errorf("announced already-present VRP %s", v)
			}
			mirror[v] = struct{}{}
		}
		for _, v := range wd {
			if _, ok := mirror[v]; !ok {
				t.Errorf("withdrew absent VRP %s", v)
			}
			delete(mirror, v)
		}
	})
	var announced, withdrawn, counterDeliveries int
	c.Subscribe(func(ann, wd []rpki.VRP) {
		counterDeliveries++
		announced += len(ann)
		withdrawn += len(wd)
	})
	checkDeliveries := func(want int) {
		t.Helper()
		c.FlushSubscribers()
		if onDeltaCalls != want || mirrorDeliveries != want || counterDeliveries != want {
			t.Fatalf("deliveries ondelta/mirror/counter = %d/%d/%d, want %d each",
				onDeltaCalls, mirrorDeliveries, counterDeliveries, want)
		}
	}
	checkMirror := func() {
		t.Helper()
		vrps := make([]rpki.VRP, 0, len(mirror))
		for v := range mirror {
			vrps = append(vrps, v)
		}
		if got := rpki.NewSet(vrps); !got.Equal(c.Set()) {
			t.Fatalf("subscriber mirror %v != table %v", got.VRPs(), c.Set().VRPs())
		}
	}

	if _, err := c.Sync(); err != nil { // initial full sync
		t.Fatal(err)
	}
	if onDeltaCalls != 1 {
		t.Fatalf("OnDelta fired %d times before Sync returned, want 1 (synchronous contract)", onDeltaCalls)
	}
	checkDeliveries(1)
	checkMirror()
	if announced != set.Len() || withdrawn != 0 {
		t.Fatalf("counters after full sync: +%d -%d, want +%d -0", announced, withdrawn, set.Len())
	}

	// Incremental update: one VRP dropped, one added; every consumer sees
	// exactly one more delta.
	next := rpki.NewSet(append(set.VRPs()[1:],
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	srv.UpdateSet(next)
	if _, err := c.WaitNotify(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	checkDeliveries(2)
	checkMirror()
	if announced != set.Len()+1 || withdrawn != 1 {
		t.Fatalf("counters after incremental sync: +%d -%d, want +%d -1", announced, withdrawn, set.Len()+1)
	}

	// A no-op incremental sync delivers nothing.
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	checkDeliveries(2)
	checkMirror()
}

// TestSubscribeSlowConsumerBackpressure pins the fan-out's backpressure
// semantics: a consumer that blocks does not stall the dispatch loop (other
// consumers and Sync keep making progress), and once it falls more than
// SubscribeQueue updates behind, its pending updates coalesce to their
// exact net effect — fewer, larger deliveries; no delta lost.
func TestSubscribeSlowConsumerBackpressure(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SubscribeQueue = 2

	// The slow consumer parks on a gate after its first delivery; its
	// mirror applies every delta it eventually sees.
	gate := make(chan struct{})
	slowMirror := map[rpki.VRP]struct{}{}
	slowDeliveries := 0
	c.Subscribe(func(ann, wd []rpki.VRP) {
		slowDeliveries++
		if slowDeliveries == 1 {
			<-gate
		}
		for _, v := range ann {
			if _, ok := slowMirror[v]; ok {
				t.Errorf("slow consumer: announced already-present VRP %s", v)
			}
			slowMirror[v] = struct{}{}
		}
		for _, v := range wd {
			if _, ok := slowMirror[v]; !ok {
				t.Errorf("slow consumer: withdrew absent VRP %s", v)
			}
			delete(slowMirror, v)
		}
	})
	fastDeliveries := 0
	c.Subscribe(func(ann, wd []rpki.VRP) { fastDeliveries++ })

	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// With the slow consumer wedged in delivery #1, run many more updates
	// than its queue holds. Sync must keep returning — the dispatch loop is
	// not stalled — and the fast consumer must see every delta.
	const updates = 8
	cur := set
	for i := 0; i < updates; i++ {
		cur = rpki.NewSet(append(cur.VRPs(),
			rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(8 + i), AS: rpki.ASN(400 + i)}))
		srv.UpdateSet(cur)
		if _, err := c.WaitNotify(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	c.FlushSubscribers()

	if fastDeliveries != updates+1 {
		t.Errorf("fast consumer saw %d deliveries, want %d", fastDeliveries, updates+1)
	}
	// The slow consumer saw the wedged delivery plus at most SubscribeQueue
	// coalesced ones — strictly fewer than the update count — and its
	// mirror still converged to the exact final table.
	if slowDeliveries > 1+2 || slowDeliveries < 2 {
		t.Errorf("slow consumer saw %d deliveries, want 2..3 (coalesced)", slowDeliveries)
	}
	vrps := make([]rpki.VRP, 0, len(slowMirror))
	for v := range slowMirror {
		vrps = append(vrps, v)
	}
	if got := rpki.NewSet(vrps); !got.Equal(cur) {
		t.Fatalf("slow consumer mirror has %d VRPs, want %d — a coalesced delta was lost", got.Len(), cur.Len())
	}
}
