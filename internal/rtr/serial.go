package rtr

// Serial-number arithmetic (RFC 1982, referenced by RFC 6810 §5.9): RTR
// serials wrap at 2^32, so ordering must be computed modulo the ring. The
// server's UpdateSet increments monotonically, but a long-lived cache will
// eventually wrap, and clients comparing "is the notify newer than my
// state?" must not break when it does.

// SerialLess reports whether serial a precedes b on the RFC 1982 ring.
// Antipodal pairs (distance exactly 2^31) are incomparable; SerialLess
// returns false for both orders, as the RFC prescribes.
func SerialLess(a, b uint32) bool {
	if a == b {
		return false
	}
	d := b - a // wrapping subtraction
	return d != 0 && d < 1<<31
}

// SerialNewer reports whether candidate is strictly newer than current,
// treating an antipodal candidate as NOT newer (forcing a reset instead of
// guessing).
func SerialNewer(candidate, current uint32) bool {
	return SerialLess(current, candidate)
}

// SerialAdvance returns the serial n steps after s on the ring.
func SerialAdvance(s uint32, n uint32) uint32 { return s + n }
