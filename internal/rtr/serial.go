package rtr

// Serial-number arithmetic (RFC 1982, referenced by RFC 6810 §5.9): RTR
// serials wrap at 2^32, so ordering must be computed modulo the ring. The
// server's UpdateSet increments monotonically, but a long-lived cache will
// eventually wrap, and clients comparing "is the notify newer than my
// state?" must not break when it does.

// Serial is an RTR serial number: a point on the RFC 1982 ring, not an
// integer. Ordering is only defined modulo the ring, so raw `<`/`>`
// comparisons and raw subtraction on Serial values are wrong the moment a
// long-lived cache wraps past 2^32 — all ordering must go through
// SerialLess/SerialNewer. The reprolint serialcmp analyzer enforces this
// mechanically; code that genuinely needs wrapping integer arithmetic
// converts through uint32 explicitly (as the wire codec does) or carries a
// `//lint:ignore serialcmp <reason>` justification.
type Serial uint32

// SerialLess reports whether serial a precedes b on the RFC 1982 ring.
// Antipodal pairs (distance exactly 2^31) are incomparable; SerialLess
// returns false for both orders, as the RFC prescribes.
func SerialLess(a, b Serial) bool {
	if a == b {
		return false
	}
	d := uint32(b) - uint32(a) // wrapping subtraction, deliberately on uint32
	return d != 0 && d < 1<<31
}

// SerialNewer reports whether candidate is strictly newer than current,
// treating an antipodal candidate as NOT newer (forcing a reset instead of
// guessing).
func SerialNewer(candidate, current Serial) bool {
	return SerialLess(current, candidate)
}

// SerialAdvance returns the serial n steps after s on the ring.
func SerialAdvance(s Serial, n uint32) Serial { return s + Serial(n) }
