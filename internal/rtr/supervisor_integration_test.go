package rtr

import (
	"net"
	"testing"
	"time"

	"repro/internal/rov"
	"repro/internal/rpki"
)

// relisten rebinds the exact address a killed listener held. Go listeners
// set SO_REUSEADDR, so the rebind normally succeeds at once; a short retry
// covers the window where the old socket is still tearing down.
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// liveTable reads the LiveIndex's current table as a normalized set.
func liveTable(l *rov.LiveIndex) *rpki.Set {
	return rpki.NewSet(l.Snapshot().AppendVRPs(nil))
}

// TestSupervisorRealServerRestart is the end-to-end recovery proof against
// the real in-repo server: the cache process is killed mid-session and
// restarted on the same address, first with its previous session (the
// supervisor must resume by Serial Query, no full sync, no rebuild), then
// with a fresh session ID and a different table (the supervisor must fall
// back through Cache Reset to a Reset Query, and the LiveIndex must
// converge to the post-restart table by delta). Throughout, the outage is
// far shorter than the Expire window measured from the last successful
// sync, so the supervisor must never report unhealthy. Run under -race by
// make race.
func TestSupervisorRealServerRestart(t *testing.T) {
	table1 := testVRPs()
	srv1 := NewServer(table1)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	go srv1.Serve(l1)

	live := rov.NewLiveIndex(rpki.NewSet(nil))
	sup := NewSupervisor(func() (net.Conn, error) { return net.Dial("tcp", addr) })
	sup.BackoffMin = 2 * time.Millisecond
	sup.BackoffMax = 20 * time.Millisecond
	sup.Subscribe(live.Apply)
	sup.OnReset(live.ResetTo)
	runErr := make(chan error, 1)
	go func() { runErr <- sup.Run() }()
	defer func() {
		sup.Stop()
		if err := <-runErr; err != nil {
			t.Errorf("Run returned %v after Stop", err)
		}
	}()

	waitFor(t, func() bool { return liveTable(live).Equal(table1) })
	if !sup.Healthy() {
		t.Fatal("unhealthy after initial sync")
	}
	healthyThroughout := func(phase string) {
		t.Helper()
		if !sup.Healthy() {
			t.Fatalf("%s: supervisor unhealthy although the outage was far inside the Expire window", phase)
		}
	}
	sess, serial := srv1.SessionID(), srv1.Serial()

	// Phase 1: kill the cache mid-session and restart it from a state
	// snapshot — same session ID, same serial, same table — then push an
	// update. The supervisor must resume with a Serial Query (the restarted
	// cache accepts it: the session matches and the delta chain from the
	// router's serial is retained) and apply the update incrementally.
	srv1.Close()
	srv2 := NewServer(table1)
	srv2.SetSession(sess, serial)
	l2 := relisten(t, addr)
	go srv2.Serve(l2)
	table2 := rpki.NewSet(append(table1.VRPs(),
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 64500}))
	srv2.UpdateSet(table2)

	waitFor(t, func() bool { return liveTable(live).Equal(table2) })
	healthyThroughout("same-session restart")
	st := sup.Stats()
	if st.SerialResumes < 1 {
		t.Fatalf("same-session restart did not resume by Serial Query: %+v", st)
	}
	if st.ResetFallbacks != 0 || st.Rebuilds != 0 {
		t.Fatalf("same-session restart forced a reset or rebuild: %+v", st)
	}

	// Phase 2: kill the cache again and restart it fresh — new session ID,
	// no retained deltas, and a changed table. The carried Serial Query is
	// answered with Cache Reset; the supervisor's client falls back to a
	// Reset Query, and the LiveIndex converges to the post-restart table by
	// the diff delta — still no subscriber rebuild, because the carried
	// state was usable for diffing.
	srv2.Close()
	table3 := rpki.NewSet([]rpki.VRP{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: mp("203.0.113.0/24"), MaxLength: 24, AS: 64501},
		{Prefix: mp("2001:db8:1::/48"), MaxLength: 64, AS: 64496},
	})
	srv3 := NewServer(table3)
	srv3.SetSession(sess+1, 1)
	l3 := relisten(t, addr)
	go srv3.Serve(l3)
	defer srv3.Close()

	waitFor(t, func() bool { return liveTable(live).Equal(table3) })
	healthyThroughout("new-session restart")
	st = sup.Stats()
	if st.ResetFallbacks < 1 {
		t.Fatalf("new-session restart did not go through the Reset fallback: %+v", st)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("in-window restart rebuilt subscribers instead of resyncing by delta: %+v", st)
	}

	// The validation answers must match the post-restart table exactly.
	snap := live.Snapshot()
	for _, v := range table3.VRPs() {
		if got := snap.Validate(v.Prefix, v.AS); got != rov.Valid {
			t.Fatalf("post-restart Validate(%s, %v) = %v, want Valid", v.Prefix, v.AS, got)
		}
	}
	if got := snap.Validate(mp("10.0.0.0/8"), 64500); got == rov.Valid {
		t.Fatalf("withdrawn-by-restart VRP still Valid")
	}
}
