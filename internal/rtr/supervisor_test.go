package rtr

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/rpki"
)

// vrpSet normalizes a delta slice for order-independent comparison.
func vrpSet(vrps []rpki.VRP) map[rpki.VRP]struct{} {
	m := make(map[rpki.VRP]struct{}, len(vrps))
	for _, v := range vrps {
		m[v] = struct{}{}
	}
	return m
}

func sameVRPs(a, b []rpki.VRP) bool {
	if len(a) != len(b) {
		return false
	}
	am := vrpSet(a)
	for _, v := range b {
		if _, ok := am[v]; !ok {
			return false
		}
	}
	return true
}

// delta is one recorded subscriber delivery.
type delta struct {
	ann, wd []rpki.VRP
}

// TestSupervisorBackoffSequence pins the redial schedule: dial failures back
// off exponentially from BackoffMin with jitter in [backoff/2, backoff),
// capped at BackoffMax, and every attempt is counted. With the jitter source
// pinned to zero the delays are exactly half the current backoff.
func TestSupervisorBackoffSequence(t *testing.T) {
	fc := newFakeClock()
	s := NewSupervisor(func() (net.Conn, error) { return nil, errors.New("connection refused") })
	s.BackoffMin = 8 * time.Second
	s.BackoffMax = 60 * time.Second
	s.nowFn = fc.Now
	s.afterFn = fc.After
	s.jitterFn = func() float64 { return 0 }

	runErr := make(chan error, 1)
	go func() { runErr <- s.Run() }()

	// backoff: 8 -> 16 -> 32 -> 64(capped 60) -> 60 -> ...; delay = backoff/2.
	want := []time.Duration{4 * time.Second, 8 * time.Second, 16 * time.Second, 30 * time.Second, 30 * time.Second}
	for i, d := range want {
		timer := fc.nextTimer(t)
		if timer.d != d {
			t.Fatalf("backoff delay #%d = %v, want %v", i, timer.d, d)
		}
		fc.fire(timer)
	}
	// One more attempt is in flight after the last fire; wait for its timer
	// so the dial counter is stable, then check the stats.
	timer := fc.nextTimer(t)
	if timer.d != 30*time.Second {
		t.Fatalf("steady-state delay = %v, want 30s", timer.d)
	}
	st := s.Stats()
	if st.Dials != len(want)+1 || st.DialFailures != st.Dials {
		t.Fatalf("stats = %+v, want %d dials, all failed", st, len(want)+1)
	}
	if st.Generations != 0 || s.Healthy() {
		t.Fatalf("never-synced supervisor reports generations=%d healthy=%v", st.Generations, s.Healthy())
	}
	s.Stop()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
}

// supervisorHarness wires a Supervisor to a channel-fed dialer, a fake
// clock, and recording subscribers.
type supervisorHarness struct {
	sup     *Supervisor
	fc      *fakeClock
	conns   chan net.Conn
	deltas  chan delta
	resets  chan []rpki.VRP
	updates chan Serial
	runErr  chan error
}

func newSupervisorHarness(t *testing.T) *supervisorHarness {
	t.Helper()
	h := &supervisorHarness{
		fc:      newFakeClock(),
		conns:   make(chan net.Conn, 4),
		deltas:  make(chan delta, 16),
		resets:  make(chan []rpki.VRP, 4),
		updates: make(chan Serial, 16),
		runErr:  make(chan error, 1),
	}
	h.sup = NewSupervisor(func() (net.Conn, error) {
		select {
		case c := <-h.conns:
			return c, nil
		default:
			return nil, errors.New("connection refused")
		}
	})
	h.sup.BackoffMin = 10 * time.Second
	h.sup.BackoffMax = 10 * time.Second
	h.sup.nowFn = h.fc.Now
	h.sup.afterFn = h.fc.After
	h.sup.jitterFn = func() float64 { return 0 }
	h.sup.OnUpdate = func(serial Serial) { h.updates <- serial }
	h.sup.Subscribe(func(ann, wd []rpki.VRP) {
		h.deltas <- delta{ann: append([]rpki.VRP(nil), ann...), wd: append([]rpki.VRP(nil), wd...)}
	})
	h.sup.OnReset(func(table []rpki.VRP) {
		h.resets <- append([]rpki.VRP(nil), table...)
	})
	return h
}

func (h *supervisorHarness) start() { go func() { h.runErr <- h.sup.Run() }() }

func (h *supervisorHarness) stop(t *testing.T) {
	t.Helper()
	h.sup.Stop()
	if err := <-h.runErr; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
}

func (h *supervisorHarness) wantUpdate(t *testing.T, serial Serial) {
	t.Helper()
	select {
	case s := <-h.updates:
		if s != serial {
			t.Fatalf("sync serial = %d, want %d", s, serial)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no sync at serial %d", serial)
	}
}

func (h *supervisorHarness) wantDelta(t *testing.T, ann, wd []rpki.VRP) {
	t.Helper()
	select {
	case d := <-h.deltas:
		if !sameVRPs(d.ann, ann) || !sameVRPs(d.wd, wd) {
			t.Fatalf("delta = +%v -%v, want +%v -%v", d.ann, d.wd, ann, wd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delta delivered")
	}
}

func (h *supervisorHarness) wantNoDelta(t *testing.T) {
	t.Helper()
	select {
	case d := <-h.deltas:
		t.Fatalf("unexpected delta +%v -%v", d.ann, d.wd)
	default:
	}
}

// skipTimer asserts the next armed timer's duration without firing it (the
// poller's refresh timer, left pending when the connection dies).
func (h *supervisorHarness) skipTimer(t *testing.T, d time.Duration) {
	t.Helper()
	timer := h.fc.nextTimer(t)
	if timer.d != d {
		t.Fatalf("armed timer = %v, want %v", timer.d, d)
	}
}

// fireTimer asserts and fires the next armed timer (the redial backoff).
func (h *supervisorHarness) fireTimer(t *testing.T, d time.Duration) {
	t.Helper()
	timer := h.fc.nextTimer(t)
	if timer.d != d {
		t.Fatalf("armed timer = %v, want %v", timer.d, d)
	}
	h.fc.fire(timer)
}

// answerFull serves a Reset Query response: Cache Response, the table, EOD.
func answerFull(conn net.Conn, session uint16, serial Serial, table []rpki.VRP) error {
	if err := WritePDU(conn, Version1, &CacheResponse{SessionID: session}); err != nil {
		return err
	}
	for _, v := range table {
		if err := WritePDU(conn, Version1, &Prefix{Flags: FlagAnnounce, VRP: v}); err != nil {
			return err
		}
	}
	return WritePDU(conn, Version1, &EndOfData{
		SessionID: session, Serial: serial, Refresh: 1800, Retry: 300, Expire: 3600,
	})
}

// TestSupervisorSerialResumeAndResetFallback drives three client
// generations over scripted connections: a fresh full sync, a reconnect
// resumed purely by Serial Query carrying the cached session and serial,
// and a reconnect against a restarted cache (new session ID) that falls
// back to Reset Query — with the subscriber delta computed against the
// carried table, so a delta-fed index resyncs without a rebuild.
func TestSupervisorSerialResumeAndResetFallback(t *testing.T) {
	v1 := rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1}
	v2 := rpki.VRP{Prefix: mp("192.0.2.0/24"), MaxLength: 24, AS: 2}
	v3 := rpki.VRP{Prefix: mp("198.51.100.0/24"), MaxLength: 24, AS: 3}
	v4 := rpki.VRP{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 64496}
	const sessA, sessB = 0x1111, 0x2222

	h := newSupervisorHarness(t)
	scriptErr := make(chan error, 3)

	// Generation 1: fresh start, full sync of {v1, v2} at serial 7.
	cli1, srv1 := net.Pipe()
	h.conns <- cli1
	go func() {
		scriptErr <- func() error {
			pdu, _, err := ReadPDU(srv1)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return errors.New("gen1: expected Reset Query")
			}
			return answerFull(srv1, sessA, 7, []rpki.VRP{v1, v2})
		}()
	}()
	h.start()
	h.wantUpdate(t, 7)
	h.wantDelta(t, []rpki.VRP{v1, v2}, nil)

	// Kill the connection while idle; the poller's pending refresh timer is
	// abandoned and the supervisor arms its backoff instead.
	srv1.Close()
	h.skipTimer(t, 1800*time.Second)

	// Generation 2: the supervisor must resume with a Serial Query carrying
	// session A and serial 7; the cache serves the delta to serial 8.
	cli2, srv2 := net.Pipe()
	h.conns <- cli2
	go func() {
		scriptErr <- func() error {
			pdu, _, err := ReadPDU(srv2)
			if err != nil {
				return err
			}
			q, ok := pdu.(*SerialQuery)
			if !ok || q.SessionID != sessA || q.Serial != 7 {
				return errors.New("gen2: expected Serial Query for session A serial 7")
			}
			if err := WritePDU(srv2, Version1, &CacheResponse{SessionID: sessA}); err != nil {
				return err
			}
			if err := WritePDU(srv2, Version1, &Prefix{Flags: FlagAnnounce, VRP: v3}); err != nil {
				return err
			}
			return WritePDU(srv2, Version1, &EndOfData{
				SessionID: sessA, Serial: 8, Refresh: 1800, Retry: 300, Expire: 3600,
			})
		}()
	}()
	h.fireTimer(t, 5*time.Second) // backoff = min 10s, jitter 0 -> half
	h.wantUpdate(t, 8)
	h.wantDelta(t, []rpki.VRP{v3}, nil)

	srv2.Close()
	h.skipTimer(t, 1800*time.Second)

	// Generation 3: the cache restarted with session B and table {v1, v4}.
	// The carried Serial Query is answered with Cache Reset; the client
	// falls back to Reset Query, and the delta delivered to subscribers is
	// the diff against the carried {v1, v2, v3} — not a blind full table.
	cli3, srv3 := net.Pipe()
	h.conns <- cli3
	go func() {
		scriptErr <- func() error {
			pdu, _, err := ReadPDU(srv3)
			if err != nil {
				return err
			}
			q, ok := pdu.(*SerialQuery)
			if !ok || q.SessionID != sessA || q.Serial != 8 {
				return errors.New("gen3: expected Serial Query for session A serial 8")
			}
			if err := WritePDU(srv3, Version1, &CacheReset{}); err != nil {
				return err
			}
			pdu, _, err = ReadPDU(srv3)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return errors.New("gen3: expected Reset Query fallback")
			}
			return answerFull(srv3, sessB, 2, []rpki.VRP{v1, v4})
		}()
	}()
	h.fireTimer(t, 5*time.Second)
	h.wantUpdate(t, 2)
	h.wantDelta(t, []rpki.VRP{v4}, []rpki.VRP{v2, v3})

	for i := 0; i < 3; i++ {
		if err := <-scriptErr; err != nil {
			t.Fatalf("scripted cache: %v", err)
		}
	}
	st := h.sup.Stats()
	if st.Generations != 3 || st.SerialResumes != 1 || st.ResetFallbacks != 1 || st.Rebuilds != 0 {
		t.Fatalf("stats = %+v, want 3 generations, 1 serial resume, 1 reset fallback, 0 rebuilds", st)
	}
	if !h.sup.Healthy() {
		t.Fatal("supervisor unhealthy after successful resync")
	}
	h.stop(t)
}

// TestSupervisorExpireAcrossFlappingGenerations pins the Expire clock to
// the last *successful sync*: a cache that accepts every redial but never
// completes a sync cannot keep stale data looking healthy, and once the
// window passes the carried state is dropped — the next successful sync
// reaches subscribers as a reset (rebuild), not a delta.
func TestSupervisorExpireAcrossFlappingGenerations(t *testing.T) {
	v1 := rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1}
	v5 := rpki.VRP{Prefix: mp("203.0.113.0/24"), MaxLength: 24, AS: 5}
	const sessA, sessC = 0x1111, 0x3333

	h := newSupervisorHarness(t)
	// Constant 600s backoff (jitter 0 -> 300s delay) to step the clock.
	h.sup.BackoffMin = 600 * time.Second
	h.sup.BackoffMax = 600 * time.Second
	scriptErr := make(chan error, 1)

	// Generation 1: full sync of {v1} at serial 7, Expire 3600s.
	cli1, srv1 := net.Pipe()
	h.conns <- cli1
	go func() {
		scriptErr <- func() error {
			pdu, _, err := ReadPDU(srv1)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return errors.New("gen1: expected Reset Query")
			}
			return answerFull(srv1, sessA, 7, []rpki.VRP{v1})
		}()
	}()
	h.start()
	h.wantUpdate(t, 7)
	h.wantDelta(t, []rpki.VRP{v1}, nil)
	if err := <-scriptErr; err != nil {
		t.Fatalf("scripted cache: %v", err)
	}

	srv1.Close()
	h.skipTimer(t, 1800*time.Second)

	// The cache now flaps: every dial is accepted and immediately severed,
	// so no sync ever completes. Each redial cycle advances the clock by
	// 300s; the supervisor must stay healthy for the remainder of the
	// 3600s window measured from the gen-1 sync — not from the latest
	// reconnect — and then flip unhealthy exactly when it closes.
	for cycle := 1; ; cycle++ {
		if cycle > 12 {
			t.Fatal("supervisor still healthy after the Expire window passed")
		}
		cli, srv := net.Pipe()
		h.conns <- cli
		srv.Close() // sever before the client can sync
		h.fireTimer(t, 300*time.Second)
		// After this fire the clock is at 300*cycle seconds past the sync.
		if elapsed := time.Duration(cycle) * 300 * time.Second; elapsed < 3600*time.Second {
			if !h.sup.Healthy() {
				t.Fatalf("flapping cache aged the data out early: unhealthy %v after last sync", elapsed)
			}
		} else {
			if h.sup.Healthy() {
				t.Fatalf("still healthy %v after last sync", elapsed)
			}
			break
		}
	}

	// The next generation dials a recovered cache (new session, new table).
	// The carried state expired, so the client starts fresh with a Reset
	// Query and subscribers are rebuilt from the full table, with no delta.
	cli2, srv2 := net.Pipe()
	h.conns <- cli2
	go func() {
		scriptErr <- func() error {
			pdu, _, err := ReadPDU(srv2)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return errors.New("recovery: expected Reset Query from a reset-after-expiry client")
			}
			return answerFull(srv2, sessC, 1, []rpki.VRP{v1, v5})
		}()
	}()
	h.fireTimer(t, 300*time.Second)
	h.wantUpdate(t, 1)
	select {
	case table := <-h.resets:
		if !sameVRPs(table, []rpki.VRP{v1, v5}) {
			t.Fatalf("reset table = %v, want {v1, v5}", table)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reset delivered after expiry")
	}
	h.wantNoDelta(t)
	if err := <-scriptErr; err != nil {
		t.Fatalf("scripted cache: %v", err)
	}
	if !h.sup.Healthy() {
		t.Fatal("supervisor unhealthy after post-expiry resync")
	}
	st := h.sup.Stats()
	if st.Rebuilds != 1 || st.SerialResumes != 0 || st.ResetFallbacks != 0 {
		t.Fatalf("stats = %+v, want exactly 1 rebuild and no carried-state resumes", st)
	}
	h.stop(t)
}

// TestClientSessionChangeWithoutCacheReset pins the resumption guard in the
// exchange state machine: a restarted cache should answer a carried Serial
// Query with Cache Reset, but one that instead replies with its *new*
// session ID and a delta must not have that delta applied onto the carried
// table (RFC 8210 §5.5 — a session change invalidates all held data). The
// client consumes the foreign update to keep the stream framed, resolves
// the exchange as a cache reset, and Sync falls back to a full Reset Query.
func TestClientSessionChangeWithoutCacheReset(t *testing.T) {
	v1 := rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1}
	v2 := rpki.VRP{Prefix: mp("192.0.2.0/24"), MaxLength: 24, AS: 2}
	v3 := rpki.VRP{Prefix: mp("198.51.100.0/24"), MaxLength: 24, AS: 3}
	const oldSess, newSess = 0xaaaa, 0xbbbb

	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClientResume(cli, &SessionState{SessionID: oldSess, Serial: 7, VRPs: []rpki.VRP{v1}})
	defer c.Close()

	scriptErr := make(chan error, 1)
	go func() {
		scriptErr <- func() error {
			pdu, _, err := ReadPDU(srv)
			if err != nil {
				return err
			}
			if q, ok := pdu.(*SerialQuery); !ok || q.SessionID != oldSess || q.Serial != 7 {
				return errors.New("expected carried Serial Query")
			}
			// Misbehaving restart: a delta under the new session instead of
			// Cache Reset. The client must swallow it whole.
			if err := WritePDU(srv, Version1, &CacheResponse{SessionID: newSess}); err != nil {
				return err
			}
			if err := WritePDU(srv, Version1, &Prefix{Flags: FlagAnnounce, VRP: v2}); err != nil {
				return err
			}
			if err := WritePDU(srv, Version1, &EndOfData{SessionID: newSess, Serial: 3}); err != nil {
				return err
			}
			// The fallback full resync under the new session.
			pdu, _, err = ReadPDU(srv)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return errors.New("expected Reset Query fallback after session change")
			}
			return answerFull(srv, newSess, 3, []rpki.VRP{v2, v3})
		}()
	}()

	serial, err := c.Sync()
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := <-scriptErr; err != nil {
		t.Fatalf("scripted cache: %v", err)
	}
	if serial != 3 || c.SessionID() != newSess {
		t.Fatalf("synced to serial %d session %#x, want 3/%#x", serial, c.SessionID(), newSess)
	}
	// The table is the full resync — the foreign delta was not merged onto
	// the carried table (v1 must be gone, and only one full sync ran).
	if !c.Set().Equal(rpki.NewSet([]rpki.VRP{v2, v3})) {
		t.Fatalf("table = %v, want {v2, v3}", c.Set().VRPs())
	}
	if c.FullSyncs() != 1 {
		t.Fatalf("FullSyncs = %d, want 1", c.FullSyncs())
	}
}
