package rtr

import (
	"bufio"
	"net"
	"testing"
	"time"

	"repro/internal/rpki"
)

// discardConn is a net.Conn that swallows writes: the full-response
// benchmarks measure encoding cost, not the kernel.
type discardConn struct{}

func (discardConn) Read([]byte) (int, error)         { return 0, net.ErrClosed }
func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (discardConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// BenchmarkSendFull compares the two ways to answer a Reset Query over a
// 50k-VRP table: "materialize" is the retired implementation (build a
// []PDU of len(vrps)+2 heap values, then write each), "stream" is the
// live one (visit the table, encode each VRP through the connection's
// reused buffer and one reused Prefix value) — allocation-bounded per
// response instead of linear in the table.
func BenchmarkSendFull(b *testing.B) {
	srv := NewServer(bigVRPSet(50_000))
	defer srv.Close()
	c := &conn{c: discardConn{}, bw: bufio.NewWriterSize(discardConn{}, 4096), version: Version1, state: connActive}

	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := srv.pub.Load()
			vrps := p.current().AppendVRPs(nil)
			pdus := make([]PDU, 0, len(vrps)+2)
			pdus = append(pdus, &CacheResponse{SessionID: p.session})
			for _, v := range vrps {
				pdus = append(pdus, &Prefix{VRP: v, Flags: FlagAnnounce})
			}
			pdus = append(pdus, srv.endOfData(p.session, p.serial))
			for _, pdu := range pdus {
				if err := WritePDU(c.c, Version1, pdu); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := srv.streamFull(c, Version1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublishDelta measures the publish path a delta-fed cache runs
// per update — persistent-snapshot apply, ring roll, atomic swap — with no
// sessions connected, i.e. the floor the notify fan-out adds to.
func BenchmarkPublishDelta(b *testing.B) {
	srv := NewServer(bigVRPSet(50_000))
	defer srv.Close()
	v := rpki.VRP{Prefix: mp("203.0.113.0/24"), MaxLength: 24, AS: 64501}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			srv.ApplyDelta([]rpki.VRP{v}, nil)
		} else {
			srv.ApplyDelta(nil, []rpki.VRP{v})
		}
	}
}
