package rtr

import (
	"errors"
	"sync"
	"time"
)

// Poller drives a Client through the RFC 8210 timer state machine: sync,
// then wait for Serial Notify or the Refresh interval (whichever first),
// falling back to the Retry interval on errors, and declaring the data
// expired — unusable for validation — once the Expire interval passes
// without a successful sync.
//
// The zero timers are filled from the cache's End of Data PDU after the
// first sync, or from RFC 8210's suggested defaults.
type Poller struct {
	Client *Client
	// OnUpdate, when set, is invoked after every successful sync with the
	// new serial. Called on the poller goroutine.
	OnUpdate func(serial uint32)
	// Refresh/Retry are fallbacks until the cache advertises its own.
	Refresh time.Duration
	Retry   time.Duration
	Expire  time.Duration

	mu       sync.Mutex
	lastSync time.Time
	healthy  bool
	stopped  bool
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// NewPoller wraps a connected client with RFC 8210 default timers.
func NewPoller(c *Client) *Poller {
	return &Poller{
		Client:  c,
		Refresh: 3600 * time.Second,
		Retry:   600 * time.Second,
		Expire:  7200 * time.Second,
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
}

// Healthy reports whether the poller has synced within the Expire window;
// when false, RFC 8210 §6 says the router must stop using the data.
func (p *Poller) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy && time.Since(p.lastSync) < p.Expire
}

// LastSync returns the time of the last successful synchronization.
func (p *Poller) LastSync() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSync
}

// Run drives the state machine until Stop is called or an unrecoverable
// connection error occurs; it returns the terminating error (nil on Stop).
// Run performs the initial sync itself.
func (p *Poller) Run() error {
	defer close(p.doneCh)
	if err := p.syncOnce(); err != nil {
		if p.isStopped() {
			return nil
		}
		return err
	}
	for {
		// Wait for a notify in a helper goroutine so Stop can interrupt.
		notifyCh := make(chan error, 1)
		go func() {
			_, err := p.Client.WaitNotify()
			notifyCh <- err
		}()
		select {
		case <-p.stopCh:
			p.Client.Close() // unblocks the reader
			<-notifyCh
			return nil
		case err := <-notifyCh:
			if err != nil {
				if p.isStopped() {
					return nil
				}
				return err
			}
		}
		if err := p.syncOnce(); err != nil {
			if p.isStopped() {
				return nil
			}
			return err
		}
	}
}

func (p *Poller) syncOnce() error {
	serial, err := p.Client.Sync()
	if err != nil {
		p.mu.Lock()
		p.healthy = false
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	p.lastSync = time.Now()
	p.healthy = true
	p.mu.Unlock()
	if p.OnUpdate != nil {
		p.OnUpdate(serial)
	}
	return nil
}

// Stop terminates Run and waits for it to return.
func (p *Poller) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		<-p.doneCh
		return
	}
	p.stopped = true
	close(p.stopCh)
	p.mu.Unlock()
	<-p.doneCh
}

func (p *Poller) isStopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}

// ErrExpired is reported by validation-side callers when Healthy() is false
// and the data must not be used.
var ErrExpired = errors.New("rtr: cache data expired")
