package rtr

import (
	"errors"
	"sync"
	"time"
)

// Poller drives a Client through the RFC 8210 §6 timer state machine: sync,
// then wait for Serial Notify or the Refresh interval (whichever first),
// falling back to the Retry interval on errors, and declaring the data
// expired — unusable for validation — once the Expire interval passes
// without a successful sync.
//
// The configured timers are fallbacks: after every successful sync the
// poller adopts the Refresh/Retry/Expire values the cache advertised in its
// version-1 End of Data PDU (see Client.Timers), as §6 prescribes. Version-0
// caches advertise none, so the configured values (RFC 8210's suggested
// defaults from NewPoller) stay in force.
type Poller struct {
	Client *Client
	// OnUpdate, when set, is invoked after every successful sync with the
	// new serial. Called on the poller goroutine.
	OnUpdate func(serial Serial)
	// Refresh/Retry/Expire are fallbacks until the cache advertises its own.
	// They are overwritten by adopted End of Data values; read them only
	// before Run or after Stop.
	Refresh time.Duration
	Retry   time.Duration
	Expire  time.Duration
	// ExitOnDone makes Run return the client's sticky error as soon as the
	// client's dispatch loop dies, instead of retrying the dead client on
	// the Retry interval until the Expire window passes. A reconnect
	// supervisor sets this: a dead Client can never sync again, so the
	// retry cadence belongs to the redial loop across connections, not to
	// this generation. Set before Run.
	ExitOnDone bool
	// SyncTimeout bounds one Sync exchange in wall-clock time; 0 disables.
	// A cache that accepts the connection but never answers would otherwise
	// wedge the poller forever — the client has no read deadline by design
	// (deadlines mid-PDU are the desync bug the dispatch loop removed), so
	// the watchdog tears the whole session down instead: it closes the
	// connection, the exchange fails with the sticky error, and the caller
	// (or supervisor) redials. Always real time, never the test clock: it
	// guards against wall-clock wedges, not protocol state. Set before Run.
	SyncTimeout time.Duration

	mu       sync.Mutex
	lastSync time.Time
	synced   bool // at least one successful sync
	stopped  bool
	stopCh   chan struct{}
	doneCh   chan struct{}

	// nowFn/afterFn are the poller's clock, overridable by tests (fake
	// clock); nil means time.Now / time.After.
	nowFn   func() time.Time
	afterFn func(time.Duration) <-chan time.Time
}

// NewPoller wraps a connected client with RFC 8210 default timers.
func NewPoller(c *Client) *Poller {
	return &Poller{
		Client:  c,
		Refresh: 3600 * time.Second,
		Retry:   600 * time.Second,
		Expire:  7200 * time.Second,
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
}

func (p *Poller) timeNow() time.Time {
	if p.nowFn != nil {
		return p.nowFn()
	}
	return time.Now()
}

func (p *Poller) timerAfter(d time.Duration) <-chan time.Time {
	if p.afterFn != nil {
		return p.afterFn(d)
	}
	return time.After(d)
}

// Healthy reports whether the poller has synced within the Expire window;
// when false, RFC 8210 §6 says the router must stop using the data. A failed
// sync alone does not flip Healthy: per §6 the data remains usable until the
// Expire interval passes without a successful sync.
func (p *Poller) Healthy() bool {
	now := p.timeNow()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.synced && now.Sub(p.lastSync) < p.Expire
}

// expired reports whether the Expire window has passed with no successful
// sync (or none has ever succeeded) — the negation of Healthy, kept as one
// predicate.
func (p *Poller) expired() bool { return !p.Healthy() }

// LastSync returns the time of the last successful synchronization.
func (p *Poller) LastSync() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSync
}

// SyncState reports the poller's Expire clock: the time of the last
// successful sync and whether one has ever succeeded. A supervisor reads it
// when a client generation dies and seeds the next generation's poller with
// ResumeSyncState, so the Expire window keeps measuring from the last
// successful sync rather than restarting at each reconnect.
func (p *Poller) SyncState() (lastSync time.Time, synced bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSync, p.synced
}

// ResumeSyncState seeds the Expire clock from a previous client generation.
// Without it a replacement poller would treat its first failed sync as
// "never synced" — immediately expired — and a flapping cache could keep
// stale data looking fresh forever by resetting the window at every
// reconnect. Call before Run.
func (p *Poller) ResumeSyncState(lastSync time.Time, synced bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastSync = lastSync
	p.synced = synced
}

// retryInterval returns the current Retry timer value.
func (p *Poller) retryInterval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Retry
}

// refreshInterval returns the current Refresh timer value.
func (p *Poller) refreshInterval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Refresh
}

// adoptTimers copies the cache's End of Data timers over the configured
// fallbacks after a successful sync, ignoring zero (unadvertised) values.
func (p *Poller) adoptTimers() {
	refresh, retry, expire, ok := p.Client.Timers()
	if !ok {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if refresh > 0 {
		p.Refresh = refresh
	}
	if retry > 0 {
		p.Retry = retry
	}
	if expire > 0 {
		p.Expire = expire
	}
}

// Run drives the state machine until Stop is called: sync, then wait for a
// Serial Notify or the Refresh interval (whichever fires first) and sync
// again. A failed sync is retried on the Retry interval for as long as the
// data is within its Expire window; once the window passes with every retry
// failing — or when the initial sync fails — Run returns the error, since
// the Client cannot re-dial and the caller must reconnect. With ExitOnDone
// set, Run instead returns as soon as the client's dispatch loop dies,
// without burning Retry intervals on a connection that cannot recover. Run
// performs the initial sync itself and returns nil when stopped.
//
// The Client's dispatch goroutine owns the connection, so idling is a plain
// select over the notify channel, the refresh timer, connection death, and
// Stop: Run never touches the socket or its deadlines, and nothing it does
// can interrupt a read mid-PDU.
func (p *Poller) Run() error {
	defer close(p.doneCh)
	for {
		if err := p.syncOnce(); err != nil {
			if p.isStopped() {
				return nil
			}
			if p.ExitOnDone && p.clientDead() {
				// The dispatch loop is gone: every further sync would fail
				// fast with the same sticky error. Hand the connection
				// lifecycle back to the supervisor immediately.
				return err
			}
			if p.expired() {
				// Expired data and an unreachable cache: surface the error
				// so the caller can reconnect with a fresh Client.
				return err
			}
			// Error → retry timer: wait out the Retry interval, then fall
			// through to another sync attempt.
			select {
			case <-p.stopCh:
				return nil
			case <-p.timerAfter(p.retryInterval()):
			}
			continue
		}
		p.adoptTimers()
		select {
		case <-p.stopCh:
			return nil
		case <-p.Client.Notify():
			// Notify → immediate sync.
		case <-p.Client.Done():
			// The connection died while idle (read error, or the cache
			// killed the session with an idle Error Report). This is a
			// connection failure, not a refresh: fall through to the sync
			// attempt, which fails fast with the client's sticky error and
			// enters the retry path above — retrying on the Retry interval
			// inside the Expire window, then surfacing the error.
		case <-p.timerAfter(p.refreshInterval()):
			// Refresh expired with no notify: plain periodic sync.
		}
	}
}

func (p *Poller) syncOnce() error {
	if p.SyncTimeout > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-time.After(p.SyncTimeout):
				p.Client.Close()
			case <-stop:
			}
		}()
	}
	serial, err := p.Client.Sync()
	if err != nil {
		return err
	}
	now := p.timeNow()
	p.mu.Lock()
	p.lastSync = now
	p.synced = true
	p.mu.Unlock()
	if p.OnUpdate != nil {
		p.OnUpdate(serial)
	}
	return nil
}

// Stop terminates Run and waits for it to return. It closes the client's
// connection to unblock any in-flight read.
func (p *Poller) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		<-p.doneCh
		return
	}
	p.stopped = true
	close(p.stopCh)
	p.mu.Unlock()
	p.Client.Close()
	<-p.doneCh
}

func (p *Poller) isStopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}

// clientDead reports whether the client session is sticky-failed. The
// sticky error is checked rather than Done: a failed write records the
// error synchronously, while Done closes only after the dispatch goroutine
// observes the dead socket — checking Done would race that window and
// misclassify a dead client as a retryable sync failure.
func (p *Poller) clientDead() bool {
	return p.Client.Err() != nil
}

// ErrExpired is reported by validation-side callers when Healthy() is false
// and the data must not be used.
var ErrExpired = errors.New("rtr: cache data expired")
