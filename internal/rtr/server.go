package rtr

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/rov"
	"repro/internal/rpki"
)

// Server is the cache side of the protocol: the "trusted local cache" of
// Figure 1. It serves the current VRP set to any number of router clients,
// assigns serial numbers to updates, answers Serial Queries with incremental
// deltas when it can, and pushes Serial Notify PDUs when the data changes.
//
// The cache stores no delta chains: each update's table goes into a short
// ring of immutable rov snapshots sharing one arena lineage, and the answer
// to a Serial Query is synthesized on demand as the structural diff between
// the router's retained snapshot and the current one — exact between any two
// retained serials, O(changed) in the snapshots' divergence, and free of
// serial arithmetic (the ring is searched by serial equality).
type Server struct {
	// Timers advertised in version-1 End of Data PDUs (seconds). Zero values
	// are replaced by the RFC 8210 suggested defaults.
	Refresh, Retry, Expire uint32
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...interface{})
	// KeepDeltas bounds how many past serials remain answerable by
	// incremental updates (older Serial Queries get Cache Reset). Default 16.
	KeepDeltas int

	mu        sync.Mutex
	sessionID uint16
	serial    Serial
	current   *rpki.Set
	// live mirrors current as a persistent-snapshot index; its retained
	// snapshots share an arena lineage, which is what makes the on-demand
	// serial-to-serial diff structural instead of a full table walk.
	live  *rov.LiveIndex
	snaps []serialSnapshot // oldest first; last is the current serial's table
	conns map[*conn]struct{}

	listener net.Listener
	closed   bool
}

// serialSnapshot pairs a serial number with the immutable table the cache
// served at that serial.
type serialSnapshot struct {
	serial Serial
	table  *rov.Index
}

type conn struct {
	c  net.Conn
	mu sync.Mutex // serializes writes (handler vs. notify broadcast)
	// version is fixed by the first PDU received from the router.
	version byte
}

func (c *conn) send(version byte, pdus ...PDU) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pdus {
		// c.mu is per-connection, so one slow router only stalls its own
		// handler/notify pair, not the whole cache; decoupling notify fan-out
		// from the write path is tracked by the ROADMAP's "cache server at
		// router-population scale" item.
		//lint:ignore blockinglock per-connection write lock; fan-out decoupling tracked by the ROADMAP's "cache server at router-population scale" item
		if err := WritePDU(c.c, version, p); err != nil {
			return err
		}
	}
	return nil
}

// NewServer creates a cache serving the given initial VRP set.
func NewServer(initial *rpki.Set) *Server {
	if initial == nil {
		initial = rpki.NewSet(nil)
	}
	s := &Server{
		Refresh:    3600,
		Retry:      600,
		Expire:     7200,
		KeepDeltas: 16,
		sessionID:  0x5eed,
		serial:     1,
		current:    initial,
		live:       rov.NewLiveIndex(initial),
		conns:      make(map[*conn]struct{}),
	}
	s.snaps = []serialSnapshot{{serial: s.serial, table: s.live.Snapshot()}}
	return s
}

// Serial returns the current serial number.
func (s *Server) Serial() Serial {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// SessionID returns the cache session identifier.
func (s *Server) SessionID() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionID
}

// SetSession overrides the session ID and serial the cache serves from,
// before any router connects. A cache restarted from a state snapshot keeps
// its previous session so routers resume their incremental stream with a
// Serial Query; a cache restarted fresh picks a new session ID, which (per
// RFC 8210 §5.5) forces routers through Cache Reset and a full resync.
func (s *Server) SetSession(id uint16, serial Serial) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionID = id
	s.serial = serial
	// Prior serials belong to the old numbering; only the current table is
	// answerable incrementally from here.
	s.snaps = append(s.snaps[:0], serialSnapshot{serial: serial, table: s.live.Snapshot()})
}

// UpdateSet replaces the served VRP set, applies the announce/withdraw delta
// to the snapshot history, bumps the serial, and notifies connected routers.
func (s *Server) UpdateSet(next *rpki.Set) {
	s.mu.Lock()
	var ann, wd []rpki.VRP
	for _, p := range diffSets(s.current, next) {
		if p.Flags == FlagAnnounce {
			ann = append(ann, p.VRP)
		} else {
			wd = append(wd, p.VRP)
		}
	}
	s.live.Apply(ann, wd)
	s.serial++
	s.snaps = append(s.snaps, serialSnapshot{serial: s.serial, table: s.live.Snapshot()})
	// Retain KeepDeltas+2 snapshots: the current serial, plus the
	// KeepDeltas+1 serials behind it that stay answerable (the same horizon
	// the per-serial delta chain used to cover). No serial arithmetic — the
	// ring's length is the retention policy.
	if keep := s.KeepDeltas + 2; len(s.snaps) > keep {
		n := copy(s.snaps, s.snaps[len(s.snaps)-keep:])
		for i := n; i < len(s.snaps); i++ {
			s.snaps[i] = serialSnapshot{} // release the evicted table
		}
		s.snaps = s.snaps[:n]
	}
	s.current = next
	serial, session := s.serial, s.sessionID
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.mu.Lock()
		v := c.version
		c.mu.Unlock()
		if err := c.send(v, &SerialNotify{SessionID: session, Serial: serial}); err != nil {
			s.logf("rtr server: notify: %v", err)
		}
	}
}

// diffSets returns the prefix PDUs that transform old into next: withdrawals
// for tuples only in old, announcements for tuples only in next.
func diffSets(old, next *rpki.Set) []Prefix {
	var out []Prefix
	a, b := old.VRPs(), next.VRPs()
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = append(out, Prefix{Flags: FlagAnnounce, VRP: b[j]})
			j++
		case j >= len(b):
			out = append(out, Prefix{Flags: FlagWithdraw, VRP: a[i]})
			i++
		default:
			switch c := a[i].Compare(b[j]); {
			case c == 0:
				i++
				j++
			case c < 0:
				out = append(out, Prefix{Flags: FlagWithdraw, VRP: a[i]})
				i++
			default:
				out = append(out, Prefix{Flags: FlagAnnounce, VRP: b[j]})
				j++
			}
		}
	}
	return out
}

// Serve accepts router connections on l until Close is called. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rtr: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		//repro:owns-goroutine (*Server).Close
		go s.handle(nc)
	}
}

// ListenAndServe listens on addr ("host:port") and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and disconnects all routers.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.c.Close()
	}
	s.conns = make(map[*conn]struct{})
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle runs one router session.
func (s *Server) handle(nc net.Conn) {
	c := &conn{c: nc, version: Version1}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		nc.Close()
	}()

	for {
		pdu, version, err := ReadPDU(nc)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				// Reply with a version WritePDU accepts: the version byte
				// ReadPDU returned is the peer's own, which for an
				// unsupported-version PDU is the bogus byte itself and would
				// make WritePDU reject our Error Report. Fall back to the
				// connection's negotiated (or default) version.
				v := version
				if v != Version0 && v != Version1 {
					c.mu.Lock()
					v = c.version
					c.mu.Unlock()
				}
				if serr := c.send(v, &ErrorReport{Code: pe.Code, Text: pe.Msg}); serr != nil {
					s.logf("rtr server: error report: %v", serr)
				}
			}
			if !errors.Is(err, net.ErrClosed) {
				s.logf("rtr server: read: %v", err)
			}
			return
		}
		c.mu.Lock()
		c.version = version
		c.mu.Unlock()
		switch q := pdu.(type) {
		case *ResetQuery:
			if err := s.sendFull(c, version); err != nil {
				s.logf("rtr server: reset response: %v", err)
				return
			}
		case *SerialQuery:
			if err := s.answerSerialQuery(c, version, q); err != nil {
				s.logf("rtr server: serial response: %v", err)
				return
			}
		case *ErrorReport:
			s.logf("rtr server: router reported error %d: %s", q.Code, q.Text)
			return
		default:
			if serr := c.send(version, &ErrorReport{
				Code: ErrInvalidRequest,
				Text: fmt.Sprintf("unexpected PDU type %d from router", pdu.Type()),
			}); serr != nil {
				s.logf("rtr server: error report: %v", serr)
			}
			return
		}
	}
}

// sendFull answers a Reset Query: Cache Response, every VRP, End of Data.
func (s *Server) sendFull(c *conn, version byte) error {
	s.mu.Lock()
	session, serial := s.sessionID, s.serial
	vrps := s.current.VRPs()
	s.mu.Unlock()
	pdus := make([]PDU, 0, len(vrps)+2)
	pdus = append(pdus, &CacheResponse{SessionID: session})
	for i := range vrps {
		pdus = append(pdus, &Prefix{Flags: FlagAnnounce, VRP: vrps[i]})
	}
	pdus = append(pdus, s.endOfData(session, serial))
	return c.send(version, pdus...)
}

// answerSerialQuery sends an incremental update when the session matches and
// the router's serial is still in the snapshot ring; otherwise Cache Reset.
// The update is synthesized on demand as the structural diff between the
// retained snapshot and the current table — there is no stored chain to
// walk, and any retained serial pair diffs in O(changed).
func (s *Server) answerSerialQuery(c *conn, version byte, q *SerialQuery) error {
	s.mu.Lock()
	session, serial := s.sessionID, s.serial
	ok := q.SessionID == session
	var ann, wd []rpki.VRP
	if ok && q.Serial != serial {
		var from *rov.Index
		for _, sn := range s.snaps {
			if sn.serial == q.Serial {
				from = sn.table
				break
			}
		}
		if from == nil {
			ok = false
		} else {
			ann, wd = rov.Diff(from, s.live.Snapshot())
		}
	}
	s.mu.Unlock()
	if !ok {
		return c.send(version, &CacheReset{})
	}
	pdus := make([]PDU, 0, len(ann)+len(wd)+2)
	pdus = append(pdus, &CacheResponse{SessionID: session})
	for i := range ann {
		pdus = append(pdus, &Prefix{Flags: FlagAnnounce, VRP: ann[i]})
	}
	for i := range wd {
		pdus = append(pdus, &Prefix{Flags: FlagWithdraw, VRP: wd[i]})
	}
	pdus = append(pdus, s.endOfData(session, serial))
	return c.send(version, pdus...)
}

func (s *Server) endOfData(session uint16, serial Serial) *EndOfData {
	return &EndOfData{
		SessionID: session,
		Serial:    serial,
		Refresh:   s.Refresh,
		Retry:     s.Retry,
		Expire:    s.Expire,
	}
}
