package rtr

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/rpki"
)

// Server is the cache side of the protocol: the "trusted local cache" of
// Figure 1. It serves the current VRP set to any number of router clients,
// assigns serial numbers to updates, answers Serial Queries with incremental
// deltas when it can, and pushes Serial Notify PDUs when the data changes.
type Server struct {
	// Timers advertised in version-1 End of Data PDUs (seconds). Zero values
	// are replaced by the RFC 8210 suggested defaults.
	Refresh, Retry, Expire uint32
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...interface{})
	// KeepDeltas bounds how many past serials remain answerable by
	// incremental updates (older Serial Queries get Cache Reset). Default 16.
	KeepDeltas int

	mu        sync.Mutex
	sessionID uint16
	serial    Serial
	current   *rpki.Set
	deltas    map[Serial][]Prefix // delta that moved serial s-1 -> s
	conns     map[*conn]struct{}
	listener  net.Listener
	closed    bool
}

type conn struct {
	c  net.Conn
	mu sync.Mutex // serializes writes (handler vs. notify broadcast)
	// version is fixed by the first PDU received from the router.
	version byte
}

func (c *conn) send(version byte, pdus ...PDU) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pdus {
		// c.mu is per-connection, so one slow router only stalls its own
		// handler/notify pair, not the whole cache; decoupling notify fan-out
		// from the write path is tracked as ROADMAP item 2.
		//lint:ignore blockinglock per-connection write lock; fan-out decoupling tracked in ROADMAP item 2
		if err := WritePDU(c.c, version, p); err != nil {
			return err
		}
	}
	return nil
}

// NewServer creates a cache serving the given initial VRP set.
func NewServer(initial *rpki.Set) *Server {
	if initial == nil {
		initial = rpki.NewSet(nil)
	}
	return &Server{
		Refresh:    3600,
		Retry:      600,
		Expire:     7200,
		KeepDeltas: 16,
		sessionID:  0x5eed,
		serial:     1,
		current:    initial,
		deltas:     make(map[Serial][]Prefix),
		conns:      make(map[*conn]struct{}),
	}
}

// Serial returns the current serial number.
func (s *Server) Serial() Serial {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// SessionID returns the cache session identifier.
func (s *Server) SessionID() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionID
}

// SetSession overrides the session ID and serial the cache serves from,
// before any router connects. A cache restarted from a state snapshot keeps
// its previous session so routers resume their incremental stream with a
// Serial Query; a cache restarted fresh picks a new session ID, which (per
// RFC 8210 §5.5) forces routers through Cache Reset and a full resync.
func (s *Server) SetSession(id uint16, serial Serial) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionID = id
	s.serial = serial
}

// UpdateSet replaces the served VRP set, computes the announce/withdraw
// delta, bumps the serial, and notifies connected routers.
func (s *Server) UpdateSet(next *rpki.Set) {
	s.mu.Lock()
	delta := diffSets(s.current, next)
	s.serial++
	s.deltas[s.serial] = delta
	//lint:ignore serialcmp deliberate ring retreat: evict the delta KeepDeltas+1 steps behind the new serial.
	delete(s.deltas, s.serial-Serial(s.KeepDeltas)-1)
	s.current = next
	serial, session := s.serial, s.sessionID
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.mu.Lock()
		v := c.version
		c.mu.Unlock()
		if err := c.send(v, &SerialNotify{SessionID: session, Serial: serial}); err != nil {
			s.logf("rtr server: notify: %v", err)
		}
	}
}

// diffSets returns the prefix PDUs that transform old into next: withdrawals
// for tuples only in old, announcements for tuples only in next.
func diffSets(old, next *rpki.Set) []Prefix {
	var out []Prefix
	a, b := old.VRPs(), next.VRPs()
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = append(out, Prefix{Flags: FlagAnnounce, VRP: b[j]})
			j++
		case j >= len(b):
			out = append(out, Prefix{Flags: FlagWithdraw, VRP: a[i]})
			i++
		default:
			switch c := a[i].Compare(b[j]); {
			case c == 0:
				i++
				j++
			case c < 0:
				out = append(out, Prefix{Flags: FlagWithdraw, VRP: a[i]})
				i++
			default:
				out = append(out, Prefix{Flags: FlagAnnounce, VRP: b[j]})
				j++
			}
		}
	}
	return out
}

// Serve accepts router connections on l until Close is called. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rtr: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handle(nc)
	}
}

// ListenAndServe listens on addr ("host:port") and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and disconnects all routers.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.c.Close()
	}
	s.conns = make(map[*conn]struct{})
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle runs one router session.
func (s *Server) handle(nc net.Conn) {
	c := &conn{c: nc, version: Version1}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		nc.Close()
	}()

	for {
		pdu, version, err := ReadPDU(nc)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				// Reply with a version WritePDU accepts: the version byte
				// ReadPDU returned is the peer's own, which for an
				// unsupported-version PDU is the bogus byte itself and would
				// make WritePDU reject our Error Report. Fall back to the
				// connection's negotiated (or default) version.
				v := version
				if v != Version0 && v != Version1 {
					c.mu.Lock()
					v = c.version
					c.mu.Unlock()
				}
				if serr := c.send(v, &ErrorReport{Code: pe.Code, Text: pe.Msg}); serr != nil {
					s.logf("rtr server: error report: %v", serr)
				}
			}
			if !errors.Is(err, net.ErrClosed) {
				s.logf("rtr server: read: %v", err)
			}
			return
		}
		c.mu.Lock()
		c.version = version
		c.mu.Unlock()
		switch q := pdu.(type) {
		case *ResetQuery:
			if err := s.sendFull(c, version); err != nil {
				s.logf("rtr server: reset response: %v", err)
				return
			}
		case *SerialQuery:
			if err := s.answerSerialQuery(c, version, q); err != nil {
				s.logf("rtr server: serial response: %v", err)
				return
			}
		case *ErrorReport:
			s.logf("rtr server: router reported error %d: %s", q.Code, q.Text)
			return
		default:
			if serr := c.send(version, &ErrorReport{
				Code: ErrInvalidRequest,
				Text: fmt.Sprintf("unexpected PDU type %d from router", pdu.Type()),
			}); serr != nil {
				s.logf("rtr server: error report: %v", serr)
			}
			return
		}
	}
}

// sendFull answers a Reset Query: Cache Response, every VRP, End of Data.
func (s *Server) sendFull(c *conn, version byte) error {
	s.mu.Lock()
	session, serial := s.sessionID, s.serial
	vrps := s.current.VRPs()
	s.mu.Unlock()
	pdus := make([]PDU, 0, len(vrps)+2)
	pdus = append(pdus, &CacheResponse{SessionID: session})
	for i := range vrps {
		pdus = append(pdus, &Prefix{Flags: FlagAnnounce, VRP: vrps[i]})
	}
	pdus = append(pdus, s.endOfData(session, serial))
	return c.send(version, pdus...)
}

// answerSerialQuery sends an incremental update when the session matches and
// the delta chain from the router's serial is retained; otherwise Cache
// Reset.
func (s *Server) answerSerialQuery(c *conn, version byte, q *SerialQuery) error {
	s.mu.Lock()
	session, serial := s.sessionID, s.serial
	var chain []Prefix
	ok := q.SessionID == session
	if ok && q.Serial != serial {
		for from := q.Serial + 1; ; from++ {
			d, have := s.deltas[from]
			if !have {
				ok = false
				break
			}
			chain = append(chain, d...)
			if from == serial {
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		return c.send(version, &CacheReset{})
	}
	pdus := make([]PDU, 0, len(chain)+2)
	pdus = append(pdus, &CacheResponse{SessionID: session})
	for i := range chain {
		pdus = append(pdus, &chain[i])
	}
	pdus = append(pdus, s.endOfData(session, serial))
	return c.send(version, pdus...)
}

func (s *Server) endOfData(session uint16, serial Serial) *EndOfData {
	return &EndOfData{
		SessionID: session,
		Serial:    serial,
		Refresh:   s.Refresh,
		Retry:     s.Retry,
		Expire:    s.Expire,
	}
}
