package rtr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rov"
	"repro/internal/rpki"
)

// Server is the cache side of the protocol: the "trusted local cache" of
// Figure 1. It serves the current VRP set to any number of router clients,
// assigns serial numbers to updates, answers Serial Queries with incremental
// deltas when it can, and pushes Serial Notify PDUs when the data changes.
//
// The server is built for router-population scale (ROADMAP item 2): every
// piece of state a response needs lives in one immutable published value
// swapped atomically on each update, so the read paths — full responses,
// serial-query answers, notifies — never take a server-wide lock. Sessions
// live in a sharded registry, and all writes to routers flow through
// per-connection bounded outbound queues drained by a fixed writer pool:
// publishing is queue handoff, never socket I/O, so one stalled router
// cannot slow an update down. A router that stops draining its TCP side
// either overflows its queue or exceeds the write deadline, and is
// disconnected; a healthy RFC 8210 router simply redials and resumes with a
// Serial Query.
//
// The cache stores no delta chains: each update's table goes into a short
// ring of immutable rov snapshots sharing one arena lineage, and the answer
// to a Serial Query is synthesized at write time as the structural diff
// between the router's retained snapshot and the current one — exact
// between any two retained serials, O(changed) in the snapshots'
// divergence, and free of serial arithmetic (the ring is searched by serial
// equality).
type Server struct {
	// Timers advertised in version-1 End of Data PDUs (seconds). Zero values
	// are replaced by the RFC 8210 suggested defaults.
	Refresh, Retry, Expire uint32
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...interface{})
	// KeepDeltas bounds how many past serials remain answerable by
	// incremental updates (older Serial Queries get Cache Reset). Default 16.
	KeepDeltas int
	// Writers is the size of the writer pool draining the per-connection
	// outbound queues. Default 4. Set before Serve.
	Writers int
	// QueueDepth bounds each connection's outbound response queue. A router
	// that queues more unanswered queries than this — it is sending queries
	// without reading responses — is disconnected. Serial Notifies do not
	// count against the bound: the notify mailbox coalesces to the newest
	// serial and can never overflow. Default 32. Set before Serve.
	QueueDepth int
	// WriteTimeout bounds each queued write (one PDU, or one streamed
	// response). A router whose TCP receive window stays closed past it is
	// disconnected instead of pinning a pool writer forever. Default 30s.
	// Set before Serve.
	WriteTimeout time.Duration

	// pub is the published state: session, serial, and the snapshot ring,
	// one immutable value shared by every session and swapped atomically by
	// publishers. Readers Load it once and answer from that coherent view.
	pub atomic.Pointer[published]
	// writeMu serializes publishers (UpdateSet, ApplyDelta, SetSession);
	// readers never take it.
	writeMu sync.Mutex
	// live applies each delta as a persistent-snapshot update; its retained
	// snapshots share an arena lineage, which is what makes the on-demand
	// serial-to-serial diff structural instead of a full table walk.
	live *rov.LiveIndex

	// shards is the session registry: connections hash across fixed shards,
	// so connect/disconnect contends on 1/connShards of the registry and a
	// notify broadcast never holds more than one shard lock at a time.
	shards [connShards]connShard

	// The writer pool: conns with pending output wait in dispatchQ (each at
	// most once — conn.scheduled), and wake carries one token per parked
	// writer. Tokens are sent after the queue append and dropped when the
	// channel is full, which is safe: a full channel means enough pending
	// tokens to re-check the queue after the append in any interleaving.
	dispatchMu sync.Mutex
	dispatchQ  []*conn
	wake       chan struct{}
	stopCh     chan struct{}
	startPool  sync.Once
	writerWG   sync.WaitGroup

	stateMu  sync.Mutex
	listener net.Listener
	closed   bool

	nextShard atomic.Uint32
}

// connShards is the session-registry shard count. Fixed: shards exist to
// split lock contention, not to be tuned.
const connShards = 16

// connShard is one registry shard. closed flips under mu during Server.Close
// so a connection racing the shutdown sweep can never register unnoticed.
type connShard struct {
	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
}

func (sh *connShard) add(c *conn) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return false
	}
	sh.conns[c] = struct{}{}
	return true
}

func (sh *connShard) remove(c *conn) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.conns, c)
}

// published is the immutable publish state. Publishers build a fresh value
// (including a fresh snaps slice) and swap the pointer; a stored value is
// never mutated again, so lock-free readers see a coherent session, serial,
// and ring.
type published struct {
	session uint16
	serial  Serial
	snaps   []serialSnapshot // oldest first; last is the current serial's table
}

// current returns the table at the published serial.
func (p *published) current() *rov.Index { return p.snaps[len(p.snaps)-1].table }

// lookup returns the retained table at serial, or nil when it has been
// evicted from the ring (no serial arithmetic: the ring is searched by
// equality, and its length is the retention policy).
func (p *published) lookup(serial Serial) *rov.Index {
	for _, sn := range p.snaps {
		if sn.serial == serial {
			return sn.table
		}
	}
	return nil
}

// serialSnapshot pairs a serial number with the immutable table the cache
// served at that serial.
type serialSnapshot struct {
	serial Serial
	table  *rov.Index
}

// connState is a connection's lifecycle: active (readable, writable),
// closing (a terminal Error Report is queued; the writer closes the socket
// once the queue drains), dead (torn down, deregistered).
type connState uint8

const (
	connActive connState = iota
	connClosing
	connDead
)

// outKind tags a queued outbound response descriptor.
type outKind uint8

const (
	outFull   outKind = iota // Reset Query answer: full-table response
	outSerial                // Serial Query answer: delta, empty update, or Cache Reset
	outError                 // terminal Error Report (conn moves to connClosing)
)

// outItem is one queued response. Queues hold descriptors, not materialized
// PDUs: the writer renders the response from the published state at write
// time, so a deep queue costs bytes per entry, not a table copy, and a
// delayed answer reflects the freshest data.
type outItem struct {
	kind    outKind
	version byte
	query   SerialQuery // outSerial
	errCode uint16      // outError
	errText string
}

type conn struct {
	c     net.Conn
	shard *connShard
	// bw is the connection's reused encode buffer: streamed responses write
	// through it PDU by PDU, so a full-table answer is allocation-bounded
	// instead of materializing len(vrps)+2 PDU values.
	bw *bufio.Writer

	mu      sync.Mutex
	version byte // fixed by the most recent PDU received from the router
	state   connState
	// The coalescing notify mailbox: newest serial wins (RFC 1982 compare),
	// so pending notifies occupy one slot no matter how fast the cache
	// publishes.
	notifySerial Serial
	hasNotify    bool
	queue        []outItem
	// scheduled marks the conn as either waiting in dispatchQ or being
	// drained by a writer — the invariant that keeps each conn owned by at
	// most one writer at a time, so PDU framing on the socket is never
	// interleaved.
	scheduled bool
}

// NewServer creates a cache serving the given initial VRP set.
func NewServer(initial *rpki.Set) *Server {
	if initial == nil {
		initial = rpki.NewSet(nil)
	}
	s := &Server{
		Refresh:      3600,
		Retry:        600,
		Expire:       7200,
		KeepDeltas:   16,
		Writers:      4,
		QueueDepth:   32,
		WriteTimeout: 30 * time.Second,
		live:         rov.NewLiveIndex(initial),
		stopCh:       make(chan struct{}),
	}
	p := &published{session: 0x5eed, serial: 1}
	p.snaps = []serialSnapshot{{serial: p.serial, table: s.live.Snapshot()}}
	s.pub.Store(p)
	for i := range s.shards {
		s.shards[i].conns = make(map[*conn]struct{})
	}
	return s
}

// Serial returns the current serial number (lock-free).
func (s *Server) Serial() Serial { return s.pub.Load().serial }

// SessionID returns the cache session identifier (lock-free).
func (s *Server) SessionID() uint16 { return s.pub.Load().session }

// SetSession overrides the session ID and serial the cache serves from,
// before any router connects. A cache restarted from a state snapshot keeps
// its previous session so routers resume their incremental stream with a
// Serial Query; a cache restarted fresh picks a new session ID, which (per
// RFC 8210 §5.5) forces routers through Cache Reset and a full resync.
func (s *Server) SetSession(id uint16, serial Serial) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	// Prior serials belong to the old numbering; only the current table is
	// answerable incrementally from here.
	s.pub.Store(&published{
		session: id,
		serial:  serial,
		snaps:   []serialSnapshot{{serial: serial, table: s.live.Snapshot()}},
	})
}

// UpdateSet replaces the served VRP set, publishes the new table under the
// next serial, and notifies connected routers. The announce/withdraw delta
// is derived with rov.Diff against the previous retained snapshot — the
// same structural diff that synthesizes Serial Query answers — so applying
// it keeps the whole ring on one arena lineage. (Building next's index is
// necessarily O(next); callers holding an explicit delta should use
// ApplyDelta, which is O(delta) end to end.)
//
// UpdateSet never performs socket I/O: notifying N routers is N coalescing
// mailbox offers, so publish latency is independent of the slowest router.
func (s *Server) UpdateSet(next *rpki.Set) {
	s.writeMu.Lock()
	prev := s.pub.Load().current()
	ann, wd := rov.Diff(prev, rov.NewIndex(next))
	session, serial := s.publishLocked(ann, wd)
	s.writeMu.Unlock()
	s.broadcastNotify(session, serial)
}

// ApplyDelta publishes an announce/withdraw delta directly — the O(delta)
// publish path for callers that track changes instead of whole sets (a
// delta-fed pipeline, the rtrload churn driver). Announces of VRPs already
// present and withdrawals of absent VRPs are no-ops; responses stay exact
// because every answer is synthesized by diffing retained snapshots. It
// returns the serial the delta was published under.
func (s *Server) ApplyDelta(announced, withdrawn []rpki.VRP) Serial {
	s.writeMu.Lock()
	session, serial := s.publishLocked(announced, withdrawn)
	s.writeMu.Unlock()
	s.broadcastNotify(session, serial)
	return serial
}

// publishLocked applies a delta to the live table and swaps in the next
// published value: serial bumped, new snapshot appended, ring trimmed to
// KeepDeltas+2 (the current serial plus the KeepDeltas+1 serials behind it
// that stay answerable). The snaps slice is freshly allocated per publish —
// the ring is small — so the previous published value stays immutable under
// concurrent readers. Caller holds writeMu.
func (s *Server) publishLocked(announced, withdrawn []rpki.VRP) (session uint16, serial Serial) {
	old := s.pub.Load()
	s.live.Apply(announced, withdrawn)
	serial = SerialAdvance(old.serial, 1)
	keep := s.KeepDeltas + 2
	if keep < 1 {
		keep = 1
	}
	start := 0
	if drop := len(old.snaps) + 1 - keep; drop > 0 {
		start = drop
	}
	snaps := make([]serialSnapshot, 0, len(old.snaps)-start+1)
	snaps = append(snaps, old.snaps[start:]...)
	snaps = append(snaps, serialSnapshot{serial: serial, table: s.live.Snapshot()})
	s.pub.Store(&published{session: old.session, serial: serial, snaps: snaps})
	return old.session, serial
}

// broadcastNotify offers the new serial to every connection's notify
// mailbox. Shard locks are held only to copy the membership, mailbox offers
// take only the target's own lock, and queue handoff to the writer pool is
// non-blocking — no socket is touched on this path.
func (s *Server) broadcastNotify(session uint16, serial Serial) {
	_ = session // notifies are rendered from the published state at write time
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.conns) == 0 {
			sh.mu.Unlock()
			continue
		}
		conns := make([]*conn, 0, len(sh.conns))
		for c := range sh.conns {
			conns = append(conns, c)
		}
		sh.mu.Unlock()
		for _, c := range conns {
			s.offerNotify(c, serial)
		}
	}
}

// offerNotify coalesces serial into c's notify mailbox and schedules the
// conn. Newest serial wins by RFC 1982 comparison; the mailbox is one slot,
// so notify pressure can never overflow a router's queue.
func (s *Server) offerNotify(c *conn, serial Serial) {
	c.mu.Lock()
	if c.state != connActive {
		c.mu.Unlock()
		return
	}
	if !c.hasNotify || SerialNewer(serial, c.notifySerial) {
		c.notifySerial = serial
	}
	c.hasNotify = true
	sched := !c.scheduled
	c.scheduled = true
	c.mu.Unlock()
	if sched {
		s.dispatch(c)
	}
}

// enqueue appends a response descriptor to c's bounded outbound queue and
// schedules the conn, disconnecting it on overflow. closeAfter marks the
// item terminal: no further enqueues are accepted and the writer closes the
// socket once the queue drains. Returns false when the conn is no longer
// accepting work.
func (s *Server) enqueue(c *conn, item outItem, closeAfter bool) bool {
	depth := s.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	c.mu.Lock()
	if c.state != connActive {
		c.mu.Unlock()
		return false
	}
	if len(c.queue) >= depth {
		c.mu.Unlock()
		s.logf("rtr server: %v: outbound queue overflow (%d pending); disconnecting", c.c.RemoteAddr(), depth)
		s.disconnect(c)
		return false
	}
	c.queue = append(c.queue, item)
	if closeAfter {
		c.state = connClosing
	}
	sched := !c.scheduled
	c.scheduled = true
	c.mu.Unlock()
	if sched {
		s.dispatch(c)
	}
	return true
}

// dispatch hands a scheduled conn to the writer pool. The wake send is
// non-blocking: see the field comment on wake for why a dropped token can
// never strand the queue.
func (s *Server) dispatch(c *conn) {
	s.dispatchMu.Lock()
	s.dispatchQ = append(s.dispatchQ, c)
	s.dispatchMu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// nextConn pops the oldest scheduled conn, or nil when none waits.
func (s *Server) nextConn() *conn {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	if len(s.dispatchQ) == 0 {
		return nil
	}
	c := s.dispatchQ[0]
	copy(s.dispatchQ, s.dispatchQ[1:])
	s.dispatchQ[len(s.dispatchQ)-1] = nil
	s.dispatchQ = s.dispatchQ[:len(s.dispatchQ)-1]
	return c
}

// startWriters launches the writer pool (once, on the first connection).
func (s *Server) startWriters() {
	n := s.Writers
	if n <= 0 {
		n = 4
	}
	s.wake = make(chan struct{}, n)
	s.writerWG.Add(n)
	for i := 0; i < n; i++ {
		go s.writer()
	}
}

// writer is one pool worker: drain scheduled conns, park on wake when the
// dispatch queue is empty, exit on stopCh.
func (s *Server) writer() {
	defer s.writerWG.Done()
	for {
		c := s.nextConn()
		if c == nil {
			select {
			case <-s.wake:
			case <-s.stopCh:
				return
			}
			continue
		}
		s.drain(c)
	}
}

// drain writes c's pending output: the notify mailbox first (it supersedes
// nothing — a notify may legally interleave anywhere in the stream — and
// clearing it first keeps "new data" latency independent of queued
// responses), then queued response descriptors in FIFO order. It returns
// when the conn has no pending output (clearing scheduled under the same
// lock that observed emptiness, so a concurrent enqueue either sees
// scheduled and is picked up by this loop, or reschedules) or on write
// error, which tears the conn down.
func (s *Server) drain(c *conn) {
	for {
		c.mu.Lock()
		if c.state == connDead {
			c.scheduled = false
			c.mu.Unlock()
			return
		}
		var (
			doNotify bool
			serial   Serial
			item     outItem
			haveItem bool
		)
		switch {
		case c.hasNotify:
			doNotify, serial = true, c.notifySerial
			c.hasNotify = false
		case len(c.queue) > 0:
			item, haveItem = c.queue[0], true
			copy(c.queue, c.queue[1:])
			c.queue[len(c.queue)-1] = outItem{}
			c.queue = c.queue[:len(c.queue)-1]
		default:
			closing := c.state == connClosing
			c.scheduled = false
			c.mu.Unlock()
			if closing {
				s.disconnect(c)
			}
			return
		}
		version := c.version
		c.mu.Unlock()

		var err error
		switch {
		case doNotify:
			err = s.writeNotify(c, version, serial)
		case haveItem:
			err = s.writeItem(c, item)
		}
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("rtr server: write to %v: %v", c.c.RemoteAddr(), err)
			}
			s.disconnect(c)
			return
		}
	}
}

// disconnect tears a conn down from any goroutine: mark it dead, drop
// pending output, close the socket, deregister. Idempotent — the handler's
// exit path, a writer's failed write, an overflow, and Close may race here.
func (s *Server) disconnect(c *conn) {
	c.mu.Lock()
	if c.state == connDead {
		c.mu.Unlock()
		return
	}
	c.state = connDead
	c.queue = nil
	c.hasNotify = false
	c.mu.Unlock()
	c.c.Close()
	c.shard.remove(c)
}

// writeNotify renders and writes one Serial Notify. The session comes from
// the published state at write time; the serial is the coalesced mailbox
// value (a router syncing to it learns of anything newer from End of Data).
func (s *Server) writeNotify(c *conn, version byte, serial Serial) error {
	p := s.pub.Load()
	s.setWriteDeadline(c)
	return WritePDU(c.c, version, &SerialNotify{SessionID: p.session, Serial: serial})
}

// writeItem renders and writes one queued response descriptor.
func (s *Server) writeItem(c *conn, item outItem) error {
	s.setWriteDeadline(c)
	switch item.kind {
	case outFull:
		return s.streamFull(c, item.version)
	case outSerial:
		return s.streamSerial(c, item.version, item.query)
	default: // outError
		return WritePDU(c.c, item.version, &ErrorReport{Code: item.errCode, Text: item.errText})
	}
}

func (s *Server) setWriteDeadline(c *conn) {
	d := s.WriteTimeout
	if d <= 0 {
		d = 30 * time.Second
	}
	// Errors (e.g. an already-closed socket) surface on the write itself.
	_ = c.c.SetWriteDeadline(time.Now().Add(d))
}

// streamFull answers a Reset Query: Cache Response, every VRP, End of Data,
// streamed through the connection's reused encode buffer with one Prefix
// value reused for every VRP — the response is allocation-bounded
// regardless of table size.
func (s *Server) streamFull(c *conn, version byte) error {
	p := s.pub.Load()
	c.bw.Reset(c.c)
	if err := WritePDU(c.bw, version, &CacheResponse{SessionID: p.session}); err != nil {
		return err
	}
	// Encode each prefix into the bufio writer's spare capacity
	// (AvailableBuffer) instead of through WritePDU: an escaping stack
	// buffer per PDU would cost an allocation per VRP on a path that runs
	// len(table) times per Reset Query.
	var pp Prefix
	pp.Flags = FlagAnnounce
	var werr error
	p.current().VisitVRPs(func(v rpki.VRP) bool {
		pp.VRP = v
		if c.bw.Available() < 32 { // keep AvailableBuffer large enough to encode in place
			if werr = c.bw.Flush(); werr != nil {
				return false
			}
		}
		_, werr = c.bw.Write(appendPrefix(c.bw.AvailableBuffer(), version, &pp))
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	if err := WritePDU(c.bw, version, s.endOfData(p.session, p.serial)); err != nil {
		return err
	}
	return c.bw.Flush()
}

// streamSerial answers a Serial Query from the published state at write
// time: an incremental update when the session matches and the router's
// serial is still in the snapshot ring, otherwise Cache Reset. The update
// is synthesized as the structural diff between the retained snapshot and
// the current table — no stored chain, O(changed) between any two retained
// serials (a query at the current serial diffs a snapshot against itself:
// the empty update).
func (s *Server) streamSerial(c *conn, version byte, q SerialQuery) error {
	p := s.pub.Load()
	if q.SessionID != p.session {
		return WritePDU(c.c, version, &CacheReset{})
	}
	from := p.lookup(q.Serial)
	if from == nil {
		return WritePDU(c.c, version, &CacheReset{})
	}
	ann, wd := rov.Diff(from, p.current())
	c.bw.Reset(c.c)
	if err := WritePDU(c.bw, version, &CacheResponse{SessionID: p.session}); err != nil {
		return err
	}
	var pp Prefix
	pp.Flags = FlagAnnounce
	for i := range ann {
		pp.VRP = ann[i]
		if _, err := c.bw.Write(appendPrefix(c.bw.AvailableBuffer(), version, &pp)); err != nil {
			return err
		}
	}
	pp.Flags = FlagWithdraw
	for i := range wd {
		pp.VRP = wd[i]
		if _, err := c.bw.Write(appendPrefix(c.bw.AvailableBuffer(), version, &pp)); err != nil {
			return err
		}
	}
	if err := WritePDU(c.bw, version, s.endOfData(p.session, p.serial)); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Serve accepts router connections on l until Close is called. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return errors.New("rtr: server closed")
	}
	s.listener = l
	s.stateMu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		//repro:owns-goroutine (*Server).Close
		go s.handle(nc)
	}
}

// ListenAndServe listens on addr ("host:port") and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener, disconnects all routers, and stops the writer
// pool.
func (s *Server) Close() error {
	s.stateMu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	var err error
	if s.listener != nil && !alreadyClosed {
		err = s.listener.Close()
	}
	s.stateMu.Unlock()
	if alreadyClosed {
		return nil
	}
	close(s.stopCh)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.closed = true
		conns := make([]*conn, 0, len(sh.conns))
		for c := range sh.conns {
			conns = append(conns, c)
		}
		sh.mu.Unlock()
		for _, c := range conns {
			s.disconnect(c)
		}
	}
	s.writerWG.Wait()
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ConnCount reports the number of currently registered router sessions
// across all shards. It is an observability hook: the soak harness and the
// slow-router tests use it to watch routers being disconnected by write
// deadline or queue overflow.
func (s *Server) ConnCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.conns)
		sh.mu.Unlock()
	}
	return n
}

// handle runs one router session: it owns the read side, parses queries,
// and enqueues response descriptors for the writer pool. It never writes to
// the socket itself.
func (s *Server) handle(nc net.Conn) {
	s.startPool.Do(s.startWriters)
	sh := &s.shards[s.nextShard.Add(1)%connShards]
	c := &conn{
		c:       nc,
		shard:   sh,
		bw:      bufio.NewWriterSize(nc, 4096),
		version: Version1,
		state:   connActive,
	}
	if !sh.add(c) {
		nc.Close() // lost the race with Close
		return
	}
	defer s.release(c)

	for {
		pdu, version, err := ReadPDU(nc)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				// Reply with a version WritePDU accepts: the version byte
				// ReadPDU returned is the peer's own, which for an
				// unsupported-version PDU is the bogus byte itself and would
				// make WritePDU reject our Error Report. Fall back to the
				// connection's negotiated (or default) version.
				v := version
				if v != Version0 && v != Version1 {
					c.mu.Lock()
					v = c.version
					c.mu.Unlock()
				}
				s.enqueue(c, outItem{kind: outError, version: v, errCode: pe.Code, errText: pe.Msg}, true)
			}
			if !errors.Is(err, net.ErrClosed) {
				s.logf("rtr server: read: %v", err)
			}
			return
		}
		c.mu.Lock()
		c.version = version
		c.mu.Unlock()
		switch q := pdu.(type) {
		case *ResetQuery:
			if !s.enqueue(c, outItem{kind: outFull, version: version}, false) {
				return
			}
		case *SerialQuery:
			if !s.enqueue(c, outItem{kind: outSerial, version: version, query: *q}, false) {
				return
			}
		case *ErrorReport:
			s.logf("rtr server: router reported error %d: %s", q.Code, q.Text)
			return
		default:
			s.enqueue(c, outItem{
				kind:    outError,
				version: version,
				errCode: ErrInvalidRequest,
				errText: fmt.Sprintf("unexpected PDU type %d from router", pdu.Type()),
			}, true)
			return
		}
	}
}

// release ends a handler: an active conn is torn down; a closing conn is
// left to its writer, which closes the socket once the terminal Error
// Report drains.
func (s *Server) release(c *conn) {
	c.mu.Lock()
	st := c.state
	c.mu.Unlock()
	if st == connActive {
		s.disconnect(c)
	}
}

func (s *Server) endOfData(session uint16, serial Serial) *EndOfData {
	return &EndOfData{
		SessionID: session,
		Serial:    serial,
		Refresh:   s.Refresh,
		Retry:     s.Retry,
		Expire:    s.Expire,
	}
}
