package rtr

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/rpki"
)

// Supervisor completes the router-side deployment story: it owns the dial
// function, a persistent subscriber list, and the session state, and drives
// the full RFC 8210 lifecycle across connections. A Client is single-shot
// by design — when its dispatch loop dies the session is over — so the
// Supervisor redials with exponential backoff plus jitter, constructs a
// fresh Client seeded with the dead generation's SessionState, re-registers
// every subscriber, and resumes with a Serial Query carrying the cached
// session ID and serial. When the cache cannot serve the incremental stream
// (it restarted with a new session ID, or evicted the delta chain), the
// client falls back to a Reset Query and the subscriber delta is computed
// against the carried table — a delta-fed rov.LiveIndex resyncs in O(diff)
// either way. Only when the carried state itself is unusable (the Expire
// window passed during the outage, so §6 forbids diffing against it) do
// reset subscribers rebuild from the full post-reconnect table.
//
// Health follows the paper's deployment assumption — a router continuously
// validated against its cache: Healthy measures the Expire window from the
// last *successful sync*, carried across client generations, so a cache
// that flaps every few minutes cannot keep stale data looking fresh by
// resetting the clock at each reconnect.
type Supervisor struct {
	// Dial establishes a connection to the cache; it is called once per
	// client generation. Required.
	Dial func() (net.Conn, error)
	// Version is the protocol version for each new client.
	Version byte
	// OnUpdate, when set, is invoked after every successful sync with the
	// new serial, on the supervisor goroutine.
	OnUpdate func(serial Serial)
	// OnDown, when set, is invoked on the supervisor goroutine each time a
	// client generation ends or a dial fails, with the error that ended it.
	// By the time it fires the connection is torn down and the session
	// state carried; the supervisor is about to back off and redial. A
	// multi-cache coordinator (MultiSupervisor) uses it to fail over.
	OnDown func(err error)
	// Refresh/Retry/Expire are fallback timers until the cache advertises
	// its own in a version-1 End of Data; adopted values are carried across
	// generations. Read or set them only before Run or after Stop.
	Refresh, Retry, Expire time.Duration
	// BackoffMin seeds the redial backoff; each failed generation doubles
	// it up to BackoffMax. A zero BackoffMax caps at the current Retry
	// interval — the cadence RFC 8210 prescribes for an unreachable cache —
	// and never beyond the Expire window. The backoff resets to BackoffMin
	// after every successful sync.
	BackoffMin, BackoffMax time.Duration
	// SyncTimeout bounds each Sync exchange in wall-clock time (see
	// Poller.SyncTimeout): a cache that accepts connections but never
	// answers must not wedge a generation forever, or the supervisor could
	// never redial. Zero derives the bound from the current Retry interval.
	SyncTimeout time.Duration
	// Logf, when set, receives lifecycle diagnostics (redials, fallbacks).
	Logf func(format string, args ...interface{})

	mu    sync.Mutex
	subs  []func(announced, withdrawn []rpki.VRP)
	rsubs []func(table []rpki.VRP)
	// state is the session carried across generations; nil means the next
	// generation starts fresh (first connect, or the data expired).
	state *SessionState
	// lastSync/synced are the supervisor's own Expire clock, seeded into
	// every generation's poller and surfaced by Healthy.
	lastSync time.Time
	synced   bool
	// delivered records that some subscriber has received data; dropping
	// carried state after that point marks a discontinuity, and the next
	// successful sync is delivered as a reset instead of a delta.
	delivered     bool
	discontinuity bool
	cur           *Poller // current generation; nil between connections
	stopped       bool
	stopCh        chan struct{}
	doneCh        chan struct{}
	stats         SupervisorStats

	// nowFn/afterFn/jitterFn are the supervisor's clock and jitter source,
	// overridable by tests; nil means time.Now / time.After / math/rand.
	nowFn    func() time.Time
	afterFn  func(time.Duration) <-chan time.Time
	jitterFn func() float64
}

// SupervisorStats counts lifecycle events; read a snapshot with Stats.
type SupervisorStats struct {
	// Dials is the number of connection attempts; DialFailures of them
	// returned an error before a client was even constructed.
	Dials        int
	DialFailures int
	// Generations counts clients that completed at least one sync.
	Generations int
	// SerialResumes counts generations whose first sync resumed the carried
	// session purely by Serial Query; ResetFallbacks counts generations
	// that carried state but were forced through a full Reset Query (cache
	// restarted or evicted the delta chain) — still delivered to
	// subscribers as a delta against the carried table.
	SerialResumes  int
	ResetFallbacks int
	// Rebuilds counts reset deliveries: the carried state was unusable
	// (expired during the outage) and reset subscribers replaced their
	// derived state from the full table.
	Rebuilds int
}

// NewSupervisor returns a supervisor with RFC 8210 default timers and a
// one-second initial backoff. The caller registers subscribers, then Run.
func NewSupervisor(dial func() (net.Conn, error)) *Supervisor {
	return &Supervisor{
		Dial:       dial,
		Version:    Version1,
		Refresh:    3600 * time.Second,
		Retry:      600 * time.Second,
		Expire:     7200 * time.Second,
		BackoffMin: time.Second,
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
}

func (s *Supervisor) timeNow() time.Time {
	if s.nowFn != nil {
		return s.nowFn()
	}
	return time.Now()
}

func (s *Supervisor) timerAfter(d time.Duration) <-chan time.Time {
	if s.afterFn != nil {
		return s.afterFn(d)
	}
	return time.After(d)
}

func (s *Supervisor) jitter() float64 {
	if s.jitterFn != nil {
		return s.jitterFn()
	}
	return rand.Float64()
}

func (s *Supervisor) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Subscribe registers fn as a delta consumer with the same contract as
// Client.Subscribe — sequential delivery, deltas exact against the local
// table — except that delivery persists across reconnects: the supervisor
// re-registers its relay on every client generation, and because each
// generation is seeded with the previous one's table, the delta stream
// stays continuous through redials, session changes, and Reset fallbacks.
// A consumer that derives state from deltas should pair Subscribe with
// OnReset for the one case deltas cannot cover. Register before Run.
func (s *Supervisor) Subscribe(fn func(announced, withdrawn []rpki.VRP)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

// OnReset registers fn to receive the full post-sync table whenever the
// supervisor could not carry state across a reconnect — the outage
// outlasted the Expire window, so the new table cannot be expressed as a
// delta against what subscribers hold. Consumers must replace their derived
// state (rov.LiveIndex.ResetTo); the matching delta delivery is suppressed.
// Delta-only consumers (counters, logs) may skip this. Register before Run.
func (s *Supervisor) OnReset(fn func(table []rpki.VRP)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rsubs = append(s.rsubs, fn)
}

// Stats returns a snapshot of the lifecycle counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Healthy reports whether a sync succeeded within the Expire window — the
// window is measured from the last successful sync on any generation, never
// from a (re)connect, so it keeps shrinking through an outage no matter how
// often the supervisor redials. When false, RFC 8210 §6 says the router
// must stop using the data (see rov callers of Poller.Healthy).
func (s *Supervisor) Healthy() bool {
	now := s.timeNow()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced && now.Sub(s.lastSync) < s.Expire
}

// CurrentTimers returns the refresh, retry, and expire intervals currently
// in force: the configured fallbacks, overwritten by whatever the cache
// advertised in its most recent version-1 End of Data.
func (s *Supervisor) CurrentTimers() (refresh, retry, expire time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Refresh, s.Retry, s.Expire
}

// LastSync returns the time of the last successful sync on any generation.
func (s *Supervisor) LastSync() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSync
}

// Client returns the current generation's client, or nil between
// connections. The client may die at any moment; treat it as advisory
// (logging, table export), not as a handle to hold.
func (s *Supervisor) Client() *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return nil
	}
	return s.cur.Client
}

// Run drives the reconnect loop until Stop: dial, run a client generation
// to death, carry its state, back off, redial. It never gives up on its
// own — an unreachable cache surfaces as Healthy() == false once the
// Expire window passes, while Run keeps probing — and returns nil when
// stopped, or an error only for a misconfiguration (nil Dial).
func (s *Supervisor) Run() error {
	defer close(s.doneCh)
	if s.Dial == nil {
		return errors.New("rtr: Supervisor.Dial is nil")
	}
	backoff := s.BackoffMin
	if backoff <= 0 {
		backoff = time.Second
	}
	for {
		if s.isStopped() {
			return nil
		}
		synced, err := s.generation()
		if s.isStopped() {
			return nil
		}
		if s.OnDown != nil {
			s.OnDown(err)
		}
		if synced {
			backoff = s.BackoffMin
			if backoff <= 0 {
				backoff = time.Second
			}
		}
		// Jittered sleep in [backoff/2, backoff): half deterministic, half
		// random, so a cache restart does not resynchronize its routers
		// into a reconnect stampede.
		half := backoff / 2
		delay := half + time.Duration(s.jitter()*float64(backoff-half))
		s.logf("rtr supervisor: connection lost (%v); redialing in %v", err, delay)
		select {
		case <-s.stopCh:
			return nil
		case <-s.timerAfter(delay):
		}
		if limit := s.backoffCap(); backoff < limit {
			backoff *= 2
			if backoff > limit {
				backoff = limit
			}
		}
	}
}

// backoffCap bounds the redial backoff: BackoffMax when set, otherwise the
// current Retry interval, and never beyond the Expire window.
func (s *Supervisor) backoffCap() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	limit := s.BackoffMax
	if limit <= 0 {
		limit = s.Retry
	}
	if s.Expire > 0 && limit > s.Expire {
		limit = s.Expire
	}
	if limit < s.BackoffMin {
		limit = s.BackoffMin
	}
	return limit
}

// generation runs one client lifetime: dial, seed, sync until the
// connection dies. It reports whether any sync succeeded (resets the
// backoff) and the error that ended the generation.
func (s *Supervisor) generation() (syncedAny bool, err error) {
	s.mu.Lock()
	// Drop carried state once the Expire window has passed: §6 forbids
	// using the data, and the cache's table may have drifted arbitrarily —
	// the next successful sync is delivered as a reset, not a delta.
	// (timeNow only reads nowFn, so calling it under mu is safe.)
	if s.state != nil && s.synced && s.timeNow().Sub(s.lastSync) >= s.Expire {
		s.logf("rtr supervisor: carried state expired (last sync %v ago); next sync will reset subscribers",
			s.timeNow().Sub(s.lastSync))
		s.state = nil
		if s.delivered {
			s.discontinuity = true
		}
	}
	st := s.state
	disc := s.discontinuity
	refresh, retry, expire := s.Refresh, s.Retry, s.Expire
	lastSync, synced := s.lastSync, s.synced
	s.mu.Unlock()

	conn, err := s.Dial()
	s.mu.Lock()
	s.stats.Dials++
	if err != nil {
		s.stats.DialFailures++
		s.mu.Unlock()
		return false, err
	}
	s.mu.Unlock()

	c := NewClientResume(conn, st)
	c.Version = s.Version
	g := &generation{sup: s, client: c, resumed: st != nil, discontinuity: disc}
	c.SubscribeUpdates(g.relay)

	p := NewPoller(c)
	p.Refresh, p.Retry, p.Expire = refresh, retry, expire
	p.ExitOnDone = true
	p.SyncTimeout = s.SyncTimeout
	if p.SyncTimeout <= 0 {
		p.SyncTimeout = retry
	}
	p.nowFn, p.afterFn = s.nowFn, s.afterFn
	p.ResumeSyncState(lastSync, synced)
	p.OnUpdate = g.onUpdate

	s.mu.Lock()
	s.cur = p
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		// Stop raced the dial and may have missed s.cur; p.Run never
		// started, so tear the connection down here instead of p.Stop
		// (which would wait for a Run that will never begin).
		c.Close()
		s.mu.Lock()
		s.cur = nil
		s.mu.Unlock()
		return false, nil
	}

	err = p.Run()

	// The generation is over even if the connection is technically alive
	// (Run can return on protocol-level failures that leave the session
	// framed, e.g. persistent Error Reports): close it, or each redial
	// cycle would leak a connection and its dispatch goroutine.
	c.Close()
	// Drain the relay before the generation ends: OnDown fires next, and a
	// failover coordinator must observe every delta this generation
	// committed (its subscriber-fed mirror current) when it decides where to
	// switch. This also pins generations apart — update delivery never
	// crosses into the next client's stream.
	c.FlushSubscribers()

	// Carry the session and the adopted timers into the next generation.
	// The client's table survives its dispatch loop, and the poller's
	// timer fields are stable once Run has returned.
	st2 := c.SessionState()
	s.mu.Lock()
	s.cur = nil
	if st2 != nil {
		s.state = st2
	}
	s.Refresh, s.Retry, s.Expire = p.Refresh, p.Retry, p.Expire
	s.mu.Unlock()
	return g.syncedAny, err
}

// generation is the per-client glue: the relay registered as the client's
// update subscriber and the poller's OnUpdate hook. relay runs on the
// client's per-subscriber drainer goroutine, onUpdate on the supervisor
// goroutine — but onUpdate starts by flushing the client's subscribers, so
// for any one update the relay still completes before the producing sync's
// OnUpdate bookkeeping runs, exactly as when delivery was synchronous.
// deliveredAny is touched only on the drainer goroutine, syncedAny only on
// the supervisor goroutine; neither needs a lock.
type generation struct {
	sup    *Supervisor
	client *Client
	// resumed records that this client was seeded with carried state;
	// discontinuity that subscribers hold a table this client cannot diff
	// against (its first sync is delivered as a reset via onUpdate, and
	// relay suppresses the corresponding update).
	resumed       bool
	discontinuity bool
	deliveredAny  bool
	syncedAny     bool
}

// relay forwards a client update to the supervisor's subscribers. The first
// update of a discontinuous generation is suppressed: the client was seeded
// empty, so that update is the whole table announced at once, and onUpdate
// delivers it through the reset path instead. (The client delivers full
// syncs even when their delta is empty — a discontinuous resync to an
// identical or empty table must still consume the suppression here, or the
// next real delta would be swallowed.)
func (g *generation) relay(u Update) {
	if g.discontinuity && !g.deliveredAny {
		g.deliveredAny = true
		return
	}
	g.deliveredAny = true
	if len(u.Announced) == 0 && len(u.Withdrawn) == 0 {
		return
	}
	g.sup.deliverDelta(u.Announced, u.Withdrawn)
}

// onUpdate runs after every successful sync. The first one classifies how
// the generation rejoined the cache (serial resume, reset fallback, or
// subscriber reset) before the common bookkeeping.
func (g *generation) onUpdate(serial Serial) {
	// Close the async-delivery window before anything downstream runs: once
	// the flush returns, every subscriber has observed this sync's update,
	// so OnUpdate consumers (failover coordinators reading subscriber-fed
	// mirrors) see delivery and bookkeeping in the pre-fan-out order.
	g.client.FlushSubscribers()
	if !g.syncedAny {
		if g.discontinuity {
			// Deliver the reset before marking the sync done so a
			// subscriber never observes a post-reset delta arriving first.
			g.sup.deliverReset(g.client.Set().VRPs())
		}
		g.sup.classifyFirstSync(g.resumed, g.client.FullSyncs() == 0)
		g.syncedAny = true
	}
	// Adopt the cache's advertised timers as soon as a sync commits — not
	// only at generation end — so Healthy's Expire window and the backoff
	// cap track the values §6 says are in force right now.
	g.sup.adoptTimers(g.client)
	g.sup.noteSync(serial)
}

// deliverDelta fans a delta out to the Subscribe consumers, sequentially in
// registration order, on the calling goroutine (the client relay's drainer,
// or the supervisor goroutine for a reset's suppressed counterpart).
func (s *Supervisor) deliverDelta(announced, withdrawn []rpki.VRP) {
	s.mu.Lock()
	subs := make([]func(announced, withdrawn []rpki.VRP), len(s.subs))
	copy(subs, s.subs)
	s.delivered = true
	s.mu.Unlock()
	for _, fn := range subs {
		fn(announced, withdrawn)
	}
}

// deliverReset fans the full table out to the OnReset consumers and clears
// the discontinuity: from here on, deltas are continuous again.
func (s *Supervisor) deliverReset(table []rpki.VRP) {
	s.mu.Lock()
	rsubs := make([]func(table []rpki.VRP), len(s.rsubs))
	copy(rsubs, s.rsubs)
	s.delivered = true
	s.discontinuity = false
	s.stats.Rebuilds++
	s.mu.Unlock()
	s.logf("rtr supervisor: carried state unusable; resetting %d subscribers to a %d-VRP table", len(rsubs), len(table))
	for _, fn := range rsubs {
		fn(table)
	}
}

// classifyFirstSync updates the resume-vs-reset counters for a generation's
// first successful sync.
func (s *Supervisor) classifyFirstSync(resumed, serialOnly bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Generations++
	if !resumed {
		return
	}
	if serialOnly {
		s.stats.SerialResumes++
	} else {
		s.stats.ResetFallbacks++
	}
}

// adoptTimers copies the cache's advertised End of Data timers over the
// supervisor's current values, ignoring zero (unadvertised) fields.
func (s *Supervisor) adoptTimers(c *Client) {
	refresh, retry, expire, ok := c.Timers()
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if refresh > 0 {
		s.Refresh = refresh
	}
	if retry > 0 {
		s.Retry = retry
	}
	if expire > 0 {
		s.Expire = expire
	}
}

// noteSync advances the Expire clock shared across generations.
func (s *Supervisor) noteSync(serial Serial) {
	now := s.timeNow()
	s.mu.Lock()
	s.lastSync = now
	s.synced = true
	s.mu.Unlock()
	if s.OnUpdate != nil {
		s.OnUpdate(serial)
	}
}

// Stop terminates Run, tears down the current client generation, and waits
// for the supervisor goroutine to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.doneCh
		return
	}
	s.stopped = true
	close(s.stopCh)
	cur := s.cur
	s.mu.Unlock()
	if cur != nil {
		cur.Stop()
	}
	<-s.doneCh
}

func (s *Supervisor) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}
