package rtr

import (
	"bytes"
	"testing"

	"repro/internal/rpki"
)

// FuzzReadPDU checks the PDU parser never panics on arbitrary bytes and
// that everything it accepts re-serializes and re-parses identically.
func FuzzReadPDU(f *testing.F) {
	// Seed with every valid PDU kind.
	seedPDUs := []PDU{
		&SerialNotify{SessionID: 1, Serial: 2},
		&SerialQuery{SessionID: 1, Serial: 2},
		&ResetQuery{},
		&CacheResponse{SessionID: 3},
		&Prefix{Flags: FlagAnnounce, VRP: rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 24, AS: 1}},
		&Prefix{Flags: FlagWithdraw, VRP: rpki.VRP{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 2}},
		&EndOfData{SessionID: 1, Serial: 2, Refresh: 3, Retry: 4, Expire: 5},
		&CacheReset{},
		&ErrorReport{Code: 2, CausingPDU: []byte{1}, Text: "x"},
	}
	for _, p := range seedPDUs {
		for _, v := range []byte{Version0, Version1} {
			var buf bytes.Buffer
			if err := WritePDU(&buf, v, p); err == nil {
				f.Add(buf.Bytes())
			}
		}
	}
	f.Add([]byte{1, 99, 0, 0, 0, 0, 0, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		pdu, version, err := ReadPDU(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePDU(&buf, version, pdu); err != nil {
			t.Fatalf("re-serializing accepted PDU %T: %v", pdu, err)
		}
		pdu2, _, err := ReadPDU(&buf)
		if err != nil {
			t.Fatalf("re-parsing %T: %v", pdu, err)
		}
		if pdu.Type() != pdu2.Type() {
			t.Fatalf("type changed: %d vs %d", pdu.Type(), pdu2.Type())
		}
	})
}
