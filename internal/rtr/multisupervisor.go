package rtr

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rov"
	"repro/internal/rpki"
)

// Upstream is one cache in a MultiSupervisor's preference-ordered set.
type Upstream struct {
	// Name labels the upstream in stats and logs (typically its address).
	Name string
	// Dial establishes a connection to this cache; called once per client
	// generation. Required.
	Dial func() (net.Conn, error)
}

// MultiSupervisor is the RFC 8210 §11 cache set: it runs one Supervisor per
// upstream cache, in preference order, and serves its subscribers from the
// first healthy one. When the active cache dies or its data expires, the
// supervisor fails over to the next healthy cache; when a more-preferred
// cache recovers, it fails back.
//
// The defining property is how a switch reaches subscribers. Every upstream
// — active or not — continuously syncs into its own rov.LiveIndex mirror, so
// at the moment of a switch both the table subscribers hold and the new
// cache's table exist as immutable snapshots. The supervisor delivers the
// structural diff between them (rov.Diff): subscribers resync by delta,
// never by rebuild, no matter which cache the delta's two sides came from.
// Steady-state deliveries use the same reconcile path — the delivered
// snapshot and the mirror share an arena lineage, so each costs O(changed).
// Only when every upstream has been unreachable past the Expire window is
// the next table delivered through the OnReset path instead, matching the
// single-Supervisor contract (§6 forbids diffing against expired data).
type MultiSupervisor struct {
	// Version is the protocol version for every upstream's clients.
	Version byte
	// OnUpdate, when set, is invoked after every successful sync of the
	// active upstream with the new serial.
	OnUpdate func(serial Serial)
	// Refresh/Retry/Expire seed each upstream's Supervisor (which then
	// adopts the timers its cache advertises). Set before Run.
	Refresh, Retry, Expire time.Duration
	// BackoffMin/BackoffMax and SyncTimeout are forwarded to each
	// upstream's Supervisor. Set before Run.
	BackoffMin, BackoffMax time.Duration
	SyncTimeout            time.Duration
	// Logf, when set, receives lifecycle diagnostics (failovers, failbacks,
	// per-upstream supervisor events).
	Logf func(format string, args ...interface{})

	mu sync.Mutex
	// deliverMu serializes subscriber deliveries: reconcile holds it for
	// the whole decide-diff-deliver-record sequence, so concurrent syncs
	// and switches on different upstream goroutines cannot interleave their
	// deltas. Always acquired before mu, never while holding it.
	deliverMu sync.Mutex
	subs      []func(announced, withdrawn []rpki.VRP)
	rsubs     []func(table []rpki.VRP)
	ups       []*upstreamState
	active    int // index into ups, or -1 when no upstream serves
	// everActive distinguishes the first activation (plain startup) from a
	// recovery after a total outage (a failback).
	everActive bool
	// delivered is the table subscribers currently hold; reconcile diffs
	// the active mirror against it. Starts empty: the first delivery is the
	// whole table as one announce delta, the Supervisor contract.
	delivered    *rov.Index
	deliveredAny bool
	// lastSync/synced/curExpire are the subscriber-facing Expire clock:
	// lastSync advances on every reconcile of the active upstream, and a
	// reconcile that finds the clock beyond curExpire delivers through the
	// reset path instead of a delta.
	lastSync  time.Time
	synced    bool
	curExpire time.Duration
	stats     multiCounters
	running   bool
	stopped   bool

	// nowFn is the clock, overridable by tests; nil means time.Now.
	nowFn func() time.Time
}

// upstreamState is one upstream's slot: its continuously-synced mirror and
// its health/stats, guarded by the MultiSupervisor's mu.
type upstreamState struct {
	name   string
	dial   func() (net.Conn, error)
	sup    *Supervisor
	mirror *rov.LiveIndex
	up     bool
	stats  upstreamCounters
}

// upstreamCounters are the per-upstream switch counters.
type upstreamCounters struct {
	Failovers int
	Failbacks int
}

// multiCounters are the supervisor-wide counters.
type multiCounters struct {
	Switches int
	Rebuilds int
}

// UpstreamStats is one upstream's view in MultiSupervisorStats.
type UpstreamStats struct {
	// Name is the configured label; Up whether the last lifecycle event was
	// a successful sync; Active whether this upstream currently serves.
	Name   string
	Up     bool
	Active bool
	// Failovers counts the times this upstream lost the active role because
	// it went down; Failbacks the times service returned to it afterwards
	// (including recovery from a total outage).
	Failovers int
	Failbacks int
	// Supervisor is the upstream's own lifecycle counters.
	Supervisor SupervisorStats
}

// MultiSupervisorStats is a coherent snapshot of the whole cache set.
type MultiSupervisorStats struct {
	// Switches counts deliveries that changed the serving upstream;
	// Rebuilds the switches delivered through the reset path because the
	// carried table had expired.
	Switches  int
	Rebuilds  int
	Upstreams []UpstreamStats
}

// NewMultiSupervisor returns a supervisor over the given caches in
// preference order (most preferred first), with RFC 8210 default timers.
// The caller registers subscribers, then Run.
func NewMultiSupervisor(upstreams ...Upstream) *MultiSupervisor {
	m := &MultiSupervisor{
		Version:    Version1,
		Refresh:    3600 * time.Second,
		Retry:      600 * time.Second,
		Expire:     7200 * time.Second,
		BackoffMin: time.Second,
		active:     -1,
		delivered:  rov.NewIndex(rpki.NewSet(nil)),
	}
	for _, u := range upstreams {
		m.ups = append(m.ups, &upstreamState{name: u.Name, dial: u.Dial})
	}
	return m
}

func (m *MultiSupervisor) timeNow() time.Time {
	if m.nowFn != nil {
		return m.nowFn()
	}
	return time.Now()
}

func (m *MultiSupervisor) logf(format string, args ...interface{}) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

// Subscribe registers fn as a delta consumer: sequential delivery, deltas
// exact against the table delivered so far, continuous across redials,
// session changes, and cache switches. Register before Run.
func (m *MultiSupervisor) Subscribe(fn func(announced, withdrawn []rpki.VRP)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// OnReset registers fn to receive the full table whenever the delivered
// state could not be carried — every upstream was unreachable past the
// Expire window — with the same contract as Supervisor.OnReset: replace
// derived state; the matching delta is suppressed. Register before Run.
func (m *MultiSupervisor) OnReset(fn func(table []rpki.VRP)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rsubs = append(m.rsubs, fn)
}

// Active returns the index (preference rank) of the upstream currently
// serving subscribers, or -1 when none is healthy.
func (m *MultiSupervisor) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Healthy reports whether the delivered table is within the Expire window
// of the active upstream's last sync.
func (m *MultiSupervisor) Healthy() bool {
	now := m.timeNow()
	m.mu.Lock()
	defer m.mu.Unlock()
	expire := m.curExpire
	if expire <= 0 {
		expire = m.Expire
	}
	return m.synced && now.Sub(m.lastSync) < expire
}

// Stats returns a coherent snapshot of the switch counters and every
// upstream's state.
func (m *MultiSupervisor) Stats() MultiSupervisorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MultiSupervisorStats{Switches: m.stats.Switches, Rebuilds: m.stats.Rebuilds}
	for i, u := range m.ups {
		us := UpstreamStats{
			Name:      u.name,
			Up:        u.up,
			Active:    i == m.active,
			Failovers: u.stats.Failovers,
			Failbacks: u.stats.Failbacks,
		}
		if u.sup != nil {
			// Supervisor.Stats takes the upstream's own lock; the order
			// m.mu -> sup.mu is safe because every supervisor callback into
			// the MultiSupervisor runs with sup.mu released.
			us.Supervisor = u.sup.Stats()
		}
		out.Upstreams = append(out.Upstreams, us)
	}
	return out
}

// Run starts one Supervisor per upstream and blocks until Stop. Every
// upstream keeps its own reconnect loop alive for the whole run — a
// non-active cache syncs its mirror in the background so a failover to it
// can be computed as a diff. Returns nil when stopped, or the first
// misconfiguration error.
func (m *MultiSupervisor) Run() error {
	m.mu.Lock()
	if len(m.ups) == 0 {
		m.mu.Unlock()
		return errors.New("rtr: MultiSupervisor needs at least one upstream")
	}
	if m.running {
		m.mu.Unlock()
		return errors.New("rtr: MultiSupervisor.Run called twice")
	}
	m.curExpire = m.Expire
	for i, u := range m.ups {
		i, u := i, u
		if u.dial == nil {
			m.mu.Unlock()
			return fmt.Errorf("rtr: upstream %d (%s) has a nil Dial", i, u.name)
		}
		u.mirror = rov.NewLiveIndex(rpki.NewSet(nil))
		sup := NewSupervisor(u.dial)
		sup.Version = m.Version
		sup.Refresh, sup.Retry, sup.Expire = m.Refresh, m.Retry, m.Expire
		sup.BackoffMin, sup.BackoffMax = m.BackoffMin, m.BackoffMax
		sup.SyncTimeout = m.SyncTimeout
		sup.nowFn = m.nowFn
		if m.Logf != nil {
			logf, name := m.Logf, u.name
			sup.Logf = func(format string, args ...interface{}) {
				logf("[%s] %s", name, fmt.Sprintf(format, args...))
			}
		}
		// Ordering within one upstream: client subscribers now deliver on
		// their own drainer goroutines, but the supervisor flushes them
		// before running OnUpdate (and before OnDown at generation end), so
		// this relay still completes before OnReset/OnUpdate fire on the
		// supervisor goroutine — the mirror always holds the synced table by
		// the time a switch can pick it.
		sup.Subscribe(func(announced, withdrawn []rpki.VRP) {
			u.mirror.Apply(announced, withdrawn)
			m.reconcile(i)
		})
		sup.OnReset(func(table []rpki.VRP) {
			u.mirror.ResetTo(table)
			m.reconcile(i)
		})
		sup.OnUpdate = func(serial Serial) { m.onUpstreamSync(i, serial) }
		sup.OnDown = func(err error) { m.onUpstreamDown(i, err) }
		u.sup = sup
	}
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.running = true
	m.mu.Unlock()

	var wg sync.WaitGroup
	errs := make([]error, len(m.ups))
	for i, u := range m.ups {
		i, u := i, u
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = u.sup.Run()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stop terminates every upstream supervisor and waits for Run to return.
func (m *MultiSupervisor) Stop() {
	m.mu.Lock()
	m.stopped = true
	var sups []*Supervisor
	if m.running {
		for _, u := range m.ups {
			sups = append(sups, u.sup)
		}
	}
	m.mu.Unlock()
	for _, s := range sups {
		s.Stop()
	}
}

// reconcile is the single delivery primitive: if upstream j is the active
// one, diff the table subscribers hold against j's mirror and deliver the
// result. Every path that can change what subscribers should see funnels
// through here — steady-state deltas (the relay), failovers, failbacks,
// recoveries — so no interleaving of upstream events can deliver anything
// but the exact difference. A delta already folded into a switch is simply
// an empty diff when the relay reconciles again.
func (m *MultiSupervisor) reconcile(j int) {
	m.deliverMu.Lock()
	defer m.deliverMu.Unlock()
	m.mu.Lock()
	if m.active != j {
		m.mu.Unlock()
		return
	}
	u := m.ups[j]
	delivered := m.delivered
	subs := make([]func(announced, withdrawn []rpki.VRP), len(m.subs))
	copy(subs, m.subs)
	rsubs := make([]func(table []rpki.VRP), len(m.rsubs))
	copy(rsubs, m.rsubs)
	now := m.timeNow()
	var expire time.Duration
	if u.sup != nil {
		_, _, expire = u.sup.CurrentTimers()
	}
	if expire <= 0 {
		expire = m.Expire
	}
	// Stale means every upstream was out past the Expire window since the
	// last delivery: §6 forbids pretending the delivered table is a valid
	// diff base, so this delivery replaces subscriber state instead.
	stale := m.deliveredAny && m.synced && now.Sub(m.lastSync) >= expire
	m.mu.Unlock()

	cur := u.mirror.Snapshot()
	rebuilt := false
	if stale {
		table := cur.AppendVRPs(nil)
		m.logf("rtr multisupervisor: delivered table expired; resetting %d subscribers to %s's %d-VRP table",
			len(rsubs), u.name, len(table))
		for _, fn := range rsubs {
			fn(table)
		}
		rebuilt = true
	} else {
		announced, withdrawn := rov.Diff(delivered, cur)
		if len(announced) > 0 || len(withdrawn) > 0 {
			for _, fn := range subs {
				fn(announced, withdrawn)
			}
		}
	}

	m.mu.Lock()
	m.delivered = cur
	m.deliveredAny = true
	m.lastSync = now
	m.synced = true
	m.curExpire = expire
	if rebuilt {
		m.stats.Rebuilds++
	}
	m.mu.Unlock()
}

// onUpstreamSync runs after each successful sync of upstream j: mark it up,
// take over from a less-preferred active (failback) or fill a vacant slot,
// and reconcile if j is (now) the active upstream.
func (m *MultiSupervisor) onUpstreamSync(j int, serial Serial) {
	m.mu.Lock()
	u := m.ups[j]
	u.up = true
	prev := m.active
	relevant := prev == j
	if prev == -1 || j < prev {
		if m.everActive {
			// Service returns to j: either j outranks the current active
			// and has recovered, or j ends a total outage.
			u.stats.Failbacks++
			m.stats.Switches++
		}
		m.active = j
		m.everActive = true
		relevant = true
		switch {
		case prev != -1:
			m.logf("rtr multisupervisor: failing back to preferred upstream %s (from %s)", u.name, m.ups[prev].name)
		default:
			m.logf("rtr multisupervisor: serving from upstream %s", u.name)
		}
	}
	m.mu.Unlock()
	if relevant {
		m.reconcile(j)
		if m.OnUpdate != nil {
			m.OnUpdate(serial)
		}
	}
}

// onUpstreamDown runs each time upstream j's generation ends (or its dial
// fails): mark it down and, if it was serving, fail over to the most
// preferred upstream that still is up.
func (m *MultiSupervisor) onUpstreamDown(j int, err error) {
	m.mu.Lock()
	u := m.ups[j]
	u.up = false
	next := -1
	failed := m.active == j
	if failed {
		u.stats.Failovers++
		for i, cand := range m.ups {
			if cand.up {
				next = i
				break
			}
		}
		m.active = next
		if next != -1 {
			m.stats.Switches++
		}
	}
	m.mu.Unlock()
	if !failed {
		return
	}
	if next != -1 {
		m.logf("rtr multisupervisor: upstream %s down (%v); failing over to %s", u.name, err, m.ups[next].name)
		m.reconcile(next)
	} else {
		m.logf("rtr multisupervisor: upstream %s down (%v); no healthy upstream left", u.name, err)
	}
}
