package rtr

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rpki"
)

// Client is the router side of the protocol: it synchronizes a local copy of
// the cache's VRP set — the table a router consults for origin validation.
//
// A single dispatch goroutine, started by NewClient, owns ReadPDU for the
// connection's lifetime. It reads whole PDUs and routes each one: Serial
// Notify PDUs go to the coalescing channel returned by Notify, everything
// else belongs to the at-most-one in-flight Sync/Reset exchange. No other
// goroutine ever reads from the connection, so no reader can be interrupted
// mid-PDU and the stream can never lose framing — the failure mode RFC 8210
// §8 cannot recover from short of tearing the session down. When a read
// fails, or a PDU arrives that the protocol state cannot accept, the loop
// records a sticky error, closes the connection, fails any in-flight
// exchange, and closes Done; every later call fails fast with that error and
// the caller must reconnect with a fresh Client.
type Client struct {
	// Version is the protocol version to speak (Version1 by default). Set it
	// before the first exchange.
	Version byte

	// OnDelta, when set, receives each completed non-empty update's applied
	// delta synchronously on the dispatch goroutine, before the producing
	// Sync or Reset returns — the original (pre-fan-out) delivery contract.
	//
	// Deprecated: use Subscribe, which supports multiple consumers and does
	// not stall the dispatch loop while a consumer runs. Set OnDelta before
	// the first sync and do not change it while syncs are in flight.
	OnDelta func(announced, withdrawn []rpki.VRP)

	// SubscribeQueue bounds each subscriber's pending-update queue (default
	// 16). A consumer that falls further behind has its oldest pending
	// updates coalesced pairwise — net effect preserved — rather than
	// blocking the dispatch loop or dropping deltas. Set before the first
	// Subscribe call.
	SubscribeQueue int

	conn net.Conn

	// reqMu serializes Sync/Reset callers: the protocol allows at most one
	// outstanding query per connection, so concurrent callers simply queue.
	reqMu sync.Mutex

	mu        sync.Mutex
	sessionID uint16
	serial    Serial
	haveState bool
	vrps      map[rpki.VRP]struct{}
	// refresh/retry/expire hold the timers from the most recent version-1
	// End of Data PDU (seconds); haveTimers reports whether one was seen.
	refresh, retry, expire uint32
	haveTimers             bool
	// fullSyncs counts committed full (Reset Query) exchanges; a resumed
	// client that syncs with it still zero resumed purely by Serial Query.
	fullSyncs int
	// subs are the Subscribe/SubscribeUpdates consumers, each with its own
	// drainer goroutine and bounded queue.
	subs []*subscriber
	// req is the at-most-one in-flight exchange; nil while idle.
	req *request
	// err is the sticky failure recorded when the dispatch loop dies.
	err error

	notifyCh chan Serial
	done     chan struct{}
}

// request is one Sync/Reset exchange routed through the dispatch loop. The
// requesting goroutine creates it, registers it, writes the query, and blocks
// on result; the dispatch loop owns the parsing state and finishes the
// request exactly once.
type request struct {
	full bool

	once   sync.Once
	result chan error // buffered: finish never blocks the dispatch loop

	// Exchange state below is owned by the dispatch goroutine.
	started bool // Cache Response received
	// discard marks an incremental exchange whose Cache Response carried a
	// different session than the local state (the cache restarted but did
	// not answer Cache Reset): the update cannot be applied onto the local
	// table, so the rest of it is consumed — keeping the stream framed —
	// and the exchange resolves as a cache reset at End of Data.
	discard     bool
	session     uint16
	staged      map[rpki.VRP]struct{}
	withdrawals []rpki.VRP
}

// finish resolves the exchange. Both the dispatch loop (normal completion)
// and fail (connection death racing a completion) may call it; the first
// outcome wins.
func (r *request) finish(err error) {
	r.once.Do(func() { r.result <- err })
}

// SessionState is the resumable half of a client session: everything a
// reconnect needs to continue the cache's delta stream on a fresh
// connection instead of refetching the table. A Supervisor captures it from
// a dead client (Client.SessionState) and seeds the replacement with it
// (NewClientResume), whose first Sync then issues a Serial Query for
// Serial against SessionID — the RFC 8210 resumption handshake.
type SessionState struct {
	// SessionID and Serial identify the last completed sync.
	SessionID uint16
	Serial    Serial
	// VRPs is the synchronized table at Serial. A resumed client seeds its
	// local table from it, so incremental updates — and the delta of a full
	// Reset fallback — stay relative to the pre-disconnect table.
	VRPs []rpki.VRP
	// Refresh/Retry/Expire are the timers from the most recent version-1
	// End of Data (seconds); HasTimers reports whether one was seen.
	Refresh, Retry, Expire uint32
	HasTimers              bool
}

// Dial connects to a cache at addr ("host:port").
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (useful with net.Pipe in tests)
// and starts the dispatch goroutine that owns all reads from it.
func NewClient(nc net.Conn) *Client {
	return NewClientResume(nc, nil)
}

// NewClientResume wraps an established connection like NewClient, but seeds
// the client with a previous session's state so the first Sync resumes the
// cache's delta stream (Serial Query) instead of refetching the table
// (Reset Query). When the cache cannot serve the incremental stream — it
// restarted with a new session ID, or evicted the delta chain — Sync falls
// back to a full reset whose subscriber delta is computed against the
// seeded table, so delta-fed consumers resync without a rebuild. A nil st
// is a fresh start, identical to NewClient.
func NewClientResume(nc net.Conn, st *SessionState) *Client {
	c := &Client{
		Version:  Version1,
		conn:     nc,
		vrps:     make(map[rpki.VRP]struct{}),
		notifyCh: make(chan Serial, 1),
		done:     make(chan struct{}),
	}
	if st != nil {
		c.sessionID = st.SessionID
		c.serial = st.Serial
		c.haveState = true
		for _, v := range st.VRPs {
			c.vrps[v] = struct{}{}
		}
		if st.HasTimers {
			c.refresh, c.retry, c.expire = st.Refresh, st.Retry, st.Expire
			c.haveTimers = true
		}
	}
	//repro:owns-goroutine (*Client).Close
	go c.dispatch()
	return c
}

// SessionState snapshots the resumable session state for handoff to a
// replacement client (NewClientResume), or nil when no sync has completed —
// nothing to resume. It remains available after the dispatch loop dies: the
// synchronized table outlives its connection.
func (c *Client) SessionState() *SessionState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveState {
		return nil
	}
	st := &SessionState{
		SessionID: c.sessionID,
		Serial:    c.serial,
		VRPs:      make([]rpki.VRP, 0, len(c.vrps)),
		Refresh:   c.refresh,
		Retry:     c.retry,
		Expire:    c.expire,
		HasTimers: c.haveTimers,
	}
	for v := range c.vrps {
		st.VRPs = append(st.VRPs, v)
	}
	return st
}

// Close closes the connection; the dispatch loop observes the closed socket,
// fails any in-flight exchange, and closes Done.
func (c *Client) Close() error { return c.conn.Close() }

// Notify returns the channel on which the dispatch loop delivers Serial
// Notify PDUs. It has capacity 1 and coalesces: when notifies arrive faster
// than the consumer drains them, a pending serial is replaced by the newer
// one (the cache's serials are cumulative, so only the latest matters). The
// channel is never closed — select on Done to observe connection death.
func (c *Client) Notify() <-chan Serial { return c.notifyCh }

// Done returns a channel that is closed when the dispatch loop has exited —
// after a read error, an idle-state protocol violation, or Close. Err
// reports why.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the sticky error that terminated the dispatch loop, or nil
// while the loop is still running.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Update is one committed sync delivered to SubscribeUpdates consumers:
// the VRPs the update actually added to and removed from the local table
// (announces already present and withdrawals of absent VRPs are excluded;
// on a full reset the delta is relative to the table being replaced). Full
// marks a Reset Query exchange — a consumer tracking session continuity can
// tell a table replacement from an incremental delta even when the delta
// happens to be empty. Consumers must not mutate the slices: coalesced
// updates may share them with other subscribers.
type Update struct {
	Announced, Withdrawn []rpki.VRP
	Full                 bool
}

// Subscribe registers fn as a delta consumer: after every completed update
// with a non-empty delta it receives the VRPs the update added and removed.
// This is how a validation index — rov.LiveIndex — follows the table in
// O(delta) instead of rebuilding from Set after every sync.
//
// Backpressure contract: each consumer runs on its own drainer goroutine
// fed by a bounded queue (SubscribeQueue), so a slow or blocking consumer
// never stalls the dispatch loop — PDUs, notifies, and other consumers keep
// flowing. Per-consumer delivery stays sequential and in commit order (no
// two invocations of one consumer ever overlap), but delivery is
// asynchronous: it may complete after the Sync or Reset call that produced
// the update returns (FlushSubscribers waits for it), and different
// consumers observe the same update at different times. A consumer that
// falls more than SubscribeQueue updates behind has its oldest pending
// updates coalesced pairwise into their exact net effect — it sees fewer,
// larger updates, never a lost or reordered delta. Consumers may read
// Client state but must not call Sync, Reset, Close, or FlushSubscribers.
//
// A consumer registered after updates have been applied sees only
// subsequent deltas; register before the first sync to observe the full
// table history.
func (c *Client) Subscribe(fn func(announced, withdrawn []rpki.VRP)) {
	c.SubscribeUpdates(func(u Update) {
		if len(u.Announced) == 0 && len(u.Withdrawn) == 0 {
			return
		}
		fn(u.Announced, u.Withdrawn)
	})
}

// SubscribeUpdates registers fn as an update consumer with the same
// backpressure contract as Subscribe, but delivering the full Update value:
// fn additionally sees empty full-reset updates (Full set, no delta), which
// Subscribe filters out — the signal a reconnect supervisor needs to tell
// "resynced to an identical (possibly empty) table" from "nothing
// happened".
func (c *Client) SubscribeUpdates(fn func(Update)) {
	sub := &subscriber{c: c, fn: fn, wake: make(chan struct{}, 1)}
	c.mu.Lock()
	c.subs = append(c.subs, sub)
	c.mu.Unlock()
	//repro:owns-goroutine (*Client).Close
	go sub.run()
}

// FlushSubscribers blocks until every update committed before the call has
// been delivered to every subscriber — the synchronization point for
// callers that need delivery to have happened (a supervisor reading a
// subscriber-fed mirror, a test asserting on consumer state). It must not
// be called from a consumer, which would wait on its own queue.
func (c *Client) FlushSubscribers() {
	c.mu.Lock()
	subs := make([]*subscriber, len(c.subs))
	copy(subs, c.subs)
	c.mu.Unlock()
	for _, sub := range subs {
		sub.flush()
	}
}

// subscriber is one Subscribe/SubscribeUpdates consumer: a bounded pending
// queue and the drainer goroutine that owns delivery to fn.
type subscriber struct {
	c  *Client
	fn func(Update)

	mu sync.Mutex
	q  []Update
	// inFlight is true while the drainer is executing fn on a popped update;
	// the queue being empty means "delivered" only once it is false again.
	inFlight bool
	// flushWaiters are closed by the drainer when it observes an empty queue
	// with no delivery in flight.
	flushWaiters []chan struct{}
	// wake carries one token from enqueue to the parked drainer. Capacity 1:
	// a dropped token means one is already pending, and the drainer rechecks
	// the queue after consuming it.
	wake chan struct{}
}

// enqueue appends u to the pending queue, coalescing into the newest
// pending update when the consumer is depth behind. Called by the dispatch
// goroutine with no Client locks held.
func (sub *subscriber) enqueue(u Update, depth int) {
	sub.mu.Lock()
	if len(sub.q) >= depth {
		sub.q[len(sub.q)-1] = coalesceUpdates(sub.q[len(sub.q)-1], u)
	} else {
		sub.q = append(sub.q, u)
	}
	sub.mu.Unlock()
	select {
	case sub.wake <- struct{}{}:
	default:
	}
}

// run is the drainer: pop and deliver pending updates in order, release
// flush waiters whenever the queue runs dry, park on wake, and exit once
// the client is done and everything pending has been delivered.
func (sub *subscriber) run() {
	for {
		sub.mu.Lock()
		sub.inFlight = false
		if len(sub.q) == 0 {
			for _, ch := range sub.flushWaiters {
				close(ch)
			}
			sub.flushWaiters = nil
			done := false
			select {
			case <-sub.c.done:
				done = true
			default:
			}
			sub.mu.Unlock()
			if done {
				return
			}
			select {
			case <-sub.wake:
			case <-sub.c.done:
			}
			continue
		}
		u := sub.q[0]
		copy(sub.q, sub.q[1:])
		sub.q[len(sub.q)-1] = Update{}
		sub.q = sub.q[:len(sub.q)-1]
		sub.inFlight = true
		sub.mu.Unlock()
		sub.fn(u)
	}
}

// flush blocks until the queue is empty with no delivery in flight. Updates
// are only enqueued by the dispatch goroutine, which stops before the
// client's done channel closes — so the drainer always lives long enough to
// release every waiter registered here.
func (sub *subscriber) flush() {
	sub.mu.Lock()
	if len(sub.q) == 0 && !sub.inFlight {
		sub.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	sub.flushWaiters = append(sub.flushWaiters, ch)
	sub.mu.Unlock()
	<-ch
}

// coalesceUpdates folds two consecutive updates into their exact net
// effect: a VRP announced by a and withdrawn by b (or vice versa) cancels;
// everything else carries through. The two announce sets — like the two
// withdraw sets — are disjoint by construction (b's delta is relative to
// the table after a), so the union needs no dedup.
func coalesceUpdates(a, b Update) Update {
	inB := func(vs []rpki.VRP) map[rpki.VRP]struct{} {
		if len(vs) == 0 {
			return nil
		}
		m := make(map[rpki.VRP]struct{}, len(vs))
		for _, v := range vs {
			m[v] = struct{}{}
		}
		return m
	}
	bwd, bann := inB(b.Withdrawn), inB(b.Announced)
	awd, aann := inB(a.Withdrawn), inB(a.Announced)
	var out Update
	out.Full = a.Full || b.Full
	for _, v := range a.Announced {
		if _, ok := bwd[v]; !ok {
			out.Announced = append(out.Announced, v)
		}
	}
	for _, v := range b.Announced {
		if _, ok := awd[v]; !ok {
			out.Announced = append(out.Announced, v)
		}
	}
	for _, v := range a.Withdrawn {
		if _, ok := bann[v]; !ok {
			out.Withdrawn = append(out.Withdrawn, v)
		}
	}
	for _, v := range b.Withdrawn {
		if _, ok := aann[v]; !ok {
			out.Withdrawn = append(out.Withdrawn, v)
		}
	}
	return out
}

// Timers returns the Refresh/Retry/Expire intervals advertised by the cache
// in the most recent version-1 End of Data PDU. ok is false when none has
// been seen (no completed sync yet, or the cache speaks version 0, whose End
// of Data carries no timers).
func (c *Client) Timers() (refresh, retry, expire time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveTimers {
		return 0, 0, 0, false
	}
	return time.Duration(c.refresh) * time.Second,
		time.Duration(c.retry) * time.Second,
		time.Duration(c.expire) * time.Second, true
}

// Serial returns the serial of the last completed sync.
func (c *Client) Serial() Serial {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// SessionID returns the cache session from the last completed sync.
func (c *Client) SessionID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// FullSyncs returns how many full (Reset Query) exchanges have committed.
// Zero on a resumed client means every sync so far was incremental — the
// cache accepted the carried session outright.
func (c *Client) FullSyncs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fullSyncs
}

// Set returns the synchronized VRPs as a normalized set.
func (c *Client) Set() *rpki.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]rpki.VRP, 0, len(c.vrps))
	for v := range c.vrps {
		out = append(out, v)
	}
	return rpki.NewSet(out)
}

// Len returns the number of synchronized VRPs.
func (c *Client) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vrps)
}

// Reset performs a full synchronization (Reset Query → Cache Response →
// prefix PDUs → End of Data). Concurrent Reset/Sync callers are serialized.
func (c *Client) Reset() error {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	return c.exchange(true, &ResetQuery{})
}

// Sync brings the client up to date: an incremental Serial Query when state
// exists, falling back to a full Reset on Cache Reset. It returns the serial
// synchronized to. Concurrent Sync/Reset callers are serialized.
func (c *Client) Sync() (Serial, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	c.mu.Lock()
	have := c.haveState
	q := &SerialQuery{SessionID: c.sessionID, Serial: c.serial}
	c.mu.Unlock()
	if !have {
		if err := c.exchange(true, &ResetQuery{}); err != nil {
			return 0, err
		}
		return c.Serial(), nil
	}
	if err := c.exchange(false, q); err != nil {
		var cr cacheResetError
		if errors.As(err, &cr) {
			if err := c.exchange(true, &ResetQuery{}); err != nil {
				return 0, err
			}
			return c.Serial(), nil
		}
		return 0, err
	}
	return c.Serial(), nil
}

// WaitNotify blocks until a Serial Notify arrives and returns its serial, or
// returns the sticky error when the connection dies first. Because the
// notify channel coalesces, N cache updates wake WaitNotify at least once,
// not necessarily N times; the returned serial is the newest one pending.
func (c *Client) WaitNotify() (Serial, error) {
	select {
	case s := <-c.notifyCh:
		return s, nil
	case <-c.done:
		// A notify that arrived just before the loop died is still news.
		select {
		case s := <-c.notifyCh:
			return s, nil
		default:
		}
		return 0, c.Err()
	}
}

// cacheResetError signals that the cache cannot serve the incremental query.
type cacheResetError struct{}

func (cacheResetError) Error() string { return "rtr: cache reset" }

// exchange runs one query/response exchange against the dispatch loop:
// register the request, write the query, wait for the loop to resolve it.
// The caller must hold reqMu.
func (c *Client) exchange(full bool, q PDU) error {
	req := &request{full: full, result: make(chan error, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.req = req
	c.mu.Unlock()
	// Register before writing: the response must never beat the registration
	// and be mistaken for idle traffic.
	if err := WritePDU(c.conn, c.Version, q); err != nil {
		// The write side is broken; kill the session so the read side does
		// not block forever waiting for a response that was never requested.
		c.fail(err)
	}
	return <-req.result
}

// dispatch is the single reader: it owns ReadPDU for the connection's
// lifetime, routing Serial Notifies to the notify channel and everything
// else to the in-flight exchange. It exits — closing Done — on the first
// read error or protocol violation.
func (c *Client) dispatch() {
	defer close(c.done)
	for {
		pdu, version, err := ReadPDU(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		if n, ok := pdu.(*SerialNotify); ok {
			c.pushNotify(n.Serial)
			continue
		}
		c.mu.Lock()
		req := c.req
		c.mu.Unlock()
		if req == nil {
			// Traffic while idle. An Error Report here is the cache killing
			// the session (RFC 8210 §8): surface it as the sticky error and
			// close. Anything else is a protocol violation with the same
			// consequence — there is no way to rejoin the cache's state
			// machine from an unsolicited PDU.
			c.fail(c.idleError(pdu))
			return
		}
		finished, exchErr, fatal := c.advance(req, pdu, version)
		if fatal != nil {
			c.fail(fatal)
			return
		}
		if finished {
			c.mu.Lock()
			c.req = nil
			c.mu.Unlock()
			req.finish(exchErr)
		}
	}
}

// idleError classifies a non-notify PDU received outside any exchange.
func (c *Client) idleError(pdu PDU) error {
	if er, ok := pdu.(*ErrorReport); ok {
		return er
	}
	return fmt.Errorf("rtr: unexpected PDU type %d while idle", pdu.Type())
}

// advance feeds one PDU into the in-flight exchange's state machine. It
// reports whether the exchange finished and with what outcome; fatal errors
// kill the whole session (the response can no longer be correlated with the
// local state), while an exchange error (Cache Reset, Error Report) resolves
// the request but leaves the — still perfectly framed — session usable.
func (c *Client) advance(req *request, pdu PDU, version byte) (finished bool, exchErr, fatal error) {
	if !req.started {
		// Awaiting Cache Response.
		switch p := pdu.(type) {
		case *CacheResponse:
			req.started = true
			req.session = p.SessionID
			req.staged = make(map[rpki.VRP]struct{})
			if !req.full {
				// An incremental update is only meaningful against the
				// session it continues (RFC 8210 §5.5: a session change
				// invalidates all held data). A restarted cache should
				// answer Cache Reset, but one that replies with its new
				// session and a delta must not have that delta applied onto
				// the carried table — consume the update to stay framed and
				// resolve as a cache reset so Sync falls back to a full
				// Reset Query.
				c.mu.Lock()
				if c.haveState && p.SessionID != c.sessionID {
					req.discard = true
				}
				c.mu.Unlock()
			}
			return false, nil, nil
		case *CacheReset:
			return true, cacheResetError{}, nil
		case *ErrorReport:
			return true, p, nil
		default:
			return false, nil, fmt.Errorf("rtr: expected Cache Response, got type %d", pdu.Type())
		}
	}
	switch p := pdu.(type) {
	case *Prefix:
		if p.Flags&FlagAnnounce != 0 {
			req.staged[p.VRP] = struct{}{}
		} else {
			req.withdrawals = append(req.withdrawals, p.VRP)
		}
		return false, nil, nil
	case *RouterKey:
		// Accepted and ignored: BGPsec is out of scope here.
		return false, nil, nil
	case *EndOfData:
		if p.SessionID != req.session {
			return false, nil, fmt.Errorf("rtr: End of Data session %d != Cache Response session %d", p.SessionID, req.session)
		}
		if req.discard {
			return true, cacheResetError{}, nil
		}
		c.commit(req, p, version)
		return true, nil, nil
	case *ErrorReport:
		return true, p, nil
	default:
		return false, nil, fmt.Errorf("rtr: unexpected PDU type %d in update", pdu.Type())
	}
}

// commit applies a completed update on the dispatch goroutine: it swaps in
// the new table state, adopts version-1 timers, drops a now-stale pending
// notify, delivers the applied delta synchronously to OnDelta, and enqueues
// it on every subscriber's drainer queue. Non-full updates with an empty
// delta are not delivered at all; a full update is always enqueued (even
// empty), carrying the Full marker SubscribeUpdates documents.
func (c *Client) commit(req *request, eod *EndOfData, version byte) {
	c.mu.Lock()
	wantDelta := c.OnDelta != nil || len(c.subs) > 0
	var ann, wd []rpki.VRP
	if req.full {
		// Replace the table; the delta reported to consumers is the
		// difference against the table being replaced. The staged map is
		// this exchange's scratch state, dead after commit, so it becomes
		// the new table directly.
		next := req.staged
		for _, v := range req.withdrawals {
			delete(next, v)
		}
		if wantDelta {
			for v := range c.vrps {
				if _, ok := next[v]; !ok {
					wd = append(wd, v)
				}
			}
			for v := range next {
				if _, ok := c.vrps[v]; !ok {
					ann = append(ann, v)
				}
			}
		}
		c.vrps = next
	} else {
		for v := range req.staged {
			if _, ok := c.vrps[v]; !ok {
				c.vrps[v] = struct{}{}
				if wantDelta {
					ann = append(ann, v)
				}
			}
		}
		for _, v := range req.withdrawals {
			if _, ok := c.vrps[v]; ok {
				delete(c.vrps, v)
				if wantDelta {
					wd = append(wd, v)
				}
			}
		}
	}
	c.sessionID = req.session
	c.serial = eod.Serial
	c.haveState = true
	if req.full {
		c.fullSyncs++
	}
	if version == Version1 {
		c.refresh, c.retry, c.expire = eod.Refresh, eod.Retry, eod.Expire
		c.haveTimers = true
	}
	onDelta := c.OnDelta
	subs := make([]*subscriber, len(c.subs))
	copy(subs, c.subs)
	depth := c.SubscribeQueue
	c.mu.Unlock()
	if depth <= 0 {
		depth = 16
	}
	c.dropStaleNotify(eod.Serial)
	if onDelta != nil && (len(ann) > 0 || len(wd) > 0) {
		onDelta(ann, wd)
	}
	if req.full || len(ann) > 0 || len(wd) > 0 {
		u := Update{Announced: ann, Withdrawn: wd, Full: req.full}
		for _, sub := range subs {
			sub.enqueue(u, depth)
		}
	}
}

// pushNotify delivers a Serial Notify to the coalescing channel: if one is
// already pending, the newer serial displaces it. Only the dispatch
// goroutine sends on notifyCh, so after draining the pending value the send
// cannot race another producer.
func (c *Client) pushNotify(serial Serial) {
	for {
		select {
		case c.notifyCh <- serial:
			return
		default:
		}
		select {
		case <-c.notifyCh:
		default:
		}
	}
}

// dropStaleNotify clears a pending notify at or behind the serial just
// synchronized: it is no longer news. One that is genuinely newer (RFC 1982
// comparison — serials wrap) is put back. Runs on the dispatch goroutine.
func (c *Client) dropStaleNotify(serial Serial) {
	select {
	case s := <-c.notifyCh:
		if SerialNewer(s, serial) {
			c.pushNotify(s)
		}
	default:
	}
}

// fail records the sticky error (first one wins), closes the connection, and
// resolves any in-flight exchange with it. Safe from any goroutine.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	req := c.req
	c.req = nil
	c.mu.Unlock()
	c.conn.Close()
	if req != nil {
		req.finish(err)
	}
}
