package rtr

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rpki"
)

// Client is the router side of the protocol: it synchronizes a local copy of
// the cache's VRP set — the table a router consults for origin validation.
type Client struct {
	// Version is the protocol version to speak (Version1 by default).
	Version byte

	// OnDelta, when set, is invoked after each completed update with the
	// VRPs the update actually added to and removed from the local table
	// (announces already present and withdrawals of absent VRPs are
	// excluded; on a full reset the delta is relative to the previous
	// table). It runs on the goroutine that called Sync/Reset, after the
	// new state is committed, and lets a validation index — rov.LiveIndex —
	// follow the table in O(delta) instead of rebuilding from Set() after
	// every sync. Set it before the first sync and do not change it while
	// syncs are in flight.
	OnDelta func(announced, withdrawn []rpki.VRP)

	conn net.Conn

	mu        sync.Mutex
	sessionID uint16
	serial    uint32
	haveState bool
	vrps      map[rpki.VRP]struct{}
	// notify records the highest serial seen in a Serial Notify since the
	// last sync.
	notifySerial uint32
	notified     bool
	// refresh/retry/expire hold the timers from the most recent version-1
	// End of Data PDU (seconds); haveTimers reports whether one was seen.
	refresh, retry, expire uint32
	haveTimers             bool
}

// Dial connects to a cache at addr ("host:port").
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (useful with net.Pipe in tests).
func NewClient(nc net.Conn) *Client {
	return &Client{Version: Version1, conn: nc, vrps: make(map[rpki.VRP]struct{})}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetReadDeadline sets the deadline for reads on the underlying connection;
// the zero time clears it. The Poller uses an already-passed deadline to
// kick a blocked WaitNotify off the connection when its Refresh interval
// expires without a Serial Notify.
func (c *Client) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Timers returns the Refresh/Retry/Expire intervals advertised by the cache
// in the most recent version-1 End of Data PDU. ok is false when none has
// been seen (no completed sync yet, or the cache speaks version 0, whose End
// of Data carries no timers).
func (c *Client) Timers() (refresh, retry, expire time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveTimers {
		return 0, 0, 0, false
	}
	return time.Duration(c.refresh) * time.Second,
		time.Duration(c.retry) * time.Second,
		time.Duration(c.expire) * time.Second, true
}

// Serial returns the serial of the last completed sync.
func (c *Client) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// SessionID returns the cache session from the last completed sync.
func (c *Client) SessionID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// Set returns the synchronized VRPs as a normalized set.
func (c *Client) Set() *rpki.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]rpki.VRP, 0, len(c.vrps))
	for v := range c.vrps {
		out = append(out, v)
	}
	return rpki.NewSet(out)
}

// Len returns the number of synchronized VRPs.
func (c *Client) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vrps)
}

// Reset performs a full synchronization (Reset Query → Cache Response →
// prefix PDUs → End of Data).
func (c *Client) Reset() error {
	if err := WritePDU(c.conn, c.Version, &ResetQuery{}); err != nil {
		return err
	}
	return c.readUpdate(true)
}

// Sync brings the client up to date: an incremental Serial Query when state
// exists, falling back to a full Reset on Cache Reset. It returns the serial
// synchronized to.
func (c *Client) Sync() (uint32, error) {
	c.mu.Lock()
	have := c.haveState
	q := &SerialQuery{SessionID: c.sessionID, Serial: c.serial}
	c.mu.Unlock()
	if !have {
		if err := c.Reset(); err != nil {
			return 0, err
		}
		return c.Serial(), nil
	}
	if err := WritePDU(c.conn, c.Version, q); err != nil {
		return 0, err
	}
	if err := c.readUpdate(false); err != nil {
		var cr cacheResetError
		if errors.As(err, &cr) {
			if err := c.Reset(); err != nil {
				return 0, err
			}
			return c.Serial(), nil
		}
		return 0, err
	}
	return c.Serial(), nil
}

// WaitNotify blocks until a Serial Notify arrives and returns its serial.
// Any other PDU in this state is a protocol violation.
func (c *Client) WaitNotify() (uint32, error) {
	pdu, _, err := ReadPDU(c.conn)
	if err != nil {
		return 0, err
	}
	n, ok := pdu.(*SerialNotify)
	if !ok {
		return 0, fmt.Errorf("rtr: expected Serial Notify, got type %d", pdu.Type())
	}
	c.mu.Lock()
	c.notifySerial, c.notified = n.Serial, true
	c.mu.Unlock()
	return n.Serial, nil
}

// cacheResetError signals that the cache cannot serve the incremental query.
type cacheResetError struct{}

func (cacheResetError) Error() string { return "rtr: cache reset" }

// readUpdate consumes a Cache Response sequence and applies it. full
// indicates a reset (clear state first).
func (c *Client) readUpdate(full bool) error {
	// Await Cache Response, tolerating interleaved Serial Notify PDUs (the
	// cache may notify while our query is in flight).
	var session uint16
	for {
		pdu, _, err := ReadPDU(c.conn)
		if err != nil {
			return err
		}
		switch p := pdu.(type) {
		case *CacheResponse:
			session = p.SessionID
		case *SerialNotify:
			c.mu.Lock()
			c.notifySerial, c.notified = p.Serial, true
			c.mu.Unlock()
			continue
		case *CacheReset:
			return cacheResetError{}
		case *ErrorReport:
			return p
		default:
			return fmt.Errorf("rtr: expected Cache Response, got type %d", pdu.Type())
		}
		break
	}
	staged := make(map[rpki.VRP]struct{})
	var withdrawals []rpki.VRP
	for {
		pdu, version, err := ReadPDU(c.conn)
		if err != nil {
			return err
		}
		switch p := pdu.(type) {
		case *Prefix:
			if p.Flags&FlagAnnounce != 0 {
				staged[p.VRP] = struct{}{}
			} else {
				withdrawals = append(withdrawals, p.VRP)
			}
		case *SerialNotify:
			c.mu.Lock()
			c.notifySerial, c.notified = p.Serial, true
			c.mu.Unlock()
		case *RouterKey:
			// Accepted and ignored: BGPsec is out of scope here.
		case *EndOfData:
			if p.SessionID != session {
				return fmt.Errorf("rtr: End of Data session %d != Cache Response session %d", p.SessionID, session)
			}
			c.mu.Lock()
			hook := c.OnDelta
			var ann, wd []rpki.VRP
			if full {
				// Replace the table; the delta reported to OnDelta is the
				// difference against the table being replaced.
				next := make(map[rpki.VRP]struct{}, len(staged))
				for v := range staged {
					next[v] = struct{}{}
				}
				for _, v := range withdrawals {
					delete(next, v)
				}
				if hook != nil {
					for v := range c.vrps {
						if _, ok := next[v]; !ok {
							wd = append(wd, v)
						}
					}
					for v := range next {
						if _, ok := c.vrps[v]; !ok {
							ann = append(ann, v)
						}
					}
				}
				c.vrps = next
			} else {
				for v := range staged {
					if _, ok := c.vrps[v]; !ok {
						c.vrps[v] = struct{}{}
						if hook != nil {
							ann = append(ann, v)
						}
					}
				}
				for _, v := range withdrawals {
					if _, ok := c.vrps[v]; ok {
						delete(c.vrps, v)
						if hook != nil {
							wd = append(wd, v)
						}
					}
				}
			}
			c.sessionID = session
			c.serial = p.Serial
			c.haveState = true
			if version == Version1 {
				c.refresh, c.retry, c.expire = p.Refresh, p.Retry, p.Expire
				c.haveTimers = true
			}
			c.mu.Unlock()
			if hook != nil && (len(ann) > 0 || len(wd) > 0) {
				hook(ann, wd)
			}
			return nil
		case *ErrorReport:
			return p
		default:
			return fmt.Errorf("rtr: unexpected PDU type %d in update", pdu.Type())
		}
	}
}
