package rtr

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func roundTrip(t *testing.T, version byte, p PDU) PDU {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePDU(&buf, version, p); err != nil {
		t.Fatalf("write %T: %v", p, err)
	}
	// Declared length must match what was written.
	if got := binary.BigEndian.Uint32(buf.Bytes()[4:]); int(got) != buf.Len() {
		t.Fatalf("%T: declared length %d, wrote %d", p, got, buf.Len())
	}
	q, v, err := ReadPDU(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", p, err)
	}
	if v != version {
		t.Fatalf("version %d, want %d", v, version)
	}
	return q
}

func TestPDURoundTrips(t *testing.T) {
	v4 := rpki.VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111}
	v6 := rpki.VRP{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 64496}
	for _, version := range []byte{Version0, Version1} {
		pdus := []PDU{
			&SerialNotify{SessionID: 7, Serial: 42},
			&SerialQuery{SessionID: 7, Serial: 42},
			&ResetQuery{},
			&CacheResponse{SessionID: 9},
			&Prefix{Flags: FlagAnnounce, VRP: v4},
			&Prefix{Flags: FlagWithdraw, VRP: v4},
			&Prefix{Flags: FlagAnnounce, VRP: v6},
			&CacheReset{},
			&ErrorReport{Code: ErrCorruptData, CausingPDU: []byte{1, 2, 3}, Text: "boom"},
		}
		for _, p := range pdus {
			q := roundTrip(t, version, p)
			switch a := p.(type) {
			case *SerialNotify:
				if *q.(*SerialNotify) != *a {
					t.Errorf("v%d SerialNotify mismatch", version)
				}
			case *SerialQuery:
				if *q.(*SerialQuery) != *a {
					t.Errorf("v%d SerialQuery mismatch", version)
				}
			case *CacheResponse:
				if *q.(*CacheResponse) != *a {
					t.Errorf("v%d CacheResponse mismatch", version)
				}
			case *Prefix:
				if *q.(*Prefix) != *a {
					t.Errorf("v%d Prefix mismatch: %+v vs %+v", version, q, a)
				}
			case *ErrorReport:
				b := q.(*ErrorReport)
				if b.Code != a.Code || b.Text != a.Text || !bytes.Equal(b.CausingPDU, a.CausingPDU) {
					t.Errorf("v%d ErrorReport mismatch", version)
				}
			}
		}
	}
}

func TestEndOfDataVersions(t *testing.T) {
	in := &EndOfData{SessionID: 5, Serial: 99, Refresh: 3600, Retry: 600, Expire: 7200}
	// Version 0 drops the timers.
	out0 := roundTrip(t, Version0, in).(*EndOfData)
	if out0.Serial != 99 || out0.SessionID != 5 || out0.Refresh != 0 {
		t.Errorf("v0 EndOfData = %+v", out0)
	}
	out1 := roundTrip(t, Version1, in).(*EndOfData)
	if *out1 != *in {
		t.Errorf("v1 EndOfData = %+v", out1)
	}
}

func TestRouterKeyVersionGate(t *testing.T) {
	rk := &RouterKey{Flags: 1, AS: 64496, SPKI: []byte{1, 2, 3, 4}}
	rk.SKI[0] = 0xab
	var buf bytes.Buffer
	if err := WritePDU(&buf, Version0, rk); err == nil {
		t.Fatal("Router Key must be rejected for version 0")
	}
	out := roundTrip(t, Version1, rk).(*RouterKey)
	if out.Flags != 1 || out.AS != 64496 || out.SKI != rk.SKI || !bytes.Equal(out.SPKI, rk.SPKI) {
		t.Errorf("RouterKey mismatch: %+v", out)
	}
}

func TestReadPDUErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		code uint16
	}{
		{"bad version", []byte{9, 2, 0, 0, 0, 0, 0, 8}, ErrUnsupportedVersion},
		{"bad length", []byte{1, 2, 0, 0, 0, 0, 0, 4}, ErrCorruptData},
		{"unknown type", []byte{1, 99, 0, 0, 0, 0, 0, 8}, ErrUnsupportedPDUType},
		{"wrong body size", []byte{1, 2, 0, 0, 0, 0, 0, 12, 0, 0, 0, 0}, ErrCorruptData},
		{"router key v0", append([]byte{0, 9, 0, 0, 0, 0, 0, 32}, make([]byte, 24)...), ErrUnsupportedPDUType},
	}
	for _, c := range cases {
		_, _, err := ReadPDU(bytes.NewReader(c.raw))
		pe, ok := err.(*ProtocolError)
		if !ok {
			t.Errorf("%s: err = %v, want ProtocolError", c.name, err)
			continue
		}
		if pe.Code != c.code {
			t.Errorf("%s: code = %d, want %d", c.name, pe.Code, c.code)
		}
	}
	// Truncated stream.
	if _, _, err := ReadPDU(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := ReadPDU(bytes.NewReader([]byte{1, 0, 0, 0, 0, 0, 0, 12, 1})); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body: %v", err)
	}
}

func TestBadPrefixPDURejected(t *testing.T) {
	// maxLength < prefix length must produce ErrCorruptData.
	var buf bytes.Buffer
	if err := WritePDU(&buf, Version1, &Prefix{Flags: FlagAnnounce,
		VRP: rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 16, AS: 1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[10] = 4 // maxLength 4 < len 8
	_, _, err := ReadPDU(bytes.NewReader(raw))
	pe, ok := err.(*ProtocolError)
	if !ok || pe.Code != ErrCorruptData {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(pe.Error(), "rtr:") {
		t.Error("ProtocolError.Error format")
	}
}

func TestErrorReportTruncation(t *testing.T) {
	big := strings.Repeat("x", MaxPDUSize)
	er := &ErrorReport{Code: 1, CausingPDU: make([]byte, MaxPDUSize), Text: big}
	var buf bytes.Buffer
	if err := WritePDU(&buf, Version1, er); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > MaxPDUSize+headerLen+8 {
		t.Fatalf("oversized error report: %d bytes", buf.Len())
	}
	out, _, err := ReadPDU(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.(*ErrorReport).Text) == 0 {
		t.Error("truncated text vanished entirely")
	}
}

func TestErrorReportMalformedLengths(t *testing.T) {
	// causing-PDU length exceeding the body must be rejected.
	body := make([]byte, 8)
	binary.BigEndian.PutUint32(body, 100) // longer than body
	raw := make([]byte, 8+len(body))
	writeHeader(raw, Version1, TypeErrorReport, 0, uint32(len(raw)))
	copy(raw[8:], body)
	if _, _, err := ReadPDU(bytes.NewReader(raw)); err == nil {
		t.Error("overflowing causing-PDU length accepted")
	}
	// text length overflow.
	body2 := make([]byte, 8)
	binary.BigEndian.PutUint32(body2, 0)
	binary.BigEndian.PutUint32(body2[4:], 50)
	raw2 := make([]byte, 8+len(body2))
	writeHeader(raw2, Version1, TypeErrorReport, 0, uint32(len(raw2)))
	copy(raw2[8:], body2)
	if _, _, err := ReadPDU(bytes.NewReader(raw2)); err == nil {
		t.Error("overflowing text length accepted")
	}
}

func TestWritePDUUnknownVersion(t *testing.T) {
	if err := WritePDU(io.Discard, 7, &ResetQuery{}); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestPrefixPDUQuickRoundTrip(t *testing.T) {
	f := func(addr uint64, l8, mlDelta uint8, as uint32, v6 bool, announce bool) bool {
		fam := prefix.IPv4
		if v6 {
			fam = prefix.IPv6
		}
		l := l8 % (fam.MaxLen() + 1)
		hi, lo := addr, addr*0x9e3779b97f4a7c15
		if fam == prefix.IPv4 {
			hi &= 0xffffffff00000000
			lo = 0
		}
		p, err := prefix.Make(fam, hi, lo, l)
		if err != nil {
			return false
		}
		ml := l + mlDelta%(fam.MaxLen()-l+1)
		flags := FlagWithdraw
		if announce {
			flags = FlagAnnounce
		}
		in := &Prefix{Flags: flags, VRP: rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(as)}}
		var buf bytes.Buffer
		if err := WritePDU(&buf, Version1, in); err != nil {
			return false
		}
		out, _, err := ReadPDU(&buf)
		if err != nil {
			return false
		}
		got, ok := out.(*Prefix)
		return ok && *got == *in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
