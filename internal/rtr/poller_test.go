package rtr

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable clock for poller tests: every timerAfter call
// is surfaced on reqs, and the test fires timers explicitly, advancing Now by
// the timer's duration.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	reqs chan fakeTimer
}

type fakeTimer struct {
	d  time.Duration
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0), reqs: make(chan fakeTimer, 16)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	t := fakeTimer{d: d, ch: make(chan time.Time, 1)}
	f.reqs <- t
	return t.ch
}

// fire advances the clock past the timer's deadline and fires it.
func (f *fakeClock) fire(t fakeTimer) {
	f.mu.Lock()
	f.now = f.now.Add(t.d)
	now := f.now
	f.mu.Unlock()
	t.ch <- now
}

// nextTimer returns the next armed timer or fails the test after a timeout.
func (f *fakeClock) nextTimer(t *testing.T) fakeTimer {
	t.Helper()
	select {
	case tm := <-f.reqs:
		return tm
	case <-time.After(5 * time.Second):
		t.Fatal("poller armed no timer")
		return fakeTimer{}
	}
}

// TestPollerRefreshAndRetryFakeClock drives the RFC 8210 state machine over
// a scripted cache with a fake clock: the initial sync adopts the cache's
// End of Data timers; with no Serial Notify ever sent, the Refresh timer
// triggers a sync; that sync fails and the poller waits out the Retry timer;
// the retry then succeeds.
func TestPollerRefreshAndRetryFakeClock(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	c := NewClient(cliConn)
	fc := newFakeClock()
	p := NewPoller(c)
	p.nowFn = fc.Now
	p.afterFn = fc.After
	updates := make(chan uint32, 8)
	p.OnUpdate = func(s uint32) { updates <- s }

	const session = 0x1234
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			// 1) Initial sync: the stateless client sends a Reset Query.
			pdu, _, err := ReadPDU(srvConn)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return fmt.Errorf("expected Reset Query, got %T", pdu)
			}
			if err := WritePDU(srvConn, Version1, &CacheResponse{SessionID: session}); err != nil {
				return err
			}
			if err := WritePDU(srvConn, Version1, &EndOfData{
				SessionID: session, Serial: 7, Refresh: 1800, Retry: 300, Expire: 3600,
			}); err != nil {
				return err
			}
			// 2) Refresh-triggered sync: fail it with an Error Report.
			pdu, _, err = ReadPDU(srvConn)
			if err != nil {
				return err
			}
			if q, ok := pdu.(*SerialQuery); !ok || q.Serial != 7 {
				return fmt.Errorf("expected Serial Query for 7, got %#v", pdu)
			}
			if err := WritePDU(srvConn, Version1, &ErrorReport{
				Code: ErrInternalError, Text: "transient failure",
			}); err != nil {
				return err
			}
			// 3) Retry sync: succeed with an empty incremental update.
			pdu, _, err = ReadPDU(srvConn)
			if err != nil {
				return err
			}
			if q, ok := pdu.(*SerialQuery); !ok || q.Serial != 7 {
				return fmt.Errorf("expected retry Serial Query for 7, got %#v", pdu)
			}
			if err := WritePDU(srvConn, Version1, &CacheResponse{SessionID: session}); err != nil {
				return err
			}
			return WritePDU(srvConn, Version1, &EndOfData{
				SessionID: session, Serial: 8, Refresh: 1800, Retry: 300, Expire: 3600,
			})
		}()
	}()

	runErr := make(chan error, 1)
	go func() { runErr <- p.Run() }()

	if s := <-updates; s != 7 {
		t.Fatalf("initial sync serial = %d, want 7", s)
	}
	// Idle: the poller must arm the *adopted* Refresh interval, not the
	// configured default.
	timer := fc.nextTimer(t)
	if timer.d != 1800*time.Second {
		t.Fatalf("refresh timer = %v, want 30m0s (adopted from End of Data)", timer.d)
	}
	// No Serial Notify arrives; firing Refresh must trigger a sync, which
	// the cache fails.
	fc.fire(timer)
	timer = fc.nextTimer(t)
	if timer.d != 300*time.Second {
		t.Fatalf("retry timer = %v, want 5m0s (adopted from End of Data)", timer.d)
	}
	// RFC 8210 §6: one failed sync must NOT discard the data — only the
	// Expire window does. 1800s have passed of the 3600s window.
	if !p.Healthy() {
		t.Fatal("failed sync discarded data still inside the Expire window")
	}
	// Firing Retry must trigger another sync, which succeeds.
	fc.fire(timer)
	if s := <-updates; s != 8 {
		t.Fatalf("retried sync serial = %d, want 8", s)
	}
	if !p.Healthy() {
		t.Fatal("poller unhealthy after successful retry")
	}
	// Back to idle: Refresh armed again.
	timer = fc.nextTimer(t)
	if timer.d != 1800*time.Second {
		t.Fatalf("re-armed refresh timer = %v, want 30m0s", timer.d)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("scripted cache: %v", err)
	}
	p.Stop()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
	if p.Refresh != 1800*time.Second || p.Retry != 300*time.Second || p.Expire != 3600*time.Second {
		t.Fatalf("timers not adopted: refresh=%v retry=%v expire=%v", p.Refresh, p.Retry, p.Expire)
	}
}
