package rtr

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpki"
)

// fakeClock is a controllable clock for poller tests: every timerAfter call
// is surfaced on reqs, and the test fires timers explicitly, advancing Now by
// the timer's duration.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	reqs chan fakeTimer
}

type fakeTimer struct {
	d  time.Duration
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0), reqs: make(chan fakeTimer, 16)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	t := fakeTimer{d: d, ch: make(chan time.Time, 1)}
	f.reqs <- t
	return t.ch
}

// fire advances the clock past the timer's deadline and fires it.
func (f *fakeClock) fire(t fakeTimer) {
	f.mu.Lock()
	f.now = f.now.Add(t.d)
	now := f.now
	f.mu.Unlock()
	t.ch <- now
}

// nextTimer returns the next armed timer or fails the test after a timeout.
func (f *fakeClock) nextTimer(t *testing.T) fakeTimer {
	t.Helper()
	select {
	case tm := <-f.reqs:
		return tm
	case <-time.After(5 * time.Second):
		t.Fatal("poller armed no timer")
		return fakeTimer{}
	}
}

// TestPollerRefreshAndRetryFakeClock drives the RFC 8210 state machine over
// a scripted cache with a fake clock: the initial sync adopts the cache's
// End of Data timers; with no Serial Notify ever sent, the Refresh timer
// triggers a sync; that sync fails and the poller waits out the Retry timer;
// the retry then succeeds.
func TestPollerRefreshAndRetryFakeClock(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	c := NewClient(cliConn)
	fc := newFakeClock()
	p := NewPoller(c)
	p.nowFn = fc.Now
	p.afterFn = fc.After
	updates := make(chan Serial, 8)
	p.OnUpdate = func(s Serial) { updates <- s }

	const session = 0x1234
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			// 1) Initial sync: the stateless client sends a Reset Query.
			pdu, _, err := ReadPDU(srvConn)
			if err != nil {
				return err
			}
			if _, ok := pdu.(*ResetQuery); !ok {
				return fmt.Errorf("expected Reset Query, got %T", pdu)
			}
			if err := WritePDU(srvConn, Version1, &CacheResponse{SessionID: session}); err != nil {
				return err
			}
			if err := WritePDU(srvConn, Version1, &EndOfData{
				SessionID: session, Serial: 7, Refresh: 1800, Retry: 300, Expire: 3600,
			}); err != nil {
				return err
			}
			// 2) Refresh-triggered sync: fail it with an Error Report.
			pdu, _, err = ReadPDU(srvConn)
			if err != nil {
				return err
			}
			if q, ok := pdu.(*SerialQuery); !ok || q.Serial != 7 {
				return fmt.Errorf("expected Serial Query for 7, got %#v", pdu)
			}
			if err := WritePDU(srvConn, Version1, &ErrorReport{
				Code: ErrInternalError, Text: "transient failure",
			}); err != nil {
				return err
			}
			// 3) Retry sync: succeed with an empty incremental update.
			pdu, _, err = ReadPDU(srvConn)
			if err != nil {
				return err
			}
			if q, ok := pdu.(*SerialQuery); !ok || q.Serial != 7 {
				return fmt.Errorf("expected retry Serial Query for 7, got %#v", pdu)
			}
			if err := WritePDU(srvConn, Version1, &CacheResponse{SessionID: session}); err != nil {
				return err
			}
			return WritePDU(srvConn, Version1, &EndOfData{
				SessionID: session, Serial: 8, Refresh: 1800, Retry: 300, Expire: 3600,
			})
		}()
	}()

	runErr := make(chan error, 1)
	go func() { runErr <- p.Run() }()

	if s := <-updates; s != 7 {
		t.Fatalf("initial sync serial = %d, want 7", s)
	}
	// Idle: the poller must arm the *adopted* Refresh interval, not the
	// configured default.
	timer := fc.nextTimer(t)
	if timer.d != 1800*time.Second {
		t.Fatalf("refresh timer = %v, want 30m0s (adopted from End of Data)", timer.d)
	}
	// No Serial Notify arrives; firing Refresh must trigger a sync, which
	// the cache fails.
	fc.fire(timer)
	timer = fc.nextTimer(t)
	if timer.d != 300*time.Second {
		t.Fatalf("retry timer = %v, want 5m0s (adopted from End of Data)", timer.d)
	}
	// RFC 8210 §6: one failed sync must NOT discard the data — only the
	// Expire window does. 1800s have passed of the 3600s window.
	if !p.Healthy() {
		t.Fatal("failed sync discarded data still inside the Expire window")
	}
	// Firing Retry must trigger another sync, which succeeds.
	fc.fire(timer)
	if s := <-updates; s != 8 {
		t.Fatalf("retried sync serial = %d, want 8", s)
	}
	if !p.Healthy() {
		t.Fatal("poller unhealthy after successful retry")
	}
	// Back to idle: Refresh armed again.
	timer = fc.nextTimer(t)
	if timer.d != 1800*time.Second {
		t.Fatalf("re-armed refresh timer = %v, want 30m0s", timer.d)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("scripted cache: %v", err)
	}
	p.Stop()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
	if p.Refresh != 1800*time.Second || p.Retry != 300*time.Second || p.Expire != 3600*time.Second {
		t.Fatalf("timers not adopted: refresh=%v retry=%v expire=%v", p.Refresh, p.Retry, p.Expire)
	}
}

// TestSplitNotifyAcrossRefreshBoundary is the regression test for the
// mid-PDU read-deadline desync race the dispatch loop exists to remove. A
// Serial Notify is delivered split in two: its 8-byte header before the
// Refresh timer fires, its 4-byte body after. The old design reacted to the
// Refresh timer by slamming an already-passed read deadline onto the shared
// connection to evict the blocked WaitNotify goroutine — which here would
// kill ReadPDU between header and body, leaving 4 stray bytes on the stream
// to be misparsed as the next PDU's header; RFC 8210 has no resync point, so
// every subsequent exchange would read garbage and this test would fail at
// the serial-query assertions below. The dispatch loop never interrupts a
// read: the half-received PDU simply completes when its body arrives, and
// both the refresh-triggered sync and the one after it find a perfectly
// framed stream.
func TestSplitNotifyAcrossRefreshBoundary(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	c := NewClient(cliConn)
	fc := newFakeClock()
	p := NewPoller(c)
	p.nowFn = fc.Now
	p.afterFn = fc.After
	updates := make(chan Serial, 8)
	p.OnUpdate = func(s Serial) { updates <- s }

	const session = 0x7a11
	runErr := make(chan error, 1)
	go func() { runErr <- p.Run() }()

	expectQuery := func(wantSerial Serial) {
		t.Helper()
		pdu, _, err := ReadPDU(srvConn)
		if err != nil {
			t.Fatalf("reading query: %v", err)
		}
		q, ok := pdu.(*SerialQuery)
		if !ok || q.Serial != wantSerial {
			t.Fatalf("got %T %+v, want Serial Query for %d", pdu, pdu, wantSerial)
		}
	}
	answer := func(serial Serial) {
		t.Helper()
		if err := WritePDU(srvConn, Version1, &CacheResponse{SessionID: session}); err != nil {
			t.Fatal(err)
		}
		if err := WritePDU(srvConn, Version1, &EndOfData{
			SessionID: session, Serial: serial, Refresh: 1800, Retry: 300, Expire: 7200,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Initial sync: the stateless client sends a Reset Query.
	pdu, _, err := ReadPDU(srvConn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pdu.(*ResetQuery); !ok {
		t.Fatalf("expected Reset Query, got %T", pdu)
	}
	answer(7)
	if s := <-updates; s != 7 {
		t.Fatalf("initial sync serial = %d, want 7", s)
	}
	refresh := fc.nextTimer(t)
	if refresh.d != 1800*time.Second {
		t.Fatalf("refresh timer = %v, want 30m0s", refresh.d)
	}

	// Deliver only the HEADER of a Serial Notify for serial 8: the dispatch
	// loop is now blocked mid-PDU, exactly where the old design's deadline
	// would cut.
	var notify bytes.Buffer
	if err := WritePDU(&notify, Version1, &SerialNotify{SessionID: session, Serial: 8}); err != nil {
		t.Fatal(err)
	}
	raw := notify.Bytes()
	if _, err := srvConn.Write(raw[:headerLen]); err != nil {
		t.Fatal(err)
	}

	// The Refresh timer fires across the half-received PDU.
	fc.fire(refresh)

	// The refresh-triggered Serial Query goes out on the intact write side.
	expectQuery(7)

	// Now the notify's body arrives; the PDU completes in frame, then the
	// cache answers the query. The dispatch loop routes the notify to the
	// notify channel and the response to the waiting sync — nothing parses
	// garbage.
	if _, err := srvConn.Write(raw[headerLen:]); err != nil {
		t.Fatal(err)
	}
	answer(8)
	if s := <-updates; s != 8 {
		t.Fatalf("refresh sync serial = %d, want 8", s)
	}

	// The notify (serial 8) was satisfied by that very sync: the client
	// drops it as stale, so the poller goes back to a plain Refresh wait
	// instead of a spurious immediate sync.
	refresh = fc.nextTimer(t)
	if refresh.d != 1800*time.Second {
		t.Fatalf("re-armed refresh timer = %v, want 30m0s", refresh.d)
	}

	// One more round proves the stream is still framed after the boundary.
	fc.fire(refresh)
	expectQuery(8)
	answer(8)
	if s := <-updates; s != 8 {
		t.Fatalf("follow-up sync serial = %d, want 8", s)
	}

	p.Stop()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
}

// TestPollerNotifyVsRefreshRace drives the exact race window the old design
// lost: a cache update (whose Serial Notify is racing toward the client)
// concurrent with the Refresh timer firing. Whatever interleaving the race
// takes, the dispatch loop keeps the stream framed and the poller converges
// without ever entering an error path. Run under -race by make race.
func TestPollerNotifyVsRefreshRace(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeClock()
	p := NewPoller(c)
	p.nowFn = fc.Now
	p.afterFn = fc.After
	var updates atomic.Int32
	p.OnUpdate = func(Serial) { updates.Add(1) }
	runErr := make(chan error, 1)
	go func() { runErr <- p.Run() }()

	waitFor(t, func() bool { return updates.Load() >= 1 })
	refresh := fc.nextTimer(t)

	next := rpki.NewSet(append(set.VRPs(),
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); srv.UpdateSet(next) }()
	go func() { defer wg.Done(); fc.fire(refresh) }()
	wg.Wait()

	// The refresh-triggered sync, the notify-triggered one, or both run;
	// either way the client converges and stays healthy.
	waitFor(t, func() bool { return c.Set().Equal(next) })
	if !p.Healthy() {
		t.Fatal("poller unhealthy after notify-vs-refresh race")
	}
	p.Stop()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
}

// TestPollerConnFailureWhileIdle pins the Done-channel branch: when the
// connection dies while the poller idles between syncs, the poller must
// treat it as a connection failure — entering the Retry path immediately —
// not as a refresh-timer sync (the old code discarded the WaitNotify error
// and could not tell the two apart). Retries fail fast on the client's
// sticky error; once the Expire window passes, Run surfaces the error so the
// caller reconnects.
func TestPollerConnFailureWhileIdle(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	c := NewClient(cliConn)
	fc := newFakeClock()
	p := NewPoller(c)
	p.nowFn = fc.Now
	p.afterFn = fc.After
	updates := make(chan Serial, 8)
	p.OnUpdate = func(s Serial) { updates <- s }

	const session = 0x1dfe
	runErr := make(chan error, 1)
	go func() { runErr <- p.Run() }()

	// Initial sync at serial 7 with adopted timers 1800/300/3600.
	pdu, _, err := ReadPDU(srvConn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pdu.(*ResetQuery); !ok {
		t.Fatalf("expected Reset Query, got %T", pdu)
	}
	if err := WritePDU(srvConn, Version1, &CacheResponse{SessionID: session}); err != nil {
		t.Fatal(err)
	}
	if err := WritePDU(srvConn, Version1, &EndOfData{
		SessionID: session, Serial: 7, Refresh: 1800, Retry: 300, Expire: 3600,
	}); err != nil {
		t.Fatal(err)
	}
	if s := <-updates; s != 7 {
		t.Fatalf("initial sync serial = %d, want 7", s)
	}
	refresh := fc.nextTimer(t)
	if refresh.d != 1800*time.Second {
		t.Fatalf("refresh timer = %v, want 30m0s", refresh.d)
	}

	// Sever the connection while the poller idles. The next timer armed must
	// be Retry — the failure is not mistaken for a refresh (the 1800s
	// refresh timer above is never fired).
	srvConn.Close()
	timer := fc.nextTimer(t)
	if timer.d != 300*time.Second {
		t.Fatalf("timer after idle connection failure = %v, want the 5m0s retry interval", timer.d)
	}

	// Each retry fails fast with the sticky error; after the 3600s Expire
	// window (12 retries at 300s) Run returns it.
	var result error
	for fires := 1; ; fires++ {
		if fires > 13 {
			t.Fatal("poller kept retrying past the Expire window")
		}
		fc.fire(timer)
		select {
		case result = <-runErr:
		case timer = <-fc.reqs:
			if timer.d != 300*time.Second {
				t.Fatalf("retry timer #%d = %v, want 5m0s", fires, timer.d)
			}
			continue
		case <-time.After(5 * time.Second):
			t.Fatal("poller armed no timer and did not exit")
		}
		break
	}
	if result == nil {
		t.Fatal("Run returned nil after the Expire window passed on a dead connection")
	}
	if p.Healthy() {
		t.Fatal("poller still healthy after expiry")
	}
}

// TestPollerSyncTimeoutUnwedgesSilentCache pins the liveness watchdog: a
// cache that accepts the connection and reads the query but never answers
// would block the exchange forever (the client has no read deadline by
// design), so SyncTimeout must tear the session down and surface the error
// promptly — the supervisor's cue to redial.
func TestPollerSyncTimeoutUnwedgesSilentCache(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	c := NewClient(cliConn)
	p := NewPoller(c)
	p.ExitOnDone = true
	p.SyncTimeout = 50 * time.Millisecond

	// The wedged cache: consume the query, then go silent forever.
	go func() { _, _, _ = ReadPDU(srvConn) }()

	runErr := make(chan error, 1)
	go func() { runErr <- p.Run() }()
	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("Run returned nil against a silent cache")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SyncTimeout did not unwedge the blocked exchange")
	}
	if c.Err() == nil {
		t.Fatal("watchdog teardown did not record a sticky error")
	}
}
