package rtr

import (
	"net"
	"testing"
	"time"

	"repro/internal/rpki"
)

func testVRPs() *rpki.Set {
	return rpki.NewSet([]rpki.VRP{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: mp("168.122.225.0/24"), MaxLength: 24, AS: 111},
		{Prefix: mp("87.254.32.0/19"), MaxLength: 20, AS: 31283},
		{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 64496},
	})
}

// startServer runs a Server on a loopback listener and returns its address
// and a shutdown func.
func startServer(t *testing.T, s *Server) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(l)
	}()
	return l.Addr().String(), func() {
		s.Close()
		<-done
	}
}

func TestFullSync(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if !c.Set().Equal(set) {
		t.Fatalf("client set %v != served %v", c.Set().VRPs(), set.VRPs())
	}
	if c.Serial() != srv.Serial() || c.SessionID() != srv.SessionID() {
		t.Errorf("serial/session mismatch: %d/%d vs %d/%d",
			c.Serial(), c.SessionID(), srv.Serial(), srv.SessionID())
	}
}

func TestFullSyncVersion0(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Version = Version0
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != set.Len() {
		t.Fatalf("v0 sync got %d VRPs, want %d", c.Len(), set.Len())
	}
}

func TestIncrementalSync(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Sync(); err != nil { // no state: full reset
		t.Fatal(err)
	}
	before := c.Serial()

	// Mutate the served set: drop one VRP, add another.
	next := rpki.NewSet(append(set.VRPs()[1:],
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	srv.UpdateSet(next)

	// The client receives a Serial Notify...
	serial, err := c.WaitNotify()
	if err != nil {
		t.Fatal(err)
	}
	if serial != before+1 {
		t.Errorf("notify serial = %d, want %d", serial, before+1)
	}
	// ...and an incremental Sync converges.
	got, err := c.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if got != serial {
		t.Errorf("synced to %d, want %d", got, serial)
	}
	if !c.Set().Equal(next) {
		t.Fatalf("after delta: %v, want %v", c.Set().VRPs(), next.VRPs())
	}
}

func TestSyncAfterManyUpdates(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// Several updates between syncs: the delta chain must compose. The five
	// notifies coalesce — the dispatch loop keeps only the newest pending
	// serial — so one WaitNotify wake-up is all the client needs before the
	// sync, and any notifies still in flight during the sync are consumed by
	// the dispatch loop without disturbing the response stream.
	cur := set
	for i := 0; i < 5; i++ {
		cur = rpki.NewSet(append(cur.VRPs(),
			rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(8 + i), AS: rpki.ASN(100 + i)}))
		srv.UpdateSet(cur)
	}
	if _, err := c.WaitNotify(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if !c.Set().Equal(cur) {
		t.Fatalf("after chain: %d VRPs, want %d", c.Len(), cur.Len())
	}
}

func TestCacheResetFallback(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	srv.KeepDeltas = 1
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// Expire the delta the client would need: many updates with KeepDeltas=1.
	cur := set
	for i := 0; i < 4; i++ {
		cur = rpki.NewSet(append(cur.VRPs(),
			rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(8 + i), AS: rpki.ASN(200 + i)}))
		srv.UpdateSet(cur)
	}
	if _, err := c.WaitNotify(); err != nil {
		t.Fatal(err)
	}
	// Sync must fall back to a full reset transparently and still converge.
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if !c.Set().Equal(cur) {
		t.Fatalf("after fallback: %d VRPs, want %d", c.Len(), cur.Len())
	}
}

func TestServerRejectsUnexpectedPDU(t *testing.T) {
	srv := NewServer(testVRPs())
	addr, stop := startServer(t, srv)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A router must not send Cache Response; the server answers with an
	// Error Report and closes.
	if err := WritePDU(nc, Version1, &CacheResponse{SessionID: 1}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	pdu, _, err := ReadPDU(nc)
	if err != nil {
		t.Fatal(err)
	}
	er, ok := pdu.(*ErrorReport)
	if !ok || er.Code != ErrInvalidRequest {
		t.Fatalf("got %T %+v, want invalid-request ErrorReport", pdu, pdu)
	}
}

func TestServerReportsCorruptPDU(t *testing.T) {
	srv := NewServer(testVRPs())
	addr, stop := startServer(t, srv)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{1, 2, 0, 0, 0, 0, 0, 3}); err != nil { // bad length
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	pdu, _, err := ReadPDU(nc)
	if err != nil {
		t.Fatal(err)
	}
	if er, ok := pdu.(*ErrorReport); !ok || er.Code != ErrCorruptData {
		t.Fatalf("got %T, want corrupt-data ErrorReport", pdu)
	}
}

// TestServerReportsUnsupportedVersion: a PDU with a bogus version byte must
// still be answered with an Error Report — sent with the connection's
// negotiated (default) version, since serializing with the peer's bogus byte
// is impossible.
func TestServerReportsUnsupportedVersion(t *testing.T) {
	srv := NewServer(testVRPs())
	addr, stop := startServer(t, srv)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A Reset Query header with version byte 9.
	if _, err := nc.Write([]byte{9, 2, 0, 0, 0, 0, 0, 8}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	pdu, version, err := ReadPDU(nc)
	if err != nil {
		t.Fatalf("no Error Report came back: %v", err)
	}
	er, ok := pdu.(*ErrorReport)
	if !ok || er.Code != ErrUnsupportedVersion {
		t.Fatalf("got %T %+v, want unsupported-version ErrorReport", pdu, pdu)
	}
	if version != Version1 {
		t.Errorf("Error Report version = %d, want the default %d", version, Version1)
	}
}

// serialQueryResponse dials the server, issues one Serial Query, and returns
// every PDU up to and including the Cache Reset or End of Data terminator.
func serialQueryResponse(t *testing.T, addr string, session uint16, serial Serial) []PDU {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := WritePDU(nc, Version1, &SerialQuery{SessionID: session, Serial: serial}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	var pdus []PDU
	for {
		pdu, _, err := ReadPDU(nc)
		if err != nil {
			t.Fatalf("reading serial-query response: %v", err)
		}
		pdus = append(pdus, pdu)
		switch pdu.(type) {
		case *CacheReset, *EndOfData:
			return pdus
		}
	}
}

// TestKeepDeltasEvictionBoundary pins the delta-retention window: with
// KeepDeltas = k, the oldest router serial still answerable incrementally is
// current-k-1; one serial older than that needs an evicted delta and must
// get Cache Reset.
func TestKeepDeltasEvictionBoundary(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	srv.KeepDeltas = 3
	cur := set
	for i := 0; i < 5; i++ { // serial 1 -> 6; deltas for 3..6 retained
		cur = rpki.NewSet(append(cur.VRPs(),
			rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(8 + i), AS: rpki.ASN(100 + i)}))
		srv.UpdateSet(cur)
	}
	addr, stop := startServer(t, srv)
	defer stop()
	session := srv.SessionID()

	// Serial 2 needs the chain 3..6 — all retained: incremental update with
	// one announcement per delta.
	pdus := serialQueryResponse(t, addr, session, 2)
	if _, ok := pdus[0].(*CacheResponse); !ok {
		t.Fatalf("in-window query: first PDU is %T, want Cache Response", pdus[0])
	}
	announces := 0
	for _, p := range pdus {
		if pp, ok := p.(*Prefix); ok && pp.Flags&FlagAnnounce != 0 {
			announces++
		}
	}
	if announces != 4 {
		t.Fatalf("in-window query: %d announcements, want 4", announces)
	}
	eod, ok := pdus[len(pdus)-1].(*EndOfData)
	if !ok || eod.Serial != srv.Serial() {
		t.Fatalf("in-window query: terminator %T %+v, want End of Data at serial %d",
			pdus[len(pdus)-1], pdus[len(pdus)-1], srv.Serial())
	}

	// Serial 1 needs the evicted delta 2: Cache Reset.
	pdus = serialQueryResponse(t, addr, session, 1)
	if len(pdus) != 1 {
		t.Fatalf("one-past-window query: got %d PDUs, want a lone Cache Reset", len(pdus))
	}
	if _, ok := pdus[0].(*CacheReset); !ok {
		t.Fatalf("one-past-window query: got %T, want Cache Reset", pdus[0])
	}
}

// diffSets computes the announce/withdraw delta between two full sets by a
// linear dual walk in canonical order. It was the server's UpdateSet diff
// until the rov.Diff snapshot path replaced it; it stays here as the
// independent reference implementation the differential tests check the
// structural diff against.
func diffSets(old, next *rpki.Set) []Prefix {
	var out []Prefix
	a, b := old.VRPs(), next.VRPs()
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = append(out, Prefix{Flags: FlagAnnounce, VRP: b[j]})
			j++
		case j >= len(b):
			out = append(out, Prefix{Flags: FlagWithdraw, VRP: a[i]})
			i++
		default:
			switch c := a[i].Compare(b[j]); {
			case c == 0:
				i++
				j++
			case c < 0:
				out = append(out, Prefix{Flags: FlagWithdraw, VRP: a[i]})
				i++
			default:
				out = append(out, Prefix{Flags: FlagAnnounce, VRP: b[j]})
				j++
			}
		}
	}
	return out
}

func TestDiffSets(t *testing.T) {
	a := rpki.NewSet([]rpki.VRP{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("11.0.0.0/8"), MaxLength: 8, AS: 1},
	})
	b := rpki.NewSet([]rpki.VRP{
		{Prefix: mp("11.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("12.0.0.0/8"), MaxLength: 8, AS: 1},
	})
	d := diffSets(a, b)
	if len(d) != 2 {
		t.Fatalf("diff = %+v", d)
	}
	var announces, withdraws int
	for _, p := range d {
		if p.Flags&FlagAnnounce != 0 {
			announces++
			if p.VRP.Prefix != mp("12.0.0.0/8") {
				t.Errorf("announced %v", p.VRP)
			}
		} else {
			withdraws++
			if p.VRP.Prefix != mp("10.0.0.0/8") {
				t.Errorf("withdrew %v", p.VRP)
			}
		}
	}
	if announces != 1 || withdraws != 1 {
		t.Errorf("announces=%d withdraws=%d", announces, withdraws)
	}
	if len(diffSets(a, a)) != 0 {
		t.Error("self-diff not empty")
	}
}

func TestMultipleClients(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	const n = 8
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	next := rpki.NewSet(append(set.VRPs(),
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	srv.UpdateSet(next)
	for i, c := range clients {
		if _, err := c.WaitNotify(); err != nil {
			t.Fatalf("client %d notify: %v", i, err)
		}
		if _, err := c.Sync(); err != nil {
			t.Fatalf("client %d sync: %v", i, err)
		}
		if !c.Set().Equal(next) {
			t.Fatalf("client %d diverged", i)
		}
	}
}

// TestOnDeltaReportsAppliedDeltas pins the Client.OnDelta hook: it must
// fire with exactly the VRPs each update added and removed — across the
// initial full sync, an incremental delta, and a no-op sync (no callback) —
// keeping a live validation index in step with the table.
func TestOnDeltaReportsAppliedDeltas(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mirror := map[rpki.VRP]struct{}{}
	calls := 0
	c.OnDelta = func(announced, withdrawn []rpki.VRP) {
		calls++
		for _, v := range announced {
			if _, ok := mirror[v]; ok {
				t.Errorf("announced already-present VRP %s", v)
			}
			mirror[v] = struct{}{}
		}
		for _, v := range withdrawn {
			if _, ok := mirror[v]; !ok {
				t.Errorf("withdrew absent VRP %s", v)
			}
			delete(mirror, v)
		}
	}
	checkMirror := func() {
		t.Helper()
		vrps := make([]rpki.VRP, 0, len(mirror))
		for v := range mirror {
			vrps = append(vrps, v)
		}
		if got := rpki.NewSet(vrps); !got.Equal(c.Set()) {
			t.Fatalf("delta mirror %v != table %v", got.VRPs(), c.Set().VRPs())
		}
	}

	if _, err := c.Sync(); err != nil { // initial full sync: everything announced
		t.Fatal(err)
	}
	if calls != 1 || len(mirror) != set.Len() {
		t.Fatalf("after full sync: %d calls, %d mirrored VRPs", calls, len(mirror))
	}
	checkMirror()

	// Incremental update: one VRP dropped, one added.
	next := rpki.NewSet(append(set.VRPs()[1:],
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	srv.UpdateSet(next)
	if _, err := c.WaitNotify(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("after incremental sync: %d calls", calls)
	}
	checkMirror()

	// A sync with nothing new must not fire the hook.
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("no-op sync fired OnDelta (calls = %d)", calls)
	}
	checkMirror()
}

// TestSerialDeltaMatchesChainedDeltas pins the snapshot-diff refactor to the
// behavior of the per-serial delta chain it replaced. The test replays the
// chain the old server stored — one diffSets delta per update, concatenated
// from the query serial forward — and requires the synthesized response to
// (a) transform the table at the query serial into exactly the same final
// table the chain produces, and (b) be the minimal form of that update: no
// announcement of a VRP the router already holds, no withdrawal of one it
// does not, no VRP appearing as both.
func TestSerialDeltaMatchesChainedDeltas(t *testing.T) {
	srv := NewServer(testVRPs())
	srv.KeepDeltas = 4

	applyPrefixPDUs := func(t *testing.T, table map[rpki.VRP]bool, delta []Prefix) {
		t.Helper()
		for _, p := range delta {
			if p.Flags == FlagAnnounce {
				table[p.VRP] = true
			} else {
				delete(table, p.VRP)
			}
		}
	}
	asMap := func(vrps []rpki.VRP) map[rpki.VRP]bool {
		m := make(map[rpki.VRP]bool, len(vrps))
		for _, v := range vrps {
			m[v] = true
		}
		return m
	}

	// Six updates with adds, removes, and churn (a VRP announced in one
	// update and withdrawn in a later one, which the chain carries as two
	// ops and the synthesized diff must cancel entirely).
	tables := map[Serial][]rpki.VRP{1: testVRPs().VRPs()}
	chains := map[Serial][]Prefix{}
	cur := testVRPs()
	churn := rpki.VRP{Prefix: mp("203.0.113.0/24"), MaxLength: 24, AS: 64500}
	for i := 0; i < 6; i++ {
		vrps := append([]rpki.VRP(nil), cur.VRPs()...)
		switch i {
		case 0:
			vrps = append(vrps, churn)
		case 2:
			vrps = vrps[1:] // withdraw the canonically-first VRP
		case 4: // withdraw the churn VRP again
			kept := vrps[:0]
			for _, v := range vrps {
				if v != churn {
					kept = append(kept, v)
				}
			}
			vrps = kept
		}
		vrps = append(vrps, rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: uint8(9 + i), AS: rpki.ASN(200 + i)})
		next := rpki.NewSet(vrps)
		chains[Serial(2+i)] = diffSets(cur, next)
		srv.UpdateSet(next)
		cur = next
		tables[Serial(2+i)] = cur.VRPs()
	}
	final := srv.Serial() // 7
	addr, stop := startServer(t, srv)
	defer stop()
	session := srv.SessionID()

	for q := Serial(2); q != final+1; q++ {
		pdus := serialQueryResponse(t, addr, session, q)
		var resp []Prefix
		for _, p := range pdus {
			if pp, ok := p.(*Prefix); ok {
				resp = append(resp, *pp)
			}
		}
		// The old chain's output: every stored delta from q+1 through final,
		// concatenated, applied in order.
		chainTable := asMap(tables[q])
		for s := q + 1; s != final+1; s++ {
			d, ok := chains[s]
			if !ok {
				t.Fatalf("test bug: no chain delta for serial %d", s)
			}
			applyPrefixPDUs(t, chainTable, d)
		}
		// (a) Same net effect.
		gotTable := asMap(tables[q])
		applyPrefixPDUs(t, gotTable, resp)
		if len(gotTable) != len(chainTable) {
			t.Fatalf("serial %d: synthesized delta yields %d VRPs, chain yields %d", q, len(gotTable), len(chainTable))
		}
		for v := range chainTable {
			if !gotTable[v] {
				t.Fatalf("serial %d: synthesized delta missing %v from the chained table", q, v)
			}
		}
		// (b) Minimal form.
		start := asMap(tables[q])
		seen := map[rpki.VRP]bool{}
		for _, p := range resp {
			if seen[p.VRP] {
				t.Fatalf("serial %d: VRP %v appears twice in the synthesized delta", q, p.VRP)
			}
			seen[p.VRP] = true
			if p.Flags == FlagAnnounce && start[p.VRP] {
				t.Fatalf("serial %d: redundant announce of %v", q, p.VRP)
			}
			if p.Flags == FlagWithdraw && !start[p.VRP] {
				t.Fatalf("serial %d: withdraw of absent %v", q, p.VRP)
			}
		}
	}

	// One serial past the retention horizon: Cache Reset, as before.
	pdus := serialQueryResponse(t, addr, session, 1)
	if _, ok := pdus[len(pdus)-1].(*CacheReset); !ok {
		t.Fatalf("serial 1 (evicted): got %T, want CacheReset", pdus[len(pdus)-1])
	}
}
