package rtr

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rpki"
)

func TestSerialLess(t *testing.T) {
	cases := []struct {
		a, b Serial
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{0xffffffff, 0, true},          // wrap
		{0, 0xffffffff, false},         // wrap, reversed
		{0xfffffff0, 5, true},          // across the wrap
		{0, 1 << 31, false},            // antipodal: incomparable
		{1 << 31, 0, false},            // antipodal, reversed
		{100, 100 + (1<<31 - 1), true}, // just inside the window
	}
	for _, c := range cases {
		if got := SerialLess(c.a, c.b); got != c.want {
			t.Errorf("SerialLess(%#x, %#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSerialProperties(t *testing.T) {
	// Irreflexive and antisymmetric (except antipodes, where both false).
	f := func(a, b Serial) bool {
		l1, l2 := SerialLess(a, b), SerialLess(b, a)
		if a == b {
			return !l1 && !l2
		}
		if uint32(b)-uint32(a) == 1<<31 {
			return !l1 && !l2
		}
		return l1 != l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Advancing by a small n always moves forward.
	g := func(s Serial, n8 uint8) bool {
		n := uint32(n8)
		if n == 0 {
			return SerialAdvance(s, 0) == s
		}
		return SerialNewer(SerialAdvance(s, n), s)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPollerLifecycle(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	addr, stop := startServer(t, srv)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var updates atomic.Int32
	p := NewPoller(c)
	p.OnUpdate = func(Serial) { updates.Add(1) }
	errCh := make(chan error, 1)
	go func() { errCh <- p.Run() }()

	// Initial sync happens inside Run.
	waitFor(t, func() bool { return updates.Load() >= 1 })
	if !p.Healthy() {
		t.Fatal("poller unhealthy after initial sync")
	}
	if p.LastSync().IsZero() {
		t.Fatal("LastSync not recorded")
	}

	// A server update triggers notify -> sync -> OnUpdate.
	next := rpki.NewSet(append(set.VRPs(),
		rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 7}))
	srv.UpdateSet(next)
	waitFor(t, func() bool { return updates.Load() >= 2 })
	if !c.Set().Equal(next) {
		t.Fatal("poller did not converge")
	}

	p.Stop()
	if err := <-errCh; err != nil {
		t.Fatalf("Run returned %v after Stop", err)
	}
	// Stop is idempotent.
	p.Stop()
}

func TestPollerExpiry(t *testing.T) {
	set := testVRPs()
	srv := NewServer(set)
	// The poller adopts the cache's advertised timers after each sync, so
	// the short Expire must come from the server's End of Data PDU.
	srv.Expire = 1
	addr, stop := startServer(t, srv)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPoller(c)
	errCh := make(chan error, 1)
	go func() { errCh <- p.Run() }()
	waitFor(t, func() bool { return !p.LastSync().IsZero() })
	// No further syncs: health must decay past the Expire window.
	waitFor(t, func() bool { return !p.Healthy() })
	p.Stop()
	<-errCh
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
