package rtr

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rpki"
)

// bigVRPSet builds an n-VRP IPv4 set large enough that a full-table
// response cannot fit in kernel socket buffers — the lever the slow-router
// tests use to wedge a writer on a router that stops reading.
func bigVRPSet(n int) *rpki.Set {
	vrps := make([]rpki.VRP, 0, n)
	for i := 0; i < n; i++ {
		vrps = append(vrps, rpki.VRP{
			Prefix:    mp(fmt.Sprintf("%d.%d.%d.0/24", 10+(i>>16), (i>>8)&0xff, i&0xff)),
			MaxLength: 24,
			AS:        rpki.ASN(64496 + i%1000),
		})
	}
	return rpki.NewSet(vrps)
}

// TestSlowRouterIsolation is the regression test for the retired
// blockinglock suppression: one router wedges its TCP read side with a
// multi-megabyte response pending, and the cache must keep publishing at
// full speed — UpdateSet latency bounded, every healthy router still
// notified — then disconnect the wedged router by write deadline instead
// of ever blocking a publisher on its socket.
func TestSlowRouterIsolation(t *testing.T) {
	set := bigVRPSet(50_000)
	srv := NewServer(set)
	srv.WriteTimeout = 300 * time.Millisecond
	addr, stop := startServer(t, srv)
	defer stop()

	const healthy = 4
	clients := make([]*Client, healthy)
	for i := range clients {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}

	// The stalled router: shrink its receive buffer so the server's writes
	// hit a closed TCP window fast, queue several full-table responses, and
	// never read a byte.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	for i := 0; i < 8; i++ {
		if err := WritePDU(stalled, Version1, &ResetQuery{}); err != nil {
			t.Fatal(err)
		}
	}
	// Give a pool writer time to pick the wedged conn up and block mid-write.
	time.Sleep(100 * time.Millisecond)

	// Publish through the wedge. Each UpdateSet must return promptly: the
	// notify path is queue handoff only. The bound is loose enough for a
	// loaded CI machine but far below the write deadline a blocking send
	// would eat per stalled router.
	cur := set.VRPs()
	for i := 0; i < 3; i++ {
		cur = append(cur, rpki.VRP{Prefix: mp("192.0.2.0/24"), MaxLength: uint8(25 + i), AS: 65000})
		next := rpki.NewSet(cur)
		start := time.Now()
		srv.UpdateSet(next)
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("UpdateSet #%d took %v with one stalled router — publisher is coupled to router sockets", i, d)
		}
		for j, c := range clients {
			if _, err := c.WaitNotify(); err != nil {
				t.Fatalf("healthy client %d missed notify #%d: %v", j, i, err)
			}
			if _, err := c.Sync(); err != nil {
				t.Fatalf("healthy client %d sync #%d: %v", j, i, err)
			}
		}
	}

	// The wedged router is disconnected by the write deadline, not tolerated
	// forever. The registry is the observable: the kernel may sit on the
	// closed socket's undelivered bytes indefinitely while the peer's window
	// is closed, so the client side is no witness.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() != healthy {
		if time.Now().After(deadline) {
			t.Fatalf("stalled router still registered: connCount = %d, want %d", srv.ConnCount(), healthy)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueOverflowDisconnect pins the overflow policy: a router that keeps
// sending queries without draining responses overflows its bounded outbound
// queue and is disconnected — the queue never grows without bound and the
// writer pool never owes it unbounded work.
func TestQueueOverflowDisconnect(t *testing.T) {
	srv := NewServer(bigVRPSet(50_000))
	srv.QueueDepth = 4
	addr, stop := startServer(t, srv)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	// Far more queries than QueueDepth, none of their responses read. The
	// first response wedges a writer against the closed window; the queue
	// passes the bound; the server disconnects.
	for i := 0; i < 40; i++ {
		if err := WritePDU(nc, Version1, &ResetQuery{}); err != nil {
			break // already disconnected: also a pass
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.ConnCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("overflowing router still registered: connCount = %d", srv.ConnCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentConnectDisconnectDuringPublish churns sessions while the
// publisher runs flat out (meaningful under -race): registration,
// disconnection, notify fan-out, and the atomic publish swap must compose
// without a torn read or a leaked registration.
func TestConcurrentConnectDisconnectDuringPublish(t *testing.T) {
	srv := NewServer(testVRPs())
	addr, stop := startServer(t, srv)
	defer stop()

	done := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		v := rpki.VRP{Prefix: mp("198.51.100.0/24"), MaxLength: 24, AS: 64511}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				srv.ApplyDelta([]rpki.VRP{v}, nil)
			} else {
				srv.ApplyDelta(nil, []rpki.VRP{v})
			}
		}
	}()

	const connectors, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, connectors)
	for g := 0; g < connectors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Reset(); err != nil {
					c.Close()
					errs <- err
					return
				}
				c.Close()
			}
		}()
	}
	wg.Wait()
	close(done)
	pubWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("connect/sync during publish churn: %v", err)
	}

	// Every churned session deregisters once its handler observes the close.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry leak: connCount = %d after all clients closed", srv.ConnCount())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A fresh client converges on the final table.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	want := rpki.NewSet(srv.pub.Load().current().AppendVRPs(nil))
	if !c.Set().Equal(want) {
		t.Fatalf("fresh client table %d VRPs != published %d", c.Len(), want.Len())
	}
}

// TestPublishedRingConsistency reads the published value concurrently with
// publishing (meaningful under -race) and checks its structural invariants
// on every observed version: bounded ring, strictly consecutive serials,
// the current serial resolvable to the current table, a constant session.
func TestPublishedRingConsistency(t *testing.T) {
	srv := NewServer(testVRPs())
	srv.KeepDeltas = 5
	session := srv.SessionID()

	stopRead := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			p := srv.pub.Load()
			if n := len(p.snaps); n < 1 || n > srv.KeepDeltas+2 {
				t.Errorf("ring size %d outside [1, %d]", n, srv.KeepDeltas+2)
				return
			}
			if p.session != session {
				t.Errorf("session changed: %#x -> %#x", session, p.session)
				return
			}
			for i := 1; i < len(p.snaps); i++ {
				if p.snaps[i].serial != SerialAdvance(p.snaps[i-1].serial, 1) {
					t.Errorf("ring serials not consecutive: %d after %d", p.snaps[i].serial, p.snaps[i-1].serial)
					return
				}
			}
			if p.snaps[len(p.snaps)-1].serial != p.serial {
				t.Errorf("published serial %d != last ring serial %d", p.serial, p.snaps[len(p.snaps)-1].serial)
				return
			}
			if p.lookup(p.serial) != p.current() {
				t.Error("lookup(current serial) != current table")
				return
			}
		}
	}()

	v := rpki.VRP{Prefix: mp("203.0.113.0/24"), MaxLength: 24, AS: 64501}
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			srv.ApplyDelta([]rpki.VRP{v}, nil)
		} else {
			srv.ApplyDelta(nil, []rpki.VRP{v})
		}
	}
	close(stopRead)
	wg.Wait()

	if got := srv.Serial(); got != SerialAdvance(1, 500) {
		t.Fatalf("serial after 500 publishes = %d, want %d", got, SerialAdvance(1, 500))
	}
	srv.Close()
}
