package core
