package core

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/rpki"
)

// paperTable is the running example of §2–§5: AS 111 announces its /16 and
// one /24; AS 31283 de-aggregates per Figure 2.
func paperTable() *bgp.Table {
	return bgp.NewTable([]bgp.Route{
		{Prefix: mp("168.122.0.0/16"), Origin: 111},
		{Prefix: mp("168.122.225.0/24"), Origin: 111},
		{Prefix: mp("87.254.32.0/19"), Origin: 31283},
		{Prefix: mp("87.254.32.0/20"), Origin: 31283},
		{Prefix: mp("87.254.48.0/20"), Origin: 31283},
		{Prefix: mp("87.254.32.0/21"), Origin: 31283},
	})
}

func TestMinimalizeRunningExample(t *testing.T) {
	// The non-minimal ROA (168.122.0.0/16-24, AS 111) of §4 minimalizes to
	// exactly the two announced prefixes — the §3 "alternate solution" ROA.
	in := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 24, 111)})
	min := Minimalize(in, paperTable())
	want := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 16, 111),
		v("168.122.225.0/24", 24, 111),
	})
	if !min.Equal(want) {
		t.Fatalf("Minimalize = %v, want %v", min.VRPs(), want.VRPs())
	}
	if ok, w := IsMinimal(min, paperTable()); !ok {
		t.Fatalf("minimalized set not minimal, witness %v", w)
	}
}

func TestMinimalizeDropsUnusedROA(t *testing.T) {
	in := rpki.NewSet([]rpki.VRP{
		v("203.0.113.0/24", 32, 9999), // nothing announced under it
		v("168.122.0.0/16", 16, 111),
	})
	min := Minimalize(in, paperTable())
	if min.Len() != 1 || min.VRPs()[0].AS != 111 {
		t.Fatalf("Minimalize = %v", min.VRPs())
	}
}

func TestMinimalizeWrongOriginExcluded(t *testing.T) {
	// A ROA authorizing AS 112 over 168.122.0.0/16 covers announced space,
	// but none of it is announced BY 112 — the minimal ROA is empty.
	in := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 24, 112)})
	if min := Minimalize(in, paperTable()); min.Len() != 0 {
		t.Fatalf("Minimalize = %v", min.VRPs())
	}
}

func TestIsMinimal(t *testing.T) {
	tbl := paperTable()
	minimal := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 16, 111),
		v("168.122.225.0/24", 24, 111),
	})
	if ok, w := IsMinimal(minimal, tbl); !ok {
		t.Fatalf("minimal set reported non-minimal: %v", w)
	}
	// The §4 non-minimal ROA: witness must be an unannounced authorized route.
	nonMinimal := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 24, 111)})
	ok, w := IsMinimal(nonMinimal, tbl)
	if ok || w == nil {
		t.Fatal("non-minimal set reported minimal")
	}
	if !mp("168.122.0.0/16").Contains(w.Prefix) || w.Prefix.Len() > 24 {
		t.Errorf("witness %v outside authorized range", w)
	}
	if tbl.Contains(w.Prefix, w.AS) {
		t.Errorf("witness %v is announced", w)
	}
	// Compressed minimal ROAs stay minimal (the §7 guarantee).
	figure2 := rpki.NewSet([]rpki.VRP{
		v("87.254.32.0/19", 19, 31283),
		v("87.254.32.0/20", 20, 31283),
		v("87.254.48.0/20", 20, 31283),
		v("87.254.32.0/21", 21, 31283),
	})
	compressed, _ := Compress(figure2, Options{})
	if ok, w := IsMinimal(compressed, tbl); !ok {
		t.Fatalf("compressed minimal ROAs not minimal: witness %v", w)
	}
}

func TestFullDeploymentMinimal(t *testing.T) {
	tbl := paperTable()
	s := FullDeploymentMinimal(tbl)
	if s.Len() != tbl.Len() {
		t.Fatalf("full deployment minimal has %d tuples, want %d", s.Len(), tbl.Len())
	}
	for _, x := range s.VRPs() {
		if x.UsesMaxLength() {
			t.Fatalf("tuple %v uses maxLength", x)
		}
	}
	if ok, w := IsMinimal(s, tbl); !ok {
		t.Fatalf("not minimal: %v", w)
	}
}

func TestFullDeploymentLowerBound(t *testing.T) {
	tbl := paperTable()
	lb := FullDeploymentLowerBound(tbl)
	// AS 111: /24 under announced /16 drops. AS 31283: /20,/20,/21 under /19
	// drop. 6 routes -> 2 tuples.
	if lb.Len() != 2 {
		t.Fatalf("lower bound = %v", lb.VRPs())
	}
	full := FullDeploymentMinimal(tbl)
	comp, _ := Compress(full, Options{})
	if comp.Len() < lb.Len() {
		t.Fatalf("compression (%d) beat the lower bound (%d)", comp.Len(), lb.Len())
	}
}

func TestAdditionalPrefixes(t *testing.T) {
	tbl := paperTable()
	// Status quo: one maxLength ROA for AS 111 covering both announcements,
	// and an exact-match tuple for AS 31283's /19 only.
	s := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 24, 111),
		v("87.254.32.0/19", 19, 31283),
	})
	// Minimal conversion needs: 168.122.225.0/24 (new), 168.122.0.0/16
	// (already an exact tuple), 87.254.32.0/19 (already exact). The /20s and
	// /21 are announced but NOT covered by the AS-31283 tuple (maxLength 19),
	// so they are not added.
	if n := AdditionalPrefixes(s, tbl); n != 1 {
		t.Fatalf("AdditionalPrefixes = %d, want 1", n)
	}
	// Widen 31283's tuple: now its three de-aggregates get added too.
	s2 := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 24, 111),
		v("87.254.32.0/19", 21, 31283),
	})
	if n := AdditionalPrefixes(s2, tbl); n != 4 {
		t.Fatalf("AdditionalPrefixes = %d, want 4", n)
	}
}

func TestMinimalizePlusCompressEquivalence(t *testing.T) {
	// End-to-end §7.2 pipeline on the running example: minimalize, compress,
	// verify minimality and semantic equality with the uncompressed minimal.
	tbl := paperTable()
	status := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 24, 111),
		v("87.254.32.0/19", 21, 31283),
	})
	min := Minimalize(status, tbl)
	comp, res := Compress(min, Options{})
	if err := VerifyCompression(min, comp); err != nil {
		t.Fatal(err)
	}
	if ok, w := IsMinimal(comp, tbl); !ok {
		t.Fatalf("compressed not minimal: %v", w)
	}
	if res.Out > res.In {
		t.Fatalf("compression grew: %+v", res)
	}
	// AS 31283's four tuples must compress to two (Figure 2).
	count := 0
	for _, x := range comp.VRPs() {
		if x.AS == 31283 {
			count++
		}
	}
	if count != 2 {
		t.Errorf("AS 31283 compressed to %d tuples, want 2: %v", count, comp.VRPs())
	}
}
