package core

import (
	"sync"

	"repro/internal/rpki"
)

// Mode selects the compression variant.
type Mode int

const (
	// Strict is the default, provably semantics-preserving variant of
	// Algorithm 1: a parent absorbs its children only when both *depth+1*
	// children are present. Every depth level between the parent's length
	// and its new maxLength is then fully covered by the children's own
	// authorizations, so the output authorizes exactly the input's routes.
	Strict Mode = iota

	// Literal is Algorithm 1 exactly as printed in §7.1: a node's "direct
	// children" are the *nearest* present descendants under each branch,
	// however deep. When a direct child sits more than one bit down, raising
	// the parent's maxLength authorizes intermediate-length prefixes that
	// were not in the input. Literal exists for ablation comparison; see the
	// fidelity note in DESIGN.md.
	Literal
)

// Options configures Compress.
type Options struct {
	Mode Mode

	// Subsumption additionally deletes any tuple whose authorizations are
	// entirely covered by a present ancestor tuple (child.maxLength <=
	// ancestor.maxLength). Algorithm 1 only performs this deletion for
	// sibling pairs during merging; the standalone pass is strictly
	// semantics-preserving and yields extra compression on inputs with
	// redundant tuples. Off by default to match the paper.
	Subsumption bool

	// Parallelism compresses that many tries concurrently — the paper's
	// §7.2 suggestion ("Performance could be improved by parallelizing
	// across tries"; tries are per-(AS, family) and fully independent).
	// A fixed pool of exactly min(Parallelism, len(tries)) worker
	// goroutines consumes tries from a channel, so Parallelism bounds both
	// concurrent work and goroutine count. Values < 2 run sequentially.
	// Output is identical either way.
	Parallelism int
}

// Result reports what a compression run did.
type Result struct {
	In, Out   int // tuple counts before and after
	Merged    int // child tuples deleted by parent maxLength absorption
	Subsumed  int // tuples deleted by the optional subsumption pass
	Raised    int // parents whose maxLength was raised
	TrieCount int // number of per-(AS, family) tries processed
}

// SavedFraction returns the compression rate (1 - Out/In), the paper's
// headline metric (15.90% for the 6/1/2017 status quo).
func (r Result) SavedFraction() float64 {
	if r.In == 0 {
		return 0
	}
	return 1 - float64(r.Out)/float64(r.In)
}

// testHookCompress, when non-nil, observes every compressTrie call made by
// Compress: it is invoked with true on entry and false on exit. The
// worker-pool regression test uses it to assert the Parallelism concurrency
// bound; it must never be set outside tests.
var testHookCompress func(entering bool)

// compressOne wraps compressTrie with the test hook.
func compressOne(t *Trie, opts Options) Result {
	if hook := testHookCompress; hook != nil {
		hook(true)
		defer hook(false)
	}
	return compressTrie(t, opts)
}

// Compress is the package's main entry point — the compress_roas utility of
// §7. It rewrites the VRP set into an equivalent set that uses maxLength,
// returning the new set and run statistics. The input set is not modified.
//
// With Options.Mode == Strict (default) the output authorizes exactly the
// same routes as the input: in particular, compressing a minimal ROA set
// yields a minimal ROA set ("This 'compressed' ROA is still minimal", §7).
//
// The whole pipeline is parallel end to end: each worker of the fixed pool
// builds a group's trie, compresses it, extracts its tuples into a per-trie
// run, and releases the trie, so no serial build or extraction phase remains.
// Each run is emitted in canonical order (trie Walk is a pre-order of the key
// space and compression never changes keys), and ByOrigin yields groups in
// canonical Set order, so the runs concatenate into the final Set without the
// O(n log n) re-sort of rpki.NewSet (see rpki.SetFromSortedRuns). Output is
// bit-identical at every Parallelism setting.
func Compress(s *rpki.Set, opts Options) (*rpki.Set, Result) {
	groups := s.ByOrigin()
	res := Result{In: s.Len(), TrieCount: len(groups)}
	results := make([]Result, len(groups))
	runs := make([][]rpki.VRP, len(groups))
	// process handles one group end to end, appending its tuple run to the
	// worker-local arena buf (runs alias the arena; a growth reallocation
	// leaves earlier runs pointing at the old backing array, which stays
	// valid). The three-index slice keeps runs from overlapping later
	// appends.
	process := func(i int, buf []rpki.VRP) []rpki.VRP {
		t := buildGroupTrie(groups[i])
		results[i] = compressOne(t, opts)
		start := len(buf)
		buf = t.Tuples(buf)
		runs[i] = buf[start:len(buf):len(buf)]
		t.Release()
		return buf
	}
	if workers := min(opts.Parallelism, len(groups)); workers > 1 {
		// Fixed worker pool: exactly `workers` goroutines drain the job
		// channel, so a full-deployment snapshot never has more than
		// Parallelism pipeline goroutines in flight.
		arenaCap := s.Len()/workers + 1 // output never exceeds input
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				buf := make([]rpki.VRP, 0, arenaCap)
				for i := range jobs {
					buf = process(i, buf)
				}
			}()
		}
		for i := range groups {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		buf := make([]rpki.VRP, 0, s.Len())
		for i := range groups {
			buf = process(i, buf)
		}
	}
	for _, r := range results {
		res.Merged += r.Merged
		res.Subsumed += r.Subsumed
		res.Raised += r.Raised
	}
	cs := rpki.SetFromSortedRuns(runs)
	res.Out = cs.Len()
	return cs, res
}

// compressTrie runs Algorithm 1 over one trie in place.
//
// "we iterate through the trie using a depth-first search (DFS). As the
// DFS backtracks through the trie we run the compression function." The DFS
// is iterative: a frame is pushed in the descend stage (stage 0), its
// children are queued, and the compression function runs when the frame
// resurfaces with its subtree finished (stage 1).
func compressTrie(t *Trie, opts Options) Result {
	var res Result
	if opts.Subsumption {
		res.Subsumed = subsume(t)
	}
	var scratch []int32
	if opts.Mode == Literal {
		// One BFS queue reused across every nearestPresent call of this trie.
		scratch = make([]int32, 0, 64)
	}
	type frame struct {
		idx   int32
		stage uint8
	}
	stack := make([]frame, 1, 2*maxDepth)
	stack[0] = frame{idx: 0}
	for len(stack) > 0 {
		top := len(stack) - 1
		f := stack[top]
		if f.stage == 0 {
			stack[top].stage = 1
			n := &t.eng.Nodes[f.idx]
			if c := n.Children[1]; c != NoChild {
				stack = append(stack, frame{idx: c})
			}
			if c := n.Children[0]; c != NoChild {
				stack = append(stack, frame{idx: c})
			}
			continue
		}
		stack = stack[:top]
		n := &t.eng.Nodes[f.idx]
		if !n.Val.present {
			continue
		}
		var l, r int32
		switch opts.Mode {
		case Strict:
			l = presentAtDepthPlusOne(t, n.Children[0])
			r = presentAtDepthPlusOne(t, n.Children[1])
		case Literal:
			l = nearestPresent(t, n.Children[0], &scratch)
			r = nearestPresent(t, n.Children[1], &scratch)
		}
		if l < 0 || r < 0 {
			continue // "if node has both direct children" fails
		}
		ln, rn := &t.eng.Nodes[l], &t.eng.Nodes[r]
		minChildVal := ln.Val.value
		if rn.Val.value < minChildVal {
			minChildVal = rn.Val.value
		}
		if minChildVal > n.Val.value {
			// "Adjust parent's maxLength to cover children."
			n.Val.value = minChildVal
			res.Raised++
		}
		if ln.Val.value <= n.Val.value {
			ln.Val.present = false // "left child now covered by father"
			t.size--
			res.Merged++
		}
		if rn.Val.value <= n.Val.value {
			rn.Val.present = false
			t.size--
			res.Merged++
		}
	}
	return res
}

// presentAtDepthPlusOne returns c if it is a present node (c is already the
// depth+1 child index), else -1.
func presentAtDepthPlusOne(t *Trie, c int32) int32 {
	if c != NoChild && t.eng.Nodes[c].Val.present {
		return c
	}
	return -1
}

// nearestPresent returns the shortest-keyed present node in the subtree
// rooted at c — the paper's "direct child" — or -1 when the subtree holds
// none. When both branches of a structural node hold present descendants at
// equal minimal depth there is no unique shortest key; we take the left (0)
// branch's, matching a pre-order scan of the key space.
//
// scratch is a caller-owned BFS queue reused across calls (compressTrie holds
// one per trie); the possibly-grown slice is stored back through the pointer
// so capacity accumulates instead of being reallocated per present node.
func nearestPresent(t *Trie, c int32, scratch *[]int32) int32 {
	if c == NoChild {
		return -1
	}
	// BFS by depth to find the minimal-depth present node; head indexes into
	// the queue rather than re-slicing so the backing array keeps its start.
	queue := append((*scratch)[:0], c)
	found := int32(-1)
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		n := &t.eng.Nodes[i]
		if n.Val.present {
			found = i
			break
		}
		if n.Children[0] != NoChild {
			queue = append(queue, n.Children[0])
		}
		if n.Children[1] != NoChild {
			queue = append(queue, n.Children[1])
		}
	}
	*scratch = queue
	return found
}

// subsume deletes every present node whose maxLength does not exceed the
// largest maxLength among its present ancestors. Sound for any input: the
// ancestor authorizes a superset of the deleted tuple's routes.
func subsume(t *Trie) int {
	removed := 0
	type frame struct {
		idx int32
		g   int16
	}
	stack := make([]frame, 1, maxDepth+1)
	stack[0] = frame{idx: 0, g: -1}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.eng.Nodes[f.idx]
		g := f.g
		if n.Val.present {
			if int16(n.Val.value) <= g {
				n.Val.present = false
				t.size--
				removed++
			} else {
				g = int16(n.Val.value)
			}
		}
		for bit := 0; bit < 2; bit++ {
			if c := n.Children[bit]; c != NoChild {
				stack = append(stack, frame{idx: c, g: g})
			}
		}
	}
	return removed
}
