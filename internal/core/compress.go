package core

import (
	"sync"

	"repro/internal/rpki"
)

// Mode selects the compression variant.
type Mode int

const (
	// Strict is the default, provably semantics-preserving variant of
	// Algorithm 1: a parent absorbs its children only when both *depth+1*
	// children are present. Every depth level between the parent's length
	// and its new maxLength is then fully covered by the children's own
	// authorizations, so the output authorizes exactly the input's routes.
	Strict Mode = iota

	// Literal is Algorithm 1 exactly as printed in §7.1: a node's "direct
	// children" are the *nearest* present descendants under each branch,
	// however deep. When a direct child sits more than one bit down, raising
	// the parent's maxLength authorizes intermediate-length prefixes that
	// were not in the input. Literal exists for ablation comparison; see the
	// fidelity note in DESIGN.md.
	Literal
)

// Options configures Compress.
type Options struct {
	Mode Mode

	// Subsumption additionally deletes any tuple whose authorizations are
	// entirely covered by a present ancestor tuple (child.maxLength <=
	// ancestor.maxLength). Algorithm 1 only performs this deletion for
	// sibling pairs during merging; the standalone pass is strictly
	// semantics-preserving and yields extra compression on inputs with
	// redundant tuples. Off by default to match the paper.
	Subsumption bool

	// Parallelism compresses that many tries concurrently — the paper's
	// §7.2 suggestion ("Performance could be improved by parallelizing
	// across tries"; tries are per-(AS, family) and fully independent).
	// Values < 2 run sequentially. Output is identical either way.
	Parallelism int
}

// Result reports what a compression run did.
type Result struct {
	In, Out   int // tuple counts before and after
	Merged    int // child tuples deleted by parent maxLength absorption
	Subsumed  int // tuples deleted by the optional subsumption pass
	Raised    int // parents whose maxLength was raised
	TrieCount int // number of per-(AS, family) tries processed
}

// SavedFraction returns the compression rate (1 - Out/In), the paper's
// headline metric (15.90% for the 6/1/2017 status quo).
func (r Result) SavedFraction() float64 {
	if r.In == 0 {
		return 0
	}
	return 1 - float64(r.Out)/float64(r.In)
}

// Compress is the package's main entry point — the compress_roas utility of
// §7. It rewrites the VRP set into an equivalent set that uses maxLength,
// returning the new set and run statistics. The input set is not modified.
//
// With Options.Mode == Strict (default) the output authorizes exactly the
// same routes as the input: in particular, compressing a minimal ROA set
// yields a minimal ROA set ("This 'compressed' ROA is still minimal", §7).
func Compress(s *rpki.Set, opts Options) (*rpki.Set, Result) {
	tries := BuildTries(s)
	res := Result{In: s.Len(), TrieCount: len(tries)}
	results := make([]Result, len(tries))
	if opts.Parallelism > 1 && len(tries) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Parallelism)
		for i, t := range tries {
			wg.Add(1)
			go func(i int, t *Trie) {
				defer wg.Done()
				sem <- struct{}{}
				results[i] = compressTrie(t, opts)
				<-sem
			}(i, t)
		}
		wg.Wait()
	} else {
		for i, t := range tries {
			results[i] = compressTrie(t, opts)
		}
	}
	var out []rpki.VRP
	for i, t := range tries {
		res.Merged += results[i].Merged
		res.Subsumed += results[i].Subsumed
		res.Raised += results[i].Raised
		out = t.Tuples(out)
	}
	cs := rpki.NewSet(out)
	res.Out = cs.Len()
	return cs, res
}

// compressTrie runs Algorithm 1 over one trie in place.
func compressTrie(t *Trie, opts Options) Result {
	var res Result
	if opts.Subsumption {
		res.Subsumed = subsume(t)
	}
	// "we iterate through the trie using a depth-first search (DFS). As the
	// DFS backtracks through the trie we run the compression function."
	var dfs func(n *node)
	dfs = func(n *node) {
		if n == nil {
			return
		}
		dfs(n.children[0])
		dfs(n.children[1])
		if !n.present {
			return
		}
		var l, r *node
		switch opts.Mode {
		case Strict:
			l = presentAtDepthPlusOne(n.children[0])
			r = presentAtDepthPlusOne(n.children[1])
		case Literal:
			l = nearestPresent(n.children[0])
			r = nearestPresent(n.children[1])
		}
		if l == nil || r == nil {
			return // "if node has both direct children" fails
		}
		minChildVal := l.value
		if r.value < minChildVal {
			minChildVal = r.value
		}
		if minChildVal > n.value {
			// "Adjust parent's maxLength to cover children."
			n.value = minChildVal
			res.Raised++
		}
		if l.value <= n.value {
			l.present = false // "left child now covered by father"
			t.size--
			res.Merged++
		}
		if r.value <= n.value {
			r.present = false
			t.size--
			res.Merged++
		}
	}
	dfs(t.root)
	return res
}

// presentAtDepthPlusOne returns c if it is a present node (c is already the
// depth+1 child pointer), else nil.
func presentAtDepthPlusOne(c *node) *node {
	if c != nil && c.present {
		return c
	}
	return nil
}

// nearestPresent returns the shortest-keyed present node in the subtree
// rooted at c — the paper's "direct child". When both branches of a
// structural node hold present descendants at equal minimal depth there is
// no unique shortest key; we take the left (0) branch's, matching a
// pre-order scan of the key space.
func nearestPresent(c *node) *node {
	if c == nil {
		return nil
	}
	// BFS by depth to find the minimal-depth present node.
	level := []*node{c}
	for len(level) > 0 {
		var next []*node
		for _, n := range level {
			if n.present {
				return n
			}
			if n.children[0] != nil {
				next = append(next, n.children[0])
			}
			if n.children[1] != nil {
				next = append(next, n.children[1])
			}
		}
		level = next
	}
	return nil
}

// subsume deletes every present node whose maxLength does not exceed the
// largest maxLength among its present ancestors. Sound for any input: the
// ancestor authorizes a superset of the deleted tuple's routes.
func subsume(t *Trie) int {
	removed := 0
	var dfs func(n *node, g int16)
	dfs = func(n *node, g int16) {
		if n == nil {
			return
		}
		if n.present {
			if int16(n.value) <= g {
				n.present = false
				t.size--
				removed++
			} else {
				g = int16(n.value)
			}
		}
		dfs(n.children[0], g)
		dfs(n.children[1], g)
	}
	dfs(t.root, -1)
	return removed
}
