package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func TestSemanticEqualIdentical(t *testing.T) {
	s := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 24, 111),
		v("2001:db8::/32", 48, 111),
	})
	if ok, ce := SemanticEqual(s, s.Clone()); !ok {
		t.Fatalf("set not equal to itself: %v", ce)
	}
}

func TestSemanticEqualSyntacticallyDifferent(t *testing.T) {
	// (p/16-17) == {p/16, p/17 left, p/17 right}.
	a := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 17, 111)})
	b := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 16, 111),
		v("168.122.0.0/17", 17, 111),
		v("168.122.128.0/17", 17, 111),
	})
	if ok, ce := SemanticEqual(a, b); !ok {
		t.Fatalf("equivalent sets reported different: %v", ce)
	}
	// Overlapping redundant tuples change nothing.
	c := b.Clone()
	c.Add(v("168.122.0.0/17", 16, 111)) // invalid? maxLength < len is invalid; use len
	_ = c
	d := b.Clone()
	d.Add(v("168.122.0.0/17", 17, 111)) // duplicate
	if ok, _ := SemanticEqual(a, d); !ok {
		t.Fatal("duplicate tuple broke equality")
	}
}

func TestSemanticEqualCounterexamples(t *testing.T) {
	base := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 16, 111)})

	// B authorizes a deeper route.
	b := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 17, 111)})
	ok, ce := SemanticEqual(base, b)
	if ok || ce == nil {
		t.Fatal("missed extra authorization")
	}
	if ce.AuthorizedA {
		t.Errorf("counterexample direction wrong: %v", ce)
	}
	if ce.Route.Prefix.Len() != 17 || !mp("168.122.0.0/16").Contains(ce.Route.Prefix) {
		t.Errorf("counterexample route %v not a /17 under the /16", ce.Route)
	}
	// The route must genuinely distinguish the sets.
	if trA := BuildTries(base); trA[0].Authorizes(ce.Route.Prefix) {
		t.Error("counterexample authorized by A too")
	}

	// Different AS entirely.
	c := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 16, 112)})
	if ok, ce := SemanticEqual(base, c); ok || ce == nil {
		t.Fatal("different-AS sets reported equal")
	}

	// A authorizes something B does not (direction flip).
	ok, ce = SemanticEqual(b, base)
	if ok || !ce.AuthorizedA {
		t.Errorf("direction flip failed: %v", ce)
	}

	// Missing family group.
	d := base.Clone()
	d.Add(v("2001:db8::/32", 32, 111))
	if ok, ce := SemanticEqual(base, d); ok || ce == nil {
		t.Fatal("missing IPv6 group undetected")
	} else if ce.Route.Prefix.Family() != prefix.IPv6 {
		t.Errorf("counterexample family wrong: %v", ce)
	}
}

func TestSemanticEqualDeepGap(t *testing.T) {
	// Difference buried below a long tuple-free path.
	a := rpki.NewSet([]rpki.VRP{v("10.0.0.0/8", 30, 1)})
	b := rpki.NewSet([]rpki.VRP{v("10.0.0.0/8", 31, 1)})
	ok, ce := SemanticEqual(a, b)
	if ok {
		t.Fatal("deep difference missed")
	}
	if ce.Route.Prefix.Len() != 31 {
		t.Errorf("expected a /31 counterexample, got %v", ce.Route)
	}
	if ce.AuthorizedA {
		t.Error("direction wrong")
	}
}

func TestCounterexampleString(t *testing.T) {
	ce := Counterexample{Route: v("10.0.0.0/8", 8, 1), AuthorizedA: true}
	if !strings.Contains(ce.String(), "only by A") {
		t.Errorf("String = %q", ce.String())
	}
	ce.AuthorizedA = false
	if !strings.Contains(ce.String(), "only by B") {
		t.Errorf("String = %q", ce.String())
	}
}

// TestSemanticEqualAgainstBruteForce cross-checks the trie walker against
// explicit enumeration over a small universe.
func TestSemanticEqualAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	enumerate := func(s *rpki.Set) map[rpki.VRP]bool {
		out := make(map[rpki.VRP]bool)
		var rec func(q prefix.Prefix)
		rec = func(q prefix.Prefix) {
			for _, x := range s.VRPs() {
				if x.Matches(q, x.AS) {
					out[rpki.VRP{Prefix: q, MaxLength: q.Len(), AS: x.AS}] = true
				}
			}
			if q.Len() < 10 {
				rec(q.Child(0))
				rec(q.Child(1))
			}
		}
		rec(mp("0.0.0.0/0"))
		return out
	}
	equalMaps := func(a, b map[rpki.VRP]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 150; trial++ {
		mk := func() *rpki.Set {
			var vrps []rpki.VRP
			for i := 0; i < 1+rng.Intn(5); i++ {
				l := uint8(rng.Intn(8))
				p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
				ml := l + uint8(rng.Intn(int(10-l)+1))
				vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(rng.Intn(2))})
			}
			return rpki.NewSet(vrps)
		}
		a, b := mk(), mk()
		wantEq := equalMaps(enumerate(a), enumerate(b))
		gotEq, ce := SemanticEqual(a, b)
		if gotEq != wantEq {
			t.Fatalf("trial %d: SemanticEqual = %v, brute force = %v\na: %v\nb: %v\nce: %v",
				trial, gotEq, wantEq, a.VRPs(), b.VRPs(), ce)
		}
		if !gotEq {
			// The counterexample must be real: authorized by exactly one side.
			authBy := func(s *rpki.Set) bool {
				for _, x := range s.VRPs() {
					if x.Matches(ce.Route.Prefix, ce.Route.AS) {
						return true
					}
				}
				return false
			}
			inA, inB := authBy(a), authBy(b)
			if inA == inB || inA != ce.AuthorizedA {
				t.Fatalf("trial %d: bogus counterexample %v (inA=%v inB=%v)", trial, ce, inA, inB)
			}
		}
	}
}
