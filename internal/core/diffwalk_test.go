package core

import (
	"testing"

	"repro/internal/prefix"
)

func dwp(t *testing.T, s string) prefix.Prefix {
	t.Helper()
	return prefix.MustParse(s)
}

func v4Root(t *testing.T) prefix.Prefix {
	t.Helper()
	p, err := prefix.Make(prefix.IPv4, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSharedArena(t *testing.T) {
	var a, b Engine[int]
	if a.SharedArena(&b) {
		t.Fatal("zero engines must not share an arena")
	}
	a.Init(4, 0, nil)
	b.Init(4, 0, nil)
	if !a.SharedArena(&a) {
		t.Fatal("engine must share an arena with itself")
	}
	if a.SharedArena(&b) {
		t.Fatal("independent Init calls must not share an arena")
	}
	// A struct copy is a snapshot of the same history: it shares.
	snap := a
	a.Alloc(1)
	if !snap.SharedArena(&a) {
		t.Fatal("value-copied snapshot must share its origin's arena")
	}
	// Re-Init starts a new history even if the pool recycles the slab.
	pool := NewSlabPool[int](2, 1<<16)
	var c Engine[int]
	c.Init(4, 0, pool)
	c.Release(pool)
	var d Engine[int]
	d.Init(4, 0, pool)
	var e Engine[int]
	e.Init(4, 0, pool)
	if d.SharedArena(&e) {
		t.Fatal("recycled slab must not inherit the old lineage")
	}
}

// pathCopyInsert emulates the rov.LiveIndex persistent update: clone every
// node along p's path (allocating the missing ones) onto the slab tail and
// return the new root and terminal. Nothing reachable from root is written.
func pathCopyInsert(e *Engine[int], root int32, p prefix.Prefix) (newRoot, term int32) {
	cur := e.Clone(root)
	newRoot = cur
	for depth := uint8(0); depth < p.Len(); depth++ {
		bit := p.Bit(depth)
		var next int32
		if c := e.Nodes[cur].Children[bit]; c != NoChild {
			next = e.Clone(c)
		} else {
			next = e.Alloc(0)
		}
		e.Nodes[cur].Children[bit] = next
		cur = next
	}
	return newRoot, cur
}

type dualVisit struct {
	a, b int32
	p    prefix.Prefix
}

func collectDiffWalk(ea, eb *Engine[int], ra, rb int32, at prefix.Prefix) []dualVisit {
	var out []dualVisit
	DiffWalk(ea, eb, ra, rb, at, func(ai, bi int32, p prefix.Prefix) {
		out = append(out, dualVisit{a: ai, b: bi, p: p})
	})
	return out
}

func TestDiffWalkSharedArenaVisitsOnlyCopiedPaths(t *testing.T) {
	var e Engine[int]
	e.Init(0, 0, nil)
	base := []string{"10.0.0.0/8", "10.32.0.0/11", "192.168.0.0/16", "203.0.113.0/24"}
	for _, s := range base {
		e.PathInsert(0, dwp(t, s), 0)
	}
	snap := e // snapshot of the pre-update tree, same lineage
	ins := dwp(t, "10.64.0.0/10")
	newRoot, term := pathCopyInsert(&e, 0, ins)

	visits := collectDiffWalk(&snap, &e, 0, newRoot, v4Root(t))
	// Only the copied path differs: exactly the ancestors of the inserted
	// prefix (root included), in canonical order — not the whole table.
	if want := int(ins.Len()) + 1; len(visits) != want {
		t.Fatalf("visited %d node pairs, want %d (the copied path)", len(visits), want)
	}
	for i, v := range visits {
		if uint8(i) != v.p.Len() || !v.p.Contains(ins) {
			t.Fatalf("visit %d at %v: not an ancestor walk of %v", i, v.p, ins)
		}
	}
	last := visits[len(visits)-1]
	if last.p != ins || last.b != term {
		t.Fatalf("terminal visit %+v, want prefix %v node %d", last, ins, term)
	}
	if last.a != -1 {
		t.Fatalf("inserted terminal should be absent on the old side, got %d", last.a)
	}

	// Identical roots on a shared arena: nothing to visit at all.
	if got := collectDiffWalk(&e, &e, newRoot, newRoot, v4Root(t)); len(got) != 0 {
		t.Fatalf("identical shared roots visited %d pairs, want 0", len(got))
	}
}

func TestDiffWalkIndependentArenasFullUnion(t *testing.T) {
	var a, b Engine[int]
	a.Init(0, 0, nil)
	b.Init(0, 0, nil)
	onlyA := dwp(t, "10.0.0.0/8")
	onlyB := dwp(t, "11.0.0.0/8")
	both := dwp(t, "192.0.2.0/24")
	a.PathInsert(0, onlyA, 0)
	a.PathInsert(0, both, 0)
	b.PathInsert(0, onlyB, 0)
	b.PathInsert(0, both, 0)

	seen := make(map[prefix.Prefix]dualVisit)
	var order []prefix.Prefix
	DiffWalk(&a, &b, 0, 0, v4Root(t), func(ai, bi int32, p prefix.Prefix) {
		seen[p] = dualVisit{a: ai, b: bi, p: p}
		order = append(order, p)
	})
	// Every node of either tree is visited (no skippable sharing exists),
	// with -1 marking the absent side.
	va, ok := seen[onlyA]
	if !ok || va.a < 0 || va.b != -1 {
		t.Fatalf("prefix only in A: visit %+v, ok=%v", va, ok)
	}
	vb, ok := seen[onlyB]
	if !ok || vb.b < 0 || vb.a != -1 {
		t.Fatalf("prefix only in B: visit %+v, ok=%v", vb, ok)
	}
	vboth, ok := seen[both]
	if !ok || vboth.a < 0 || vboth.b < 0 {
		t.Fatalf("prefix in both: visit %+v, ok=%v", vboth, ok)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1].Compare(order[i]) >= 0 {
			t.Fatalf("visits out of canonical order: %v before %v", order[i-1], order[i])
		}
	}
}
