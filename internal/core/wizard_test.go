package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rpki"
)

func TestSuggestMinimalROA(t *testing.T) {
	tbl := paperTable()
	s, ok := Suggest(31283, tbl)
	if !ok {
		t.Fatal("AS 31283 announces prefixes")
	}
	if len(s.Minimal.Prefixes) != 4 {
		t.Fatalf("minimal = %v", s.Minimal.Prefixes)
	}
	for _, e := range s.Minimal.Prefixes {
		if e.UsesMaxLength() {
			t.Errorf("suggested entry %v uses maxLength", e)
		}
	}
	// The compressed alternative is Figure 2's 2-entry form.
	if len(s.Compressed.Prefixes) != 2 {
		t.Fatalf("compressed = %v", s.Compressed.Prefixes)
	}
	// Both forms must be minimal w.r.t. the table.
	for _, roa := range []rpki.ROA{s.Minimal, s.Compressed} {
		if ok, w := IsMinimal(rpki.SetFromROAs([]rpki.ROA{roa}), tbl); !ok {
			t.Errorf("suggestion not minimal: witness %v", w)
		}
	}
	if _, ok := Suggest(9999, tbl); ok {
		t.Error("suggestion for a silent AS")
	}
}

func TestSuggestSemanticEquivalence(t *testing.T) {
	tbl := paperTable()
	s, _ := Suggest(31283, tbl)
	a := rpki.SetFromROAs([]rpki.ROA{s.Minimal})
	b := rpki.SetFromROAs([]rpki.ROA{s.Compressed})
	if ok, ce := SemanticEqual(a, b); !ok {
		t.Fatalf("compressed suggestion differs: %v", ce)
	}
}

func TestAuditVulnerableEntry(t *testing.T) {
	tbl := paperTable()
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 24}, // the §4 misconfiguration
	}}
	fs := Audit(roa, tbl)
	if len(fs) != 1 {
		t.Fatalf("findings = %+v", fs)
	}
	f := fs[0]
	if f.Kind != VulnerableEntry {
		t.Fatalf("kind = %v", f.Kind)
	}
	if !strings.Contains(f.Detail, "forged-origin") {
		t.Errorf("detail = %q", f.Detail)
	}
	if !mp("168.122.0.0/16").Contains(f.Prefix) || tbl.Contains(f.Prefix, 111) {
		t.Errorf("witness prefix %v wrong", f.Prefix)
	}
}

func TestAuditStaleAndMissing(t *testing.T) {
	tbl := paperTable()
	roa := rpki.ROA{AS: 111, Prefixes: []rpki.ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 16}, // fine
		{Prefix: mp("203.0.113.0/24"), MaxLength: 24}, // stale: never announced
		// 168.122.225.0/24 is announced but missing from the ROA.
	}}
	fs := Audit(roa, tbl)
	if len(fs) != 2 {
		t.Fatalf("findings = %+v", fs)
	}
	// Order: missing (worse) before stale.
	if fs[0].Kind != MissingPrefix || fs[1].Kind != StaleEntry {
		t.Fatalf("ordering = %v, %v", fs[0].Kind, fs[1].Kind)
	}
	if fs[0].Prefix != mp("168.122.225.0/24") {
		t.Errorf("missing prefix = %v", fs[0].Prefix)
	}
	if fs[1].Entry.Prefix != mp("203.0.113.0/24") {
		t.Errorf("stale entry = %v", fs[1].Entry)
	}
}

func TestAuditCleanROA(t *testing.T) {
	tbl := paperTable()
	s, _ := Suggest(111, tbl)
	if fs := Audit(s.Minimal, tbl); len(fs) != 0 {
		t.Fatalf("clean ROA produced findings: %+v", fs)
	}
	// The compressed suggestion audits clean too.
	if fs := Audit(s.Compressed, tbl); len(fs) != 0 {
		t.Fatalf("compressed suggestion produced findings: %+v", fs)
	}
}

func TestFindingKindString(t *testing.T) {
	for _, k := range []FindingKind{VulnerableEntry, StaleEntry, MissingPrefix} {
		if strings.HasPrefix(k.String(), "FindingKind(") {
			t.Errorf("missing name for %v", int(k))
		}
	}
	if !strings.Contains(FindingKind(7).String(), "7") {
		t.Error("unknown kind")
	}
}

func TestRenderSuggestion(t *testing.T) {
	tbl := paperTable()
	s, _ := Suggest(31283, tbl)
	var buf bytes.Buffer
	if err := RenderSuggestion(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AS31283", "87.254.32.0/19-20", "WARNING", "4 -> 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// An AS without compressible structure renders without the compressed
	// section.
	s2, _ := Suggest(111, tbl)
	buf.Reset()
	if err := RenderSuggestion(&buf, s2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "compressed form") {
		t.Errorf("unexpected compressed section:\n%s", buf.String())
	}
}
