package core

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/rpki"
)

func TestAnalyzeVulnerabilitiesRunningExample(t *testing.T) {
	tbl := paperTable()
	// §4: the non-minimal ROA (168.122.0.0/16-24, AS 111) is vulnerable; the
	// minimal tuples are not.
	s := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/16", 24, 111),   // vulnerable
		v("87.254.32.0/19", 19, 31283), // no maxLength use
	})
	rep := AnalyzeVulnerabilities(s, tbl, true)
	if rep.Tuples != 2 || rep.UsingMaxLength != 1 || rep.Vulnerable != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := rep.VulnerableShare(); got != 1.0 {
		t.Errorf("VulnerableShare = %v", got)
	}
	if got := rep.MaxLengthShare(); got != 0.5 {
		t.Errorf("MaxLengthShare = %v", got)
	}
	if len(rep.Vulnerabilities) != 1 {
		t.Fatalf("no vulnerability collected")
	}
	vu := rep.Vulnerabilities[0]
	if vu.VRP != v("168.122.0.0/16", 24, 111) {
		t.Errorf("vulnerable tuple = %v", vu.VRP)
	}
	// The witness is a forged-origin hijack target: authorized, unannounced.
	if tbl.Contains(vu.Witness.Prefix, 111) {
		t.Errorf("witness %v is announced", vu.Witness)
	}
	if !vu.VRP.Matches(vu.Witness.Prefix, 111) {
		t.Errorf("witness %v not authorized by the tuple", vu.Witness)
	}
	// Authorized routes: /16 up to /24 = 2^9-1 = 511. Announced: 2.
	if vu.UnannouncedRoutes != 511-2 {
		t.Errorf("UnannouncedRoutes = %d, want 509", vu.UnannouncedRoutes)
	}
	// The hijack is effective: 168.122.0.0/24 (say) has no announced cover
	// longer than the /16.
	if !vu.Effective || rep.Effective != 1 {
		t.Error("hijack should be effective")
	}
}

func TestAnalyzeMinimalMaxLengthTupleNotVulnerable(t *testing.T) {
	// A maxLength-using tuple whose whole expansion is announced is minimal
	// and therefore safe (§4: "unless every subprefix ... is announced").
	tbl := bgp.NewTable([]bgp.Route{
		{Prefix: mp("10.0.0.0/8"), Origin: 1},
		{Prefix: mp("10.0.0.0/9"), Origin: 1},
		{Prefix: mp("10.128.0.0/9"), Origin: 1},
	})
	s := rpki.NewSet([]rpki.VRP{v("10.0.0.0/8", 9, 1)})
	rep := AnalyzeVulnerabilities(s, tbl, true)
	if rep.UsingMaxLength != 1 || rep.Vulnerable != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestHijackEffectiveness(t *testing.T) {
	// AS 1 announces 10.0.0.0/8 plus BOTH /9s; a hijack on a /9 is
	// ineffective (exact-length announcements carry the traffic), but a /10
	// hijack wins.
	tbl := bgp.NewTable([]bgp.Route{
		{Prefix: mp("10.0.0.0/8"), Origin: 1},
		{Prefix: mp("10.0.0.0/9"), Origin: 1},
		{Prefix: mp("10.128.0.0/9"), Origin: 1},
	})
	if hijackEffective(mp("10.0.0.0/9"), tbl) {
		t.Error("/9 hijack should be ineffective: the /9 itself is announced")
	}
	if !hijackEffective(mp("10.0.0.0/10"), tbl) {
		t.Error("/10 hijack should be effective: nothing longer covers it")
	}
	// Full tiling by longer prefixes also blocks the hijack.
	tiled := bgp.NewTable([]bgp.Route{
		{Prefix: mp("10.0.0.0/9"), Origin: 1},
		{Prefix: mp("10.128.0.0/9"), Origin: 2},
	})
	if hijackEffective(mp("10.0.0.0/8"), tiled) {
		t.Error("/8 hijack ineffective when both /9s are announced")
	}
	partial := bgp.NewTable([]bgp.Route{
		{Prefix: mp("10.0.0.0/9"), Origin: 1},
	})
	if !hijackEffective(mp("10.0.0.0/8"), partial) {
		t.Error("/8 hijack effective when half the space is uncovered")
	}
}

func TestVulnerableAddressSpace(t *testing.T) {
	tbl := paperTable()
	s := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 24, 111)})
	exp := VulnerableAddressSpace(s, tbl)
	// 256 /24s authorized at the deepest level; 1 announced (168.122.225.0/24)
	// => 255 * 256 addresses exposed.
	want := uint64(255 * 256)
	if exp[111] != want {
		t.Fatalf("exposure = %d, want %d", exp[111], want)
	}
	// No maxLength use => no exposure.
	s2 := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 16, 111)})
	if got := VulnerableAddressSpace(s2, tbl); len(got) != 0 {
		t.Errorf("exposure for minimal tuple: %v", got)
	}
}

func TestAnalyzeCollectFlag(t *testing.T) {
	tbl := paperTable()
	s := rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 24, 111)})
	rep := AnalyzeVulnerabilities(s, tbl, false)
	if rep.Vulnerable != 1 || rep.Vulnerabilities != nil {
		t.Fatalf("collect=false should keep counters but no details: %+v", rep)
	}
}

func TestReportSharesEmpty(t *testing.T) {
	var rep Report
	if rep.VulnerableShare() != 0 || rep.MaxLengthShare() != 0 {
		t.Error("empty report shares must be 0")
	}
}
