package core

import (
	"math/rand"
	"testing"

	"repro/internal/prefix"
)

// findCompact descends from the root matching full node keys, returning the
// node whose key is exactly p, or NoChild-1 (-1) when absent.
func findCompact(e *CompactEngine[bool], p prefix.Prefix) int32 {
	hi, lo := p.Bits()
	idx := int32(0)
	for {
		n := &e.Nodes[idx]
		if n.PLen > p.Len() {
			return -1
		}
		nk, err := prefix.Make(p.Family(), n.Hi, n.Lo, n.PLen)
		if err != nil {
			return -1
		}
		if !nk.Contains(p) {
			return -1
		}
		if n.PLen == p.Len() {
			return idx
		}
		c := n.Children[AddrBit(hi, lo, n.PLen)]
		if c == NoChild {
			return -1
		}
		idx = c
	}
}

func TestCompactBuilderHandCases(t *testing.T) {
	keys := []string{
		"10.0.0.0/8",     // plain insert under root
		"10.0.0.0/16",    // extension of the previous key (d == prev.Len)
		"10.0.128.0/17",  // deeper extension
		"10.64.0.0/16",   // splice: diverges mid-edge at /9 inside 10.0/16→...
		"11.0.0.0/8",     // splice higher up
		"11.0.0.0/8",     // duplicate: must return the same node
		"192.168.0.0/16", // far-away sibling
	}
	var e CompactEngine[bool]
	var b CompactBuilder[bool]
	b.Reset(&e, len(keys), prefix.IPv4, false)
	idx := map[string]int32{}
	for _, s := range keys {
		n := b.Add(prefix.MustParse(s), false)
		e.Nodes[n].Val = true
		if old, ok := idx[s]; ok && old != n {
			t.Fatalf("duplicate Add(%s) returned %d, first returned %d", s, n, old)
		}
		idx[s] = n
	}
	for s, want := range idx {
		if got := findCompact(&e, prefix.MustParse(s)); got != want {
			t.Fatalf("findCompact(%s) = %d, want %d", s, got, want)
		}
	}
	// The 10.0/16 vs 10.64/16 divergence is at /9: a branch node must exist
	// there, and it must not carry a payload.
	br := findCompact(&e, prefix.MustParse("10.0.0.0/9"))
	if br < 0 {
		t.Fatalf("expected a spliced branch node at 10.0.0.0/9")
	}
	if e.Nodes[br].Val {
		t.Fatalf("branch node at /9 carries a payload")
	}
	if e.Nodes[br].Children[0] == NoChild || e.Nodes[br].Children[1] == NoChild {
		t.Fatalf("branch node at /9 is not binary: %v", e.Nodes[br].Children)
	}
}

func TestCompactBuilderOutOfOrderPanics(t *testing.T) {
	var e CompactEngine[bool]
	var b CompactBuilder[bool]
	b.Reset(&e, 4, prefix.IPv4, false)
	b.Add(prefix.MustParse("10.0.0.0/8"), false)
	defer func() {
		if recover() == nil {
			t.Fatalf("Add of an out-of-order key did not panic")
		}
	}()
	b.Add(prefix.MustParse("9.0.0.0/8"), false)
}

// TestCompactBuilderRandom builds compact tries from sorted random keys of
// both families and checks the structural invariants: every key resolves to
// its node, every non-root node strictly extends its parent, interior nodes
// without payloads branch, and Walk visits in canonical order.
func TestCompactBuilderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		fam := prefix.IPv4
		if trial%2 == 1 {
			fam = prefix.IPv6
		}
		n := 1 + rng.Intn(200)
		keys := make([]prefix.Prefix, 0, n)
		for i := 0; i < n; i++ {
			var l uint8
			var hi, lo uint64
			if fam == prefix.IPv4 {
				l = uint8(rng.Intn(33))
				hi = uint64(rng.Uint32()) << 32
			} else {
				l = uint8(rng.Intn(65)) // cap at /64 like the fuzz harness
				hi = rng.Uint64()
			}
			p, err := prefix.Make(fam, hi, lo, l)
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, p)
		}
		prefix.Sort(keys)

		var e CompactEngine[bool]
		var b CompactBuilder[bool]
		b.Reset(&e, len(keys), fam, false)
		for _, p := range keys {
			e.Nodes[b.Add(p, false)].Val = true
		}
		for _, p := range keys {
			idx := findCompact(&e, p)
			if idx < 0 {
				t.Fatalf("trial %d: key %s not found after build", trial, p)
			}
			if !e.Nodes[idx].Val {
				t.Fatalf("trial %d: key %s resolved to an unmarked node", trial, p)
			}
		}
		// Structural invariants over the whole slab, via Walk with an
		// explicit parent map.
		parent := make(map[int32]int32, e.Len())
		seen := 0
		last := prefix.Prefix{}
		first := true
		e.Walk(0, func(idx int32) {
			seen++
			nd := &e.Nodes[idx]
			k, err := prefix.Make(fam, nd.Hi, nd.Lo, nd.PLen)
			if err != nil {
				t.Fatalf("trial %d: node %d has invalid key: %v", trial, idx, err)
			}
			if !first && k.Compare(last) <= 0 {
				t.Fatalf("trial %d: Walk out of order: %s after %s", trial, k, last)
			}
			first, last = false, k
			if idx != 0 {
				pi, ok := parent[idx]
				if !ok {
					t.Fatalf("trial %d: node %d reached without a parent", trial, idx)
				}
				pd := &e.Nodes[pi]
				pk, _ := prefix.Make(fam, pd.Hi, pd.Lo, pd.PLen)
				if pk.Len() >= k.Len() || !pk.Contains(k) {
					t.Fatalf("trial %d: node %s does not extend parent %s", trial, k, pk)
				}
				if !nd.Val && (nd.Children[0] == NoChild || nd.Children[1] == NoChild) {
					t.Fatalf("trial %d: payload-free interior node %s is not a branch point", trial, k)
				}
			}
			for bit := 0; bit < 2; bit++ {
				if c := nd.Children[bit]; c != NoChild {
					parent[c] = idx
				}
			}
		})
		if seen != e.Len() {
			t.Fatalf("trial %d: Walk visited %d of %d nodes", trial, seen, e.Len())
		}
	}
}
