package core

import (
	"repro/internal/bgp"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file implements the minimal-ROA machinery of §3 and §6–§7: a ROA (or
// VRP set) is *minimal* when it authorizes exactly the routes its origin
// announces in BGP (RFC 6907 §3.2). The paper's hardening proposal replaces
// every ROA with its minimal, maxLength-free equivalent; Compress then wins
// back most of the PDU inflation that causes.

// Minimalize converts the VRP set into the minimal, maxLength-free set with
// respect to the BGP table: for every tuple, the (prefix, origin) routes it
// authorizes that are actually announced, each emitted with maxLength equal
// to its prefix length. Tuples authorizing nothing that is announced vanish
// (their ROA would become empty). This is the conversion behind Table 1's
// "minimal ROAs, no maxLength" rows.
func Minimalize(s *rpki.Set, table *bgp.Table) *rpki.Set {
	var out []rpki.VRP
	for _, v := range s.VRPs() {
		as := v.AS
		table.WalkAnnouncedUnder(as, v.Prefix, v.MaxLength, func(q prefix.Prefix) {
			out = append(out, rpki.VRP{Prefix: q, MaxLength: q.Len(), AS: as})
		})
	}
	return rpki.NewSet(out)
}

// FullDeploymentMinimal returns the minimal, maxLength-free VRP set of a
// fully deployed RPKI: one tuple per announced (prefix, origin) pair ("we
// assume every IP prefix announced in our BGP dataset is validated by a
// minimal ROA that does not use maxLength", §7.2).
func FullDeploymentMinimal(table *bgp.Table) *rpki.Set {
	routes := table.Routes()
	out := make([]rpki.VRP, 0, len(routes))
	for _, r := range routes {
		out = append(out, rpki.VRP{Prefix: r.Prefix, MaxLength: r.Prefix.Len(), AS: r.Origin})
	}
	return rpki.NewSet(out)
}

// FullDeploymentLowerBound returns the §6 lower bound on PDUs under full
// deployment: one maximally-permissive tuple per announced pair, with pairs
// subsumed by a same-origin covering announcement dropped. Only the
// *count* is meaningful — the set is wildly non-minimal and vulnerable.
func FullDeploymentLowerBound(table *bgp.Table) *rpki.Set {
	return FullDeploymentMinimal(table).MaxPermissive()
}

// AdditionalPrefixes counts the (prefix, origin) pairs a minimal conversion
// must add relative to the tuples already present: pairs that are announced
// in BGP and covered (authorized) by the set, but whose exact (prefix,
// maxLength=len, AS) tuple is not already listed. This is the paper's "13K
// additional prefixes would need to be added" measurement (§6).
func AdditionalPrefixes(s *rpki.Set, table *bgp.Table) int {
	existing := make(map[rpki.VRP]struct{}, s.Len())
	for _, v := range s.VRPs() {
		existing[rpki.VRP{Prefix: v.Prefix, MaxLength: v.Prefix.Len(), AS: v.AS}] = struct{}{}
	}
	minimal := Minimalize(s, table)
	n := 0
	for _, v := range minimal.VRPs() {
		if _, ok := existing[v]; !ok {
			n++
		}
	}
	return n
}

// IsMinimal reports whether the set is minimal w.r.t. the table: every
// authorized route is announced (the converse — every announced route
// authorized — is deployment coverage, not minimality). It returns a
// witness route that is authorized but unannounced when not minimal.
func IsMinimal(s *rpki.Set, table *bgp.Table) (bool, *rpki.VRP) {
	tries := BuildTries(s)
	defer ReleaseTries(tries)
	for _, t := range tries {
		var witness *rpki.VRP
		as := t.AS()
		t.Walk(func(p prefix.Prefix, maxLength uint8) {
			if witness != nil {
				return
			}
			// Fast path: compare announced count under (p, maxLength) with
			// the full expansion size; equality means every authorized
			// subprefix is announced.
			want := p.NumSubprefixesUpTo(maxLength)
			got := uint64(table.WalkAnnouncedUnder(as, p, maxLength, nil))
			if got >= want {
				return
			}
			// Locate a concrete unannounced authorized prefix by descending
			// toward a deficit: at each level at least one child subtree
			// misses announcements, so the search is O(maxLength) probes.
			q := p
			for {
				if !table.Contains(q, as) {
					w := rpki.VRP{Prefix: q, MaxLength: q.Len(), AS: as}
					witness = &w
					return
				}
				if q.Len() >= maxLength {
					return // fully announced on this path (cannot happen given the deficit)
				}
				descended := false
				for bit := uint8(0); bit < 2; bit++ {
					c := q.Child(bit)
					if uint64(table.WalkAnnouncedUnder(as, c, maxLength, nil)) < c.NumSubprefixesUpTo(maxLength) {
						q = c
						descended = true
						break
					}
				}
				if !descended {
					return // deficit vanished; treat as minimal on this path
				}
			}
		})
		if witness != nil {
			return false, witness
		}
	}
	return true, nil
}
