package core

import (
	"math/rand"
	"testing"

	"repro/internal/rpki"
)

// Trie-engine micro-benchmarks. All report allocations so the arena engine's
// build cost stays visible: building a trie must cost O(slab growths), not
// one heap node per prefix bit, and a Compress loop in steady state recycles
// released slabs instead of reallocating them.

// benchVRPs returns roughly n VRPs (across the three origin ASes randomSet
// draws from) with mergeable sibling structure, deterministic across runs.
func benchVRPs(n int) []rpki.VRP {
	rng := rand.New(rand.NewSource(42))
	set := randomSet(rng, n)
	return set.VRPs()
}

func BenchmarkTrieInsert(b *testing.B) {
	vrps := benchVRPs(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTrie(0, vrps[0].Prefix.Family())
		for _, v := range vrps {
			tr.Insert(v.Prefix, v.MaxLength)
		}
		tr.Release()
	}
}

func BenchmarkBuildTries(b *testing.B) {
	s := rpki.NewSet(benchVRPs(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReleaseTries(BuildTries(s))
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	vrps := benchVRPs(1000)
	tr := NewTrie(0, vrps[0].Prefix.Family())
	for _, v := range vrps {
		tr.Insert(v.Prefix, v.MaxLength)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vrps[i%len(vrps)]
		tr.Lookup(v.Prefix)
		tr.Authorizes(v.Prefix)
	}
}

func BenchmarkTrieTuples(b *testing.B) {
	vrps := benchVRPs(1000)
	tr := NewTrie(0, vrps[0].Prefix.Family())
	for _, v := range vrps {
		tr.Insert(v.Prefix, v.MaxLength)
	}
	dst := make([]rpki.VRP, 0, tr.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Tuples(dst[:0])
	}
}

func BenchmarkTrieCountAuthorized(b *testing.B) {
	vrps := benchVRPs(1000)
	tr := NewTrie(0, vrps[0].Prefix.Family())
	for _, v := range vrps {
		tr.Insert(v.Prefix, v.MaxLength)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountAuthorized()
	}
}

func BenchmarkCompressStrict(b *testing.B) {
	s := rpki.NewSet(benchVRPs(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(s, Options{})
	}
}

func BenchmarkCompressSubsumption(b *testing.B) {
	s := rpki.NewSet(benchVRPs(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(s, Options{Subsumption: true})
	}
}

func BenchmarkSemanticEqual(b *testing.B) {
	s := rpki.NewSet(benchVRPs(2000))
	out, _ := Compress(s, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, ce := SemanticEqual(s, out); !ok {
			b.Fatal(ce)
		}
	}
}
