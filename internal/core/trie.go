// Package core implements the paper's primary contribution: the binary
// prefix trie of Figure 2 and the compress_roas algorithm (Algorithm 1) that
// rewrites a set of VRP tuples into a smaller, semantically identical set
// that uses the maxLength attribute — without ever authorizing a route the
// input did not authorize. The package also implements the analyses the
// paper builds on that algorithm: minimal-ROA conversion (§6, §7.2),
// forged-origin subprefix hijack vulnerability detection (§4, §6), and an
// exact semantic-equivalence verifier used to prove compression safe.
package core

import (
	"fmt"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// node is one vertex of the binary prefix trie. Structural nodes exist only
// to connect present nodes; a present node corresponds to a (prefix,
// maxLength) tuple ("Each trie node corresponds to some (AS, prefix,
// maxLength)-tuple", §7.1).
type node struct {
	children [2]*node
	pfx      prefix.Prefix
	value    uint8 // maxLength; meaningful only when present
	present  bool
}

// Trie is the per-(origin AS, address family) prefix tree of §7.1. The trie
// key of a node is the bit string of its prefix; node values are maxLengths.
type Trie struct {
	root *node
	fam  prefix.Family
	as   rpki.ASN
	size int // number of present nodes
}

// NewTrie returns an empty trie for one origin AS and family.
func NewTrie(as rpki.ASN, fam prefix.Family) *Trie {
	rootPfx, err := prefix.Make(fam, 0, 0, 0)
	if err != nil {
		panic(err) // fam is validated by Make; unreachable for IPv4/IPv6
	}
	return &Trie{root: &node{pfx: rootPfx}, fam: fam, as: as}
}

// AS returns the origin AS the trie belongs to.
func (t *Trie) AS() rpki.ASN { return t.as }

// Family returns the trie's address family.
func (t *Trie) Family() prefix.Family { return t.fam }

// Size returns the number of tuples (present nodes) in the trie.
func (t *Trie) Size() int { return t.size }

// Insert adds the tuple (p, maxLength). Inserting a prefix twice keeps the
// larger maxLength, since the union of the two tuples' authorizations equals
// the more permissive one. Insert panics on family mismatch or an invalid
// maxLength, which indicate a bug in the caller (Set inputs are validated).
func (t *Trie) Insert(p prefix.Prefix, maxLength uint8) {
	if p.Family() != t.fam {
		panic(fmt.Sprintf("core: inserting %s into %s trie", p, t.fam))
	}
	if maxLength < p.Len() || maxLength > p.MaxLen() {
		panic(fmt.Sprintf("core: maxLength %d invalid for %s", maxLength, p))
	}
	n := t.root
	for depth := uint8(0); depth < p.Len(); depth++ {
		bit := p.Bit(depth)
		if n.children[bit] == nil {
			n.children[bit] = &node{pfx: n.pfx.Child(bit)}
		}
		n = n.children[bit]
	}
	if !n.present {
		n.present = true
		n.value = maxLength
		t.size++
		return
	}
	if maxLength > n.value {
		n.value = maxLength
	}
}

// InsertVRP adds a VRP tuple; the VRP's AS must match the trie's.
func (t *Trie) InsertVRP(v rpki.VRP) {
	if v.AS != t.as {
		panic(fmt.Sprintf("core: inserting %s into trie for %s", v, t.as))
	}
	t.Insert(v.Prefix, v.MaxLength)
}

// Tuples appends the trie's present tuples to dst in canonical prefix order
// and returns the extended slice.
func (t *Trie) Tuples(dst []rpki.VRP) []rpki.VRP {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if n.present {
			dst = append(dst, rpki.VRP{Prefix: n.pfx, MaxLength: n.value, AS: t.as})
		}
		rec(n.children[0])
		rec(n.children[1])
	}
	rec(t.root)
	return dst
}

// Lookup returns the maxLength stored at exactly p, if present.
func (t *Trie) Lookup(p prefix.Prefix) (uint8, bool) {
	n := t.root
	for depth := uint8(0); depth < p.Len(); depth++ {
		n = n.children[p.Bit(depth)]
		if n == nil {
			return 0, false
		}
	}
	if !n.present {
		return 0, false
	}
	return n.value, true
}

// Authorizes reports whether the trie's tuples authorize the route (q, AS):
// some present ancestor-or-self of q has maxLength >= q.Len().
func (t *Trie) Authorizes(q prefix.Prefix) bool {
	if q.Family() != t.fam {
		return false
	}
	n := t.root
	for depth := uint8(0); ; depth++ {
		if n.present && n.value >= q.Len() {
			return true
		}
		if depth >= q.Len() {
			return false
		}
		n = n.children[q.Bit(depth)]
		if n == nil {
			return false
		}
	}
}

// CountAuthorized returns the number of distinct prefixes the trie
// authorizes (counting each authorized prefix once even when several tuples
// cover it), saturating at the uint64 maximum. This measures the authorized
// route space that vulnerability analysis (§4) compares against BGP.
func (t *Trie) CountAuthorized() uint64 {
	return countAuthorized(t.root, -1)
}

// countAuthorized performs the g-propagation DFS described in DESIGN.md:
// g is the maximum maxLength over present ancestors (or -1). A prefix q is
// authorized iff len(q) <= g(q).
func countAuthorized(n *node, g int16) uint64 {
	if n == nil {
		return 0
	}
	if n.present && int16(n.value) > g {
		g = int16(n.value)
	}
	var total uint64
	l := int16(n.pfx.Len())
	if l <= g {
		total = 1
	}
	for bit := 0; bit < 2; bit++ {
		var sub uint64
		if c := n.children[bit]; c != nil {
			sub = countAuthorized(c, g)
		} else if g > l {
			// Tuple-free subtree fully authorized down to depth g:
			// 2^(g-l) - 1 prefixes (complete binary tree below this node).
			d := uint64(g - l)
			if d >= 64 {
				sub = ^uint64(0)
			} else {
				sub = (uint64(1) << d) - 1
			}
		}
		total = satAdd(total, sub)
	}
	return total
}

func satAdd(a, b uint64) uint64 {
	if a+b < a {
		return ^uint64(0)
	}
	return a + b
}

// Walk visits every present tuple in canonical order.
func (t *Trie) Walk(fn func(p prefix.Prefix, maxLength uint8)) {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if n.present {
			fn(n.pfx, n.value)
		}
		rec(n.children[0])
		rec(n.children[1])
	}
	rec(t.root)
}

// checkInvariants verifies structural soundness; used by tests.
func (t *Trie) checkInvariants() error {
	count := 0
	var rec func(n *node, depth uint8) error
	rec = func(n *node, depth uint8) error {
		if n == nil {
			return nil
		}
		if n.pfx.Len() != depth {
			return fmt.Errorf("core: node %s at depth %d", n.pfx, depth)
		}
		if n.present {
			count++
			if n.value < n.pfx.Len() || n.value > n.pfx.MaxLen() {
				return fmt.Errorf("core: node %s has bad value %d", n.pfx, n.value)
			}
		}
		for bit := uint8(0); bit < 2; bit++ {
			c := n.children[bit]
			if c != nil && c.pfx != n.pfx.Child(bit) {
				return fmt.Errorf("core: child %s under %s on bit %d", c.pfx, n.pfx, bit)
			}
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("core: size %d but %d present nodes", t.size, count)
	}
	return nil
}

// BuildTries partitions a VRP set into per-(AS, family) tries, the structure
// §7.1 compresses ("For each AS number in the list, we generate a trie for
// IPv4 and a trie for IPv6").
func BuildTries(s *rpki.Set) []*Trie {
	groups := s.ByOrigin()
	out := make([]*Trie, 0, len(groups))
	for _, g := range groups {
		t := NewTrie(g.AS, g.Family)
		for _, v := range g.VRPs {
			t.InsertVRP(v)
		}
		out = append(out, t)
	}
	return out
}
