// Package core implements the paper's primary contribution: the binary
// prefix trie of Figure 2 and the compress_roas algorithm (Algorithm 1) that
// rewrites a set of VRP tuples into a smaller, semantically identical set
// that uses the maxLength attribute — without ever authorizing a route the
// input did not authorize. The package also implements the analyses the
// paper builds on that algorithm: minimal-ROA conversion (§6, §7.2),
// forged-origin subprefix hijack vulnerability detection (§4, §6), and an
// exact semantic-equivalence verifier used to prove compression safe.
package core

import (
	"fmt"
	"sync"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// node is one vertex of the binary prefix trie. Structural nodes exist only
// to connect present nodes; a present node corresponds to a (prefix,
// maxLength) tuple ("Each trie node corresponds to some (AS, prefix,
// maxLength)-tuple", §7.1).
//
// Nodes live in the owning Trie's slab and address their children by slab
// index rather than pointer: index 0 is the root, which is never anyone's
// child, so 0 doubles as the nil child sentinel. A node does not store its
// prefix — the prefix is the path from the root, and traversals that need it
// rebuild it incrementally with Prefix.Child.
type node struct {
	children [2]int32
	value    uint8 // maxLength; meaningful only when present
	present  bool
}

const noChild int32 = 0

// Trie is the per-(origin AS, address family) prefix tree of §7.1. The trie
// key of a node is the bit string of its prefix; node values are maxLengths.
//
// All nodes live in a single contiguous slab, so building a trie costs
// O(log nodes) slab growths rather than one heap allocation per prefix bit,
// and the whole structure is freed (or recycled, see Release) as one object.
// Child slab indices are always greater than their parent's, which makes the
// structure trivially acyclic.
type Trie struct {
	nodes []node // nodes[0] is the root
	fam   prefix.Family
	as    rpki.ASN
	size  int // number of present nodes
}

// slabPool recycles node slabs (as *[]node) across tries. Compress releases
// every trie it builds once the tuples are extracted, so repeated runs over
// full RPKI snapshots reuse a steady-state set of slabs instead of
// reallocating O(tries) of them per run. Each Put boxes one slab; Get
// returning nil means the pool is empty.
var slabPool sync.Pool

// NewTrie returns an empty trie for one origin AS and family.
func NewTrie(as rpki.ASN, fam prefix.Family) *Trie {
	return newTrieCap(as, fam, 0)
}

// newTrieCap returns an empty trie whose slab holds at least hint nodes
// without growing, recycling a pooled slab when one is available.
func newTrieCap(as rpki.ASN, fam prefix.Family, hint int) *Trie {
	if fam != prefix.IPv4 && fam != prefix.IPv6 {
		panic(fmt.Sprintf("core: invalid family %d", fam))
	}
	// Cap the pre-size: hint is an upper bound that ignores path sharing, so
	// beyond this the slab grows by appending (still O(log n) allocations).
	const maxHint = 1 << 15
	if hint > maxHint {
		hint = maxHint
	}
	var nodes []node
	if p, _ := slabPool.Get().(*[]node); p != nil && cap(*p) >= hint {
		nodes = (*p)[:0]
	} else {
		// Pool empty, or the recycled slab is smaller than the hint: let the
		// undersized slab go to GC and allocate at full size once.
		nodes = make([]node, 0, hint)
	}
	return &Trie{nodes: append(nodes, node{}), fam: fam, as: as}
}

// Release returns the trie's node slab to an internal pool for reuse by
// future tries. The trie must not be used afterwards. Calling Release is
// optional — an unreleased trie is simply garbage collected — but bulk
// pipelines (Compress over a full snapshot) release tries as they finish to
// keep slab allocation O(working set) instead of O(total tries).
func (t *Trie) Release() {
	nodes := t.nodes
	t.nodes = nil
	t.size = 0
	if nodes == nil {
		return
	}
	s := nodes[:0]
	slabPool.Put(&s)
}

// AS returns the origin AS the trie belongs to.
func (t *Trie) AS() rpki.ASN { return t.as }

// Family returns the trie's address family.
func (t *Trie) Family() prefix.Family { return t.fam }

// Size returns the number of tuples (present nodes) in the trie.
func (t *Trie) Size() int { return t.size }

// rootPrefix returns the /0 prefix of the trie's family.
func (t *Trie) rootPrefix() prefix.Prefix {
	p, err := prefix.Make(t.fam, 0, 0, 0)
	if err != nil {
		panic(err) // fam is validated at construction; unreachable
	}
	return p
}

// Insert adds the tuple (p, maxLength). Inserting a prefix twice keeps the
// larger maxLength, since the union of the two tuples' authorizations equals
// the more permissive one. Insert panics on family mismatch or an invalid
// maxLength, which indicate a bug in the caller (Set inputs are validated).
func (t *Trie) Insert(p prefix.Prefix, maxLength uint8) {
	if p.Family() != t.fam {
		panic(fmt.Sprintf("core: inserting %s into %s trie", p, t.fam))
	}
	if maxLength < p.Len() || maxLength > p.MaxLen() {
		panic(fmt.Sprintf("core: maxLength %d invalid for %s", maxLength, p))
	}
	idx := int32(0)
	for depth := uint8(0); depth < p.Len(); depth++ {
		bit := p.Bit(depth)
		c := t.nodes[idx].children[bit]
		if c == noChild {
			c = int32(len(t.nodes))
			t.nodes = append(t.nodes, node{})
			t.nodes[idx].children[bit] = c
		}
		idx = c
	}
	n := &t.nodes[idx]
	if !n.present {
		n.present = true
		n.value = maxLength
		t.size++
		return
	}
	if maxLength > n.value {
		n.value = maxLength
	}
}

// InsertVRP adds a VRP tuple; the VRP's AS must match the trie's.
func (t *Trie) InsertVRP(v rpki.VRP) {
	if v.AS != t.as {
		panic(fmt.Sprintf("core: inserting %s into trie for %s", v, t.as))
	}
	t.Insert(v.Prefix, v.MaxLength)
}

// maxDepth bounds the trie height: one level per prefix bit plus the root.
const maxDepth = 129

// walkFrame is one pending subtree of an iterative pre-order traversal.
type walkFrame struct {
	idx int32
	pfx prefix.Prefix
}

// Tuples appends the trie's present tuples to dst in canonical prefix order
// and returns the extended slice.
func (t *Trie) Tuples(dst []rpki.VRP) []rpki.VRP {
	t.Walk(func(p prefix.Prefix, maxLength uint8) {
		dst = append(dst, rpki.VRP{Prefix: p, MaxLength: maxLength, AS: t.as})
	})
	return dst
}

// Walk visits every present tuple in canonical order. The traversal is
// iterative over an explicit stack: pushing the 1-child before the 0-child
// yields the pre-order of the key space, and the stack never exceeds the
// trie height.
func (t *Trie) Walk(fn func(p prefix.Prefix, maxLength uint8)) {
	stack := make([]walkFrame, 1, maxDepth+1)
	stack[0] = walkFrame{idx: 0, pfx: t.rootPrefix()}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[f.idx]
		if n.present {
			fn(f.pfx, n.value)
		}
		if c := n.children[1]; c != noChild {
			stack = append(stack, walkFrame{idx: c, pfx: f.pfx.Child(1)})
		}
		if c := n.children[0]; c != noChild {
			stack = append(stack, walkFrame{idx: c, pfx: f.pfx.Child(0)})
		}
	}
}

// Lookup returns the maxLength stored at exactly p, if present.
func (t *Trie) Lookup(p prefix.Prefix) (uint8, bool) {
	if p.Family() != t.fam {
		return 0, false
	}
	idx := int32(0)
	for depth := uint8(0); depth < p.Len(); depth++ {
		idx = t.nodes[idx].children[p.Bit(depth)]
		if idx == noChild {
			return 0, false
		}
	}
	n := &t.nodes[idx]
	if !n.present {
		return 0, false
	}
	return n.value, true
}

// Authorizes reports whether the trie's tuples authorize the route (q, AS):
// some present ancestor-or-self of q has maxLength >= q.Len().
func (t *Trie) Authorizes(q prefix.Prefix) bool {
	if q.Family() != t.fam {
		return false
	}
	idx := int32(0)
	for depth := uint8(0); ; depth++ {
		n := &t.nodes[idx]
		if n.present && n.value >= q.Len() {
			return true
		}
		if depth >= q.Len() {
			return false
		}
		idx = n.children[q.Bit(depth)]
		if idx == noChild {
			return false
		}
	}
}

// countFrame is one pending subtree of the CountAuthorized traversal: the
// node's slab index, its depth (= prefix length), and the maximum maxLength
// over its present strict ancestors (-1 when none).
type countFrame struct {
	idx   int32
	g     int16
	depth uint8
}

// CountAuthorized returns the number of distinct prefixes the trie
// authorizes (counting each authorized prefix once even when several tuples
// cover it), saturating at the uint64 maximum. This measures the authorized
// route space that vulnerability analysis (§4) compares against BGP.
//
// The traversal propagates g — the maximum maxLength over present ancestors
// (see DESIGN.md): a prefix q is authorized iff len(q) <= g(q). Absent
// subtrees under an authorizing ancestor are complete binary trees and are
// counted in closed form.
func (t *Trie) CountAuthorized() uint64 {
	var total uint64
	stack := make([]countFrame, 1, maxDepth+1)
	stack[0] = countFrame{idx: 0, g: -1, depth: 0}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[f.idx]
		g := f.g
		if n.present && int16(n.value) > g {
			g = int16(n.value)
		}
		l := int16(f.depth)
		if l <= g {
			total = satAdd(total, 1)
		}
		for bit := 0; bit < 2; bit++ {
			if c := n.children[bit]; c != noChild {
				stack = append(stack, countFrame{idx: c, g: g, depth: f.depth + 1})
			} else if g > l {
				// Tuple-free subtree fully authorized down to depth g:
				// 2^(g-l) - 1 prefixes (complete binary tree below this node).
				d := uint64(g - l)
				sub := ^uint64(0)
				if d < 64 {
					sub = (uint64(1) << d) - 1
				}
				total = satAdd(total, sub)
			}
		}
	}
	return total
}

func satAdd(a, b uint64) uint64 {
	if a+b < a {
		return ^uint64(0)
	}
	return a + b
}

// checkInvariants verifies structural soundness; used by tests.
func (t *Trie) checkInvariants() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("core: trie has no root (released?)")
	}
	count := 0
	type frame struct {
		idx int32
		pfx prefix.Prefix
	}
	visited := 1
	stack := []frame{{idx: 0, pfx: t.rootPrefix()}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[f.idx]
		if n.pfxLenMismatch(f.pfx) {
			return fmt.Errorf("core: node %d at %s exceeds family depth", f.idx, f.pfx)
		}
		if n.present {
			count++
			if n.value < f.pfx.Len() || n.value > f.pfx.MaxLen() {
				return fmt.Errorf("core: node %s has bad value %d", f.pfx, n.value)
			}
		}
		for bit := uint8(0); bit < 2; bit++ {
			c := n.children[bit]
			if c == noChild {
				continue
			}
			if c <= f.idx || int(c) >= len(t.nodes) {
				return fmt.Errorf("core: child index %d of node %d out of order", c, f.idx)
			}
			visited++
			stack = append(stack, frame{idx: c, pfx: f.pfx.Child(bit)})
		}
	}
	if count != t.size {
		return fmt.Errorf("core: size %d but %d present nodes", t.size, count)
	}
	if visited != len(t.nodes) {
		return fmt.Errorf("core: %d nodes in slab but %d reachable", len(t.nodes), visited)
	}
	return nil
}

// pfxLenMismatch reports whether a node with children sits at the family's
// maximum depth (its prefix could not have children).
func (n *node) pfxLenMismatch(p prefix.Prefix) bool {
	return (n.children[0] != noChild || n.children[1] != noChild) && p.Len() >= p.MaxLen()
}

// BuildTries partitions a VRP set into per-(AS, family) tries, the structure
// §7.1 compresses ("For each AS number in the list, we generate a trie for
// IPv4 and a trie for IPv6"). Each trie's slab is pre-sized from the group's
// total prefix bits — an upper bound on its node count — so a build performs
// O(tries) slab allocations rather than one per prefix bit.
func BuildTries(s *rpki.Set) []*Trie {
	groups := s.ByOrigin()
	out := make([]*Trie, 0, len(groups))
	for _, g := range groups {
		out = append(out, buildGroupTrie(g))
	}
	return out
}

// buildGroupTrie builds the trie for one (AS, family) group, pre-sizing the
// slab from the group's total prefix bits.
func buildGroupTrie(g rpki.OriginGroup) *Trie {
	hint := 1
	for _, v := range g.VRPs {
		hint += int(v.Prefix.Len())
	}
	t := newTrieCap(g.AS, g.Family, hint)
	for _, v := range g.VRPs {
		t.InsertVRP(v)
	}
	return t
}

// ReleaseTries releases every trie in the slice; see (*Trie).Release.
func ReleaseTries(tries []*Trie) {
	for _, t := range tries {
		t.Release()
	}
}
