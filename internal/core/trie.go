// Package core implements the paper's primary contribution: the binary
// prefix trie of Figure 2 and the compress_roas algorithm (Algorithm 1) that
// rewrites a set of VRP tuples into a smaller, semantically identical set
// that uses the maxLength attribute — without ever authorizing a route the
// input did not authorize. The package also implements the analyses the
// paper builds on that algorithm: minimal-ROA conversion (§6, §7.2),
// forged-origin subprefix hijack vulnerability detection (§4, §6), and an
// exact semantic-equivalence verifier used to prove compression safe.
//
// All of those structures are instances of one arena engine (see engine.go):
// a contiguous Node[V] slab with int32 child indices, parameterized by the
// per-node payload V.
package core

import (
	"fmt"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// tval is the Trie's per-node payload. Structural nodes exist only to
// connect present nodes; a present node corresponds to a (prefix,
// maxLength) tuple ("Each trie node corresponds to some (AS, prefix,
// maxLength)-tuple", §7.1). A node does not store its prefix — the prefix is
// the path from the root, and traversals that need it rebuild it
// incrementally with Prefix.Child.
type tval struct {
	value   uint8 // maxLength; meaningful only when present
	present bool
}

// Trie is the per-(origin AS, address family) prefix tree of §7.1. The trie
// key of a node is the bit string of its prefix; node values are maxLengths.
//
// All nodes live in a single contiguous Engine slab (node 0 is the root),
// so building a trie costs O(log nodes) slab growths rather than one heap
// allocation per prefix bit, and the whole structure is freed (or recycled,
// see Release) as one object. Child slab indices are always greater than
// their parent's, which makes the structure trivially acyclic.
type Trie struct {
	eng  Engine[tval]
	fam  prefix.Family
	as   rpki.ASN
	size int // number of present nodes
}

// trieSlabs recycles Trie slabs. Compress releases every trie it builds once
// the tuples are extracted, so repeated runs over full RPKI snapshots reuse
// a steady-state set of slabs instead of reallocating O(tries) of them per
// run. The pool is bounded (see SlabPool): at most poolMaxSlabs slabs stay
// resident, and a slab larger than poolMaxNodeCap nodes is dropped on
// Release rather than pinned until the next GC.
var trieSlabs = NewSlabPool[tval](poolMaxSlabs, poolMaxNodeCap)

const (
	// poolMaxSlabs comfortably covers the Compress steady state: one slab in
	// flight per pipeline worker plus headroom for release bursts.
	poolMaxSlabs = 32
	// poolMaxNodeCap drops outlier slabs (≈12 MiB of nodes) that a single
	// giant origin group would otherwise pin in the pool forever.
	poolMaxNodeCap = 1 << 20
)

// NewTrie returns an empty trie for one origin AS and family.
func NewTrie(as rpki.ASN, fam prefix.Family) *Trie {
	return newTrieCap(as, fam, 0)
}

// newTrieCap returns an empty trie whose slab holds at least hint nodes
// without growing, recycling a pooled slab when one is available.
func newTrieCap(as rpki.ASN, fam prefix.Family, hint int) *Trie {
	if fam != prefix.IPv4 && fam != prefix.IPv6 {
		panic(fmt.Sprintf("core: invalid family %d", fam))
	}
	t := &Trie{fam: fam, as: as}
	t.eng.Init(hint, tval{}, trieSlabs)
	return t
}

// Release returns the trie's node slab to an internal pool for reuse by
// future tries. The trie must not be used afterwards. Calling Release is
// optional — an unreleased trie is simply garbage collected — but bulk
// pipelines (Compress over a full snapshot) release tries as they finish to
// keep slab allocation O(working set) instead of O(total tries).
func (t *Trie) Release() {
	t.eng.Release(trieSlabs)
	t.size = 0
}

// AS returns the origin AS the trie belongs to.
func (t *Trie) AS() rpki.ASN { return t.as }

// Family returns the trie's address family.
func (t *Trie) Family() prefix.Family { return t.fam }

// Size returns the number of tuples (present nodes) in the trie.
func (t *Trie) Size() int { return t.size }

// rootPrefix returns the /0 prefix of the trie's family.
func (t *Trie) rootPrefix() prefix.Prefix {
	p, err := prefix.Make(t.fam, 0, 0, 0)
	if err != nil {
		panic(err) // fam is validated at construction; unreachable
	}
	return p
}

// Insert adds the tuple (p, maxLength). Inserting a prefix twice keeps the
// larger maxLength, since the union of the two tuples' authorizations equals
// the more permissive one. Insert panics on family mismatch or an invalid
// maxLength, which indicate a bug in the caller (Set inputs are validated).
func (t *Trie) Insert(p prefix.Prefix, maxLength uint8) {
	if p.Family() != t.fam {
		panic(fmt.Sprintf("core: inserting %s into %s trie", p, t.fam))
	}
	if maxLength < p.Len() || maxLength > p.MaxLen() {
		panic(fmt.Sprintf("core: maxLength %d invalid for %s", maxLength, p))
	}
	// The descend loop is hand-inlined over the slab rather than routed
	// through Engine.PathInsert: trie building is the hottest path of
	// Compress and the per-bit method calls showed up in its profile.
	nodes := t.eng.Nodes
	idx := int32(0)
	for depth := uint8(0); depth < p.Len(); depth++ {
		bit := p.Bit(depth)
		c := nodes[idx].Children[bit]
		if c == NoChild {
			c = int32(len(nodes))
			nodes = append(nodes, Node[tval]{})
			nodes[idx].Children[bit] = c
		}
		idx = c
	}
	t.eng.Nodes = nodes
	n := &nodes[idx]
	if !n.Val.present {
		n.Val.present = true
		n.Val.value = maxLength
		t.size++
		return
	}
	if maxLength > n.Val.value {
		n.Val.value = maxLength
	}
}

// InsertVRP adds a VRP tuple; the VRP's AS must match the trie's.
func (t *Trie) InsertVRP(v rpki.VRP) {
	if v.AS != t.as {
		panic(fmt.Sprintf("core: inserting %s into trie for %s", v, t.as))
	}
	t.Insert(v.Prefix, v.MaxLength)
}

// maxDepth bounds the trie height: one level per prefix bit plus the root.
const maxDepth = 129

// Tuples appends the trie's present tuples to dst in canonical prefix order
// and returns the extended slice.
func (t *Trie) Tuples(dst []rpki.VRP) []rpki.VRP {
	t.Walk(func(p prefix.Prefix, maxLength uint8) {
		dst = append(dst, rpki.VRP{Prefix: p, MaxLength: maxLength, AS: t.as})
	})
	return dst
}

// Walk visits every present tuple in canonical order. Like Insert it walks
// the slab directly (pre-order of the key space, matching Engine.Walk):
// tuple extraction is on the Compress hot path, and the engine's generic
// visit-every-node callback costs a second closure indirection per node.
func (t *Trie) Walk(fn func(p prefix.Prefix, maxLength uint8)) {
	nodes := t.eng.Nodes
	stack := make([]engineFrame, 1, maxDepth+1)
	stack[0] = engineFrame{idx: 0, pfx: t.rootPrefix()}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &nodes[f.idx]
		if n.Val.present {
			fn(f.pfx, n.Val.value)
		}
		if c := n.Children[1]; c != NoChild {
			stack = append(stack, engineFrame{idx: c, pfx: f.pfx.Child(1)})
		}
		if c := n.Children[0]; c != NoChild {
			stack = append(stack, engineFrame{idx: c, pfx: f.pfx.Child(0)})
		}
	}
}

// Lookup returns the maxLength stored at exactly p, if present.
func (t *Trie) Lookup(p prefix.Prefix) (uint8, bool) {
	if p.Family() != t.fam {
		return 0, false
	}
	idx := t.eng.PathFind(0, p)
	if idx < 0 {
		return 0, false
	}
	if v := t.eng.Nodes[idx].Val; v.present {
		return v.value, true
	}
	return 0, false
}

// Authorizes reports whether the trie's tuples authorize the route (q, AS):
// some present ancestor-or-self of q has maxLength >= q.Len().
func (t *Trie) Authorizes(q prefix.Prefix) bool {
	if q.Family() != t.fam {
		return false
	}
	idx := int32(0)
	for depth := uint8(0); ; depth++ {
		n := &t.eng.Nodes[idx]
		if n.Val.present && n.Val.value >= q.Len() {
			return true
		}
		if depth >= q.Len() {
			return false
		}
		idx = n.Children[q.Bit(depth)]
		if idx == NoChild {
			return false
		}
	}
}

// countFrame is one pending subtree of the CountAuthorized traversal: the
// node's slab index, its depth (= prefix length), and the maximum maxLength
// over its present strict ancestors (-1 when none).
type countFrame struct {
	idx   int32
	g     int16
	depth uint8
}

// CountAuthorized returns the number of distinct prefixes the trie
// authorizes (counting each authorized prefix once even when several tuples
// cover it), saturating at the uint64 maximum. This measures the authorized
// route space that vulnerability analysis (§4) compares against BGP.
//
// The traversal propagates g — the maximum maxLength over present ancestors
// (see DESIGN.md): a prefix q is authorized iff len(q) <= g(q). Absent
// subtrees under an authorizing ancestor are complete binary trees and are
// counted in closed form.
func (t *Trie) CountAuthorized() uint64 {
	var total uint64
	stack := make([]countFrame, 1, maxDepth+1)
	stack[0] = countFrame{idx: 0, g: -1, depth: 0}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.eng.Nodes[f.idx]
		g := f.g
		if n.Val.present && int16(n.Val.value) > g {
			g = int16(n.Val.value)
		}
		l := int16(f.depth)
		if l <= g {
			total = satAdd(total, 1)
		}
		for bit := 0; bit < 2; bit++ {
			if c := n.Children[bit]; c != NoChild {
				stack = append(stack, countFrame{idx: c, g: g, depth: f.depth + 1})
			} else if g > l {
				// Tuple-free subtree fully authorized down to depth g:
				// 2^(g-l) - 1 prefixes (complete binary tree below this node).
				d := uint64(g - l)
				sub := ^uint64(0)
				if d < 64 {
					sub = (uint64(1) << d) - 1
				}
				total = satAdd(total, sub)
			}
		}
	}
	return total
}

func satAdd(a, b uint64) uint64 {
	if a+b < a {
		return ^uint64(0)
	}
	return a + b
}

// checkInvariants verifies structural soundness; used by tests.
func (t *Trie) checkInvariants() error {
	if t.eng.Len() == 0 {
		return fmt.Errorf("core: trie has no root (released?)")
	}
	count := 0
	type frame struct {
		idx int32
		pfx prefix.Prefix
	}
	visited := 1
	stack := []frame{{idx: 0, pfx: t.rootPrefix()}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.eng.Nodes[f.idx]
		if n.pfxLenMismatch(f.pfx) {
			return fmt.Errorf("core: node %d at %s exceeds family depth", f.idx, f.pfx)
		}
		if n.Val.present {
			count++
			if n.Val.value < f.pfx.Len() || n.Val.value > f.pfx.MaxLen() {
				return fmt.Errorf("core: node %s has bad value %d", f.pfx, n.Val.value)
			}
		}
		for bit := uint8(0); bit < 2; bit++ {
			c := n.Children[bit]
			if c == NoChild {
				continue
			}
			if c <= f.idx || int(c) >= t.eng.Len() {
				return fmt.Errorf("core: child index %d of node %d out of order", c, f.idx)
			}
			visited++
			stack = append(stack, frame{idx: c, pfx: f.pfx.Child(bit)})
		}
	}
	if count != t.size {
		return fmt.Errorf("core: size %d but %d present nodes", t.size, count)
	}
	if visited != t.eng.Len() {
		return fmt.Errorf("core: %d nodes in slab but %d reachable", t.eng.Len(), visited)
	}
	return nil
}

// pfxLenMismatch reports whether a node with children sits at the family's
// maximum depth (its prefix could not have children).
func (n *Node[V]) pfxLenMismatch(p prefix.Prefix) bool {
	return (n.Children[0] != NoChild || n.Children[1] != NoChild) && p.Len() >= p.MaxLen()
}

// BuildTries partitions a VRP set into per-(AS, family) tries, the structure
// §7.1 compresses ("For each AS number in the list, we generate a trie for
// IPv4 and a trie for IPv6"). Each trie's slab is pre-sized to the group's
// exact node count (see groupNodeHint), so a build performs O(tries) slab
// allocations rather than one per prefix bit.
func BuildTries(s *rpki.Set) []*Trie {
	groups := s.ByOrigin()
	out := make([]*Trie, 0, len(groups))
	for _, g := range groups {
		out = append(out, buildGroupTrie(g))
	}
	return out
}

// groupNodeHint returns the exact number of trie nodes (root included) the
// group's VRPs expand to. The group's prefixes arrive in canonical Set order,
// which for the underlying bit strings is lexicographic order, so each
// prefix's longest common prefix with *any* earlier prefix is its LCP with
// its immediate predecessor; the prefix then contributes exactly its bits
// beyond that LCP as new nodes. The previous hint, Σ prefix bits, ignored
// path sharing entirely and overestimated sibling-heavy groups by >2x
// (measured in TestGroupNodeHintExact), making pooled-slab reuse miss and
// oversize fresh slabs.
func groupNodeHint(g rpki.OriginGroup) int {
	hint := 1 // the root
	var prev prefix.Prefix
	for i, v := range g.VRPs {
		if i == 0 {
			hint += int(v.Prefix.Len())
		} else {
			hint += int(v.Prefix.Len()) - int(prefix.CommonPrefixLen(prev, v.Prefix))
		}
		prev = v.Prefix
	}
	return hint
}

// buildGroupTrie builds the trie for one (AS, family) group, pre-sizing the
// slab to the group's exact node count.
func buildGroupTrie(g rpki.OriginGroup) *Trie {
	t := newTrieCap(g.AS, g.Family, groupNodeHint(g))
	for _, v := range g.VRPs {
		t.InsertVRP(v)
	}
	return t
}

// ReleaseTries releases every trie in the slice; see (*Trie).Release.
func ReleaseTries(tries []*Trie) {
	for _, t := range tries {
		t.Release()
	}
}
