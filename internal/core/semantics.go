package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file implements an exact decision procedure for semantic equality of
// two VRP sets: do they authorize exactly the same (prefix, origin AS)
// routes? The authorized set can be astronomically large (a single /8-32
// tuple authorizes 2^25-ish routes), so enumeration is hopeless; instead we
// walk the merged tuple trie carrying, for each side, the running maximum
// maxLength over present ancestors (g). A prefix q is authorized iff
// len(q) <= g(q), and g only changes at tuple nodes, so equality can be
// decided by comparing g at tuple nodes and at the roots of tuple-free
// subtrees (see DESIGN.md). The procedure is O(total tuple bits) and returns
// a concrete counterexample route on inequality, which the tests and the
// compressroas -verify flag surface directly.

// mval is the merged trie's per-node payload: one maxLength bound per side,
// -1 when the side holds no tuple at the node.
type mval struct {
	valA int16
	valB int16
}

// mtrie is the engine arena holding one merged (AS, family) trie.
type mtrie struct {
	eng Engine[mval]
	fam prefix.Family
}

// mtrieSlabs recycles merged-trie slabs, the same bounded free-reuse
// treatment trieSlabs gives Trie slabs: SemanticEqual over a full snapshot
// builds one mtrie per (AS, family), and without reuse each of those is a
// fresh slab allocation on every verification run.
var mtrieSlabs = NewSlabPool[mval](poolMaxSlabs, poolMaxNodeCap)

// mtrieFree recycles the mtrie structs themselves, bounded like the slab
// pool: the structs are the only remaining per-group garbage once the slabs
// are pooled, so a repeated verification run stays allocation-steady.
var mtrieFree = struct {
	mu   sync.Mutex
	free []*mtrie
}{}

// mAbsent is the payload of a node neither side holds a tuple at.
var mAbsent = mval{valA: -1, valB: -1}

func newMtrie(fam prefix.Family) *mtrie {
	mtrieFree.mu.Lock()
	var m *mtrie
	if n := len(mtrieFree.free); n > 0 {
		m = mtrieFree.free[n-1]
		mtrieFree.free[n-1] = nil
		mtrieFree.free = mtrieFree.free[:n-1]
	}
	mtrieFree.mu.Unlock()
	if m == nil {
		m = &mtrie{}
	}
	m.fam = fam
	m.eng.Init(0, mAbsent, mtrieSlabs)
	return m
}

// release returns the mtrie's slab to the slab pool and the struct to the
// free list; the mtrie must not be used afterwards.
func (m *mtrie) release() {
	m.eng.Release(mtrieSlabs)
	mtrieFree.mu.Lock()
	if len(mtrieFree.free) < poolMaxSlabs {
		mtrieFree.free = append(mtrieFree.free, m)
	}
	mtrieFree.mu.Unlock()
}

func (m *mtrie) insert(p prefix.Prefix, maxLength uint8, sideB bool) {
	n := &m.eng.Nodes[m.eng.PathInsert(0, p, mAbsent)]
	v := int16(maxLength)
	if sideB {
		if v > n.Val.valB {
			n.Val.valB = v
		}
	} else {
		if v > n.Val.valA {
			n.Val.valA = v
		}
	}
}

// Counterexample describes one route authorized by exactly one of two sets.
type Counterexample struct {
	Route       rpki.VRP // MaxLength == Prefix.Len(): a single route
	AuthorizedA bool     // true: A authorizes it and B does not; false: vice versa
}

// String renders e.g. "168.122.0.0/24 => AS111 authorized only by A".
func (c Counterexample) String() string {
	side := "B"
	if c.AuthorizedA {
		side = "A"
	}
	return fmt.Sprintf("%s authorized only by %s", c.Route, side)
}

// SemanticEqual reports whether a and b authorize exactly the same routes.
// On inequality it returns a counterexample.
func SemanticEqual(a, b *rpki.Set) (bool, *Counterexample) {
	type key struct {
		as  rpki.ASN
		fam prefix.Family
	}
	merged := make(map[key]*mtrie)
	defer func() {
		for _, m := range merged {
			m.release()
		}
	}()
	rootFor := func(k key) *mtrie {
		m, ok := merged[k]
		if !ok {
			m = newMtrie(k.fam)
			merged[k] = m
		}
		return m
	}
	for _, v := range a.VRPs() {
		rootFor(key{v.AS, v.Prefix.Family()}).insert(v.Prefix, v.MaxLength, false)
	}
	for _, v := range b.VRPs() {
		rootFor(key{v.AS, v.Prefix.Family()}).insert(v.Prefix, v.MaxLength, true)
	}
	// Deterministic iteration order for reproducible counterexamples.
	keys := make([]key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].as != keys[j].as {
			return keys[i].as < keys[j].as
		}
		return keys[i].fam < keys[j].fam
	})
	for _, k := range keys {
		if ce := diffTrie(merged[k], k.as); ce != nil {
			return false, ce
		}
	}
	return true, nil
}

// diffFrame is one pending work item of the diff traversal. With absentBit
// < 0 it is a real node: idx, its prefix, and the per-side ancestor maxima
// excluding the node itself. With absentBit 0 or 1 it is a deferred
// divergence report for the tuple-free subtree under that absent child of
// pfx (only pushed when the bounds already prove a divergence), kept on the
// stack so it surfaces at its correct pre-order position.
type diffFrame struct {
	idx       int32
	gA, gB    int16
	absentBit int8
	pfx       prefix.Prefix
}

// diffTrie returns the first counterexample of a pre-order scan of the
// merged trie, or nil if the sides agree everywhere.
func diffTrie(m *mtrie, as rpki.ASN) *Counterexample {
	rootPfx, err := prefix.Make(m.fam, 0, 0, 0)
	if err != nil {
		panic(err)
	}
	stack := make([]diffFrame, 1, 2*maxDepth)
	stack[0] = diffFrame{idx: 0, gA: -1, gB: -1, absentBit: -1, pfx: rootPfx}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.absentBit >= 0 {
			return tupleFreeCounterexample(f.pfx, uint8(f.absentBit), f.gA, f.gB, as)
		}
		n := &m.eng.Nodes[f.idx]
		gA, gB := f.gA, f.gB
		if n.Val.valA > gA {
			gA = n.Val.valA
		}
		if n.Val.valB > gB {
			gB = n.Val.valB
		}
		l := int16(f.pfx.Len())
		// Authorization of the node's own prefix.
		if (l <= gA) != (l <= gB) {
			return &Counterexample{
				Route:       rpki.VRP{Prefix: f.pfx, MaxLength: f.pfx.Len(), AS: as},
				AuthorizedA: l <= gA,
			}
		}
		// Push children 1-before-0 so the stack pops them in bit order. An
		// absent child roots a tuple-free subtree whose authorized depths are
		// (l, gX]: the sides agree iff the effective bounds match or both
		// bound-authorized ranges are empty; otherwise a deferred divergence
		// frame keeps the report at its pre-order position.
		for bit := int8(1); bit >= 0; bit-- {
			if c := n.Children[bit]; c != NoChild {
				stack = append(stack, diffFrame{idx: c, gA: gA, gB: gB, absentBit: -1, pfx: f.pfx.Child(uint8(bit))})
			} else if gA != gB && (gA > l || gB > l) {
				stack = append(stack, diffFrame{gA: gA, gB: gB, absentBit: bit, pfx: f.pfx})
			}
		}
	}
	return nil
}

// tupleFreeCounterexample builds a route at the first depth where exactly
// one side authorizes within the absent-child subtree.
func tupleFreeCounterexample(parent prefix.Prefix, bit uint8, gA, gB int16, as rpki.ASN) *Counterexample {
	authA := gA > gB
	hi := gA // the smaller of the two bounds
	if authA {
		hi = gB
	}
	// Depths in (max(hi, parent.Len()), max(gA, gB)] are authorized by one
	// side only; pick the shallowest.
	depth := hi + 1
	if depth < int16(parent.Len())+1 {
		depth = int16(parent.Len()) + 1
	}
	q := parent.Child(bit)
	for int16(q.Len()) < depth {
		q = q.Child(0)
	}
	return &Counterexample{
		Route:       rpki.VRP{Prefix: q, MaxLength: q.Len(), AS: as},
		AuthorizedA: authA,
	}
}

// VerifyCompression asserts that compressed preserves original's semantics;
// it returns nil on success and a descriptive error otherwise. cmd/compressroas
// runs this under -verify.
func VerifyCompression(original, compressed *rpki.Set) error {
	if ok, ce := SemanticEqual(original, compressed); !ok {
		return fmt.Errorf("core: compression changed authorized routes: %s", ce)
	}
	return nil
}
