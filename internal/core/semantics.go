package core

import (
	"fmt"
	"sort"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file implements an exact decision procedure for semantic equality of
// two VRP sets: do they authorize exactly the same (prefix, origin AS)
// routes? The authorized set can be astronomically large (a single /8-32
// tuple authorizes 2^25-ish routes), so enumeration is hopeless; instead we
// walk the merged tuple trie carrying, for each side, the running maximum
// maxLength over present ancestors (g). A prefix q is authorized iff
// len(q) <= g(q), and g only changes at tuple nodes, so equality can be
// decided by comparing g at tuple nodes and at the roots of tuple-free
// subtrees (see DESIGN.md). The procedure is O(total tuple bits) and returns
// a concrete counterexample route on inequality, which the tests and the
// compressroas -verify flag surface directly.

// mnode is a merged trie node carrying per-side values.
type mnode struct {
	children [2]*mnode
	pfx      prefix.Prefix
	valA     int16 // maxLength on side A, -1 if absent
	valB     int16
}

func newMnode(p prefix.Prefix) *mnode { return &mnode{pfx: p, valA: -1, valB: -1} }

func (m *mnode) insert(p prefix.Prefix, maxLength uint8, sideB bool) {
	n := m
	for depth := uint8(0); depth < p.Len(); depth++ {
		bit := p.Bit(depth)
		if n.children[bit] == nil {
			n.children[bit] = newMnode(n.pfx.Child(bit))
		}
		n = n.children[bit]
	}
	v := int16(maxLength)
	if sideB {
		if v > n.valB {
			n.valB = v
		}
	} else {
		if v > n.valA {
			n.valA = v
		}
	}
}

// Counterexample describes one route authorized by exactly one of two sets.
type Counterexample struct {
	Route       rpki.VRP // MaxLength == Prefix.Len(): a single route
	AuthorizedA bool     // true: A authorizes it and B does not; false: vice versa
}

// String renders e.g. "168.122.0.0/24 => AS111 authorized only by A".
func (c Counterexample) String() string {
	side := "B"
	if c.AuthorizedA {
		side = "A"
	}
	return fmt.Sprintf("%s authorized only by %s", c.Route, side)
}

// SemanticEqual reports whether a and b authorize exactly the same routes.
// On inequality it returns a counterexample.
func SemanticEqual(a, b *rpki.Set) (bool, *Counterexample) {
	type key struct {
		as  rpki.ASN
		fam prefix.Family
	}
	merged := make(map[key]*mnode)
	rootFor := func(k key) *mnode {
		m, ok := merged[k]
		if !ok {
			p, err := prefix.Make(k.fam, 0, 0, 0)
			if err != nil {
				panic(err)
			}
			m = newMnode(p)
			merged[k] = m
		}
		return m
	}
	for _, v := range a.VRPs() {
		rootFor(key{v.AS, v.Prefix.Family()}).insert(v.Prefix, v.MaxLength, false)
	}
	for _, v := range b.VRPs() {
		rootFor(key{v.AS, v.Prefix.Family()}).insert(v.Prefix, v.MaxLength, true)
	}
	// Deterministic iteration order for reproducible counterexamples.
	keys := make([]key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].as != keys[j].as {
			return keys[i].as < keys[j].as
		}
		return keys[i].fam < keys[j].fam
	})
	for _, k := range keys {
		if ce := diffTrie(merged[k], -1, -1, k.as); ce != nil {
			return false, ce
		}
	}
	return true, nil
}

// diffTrie returns a counterexample in the subtree at n, where gA/gB are the
// ancestor maxima excluding n itself, or nil if the subtrees agree.
func diffTrie(n *mnode, gA, gB int16, as rpki.ASN) *Counterexample {
	if n.valA > gA {
		gA = n.valA
	}
	if n.valB > gB {
		gB = n.valB
	}
	l := int16(n.pfx.Len())
	// Authorization of the node's own prefix.
	if (l <= gA) != (l <= gB) {
		return &Counterexample{
			Route:       rpki.VRP{Prefix: n.pfx, MaxLength: n.pfx.Len(), AS: as},
			AuthorizedA: l <= gA,
		}
	}
	for bit := uint8(0); bit < 2; bit++ {
		if c := n.children[bit]; c != nil {
			if ce := diffTrie(c, gA, gB, as); ce != nil {
				return ce
			}
			continue
		}
		// Tuple-free subtree rooted at the absent child: authorized depths
		// are (l, gX]. The sides agree iff the effective bounds match or
		// both subtrees are empty of authorizations.
		if gA == gB || (gA <= l && gB <= l) {
			continue
		}
		return tupleFreeCounterexample(n.pfx, bit, gA, gB, as)
	}
	return nil
}

// tupleFreeCounterexample builds a route at the first depth where exactly
// one side authorizes within the absent-child subtree.
func tupleFreeCounterexample(parent prefix.Prefix, bit uint8, gA, gB int16, as rpki.ASN) *Counterexample {
	authA := gA > gB
	hi := gA // the smaller of the two bounds
	if authA {
		hi = gB
	}
	// Depths in (max(hi, parent.Len()), max(gA, gB)] are authorized by one
	// side only; pick the shallowest.
	depth := hi + 1
	if depth < int16(parent.Len())+1 {
		depth = int16(parent.Len()) + 1
	}
	q := parent.Child(bit)
	for int16(q.Len()) < depth {
		q = q.Child(0)
	}
	return &Counterexample{
		Route:       rpki.VRP{Prefix: q, MaxLength: q.Len(), AS: as},
		AuthorizedA: authA,
	}
}

// VerifyCompression asserts that compressed preserves original's semantics;
// it returns nil on success and a descriptive error otherwise. cmd/compressroas
// runs this under -verify.
func VerifyCompression(original, compressed *rpki.Set) error {
	if ok, ce := SemanticEqual(original, compressed); !ok {
		return fmt.Errorf("core: compression changed authorized routes: %s", ce)
	}
	return nil
}
