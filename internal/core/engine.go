package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/prefix"
)

// This file is the value-parameterized arena at the heart of every trie in
// the repository. An Engine[V] stores a binary prefix tree as one contiguous
// slab of Node[V]: children are int32 slab indices rather than pointers, so
// building a tree costs O(log nodes) slab growths instead of one heap
// allocation per prefix bit, traversals walk cache-adjacent memory, and the
// whole structure is freed (or recycled through a SlabPool) as a single
// object. The payload type V is chosen by the instantiating structure:
//
//   - Trie (this package) stores {maxLength, present} per node,
//   - the SemanticEqual merged trie stores per-side maxLength bounds,
//   - rov.Index stores a {off, n} span into a parallel value slab of VRP
//     entries (per-node variable-length payloads without per-node slices).
//
// Slab index 0 is reserved: structures rooted at the slab base use it as
// their root, and structures with movable roots (rov.LiveIndex path-copies
// new roots per update) leave it as a dead placeholder. Either way node 0 is
// never anyone's child, so 0 doubles as the NoChild sentinel and freshly
// zeroed nodes are born with both children absent.

// NoChild is the nil child sentinel of an Engine slab.
const NoChild int32 = 0

// Node is one vertex of an Engine: two child slab indices and a payload.
type Node[V any] struct {
	Children [2]int32
	Val      V
}

// Engine is a contiguous-slab binary prefix tree over payload type V. The
// zero Engine is empty and unusable; call Init first.
type Engine[V any] struct {
	// Nodes is the slab. Callers index it directly on hot paths; they must
	// not reslice or reassign it.
	Nodes []Node[V]
	// lineage identifies the Init call this slab grew from (see SharedArena).
	// It travels with the engine value when a snapshot copies the struct, so
	// every snapshot of one append-only history carries the same token. The
	// slab base pointer cannot serve this purpose: append may relocate the
	// backing array between snapshots without invalidating node indices.
	lineage uint64
}

// lineageCounter hands every Init a process-unique arena lineage token.
// Token 0 is reserved for the zero Engine, which shares with nothing.
var lineageCounter atomic.Uint64

// SharedArena reports whether e and o grew from the same Init call — one
// append-only slab history. Combined with the path-copying discipline
// (published nodes are never written again; updates clone onto the slab
// tail), it yields the subtree-identity predicate a structural diff needs:
// for two snapshots of a shared arena, equal node indices refer to
// byte-identical subtrees, so a walker can skip them without descending.
func (e *Engine[V]) SharedArena(o *Engine[V]) bool {
	return e.lineage != 0 && e.lineage == o.lineage
}

// Init readies the engine with a slab holding at least hint nodes without
// growing, recycling one from pool when available (pool may be nil), and
// installs the reserved node 0 carrying payload root.
func (e *Engine[V]) Init(hint int, root V, pool *SlabPool[V]) {
	var nodes []Node[V]
	if pool != nil {
		nodes = pool.Get(hint)
	}
	if nodes == nil {
		nodes = make([]Node[V], 0, hint+1)
	}
	e.Nodes = append(nodes, Node[V]{Val: root})
	e.lineage = lineageCounter.Add(1)
}

// Release returns the slab to pool (dropped when pool is nil or full). The
// engine must not be used afterwards. Structures that hand out snapshots
// aliasing the slab (rov.LiveIndex) must never release it.
func (e *Engine[V]) Release(pool *SlabPool[V]) {
	nodes := e.Nodes
	e.Nodes = nil
	if nodes == nil || pool == nil {
		return
	}
	pool.Put(nodes)
}

// Len returns the number of slab nodes, including reserved node 0.
func (e *Engine[V]) Len() int { return len(e.Nodes) }

// Alloc appends a fresh node with payload v and no children.
func (e *Engine[V]) Alloc(v V) int32 {
	idx := int32(len(e.Nodes))
	e.Nodes = append(e.Nodes, Node[V]{Val: v})
	return idx
}

// Clone appends a copy of node idx — children included — and returns the
// copy's index. rov.LiveIndex builds persistent-update paths with it: the
// original node stays valid for snapshots that still reference it.
func (e *Engine[V]) Clone(idx int32) int32 {
	c := int32(len(e.Nodes))
	e.Nodes = append(e.Nodes, e.Nodes[idx])
	return c
}

// Ensure returns the bit-child of idx, creating it with payload def if absent.
func (e *Engine[V]) Ensure(idx int32, bit uint8, def V) int32 {
	c := e.Nodes[idx].Children[bit]
	if c == NoChild {
		c = e.Alloc(def)
		e.Nodes[idx].Children[bit] = c
	}
	return c
}

// PathInsert walks p's bits from root, creating missing nodes with payload
// def, and returns the terminal node's index.
func (e *Engine[V]) PathInsert(root int32, p prefix.Prefix, def V) int32 {
	idx := root
	for depth := uint8(0); depth < p.Len(); depth++ {
		idx = e.Ensure(idx, p.Bit(depth), def)
	}
	return idx
}

// PathFind walks p's bits from root and returns the terminal node's index,
// or -1 when the path is absent. (NoChild cannot signal absence here: a /0
// query resolves to the root, which may itself be index 0.)
func (e *Engine[V]) PathFind(root int32, p prefix.Prefix) int32 {
	idx := root
	for depth := uint8(0); depth < p.Len(); depth++ {
		idx = e.Nodes[idx].Children[p.Bit(depth)]
		if idx == NoChild {
			return -1
		}
	}
	return idx
}

// engineFrame is one pending subtree of an iterative pre-order traversal.
type engineFrame struct {
	idx int32
	pfx prefix.Prefix
}

// Walk visits every node reachable from root in pre-order of the key space
// (canonical prefix order), calling fn with the node's slab index and its
// prefix. at is the prefix of root itself. The traversal is iterative and
// its stack never exceeds the tree height.
func (e *Engine[V]) Walk(root int32, at prefix.Prefix, fn func(idx int32, p prefix.Prefix)) {
	stack := make([]engineFrame, 1, maxDepth+1)
	stack[0] = engineFrame{idx: root, pfx: at}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(f.idx, f.pfx)
		n := &e.Nodes[f.idx]
		if c := n.Children[1]; c != NoChild {
			stack = append(stack, engineFrame{idx: c, pfx: f.pfx.Child(1)})
		}
		if c := n.Children[0]; c != NoChild {
			stack = append(stack, engineFrame{idx: c, pfx: f.pfx.Child(0)})
		}
	}
}

// dualFrame is one pending subtree pair of a DiffWalk traversal. An index of
// -1 marks a side on which the subtree is absent.
type dualFrame struct {
	a, b int32
	pfx  prefix.Prefix
}

// DiffWalk traverses two trees in lockstep, calling fn for every prefix whose
// node exists in either — except subtree pairs proven identical, which are
// skipped without descending. aIdx (in ea) and bIdx (in eb) are the two
// slab indices at that prefix; -1 marks the side where the node is absent.
// at is the prefix of both roots; visits arrive in canonical prefix order.
//
// The skip rule is SharedArena: when both engines carry the same lineage,
// equal indices mean byte-identical subtrees (path copying never rewrites a
// published node), so the walk touches only paths cloned between the two
// snapshots — O(changed · prefix bits), independent of table size. Engines
// from unrelated arenas share nothing provable and get the correct-but-linear
// full dual walk.
func DiffWalk[V any](ea, eb *Engine[V], rootA, rootB int32, at prefix.Prefix, fn func(aIdx, bIdx int32, p prefix.Prefix)) {
	if rootA < 0 && rootB < 0 {
		return
	}
	shared := ea.SharedArena(eb)
	if shared && rootA == rootB {
		return
	}
	stack := make([]dualFrame, 1, maxDepth+1)
	stack[0] = dualFrame{a: rootA, b: rootB, pfx: at}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(f.a, f.b, f.pfx)
		for bit := 1; bit >= 0; bit-- {
			ca, cb := int32(-1), int32(-1)
			if f.a >= 0 {
				if c := ea.Nodes[f.a].Children[bit]; c != NoChild {
					ca = c
				}
			}
			if f.b >= 0 {
				if c := eb.Nodes[f.b].Children[bit]; c != NoChild {
					cb = c
				}
			}
			if ca < 0 && cb < 0 {
				continue
			}
			if shared && ca == cb {
				continue // identical subtree on both sides
			}
			stack = append(stack, dualFrame{a: ca, b: cb, pfx: f.pfx.Child(uint8(bit))})
		}
	}
}

// BufPool recycles flat scratch buffers of one element type, bounded two
// ways: at most maxBufs buffers are retained, and buffers whose capacity
// exceeds maxCap elements are dropped rather than pooled. The bounds keep
// the pool's resident memory O(maxBufs · maxCap · sizeof(T)) even after a
// full-deployment run releases an outsized buffer — a sync.Pool would keep
// every released buffer alive until the next GC cycle. SlabPool is this
// pool instantiated for engine slabs; builders use it directly for their
// scratch arrays (rov's per-build terminal-index scratch).
type BufPool[T any] struct {
	mu      sync.Mutex
	bufs    [][]T
	maxBufs int
	maxCap  int
}

// NewBufPool returns a pool retaining at most maxBufs buffers of at most
// maxCap elements each.
func NewBufPool[T any](maxBufs, maxCap int) *BufPool[T] {
	return &BufPool[T]{maxBufs: maxBufs, maxCap: maxCap}
}

// Get pops a pooled buffer with length 0. It returns nil when the pool is
// empty or the popped buffer's capacity is below hint — the undersized
// buffer is dropped (one buffer's worth of GC churn) so the caller allocates
// at full size once instead of growing repeatedly.
func (p *BufPool[T]) Get(hint int) []T {
	p.mu.Lock()
	n := len(p.bufs)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	s := p.bufs[n-1]
	p.bufs[n-1] = nil
	p.bufs = p.bufs[:n-1]
	p.mu.Unlock()
	if cap(s) < hint {
		return nil
	}
	return s[:0]
}

// Put offers a buffer back to the pool. Oversized buffers and buffers beyond
// the retention bound are dropped.
func (p *BufPool[T]) Put(s []T) {
	if cap(s) == 0 || cap(s) > p.maxCap {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < p.maxBufs {
		p.bufs = append(p.bufs, s[:0])
	}
	p.mu.Unlock()
}

// Size returns the number of buffers currently retained.
func (p *BufPool[T]) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.bufs)
}

// SlabPool recycles Engine slabs of one payload type: a BufPool over
// Node[V], kept as its own named type because the slab is the engine's
// load-bearing allocation and call sites read better for it.
type SlabPool[V any] struct {
	p BufPool[Node[V]]
}

// NewSlabPool returns a pool retaining at most maxSlabs slabs of at most
// maxCap nodes each.
func NewSlabPool[V any](maxSlabs, maxCap int) *SlabPool[V] {
	return &SlabPool[V]{p: BufPool[Node[V]]{maxBufs: maxSlabs, maxCap: maxCap}}
}

// Get pops a pooled slab with length 0; see BufPool.Get for the bounds.
func (p *SlabPool[V]) Get(hint int) []Node[V] { return p.p.Get(hint) }

// Put offers a slab back to the pool; see BufPool.Put for the bounds.
func (p *SlabPool[V]) Put(s []Node[V]) { p.p.Put(s) }

// Size returns the number of slabs currently retained.
func (p *SlabPool[V]) Size() int { return p.p.Size() }
