package core

import (
	"math/rand"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// TestStrictMatchesLiteralOnGapFreeInputs: when every tuple's trie parent
// chain is gap-free (each present node's nearest present descendants sit
// exactly one bit below), the printed Algorithm 1 and the Strict variant are
// the same algorithm and must produce identical output. This is the regime
// §7.2 measures (minimal ROAs derived from announced sibling sets), which is
// why the paper's published numbers are reproducible with either variant.
func TestStrictMatchesLiteralOnGapFreeInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		// Build gap-free families: a base plus complete levels below it.
		var vrps []rpki.VRP
		for f := 0; f < 1+rng.Intn(8); f++ {
			l := uint8(8 + rng.Intn(12))
			base, err := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
			if err != nil {
				t.Fatal(err)
			}
			as := rpki.ASN(rng.Intn(2))
			depth := uint8(rng.Intn(3)) // 0..2 complete levels
			for d := uint8(0); d <= depth; d++ {
				for _, p := range base.Subprefixes(nil, l+d) {
					vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: p.Len(), AS: as})
				}
			}
		}
		in := rpki.NewSet(vrps)
		outStrict, resStrict := Compress(in, Options{Mode: Strict})
		outLiteral, resLiteral := Compress(in, Options{Mode: Literal})
		if !outStrict.Equal(outLiteral) {
			t.Fatalf("trial %d: variants disagree on a gap-free input\nstrict:  %v\nliteral: %v",
				trial, outStrict.VRPs(), outLiteral.VRPs())
		}
		if resStrict.Out != resLiteral.Out {
			t.Fatalf("trial %d: sizes differ: %d vs %d", trial, resStrict.Out, resLiteral.Out)
		}
		// And on gap-free inputs even Literal preserves semantics.
		if err := VerifyCompression(in, outLiteral); err != nil {
			t.Fatalf("trial %d: literal broke semantics on a gap-free input: %v", trial, err)
		}
	}
}

// TestLiteralDivergesOnGappedInput pins the counterexample from DESIGN.md:
// {p/19, p0../21, p1../20} — Literal merges across the 2-bit gap and
// authorizes a route the input never did; Strict must not.
func TestLiteralDivergesOnGappedInput(t *testing.T) {
	in := rpki.NewSet([]rpki.VRP{
		v("87.254.32.0/19", 19, 1),
		v("87.254.32.0/21", 21, 1),
		v("87.254.48.0/20", 20, 1),
	})
	outLit, _ := Compress(in, Options{Mode: Literal})
	ok, ce := SemanticEqual(in, outLit)
	if ok {
		t.Skip("literal algorithm did not merge on this Go ordering; counterexample not triggered")
	}
	if ce.AuthorizedA {
		t.Fatalf("literal mode REMOVED an authorization: %v", ce)
	}
	// The newly authorized route must be the unannounced left /20.
	if ce.Route.Prefix != mp("87.254.32.0/20") {
		t.Fatalf("unexpected counterexample %v, want the left /20", ce)
	}
	// Strict is safe on the same input.
	outStrict, _ := Compress(in, Options{Mode: Strict})
	if err := VerifyCompression(in, outStrict); err != nil {
		t.Fatal(err)
	}
}
