package core

import (
	"math/rand"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func v(p string, ml uint8, as rpki.ASN) rpki.VRP {
	return rpki.VRP{Prefix: mp(p), MaxLength: ml, AS: as}
}

func TestTrieInsertLookup(t *testing.T) {
	tr := NewTrie(111, prefix.IPv4)
	tr.Insert(mp("168.122.0.0/16"), 24)
	tr.Insert(mp("168.122.225.0/24"), 24)
	if tr.Size() != 2 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if ml, ok := tr.Lookup(mp("168.122.0.0/16")); !ok || ml != 24 {
		t.Errorf("Lookup /16 = %d, %v", ml, ok)
	}
	if _, ok := tr.Lookup(mp("168.122.0.0/17")); ok {
		t.Error("structural node reported present")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrieInsertDuplicateKeepsLargerMaxLength(t *testing.T) {
	tr := NewTrie(1, prefix.IPv4)
	tr.Insert(mp("10.0.0.0/8"), 10)
	tr.Insert(mp("10.0.0.0/8"), 16)
	tr.Insert(mp("10.0.0.0/8"), 12) // smaller: ignored
	if tr.Size() != 1 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if ml, _ := tr.Lookup(mp("10.0.0.0/8")); ml != 16 {
		t.Errorf("value = %d, want 16", ml)
	}
}

func TestTrieInsertPanics(t *testing.T) {
	tr := NewTrie(1, prefix.IPv4)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("family mismatch", func() { tr.Insert(mp("2001:db8::/32"), 32) })
	mustPanic("maxLength < len", func() { tr.Insert(mp("10.0.0.0/8"), 4) })
	mustPanic("VRP AS mismatch", func() { tr.InsertVRP(v("10.0.0.0/8", 8, 2)) })
}

func TestTrieAuthorizes(t *testing.T) {
	tr := NewTrie(111, prefix.IPv4)
	tr.Insert(mp("168.122.0.0/16"), 24)
	cases := []struct {
		q    string
		want bool
	}{
		{"168.122.0.0/16", true},
		{"168.122.225.0/24", true},
		{"168.122.0.0/25", false},
		{"168.0.0.0/8", false},
		{"10.0.0.0/8", false},
	}
	for _, c := range cases {
		if got := tr.Authorizes(mp(c.q)); got != c.want {
			t.Errorf("Authorizes(%s) = %v, want %v", c.q, got, c.want)
		}
	}
	if tr.Authorizes(mp("2001:db8::/32")) {
		t.Error("cross-family authorization")
	}
}

func TestTrieTuplesRoundTrip(t *testing.T) {
	in := []rpki.VRP{
		v("10.0.0.0/8", 8, 1),
		v("10.0.0.0/16", 24, 1),
		v("10.128.0.0/9", 9, 1),
	}
	tr := NewTrie(1, prefix.IPv4)
	for _, x := range in {
		tr.InsertVRP(x)
	}
	got := tr.Tuples(nil)
	if len(got) != 3 {
		t.Fatalf("Tuples = %v", got)
	}
	s1, s2 := rpki.NewSet(in), rpki.NewSet(got)
	if !s1.Equal(s2) {
		t.Errorf("round trip mismatch: %v vs %v", s1.VRPs(), s2.VRPs())
	}
}

func TestCountAuthorized(t *testing.T) {
	tr := NewTrie(1, prefix.IPv4)
	tr.Insert(mp("10.0.0.0/8"), 10)
	// /8 + 2 /9s + 4 /10s = 7.
	if n := tr.CountAuthorized(); n != 7 {
		t.Errorf("CountAuthorized = %d, want 7", n)
	}
	// Overlapping tuple must not double count: /9-10 under /8-10 adds nothing.
	tr.Insert(mp("10.0.0.0/9"), 10)
	if n := tr.CountAuthorized(); n != 7 {
		t.Errorf("CountAuthorized with overlap = %d, want 7", n)
	}
	// Deeper tuple extends the count: /9-11 adds 4 /11s under 10.0/9.
	tr2 := NewTrie(1, prefix.IPv4)
	tr2.Insert(mp("10.0.0.0/8"), 10)
	tr2.Insert(mp("10.0.0.0/9"), 11)
	if n := tr2.CountAuthorized(); n != 11 {
		t.Errorf("CountAuthorized extended = %d, want 11", n)
	}
}

func TestCountAuthorizedBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := NewTrie(1, prefix.IPv4)
		type tup struct {
			p  prefix.Prefix
			ml uint8
		}
		var tuples []tup
		for i := 0; i < 1+rng.Intn(6); i++ {
			l := uint8(rng.Intn(9)) // short prefixes keep brute force feasible
			p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
			ml := l + uint8(rng.Intn(int(12-l)))
			tr.Insert(p, ml)
			tuples = append(tuples, tup{p, ml})
		}
		// Brute force: count distinct authorized prefixes up to /12.
		want := uint64(0)
		var rec func(q prefix.Prefix)
		rec = func(q prefix.Prefix) {
			for _, x := range tuples {
				if x.p.Contains(q) && q.Len() <= x.ml {
					want++
					break
				}
			}
			if q.Len() < 12 {
				rec(q.Child(0))
				rec(q.Child(1))
			}
		}
		rec(mp("0.0.0.0/0"))
		if got := tr.CountAuthorized(); got != want {
			t.Fatalf("trial %d: CountAuthorized = %d, want %d (tuples %v)", trial, got, want, tuples)
		}
	}
}

func TestBuildTries(t *testing.T) {
	s := rpki.NewSet([]rpki.VRP{
		v("10.0.0.0/8", 8, 1),
		v("2001:db8::/32", 48, 1),
		v("10.0.0.0/8", 8, 2),
	})
	tries := BuildTries(s)
	if len(tries) != 3 {
		t.Fatalf("BuildTries = %d tries", len(tries))
	}
	for _, tr := range tries {
		if err := tr.checkInvariants(); err != nil {
			t.Error(err)
		}
		if tr.Size() != 1 {
			t.Errorf("trie (%v,%v) size %d", tr.AS(), tr.Family(), tr.Size())
		}
	}
	if tries[0].AS() != 1 || tries[0].Family() != prefix.IPv4 {
		t.Error("group order wrong")
	}
	if tries[1].Family() != prefix.IPv6 {
		t.Error("IPv6 trie missing")
	}
}

// TestGroupNodeHintExact instruments the trie pre-size hint: groupNodeHint
// must equal the built trie's node count exactly (ratio 1.0) on random
// sibling-heavy groups, where the previous estimator — Σ prefix bits — was a
// >2x overestimate. The logged ratios are recorded in ROADMAP.md.
func TestGroupNodeHintExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var sumOld, sumActual, sumHint float64
	groups := 0
	for trial := 0; trial < 40; trial++ {
		set := randomSet(rng, 50+rng.Intn(400))
		for _, g := range set.ByOrigin() {
			oldHint := 1
			for _, v := range g.VRPs {
				oldHint += int(v.Prefix.Len())
			}
			hint := groupNodeHint(g)
			tr := buildGroupTrie(g)
			actual := tr.eng.Len()
			if hint != actual {
				t.Fatalf("group %s/%s (%d VRPs): hint %d != actual %d nodes",
					g.AS, g.Family, len(g.VRPs), hint, actual)
			}
			if err := tr.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			tr.Release()
			sumOld += float64(oldHint)
			sumActual += float64(actual)
			sumHint += float64(hint)
			groups++
		}
	}
	t.Logf("%d groups: old Σ-bits hint/actual = %.2f, new lcp hint/actual = %.2f",
		groups, sumOld/sumActual, sumHint/sumActual)
}

// TestGroupNodeHintDuplicatesAndSingles covers the estimator's edge cases:
// a single VRP, duplicate prefixes with different maxLengths (contribute 0
// new nodes), and nested prefixes (contribute only their extra bits).
func TestGroupNodeHintDuplicatesAndSingles(t *testing.T) {
	cases := []struct {
		vrps []rpki.VRP
		want int
	}{
		{[]rpki.VRP{v("10.0.0.0/8", 8, 1)}, 9},
		{[]rpki.VRP{v("10.0.0.0/8", 8, 1), v("10.0.0.0/8", 16, 1)}, 9},
		{[]rpki.VRP{v("10.0.0.0/8", 8, 1), v("10.0.0.0/16", 16, 1)}, 17},
		{[]rpki.VRP{v("10.0.0.0/9", 9, 1), v("10.128.0.0/9", 9, 1)}, 11},
	}
	for _, c := range cases {
		set := rpki.NewSet(c.vrps)
		for _, g := range set.ByOrigin() {
			if got := groupNodeHint(g); got != c.want {
				t.Errorf("groupNodeHint(%v) = %d, want %d", c.vrps, got, c.want)
			}
			tr := buildGroupTrie(g)
			if tr.eng.Len() != c.want {
				t.Errorf("built trie for %v has %d nodes, want %d", c.vrps, tr.eng.Len(), c.want)
			}
			tr.Release()
		}
	}
}
