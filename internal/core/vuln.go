package core

import (
	"repro/internal/bgp"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file implements the forged-origin subprefix hijack analysis of §4 and
// the measurement of §6: "any prefix p in a ROA with maxLength m longer than
// p is vulnerable, unless every subprefix of p of length up to m is
// legitimately announced in BGP." A hijacker forges the authorized origin in
// its AS path and announces an authorized-but-unannounced subprefix; the
// route is RPKI-valid and, being the only route to that subprefix, attracts
// 100% of its traffic.

// Vulnerability describes one vulnerable VRP tuple.
type Vulnerability struct {
	VRP rpki.VRP
	// Witness is an authorized-but-unannounced route a hijacker could
	// announce (with a forged origin) to intercept traffic.
	Witness rpki.VRP
	// UnannouncedRoutes counts authorized (prefix, origin) routes under this
	// tuple that are not announced — the tuple's attack surface.
	UnannouncedRoutes uint64
	// Effective reports whether some witness route would actually win
	// longest-prefix-match traffic (see EffectivelyVulnerable); a tuple can
	// be nominally vulnerable yet attract no traffic when longer announced
	// prefixes fully tile it.
	Effective bool
}

// Report aggregates a vulnerability scan, mirroring §6's headline numbers.
type Report struct {
	Tuples          int // total tuples scanned
	UsingMaxLength  int // tuples with maxLength > prefix length ("12% of prefixes")
	Vulnerable      int // of those, tuples with unannounced authorized subprefixes ("84%")
	Effective       int // vulnerable tuples where a hijack would attract traffic
	Vulnerabilities []Vulnerability
}

// VulnerableShare returns Vulnerable/UsingMaxLength, the paper's "almost
// all" fraction.
func (r Report) VulnerableShare() float64 {
	if r.UsingMaxLength == 0 {
		return 0
	}
	return float64(r.Vulnerable) / float64(r.UsingMaxLength)
}

// MaxLengthShare returns UsingMaxLength/Tuples (§6: "about 12%").
func (r Report) MaxLengthShare() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.UsingMaxLength) / float64(r.Tuples)
}

// AnalyzeVulnerabilities scans every maxLength-using tuple of the set
// against the BGP table. When collect is false the per-tuple Vulnerabilities
// slice is left empty (the counters are always filled); large scans should
// pass collect=false.
func AnalyzeVulnerabilities(s *rpki.Set, table *bgp.Table, collect bool) Report {
	rep := Report{Tuples: s.Len()}
	for _, v := range s.VRPs() {
		if !v.UsesMaxLength() {
			continue
		}
		rep.UsingMaxLength++
		want := v.AuthorizedCount()
		got := uint64(table.WalkAnnouncedUnder(v.AS, v.Prefix, v.MaxLength, nil))
		if got >= want {
			continue // minimal: every authorized subprefix announced
		}
		rep.Vulnerable++
		vu := Vulnerability{VRP: v, UnannouncedRoutes: want - got}
		if w, ok := findUnannounced(v, table); ok {
			vu.Witness = w
			vu.Effective = hijackEffective(w.Prefix, table)
		}
		if vu.Effective {
			rep.Effective++
		}
		if collect {
			rep.Vulnerabilities = append(rep.Vulnerabilities, vu)
		}
	}
	return rep
}

// findUnannounced locates an authorized-but-unannounced route under v using
// the same deficit-descent as IsMinimal.
func findUnannounced(v rpki.VRP, table *bgp.Table) (rpki.VRP, bool) {
	q := v.Prefix
	for {
		if !table.Contains(q, v.AS) {
			return rpki.VRP{Prefix: q, MaxLength: q.Len(), AS: v.AS}, true
		}
		if q.Len() >= v.MaxLength {
			return rpki.VRP{}, false
		}
		descended := false
		for bit := uint8(0); bit < 2; bit++ {
			c := q.Child(bit)
			if uint64(table.WalkAnnouncedUnder(v.AS, c, v.MaxLength, nil)) < c.NumSubprefixesUpTo(v.MaxLength) {
				q = c
				descended = true
				break
			}
		}
		if !descended {
			return rpki.VRP{}, false
		}
	}
}

// hijackEffective reports whether announcing q would attract traffic for at
// least one address in q: some address in q must have no announced covering
// prefix of length >= q.Len() (longest-prefix match would then prefer the
// hijacker's q). Announced prefixes of any origin count — they keep carrying
// the traffic regardless of who announces them.
func hijackEffective(q prefix.Prefix, table *bgp.Table) bool {
	return !fullyTiled(q, table)
}

// fullyTiled reports whether announced prefixes of length >= q.Len() cover
// every address of q. The recursion descends only into untiled holes and is
// bounded by the number of announced prefixes under q plus the prefix depth.
func fullyTiled(q prefix.Prefix, table *bgp.Table) bool {
	if table.ContainsPrefix(q) {
		return true
	}
	if q.Len() >= q.MaxLen() {
		return false
	}
	// If no announced prefix lies strictly under q, q has an uncovered hole.
	if !table.AnyAnnouncedUnder(q) {
		return false
	}
	return fullyTiled(q.Child(0), table) && fullyTiled(q.Child(1), table)
}

// VulnerableAddressSpace returns the total number of addresses (IPv4) or
// /64s (IPv6) inside authorized-but-unannounced routes of the set — an
// exposure metric for operators, aggregated per origin AS. Results saturate
// at the uint64 maximum.
func VulnerableAddressSpace(s *rpki.Set, table *bgp.Table) map[rpki.ASN]uint64 {
	out := make(map[rpki.ASN]uint64)
	for _, v := range s.VRPs() {
		if !v.UsesMaxLength() {
			continue
		}
		unit := uint8(32) // IPv4: count addresses
		if v.Prefix.Family() == prefix.IPv6 {
			unit = 64 // IPv6: count /64s
		}
		if v.MaxLength > unit {
			continue
		}
		// Addresses covered by unannounced authorized subprefixes at the
		// deepest authorized level (maxLength): conservative lower bound on
		// exposed space — any unannounced maxLength-level subprefix can be
		// hijacked wholesale.
		total := v.Prefix.NumSubprefixes(v.MaxLength)
		announced := uint64(0)
		table.WalkAnnouncedUnder(v.AS, v.Prefix, v.MaxLength, func(q prefix.Prefix) {
			if q.Len() == v.MaxLength {
				announced++
			}
		})
		if announced >= total {
			continue
		}
		per := uint64(1) << (unit - v.MaxLength)
		exposure := (total - announced) * per
		if (total-announced) != 0 && exposure/(total-announced) != per {
			exposure = ^uint64(0) // overflow
		}
		out[v.AS] = satAdd(out[v.AS], exposure)
	}
	return out
}
