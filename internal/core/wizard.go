package core

import (
	"fmt"
	"io"

	"repro/internal/bgp"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file implements the §8 recommendation: RIR user interfaces should
// "steer operators towards configuring ROAs that (1) do not use maxLength
// and (2) are minimal, i.e. that explicitly enumerate the set of IP prefixes
// that an AS actually originates in BGP", using looking-glass data. Suggest
// builds that minimal ROA from a BGP table; Audit diffs an existing ROA
// against the suggestion and explains every discrepancy with its risk.

// Suggestion is a proposed minimal ROA for one origin AS, with an optional
// compressed form for operators who want fewer PDUs without vulnerability.
type Suggestion struct {
	AS rpki.ASN
	// Minimal is the recommended ROA: exactly the announced prefixes, no
	// maxLength.
	Minimal rpki.ROA
	// Compressed applies §7's algorithm to the minimal ROA; it authorizes
	// exactly the same routes with fewer entries.
	Compressed rpki.ROA
}

// Suggest builds the minimal-ROA suggestion for an AS from the BGP table.
// The bool reports whether the AS announces anything.
func Suggest(as rpki.ASN, table *bgp.Table) (Suggestion, bool) {
	prefixes := table.PrefixesOf(as)
	if len(prefixes) == 0 {
		return Suggestion{AS: as}, false
	}
	s := Suggestion{AS: as}
	for _, p := range prefixes {
		s.Minimal.Prefixes = append(s.Minimal.Prefixes, rpki.ROAPrefix{Prefix: p, MaxLength: p.Len()})
	}
	s.Minimal.AS = as
	compressed, _ := Compress(rpki.SetFromROAs([]rpki.ROA{s.Minimal}), Options{})
	s.Compressed.AS = as
	for _, v := range compressed.VRPs() {
		s.Compressed.Prefixes = append(s.Compressed.Prefixes, rpki.ROAPrefix{Prefix: v.Prefix, MaxLength: v.MaxLength})
	}
	return s, true
}

// FindingKind classifies one audit discrepancy.
type FindingKind int

// Audit finding kinds.
const (
	// VulnerableEntry: the entry authorizes unannounced routes — the §4
	// forged-origin subprefix hijack surface.
	VulnerableEntry FindingKind = iota
	// StaleEntry: the entry's own prefix is not announced at all.
	StaleEntry
	// MissingPrefix: the AS announces this prefix but no entry authorizes
	// it (its routes are Invalid at validating routers — §3's broken
	// de-aggregation).
	MissingPrefix
)

// String names the finding kind.
func (k FindingKind) String() string {
	switch k {
	case VulnerableEntry:
		return "VULNERABLE"
	case StaleEntry:
		return "STALE"
	case MissingPrefix:
		return "MISSING"
	default:
		return fmt.Sprintf("FindingKind(%d)", int(k))
	}
}

// Finding is one audit discrepancy.
type Finding struct {
	Kind   FindingKind
	Entry  rpki.ROAPrefix // the offending ROA entry (Vulnerable/Stale)
	Prefix prefix.Prefix  // the affected prefix (Missing: the announcement)
	Detail string
}

// Audit compares an operator's ROA against what the AS actually announces
// and returns the discrepancies, worst first.
func Audit(roa rpki.ROA, table *bgp.Table) []Finding {
	var out []Finding
	set := rpki.SetFromROAs([]rpki.ROA{roa})
	for _, entry := range roa.Prefixes {
		v := rpki.VRP{Prefix: entry.Prefix, MaxLength: entry.MaxLength, AS: roa.AS}
		want := v.AuthorizedCount()
		got := uint64(table.WalkAnnouncedUnder(roa.AS, entry.Prefix, entry.MaxLength, nil))
		switch {
		case got == 0:
			out = append(out, Finding{
				Kind:  StaleEntry,
				Entry: entry,
				Detail: fmt.Sprintf("no announcement by %s under %s; remove the entry or announce the prefix",
					roa.AS, entry),
			})
		case got < want:
			w, _ := findUnannounced(v, table)
			out = append(out, Finding{
				Kind:   VulnerableEntry,
				Entry:  entry,
				Prefix: w.Prefix,
				Detail: fmt.Sprintf("%d authorized routes are unannounced (e.g. %s); a forged-origin subprefix hijack on any of them captures 100%% of its traffic",
					want-got, w.Prefix),
			})
		}
	}
	// Announced prefixes with no matching authorization.
	for _, p := range table.PrefixesOf(roa.AS) {
		authorized := false
		for _, v := range set.VRPs() {
			if v.Matches(p, roa.AS) {
				authorized = true
				break
			}
		}
		if !authorized {
			out = append(out, Finding{
				Kind:   MissingPrefix,
				Prefix: p,
				Detail: fmt.Sprintf("announced by %s but not authorized; validating routers drop it as Invalid", roa.AS),
			})
		}
	}
	// Worst first: vulnerable, then missing, then stale.
	order := map[FindingKind]int{VulnerableEntry: 0, MissingPrefix: 1, StaleEntry: 2}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && order[out[j].Kind] < order[out[j-1].Kind]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RenderSuggestion writes the suggestion the way an RIR portal should
// present it (§8): the minimal ROA first, the compressed alternative, and
// an explicit warning gate before any maxLength use.
func RenderSuggestion(w io.Writer, s Suggestion) error {
	if _, err := fmt.Fprintf(w, "Suggested minimal ROA for %s (from BGP looking-glass data):\n", s.AS); err != nil {
		return err
	}
	for _, e := range s.Minimal.Prefixes {
		if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
			return err
		}
	}
	if len(s.Compressed.Prefixes) < len(s.Minimal.Prefixes) {
		if _, err := fmt.Fprintf(w, "Equivalent compressed form (%d -> %d entries, still minimal):\n",
			len(s.Minimal.Prefixes), len(s.Compressed.Prefixes)); err != nil {
			return err
		}
		for _, e := range s.Compressed.Prefixes {
			if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "WARNING: configuring a maxLength beyond these entries authorizes routes\n"+
		"%s does not announce and exposes them to forged-origin subprefix hijacks.\n", s.AS)
	return err
}
