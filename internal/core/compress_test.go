package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// TestFigure2Golden reproduces Figure 2 of the paper exactly: the minimal
// ROAs of AS 31283 compress from four tuples to two.
func TestFigure2Golden(t *testing.T) {
	in := rpki.NewSet([]rpki.VRP{
		v("87.254.32.0/19", 19, 31283),
		v("87.254.32.0/20", 20, 31283),
		v("87.254.48.0/20", 20, 31283),
		v("87.254.32.0/21", 21, 31283),
	})
	for _, mode := range []Mode{Strict, Literal} {
		out, res := Compress(in, Options{Mode: mode})
		if out.Len() != 2 {
			t.Fatalf("mode %v: compressed to %d tuples, want 2: %v", mode, out.Len(), out.VRPs())
		}
		want := rpki.NewSet([]rpki.VRP{
			v("87.254.32.0/19", 20, 31283), // 87.254.32.0/19-20
			v("87.254.32.0/21", 21, 31283),
		})
		if !out.Equal(want) {
			t.Fatalf("mode %v: got %v, want %v", mode, out.VRPs(), want.VRPs())
		}
		if res.In != 4 || res.Out != 2 || res.Merged != 2 || res.Raised != 1 {
			t.Errorf("mode %v: result = %+v", mode, res)
		}
		if err := VerifyCompression(in, out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompressDoesNotProduceFigure2NonMinimal checks the explicit
// non-example of §7: the compressor must NOT emit (87.254.32.0/19-21),
// which would be vulnerable on 87.254.40.0/21.
func TestCompressDoesNotProduceFigure2NonMinimal(t *testing.T) {
	in := rpki.NewSet([]rpki.VRP{
		v("87.254.32.0/19", 19, 31283),
		v("87.254.32.0/20", 20, 31283),
		v("87.254.48.0/20", 20, 31283),
		v("87.254.32.0/21", 21, 31283),
	})
	out, _ := Compress(in, Options{})
	for _, x := range out.VRPs() {
		if x.Prefix == mp("87.254.32.0/19") && x.MaxLength >= 21 {
			t.Fatalf("compressor emitted the vulnerable tuple %v", x)
		}
	}
	// The forged-origin target must remain unauthorized.
	hijack := mp("87.254.40.0/21")
	for _, x := range out.VRPs() {
		if x.Matches(hijack, 31283) {
			t.Fatalf("compressed set authorizes the hijacker's %s via %v", hijack, x)
		}
	}
}

func TestCompressFullSubtree(t *testing.T) {
	// A complete 2-level de-aggregation collapses to a single tuple.
	in := rpki.NewSet([]rpki.VRP{
		v("10.0.0.0/8", 8, 1),
		v("10.0.0.0/9", 9, 1),
		v("10.128.0.0/9", 9, 1),
		v("10.0.0.0/10", 10, 1),
		v("10.64.0.0/10", 10, 1),
		v("10.128.0.0/10", 10, 1),
		v("10.192.0.0/10", 10, 1),
	})
	out, res := Compress(in, Options{})
	if out.Len() != 1 {
		t.Fatalf("got %d tuples: %v", out.Len(), out.VRPs())
	}
	got := out.VRPs()[0]
	if got != v("10.0.0.0/8", 10, 1) {
		t.Fatalf("got %v, want 10.0.0.0/8-10", got)
	}
	if res.Merged != 6 {
		t.Errorf("Merged = %d, want 6", res.Merged)
	}
	if err := VerifyCompression(in, out); err != nil {
		t.Fatal(err)
	}
}

func TestCompressNoMergeAcrossGap(t *testing.T) {
	// /19 with a /21 on the left branch and /20 on the right: the literal
	// algorithm merges across the gap and breaks semantics; Strict must not.
	in := rpki.NewSet([]rpki.VRP{
		v("87.254.32.0/19", 19, 1),
		v("87.254.32.0/21", 21, 1), // left branch, 2 bits down
		v("87.254.48.0/20", 20, 1), // right branch, 1 bit down
	})
	outStrict, _ := Compress(in, Options{Mode: Strict})
	if err := VerifyCompression(in, outStrict); err != nil {
		t.Fatalf("Strict broke semantics: %v", err)
	}
	if outStrict.Len() != 3 {
		t.Errorf("Strict should not merge here, got %v", outStrict.VRPs())
	}
	outLit, _ := Compress(in, Options{Mode: Literal})
	if err := VerifyCompression(in, outLit); err == nil {
		t.Log("note: literal algorithm happened to preserve semantics on this input")
	} else {
		// Expected: the literal algorithm authorizes 87.254.32.0/20.
		if ok, ce := SemanticEqual(in, outLit); ok || ce == nil || !ce.AuthorizedA == true {
			if ce != nil && ce.AuthorizedA {
				t.Errorf("unexpected counterexample direction: %v", ce)
			}
		}
	}
}

func TestCompressSiblingsWithoutParentNotMerged(t *testing.T) {
	// Both /17s announced but no /16 tuple: merging would authorize the /16
	// itself, so nothing may happen.
	in := rpki.NewSet([]rpki.VRP{
		v("168.122.0.0/17", 17, 111),
		v("168.122.128.0/17", 17, 111),
	})
	out, res := Compress(in, Options{})
	if !out.Equal(in) || res.Merged != 0 {
		t.Fatalf("sibling-only merge happened: %v", out.VRPs())
	}
}

func TestCompressChainedMerge(t *testing.T) {
	// Full 3-level tree with heterogeneous values merges bottom-up.
	in := rpki.NewSet([]rpki.VRP{
		v("10.0.0.0/8", 8, 1),
		v("10.0.0.0/9", 9, 1),
		v("10.128.0.0/9", 9, 1),
	})
	out, _ := Compress(in, Options{})
	want := rpki.NewSet([]rpki.VRP{v("10.0.0.0/8", 9, 1)})
	if !out.Equal(want) {
		t.Fatalf("got %v, want 10.0.0.0/8-9", out.VRPs())
	}
}

func TestCompressPerASIsolation(t *testing.T) {
	// Identical structure under two ASes must compress independently.
	in := rpki.NewSet([]rpki.VRP{
		v("10.0.0.0/8", 8, 1), v("10.0.0.0/9", 9, 1), v("10.128.0.0/9", 9, 1),
		v("10.0.0.0/9", 9, 2), v("10.128.0.0/9", 9, 2), // no parent for AS 2
	})
	out, _ := Compress(in, Options{})
	if out.Len() != 3 {
		t.Fatalf("got %v", out.VRPs())
	}
	if err := VerifyCompression(in, out); err != nil {
		t.Fatal(err)
	}
}

func TestCompressSubsumptionOption(t *testing.T) {
	in := rpki.NewSet([]rpki.VRP{
		v("10.0.0.0/8", 24, 1),
		v("10.5.0.0/16", 20, 1), // entirely inside 10.0.0.0/8-24
	})
	out, res := Compress(in, Options{})
	if out.Len() != 2 {
		t.Fatalf("paper algorithm should not subsume one-sided: %v", out.VRPs())
	}
	out2, res2 := Compress(in, Options{Subsumption: true})
	if out2.Len() != 1 || res2.Subsumed != 1 {
		t.Fatalf("subsumption pass failed: %v (%+v)", out2.VRPs(), res2)
	}
	if err := VerifyCompression(in, out2); err != nil {
		t.Fatal(err)
	}
	if res.Subsumed != 0 {
		t.Errorf("default run reported subsumption: %+v", res)
	}
}

func TestCompressIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		in := randomSet(rng, 40)
		out1, _ := Compress(in, Options{})
		out2, _ := Compress(out1, Options{})
		if !out1.Equal(out2) {
			t.Fatalf("not idempotent:\nfirst  %v\nsecond %v", out1.VRPs(), out2.VRPs())
		}
	}
}

// randomSet builds a random VRP set biased toward sibling structure so
// merges actually occur.
func randomSet(rng *rand.Rand, n int) *rpki.Set {
	var vrps []rpki.VRP
	for i := 0; i < n; i++ {
		l := uint8(6 + rng.Intn(16))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		ml := l + uint8(rng.Intn(4))
		if ml > 32 {
			ml = 32
		}
		as := rpki.ASN(rng.Intn(3))
		vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: ml, AS: as})
		// With probability 1/2 add the sibling and parent to create mergeable
		// structure.
		if rng.Intn(2) == 0 && l > 0 {
			vrps = append(vrps,
				rpki.VRP{Prefix: p.Sibling(), MaxLength: ml, AS: as},
				rpki.VRP{Prefix: p.Parent(), MaxLength: p.Parent().Len(), AS: as})
		}
	}
	return rpki.NewSet(vrps)
}

// TestCompressStrictPreservesSemantics is the paper's central safety claim,
// checked with the exact verifier over randomized inputs.
func TestCompressStrictPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		in := randomSet(rng, 30)
		for _, opts := range []Options{{}, {Subsumption: true}} {
			out, res := Compress(in, opts)
			if ok, ce := SemanticEqual(in, out); !ok {
				t.Fatalf("trial %d opts %+v: semantics changed: %s\nin:  %v\nout: %v",
					trial, opts, ce, in.VRPs(), out.VRPs())
			}
			if res.Out > res.In {
				t.Fatalf("compression grew the set: %+v", res)
			}
		}
	}
}

// TestCompressNeverAuthorizesMore verifies one direction for the Literal
// mode too: even the literal algorithm never *removes* authorizations (it
// can only add, which is exactly its flaw).
func TestCompressLiteralNeverRemovesAuthorizations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		in := randomSet(rng, 25)
		out, _ := Compress(in, Options{Mode: Literal})
		// Every input tuple's own route must stay authorized.
		tries := BuildTries(out)
		trieFor := func(as rpki.ASN, fam prefix.Family) *Trie {
			for _, tr := range tries {
				if tr.AS() == as && tr.Family() == fam {
					return tr
				}
			}
			return nil
		}
		for _, x := range in.VRPs() {
			tr := trieFor(x.AS, x.Prefix.Family())
			if tr == nil || !tr.Authorizes(x.Prefix) {
				t.Fatalf("trial %d: literal compression lost %v", trial, x)
			}
		}
	}
}

func TestSavedFraction(t *testing.T) {
	r := Result{In: 100, Out: 84}
	if got := r.SavedFraction(); got < 0.1599 || got > 0.1601 {
		t.Errorf("SavedFraction = %v", got)
	}
	if (Result{}).SavedFraction() != 0 {
		t.Error("empty result fraction should be 0")
	}
}

func TestCompressEmptyAndSingle(t *testing.T) {
	empty, res := Compress(rpki.NewSet(nil), Options{})
	if empty.Len() != 0 || res.In != 0 || res.Out != 0 {
		t.Error("empty set mishandled")
	}
	one := rpki.NewSet([]rpki.VRP{v("10.0.0.0/8", 8, 1)})
	out, _ := Compress(one, Options{})
	if !out.Equal(one) {
		t.Error("singleton changed")
	}
}

func TestCompressQuick(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) > 24 {
			seeds = seeds[:24]
		}
		var vrps []rpki.VRP
		for _, s := range seeds {
			l := uint8(4 + s%20)
			p, err := prefix.Make(prefix.IPv4, uint64(s)<<32, 0, l)
			if err != nil {
				return false
			}
			ml := l + uint8((s>>8)%3)
			if ml > 32 {
				ml = 32
			}
			vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(s % 2)})
		}
		in := rpki.NewSet(vrps)
		out, _ := Compress(in, Options{Subsumption: true})
		ok, _ := SemanticEqual(in, out)
		return ok && out.Len() <= in.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// manyTrieSet builds one mergeable (parent + both children) family per AS so
// the set fans out into count independent tries.
func manyTrieSet(rng *rand.Rand, count int) *rpki.Set {
	var vrps []rpki.VRP
	for as := 1; as <= count; as++ {
		l := uint8(8 + rng.Intn(10))
		p, err := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		if err != nil {
			panic(err)
		}
		vrps = append(vrps,
			rpki.VRP{Prefix: p, MaxLength: l, AS: rpki.ASN(as)},
			rpki.VRP{Prefix: p.Child(0), MaxLength: l + 1, AS: rpki.ASN(as)},
			rpki.VRP{Prefix: p.Child(1), MaxLength: l + 1, AS: rpki.ASN(as)})
	}
	return rpki.NewSet(vrps)
}

// TestCompressParallelismTwoManyTries is the worker-pool regression test:
// Parallelism: 2 over hundreds of tries must produce output and statistics
// identical to sequential mode — the guarantee in the Options doc comment.
func TestCompressParallelismTwoManyTries(t *testing.T) {
	in := manyTrieSet(rand.New(rand.NewSource(97)), 400)
	seq, seqRes := Compress(in, Options{})
	par, parRes := Compress(in, Options{Parallelism: 2})
	if !seq.Equal(par) {
		t.Fatalf("Parallelism 2 output differs from sequential\nseq: %v\npar: %v",
			seq.VRPs(), par.VRPs())
	}
	if seqRes != parRes {
		t.Fatalf("stats differ: %+v vs %+v", seqRes, parRes)
	}
	if err := VerifyCompression(in, par); err != nil {
		t.Fatal(err)
	}
}

// TestCompressParallelismBoundsWorkers asserts that Compress with
// Parallelism: N never has more than N compression goroutines in flight —
// the fixed worker pool, unlike the former goroutine-per-trie fan-out, caps
// goroutine count and not just concurrent work.
func TestCompressParallelismBoundsWorkers(t *testing.T) {
	const limit = 3
	var inflight, peak atomic.Int32
	testHookCompress = func(entering bool) {
		if !entering {
			inflight.Add(-1)
			return
		}
		n := inflight.Add(1)
		for {
			m := peak.Load()
			if n <= m || peak.CompareAndSwap(m, n) {
				break
			}
		}
		// Hold the slot briefly so overlapping workers actually overlap.
		time.Sleep(50 * time.Microsecond)
	}
	defer func() { testHookCompress = nil }()
	in := manyTrieSet(rand.New(rand.NewSource(101)), 300)
	Compress(in, Options{Parallelism: limit})
	if got := peak.Load(); got > limit {
		t.Fatalf("%d compression goroutines in flight, limit %d", got, limit)
	} else if got < 2 {
		t.Logf("peak concurrency %d; pool never overlapped (slow machine?)", got)
	}
}

func TestCompressParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		in := randomSet(rng, 60)
		seq, seqRes := Compress(in, Options{})
		par, parRes := Compress(in, Options{Parallelism: 8})
		if !seq.Equal(par) {
			t.Fatalf("trial %d: parallel output differs\nseq: %v\npar: %v",
				trial, seq.VRPs(), par.VRPs())
		}
		if seqRes.Merged != parRes.Merged || seqRes.Raised != parRes.Raised {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, seqRes, parRes)
		}
	}
}
