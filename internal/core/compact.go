package core

import (
	"fmt"

	"repro/internal/prefix"
)

// This file is the path-compressed sibling of the bit-at-a-time Engine: the
// same contiguous-slab, int32-index discipline, but a node exists only where
// the key space actually branches or carries a payload. Each CNode stores its
// full masked key (not just the skip count), so following a compressed edge
// verifies all skipped bits with one xor-shift compare instead of a per-bit
// walk — a lookup visits O(branch points on the path) nodes, typically a
// handful, instead of O(prefix bits).
//
// Construction is different from Engine on purpose: a compact trie is built
// once from a canonically sorted key stream (CompactBuilder) and then frozen.
// There is no path-copied update — rov.LiveIndex keeps the bit-at-a-time
// engine for O(delta) updates and rebuilds a compact structure at compaction
// points, where the whole table is walked anyway.

// CNode is one vertex of a CompactEngine: the node's full key (left-aligned
// 128-bit address plus bit length, exactly a prefix.Prefix worth of bits),
// two child slab indices, and a payload. Children are strictly deeper
// (longer PLen) than their parent; the bits between a parent's PLen and a
// child's PLen are the compressed edge, recovered from the child's key.
type CNode[V any] struct {
	Hi, Lo   uint64
	Children [2]int32
	Val      V
	PLen     uint8
}

// Key returns the node's key as a Prefix.
func (n *CNode[V]) Key(fam prefix.Family) prefix.Prefix {
	p, err := prefix.Make(fam, n.Hi, n.Lo, n.PLen)
	if err != nil {
		panic(err) // unreachable: node keys are built from valid prefixes
	}
	return p
}

// CompactEngine is a contiguous-slab path-compressed prefix tree over payload
// type V. The zero CompactEngine is empty and unusable; call Init first.
// As with Engine, slab index 0 is the root (always the /0 key) and doubles as
// the NoChild sentinel — node 0 is never anyone's child.
type CompactEngine[V any] struct {
	// Nodes is the slab. Callers index it directly on hot paths; they must
	// not reslice or reassign it.
	Nodes []CNode[V]
}

// Init readies the engine with capacity for at least hint nodes and installs
// the reserved root node 0 (key /0) carrying payload root.
func (e *CompactEngine[V]) Init(hint int, root V) {
	nodes := make([]CNode[V], 0, hint+1)
	e.Nodes = append(nodes, CNode[V]{Val: root})
}

// Len returns the number of slab nodes, including the root.
func (e *CompactEngine[V]) Len() int { return len(e.Nodes) }

// Alloc appends a fresh node keyed by p with payload v and no children.
func (e *CompactEngine[V]) Alloc(p prefix.Prefix, v V) int32 {
	hi, lo := p.Bits()
	idx := int32(len(e.Nodes))
	e.Nodes = append(e.Nodes, CNode[V]{Hi: hi, Lo: lo, PLen: p.Len(), Val: v})
	return idx
}

// Walk visits every node reachable from root in pre-order of the key space,
// which for keys inserted in canonical prefix order is canonical prefix
// order, calling fn with each node's slab index. The traversal is iterative
// and its stack never exceeds the tree height.
func (e *CompactEngine[V]) Walk(root int32, fn func(idx int32)) {
	stack := make([]int32, 1, maxDepth+1)
	stack[0] = root
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(idx)
		n := &e.Nodes[idx]
		if c := n.Children[1]; c != NoChild {
			stack = append(stack, c)
		}
		if c := n.Children[0]; c != NoChild {
			stack = append(stack, c)
		}
	}
}

// AddrBit returns bit i (0 = most significant) of a left-aligned 128-bit
// address. Unlike Prefix.Bit it does no family bounds check: callers on the
// compact hot path guarantee i < MaxLen themselves.
func AddrBit(hi, lo uint64, i uint8) uint8 {
	if i < 64 {
		return uint8(hi >> (63 - i) & 1)
	}
	return uint8(lo >> (127 - i) & 1)
}

// CompactBuilder grows a CompactEngine from keys arriving in canonical
// prefix order (prefix.Prefix.Compare), the order Engine.Walk and
// rov.Index.AppendVRPs emit. The classic online patricia construction:
// because every later key sorts after every earlier one, new nodes attach
// only along the right spine, which the builder keeps as an explicit stack —
// each Add pops to the divergence point, splices at most one branch node,
// and appends the new key. Total cost is O(keys) amortized.
type CompactBuilder[V any] struct {
	Eng *CompactEngine[V]

	// stack is the right spine: the path from the root to the most recently
	// added node, as slab indices. Node keys are read back from the slab.
	stack []int32
	prev  prefix.Prefix
}

// Reset points the builder at eng, (re)initializes eng for the family with
// room for hint nodes, and installs the /0 root carrying rootVal.
func (b *CompactBuilder[V]) Reset(eng *CompactEngine[V], hint int, fam prefix.Family, rootVal V) {
	root, err := prefix.Make(fam, 0, 0, 0)
	if err != nil {
		panic(err) // unreachable: /0 is valid for both families
	}
	eng.Init(hint, rootVal)
	b.Eng = eng
	b.stack = append(b.stack[:0], 0)
	b.prev = root
}

// Add inserts key p — which must not sort before the previous Add's key in
// canonical order — creating its node with payload def if absent, and
// returns the node's slab index. Repeating the previous key returns the same
// node. Out-of-order keys panic: silent acceptance would corrupt the trie.
func (b *CompactBuilder[V]) Add(p prefix.Prefix, def V) int32 {
	if p == b.prev {
		return b.stack[len(b.stack)-1]
	}
	if p.Compare(b.prev) < 0 {
		panic(fmt.Sprintf("core: CompactBuilder.Add out of order: %s after %s", p, b.prev))
	}
	e := b.Eng
	d := prefix.CommonPrefixLen(p, b.prev)
	// Pop spine nodes deeper than the divergence point. popped remembers the
	// shallowest one: if the divergence falls mid-edge, it becomes the spliced
	// branch node's child.
	popped := NoChild
	for e.Nodes[b.stack[len(b.stack)-1]].PLen > d {
		popped = b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
	}
	top := b.stack[len(b.stack)-1]
	if topLen := e.Nodes[top].PLen; topLen < d {
		// The divergence point sits inside the compressed edge top→popped:
		// splice a branch node there. Its key is p's (== prev's) first d bits.
		hi, lo := p.Bits()
		bp, err := prefix.Make(p.Family(), hi, lo, d)
		if err != nil {
			panic(err) // unreachable: d <= p.Len() <= MaxLen
		}
		br := e.Alloc(bp, def)
		ph, pl := e.Nodes[popped].Hi, e.Nodes[popped].Lo
		e.Nodes[br].Children[AddrBit(ph, pl, d)] = popped
		e.Nodes[top].Children[bp.Bit(topLen)] = br
		b.stack = append(b.stack, br)
		top = br
	}
	// Attach p below top (top's key length is now exactly d < p.Len()).
	topLen := e.Nodes[top].PLen
	n := e.Alloc(p, def)
	e.Nodes[top].Children[p.Bit(topLen)] = n
	b.stack = append(b.stack, n)
	b.prev = p
	return n
}
