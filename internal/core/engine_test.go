package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file differentially tests the arena trie engine against refImpl, a
// deliberately naive reference: a flat tuple list answering every query by
// linear scan (and authorized-space counting by exhaustive enumeration). The
// two implementations share nothing but the VRP semantics, so agreement over
// seeded random workloads pins the engine's Lookup, Authorizes and
// CountAuthorized behavior independently of its slab/index representation.

// refImpl is the reference model of one (AS, family) tuple set.
type refImpl struct {
	tuples []rpki.VRP
}

func (r *refImpl) insert(p prefix.Prefix, ml uint8) {
	for i, t := range r.tuples {
		if t.Prefix == p {
			if ml > t.MaxLength {
				r.tuples[i].MaxLength = ml
			}
			return
		}
	}
	r.tuples = append(r.tuples, rpki.VRP{Prefix: p, MaxLength: ml})
}

func (r *refImpl) lookup(p prefix.Prefix) (uint8, bool) {
	for _, t := range r.tuples {
		if t.Prefix == p {
			return t.MaxLength, true
		}
	}
	return 0, false
}

func (r *refImpl) authorizes(q prefix.Prefix) bool {
	for _, t := range r.tuples {
		if t.Prefix.Family() == q.Family() && t.Prefix.Contains(q) && t.MaxLength >= q.Len() {
			return true
		}
	}
	return false
}

// countAuthorized enumerates every prefix of the family up to depth limit
// and counts the authorized ones. Exponential in limit; callers keep all
// maxLengths <= limit so the count equals the engine's unbounded one.
func (r *refImpl) countAuthorized(fam prefix.Family, limit uint8) uint64 {
	root, err := prefix.Make(fam, 0, 0, 0)
	if err != nil {
		panic(err)
	}
	var count uint64
	var rec func(q prefix.Prefix)
	rec = func(q prefix.Prefix) {
		if r.authorizes(q) {
			count++
		}
		if q.Len() < limit {
			rec(q.Child(0))
			rec(q.Child(1))
		}
	}
	rec(root)
	return count
}

// randomEngineTuples draws tuples shallow enough (maxLength <= limit) that
// the reference's exhaustive count stays feasible.
func randomEngineTuples(rng *rand.Rand, fam prefix.Family, n int, limit uint8) []rpki.VRP {
	var out []rpki.VRP
	for i := 0; i < n; i++ {
		l := uint8(rng.Intn(int(limit)))
		hi := rng.Uint64()
		lo := uint64(0)
		if fam == prefix.IPv4 {
			hi &= 0xffffffff00000000
		} else {
			lo = rng.Uint64()
		}
		p, err := prefix.Make(fam, hi, lo, l)
		if err != nil {
			panic(err)
		}
		ml := l + uint8(rng.Intn(int(limit-l)+1))
		out = append(out, rpki.VRP{Prefix: p, MaxLength: ml})
	}
	return out
}

func TestEngineDifferential(t *testing.T) {
	const limit = 12
	rng := rand.New(rand.NewSource(2017))
	for trial := 0; trial < 150; trial++ {
		fam := prefix.IPv4
		if trial%4 == 3 {
			fam = prefix.IPv6
		}
		const as = rpki.ASN(64500)
		tuples := randomEngineTuples(rng, fam, 1+rng.Intn(10), limit)
		tr := NewTrie(as, fam)
		var ref refImpl
		for _, x := range tuples {
			tr.Insert(x.Prefix, x.MaxLength)
			ref.insert(x.Prefix, x.MaxLength)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.Size() != len(ref.tuples) {
			t.Fatalf("trial %d: Size = %d, reference has %d", trial, tr.Size(), len(ref.tuples))
		}
		// Lookup and Authorizes on the inserted prefixes, their neighborhood,
		// and fresh random probes.
		var probes []prefix.Prefix
		for _, x := range tuples {
			probes = append(probes, x.Prefix)
			if x.Prefix.Len() > 0 {
				probes = append(probes, x.Prefix.Parent(), x.Prefix.Sibling())
			}
			probes = append(probes, x.Prefix.Child(uint8(rng.Intn(2))))
		}
		for _, x := range randomEngineTuples(rng, fam, 10, limit+4) {
			probes = append(probes, x.Prefix)
		}
		for _, q := range probes {
			gotML, gotOK := tr.Lookup(q)
			wantML, wantOK := ref.lookup(q)
			if gotOK != wantOK || (gotOK && gotML != wantML) {
				t.Fatalf("trial %d: Lookup(%s) = (%d,%v), reference (%d,%v)",
					trial, q, gotML, gotOK, wantML, wantOK)
			}
			if got, want := tr.Authorizes(q), ref.authorizes(q); got != want {
				t.Fatalf("trial %d: Authorizes(%s) = %v, reference %v", trial, q, got, want)
			}
		}
		if got, want := tr.CountAuthorized(), ref.countAuthorized(fam, limit); got != want {
			t.Fatalf("trial %d: CountAuthorized = %d, reference %d (tuples %v)",
				trial, got, want, ref.tuples)
		}
		// Compression over the same tuples must preserve semantics exactly
		// (checked by the independent merged-trie verifier) and, per trie,
		// preserve the authorized route count.
		withAS := make([]rpki.VRP, len(tuples))
		for i, x := range tuples {
			x.AS = as
			withAS[i] = x
		}
		in := rpki.NewSet(withAS)
		for _, opts := range []Options{{}, {Subsumption: true}, {Parallelism: 2}} {
			out, res := Compress(in, opts)
			if ok, ce := SemanticEqual(in, out); !ok {
				t.Fatalf("trial %d opts %+v: compression changed semantics: %s", trial, opts, ce)
			}
			if res.Out > res.In {
				t.Fatalf("trial %d: compression grew the set: %+v", trial, res)
			}
			ctr := NewTrie(as, fam)
			for _, x := range out.VRPs() {
				ctr.InsertVRP(x)
			}
			if got := ctr.CountAuthorized(); got != tr.CountAuthorized() {
				t.Fatalf("trial %d opts %+v: authorized count changed %d -> %d",
					trial, opts, tr.CountAuthorized(), got)
			}
		}
	}
}

// TestTrieRelease covers the slab free-reuse path: a released slab is
// recycled by a later trie and the recycled trie behaves like a fresh one.
func TestTrieRelease(t *testing.T) {
	tr := NewTrie(1, prefix.IPv4)
	tr.Insert(mp("10.0.0.0/8"), 16)
	tr.Insert(mp("192.168.0.0/16"), 24)
	tr.Release()
	tr2 := newTrieCap(2, prefix.IPv4, 4)
	tr2.Insert(mp("10.0.0.0/8"), 8)
	if err := tr2.checkInvariants(); err != nil {
		t.Fatalf("recycled trie: %v", err)
	}
	if tr2.Size() != 1 {
		t.Fatalf("recycled trie size = %d", tr2.Size())
	}
	if ml, ok := tr2.Lookup(mp("10.0.0.0/8")); !ok || ml != 8 {
		t.Fatalf("recycled trie Lookup = %d, %v", ml, ok)
	}
	if _, ok := tr2.Lookup(mp("192.168.0.0/16")); ok {
		t.Fatal("recycled trie leaked a tuple from its previous life")
	}
}

// TestReleaseRecyclesAllSlabs pins the pool mechanics: releasing N tries
// back-to-back must make all N slabs recoverable, not just the last (a
// regression where Release overwrote the previously pooled slab). The
// bounded SlabPool is deterministic (unlike the sync.Pool it replaced), so
// every released slab below the retention bound must come back.
func TestReleaseRecyclesAllSlabs(t *testing.T) {
	for trieSlabs.Get(0) != nil {
	} // drain slabs pooled by earlier tests
	tries := make([]*Trie, 16)
	for i := range tries {
		tr := NewTrie(1, prefix.IPv4)
		tr.Insert(mp("10.0.0.0/8"), 8)
		tries[i] = tr
	}
	ReleaseTries(tries)
	if got := trieSlabs.Size(); got != len(tries) {
		t.Fatalf("pool retained %d of %d released slabs", got, len(tries))
	}
	got := 0
	for trieSlabs.Get(0) != nil {
		got++
	}
	if got != len(tries) {
		t.Fatalf("recovered %d of %d released slabs from the pool", got, len(tries))
	}
}

// TestSlabPoolBounds covers the pool's two eviction boundaries: the
// retention count (maxSlabs) and the per-slab capacity cap (maxCap).
func TestSlabPoolBounds(t *testing.T) {
	pool := NewSlabPool[tval](2, 100)
	mk := func(c int) []Node[tval] { return make([]Node[tval], 0, c) }

	// Count bound: the third Put is dropped, not retained.
	pool.Put(mk(10))
	pool.Put(mk(20))
	pool.Put(mk(30))
	if got := pool.Size(); got != 2 {
		t.Fatalf("pool size after 3 puts with maxSlabs=2: %d", got)
	}

	// Capacity bound: exactly maxCap is retained, one node over is dropped.
	pool = NewSlabPool[tval](2, 100)
	pool.Put(mk(100))
	if got := pool.Size(); got != 1 {
		t.Fatalf("slab at exactly maxCap dropped (size %d)", got)
	}
	pool.Put(mk(101))
	if got := pool.Size(); got != 1 {
		t.Fatalf("oversized slab retained (size %d)", got)
	}

	// Get honors the hint: an undersized pooled slab is dropped so the
	// caller allocates at full size once.
	if s := pool.Get(200); s != nil {
		t.Fatalf("Get(200) returned a cap-%d slab", cap(s))
	}
	if got := pool.Size(); got != 0 {
		t.Fatalf("undersized slab still pooled after failed Get (size %d)", got)
	}
	// A large-enough slab is returned empty.
	pool.Put(mk(64))
	s := pool.Get(50)
	if s == nil || len(s) != 0 || cap(s) < 50 {
		t.Fatalf("Get(50) = len %d cap %d", len(s), cap(s))
	}
	// Zero-capacity slabs are never pooled.
	pool.Put(mk(0))
	if got := pool.Size(); got != 0 {
		t.Fatalf("zero-cap slab retained (size %d)", got)
	}
}

// FuzzTrieVsReference drives the trie and the reference with the same
// fuzzer-chosen insert stream and checks agreement on every touched prefix.
func FuzzTrieVsReference(f *testing.F) {
	f.Add([]byte{8, 10, 0, 0, 0, 16})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 24, 192, 168, 1, 0, 24})
	f.Add([]byte{32, 1, 2, 3, 4, 32, 31, 1, 2, 3, 4, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTrie(1, prefix.IPv4)
		var ref refImpl
		var seen []prefix.Prefix
		for len(data) >= 6 {
			l := data[0] % 33
			addr := uint64(binary.BigEndian.Uint32(data[1:5])) << 32
			p, err := prefix.Make(prefix.IPv4, addr, 0, l)
			if err != nil {
				t.Fatal(err)
			}
			ml := l + data[5]%(33-l)
			tr.Insert(p, ml)
			ref.insert(p, ml)
			seen = append(seen, p)
			data = data[6:]
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, q := range seen {
			gotML, gotOK := tr.Lookup(q)
			wantML, wantOK := ref.lookup(q)
			if gotOK != wantOK || gotML != wantML {
				t.Fatalf("Lookup(%s) = (%d,%v), reference (%d,%v)", q, gotML, gotOK, wantML, wantOK)
			}
			if got, want := tr.Authorizes(q), ref.authorizes(q); got != want {
				t.Fatalf("Authorizes(%s) = %v, reference %v", q, got, want)
			}
		}
	})
}
