package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/synth"
)

// Overhead reproduces §7.2's "Computational overhead" measurement: wall time
// and memory for compressing today's RPKI and the full-deployment PDU list.
// The paper reports 2.4 s / 19 MB and 36 s / 290 MB on an i7-6700; absolute
// numbers differ across implementations and hosts, so the quantity to
// compare is the ratio between the two scenarios and the near-linear growth.
type Overhead struct {
	Scenario   string
	Tuples     int
	Wall       time.Duration
	AllocBytes uint64 // heap allocated during the run
}

// MeasureOverhead runs the two §7.2 compression workloads on the dataset.
func MeasureOverhead(d *synth.Dataset) []Overhead {
	today := d.VRPs
	full := core.FullDeploymentMinimal(d.Table)
	return []Overhead{
		measureCompress("Today's RPKI (partial deployment)", today),
		measureCompress("Full deployment", full),
	}
}

func measureCompress(name string, in *rpki.Set) Overhead {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	out, _ := core.Compress(in, core.Options{})
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	_ = out
	return Overhead{
		Scenario:   name,
		Tuples:     in.Len(),
		Wall:       wall,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
}

// RenderOverhead writes the measurements next to the paper's numbers.
func RenderOverhead(w io.Writer, rows []Overhead) error {
	paper := map[string]string{
		"Today's RPKI (partial deployment)": "2.4 s / 19 MB",
		"Full deployment":                   "36 s / 290 MB",
	}
	if _, err := fmt.Fprintf(w, "%-36s %9s %14s %16s %16s\n",
		"scenario", "tuples", "paper (i7)", "measured wall", "measured alloc"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-36s %9d %14s %16v %13.1f MB\n",
			r.Scenario, r.Tuples, paper[r.Scenario], r.Wall.Round(time.Millisecond),
			float64(r.AllocBytes)/(1<<20)); err != nil {
			return err
		}
	}
	return nil
}
