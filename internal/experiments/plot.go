package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderPlot draws the figure as an ASCII chart: time on the x axis, PDU
// count on the y axis, one glyph per series, mirroring the gnuplot panels of
// Figure 3. Safe (solid-line) series use filled glyphs, vulnerable (dashed)
// series hollow ones.
func (f Figure3) RenderPlot(w io.Writer, height int) error {
	if height < 4 {
		height = 12
	}
	lo, hi := f.bounds()
	if hi == lo {
		hi = lo + 1
	}
	// One column per date, padded for readability.
	const colWidth = 9
	rows := make([][]rune, height)
	for i := range rows {
		rows[i] = []rune(strings.Repeat(" ", colWidth*len(f.Dates)+2))
	}
	glyphs := []struct {
		filled, hollow rune
	}{{'#', '*'}, {'@', 'o'}, {'%', '+'}, {'&', 'x'}}
	for si, s := range f.Scenarios {
		g := glyphs[si%len(glyphs)]
		ch := g.hollow
		if s.Secure() {
			ch = g.filled
		}
		for di, v := range f.Series[s] {
			y := int(float64(height-1) * float64(v-lo) / float64(hi-lo))
			row := height - 1 - y
			col := 2 + di*colWidth + colWidth/2
			if rows[row][col] != ' ' {
				col++ // nudge collisions right rather than overwrite
			}
			rows[row][col] = ch
		}
	}
	if _, err := fmt.Fprintln(w, f.Title); err != nil {
		return err
	}
	for i, r := range rows {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8d", hi)
		case height - 1:
			label = fmt.Sprintf("%8d", lo)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(r)); err != nil {
			return err
		}
	}
	var axis strings.Builder
	axis.WriteString("         +")
	axis.WriteString(strings.Repeat("-", colWidth*len(f.Dates)))
	if _, err := fmt.Fprintln(w, axis.String()); err != nil {
		return err
	}
	var dates strings.Builder
	dates.WriteString("          ")
	for _, d := range f.Dates {
		dates.WriteString(fmt.Sprintf(" %-*s", colWidth-1, d.Format("1/2")))
	}
	if _, err := fmt.Fprintln(w, dates.String()); err != nil {
		return err
	}
	// Legend.
	for si, s := range f.Scenarios {
		g := glyphs[si%len(glyphs)]
		ch := g.hollow
		style := "dashed/vulnerable"
		if s.Secure() {
			ch = g.filled
			style = "solid/safe"
		}
		if _, err := fmt.Fprintf(w, "  %c  %s [%s]\n", ch, s, style); err != nil {
			return err
		}
	}
	return nil
}

func (f Figure3) bounds() (lo, hi int) {
	first := true
	for _, s := range f.Scenarios {
		for _, v := range f.Series[s] {
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	return lo, hi
}
