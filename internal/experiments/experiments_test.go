package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/synth"
)

func smallDataset() *synth.Dataset {
	return synth.Generate(synth.Params{
		Seed: 3, Singles: 300, SinglesV6: 30, SibC: 12, SibD: 4, Partial: 5,
		ROASingles: 60, ROASibC: 7, ROAStale: 6, ROAMinML: 5, ROAVulnML: 9,
		VulnExtras: 5, VulnBonus: 2, ROAOriginAS: 25,
	})
}

func TestComputeTable1Identities(t *testing.T) {
	d := smallDataset()
	tab := ComputeTable1(d)
	p := d.Params
	// Closed-form expectations from the generator's block algebra.
	wantToday := p.ROASingles + 3*p.ROASibC + 3*p.ROAStale + p.ROAMinML + p.ROAVulnML
	if tab.PDUs[Today] != wantToday {
		t.Errorf("Today = %d, want %d", tab.PDUs[Today], wantToday)
	}
	if got, want := tab.PDUs[TodayCompressed], wantToday-2*(p.ROASibC+p.ROAStale); got != want {
		t.Errorf("TodayCompressed = %d, want %d", got, want)
	}
	wantMin := p.ROASingles + 3*p.ROASibC + p.ROAStale + 3*p.ROAMinML + p.ROAVulnML*p.VulnExtras + p.VulnBonus
	if tab.PDUs[TodayMinimalNoML] != wantMin {
		t.Errorf("TodayMinimalNoML = %d, want %d", tab.PDUs[TodayMinimalNoML], wantMin)
	}
	if got, want := tab.PDUs[TodayMinimalCompressed], wantMin-2*(p.ROASibC+p.ROAMinML); got != want {
		t.Errorf("TodayMinimalCompressed = %d, want %d", got, want)
	}
	if tab.PDUs[FullMinimalNoML] != d.Table.Len() {
		t.Errorf("FullMinimalNoML = %d, want %d", tab.PDUs[FullMinimalNoML], d.Table.Len())
	}
	// Orderings that must always hold (the paper's qualitative shape).
	if !(tab.PDUs[TodayCompressed] < tab.PDUs[Today]) {
		t.Error("compression must shrink the status quo")
	}
	if !(tab.PDUs[TodayMinimalNoML] > tab.PDUs[Today]) {
		t.Error("minimal ROAs must cost PDUs today")
	}
	if !(tab.PDUs[TodayMinimalCompressed] < tab.PDUs[TodayMinimalNoML]) {
		t.Error("compression must help minimal ROAs")
	}
	if !(tab.PDUs[FullLowerBound] <= tab.PDUs[FullMinimalCompressed]) {
		t.Error("compressed full deployment must respect the lower bound")
	}
	if !(tab.PDUs[FullMinimalCompressed] < tab.PDUs[FullMinimalNoML]) {
		t.Error("compression must help full deployment")
	}
}

func TestScenarioMetadata(t *testing.T) {
	secure := 0
	for s := Today; s < numScenarios; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "Scenario(") {
			t.Errorf("missing label for %d", s)
		}
		if s.Secure() {
			secure++
		}
	}
	if secure != 4 {
		t.Errorf("4 scenarios are secure in Table 1, got %d", secure)
	}
	if !strings.Contains(Scenario(99).String(), "99") {
		t.Error("unknown scenario label")
	}
}

func TestSection6Stats(t *testing.T) {
	d := smallDataset()
	tab := ComputeTable1(d)
	st := ComputeSection6(d, tab)
	p := d.Params
	if st.PrefixesUsingML != p.ROAMinML+p.ROAVulnML {
		t.Errorf("PrefixesUsingML = %d", st.PrefixesUsingML)
	}
	if st.VulnerableML != p.ROAVulnML {
		t.Errorf("VulnerableML = %d", st.VulnerableML)
	}
	if st.VulnerableShare <= 0.5 {
		t.Errorf("VulnerableShare = %v, want 'almost all'", st.VulnerableShare)
	}
	if st.AdditionalPDUs != tab.PDUs[TodayMinimalNoML]-tab.PDUs[Today] {
		t.Error("AdditionalPDUs inconsistent")
	}
	if st.MaxCompression < st.AchievedCompression {
		t.Errorf("achieved %.4f beats the bound %.4f", st.AchievedCompression, st.MaxCompression)
	}
	var buf bytes.Buffer
	if err := st.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"15.90%", "prefixes using maxLength", "measured"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestTable1Render(t *testing.T) {
	tab := ComputeTable1(smallDataset())
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != int(numScenarios)+1 {
		t.Errorf("unexpected row count:\n%s", out)
	}
	if !strings.Contains(out, "lower bound") || !strings.Contains(out, "OK") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	// Cheap evaluate: reuse one small dataset per date with a size nudge so
	// monotonicity is visible.
	n := 0
	eval := func(date time.Time) Table1 {
		n++
		p := smallDataset().Params
		p.Singles += n * 10
		tab := ComputeTable1(synth.Generate(p))
		tab.Date = date
		return tab
	}
	fig := ComputeFigure3(false, eval)
	if len(fig.Dates) != 8 || len(fig.Scenarios) != 4 {
		t.Fatalf("fig3a shape: %d dates, %d scenarios", len(fig.Dates), len(fig.Scenarios))
	}
	for _, s := range fig.Scenarios {
		if len(fig.Series[s]) != 8 {
			t.Fatalf("series %v has %d points", s, len(fig.Series[s]))
		}
	}
	figB := ComputeFigure3(true, eval)
	if len(figB.Scenarios) != 3 {
		t.Fatalf("fig3b should have 3 series")
	}
	// Full-deployment series grows with table size.
	ser := figB.Series[FullMinimalNoML]
	for i := 1; i < len(ser); i++ {
		if ser[i] < ser[i-1] {
			t.Errorf("series not monotone at %d: %v", i, ser)
		}
	}
	var buf bytes.Buffer
	if err := figB.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3b") || !strings.Contains(buf.String(), "solid") {
		t.Errorf("figure render incomplete:\n%s", buf.String())
	}
	buf.Reset()
	if err := figB.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 { // header + 8 dates
		t.Errorf("CSV lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "2017-04-13,") {
		t.Errorf("first data row = %q", lines[1])
	}
}

func TestCompareToPaper(t *testing.T) {
	var buf bytes.Buffer
	if err := CompareToPaper(&buf, PaperTable1()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+0.00%") {
		t.Errorf("self-comparison should be exact:\n%s", out)
	}
	if !strings.Contains(out, "39949") || !strings.Contains(out, "729371") {
		t.Errorf("paper values missing:\n%s", out)
	}
}
