// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–§7) from a dataset: the seven PDU-count scenarios of
// Table 1, the two timeline figures (Figure 3a/3b), and the §6 headline
// statistics. cmd/experiments prints them; bench_test.go times them.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

// Scenario identifies one Table 1 row.
type Scenario int

// Table 1 rows, in paper order.
const (
	Today Scenario = iota
	TodayCompressed
	TodayMinimalNoML
	TodayMinimalCompressed
	FullMinimalNoML
	FullMinimalCompressed
	FullLowerBound
	numScenarios
)

// String returns the paper's row label.
func (s Scenario) String() string {
	switch s {
	case Today:
		return "Today"
	case TodayCompressed:
		return "Today (compressed)"
	case TodayMinimalNoML:
		return "Today, minimal ROAs, no maxLength"
	case TodayMinimalCompressed:
		return "Today, minimal ROAs, with maxLength (compressed)"
	case FullMinimalNoML:
		return "Full deployment, minimal ROAs, no maxLength"
	case FullMinimalCompressed:
		return "Full deployment, minimal ROAs, with maxLength"
	case FullLowerBound:
		return "Full deployment, lower bound (max permissive ROAs)"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Secure reports the paper's "secure?" column: is the scenario immune to
// forged-origin subprefix hijacks by construction?
func (s Scenario) Secure() bool {
	switch s {
	case TodayMinimalNoML, TodayMinimalCompressed, FullMinimalNoML, FullMinimalCompressed:
		return true
	default:
		return false
	}
}

// Table1 holds the PDU count of every scenario for one dataset.
type Table1 struct {
	Date time.Time
	PDUs [numScenarios]int
}

// ComputeTable1 evaluates all seven scenarios. The same VRP-set pipeline
// (Minimalize → Compress) backs Figure 3, §6 and §7.2.
func ComputeTable1(d *synth.Dataset) Table1 {
	var t Table1
	t.PDUs[Today] = d.VRPs.Len()

	comp, _ := core.Compress(d.VRPs, core.Options{})
	t.PDUs[TodayCompressed] = comp.Len()

	minimal := core.Minimalize(d.VRPs, d.Table)
	t.PDUs[TodayMinimalNoML] = minimal.Len()

	minComp, _ := core.Compress(minimal, core.Options{})
	t.PDUs[TodayMinimalCompressed] = minComp.Len()

	full := core.FullDeploymentMinimal(d.Table)
	t.PDUs[FullMinimalNoML] = full.Len()

	fullComp, _ := core.Compress(full, core.Options{})
	t.PDUs[FullMinimalCompressed] = fullComp.Len()

	t.PDUs[FullLowerBound] = core.FullDeploymentLowerBound(d.Table).Len()
	return t
}

// Render writes Table 1 in the paper's layout.
func (t Table1) Render(w io.Writer) error {
	const width = 52
	if _, err := fmt.Fprintf(w, "%-*s %10s  %s\n", width, "scenario", "# PDUs", "secure?"); err != nil {
		return err
	}
	for s := Today; s < numScenarios; s++ {
		mark := "X" // vulnerable, following the paper's marks
		if s.Secure() {
			mark = "OK"
		}
		if _, err := fmt.Fprintf(w, "%-*s %10d  %s\n", width, s.String(), t.PDUs[s], mark); err != nil {
			return err
		}
	}
	return nil
}

// Section6Stats holds the §6 headline measurements.
type Section6Stats struct {
	Tuples              int     // status-quo PDU tuples ("39,949")
	PrefixesUsingML     int     // tuples with maxLength > length ("4630, about 12%")
	MLShare             float64 // the "12%"
	VulnerableML        int     // non-minimal among them
	VulnerableShare     float64 // the "84%"
	AdditionalPDUs      int     // minimal conversion growth ("13K", "+33%")
	AdditionalPDUsShare float64
	FullPairs           int     // BGP (prefix, AS) pairs ("777K")
	LowerBoundPDUs      int     // max-permissive bound ("729K")
	MaxCompression      float64 // the "6.2%" bound
	AchievedCompression float64 // compress_roas on full deployment ("6.1%")
	StatusQuoSaved      float64 // §7.2 "15.90%"
	MinimalSaved        float64 // §7.2 "6.5%"
	MinimalVsStatusQuo  float64 // §7.2 "23% more tuples than the status quo"
}

// ComputeSection6 derives the §6/§7.2 statistics from a Table 1 evaluation
// plus a vulnerability scan.
func ComputeSection6(d *synth.Dataset, t Table1) Section6Stats {
	rep := core.AnalyzeVulnerabilities(d.VRPs, d.Table, false)
	var st Section6Stats
	st.Tuples = t.PDUs[Today]
	st.PrefixesUsingML = rep.UsingMaxLength
	st.MLShare = rep.MaxLengthShare()
	st.VulnerableML = rep.Vulnerable
	st.VulnerableShare = rep.VulnerableShare()
	st.AdditionalPDUs = t.PDUs[TodayMinimalNoML] - t.PDUs[Today]
	if t.PDUs[Today] > 0 {
		st.AdditionalPDUsShare = float64(st.AdditionalPDUs) / float64(t.PDUs[Today])
	}
	st.FullPairs = t.PDUs[FullMinimalNoML]
	st.LowerBoundPDUs = t.PDUs[FullLowerBound]
	if st.FullPairs > 0 {
		st.MaxCompression = 1 - float64(st.LowerBoundPDUs)/float64(st.FullPairs)
		st.AchievedCompression = 1 - float64(t.PDUs[FullMinimalCompressed])/float64(st.FullPairs)
	}
	if t.PDUs[Today] > 0 {
		st.StatusQuoSaved = 1 - float64(t.PDUs[TodayCompressed])/float64(t.PDUs[Today])
		st.MinimalVsStatusQuo = float64(t.PDUs[TodayMinimalCompressed])/float64(t.PDUs[Today]) - 1
	}
	if t.PDUs[TodayMinimalNoML] > 0 {
		st.MinimalSaved = 1 - float64(t.PDUs[TodayMinimalCompressed])/float64(t.PDUs[TodayMinimalNoML])
	}
	return st
}

// Render writes the statistics with the paper's claimed values alongside.
func (s Section6Stats) Render(w io.Writer) error {
	rows := []struct {
		name, paper, measured string
	}{
		{"status-quo PDU tuples", "39,949", fmt.Sprintf("%d", s.Tuples)},
		{"prefixes using maxLength", "4630 (~12%)", fmt.Sprintf("%d (%.1f%%)", s.PrefixesUsingML, 100*s.MLShare)},
		{"  of those, vulnerable (non-minimal)", "84%", fmt.Sprintf("%d (%.1f%%)", s.VulnerableML, 100*s.VulnerableShare)},
		{"additional PDUs for minimal ROAs", "13K (+33%)", fmt.Sprintf("%d (+%.1f%%)", s.AdditionalPDUs, 100*s.AdditionalPDUsShare)},
		{"full-deployment (prefix,AS) pairs", "776,945", fmt.Sprintf("%d", s.FullPairs)},
		{"max-permissive lower bound", "729,371", fmt.Sprintf("%d", s.LowerBoundPDUs)},
		{"maxLength max compression", "6.2%", fmt.Sprintf("%.1f%%", 100*s.MaxCompression)},
		{"compress_roas achieved (full)", "6.1%", fmt.Sprintf("%.1f%%", 100*s.AchievedCompression)},
		{"status-quo compression (§7.2)", "15.90%", fmt.Sprintf("%.2f%%", 100*s.StatusQuoSaved)},
		{"minimal-ROA compression (§7.2)", "6.5%", fmt.Sprintf("%.1f%%", 100*s.MinimalSaved)},
		{"minimal compressed vs status quo", "+23%", fmt.Sprintf("%+.1f%%", 100*s.MinimalVsStatusQuo)},
	}
	if _, err := fmt.Fprintf(w, "%-40s %14s %20s\n", "statistic", "paper", "measured"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-40s %14s %20s\n", r.name, r.paper, r.measured); err != nil {
			return err
		}
	}
	return nil
}

// Figure3 holds one timeline: the PDU counts of selected scenarios per
// weekly snapshot.
type Figure3 struct {
	Title     string
	Scenarios []Scenario
	Dates     []time.Time
	Series    map[Scenario][]int
}

// Figure3Scenarios lists the series of each subfigure.
func Figure3Scenarios(full bool) []Scenario {
	if full {
		// Figure 3b.
		return []Scenario{FullMinimalNoML, FullMinimalCompressed, FullLowerBound}
	}
	// Figure 3a.
	return []Scenario{Today, TodayCompressed, TodayMinimalNoML, TodayMinimalCompressed}
}

// ComputeFigure3 evaluates a timeline over the paper's weekly snapshot
// dates. With full=false it produces Figure 3a, otherwise Figure 3b.
// The evaluate callback lets tests substitute cheaper datasets; pass nil to
// use the calibrated snapshots.
func ComputeFigure3(full bool, evaluate func(date time.Time) Table1) Figure3 {
	if evaluate == nil {
		evaluate = func(date time.Time) Table1 {
			t := ComputeTable1(synth.Generate(synth.SnapshotParams(date)))
			t.Date = date
			return t
		}
	}
	fig := Figure3{
		Scenarios: Figure3Scenarios(full),
		Dates:     synth.Dates6_1(),
		Series:    make(map[Scenario][]int),
	}
	if full {
		fig.Title = "Figure 3b: RPKI in full deployment"
	} else {
		fig.Title = "Figure 3a: Today's RPKI deployment"
	}
	for _, date := range fig.Dates {
		t := evaluate(date)
		for _, s := range fig.Scenarios {
			fig.Series[s] = append(fig.Series[s], t.PDUs[s])
		}
	}
	return fig
}

// Render writes the figure as an aligned data table (one row per series,
// one column per date) — the series the paper plots.
func (f Figure3) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, f.Title); err != nil {
		return err
	}
	var head strings.Builder
	fmt.Fprintf(&head, "%-52s", "series (solid = safe, dashed = vulnerable)")
	for _, d := range f.Dates {
		fmt.Fprintf(&head, " %8s", d.Format("1/2"))
	}
	if _, err := fmt.Fprintln(w, head.String()); err != nil {
		return err
	}
	for _, s := range f.Scenarios {
		var row strings.Builder
		style := "dashed"
		if s.Secure() {
			style = "solid"
		}
		fmt.Fprintf(&row, "%-52s", fmt.Sprintf("%s [%s]", s, style))
		for _, v := range f.Series[s] {
			fmt.Fprintf(&row, " %8d", v)
		}
		if _, err := fmt.Fprintln(w, row.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the figure in a gnuplot-friendly CSV layout.
func (f Figure3) WriteCSV(w io.Writer) error {
	cols := []string{"date"}
	for _, s := range f.Scenarios {
		cols = append(cols, s.String())
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, d := range f.Dates {
		row := []string{d.Format("2006-01-02")}
		for _, s := range f.Scenarios {
			row = append(row, fmt.Sprintf("%d", f.Series[s][i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// PaperTable1 returns the published 6/1/2017 Table 1 values, for
// paper-vs-measured reporting.
func PaperTable1() Table1 {
	var t Table1
	t.PDUs = [numScenarios]int{39949, 33615, 52745, 49308, 776945, 730008, 729371}
	return t
}

// CompareToPaper renders measured vs published values with relative error.
func CompareToPaper(w io.Writer, measured Table1) error {
	paper := PaperTable1()
	if _, err := fmt.Fprintf(w, "%-52s %10s %10s %8s\n", "scenario", "paper", "measured", "err"); err != nil {
		return err
	}
	for s := Today; s < numScenarios; s++ {
		p, m := paper.PDUs[s], measured.PDUs[s]
		errPct := 100 * (float64(m) - float64(p)) / float64(p)
		if _, err := fmt.Fprintf(w, "%-52s %10d %10d %+7.2f%%\n", s.String(), p, m, errPct); err != nil {
			return err
		}
	}
	return nil
}
