package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestRenderPlot(t *testing.T) {
	fig := Figure3{
		Title:     "test figure",
		Scenarios: Figure3Scenarios(true),
		Dates:     synth.Dates6_1(),
		Series:    map[Scenario][]int{},
	}
	base := 700000
	for i, s := range fig.Scenarios {
		for w := 0; w < 8; w++ {
			fig.Series[s] = append(fig.Series[s], base+5000*w+20000*i)
		}
	}
	var buf bytes.Buffer
	if err := fig.RenderPlot(&buf, 12); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test figure") {
		t.Error("title missing")
	}
	// Axis labels carry the bounds.
	if !strings.Contains(out, "700000") {
		t.Errorf("lower bound label missing:\n%s", out)
	}
	// Legend lists every series with its style.
	for _, s := range fig.Scenarios {
		if !strings.Contains(out, s.String()) {
			t.Errorf("legend missing %q", s)
		}
	}
	if !strings.Contains(out, "solid/safe") || !strings.Contains(out, "dashed/vulnerable") {
		t.Error("legend styles missing")
	}
	// Plot body contains glyphs for each series (filled for safe).
	if !strings.ContainsAny(out, "#@%") {
		t.Error("no safe-series glyphs plotted")
	}
	if !strings.ContainsRune(out, '+') {
		t.Error("no vulnerable-series glyphs plotted")
	}
}

func TestRenderPlotDegenerate(t *testing.T) {
	// Flat series (hi == lo) and tiny height must not panic or divide by zero.
	fig := Figure3{
		Title:     "flat",
		Scenarios: []Scenario{Today},
		Dates:     synth.Dates6_1(),
		Series:    map[Scenario][]int{Today: {5, 5, 5, 5, 5, 5, 5, 5}},
	}
	var buf bytes.Buffer
	if err := fig.RenderPlot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
