package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestMeasureOverhead(t *testing.T) {
	d := smallDataset()
	rows := MeasureOverhead(d)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Tuples != d.VRPs.Len() {
		t.Errorf("today tuples = %d, want %d", rows[0].Tuples, d.VRPs.Len())
	}
	if rows[1].Tuples != d.Table.Len() {
		t.Errorf("full tuples = %d, want %d", rows[1].Tuples, d.Table.Len())
	}
	// Full deployment processes more tuples than today's RPKI.
	if rows[1].Tuples <= rows[0].Tuples {
		t.Error("scenario ordering wrong")
	}
	for _, r := range rows {
		if r.Wall <= 0 {
			t.Errorf("%s wall = %v", r.Scenario, r.Wall)
		}
	}
	var buf bytes.Buffer
	if err := RenderOverhead(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2.4 s / 19 MB", "36 s / 290 MB", "Full deployment", "MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
