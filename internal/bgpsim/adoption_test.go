package bgpsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestAdoptionSweepSubprefixDecays(t *testing.T) {
	topo := Generate(GenerateParams{Seed: 3, N: 300})
	shares := []float64{0, 0.25, 0.5, 0.75, 1}
	pts := AdoptionSweep(topo, SubprefixMinimalROA, shares, 6)
	if len(pts) != len(shares) {
		t.Fatalf("points = %d", len(pts))
	}
	// Zero adoption: the hijack works (~100%). Full adoption: blocked.
	if pts[0].Capture < 0.9 {
		t.Errorf("no-adoption capture = %.2f, want ~1", pts[0].Capture)
	}
	if pts[len(pts)-1].Capture != 0 {
		t.Errorf("full-adoption capture = %.2f, want 0", pts[len(pts)-1].Capture)
	}
	// Weakly decreasing overall (tolerate small per-trial noise).
	if pts[0].Capture < pts[len(pts)-1].Capture {
		t.Errorf("capture did not decay: %v", pts)
	}
}

func TestAdoptionSweepForgedOriginFlat(t *testing.T) {
	topo := Generate(GenerateParams{Seed: 3, N: 300})
	pts := AdoptionSweep(topo, ForgedOriginSubprefix, []float64{0, 0.5, 1}, 6)
	// §4's punchline: adoption does not matter — the route is Valid.
	for _, p := range pts {
		if p.Capture < 0.9 {
			t.Errorf("forged-origin capture at %.0f%% adoption = %.2f, want ~1",
				100*p.Share, p.Capture)
		}
	}
}

func TestRenderAdoption(t *testing.T) {
	var buf bytes.Buffer
	err := RenderAdoption(&buf, SubprefixMinimalROA, []AdoptionPoint{{Share: 0.5, Capture: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50.0%") || !strings.Contains(buf.String(), "25.0%") {
		t.Errorf("render:\n%s", buf.String())
	}
}
