// Package bgpsim simulates interdomain routing at the AS level to quantify
// the attacks of §2–§5: how much traffic a hijacker attracts under a
// subprefix hijack, a forged-origin subprefix hijack (the attack enabled by
// non-minimal maxLength ROAs), and a traditional same-prefix forged-origin
// hijack — with and without route origin validation.
//
// Routing follows the standard Gao–Rexford model: every inter-AS link is a
// customer–provider or peer–peer relationship; an AS prefers customer routes
// over peer routes over provider routes, then shorter AS paths; and it
// exports customer-learned (and self-originated) routes to everyone but
// peer-/provider-learned routes only to its customers. Forwarding is
// hop-by-hop longest-prefix match, so an AS that filtered a hijacked
// subprefix can still hand packets to a neighbor that did not — exactly the
// dynamics that make subprefix hijacks devastating.
package bgpsim

import (
	"fmt"
	"math/rand"

	"repro/internal/rpki"
)

// Rel is the relationship of a neighbor from the local AS's point of view.
type Rel int8

// Relationship kinds.
const (
	Customer Rel = iota // the neighbor is my customer
	Peer                // the neighbor is my peer
	Provider            // the neighbor is my provider
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

type edge struct {
	to  int
	rel Rel // relationship of `to` from the owning node's perspective
}

// Topology is an AS-level graph with business relationships. Nodes are dense
// ints; ASN returns the protocol-level AS number of a node.
type Topology struct {
	neighbors [][]edge
	asn       []rpki.ASN
}

// N returns the number of ASes.
func (t *Topology) N() int { return len(t.neighbors) }

// ASN returns the AS number assigned to node i.
func (t *Topology) ASN(i int) rpki.ASN { return t.asn[i] }

// NodeByASN returns the node with the given AS number, or -1.
func (t *Topology) NodeByASN(as rpki.ASN) int {
	for i, a := range t.asn {
		if a == as {
			return i
		}
	}
	return -1
}

// AddLink records a provider→customer or peer↔peer relationship between
// nodes a and b. rel is b's role from a's perspective.
func (t *Topology) AddLink(a, b int, rel Rel) {
	t.neighbors[a] = append(t.neighbors[a], edge{to: b, rel: rel})
	var back Rel
	switch rel {
	case Customer:
		back = Provider
	case Provider:
		back = Customer
	default:
		back = Peer
	}
	t.neighbors[b] = append(t.neighbors[b], edge{to: a, rel: back})
}

// NewTopology creates an empty topology with n nodes, ASNs 1..n.
func NewTopology(n int) *Topology {
	t := &Topology{neighbors: make([][]edge, n), asn: make([]rpki.ASN, n)}
	for i := range t.asn {
		t.asn[i] = rpki.ASN(i + 1)
	}
	return t
}

// GenerateParams tunes the synthetic Internet topology.
type GenerateParams struct {
	Seed     int64
	N        int     // total ASes (>= 16)
	Tier1    int     // clique size (default 8)
	MidShare float64 // share of ASes in the middle tier (default 0.15)
}

// Generate builds a three-tier synthetic AS graph: a full-mesh tier-1
// clique, a middle tier multihomed to tier 1 with some lateral peering, and
// edge ASes homed to 1–3 middle-tier providers. The shape mimics the
// customer-cone structure that drives the traffic-split behavior of
// forged-origin hijacks ([16], cited by §4–§5).
func Generate(p GenerateParams) *Topology {
	if p.N < 16 {
		p.N = 16
	}
	if p.Tier1 <= 1 {
		p.Tier1 = 8
	}
	if p.MidShare <= 0 {
		p.MidShare = 0.15
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := NewTopology(p.N)
	nMid := int(float64(p.N) * p.MidShare)
	if nMid < p.Tier1 {
		nMid = p.Tier1
	}
	midLo, midHi := p.Tier1, p.Tier1+nMid // [midLo, midHi) middle tier
	if midHi > p.N {
		midHi = p.N
	}
	// Tier-1 clique: all peers.
	for i := 0; i < p.Tier1; i++ {
		for j := i + 1; j < p.Tier1; j++ {
			t.AddLink(i, j, Peer)
		}
	}
	// Middle tier: 2 tier-1 providers each, some lateral peering.
	for i := midLo; i < midHi; i++ {
		p1 := rng.Intn(p.Tier1)
		p2 := (p1 + 1 + rng.Intn(p.Tier1-1)) % p.Tier1
		t.AddLink(p1, i, Customer)
		t.AddLink(p2, i, Customer)
		if i > midLo && rng.Float64() < 0.3 {
			t.AddLink(i, midLo+rng.Intn(i-midLo), Peer)
		}
	}
	// Edge: 1-3 middle-tier providers each.
	for i := midHi; i < p.N; i++ {
		k := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			prov := midLo + rng.Intn(midHi-midLo)
			if seen[prov] {
				continue
			}
			seen[prov] = true
			t.AddLink(prov, i, Customer)
		}
	}
	return t
}
