package bgpsim

import (
	"fmt"
	"io"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file encodes the paper's attack narrative (§2–§5) as runnable
// scenarios over one victim/attacker pair:
//
//	SubprefixNoROV          §2: subprefix hijack, RPKI ignored — the
//	                        baseline devastation.
//	SubprefixMinimalROA     §2: the same hijack against a minimal ROA with
//	                        validating routers — stopped cold.
//	ForgedOriginSubprefix   §4: non-minimal maxLength ROA; hijacker forges
//	                        the victim's origin on an authorized-but-
//	                        unannounced subprefix — "as bad as a subprefix
//	                        hijack" despite full ROV.
//	ForgedOriginPrefix      §5: the hijacker must attack the whole prefix;
//	                        traffic splits and the majority stays legitimate.
type ScenarioKind int

// Scenario kinds.
const (
	SubprefixNoROV ScenarioKind = iota
	SubprefixMinimalROA
	ForgedOriginSubprefix
	ForgedOriginPrefix
	numScenarioKinds
)

// String names the scenario.
func (k ScenarioKind) String() string {
	switch k {
	case SubprefixNoROV:
		return "subprefix hijack, no ROV"
	case SubprefixMinimalROA:
		return "subprefix hijack vs minimal ROA + ROV"
	case ForgedOriginSubprefix:
		return "forged-origin subprefix hijack vs maxLength ROA + ROV"
	case ForgedOriginPrefix:
		return "forged-origin prefix hijack vs minimal ROA + ROV"
	default:
		return fmt.Sprintf("ScenarioKind(%d)", int(k))
	}
}

// AttackSetup fixes the victim/attacker embedding.
type AttackSetup struct {
	Topo         *Topology
	Victim       int // node announcing the legitimate prefix
	Attacker     int
	Prefix       prefix.Prefix // the victim's covering prefix (e.g. /16)
	Subprefix    prefix.Prefix // the hijack target (e.g. an unannounced /24)
	AnnouncedSub prefix.Prefix // a subprefix the victim genuinely announces
}

// RunningExampleSetup builds the paper's §2–§4 example on the given
// topology: the victim (AS 111's stand-in) announces 168.122.0.0/16 and
// 168.122.225.0/24; the attack target is 168.122.0.0/24.
func RunningExampleSetup(t *Topology, victim, attacker int) AttackSetup {
	return AttackSetup{
		Topo:         t,
		Victim:       victim,
		Attacker:     attacker,
		Prefix:       prefix.MustParse("168.122.0.0/16"),
		Subprefix:    prefix.MustParse("168.122.0.0/24"),
		AnnouncedSub: prefix.MustParse("168.122.225.0/24"),
	}
}

// Result is one scenario's outcome.
type Result struct {
	Kind        ScenarioKind
	CaptureRate float64 // fraction of ASes whose traffic the attacker gets
}

// RunScenario simulates one attack kind with full ROV adoption where the
// scenario calls for it and returns the attacker's capture rate for traffic
// addressed into the hijacked subprefix (or the whole prefix for
// ForgedOriginPrefix).
func RunScenario(kind ScenarioKind, s AttackSetup) Result {
	return RunScenarioAdoption(kind, s, 1)
}

// RunScenarioAdoption is RunScenario with an explicit ROV adoption share in
// [0,1] for the scenarios that use validation (ignored by SubprefixNoROV).
func RunScenarioAdoption(kind ScenarioKind, s AttackSetup, share float64) Result {
	victimAS := s.Topo.ASN(s.Victim)
	attackerAS := s.Topo.ASN(s.Attacker)
	legit := []Announcement{
		{Prefix: s.Prefix, Announcer: s.Victim, PathSuffix: []rpki.ASN{victimAS}},
		{Prefix: s.AnnouncedSub, Announcer: s.Victim, PathSuffix: []rpki.ASN{victimAS}},
	}
	minimalROA := rpki.NewSet([]rpki.VRP{
		{Prefix: s.Prefix, MaxLength: s.Prefix.Len(), AS: victimAS},
		{Prefix: s.AnnouncedSub, MaxLength: s.AnnouncedSub.Len(), AS: victimAS},
	})
	maxLengthROA := rpki.NewSet([]rpki.VRP{
		// The §4 non-minimal ROA: (prefix, maxLength = subprefix length).
		{Prefix: s.Prefix, MaxLength: s.Subprefix.Len(), AS: victimAS},
	})

	var anns []Announcement
	var cfg Config
	target := s.Subprefix
	switch kind {
	case SubprefixNoROV:
		anns = append(legit, Announcement{
			Prefix: s.Subprefix, Announcer: s.Attacker, PathSuffix: []rpki.ASN{attackerAS}})
		cfg = Config{} // no validation anywhere
	case SubprefixMinimalROA:
		anns = append(legit, Announcement{
			Prefix: s.Subprefix, Announcer: s.Attacker, PathSuffix: []rpki.ASN{attackerAS}})
		cfg = Config{VRPs: minimalROA, ValidatingShare: share}
	case ForgedOriginSubprefix:
		anns = append(legit, Announcement{
			Prefix: s.Subprefix, Announcer: s.Attacker, PathSuffix: []rpki.ASN{attackerAS, victimAS}})
		cfg = Config{VRPs: maxLengthROA, ValidatingShare: share}
	case ForgedOriginPrefix:
		anns = append(legit, Announcement{
			Prefix: s.Prefix, Announcer: s.Attacker, PathSuffix: []rpki.ASN{attackerAS, victimAS}})
		cfg = Config{VRPs: minimalROA, ValidatingShare: share}
		target = s.Prefix
	default:
		panic(fmt.Sprintf("bgpsim: unknown scenario %d", kind))
	}
	out := Simulate(s.Topo, anns, cfg)
	return Result{Kind: kind, CaptureRate: out.CaptureRate(s.Attacker, deepTarget(target))}
}

// deepTarget picks a concrete destination inside the target prefix (its
// lowest address at maximum length), so longest-prefix-match forwarding is
// exercised end to end.
func deepTarget(p prefix.Prefix) prefix.Prefix {
	q := p
	for q.Len() < q.MaxLen() {
		q = q.Child(0)
	}
	return q
}

// RunAll evaluates every scenario kind over trials independent
// victim/attacker embeddings (victims and attackers drawn deterministically
// from edge nodes) and returns the mean capture rate per kind — the numbers
// behind §4's "exactly the same impact as a regular subprefix hijack" and
// §5's "traffic splits".
func RunAll(t *Topology, trials int) map[ScenarioKind]float64 {
	sums := make(map[ScenarioKind]float64)
	n := t.N()
	for trial := 0; trial < trials; trial++ {
		victim := n - 1 - 2*trial%(n/2)
		attacker := n - 2 - 2*trial%(n/2)
		if victim == attacker {
			attacker--
		}
		s := RunningExampleSetup(t, victim, attacker)
		for k := ScenarioKind(0); k < numScenarioKinds; k++ {
			sums[k] += RunScenario(k, s).CaptureRate
		}
	}
	out := make(map[ScenarioKind]float64, int(numScenarioKinds))
	for k, v := range sums {
		out[k] = v / float64(trials)
	}
	return out
}

// RenderResults writes mean capture rates in scenario order.
func RenderResults(w io.Writer, rates map[ScenarioKind]float64) error {
	if _, err := fmt.Fprintf(w, "%-58s %s\n", "scenario", "mean capture"); err != nil {
		return err
	}
	for k := ScenarioKind(0); k < numScenarioKinds; k++ {
		if _, err := fmt.Fprintf(w, "%-58s %6.1f%%\n", k.String(), 100*rates[k]); err != nil {
			return err
		}
	}
	return nil
}
