package bgpsim

import (
	"fmt"

	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
)

// Announcement is one BGP origination in the simulation: node Announcer
// announces Prefix with an (optionally forged) AS path suffix. For a
// legitimate origination PathSuffix is [ASN(Announcer)]; a forged-origin
// hijacker appends the victim's ASN: [ASN(attacker), ASN(victim)].
type Announcement struct {
	Prefix     prefix.Prefix
	Announcer  int        // topology node that injects the route
	PathSuffix []rpki.ASN // path as announced; last element is the claimed origin
}

// ClaimedOrigin is the origin AS a validator sees.
func (a Announcement) ClaimedOrigin() rpki.ASN { return a.PathSuffix[len(a.PathSuffix)-1] }

// route is a node's chosen path to one announcement.
type route struct {
	class  Rel // relationship class the route was learned over (Customer best)
	length int // AS-path length including the suffix
	next   int // next-hop node (the announcer itself at the origin)
	ann    int // index into the announcement list
	valid  bool
}

// better reports whether r is preferred over s under Gao–Rexford economics:
// customer < peer < provider class (Customer == 0 is best), then shorter
// path, then lower next-hop node for determinism.
func (r route) better(s route) bool {
	if !s.valid {
		return r.valid
	}
	if !r.valid {
		return false
	}
	if r.class != s.class {
		return r.class < s.class
	}
	if r.length != s.length {
		return r.length < s.length
	}
	return r.next < s.next
}

// Config controls a simulation run.
type Config struct {
	// VRPs, when non-nil, enables route origin validation at validating
	// ASes: announcements whose (prefix, claimed origin) validate as Invalid
	// are dropped.
	VRPs *rpki.Set
	// ValidatingShare in [0,1] is the fraction of ASes performing ROV
	// (chosen deterministically as the lowest node ids). 1 = everyone.
	ValidatingShare float64
}

// Outcome is the routing result: for every announced prefix and every node,
// the chosen route (announcement and next hop).
type Outcome struct {
	topo     *Topology
	anns     []Announcement
	routes   [][]route // [prefixGroup][node]
	prefixes []prefix.Prefix
}

// Simulate computes, for every announced prefix, every AS's chosen route
// under Gao–Rexford preferences and export rules, with optional ROV
// filtering. Announcements of the same prefix compete; distinct prefixes
// propagate independently (BGP keeps per-prefix state).
func Simulate(t *Topology, anns []Announcement, cfg Config) *Outcome {
	// An announcement's validation state is loop-invariant — it depends only
	// on (prefix, claimed origin), never on the node or the round — so
	// classify every announcement once up front with one batch instead of
	// re-validating inside the Bellman–Ford fixpoint (which visits each
	// announcement O(nodes × rounds) times).
	var invalid []bool
	if cfg.VRPs != nil {
		ix := rov.NewCompactIndex(cfg.VRPs)
		routes := make([]rov.Route, len(anns))
		for i, a := range anns {
			routes[i] = rov.Route{Prefix: a.Prefix, Origin: a.ClaimedOrigin()}
		}
		invalid = make([]bool, len(anns))
		for i, s := range ix.ValidateBatchSorted(routes, nil) {
			invalid[i] = s == rov.Invalid
		}
	}
	validators := int(cfg.ValidatingShare * float64(t.N()))
	validates := func(node int) bool { return invalid != nil && node < validators }

	// Group announcements by prefix.
	groupOf := map[prefix.Prefix]int{}
	var prefixes []prefix.Prefix
	groups := [][]int{}
	for i, a := range anns {
		g, ok := groupOf[a.Prefix]
		if !ok {
			g = len(prefixes)
			groupOf[a.Prefix] = g
			prefixes = append(prefixes, a.Prefix)
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}

	out := &Outcome{topo: t, anns: anns, prefixes: prefixes, routes: make([][]route, len(prefixes))}
	for g, annIdx := range groups {
		out.routes[g] = simulatePrefix(t, anns, annIdx, invalid, validates)
	}
	return out
}

// simulatePrefix runs Bellman-Ford-style rounds to a fixpoint for one
// prefix's competing announcements. The preference order is total and the
// candidate space finite, so iteration converges in the Gao–Rexford model.
func simulatePrefix(t *Topology, anns []Announcement, annIdx []int, invalid []bool, validates func(int) bool) []route {
	n := t.N()
	best := make([]route, n)
	isOrigin := make([]bool, n)
	for _, ai := range annIdx {
		a := anns[ai]
		r := route{class: Customer, length: len(a.PathSuffix) - 1, next: a.Announcer, ann: ai, valid: true}
		// The announcer holds its own route as a maximally preferred,
		// always-exportable route whose length reflects any forged suffix.
		if r.better(best[a.Announcer]) {
			best[a.Announcer] = r
			isOrigin[a.Announcer] = true
		}
	}
	dropped := func(node int, ai int) bool {
		return validates(node) && invalid[ai]
	}
	for changed := true; changed; {
		changed = false
		for node := 0; node < n; node++ {
			if isOrigin[node] {
				continue // origins keep their own route
			}
			for _, e := range t.neighbors[node] {
				nb := e.to
				r := best[nb]
				if !r.valid {
					continue
				}
				// Export rule at nb: customer-learned and self-originated
				// routes go to everyone; peer-/provider-learned routes only
				// to nb's customers (node is nb's customer iff nb is node's
				// provider).
				if !isOrigin[nb] && r.class != Customer && e.rel != Provider {
					continue
				}
				cand := route{class: e.rel, length: r.length + 1, next: nb, ann: r.ann, valid: true}
				if dropped(node, cand.ann) {
					continue
				}
				if cand.better(best[node]) {
					best[node] = cand
					changed = true
				}
			}
		}
	}
	return best
}

// Forward traces a packet from src addressed to dst through per-hop
// longest-prefix-match forwarding along each node's installed next hop, and
// returns the node where it lands (an announcer) or -1 if unroutable or
// caught in a deflection loop.
func (o *Outcome) Forward(src int, dst prefix.Prefix) int {
	visited := make(map[int]bool)
	node := src
	for !visited[node] {
		visited[node] = true
		g := o.lpmGroup(node, dst)
		if g < 0 {
			return -1
		}
		r := o.routes[g][node]
		if node == o.anns[r.ann].Announcer {
			return node
		}
		node = r.next
	}
	return -1 // forwarding loop caused by inconsistent LPM views
}

// lpmGroup picks the longest-prefix-match group at node for destination dst
// among prefixes the node has a route for.
func (o *Outcome) lpmGroup(node int, dst prefix.Prefix) int {
	bestG := -1
	bestLen := int16(-1)
	for g, p := range o.prefixes {
		if !o.routes[g][node].valid {
			continue
		}
		if p.Contains(dst) && int16(p.Len()) > bestLen {
			bestG, bestLen = g, int16(p.Len())
		}
	}
	return bestG
}

// CaptureRate returns the fraction of ASes (excluding all announcers) whose
// traffic to dst lands at attacker.
func (o *Outcome) CaptureRate(attacker int, dst prefix.Prefix) float64 {
	total, captured := 0, 0
	for node := 0; node < o.topo.N(); node++ {
		if o.isAnnouncer(node) {
			continue
		}
		total++
		if o.Forward(node, dst) == attacker {
			captured++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(captured) / float64(total)
}

func (o *Outcome) isAnnouncer(node int) bool {
	for _, a := range o.anns {
		if a.Announcer == node {
			return true
		}
	}
	return false
}

// Chosen returns the announcement index node selected for prefix p, or -1.
func (o *Outcome) Chosen(node int, p prefix.Prefix) int {
	for g, q := range o.prefixes {
		if q == p {
			if r := o.routes[g][node]; r.valid {
				return r.ann
			}
			return -1
		}
	}
	return -1
}

// String summarizes the outcome.
func (o *Outcome) String() string {
	return fmt.Sprintf("bgpsim.Outcome{%d prefixes over %d ASes}", len(o.prefixes), o.topo.N())
}
