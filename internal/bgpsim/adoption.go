package bgpsim

import (
	"fmt"
	"io"
)

// AdoptionPoint is one sample of the ROV partial-adoption sweep.
type AdoptionPoint struct {
	Share   float64 // fraction of ASes validating
	Capture float64 // mean attacker capture rate
}

// AdoptionSweep measures how the attacker's capture rate changes as ROV
// adoption grows, for a given scenario kind. The paper's setting (§2: "very
// few ASes make routing decisions based on the validation state") is the
// left edge of this curve; full adoption is the right edge. For the
// forged-origin subprefix hijack the curve stays flat at ~100% — no amount
// of ROV adoption helps when the ROA itself authorizes the attack — while
// the plain subprefix hijack decays toward zero with adoption.
func AdoptionSweep(t *Topology, kind ScenarioKind, shares []float64, trials int) []AdoptionPoint {
	out := make([]AdoptionPoint, 0, len(shares))
	n := t.N()
	for _, share := range shares {
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			victim := n - 1 - 2*trial%(n/2)
			attacker := n - 2 - 2*trial%(n/2)
			if victim == attacker {
				attacker--
			}
			s := RunningExampleSetup(t, victim, attacker)
			sum += RunScenarioAdoption(kind, s, share).CaptureRate
		}
		out = append(out, AdoptionPoint{Share: share, Capture: sum / float64(trials)})
	}
	return out
}

// RenderAdoption writes the sweep as an aligned table.
func RenderAdoption(w io.Writer, kind ScenarioKind, points []AdoptionPoint) error {
	if _, err := fmt.Fprintf(w, "ROV adoption sweep — %s\n", kind); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "  adoption %5.1f%%  capture %5.1f%%\n", 100*p.Share, 100*p.Capture); err != nil {
			return err
		}
	}
	return nil
}
