package bgpsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

// lineTopology builds 0 --provider-- 1 --provider-- 2 ... (0 at the top).
func lineTopology(n int) *Topology {
	t := NewTopology(n)
	for i := 0; i < n-1; i++ {
		t.AddLink(i, i+1, Customer) // i+1 is i's customer
	}
	return t
}

func TestRelString(t *testing.T) {
	if Customer.String() != "customer" || Peer.String() != "peer" || Provider.String() != "provider" {
		t.Error("Rel strings")
	}
	if !strings.Contains(Rel(9).String(), "9") {
		t.Error("unknown Rel")
	}
}

func TestSimulateLinePropagation(t *testing.T) {
	// Origin at the bottom of a 4-node provider chain: everyone routes to it
	// via customer routes going up.
	topo := lineTopology(4)
	p := mp("10.0.0.0/8")
	anns := []Announcement{{Prefix: p, Announcer: 3, PathSuffix: []rpki.ASN{topo.ASN(3)}}}
	out := Simulate(topo, anns, Config{})
	for node := 0; node < 4; node++ {
		if out.Chosen(node, p) != 0 {
			t.Fatalf("node %d has no route", node)
		}
		if got := out.Forward(node, deepTarget(p)); got != 3 {
			t.Fatalf("Forward(%d) = %d, want 3", node, got)
		}
	}
}

func TestValleyFreeExport(t *testing.T) {
	// V topology: 1 and 2 are both customers of 0; origin at 1. Node 2 must
	// reach it via provider 0 (provider route). Then W: peer link between 1
	// and 2 would be preferred by 2 (peer > provider).
	topo := NewTopology(3)
	topo.AddLink(0, 1, Customer)
	topo.AddLink(0, 2, Customer)
	p := mp("10.0.0.0/8")
	anns := []Announcement{{Prefix: p, Announcer: 1, PathSuffix: []rpki.ASN{topo.ASN(1)}}}
	out := Simulate(topo, anns, Config{})
	if out.Forward(2, deepTarget(p)) != 1 {
		t.Fatal("2 cannot reach 1 via 0")
	}

	topo2 := NewTopology(3)
	topo2.AddLink(0, 1, Customer)
	topo2.AddLink(0, 2, Customer)
	topo2.AddLink(1, 2, Peer)
	out2 := Simulate(topo2, anns, Config{})
	// Node 2 prefers the peer route (class) over the provider route.
	g := out2.routes[0][2]
	if g.class != Peer || g.next != 1 {
		t.Fatalf("node 2 route = %+v, want peer via 1", g)
	}
	// Valley-free: node 0 must NOT be offered 2's peer route (peer-learned
	// routes are exported only to customers... 0 is 2's provider).
	if out2.routes[0][0].next != 1 {
		t.Fatalf("node 0 should route directly to its customer 1, got %+v", out2.routes[0][0])
	}
}

func TestPreferCustomerOverShorterProvider(t *testing.T) {
	// Node 1 has customer 2 (origin) and provider 0 that also connects to
	// origin more directly. Customer class must win regardless of length.
	topo := NewTopology(4)
	topo.AddLink(0, 1, Customer) // 1 is 0's customer
	topo.AddLink(1, 2, Customer) // 2 is 1's customer
	topo.AddLink(2, 3, Customer) // 3 is 2's customer (origin at 3)
	topo.AddLink(0, 3, Customer) // shortcut: 3 is also 0's direct customer
	p := mp("10.0.0.0/8")
	anns := []Announcement{{Prefix: p, Announcer: 3, PathSuffix: []rpki.ASN{topo.ASN(3)}}}
	out := Simulate(topo, anns, Config{})
	r := out.routes[0][1]
	if r.class != Customer || r.next != 2 {
		t.Fatalf("node 1 route = %+v, want customer via 2 (despite shorter provider path)", r)
	}
}

func TestROVFiltersInvalid(t *testing.T) {
	topo := lineTopology(3)
	p := mp("10.0.0.0/8")
	vrps := rpki.NewSet([]rpki.VRP{{Prefix: p, MaxLength: 8, AS: topo.ASN(2)}})
	// An attacker (node 2's sibling doesn't exist here; reuse node 0) —
	// instead: node 0 announces p claiming itself as origin: Invalid.
	anns := []Announcement{
		{Prefix: p, Announcer: 2, PathSuffix: []rpki.ASN{topo.ASN(2)}},
		{Prefix: p, Announcer: 0, PathSuffix: []rpki.ASN{topo.ASN(0)}},
	}
	out := Simulate(topo, anns, Config{VRPs: vrps, ValidatingShare: 1})
	// Node 1 validates: it must pick the valid origin 2 (its customer),
	// not its provider 0's invalid route.
	if got := out.Chosen(1, p); got != 0 {
		t.Fatalf("node 1 chose announcement %d, want the valid one (0)", got)
	}
}

func TestRunningExampleScenarios(t *testing.T) {
	topo := Generate(GenerateParams{Seed: 42, N: 400})
	victim, attacker := topo.N()-3, topo.N()-7
	s := RunningExampleSetup(topo, victim, attacker)

	sub := RunScenario(SubprefixNoROV, s)
	if sub.CaptureRate < 0.95 {
		t.Errorf("subprefix hijack capture = %.2f, want ~1 (longest-prefix match always prefers the /24)", sub.CaptureRate)
	}
	min := RunScenario(SubprefixMinimalROA, s)
	if min.CaptureRate != 0 {
		t.Errorf("minimal ROA + ROV capture = %.2f, want 0", min.CaptureRate)
	}
	forged := RunScenario(ForgedOriginSubprefix, s)
	if forged.CaptureRate < 0.95 {
		t.Errorf("forged-origin subprefix capture = %.2f, want ~1 (the §4 attack)", forged.CaptureRate)
	}
	same := RunScenario(ForgedOriginPrefix, s)
	if same.CaptureRate >= 0.5 {
		t.Errorf("same-prefix forged-origin capture = %.2f, want < 0.5 (traffic splits, §5)", same.CaptureRate)
	}
	if same.CaptureRate <= 0 {
		t.Errorf("same-prefix forged-origin capture = 0; the attacker should attract someone")
	}
	// The paper's ordering: forged-origin subprefix ≈ subprefix >> same-prefix > minimal(=0).
	if !(forged.CaptureRate > same.CaptureRate && same.CaptureRate > min.CaptureRate) {
		t.Errorf("capture ordering violated: sub=%.2f forged=%.2f same=%.2f min=%.2f",
			sub.CaptureRate, forged.CaptureRate, same.CaptureRate, min.CaptureRate)
	}
}

func TestRunAllOrdering(t *testing.T) {
	topo := Generate(GenerateParams{Seed: 7, N: 300})
	rates := RunAll(topo, 8)
	if rates[SubprefixNoROV] < 0.9 || rates[ForgedOriginSubprefix] < 0.9 {
		t.Errorf("subprefix-style attacks should capture ~100%%: %v", rates)
	}
	if rates[SubprefixMinimalROA] != 0 {
		t.Errorf("minimal ROA should block completely: %v", rates)
	}
	if rates[ForgedOriginPrefix] >= rates[ForgedOriginSubprefix] {
		t.Errorf("same-prefix attack should be weaker: %v", rates)
	}
	var buf bytes.Buffer
	if err := RenderResults(&buf, rates); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "forged-origin subprefix") {
		t.Errorf("render:\n%s", buf.String())
	}
}

func TestScenarioKindStrings(t *testing.T) {
	for k := ScenarioKind(0); k < numScenarioKinds; k++ {
		if strings.HasPrefix(k.String(), "ScenarioKind(") {
			t.Errorf("missing name for %d", k)
		}
	}
	if !strings.Contains(ScenarioKind(42).String(), "42") {
		t.Error("unknown kind label")
	}
}

func TestGenerateTopologyShape(t *testing.T) {
	topo := Generate(GenerateParams{Seed: 1, N: 500})
	if topo.N() != 500 {
		t.Fatalf("N = %d", topo.N())
	}
	// Everyone can reach a tier-1-homed origin (connectivity sanity).
	p := mp("192.0.2.0/24")
	anns := []Announcement{{Prefix: p, Announcer: 0, PathSuffix: []rpki.ASN{topo.ASN(0)}}}
	out := Simulate(topo, anns, Config{})
	unreached := 0
	for node := 0; node < topo.N(); node++ {
		if out.Chosen(node, p) < 0 {
			unreached++
		}
	}
	if unreached > 0 {
		t.Errorf("%d nodes cannot reach a tier-1 origin", unreached)
	}
	// ASN mapping round-trips.
	if topo.NodeByASN(topo.ASN(17)) != 17 {
		t.Error("NodeByASN broken")
	}
	if topo.NodeByASN(99999) != -1 {
		t.Error("unknown ASN should map to -1")
	}
}

func TestGenerateDefaultsClamp(t *testing.T) {
	topo := Generate(GenerateParams{Seed: 1, N: 3}) // clamped to 16
	if topo.N() < 16 {
		t.Errorf("N = %d, want clamped >= 16", topo.N())
	}
}

func TestForwardUnroutable(t *testing.T) {
	topo := lineTopology(2)
	out := Simulate(topo, []Announcement{
		{Prefix: mp("10.0.0.0/8"), Announcer: 0, PathSuffix: []rpki.ASN{topo.ASN(0)}},
	}, Config{})
	if got := out.Forward(1, deepTarget(mp("192.0.2.0/24"))); got != -1 {
		t.Errorf("unroutable destination forwarded to %d", got)
	}
}

func TestDeflectionThroughNonValidatingProvider(t *testing.T) {
	// The subtle LPM interaction: a validating AS drops the hijacked /24 and
	// keeps the /16 toward the victim — but if its next hop doesn't
	// validate, the packet deflects to the attacker there. With partial ROV
	// adoption the hijack still succeeds beyond the validator.
	//
	// Node 0 (the only validator, lowest id) is a customer of the
	// non-validating hub 1, which also serves the victim 2 and attacker 3.
	//
	//        1 (non-validating hub)
	//      / | \
	//     0  2  3      0 validates; 2 victim; 3 attacker
	topo := NewTopology(4)
	topo.AddLink(1, 0, Customer)
	topo.AddLink(1, 2, Customer)
	topo.AddLink(1, 3, Customer)
	p16, p24 := mp("168.122.0.0/16"), mp("168.122.0.0/24")
	vrps := rpki.NewSet([]rpki.VRP{{Prefix: p16, MaxLength: 16, AS: topo.ASN(2)}})
	anns := []Announcement{
		{Prefix: p16, Announcer: 2, PathSuffix: []rpki.ASN{topo.ASN(2)}},
		{Prefix: p24, Announcer: 3, PathSuffix: []rpki.ASN{topo.ASN(3)}},
	}
	// ValidatingShare 0.25 => only node 0 validates; the attacker's /24 is
	// Invalid there and dropped.
	out := Simulate(topo, anns, Config{VRPs: vrps, ValidatingShare: 0.25})
	if out.Chosen(0, p24) != -1 {
		t.Fatal("validating node kept the invalid /24")
	}
	// Yet node 0's traffic for the /24 deflects at the hub to the attacker:
	// dropping the route does not protect a validator behind a
	// non-validating provider.
	if got := out.Forward(0, deepTarget(p24)); got != 3 {
		t.Errorf("deflection: Forward(0) = %d, want attacker 3", got)
	}
	// The hub itself routes the /24 to the attacker outright.
	if got := out.Forward(1, deepTarget(p24)); got != 3 {
		t.Errorf("hub: Forward(1) = %d, want attacker 3", got)
	}
}
