package rov

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// probesFor builds a query set that exercises every compact-path shape for
// the given table: each VRP's exact prefix, its parent (shorter than the
// VRP — the aggregate-filter case), a deeper child, random probes, and the
// degenerate /0 query of each family.
func probesFor(rng *rand.Rand, vrps []rpki.VRP) []Route {
	var qs []Route
	for _, v := range vrps {
		as := rpki.ASN(rng.Intn(6))
		qs = append(qs, Route{Prefix: v.Prefix, Origin: v.AS}, Route{Prefix: v.Prefix, Origin: as})
		if v.Prefix.Len() > 0 {
			qs = append(qs, Route{Prefix: v.Prefix.Parent(), Origin: v.AS})
		}
		if v.Prefix.Len() < v.Prefix.MaxLen() {
			c := v.Prefix.Child(uint8(rng.Intn(2)))
			qs = append(qs, Route{Prefix: c, Origin: v.AS}, Route{Prefix: c, Origin: as})
		}
	}
	for i := 0; i < 200; i++ {
		qs = append(qs, randomProbe(rng))
	}
	qs = append(qs,
		Route{Prefix: prefix.MustParse("0.0.0.0/0"), Origin: 1},
		Route{Prefix: prefix.MustParse("::/0"), Origin: 1})
	return qs
}

// checkCompactAgainst asserts cx answers every probe exactly like ix and ref.
func checkCompactAgainst(t *testing.T, tag string, cx *CompactIndex, ix *Index, ref *Reference, qs []Route) {
	t.Helper()
	for _, q := range qs {
		got := cx.Validate(q.Prefix, q.Origin)
		if want := ix.Validate(q.Prefix, q.Origin); got != want {
			t.Fatalf("%s: compact.Validate(%s, AS%d) = %v, index says %v", tag, q.Prefix, q.Origin, got, want)
		}
		if want := ref.Validate(q.Prefix, q.Origin); got != want {
			t.Fatalf("%s: compact.Validate(%s, AS%d) = %v, reference says %v", tag, q.Prefix, q.Origin, got, want)
		}
	}
}

// TestCompactIndexMatchesIndex pits the compact index against the arena
// Index and the linear Reference over randomized IPv4+IPv6 tables, built
// both from the normalized set and from the Index's canonical walk.
func TestCompactIndexMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		var vrps []rpki.VRP
		for i := 0; i < rng.Intn(120); i++ {
			vrps = append(vrps, randomVRP(rng))
		}
		set := rpki.NewSet(vrps)
		ix := NewIndex(set)
		ref := NewReference(set)
		qs := probesFor(rng, set.VRPs())
		checkCompactAgainst(t, "fromSet", NewCompactIndex(set), ix, ref, qs)
		checkCompactAgainst(t, "fromIndex", CompactFromIndex(ix), ix, ref, qs)
	}
}

// TestCompactIndexUnsortedInput feeds newCompactFromVRPs a shuffled,
// duplicate-free VRP list (the ResetTo shape) and checks answers and the
// exported stream both match an Index built from the same list.
func TestCompactIndexUnsortedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	seen := map[rpki.VRP]struct{}{}
	var vrps []rpki.VRP
	for len(vrps) < 300 {
		v := randomVRP(rng)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		vrps = append(vrps, v)
	}
	rng.Shuffle(len(vrps), func(i, j int) { vrps[i], vrps[j] = vrps[j], vrps[i] })
	ix := newIndexFromVRPs(vrps)
	cx := newCompactFromVRPs(vrps)
	if cx.Len() != ix.Len() {
		t.Fatalf("compact Len %d, index Len %d", cx.Len(), ix.Len())
	}
	checkCompactAgainst(t, "unsorted", cx, ix, NewReference(rpki.NewSet(vrps)), probesFor(rng, vrps))
	got := cx.AppendVRPs(nil)
	want := ix.AppendVRPs(nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendVRPs mismatch:\ncompact: %v\nindex:   %v", got, want)
	}
}

// TestCompactIndexStride16 crosses the stride cutoff (a 65536-slot table)
// with a dense random IPv4 load and checks against the Index on queries that
// include sub-stride lengths, so both the wide slot table and the
// plen-filtered aggregate scan are exercised at scale.
func TestCompactIndexStride16(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var vrps []rpki.VRP
	for i := 0; i < strideCutoff+2000; i++ {
		l := uint8(6 + rng.Intn(27))
		p, err := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		if err != nil {
			t.Fatal(err)
		}
		ml := l + uint8(rng.Intn(int(32-l)+1))
		vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(rng.Intn(500))})
	}
	set := rpki.NewSet(vrps)
	ix := NewIndex(set)
	cx := NewCompactIndex(set)
	if got := cx.fams[0].stride; got != 16 {
		t.Fatalf("IPv4 stride = %d, want 16", got)
	}
	for i := 0; i < 20000; i++ {
		l := uint8(rng.Intn(33))
		p, err := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		if err != nil {
			t.Fatal(err)
		}
		as := rpki.ASN(rng.Intn(500))
		if got, want := cx.Validate(p, as), ix.Validate(p, as); got != want {
			t.Fatalf("compact.Validate(%s, AS%d) = %v, index says %v", p, as, got, want)
		}
	}
}

// TestCompactIndexEdgeCases covers the table shapes the stride/aggregate
// machinery treats specially: empty tables, one-family tables, /0 and
// maximum-length VRPs, and invalid query prefixes.
func TestCompactIndexEdgeCases(t *testing.T) {
	empty := NewCompactIndex(rpki.NewSet(nil))
	if got := empty.Validate(prefix.MustParse("10.0.0.0/8"), 1); got != NotFound {
		t.Fatalf("empty table: %v, want NotFound", got)
	}
	if got := empty.Validate(prefix.Prefix{}, 1); got != NotFound {
		t.Fatalf("invalid prefix: %v, want NotFound", got)
	}
	if n := len(empty.AppendVRPs(nil)); n != 0 {
		t.Fatalf("empty AppendVRPs returned %d VRPs", n)
	}

	vrps := []rpki.VRP{
		{Prefix: prefix.MustParse("0.0.0.0/0"), MaxLength: 8, AS: 64500},
		{Prefix: prefix.MustParse("10.0.0.0/8"), MaxLength: 8, AS: 64501},
		{Prefix: prefix.MustParse("10.0.0.0/8"), MaxLength: 24, AS: 64502},
		{Prefix: prefix.MustParse("10.1.2.3/32"), MaxLength: 32, AS: 64503},
		{Prefix: prefix.MustParse("2001:db8::/32"), MaxLength: 48, AS: 64504},
		{Prefix: prefix.MustParse("2001:db8::1/128"), MaxLength: 128, AS: 64505},
	}
	set := rpki.NewSet(vrps)
	cx := NewCompactIndex(set)
	ix := NewIndex(set)
	ref := NewReference(set)
	queries := []Route{
		{Prefix: prefix.MustParse("0.0.0.0/0"), Origin: 64500},   // matches the /0 VRP
		{Prefix: prefix.MustParse("7.0.0.0/8"), Origin: 64500},   // covered only by /0
		{Prefix: prefix.MustParse("7.0.0.0/9"), Origin: 64500},   // beyond /0's maxLength
		{Prefix: prefix.MustParse("10.0.0.0/6"), Origin: 64501},  // shorter than the /8 VRPs
		{Prefix: prefix.MustParse("10.0.0.0/8"), Origin: 64501},  // exact
		{Prefix: prefix.MustParse("10.1.2.3/32"), Origin: 64503}, // host route
		{Prefix: prefix.MustParse("10.1.2.2/31"), Origin: 64503}, // parent of a /32
		{Prefix: prefix.MustParse("10.9.0.0/16"), Origin: 64502}, // within maxLength 24
		{Prefix: prefix.MustParse("2001:db8::1/128"), Origin: 64505},
		{Prefix: prefix.MustParse("2001:db8::/33"), Origin: 64504},
		{Prefix: prefix.MustParse("2001:db8::/31"), Origin: 64504}, // shorter than every v6 VRP
		{Prefix: prefix.MustParse("::/0"), Origin: 64504},
		{Prefix: prefix.MustParse("8000::/1"), Origin: 64504},
	}
	for _, q := range queries {
		got := cx.Validate(q.Prefix, q.Origin)
		if want := ix.Validate(q.Prefix, q.Origin); got != want {
			t.Fatalf("compact.Validate(%s, AS%d) = %v, index says %v", q.Prefix, q.Origin, got, want)
		}
		if want := ref.Validate(q.Prefix, q.Origin); got != want {
			t.Fatalf("compact.Validate(%s, AS%d) = %v, reference says %v", q.Prefix, q.Origin, got, want)
		}
	}
	if got, want := cx.AppendVRPs(nil), ix.AppendVRPs(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendVRPs mismatch:\ncompact: %v\nindex:   %v", got, want)
	}
}

// TestCompactBatchVariants pins every batch entry point to the one-route
// Validate answer: plain, sorted (above and below its radix threshold), and
// parallel batches must be indistinguishable.
func TestCompactBatchVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var vrps []rpki.VRP
	for i := 0; i < 500; i++ {
		vrps = append(vrps, randomVRP(rng))
	}
	cx := NewCompactIndex(rpki.NewSet(vrps))
	for _, n := range []int{0, 1, sortedBatchMin - 1, 2048} {
		routes := make([]Route, n)
		for i := range routes {
			routes[i] = randomProbe(rng)
		}
		want := make([]State, n)
		for i, q := range routes {
			want[i] = cx.Validate(q.Prefix, q.Origin)
		}
		statesEqual := func(got []State) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if got := cx.ValidateBatch(routes, nil); !statesEqual(got) {
			t.Fatalf("n=%d: ValidateBatch diverges from Validate", n)
		}
		if got := cx.ValidateBatchSorted(routes, nil); !statesEqual(got) {
			t.Fatalf("n=%d: ValidateBatchSorted diverges from Validate", n)
		}
		if got := cx.ValidateBatchParallel(routes, nil, 4); !statesEqual(got) {
			t.Fatalf("n=%d: ValidateBatchParallel diverges from Validate", n)
		}
	}
}
