// Package rov implements BGP Prefix Origin Validation (RFC 6811): given the
// Validated ROA Payloads a router learned from its RPKI cache, classify a
// route announcement as Valid, Invalid, or NotFound.
//
// The definitions follow RFC 6811 §2 exactly:
//
//   - A VRP "covers" a route when the VRP prefix contains the route prefix
//     (ignoring maxLength and origin).
//   - A VRP "matches" a route when it covers it, the route's origin equals
//     the VRP's AS, and the route prefix length does not exceed maxLength.
//   - A route is Valid if at least one VRP matches it, Invalid if at least
//     one VRP covers it but none matches, and NotFound if no VRP covers it.
//
// The paper's attacks live precisely in this classifier's gaps: a
// forged-origin subprefix hijack is *Valid* here whenever a non-minimal ROA
// authorizes the hijacked subprefix (§4).
//
// Three implementations are provided. Index (index.go) is the serving-path
// validator: an arena trie on the core engine with a parallel value slab,
// answering single queries and batches. LiveIndex (live.go) wraps it with
// in-place RTR delta updates under an atomic snapshot swap. Reference
// (below) is a linear scan used to cross-check both in property and fuzz
// tests.
package rov

import (
	"fmt"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// State is the RFC 6811 validation state of a route.
type State uint8

// Validation states.
const (
	NotFound State = iota // no covering VRP
	Invalid               // covered but not matched
	Valid                 // matched
)

// String returns "NotFound", "Invalid" or "Valid".
func (s State) String() string {
	switch s {
	case NotFound:
		return "NotFound"
	case Invalid:
		return "Invalid"
	case Valid:
		return "Valid"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Route is one origin-validation query: an announced prefix and the origin
// AS the validator sees for it.
type Route struct {
	Prefix prefix.Prefix
	Origin rpki.ASN
}

// Reference is the obviously-correct linear-scan validator used to
// cross-check Index.
type Reference struct {
	vrps []rpki.VRP
}

// NewReference builds a reference validator.
func NewReference(s *rpki.Set) *Reference {
	return &Reference{vrps: s.VRPs()}
}

// Validate classifies route (p, origin) by scanning every VRP.
func (r *Reference) Validate(p prefix.Prefix, origin rpki.ASN) State {
	state := NotFound
	for _, v := range r.vrps {
		if !v.Covers(p) {
			continue
		}
		if v.Matches(p, origin) {
			return Valid
		}
		state = Invalid
	}
	return state
}
