// Package rov implements BGP Prefix Origin Validation (RFC 6811): given the
// Validated ROA Payloads a router learned from its RPKI cache, classify a
// route announcement as Valid, Invalid, or NotFound.
//
// The definitions follow RFC 6811 §2 exactly:
//
//   - A VRP "covers" a route when the VRP prefix contains the route prefix
//     (ignoring maxLength and origin).
//   - A VRP "matches" a route when it covers it, the route's origin equals
//     the VRP's AS, and the route prefix length does not exceed maxLength.
//   - A route is Valid if at least one VRP matches it, Invalid if at least
//     one VRP covers it but none matches, and NotFound if no VRP covers it.
//
// The paper's attacks live precisely in this classifier's gaps: a
// forged-origin subprefix hijack is *Valid* here whenever a non-minimal ROA
// authorizes the hijacked subprefix (§4).
//
// Two implementations are provided: Index, a binary-trie ancestor walk used
// everywhere, and Reference, a linear scan used to cross-check Index in
// property tests.
package rov

import (
	"fmt"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// State is the RFC 6811 validation state of a route.
type State uint8

// Validation states.
const (
	NotFound State = iota // no covering VRP
	Invalid               // covered but not matched
	Valid                 // matched
)

// String returns "NotFound", "Invalid" or "Valid".
func (s State) String() string {
	switch s {
	case NotFound:
		return "NotFound"
	case Invalid:
		return "Invalid"
	case Valid:
		return "Valid"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// entry is the payload stored at a trie node: the VRPs whose prefix equals
// the node's prefix.
type entry struct {
	maxLength uint8
	as        rpki.ASN
}

type inode struct {
	children [2]*inode
	entries  []entry
}

// Index answers RFC 6811 queries in O(route prefix length). Build one with
// NewIndex; an Index is immutable and safe for concurrent readers.
type Index struct {
	roots map[prefix.Family]*inode
	size  int
}

// NewIndex builds a validation index over the set's VRPs.
func NewIndex(s *rpki.Set) *Index {
	ix := &Index{roots: map[prefix.Family]*inode{
		prefix.IPv4: new(inode),
		prefix.IPv6: new(inode),
	}}
	for _, v := range s.VRPs() {
		n := ix.roots[v.Prefix.Family()]
		for depth := uint8(0); depth < v.Prefix.Len(); depth++ {
			bit := v.Prefix.Bit(depth)
			if n.children[bit] == nil {
				n.children[bit] = new(inode)
			}
			n = n.children[bit]
		}
		n.entries = append(n.entries, entry{maxLength: v.MaxLength, as: v.AS})
		ix.size++
	}
	return ix
}

// Len returns the number of indexed VRPs.
func (ix *Index) Len() int { return ix.size }

// Validate classifies route (p, origin) per RFC 6811.
func (ix *Index) Validate(p prefix.Prefix, origin rpki.ASN) State {
	state := NotFound
	n := ix.roots[p.Family()]
	for depth := uint8(0); n != nil; depth++ {
		for _, e := range n.entries {
			// Every entry on the ancestor path covers p by construction.
			if state == NotFound {
				state = Invalid
			}
			if e.as == origin && p.Len() <= e.maxLength {
				return Valid
			}
		}
		if depth >= p.Len() {
			break
		}
		n = n.children[p.Bit(depth)]
	}
	return state
}

// ValidateRoute is a convenience wrapper over (prefix, origin) pairs
// expressed as a VRP-shaped route.
func (ix *Index) ValidateRoute(p prefix.Prefix, origin rpki.ASN) (State, bool) {
	s := ix.Validate(p, origin)
	return s, s == Valid
}

// Reference is the obviously-correct linear-scan validator used to
// cross-check Index.
type Reference struct {
	vrps []rpki.VRP
}

// NewReference builds a reference validator.
func NewReference(s *rpki.Set) *Reference {
	return &Reference{vrps: s.VRPs()}
}

// Validate classifies route (p, origin) by scanning every VRP.
func (r *Reference) Validate(p prefix.Prefix, origin rpki.ASN) State {
	state := NotFound
	for _, v := range r.vrps {
		if !v.Covers(p) {
			continue
		}
		if v.Matches(p, origin) {
			return Valid
		}
		state = Invalid
	}
	return state
}
