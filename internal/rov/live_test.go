package rov

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// settle waits out any in-flight background compaction and keeps forcing
// empty Applies until the garbage thresholds are satisfied, so tests can
// assert slab bounds deterministically against the asynchronous compactor.
func settle(t *testing.T, l *LiveIndex) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		l.mu.Lock()
		busy := l.compacting
		need := !busy && l.needCompact(&l.cur.Load().bit)
		l.mu.Unlock()
		if busy {
			if time.Now().After(deadline) {
				t.Fatal("compaction did not finish")
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if !need {
			return
		}
		l.Apply(nil, nil)
	}
}

// randomVRP draws a VRP from a deliberately small space (few origins, short
// prefixes in both families) so deltas collide with existing state often.
func randomVRP(rng *rand.Rand) rpki.VRP {
	if rng.Intn(3) == 0 { // IPv6
		l := uint8(8 + rng.Intn(40))
		p, err := prefix.Make(prefix.IPv6, rng.Uint64(), 0, l)
		if err != nil {
			panic(err)
		}
		ml := l + uint8(rng.Intn(int(64-l)+1))
		return rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(rng.Intn(6))}
	}
	l := uint8(4 + rng.Intn(21))
	p, err := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
	if err != nil {
		panic(err)
	}
	ml := l + uint8(rng.Intn(int(32-l)+1))
	return rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(rng.Intn(6))}
}

// randomProbe draws a query route near the randomVRP space.
func randomProbe(rng *rand.Rand) Route {
	v := randomVRP(rng)
	p := v.Prefix
	// Sometimes probe below the VRP (inside maxLength range or beyond).
	for p.Len() < p.MaxLen() && rng.Intn(3) == 0 {
		p = p.Child(uint8(rng.Intn(2)))
	}
	return Route{Prefix: p, Origin: rpki.ASN(rng.Intn(6))}
}

// TestDifferentialLiveIndexVsReference is the tentpole correctness test:
// the arena Index, the compact index, the LiveIndex after an arbitrary delta
// history, and the linear Reference must agree state-for-state on randomized
// IPv4+IPv6 workloads — after every applied delta, not just at the end. When
// the LiveIndex's current version carries a published compact snapshot, that
// snapshot is held to the same answers.
func TestDifferentialLiveIndexVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		state := map[rpki.VRP]struct{}{}
		var init []rpki.VRP
		for i := 0; i < rng.Intn(40); i++ {
			v := randomVRP(rng)
			init = append(init, v)
			state[v] = struct{}{}
		}
		live := NewLiveIndex(rpki.NewSet(init))
		for step := 0; step < 12; step++ {
			var ann, wd []rpki.VRP
			for i := 0; i < rng.Intn(6); i++ {
				ann = append(ann, randomVRP(rng)) // may duplicate existing state
			}
			for v := range state {
				if rng.Intn(5) == 0 {
					wd = append(wd, v)
				}
				if len(wd) >= 4 {
					break
				}
			}
			if rng.Intn(2) == 0 {
				wd = append(wd, randomVRP(rng)) // likely-absent withdraw
			}
			live.Apply(ann, wd)
			for _, v := range ann {
				state[v] = struct{}{}
			}
			for _, v := range wd {
				delete(state, v)
			}

			cur := make([]rpki.VRP, 0, len(state))
			for v := range state {
				cur = append(cur, v)
			}
			set := rpki.NewSet(cur)
			ix, cx, ref := NewIndex(set), NewCompactIndex(set), NewReference(set)
			if live.Len() != set.Len() || ix.Len() != set.Len() || cx.Len() != set.Len() {
				t.Fatalf("trial %d step %d: live %d / index %d / compact %d / set %d VRPs",
					trial, step, live.Len(), ix.Len(), cx.Len(), set.Len())
			}
			var routes []Route
			for q := 0; q < 120; q++ {
				routes = append(routes, randomProbe(rng))
			}
			for _, v := range cur { // exact-prefix probes with right and wrong origin
				routes = append(routes,
					Route{Prefix: v.Prefix, Origin: v.AS},
					Route{Prefix: v.Prefix, Origin: v.AS + 1})
			}
			liveStates := live.ValidateBatch(routes, nil)
			ixStates := ix.ValidateBatch(routes, nil)
			cxStates := cx.ValidateBatch(routes, nil)
			pub := live.CompactSnapshot() // nil unless a compaction landed for this exact version
			for i, q := range routes {
				want := ref.Validate(q.Prefix, q.Origin)
				if ixStates[i] != want {
					t.Fatalf("trial %d step %d: Index.Validate(%s, %v) = %v, reference %v",
						trial, step, q.Prefix, q.Origin, ixStates[i], want)
				}
				if cxStates[i] != want {
					t.Fatalf("trial %d step %d: CompactIndex.Validate(%s, %v) = %v, reference %v",
						trial, step, q.Prefix, q.Origin, cxStates[i], want)
				}
				if liveStates[i] != want {
					t.Fatalf("trial %d step %d: LiveIndex.Validate(%s, %v) = %v, reference %v",
						trial, step, q.Prefix, q.Origin, liveStates[i], want)
				}
				if pub != nil {
					if got := pub.Validate(q.Prefix, q.Origin); got != want {
						t.Fatalf("trial %d step %d: published compact Validate(%s, %v) = %v, reference %v",
							trial, step, q.Prefix, q.Origin, got, want)
					}
				}
			}
		}
	}
}

// TestLiveIndexDeltaEdgeCases pins the no-op and boundary behaviors of
// Apply against a from-scratch NewIndex after every delta.
func TestLiveIndexDeltaEdgeCases(t *testing.T) {
	v1 := rpki.VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111}
	v1tight := rpki.VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 16, AS: 111}
	v2 := rpki.VRP{Prefix: mp("87.254.32.0/19"), MaxLength: 19, AS: 31283}
	v6 := rpki.VRP{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 64496}

	check := func(l *LiveIndex, want ...rpki.VRP) {
		t.Helper()
		set := rpki.NewSet(want)
		if l.Len() != set.Len() {
			t.Fatalf("live has %d VRPs, want %d", l.Len(), set.Len())
		}
		ref := NewReference(set)
		rng := rand.New(rand.NewSource(7))
		for q := 0; q < 300; q++ {
			r := randomProbe(rng)
			if got, wantS := l.Validate(r.Prefix, r.Origin), ref.Validate(r.Prefix, r.Origin); got != wantS {
				t.Fatalf("Validate(%s, %v) = %v, want %v", r.Prefix, r.Origin, got, wantS)
			}
		}
		for _, v := range want {
			if got := l.Validate(v.Prefix, v.AS); got != Valid {
				t.Fatalf("Validate(%s, %v) = %v, want Valid", v.Prefix, v.AS, got)
			}
		}
	}

	l := NewLiveIndex(rpki.NewSet(nil))
	check(l)
	l.Apply([]rpki.VRP{v1, v2, v6}, nil) // first announce into an empty table
	check(l, v1, v2, v6)
	l.Apply([]rpki.VRP{v1}, nil) // duplicate announce: no-op
	check(l, v1, v2, v6)
	l.Apply(nil, []rpki.VRP{v1tight}) // withdraw of absent sibling entry: no-op
	check(l, v1, v2, v6)
	l.Apply([]rpki.VRP{v1tight}, nil) // second entry at the same prefix node
	check(l, v1, v1tight, v2, v6)
	l.Apply(nil, []rpki.VRP{v1}) // withdraw one of two entries at a node
	check(l, v1tight, v2, v6)
	l.Apply([]rpki.VRP{v2}, []rpki.VRP{v2}) // announce+withdraw in one delta: withdraw wins
	check(l, v1tight, v6)
	l.Apply(nil, []rpki.VRP{v1tight, v6}) // back to empty
	check(l)
	l.Apply(nil, []rpki.VRP{v1}) // withdraw from empty: no-op
	check(l)
}

// TestLiveIndexSnapshotPersistence pins the snapshot-swap contract: a
// snapshot taken before a delta keeps answering with its own table version
// after arbitrarily many later Applies (including compactions).
func TestLiveIndexSnapshotPersistence(t *testing.T) {
	v1 := rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 16, AS: 1}
	l := NewLiveIndex(rpki.NewSet([]rpki.VRP{v1}))
	old := l.Snapshot()
	q := mp("10.5.0.0/16")

	if got := old.Validate(q, 1); got != Valid {
		t.Fatalf("pre-delta snapshot: %v", got)
	}
	// Churn hard enough to force several compactions.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, []rpki.VRP{v})
	}
	l.Apply(nil, []rpki.VRP{v1})
	if got := l.Validate(q, 1); got != NotFound {
		t.Fatalf("live after withdraw: %v, want NotFound", got)
	}
	if got := old.Validate(q, 1); got != Valid {
		t.Fatalf("old snapshot mutated by later deltas: %v, want Valid", got)
	}
	if old.Len() != 1 || l.Len() != 0 {
		t.Fatalf("Len: snapshot %d (want 1), live %d (want 0)", old.Len(), l.Len())
	}
}

// TestLiveIndexCompaction drives enough delta churn through a small table
// to cross the compaction thresholds repeatedly and asserts the shared
// slabs stay bounded — the arena must not grow with the number of applied
// deltas, only with the live set.
func TestLiveIndexCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var base []rpki.VRP
	for i := 0; i < 50; i++ {
		base = append(base, randomVRP(rng))
	}
	l := NewLiveIndex(rpki.NewSet(base))
	for i := 0; i < 5000; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
	}
	settle(t, l)
	snap := l.Snapshot()
	total := len(snap.fams[0].eng.Nodes) + len(snap.fams[1].eng.Nodes)
	// 10000 applied deltas × ~30-bit paths would be ~300k nodes without
	// compaction; the live set needs a few thousand at most.
	if total > 40000 {
		t.Fatalf("node slabs grew with delta count: %d nodes for %d live VRPs", total, snap.Len())
	}
	if len(snap.entries) > 40000 {
		t.Fatalf("entry slab grew with delta count: %d", len(snap.entries))
	}
	// And the table is still exactly base (every churned VRP was withdrawn;
	// collisions with base VRPs re-announced them, so compare as sets).
	want := rpki.NewSet(base)
	ref := NewReference(want)
	if l.Len() != want.Len() {
		t.Fatalf("live %d VRPs, want %d", l.Len(), want.Len())
	}
	for q := 0; q < 500; q++ {
		r := randomProbe(rng)
		if got, wantS := l.Validate(r.Prefix, r.Origin), ref.Validate(r.Prefix, r.Origin); got != wantS {
			t.Fatalf("after churn: Validate(%s, %v) = %v, want %v", r.Prefix, r.Origin, got, wantS)
		}
	}
}

// TestLiveIndexConcurrentReaders runs lock-free readers against a stream of
// writer deltas; under -race this pins the snapshot-swap memory contract
// (readers never observe a partially applied delta or torn slab).
func TestLiveIndexConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var base []rpki.VRP
	for i := 0; i < 40; i++ {
		base = append(base, randomVRP(rng))
	}
	l := NewLiveIndex(rpki.NewSet(base))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				ref := NewReference(rpki.NewSet(snap.AppendVRPs(nil)))
				for q := 0; q < 50; q++ {
					p := randomProbe(rng)
					if got, want := snap.Validate(p.Prefix, p.Origin), ref.Validate(p.Prefix, p.Origin); got != want {
						t.Errorf("snapshot inconsistent: Validate(%s, %v) = %v, want %v", p.Prefix, p.Origin, got, want)
						return
					}
				}
			}
		}(int64(100 + r))
	}
	for i := 0; i < 1500; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
	}
	close(stop)
	wg.Wait()
}

// TestLiveIndexCompactSwitchover runs lock-free readers across the
// bit-trie→compact switchover while a writer churns deltas through repeated
// compactions. Readers hold whichever structure they loaded — a compact
// snapshot must stay internally consistent (its answers match a reference
// built from its own exported table) no matter how many versions have been
// published since. Under -race this pins the view-swap memory contract.
func TestLiveIndexCompactSwitchover(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var base []rpki.VRP
	for i := 0; i < 200; i++ {
		base = append(base, randomVRP(rng))
	}
	l := NewLiveIndex(rpki.NewSet(base))
	if l.CompactSnapshot() == nil {
		t.Fatal("NewLiveIndex did not publish a compact snapshot")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate the two snapshot kinds so both sides of the
				// switchover are held across version swaps.
				if c := l.CompactSnapshot(); c != nil {
					ref := NewReference(rpki.NewSet(c.AppendVRPs(nil)))
					for q := 0; q < 40; q++ {
						p := randomProbe(rng)
						if got, want := c.Validate(p.Prefix, p.Origin), ref.Validate(p.Prefix, p.Origin); got != want {
							t.Errorf("compact snapshot inconsistent: Validate(%s, %v) = %v, want %v", p.Prefix, p.Origin, got, want)
							return
						}
					}
				}
				snap := l.Snapshot()
				ref := NewReference(rpki.NewSet(snap.AppendVRPs(nil)))
				for q := 0; q < 20; q++ {
					p := randomProbe(rng)
					if got, want := snap.Validate(p.Prefix, p.Origin), ref.Validate(p.Prefix, p.Origin); got != want {
						t.Errorf("bit snapshot inconsistent: Validate(%s, %v) = %v, want %v", p.Prefix, p.Origin, got, want)
						return
					}
				}
			}
		}(int64(300 + r))
	}
	for i := 0; i < 1500; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
	}
	close(stop)
	wg.Wait()
	settle(t, l)

	// The churn crossed the garbage thresholds: compactions must have cycled
	// the compact half. Keep nudging until the republished compact snapshot
	// is visible — the publish runs on the compactor goroutine after the
	// compacting flag clears, and a trailing delta hides it until the next
	// cycle — then pin it against the bit trie exactly.
	deadline := time.Now().Add(30 * time.Second)
	for l.CompactSnapshot() == nil {
		if time.Now().After(deadline) {
			t.Fatal("compact snapshot never republished after churn")
		}
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
		settle(t, l)
		time.Sleep(time.Millisecond)
	}
	l.mu.Lock()
	builds := l.compactBuilds
	l.mu.Unlock()
	if builds < 2 {
		t.Fatalf("compact snapshot never republished: %d builds", builds)
	}
	c := l.CompactSnapshot()
	snap := l.Snapshot()
	if c.Len() != snap.Len() {
		t.Fatalf("compact Len %d, bit Len %d", c.Len(), snap.Len())
	}
	for q := 0; q < 1000; q++ {
		p := randomProbe(rng)
		if got, want := c.Validate(p.Prefix, p.Origin), snap.Validate(p.Prefix, p.Origin); got != want {
			t.Fatalf("settled compact disagrees with bit trie: Validate(%s, %v) = %v, want %v", p.Prefix, p.Origin, got, want)
		}
	}
}

// TestValidateBatchMatchesValidate pins the batch APIs (serial and
// parallel) to the single-query path, including dst reuse.
func TestValidateBatchMatchesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var vrps []rpki.VRP
	for i := 0; i < 300; i++ {
		vrps = append(vrps, randomVRP(rng))
	}
	ix := NewIndex(rpki.NewSet(vrps))
	var routes []Route
	for q := 0; q < 4000; q++ {
		routes = append(routes, randomProbe(rng))
	}
	routes = append(routes, Route{}) // zero Route: invalid prefix → NotFound
	want := make([]State, len(routes))
	for i, q := range routes {
		want[i] = ix.Validate(q.Prefix, q.Origin)
	}
	got := ix.ValidateBatch(routes, nil)
	for i := range routes {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// dst reuse must not reallocate.
	reused := ix.ValidateBatch(routes, got)
	if &reused[0] != &got[0] {
		t.Fatal("batch reallocated a sufficient dst")
	}
	for _, workers := range []int{2, 4, 9} {
		par := ix.ValidateBatchParallel(routes, nil, workers)
		for i := range routes {
			if par[i] != want[i] {
				t.Fatalf("parallel(%d)[%d] = %v, want %v", workers, i, par[i], want[i])
			}
		}
	}
	// Degenerate parallel calls fall back to serial.
	small := ix.ValidateBatchParallel(routes[:3], nil, 8)
	for i := range small {
		if small[i] != want[i] {
			t.Fatalf("small parallel[%d] = %v, want %v", i, small[i], want[i])
		}
	}
}

// markerVRP returns a distinct, deterministic IPv4 /24 VRP for test deltas
// that must not collide with the randomVRP space.
func markerVRP(k int) rpki.VRP {
	addr := uint64(198<<24|18<<16|(k&0xff)<<8) << 32
	p, err := prefix.Make(prefix.IPv4, addr, 0, 24)
	if err != nil {
		panic(err)
	}
	return rpki.VRP{Prefix: p, MaxLength: 24, AS: rpki.ASN(7000 + k)}
}

// TestLiveIndexBackgroundCompactionApplyLatency pins the property background
// compaction exists for: while a compaction is stalled mid-rebuild, Apply
// keeps landing deltas — each immediately visible in a fresh snapshot —
// instead of paying the O(live set) rebuild in its own latency, and the
// rebuild's eventual publish replays every one of them. Concurrent readers
// pin snapshot consistency during the compaction under -race.
func TestLiveIndexBackgroundCompactionApplyLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var base []rpki.VRP
	for i := 0; i < 400; i++ {
		base = append(base, randomVRP(rng))
	}
	l := NewLiveIndex(rpki.NewSet(base))
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	l.mu.Lock()
	l.compactHook = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	l.mu.Unlock()

	// Readers validate arbitrary snapshots against a reference built from
	// the very same snapshot for the whole test, including the stalled
	// compaction and its publish.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				ref := NewReference(rpki.NewSet(snap.AppendVRPs(nil)))
				for q := 0; q < 30; q++ {
					p := randomProbe(rng)
					if got, want := snap.Validate(p.Prefix, p.Origin), ref.Validate(p.Prefix, p.Origin); got != want {
						t.Errorf("snapshot inconsistent during compaction: Validate(%s, %v) = %v, want %v", p.Prefix, p.Origin, got, want)
						return
					}
				}
			}
		}(int64(40 + r))
	}

	// Churn until a compaction launches and stalls inside the hook. A churned
	// VRP that happens to collide with a base VRP removes it (announce is a
	// no-op, withdraw wins), so the expected table is tracked exactly.
	state := map[rpki.VRP]struct{}{}
	for _, v := range rpki.NewSet(base).VRPs() {
		state[v] = struct{}{}
	}
	stalled := false
	for i := 0; i < 200000 && !stalled; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
		delete(state, v)
		select {
		case <-started:
			stalled = true
		default:
		}
	}
	if !stalled {
		t.Fatal("churn never triggered a compaction")
	}

	// With the rebuild stalled, every Apply must still complete and publish:
	// the marker is visible in the snapshot the moment Apply returns, and
	// the compactor stays parked in the hook (Apply never waits for it).
	const markers = 40
	for k := 0; k < markers; k++ {
		v := markerVRP(k)
		l.Apply([]rpki.VRP{v}, nil)
		if got := l.Validate(v.Prefix, v.AS); got != Valid {
			t.Fatalf("marker %d not visible immediately after Apply during stalled compaction: %v", k, got)
		}
	}
	l.mu.Lock()
	busy := l.compacting
	l.mu.Unlock()
	if !busy {
		t.Fatal("compaction finished while its hook was held — Apply must not have published the markers through it")
	}

	// Release the rebuild; its publish must replay the pending markers.
	close(release)
	settle(t, l)
	close(stop)
	wg.Wait()
	for k := 0; k < markers; k++ {
		v := markerVRP(k)
		if got := l.Validate(v.Prefix, v.AS); got != Valid {
			t.Fatalf("marker %d lost by compaction publish: %v", k, got)
		}
	}
	// Full differential against the expected table.
	want := make([]rpki.VRP, 0, len(state)+markers)
	for v := range state {
		want = append(want, v)
	}
	for k := 0; k < markers; k++ {
		want = append(want, markerVRP(k))
	}
	set := rpki.NewSet(want)
	if l.Len() != set.Len() {
		t.Fatalf("live %d VRPs, want %d", l.Len(), set.Len())
	}
	ref := NewReference(set)
	for q := 0; q < 500; q++ {
		r := randomProbe(rng)
		if got, wantS := l.Validate(r.Prefix, r.Origin), ref.Validate(r.Prefix, r.Origin); got != wantS {
			t.Fatalf("after compaction: Validate(%s, %v) = %v, want %v", r.Prefix, r.Origin, got, wantS)
		}
	}
}

// TestLiveIndexResetTo pins the reset-and-replace path: the table is swapped
// wholesale, older snapshots keep their version, and a reset racing an
// in-flight compaction wins — the compactor's rebuild of the replaced table
// is discarded, never resurrecting pre-reset data.
func TestLiveIndexResetTo(t *testing.T) {
	v1 := rpki.VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 16, AS: 1}
	v2 := rpki.VRP{Prefix: mp("192.0.2.0/24"), MaxLength: 24, AS: 2}
	l := NewLiveIndex(rpki.NewSet([]rpki.VRP{v1}))
	old := l.Snapshot()

	l.ResetTo([]rpki.VRP{v2})
	if got := l.Validate(mp("10.5.0.0/16"), 1); got != NotFound {
		t.Fatalf("replaced VRP still validates: %v", got)
	}
	if got := l.Validate(v2.Prefix, v2.AS); got != Valid {
		t.Fatalf("reset table VRP: %v, want Valid", got)
	}
	if got := old.Validate(mp("10.5.0.0/16"), 1); got != Valid {
		t.Fatalf("pre-reset snapshot mutated: %v, want Valid", got)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after reset = %d, want 1", l.Len())
	}

	// Reset racing a stalled compaction: the rebuild must be discarded.
	rng := rand.New(rand.NewSource(31))
	var base []rpki.VRP
	for i := 0; i < 400; i++ {
		base = append(base, randomVRP(rng))
	}
	l = NewLiveIndex(rpki.NewSet(base))
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	l.mu.Lock()
	l.compactHook = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	l.mu.Unlock()
	stalled := false
	for i := 0; i < 200000 && !stalled; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
		select {
		case <-started:
			stalled = true
		default:
		}
	}
	if !stalled {
		t.Fatal("churn never triggered a compaction")
	}
	reset := []rpki.VRP{v1, v2}
	l.ResetTo(reset)
	close(release)
	// Wait for the doomed compaction to observe the reset and discard.
	deadline := time.Now().Add(30 * time.Second)
	for {
		l.mu.Lock()
		busy := l.compacting
		l.mu.Unlock()
		if !busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	if l.Len() != 2 {
		t.Fatalf("Len after reset-during-compaction = %d, want 2 (stale rebuild published?)", l.Len())
	}
	ref := NewReference(rpki.NewSet(reset))
	for q := 0; q < 500; q++ {
		r := randomProbe(rng)
		if got, want := l.Validate(r.Prefix, r.Origin), ref.Validate(r.Prefix, r.Origin); got != want {
			t.Fatalf("after reset-during-compaction: Validate(%s, %v) = %v, want %v", r.Prefix, r.Origin, got, want)
		}
	}
	// The index keeps working: deltas apply on the reset table.
	l.Apply(nil, []rpki.VRP{v2})
	if got := l.Validate(v2.Prefix, v2.AS); got != NotFound || l.Len() != 1 {
		t.Fatalf("delta after reset: %v len %d, want NotFound len 1", got, l.Len())
	}
}

// TestLiveIndexPendingLogBounded is the regression test for the compaction
// replay log: churn that outpaces a (here: wedged) rebuild must never grow
// the pending log past the configured bound. Apply aborts the compaction at
// the limit and the garbage counters retrigger a fresh one when the stalled
// goroutine drains, so the table still converges to exactly the applied
// history.
func TestLiveIndexPendingLogBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var base []rpki.VRP
	for i := 0; i < 400; i++ {
		base = append(base, randomVRP(rng))
	}
	l := NewLiveIndex(rpki.NewSet(base))
	const limit = 64
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	l.mu.Lock()
	l.pendingLimit = limit
	l.compactHook = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	l.mu.Unlock()

	state := map[rpki.VRP]struct{}{}
	for _, v := range rpki.NewSet(base).VRPs() {
		state[v] = struct{}{}
	}

	// Churn until a compaction launches and stalls inside the hook.
	stalled := false
	for i := 0; i < 200000 && !stalled; i++ {
		v := randomVRP(rng)
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
		delete(state, v)
		select {
		case <-started:
			stalled = true
		default:
		}
	}
	if !stalled {
		t.Fatal("churn never triggered a compaction")
	}

	// Keep churning far past the limit while the compactor is wedged. The
	// log must stay bounded at every step, not just at the end.
	for i := 0; i < 50*limit; i++ {
		v := randomVRP(rng)
		if _, ok := state[v]; ok {
			l.Apply(nil, []rpki.VRP{v})
			delete(state, v)
		} else {
			l.Apply([]rpki.VRP{v}, nil)
			state[v] = struct{}{}
		}
		l.mu.Lock()
		n := len(l.pending)
		l.mu.Unlock()
		if n > limit {
			t.Fatalf("pending log grew to %d ops, limit %d", n, limit)
		}
	}
	l.mu.Lock()
	aborts := l.compactAborts
	l.mu.Unlock()
	if aborts == 0 {
		t.Fatal("no compaction abort despite churn past the limit")
	}

	// Unwedge: the stale rebuild is discarded (generation mismatch), the
	// retried compaction completes, and the table equals the applied history
	// exactly.
	close(release)
	settle(t, l)
	want := make([]rpki.VRP, 0, len(state))
	for v := range state {
		want = append(want, v)
	}
	got := l.Snapshot().AppendVRPs(nil)
	extra, missing := naiveSetDiff(want, got)
	if len(extra) != 0 || len(missing) != 0 {
		t.Fatalf("table diverged after aborted compactions: %d extra, %d missing", len(extra), len(missing))
	}
	if l.Len() != len(state) {
		t.Fatalf("live len %d, want %d", l.Len(), len(state))
	}
}
