package rov

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func v(p string, ml uint8, as rpki.ASN) rpki.VRP {
	return rpki.VRP{Prefix: mp(p), MaxLength: ml, AS: as}
}

// runningExampleSet is the ROA of §2: (168.122.0.0/16, AS 111), no maxLength.
func runningExampleSet() *rpki.Set {
	return rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 16, 111)})
}

func TestRFC6811RunningExample(t *testing.T) {
	ix := NewIndex(runningExampleSet())
	cases := []struct {
		p      string
		origin rpki.ASN
		want   State
	}{
		// §2: AS 111's own announcement is valid.
		{"168.122.0.0/16", 111, Valid},
		// §2: the subprefix hijack "168.122.0.0/24: AS m" is invalid —
		// covered by the ROA but matching nothing.
		{"168.122.0.0/24", 666, Invalid},
		// §2: AS 111's own /24 de-aggregation is ALSO invalid without a
		// matching ROA ("this route would be considered invalid").
		{"168.122.225.0/24", 111, Invalid},
		// A prefix hijack of the exact prefix by another AS: Invalid.
		{"168.122.0.0/16", 666, Invalid},
		// Unrelated space: NotFound.
		{"192.0.2.0/24", 666, NotFound},
		// Shorter covering announcement is NOT covered by the ROA.
		{"168.0.0.0/8", 111, NotFound},
	}
	for _, c := range cases {
		if got := ix.Validate(mp(c.p), c.origin); got != c.want {
			t.Errorf("Validate(%s, %v) = %v, want %v", c.p, c.origin, got, c.want)
		}
	}
}

func TestMaxLengthValidation(t *testing.T) {
	// §3: with maxLength 24, AS 111's de-aggregations become valid — and so
	// does the §4 forged-origin subprefix hijack route.
	ix := NewIndex(rpki.NewSet([]rpki.VRP{v("168.122.0.0/16", 24, 111)}))
	if got := ix.Validate(mp("168.122.225.0/24"), 111); got != Valid {
		t.Errorf("de-aggregated /24 = %v, want Valid", got)
	}
	if got := ix.Validate(mp("168.122.0.0/17"), 111); got != Valid {
		t.Errorf("/17 = %v, want Valid", got)
	}
	if got := ix.Validate(mp("168.122.0.0/25"), 111); got != Invalid {
		t.Errorf("/25 beyond maxLength = %v, want Invalid", got)
	}
	// §4 point (2): the hijacker's announcement "168.122.0.0/24: AS m, AS
	// 111" has origin AS 111 (forged) and is Valid — the RPKI cannot tell.
	if got := ix.Validate(mp("168.122.0.0/24"), 111); got != Valid {
		t.Errorf("forged-origin subprefix route = %v, want Valid (the attack)", got)
	}
}

func TestMultipleVRPs(t *testing.T) {
	// Several VRPs, one matching: Valid wins over Invalid.
	ix := NewIndex(rpki.NewSet([]rpki.VRP{
		v("10.0.0.0/8", 8, 1),
		v("10.0.0.0/8", 24, 2),
	}))
	if got := ix.Validate(mp("10.5.0.0/16"), 2); got != Valid {
		t.Errorf("= %v, want Valid via the AS 2 VRP", got)
	}
	if got := ix.Validate(mp("10.5.0.0/16"), 1); got != Invalid {
		t.Errorf("= %v, want Invalid (AS 1 maxLength is 8)", got)
	}
	// VRP deeper in the trie than the route contributes nothing.
	ix2 := NewIndex(rpki.NewSet([]rpki.VRP{v("10.0.0.0/16", 16, 1)}))
	if got := ix2.Validate(mp("10.0.0.0/8"), 1); got != NotFound {
		t.Errorf("shorter route = %v, want NotFound", got)
	}
}

func TestIPv6Validation(t *testing.T) {
	ix := NewIndex(rpki.NewSet([]rpki.VRP{v("2001:db8::/32", 48, 64496)}))
	if got := ix.Validate(mp("2001:db8:1::/48"), 64496); got != Valid {
		t.Errorf("= %v, want Valid", got)
	}
	if got := ix.Validate(mp("2001:db8::/49"), 64496); got != Invalid {
		t.Errorf("= %v, want Invalid", got)
	}
	if got := ix.Validate(mp("2001:db9::/48"), 64496); got != NotFound {
		t.Errorf("= %v, want NotFound", got)
	}
}

func TestValidateRoute(t *testing.T) {
	ix := NewIndex(runningExampleSet())
	if s, ok := ix.ValidateRoute(mp("168.122.0.0/16"), 111); !ok || s != Valid {
		t.Error("ValidateRoute Valid case wrong")
	}
	if _, ok := ix.ValidateRoute(mp("168.122.0.0/24"), 666); ok {
		t.Error("ValidateRoute Invalid case wrong")
	}
}

func TestStateString(t *testing.T) {
	if NotFound.String() != "NotFound" || Invalid.String() != "Invalid" || Valid.String() != "Valid" {
		t.Error("State strings wrong")
	}
	if !strings.Contains(State(9).String(), "9") {
		t.Error("unknown state string")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(rpki.NewSet(nil))
	if ix.Len() != 0 {
		t.Error("empty index Len != 0")
	}
	if got := ix.Validate(mp("10.0.0.0/8"), 1); got != NotFound {
		t.Errorf("empty index = %v, want NotFound", got)
	}
}

// TestIndexAgainstReference fuzzes Index vs the linear-scan Reference.
func TestIndexAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		var vrps []rpki.VRP
		for i := 0; i < rng.Intn(40); i++ {
			l := uint8(4 + rng.Intn(21))
			p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
			ml := l + uint8(rng.Intn(int(32-l)+1))
			vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(rng.Intn(6))})
		}
		set := rpki.NewSet(vrps)
		ix, ref := NewIndex(set), NewReference(set)
		if ix.Len() != set.Len() {
			t.Fatalf("index size %d != set size %d", ix.Len(), set.Len())
		}
		for q := 0; q < 200; q++ {
			l := uint8(rng.Intn(33))
			p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
			origin := rpki.ASN(rng.Intn(6))
			if got, want := ix.Validate(p, origin), ref.Validate(p, origin); got != want {
				t.Fatalf("trial %d: Validate(%s, %v) = %v, reference = %v", trial, p, origin, got, want)
			}
		}
	}
}

func BenchmarkIndexValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var vrps []rpki.VRP
	for i := 0; i < 50000; i++ {
		l := uint8(8 + rng.Intn(17))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: l + uint8(rng.Intn(3)), AS: rpki.ASN(rng.Intn(30000))})
	}
	ix := NewIndex(rpki.NewSet(vrps))
	q := mp("87.254.32.0/19")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Validate(q, 31283)
	}
}

// BenchmarkCompactIndexValidate is BenchmarkIndexValidate on the
// path-compressed index: same 50k-VRP table, same query. This is the
// headline hot-path number — one stride-table load plus a branch-point
// descent instead of one node hop per prefix bit.
func BenchmarkCompactIndexValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var vrps []rpki.VRP
	for i := 0; i < 50000; i++ {
		l := uint8(8 + rng.Intn(17))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: l + uint8(rng.Intn(3)), AS: rpki.ASN(rng.Intn(30000))})
	}
	cx := NewCompactIndex(rpki.NewSet(vrps))
	ix := NewIndex(rpki.NewSet(vrps))
	q := mp("87.254.32.0/19")
	if got, want := cx.Validate(q, 31283), ix.Validate(q, 31283); got != want {
		b.Fatalf("compact answer %v, index answer %v", got, want)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx.Validate(q, 31283)
	}
}
