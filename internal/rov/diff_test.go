package rov

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/rpki"
)

// The tests in this file pin Diff bit-identical to naiveSetDiff, a reference
// that knows nothing about tries or arenas: materialize both tables, take
// the two set differences, sort canonically. Agreement is checked over both
// regimes Diff distinguishes — shared-ancestry snapshot pairs (one LiveIndex
// history, where the structural walk skips shared subtrees) and
// independent-build pairs (two unrelated indexes, the linear fallback).

// sortVRPsCanonical sorts vs into Diff's documented output order: canonical
// prefix order, then AS, then MaxLength.
func sortVRPsCanonical(vs []rpki.VRP) {
	sort.Slice(vs, func(i, j int) bool {
		if c := vs[i].Prefix.Compare(vs[j].Prefix); c != 0 {
			return c < 0
		}
		if vs[i].AS != vs[j].AS {
			return vs[i].AS < vs[j].AS
		}
		return vs[i].MaxLength < vs[j].MaxLength
	})
}

// naiveSetDiff is the reference: plain set difference over the two
// materialized tables, canonically sorted.
func naiveSetDiff(old, nw []rpki.VRP) (announced, withdrawn []rpki.VRP) {
	os := make(map[rpki.VRP]bool, len(old))
	for _, v := range old {
		os[v] = true
	}
	ns := make(map[rpki.VRP]bool, len(nw))
	for _, v := range nw {
		ns[v] = true
	}
	for _, v := range nw {
		if !os[v] {
			announced = append(announced, v)
		}
	}
	for _, v := range old {
		if !ns[v] {
			withdrawn = append(withdrawn, v)
		}
	}
	sortVRPsCanonical(announced)
	sortVRPsCanonical(withdrawn)
	return announced, withdrawn
}

// checkDiffAgainstNaive asserts Diff(old, nw) is bit-identical to the naive
// reference over the same two tables.
func checkDiffAgainstNaive(t *testing.T, old, nw *Index) {
	t.Helper()
	gotA, gotW := Diff(old, nw)
	wantA, wantW := naiveSetDiff(old.AppendVRPs(nil), nw.AppendVRPs(nil))
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatalf("announced mismatch:\n got %v\nwant %v", gotA, wantA)
	}
	if !reflect.DeepEqual(gotW, wantW) {
		t.Fatalf("withdrawn mismatch:\n got %v\nwant %v", gotW, wantW)
	}
}

// randomTable draws n distinct random VRPs.
func randomTable(rng *rand.Rand, n int) []rpki.VRP {
	seen := make(map[rpki.VRP]bool, n)
	var out []rpki.VRP
	for len(out) < n {
		v := randomVRP(rng)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func TestDiffMatchesNaiveSharedAncestry(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 30; iter++ {
		base := randomTable(rng, 150)
		l := NewLiveIndex(rpki.NewSet(base))
		old := l.Snapshot()
		table := make(map[rpki.VRP]bool, len(base))
		for _, v := range base {
			table[v] = true
		}
		// Churn through several Applies: announce fresh VRPs, withdraw
		// existing ones, and re-announce VRPs already present (no-ops the
		// diff must not report).
		for k := 0; k < 4; k++ {
			var ann, wd []rpki.VRP
			for i := 0; i < 10; i++ {
				v := randomVRP(rng)
				ann = append(ann, v)
				table[v] = true
			}
			for v := range table {
				if rng.Intn(12) == 0 {
					wd = append(wd, v)
					delete(table, v)
				}
			}
			l.Apply(ann, wd)
		}
		settle(t, l)
		checkDiffAgainstNaive(t, old, l.Snapshot())

		// The reverse direction swaps announced and withdrawn.
		checkDiffAgainstNaive(t, l.Snapshot(), old)
	}
}

func TestDiffMatchesNaiveIndependentBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 30; iter++ {
		old := randomTable(rng, 120)
		// Derive the second table from the first: drop some, add some, so
		// the overlap the linear walk must cancel out is substantial.
		var nw []rpki.VRP
		for _, v := range old {
			if rng.Intn(8) != 0 {
				nw = append(nw, v)
			}
		}
		nw = append(nw, randomTable(rng, 15)...)
		checkDiffAgainstNaive(t, NewIndex(rpki.NewSet(old)), NewIndex(rpki.NewSet(nw)))
	}
}

func TestDiffEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	table := randomTable(rng, 50)
	ix := NewIndex(rpki.NewSet(table))
	empty := NewIndex(rpki.NewSet(nil))

	if a, w := Diff(ix, ix); a != nil || w != nil {
		t.Fatalf("Diff(ix, ix) = %v, %v; want nil, nil", a, w)
	}
	// Equal tables, independent builds: still empty.
	if a, w := Diff(ix, NewIndex(rpki.NewSet(table))); len(a) != 0 || len(w) != 0 {
		t.Fatalf("Diff over equal independent tables = %v, %v; want empty", a, w)
	}
	checkDiffAgainstNaive(t, empty, ix) // everything announced
	checkDiffAgainstNaive(t, ix, empty) // everything withdrawn
}

func TestDiffSurvivesCompactionAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	base := randomTable(rng, 100)
	l := NewLiveIndex(rpki.NewSet(base))
	old := l.Snapshot()

	// ResetTo rebuilds into a fresh arena: the snapshots no longer share a
	// lineage and Diff must take the linear path, still exact.
	next := randomTable(rng, 90)
	l.ResetTo(next)
	checkDiffAgainstNaive(t, old, l.Snapshot())

	// DiffSince is Diff against the current snapshot.
	a1, w1 := l.DiffSince(old)
	a2, w2 := Diff(old, l.Snapshot())
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(w1, w2) {
		t.Fatal("DiffSince disagrees with Diff over the same snapshots")
	}
}
