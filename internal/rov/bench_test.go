package rov

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// benchSet builds a 50k-VRP table shaped like a real snapshot (random
// prefixes, many origins), cached across benchmarks in this file.
var benchSetCache *rpki.Set

func benchSet() *rpki.Set {
	if benchSetCache == nil {
		rng := rand.New(rand.NewSource(1))
		var vrps []rpki.VRP
		for i := 0; i < 50000; i++ {
			l := uint8(8 + rng.Intn(17))
			p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
			vrps = append(vrps, rpki.VRP{Prefix: p, MaxLength: l + uint8(rng.Intn(3)), AS: rpki.ASN(rng.Intn(30000))})
		}
		benchSetCache = rpki.NewSet(vrps)
	}
	return benchSetCache
}

func benchRoutes(n int) []Route {
	rng := rand.New(rand.NewSource(2))
	out := make([]Route, n)
	for i := range out {
		l := uint8(8 + rng.Intn(17))
		p, _ := prefix.Make(prefix.IPv4, rng.Uint64()&0xffffffff00000000, 0, l)
		out[i] = Route{Prefix: p, Origin: rpki.ASN(rng.Intn(30000))}
	}
	return out
}

// BenchmarkIndexBuild measures the arena build: two passes of slab appends,
// not one pointer allocation per prefix bit.
func BenchmarkIndexBuild(b *testing.B) {
	s := benchSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex(s)
		if ix.Len() != s.Len() {
			b.Fatal("short index")
		}
	}
}

// BenchmarkValidateBatch measures batch classification throughput over a
// 50k-VRP table; ns/op is per batch of 8192 routes.
func BenchmarkValidateBatch(b *testing.B) {
	ix := NewIndex(benchSet())
	routes := benchRoutes(8192)
	dst := make([]State, len(routes))
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = ix.ValidateBatch(routes, dst)
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = ix.ValidateBatchParallel(routes, dst, 4)
		}
	})
}

// BenchmarkCompactBuild measures the compact build from a sorted set: the
// one-pass builder plus aggregation and stride-table fill — the price
// LiveIndex compaction pays to republish the fast read path.
func BenchmarkCompactBuild(b *testing.B) {
	s := benchSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx := NewCompactIndex(s)
		if cx.Len() != s.Len() {
			b.Fatal("short compact index")
		}
	}
}

// BenchmarkCompactValidateBatch measures compact batch throughput over the
// same 50k-VRP table and 8192-route batch as BenchmarkValidateBatch, plus
// the sorted variant whose bucket pass trades a permutation allocation for
// slab locality.
func BenchmarkCompactValidateBatch(b *testing.B) {
	cx := NewCompactIndex(benchSet())
	routes := benchRoutes(8192)
	dst := make([]State, len(routes))
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = cx.ValidateBatch(routes, dst)
		}
	})
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = cx.ValidateBatchSorted(routes, dst)
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = cx.ValidateBatchParallel(routes, dst, 4)
		}
	})
}

// BenchmarkLiveApply measures one announce+withdraw delta pair against a
// 50k-VRP live table: cost must track the delta, not the table.
func BenchmarkLiveApply(b *testing.B) {
	l := NewLiveIndex(benchSet())
	v := rpki.VRP{Prefix: prefix.MustParse("198.51.100.0/24"), MaxLength: 24, AS: 64511}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Apply([]rpki.VRP{v}, nil)
		l.Apply(nil, []rpki.VRP{v})
	}
}

// BenchmarkSnapshotDiff measures the structural diff between two snapshots
// of the paper-scale table. The shared/N cases diff two snapshots of one
// LiveIndex history N applied VRPs apart: the walk skips shared subtrees, so
// cost must scale with N (the divergence), not the 50k-VRP table. The
// independent/1 case diffs two unrelated builds of the same tables — no
// provable sharing, so it pays the full-table dual walk and stands as the
// baseline the shared cases are measured against.
func BenchmarkSnapshotDiff(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		l := NewLiveIndex(benchSet())
		old := l.Snapshot()
		delta := make([]rpki.VRP, n)
		for i := range delta {
			addr := uint64(198<<24|51<<16|100<<8) << 32
			p, err := prefix.Make(prefix.IPv4, addr+uint64(i)<<40, 0, 24)
			if err != nil {
				b.Fatal(err)
			}
			delta[i] = rpki.VRP{Prefix: p, MaxLength: 24, AS: 64511}
		}
		l.Apply(delta, nil)
		nw := l.Snapshot()
		b.Run(fmt.Sprintf("shared/%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ann, wd := Diff(old, nw)
				if len(ann) != n || len(wd) != 0 {
					b.Fatalf("diff %d/%d, want %d/0", len(ann), len(wd), n)
				}
			}
		})
	}
	s := benchSet()
	oldIx := NewIndex(s)
	nwVRPs := append([]rpki.VRP(nil), s.VRPs()...)
	nwVRPs = append(nwVRPs, rpki.VRP{Prefix: prefix.MustParse("198.51.100.0/24"), MaxLength: 24, AS: 64511})
	nwIx := newIndexFromVRPs(nwVRPs)
	b.Run("independent/1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ann, wd := Diff(oldIx, nwIx)
			if len(ann) != 1 || len(wd) != 0 {
				b.Fatalf("diff %d/%d, want 1/0", len(ann), len(wd))
			}
		}
	})
}
