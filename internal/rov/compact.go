package rov

import (
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file is the path-compressed serving index: the same RFC 6811 answers
// as Index, at a fraction of the memory traffic. Two ideas compose:
//
//  1. Path compression (core.CompactEngine): a node exists only at branch
//     points and VRP-carrying prefixes, and stores its full key, so one
//     xor-shift compare verifies an entire compressed edge. A lookup hops
//     O(branch points), not O(prefix bits).
//
//  2. A per-family stride table + aggregated spans: the top of a real VRP
//     table is maximally branchy (at 50k random prefixes essentially every
//     node above /14 has two children), so even a compressed walk pays one
//     dependent cache miss per level there. The stride table replaces those
//     levels with a single indexed load: slot s holds the subtree entry
//     point for addresses whose top `stride` bits equal s. And each node's
//     span holds not its own entries but the *aggregate* — every entry on
//     its root path, ancestors first, its own entries (recognizable as the
//     tail with plen == node.PLen) last — so the walk never collects along
//     the way: wherever it stops, one contiguous scan of the stop node's
//     span is the full RFC 6811 candidate set. Entries carry their
//     originating prefix length, and the scan skips those longer than the
//     query — exactly the non-covering ancestors-of-the-slot case that
//     arises for queries shorter than the stride.
//
// A CompactIndex is built in one linear pass over a canonically sorted VRP
// stream (Index.AppendVRPs emits one; rpki.Set stores one) and is immutable
// afterwards. LiveIndex keeps the bit-at-a-time trie for O(delta) updates
// and republishes a CompactIndex at every compaction point.

// centry is one VRP payload in the aggregated entry slab. plen is the
// originating prefix's length: aggregated spans mix entries from the whole
// root path, and a query shorter than the slot stride must skip entries
// whose prefix is longer than (i.e. does not cover) the query.
type centry struct {
	plen      uint8
	maxLength uint8
	as        rpki.ASN
}

// cspan is the compact engine payload: the node's aggregated entries live at
// CompactIndex.entries[off : off+n]. The zero cspan is empty.
type cspan struct {
	off int32
	n   int32
}

// cslot is one stride-table slot: the aggregated span of the deepest trie
// prefix of length <= stride covering the slot (serves queries shorter than
// the stride, and slots with no deeper subtree), and the slab index of the
// slot's subtree entry point — the shallowest node of length >= stride whose
// top stride bits equal the slot — or 0 when none exists.
type cslot struct {
	span cspan
	root int32
}

// famCompact is one address family's compact structure. shift is
// 64 - stride, precomputed for the hot path. A family with no VRPs stays
// zero (slots == nil) and answers NotFound.
type famCompact struct {
	eng    core.CompactEngine[cspan]
	slots  []cslot
	shift  uint8
	stride uint8
}

// strideCutoff selects the stride: families at paper scale (>= 4096 VRPs)
// take a 16-bit table (65536 slots, ~0.8MB — one load replaces the 14+
// branchy top levels), small tables an 8-bit one (256 slots).
const strideCutoff = 4096

// CompactIndex answers RFC 6811 queries in O(branch points below the stride
// table). Build one with NewCompactIndex or CompactFromIndex; a CompactIndex
// is immutable and safe for concurrent readers. It has no update path at
// all — LiveIndex pairs it with the bit-trie Index, republishing a fresh
// compact snapshot at each compaction.
//
//repro:immutable
type CompactIndex struct {
	fams    [2]famCompact // famSlot order: IPv4, IPv6
	entries []centry      // shared aggregated value slab
	size    int
}

// NewCompactIndex builds a compact validation index over the set's VRPs.
// The returned index is published: treat it as frozen from this point on.
//
//repro:immutable
func NewCompactIndex(s *rpki.Set) *CompactIndex {
	return newCompactFromVRPs(s.VRPs())
}

// CompactFromIndex builds the compact equivalent of ix in a single linear
// pass over its canonical walk — the compaction-time path: the bit-trie is
// walked once anyway, and its AppendVRPs order is exactly the sorted stream
// the builder wants, so no re-sort happens.
//
//repro:immutable
func CompactFromIndex(ix *Index) *CompactIndex {
	return newCompactFromVRPs(ix.AppendVRPs(make([]rpki.VRP, 0, ix.Len())))
}

// newCompactFromVRPs builds the compact index. The input is not retained.
// Canonically sorted input (the Set / AppendVRPs case) is detected and used
// in place; anything else is partitioned and stable-sorted per family, so
// per-prefix entry order still follows input order, matching Index's spans.
func newCompactFromVRPs(vrps []rpki.VRP) *CompactIndex {
	cx := &CompactIndex{size: len(vrps)}
	var byFam [2][]rpki.VRP
	if split, ok := familySortedSplit(vrps); ok {
		byFam[0], byFam[1] = vrps[:split], vrps[split:]
	} else {
		var counts [2]int
		for _, v := range vrps {
			counts[famSlot(v.Prefix.Family())]++
		}
		for slot := range byFam {
			byFam[slot] = make([]rpki.VRP, 0, counts[slot])
		}
		for _, v := range vrps {
			slot := famSlot(v.Prefix.Family())
			byFam[slot] = append(byFam[slot], v)
		}
		for slot := range byFam {
			// Stable so per-prefix entry order follows input order; the
			// generic sort moves typed elements directly, where
			// sort.SliceStable's reflected swaps dominated the whole build.
			slices.SortStableFunc(byFam[slot], func(a, b rpki.VRP) int {
				return a.Prefix.Compare(b.Prefix)
			})
		}
	}
	for slot := range cx.fams {
		buildFamCompact(&cx.fams[slot], slotFamily(slot), byFam[slot], &cx.entries)
	}
	return cx
}

// familySortedSplit reports whether vrps is globally in canonical prefix
// order (all IPv4 before all IPv6, each family sorted) and, if so, the index
// of the first IPv6 VRP.
func familySortedSplit(vrps []rpki.VRP) (int, bool) {
	split := len(vrps)
	for i, v := range vrps {
		if famSlot(v.Prefix.Family()) == 1 {
			split = i
			break
		}
	}
	for i := 1; i < len(vrps); i++ {
		a, b := vrps[i-1].Prefix, vrps[i].Prefix
		if famSlot(a.Family()) == famSlot(b.Family()) && a.Compare(b) > 0 {
			return 0, false
		}
		if i >= split && famSlot(b.Family()) == 0 {
			return 0, false // IPv4 after the IPv6 block
		}
	}
	return split, true
}

// buildFamCompact builds one family's trie, aggregated spans, and stride
// table from its canonically sorted VRPs, appending entries to the shared
// slab. Three passes: builder insert (collecting per-node own-entry spans
// into a scratch slab), a pre-order aggregation walk that materializes each
// node's span as parent-aggregate + own entries, and a pre-order slot fill.
func buildFamCompact(f *famCompact, fam prefix.Family, vrps []rpki.VRP, entries *[]centry) {
	if len(vrps) == 0 {
		return
	}

	// Pass 1: compact trie plus own-entry spans, exactly the two-pass span
	// construction of newIndexFromVRPs, but over branch-point nodes only.
	var b core.CompactBuilder[cspan]
	b.Reset(&f.eng, 2*len(vrps), fam, cspan{})
	terms := termsScratch.Get(len(vrps))
	if terms == nil {
		terms = make([]int32, 0, len(vrps))
	}
	defer func() { termsScratch.Put(terms) }()
	for _, v := range vrps {
		idx := b.Add(v.Prefix, cspan{})
		f.eng.Nodes[idx].Val.n++
		terms = append(terms, idx)
	}
	own := make([]centry, len(vrps))
	off := int32(0)
	for j := range f.eng.Nodes {
		sp := &f.eng.Nodes[j].Val
		sp.off = off
		off += sp.n
		sp.n = 0 // reused as the fill cursor below
	}
	for i, v := range vrps {
		sp := &f.eng.Nodes[terms[i]].Val
		own[sp.off+sp.n] = centry{plen: v.Prefix.Len(), maxLength: v.MaxLength, as: v.AS}
		sp.n++
	}

	// Size the shared slab before aggregating: each node's final span is as
	// long as the entries on its root path, so the total is a cheap pre-order
	// accumulation. Reserving it up front makes pass 2 append into place
	// instead of repeatedly relocating a slab that ends up many times the
	// VRP count.
	type cntFrame struct {
		idx    int32
		parent int32
	}
	total := 0
	cnt := make([]cntFrame, 1, 130)
	cnt[0] = cntFrame{idx: 0}
	for len(cnt) > 0 {
		fr := cnt[len(cnt)-1]
		cnt = cnt[:len(cnt)-1]
		agg := fr.parent + f.eng.Nodes[fr.idx].Val.n
		total += int(agg)
		for bit := 1; bit >= 0; bit-- {
			if c := f.eng.Nodes[fr.idx].Children[bit]; c != core.NoChild {
				cnt = append(cnt, cntFrame{idx: c, parent: agg})
			}
		}
	}
	*entries = slices.Grow(*entries, total)

	// Pass 2: aggregation. Pre-order DFS; each node's final span is its
	// parent's aggregate followed by its own entries, so ancestors come
	// first and the node's own entries are the tail with plen == PLen.
	// Parent aggregates are already materialized in the shared slab when the
	// children are visited (self-append reads the pre-relocation backing).
	type aggFrame struct {
		idx    int32
		parent cspan
	}
	stack := make([]aggFrame, 1, 130)
	stack[0] = aggFrame{idx: 0}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ownSp := f.eng.Nodes[fr.idx].Val
		aggOff := int32(len(*entries))
		*entries = append(*entries, (*entries)[fr.parent.off:fr.parent.off+fr.parent.n]...)
		*entries = append(*entries, own[ownSp.off:ownSp.off+ownSp.n]...)
		agg := cspan{off: aggOff, n: fr.parent.n + ownSp.n}
		f.eng.Nodes[fr.idx].Val = agg
		for bit := 1; bit >= 0; bit-- {
			if c := f.eng.Nodes[fr.idx].Children[bit]; c != core.NoChild {
				stack = append(stack, aggFrame{idx: c, parent: agg})
			}
		}
	}

	// Pass 3: the stride table. Pre-order DFS again: nodes above the stride
	// paint their slot range with their aggregate (children overwrite their
	// subranges, leaving each slot with its deepest covering aggregate);
	// the first node at or below the stride becomes the slot's subtree
	// entry point, and its subtree — which by the patricia LCA argument
	// cannot reach any other slot — is pruned.
	f.stride = 8
	if len(vrps) >= strideCutoff {
		f.stride = 16
	}
	f.shift = 64 - f.stride
	f.slots = make([]cslot, 1<<f.stride)
	walk := make([]int32, 1, 130)
	walk[0] = 0
	for len(walk) > 0 {
		idx := walk[len(walk)-1]
		walk = walk[:len(walk)-1]
		nd := &f.eng.Nodes[idx]
		switch {
		case nd.PLen < f.stride:
			base := nd.Hi >> f.shift
			count := uint64(1) << (f.stride - nd.PLen)
			for s := base; s < base+count; s++ {
				f.slots[s].span = nd.Val
			}
			for bit := 1; bit >= 0; bit-- {
				if c := nd.Children[bit]; c != core.NoChild {
					walk = append(walk, c)
				}
			}
		case nd.PLen == f.stride:
			s := nd.Hi >> f.shift
			f.slots[s].span = nd.Val
			f.slots[s].root = idx
		default: // PLen > stride: first crossing node wins the slot
			s := nd.Hi >> f.shift
			if f.slots[s].root == core.NoChild {
				f.slots[s].root = idx
			}
		}
	}
}

// Len returns the number of indexed VRPs.
func (cx *CompactIndex) Len() int { return cx.size }

// validateCompact classifies (p, origin) against one family's compact
// structure: one stride-table load, a compressed-edge descent of the slot's
// subtree, and one contiguous scan of the stop node's aggregated span.
//
//repro:noalloc
func (f *famCompact) validateCompact(entries []centry, p prefix.Prefix, origin rpki.ASN) State {
	if f.slots == nil {
		return NotFound
	}
	qhi, qlo := p.Bits()
	qlen := p.Len()
	sl := &f.slots[qhi>>f.shift]
	sp := sl.span
	if idx := sl.root; idx != core.NoChild {
		nodes := f.eng.Nodes
		n := &nodes[idx]
		for n.PLen <= qlen && keyMatch(n.Hi, n.Lo, qhi, qlo, n.PLen) {
			sp = n.Val
			c := n.Children[core.AddrBit(qhi, qlo, n.PLen)]
			if c == core.NoChild {
				break
			}
			n = &nodes[c]
		}
	}
	es := entries[sp.off : sp.off+sp.n]
	if qlen >= f.stride {
		// Every aggregated entry covers the query: slot spans hold only
		// entries with plen <= stride, and descent spans only entries with
		// plen <= node.PLen <= qlen. The scan needs no per-entry filter.
		for _, e := range es {
			if e.as == origin && qlen <= e.maxLength {
				return Valid
			}
		}
		if len(es) > 0 {
			return Invalid
		}
		return NotFound
	}
	state := NotFound
	for _, e := range es {
		if e.plen > qlen {
			continue // longer than the query: does not cover it
		}
		if e.as == origin && qlen <= e.maxLength {
			return Valid
		}
		state = Invalid
	}
	return state
}

// keyMatch reports whether the query address (qhi, qlo) starts with the
// plen-bit node key (nhi, nlo) — the skip-edge predicate: one xor-shift
// verifies every compressed bit at once. Shift counts >= the width yield 0
// in Go, so plen 0 and the 64/128 boundaries need no special cases.
//
//repro:noalloc
func keyMatch(nhi, nlo, qhi, qlo uint64, plen uint8) bool {
	if plen <= 64 {
		return (nhi^qhi)>>(64-plen) == 0
	}
	return nhi == qhi && (nlo^qlo)>>(128-plen) == 0
}

// Validate classifies route (p, origin) per RFC 6811. Zero allocations.
//
//repro:noalloc
func (cx *CompactIndex) Validate(p prefix.Prefix, origin rpki.ASN) State {
	if !p.IsValid() {
		return NotFound
	}
	return cx.fams[famSlot(p.Family())].validateCompact(cx.entries, p, origin)
}

// ValidateRoute is a convenience wrapper over (prefix, origin) pairs
// expressed as a VRP-shaped route.
//
//repro:noalloc
func (cx *CompactIndex) ValidateRoute(p prefix.Prefix, origin rpki.ASN) (State, bool) {
	s := cx.Validate(p, origin)
	return s, s == Valid
}

// ValidateBatch classifies every route in one pass, writing states into dst
// (grown if needed) and returning it. dst[i] corresponds to routes[i].
func (cx *CompactIndex) ValidateBatch(routes []Route, dst []State) []State {
	if cap(dst) < len(routes) {
		dst = make([]State, len(routes))
	} else {
		dst = dst[:len(routes)]
	}
	f4, f6 := &cx.fams[0], &cx.fams[1]
	entries := cx.entries
	for i, q := range routes {
		switch q.Prefix.Family() {
		case prefix.IPv4:
			dst[i] = f4.validateCompact(entries, q.Prefix, q.Origin)
		case prefix.IPv6:
			dst[i] = f6.validateCompact(entries, q.Prefix, q.Origin)
		default:
			dst[i] = NotFound
		}
	}
	return dst
}

// sortBits is the radix width of ValidateBatchSorted's bucket pass: routes
// are grouped by family and top address bits so the batch walks the stride
// table and node slab region by region instead of hopping randomly. 11 bits
// keeps the counter array at 16KB — resident in L1 while counting.
const sortBits = 11

// sortedBatchMin is the batch size below which the bucket pass costs more
// than the locality it buys; smaller batches take the plain loop.
const sortedBatchMin = 256

// ValidateBatchSorted is ValidateBatch with a sort-by-prefix pass: a two-pass
// counting sort on (family, top address bits) produces a permutation, and
// validation runs in permuted order while results land at their original
// positions. Batches over a table larger than the cache hierarchy touch each
// slab region once instead of per route. The output is identical to
// ValidateBatch; the permutation is the one extra allocation.
//
//repro:noalloc
func (cx *CompactIndex) ValidateBatchSorted(routes []Route, dst []State) []State {
	if len(routes) < sortedBatchMin {
		//lint:ignore hotalloc small batches delegate to ValidateBatch, whose only allocation is the documented caller-amortized dst growth
		return cx.ValidateBatch(routes, dst)
	}
	if cap(dst) < len(routes) {
		//lint:ignore hotalloc dst grows only when the caller under-provisions; steady-state batches reuse it at zero allocations
		dst = make([]State, len(routes))
	} else {
		dst = dst[:len(routes)]
	}
	key := func(q Route) int32 {
		hi, _ := q.Prefix.Bits()
		k := int32(hi >> (64 - sortBits))
		if famSlot(q.Prefix.Family()) == 1 {
			k |= 1 << sortBits
		}
		return k
	}
	var starts [2 << sortBits]int32
	for _, q := range routes {
		starts[key(q)]++
	}
	sum := int32(0)
	for i := range starts {
		c := starts[i]
		starts[i] = sum
		sum += c
	}
	//lint:ignore hotalloc the permutation is the one extra allocation, per the doc comment; it is the price of the locality win
	perm := make([]int32, len(routes))
	for i, q := range routes {
		k := key(q)
		perm[starts[k]] = int32(i)
		starts[k]++
	}
	f4, f6 := &cx.fams[0], &cx.fams[1]
	entries := cx.entries
	for _, ri := range perm {
		q := routes[ri]
		switch q.Prefix.Family() {
		case prefix.IPv4:
			dst[ri] = f4.validateCompact(entries, q.Prefix, q.Origin)
		case prefix.IPv6:
			dst[ri] = f6.validateCompact(entries, q.Prefix, q.Origin)
		default:
			dst[ri] = NotFound
		}
	}
	return dst
}

// ValidateBatchParallel is ValidateBatch fanned out over a fixed pool of
// min(workers, blocks) goroutines draining route blocks from a channel — the
// same worker-pool shape as Index.ValidateBatchParallel. Workers write
// disjoint dst ranges, so the result is identical to the serial batch.
func (cx *CompactIndex) ValidateBatchParallel(routes []Route, dst []State, workers int) []State {
	if cap(dst) < len(routes) {
		dst = make([]State, len(routes))
	} else {
		dst = dst[:len(routes)]
	}
	blocks := (len(routes) + batchBlock - 1) / batchBlock
	if workers > blocks {
		workers = blocks
	}
	if workers < 2 {
		return cx.ValidateBatch(routes, dst)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for lo := range jobs {
				hi := min(lo+batchBlock, len(routes))
				cx.ValidateBatch(routes[lo:hi], dst[lo:hi])
			}
		}()
	}
	for lo := 0; lo < len(routes); lo += batchBlock {
		jobs <- lo
	}
	close(jobs)
	wg.Wait()
	return dst
}

// AppendVRPs appends the indexed VRP set to dst in per-family canonical
// prefix order and returns the extended slice — the same stream, in the same
// order, as Index.AppendVRPs over the same table. Own entries are the
// aggregate tail whose plen equals the node's key length (inherited entries
// are strictly shorter).
func (cx *CompactIndex) AppendVRPs(dst []rpki.VRP) []rpki.VRP {
	for slot := range cx.fams {
		f := &cx.fams[slot]
		if len(f.eng.Nodes) == 0 {
			continue
		}
		fam := slotFamily(slot)
		f.eng.Walk(0, func(idx int32) {
			nd := &f.eng.Nodes[idx]
			sp := nd.Val
			es := cx.entries[sp.off : sp.off+sp.n]
			start := len(es)
			for start > 0 && es[start-1].plen == nd.PLen {
				start--
			}
			if start == len(es) {
				return
			}
			p, err := prefix.Make(fam, nd.Hi, nd.Lo, nd.PLen)
			if err != nil {
				panic(err) // unreachable: node keys are valid prefixes
			}
			for _, e := range es[start:] {
				dst = append(dst, rpki.VRP{Prefix: p, MaxLength: e.maxLength, AS: e.as})
			}
		})
	}
	return dst
}
