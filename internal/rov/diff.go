package rov

import (
	"sort"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file is the structural snapshot diff: the delta between two published
// Index snapshots, computed by walking both tries in lockstep and skipping
// every subtree the two provably share. Snapshots from one LiveIndex history
// share their arena lineage (path copying clones only the touched paths), so
// the walk visits O(changed · prefix bits) nodes no matter how large the
// table is; snapshots from unrelated builds — two different caches — share
// nothing provable and pay one correct-but-linear dual walk instead. Either
// way the result is exact, which is what lets an RTR cache synthesize the
// update between any two retained serials on demand, and a multi-cache
// failover reconcile a carried table against a new cache by delta instead of
// a rebuild.

// Diff returns the delta that transforms old's table into nw's: announced
// holds the VRPs present only in nw, withdrawn the VRPs present only in old.
// Both snapshots stay untouched; the returned slices are freshly allocated
// and never alias either index.
//
// The output order is deterministic for a given pair of tables regardless of
// how either index was built: canonical prefix order (IPv4 before IPv6,
// shorter prefixes first), and within one prefix by (AS, MaxLength) — the
// same total order a sorted-set difference over the two tables produces.
//
//repro:immutable
func Diff(old, nw *Index) (announced, withdrawn []rpki.VRP) {
	if old == nw {
		return nil, nil
	}
	for slot := range old.fams {
		fo, fn := &old.fams[slot], &nw.fams[slot]
		shared := fo.eng.SharedArena(&fn.eng)
		rootPfx, err := prefix.Make(slotFamily(slot), 0, 0, 0)
		if err != nil {
			panic(err) // unreachable: slotFamily yields valid families
		}
		core.DiffWalk(&fo.eng, &fn.eng, fo.root, fn.root, rootPfx, func(ai, bi int32, p prefix.Prefix) {
			var spo, spn span
			if ai >= 0 {
				spo = fo.eng.Nodes[ai].Val
			}
			if bi >= 0 {
				spn = fn.eng.Nodes[bi].Val
			}
			if shared && spo == spn {
				// Same span cells in the shared entry slab: this node was
				// cloned for a descendant's update, its own payload is
				// untouched.
				return
			}
			eo := old.entries[spo.off : spo.off+spo.n]
			en := nw.entries[spn.off : spn.off+spn.n]
			announced = appendEntryDiff(announced, p, en, eo)
			withdrawn = appendEntryDiff(withdrawn, p, eo, en)
		})
	}
	return announced, withdrawn
}

// appendEntryDiff appends, as VRPs at p, every entry of have that is absent
// from other, keeping the appended group sorted by (AS, MaxLength) so Diff's
// output depends only on the two tables, not on either index's insertion
// history. Spans are tiny (entries of one exact prefix), so the membership
// scan is linear and the sort is a handful of swaps.
func appendEntryDiff(dst []rpki.VRP, p prefix.Prefix, have, other []entry) []rpki.VRP {
	start := len(dst)
	for _, e := range have {
		found := false
		for _, o := range other {
			if o == e {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, rpki.VRP{Prefix: p, MaxLength: e.maxLength, AS: e.as})
		}
	}
	if seg := dst[start:]; len(seg) > 1 {
		sort.Slice(seg, func(i, j int) bool {
			if seg[i].AS != seg[j].AS {
				return seg[i].AS < seg[j].AS
			}
			return seg[i].MaxLength < seg[j].MaxLength
		})
	}
	return dst
}

// DiffSince returns the delta from old — any snapshot this LiveIndex
// previously returned — to the current table. Snapshots retained across
// Apply calls share the arena, so the cost tracks the number of VRPs that
// changed in between; a snapshot predating a compaction or ResetTo falls
// back to the linear walk.
//
//repro:immutable
func (l *LiveIndex) DiffSince(old *Index) (announced, withdrawn []rpki.VRP) {
	return Diff(old, l.Snapshot())
}
