package rov

import (
	"encoding/binary"
	"testing"

	"repro/internal/prefix"
	"repro/internal/rpki"
)

// FuzzIndex drives the arena Index and the LiveIndex with a fuzzer-chosen
// op stream — announce, withdraw, query — and checks both against the
// linear Reference over the resulting table. Each op is 8 bytes:
//
//	[tag, a0, a1, a2, a3, len, mlDelta, as]
//
// tag%3 selects the op, tag bit 3 the family. The address bytes seed the
// prefix (IPv4 in the top 32 bits; IPv6 reuses them byte-swapped in the
// second quad so v6 paths diverge), len and mlDelta are clamped to the
// family's range, and as is folded into a small origin space so matches,
// covers and misses all occur.
func FuzzIndex(f *testing.F) {
	// The RFC 6811 / §2 running example: ROA (168.122.0.0/16, AS 111), the
	// legitimate announcement, the subprefix hijack by AS 666, the owner's
	// own invalid de-aggregation, and unrelated space.
	f.Add([]byte{
		0, 168, 122, 0, 0, 16, 0, 111, // announce 168.122.0.0/16-16 => AS111
		2, 168, 122, 0, 0, 16, 0, 111, // query exact, right origin: Valid
		2, 168, 122, 0, 0, 24, 0, 154, // query subprefix, wrong origin: Invalid
		2, 168, 122, 225, 0, 24, 0, 111, // owner's /24 de-aggregation: Invalid
		2, 192, 0, 2, 0, 24, 0, 154, // unrelated space: NotFound
	})
	// A maxLength ROA plus its forged-origin subprefix hijack (§4), then a
	// withdrawal of the ROA.
	f.Add([]byte{
		0, 168, 122, 0, 0, 16, 8, 111, // announce 168.122.0.0/16-24 => AS111
		2, 168, 122, 0, 0, 24, 0, 111, // forged-origin subprefix route: Valid
		1, 168, 122, 0, 0, 16, 8, 111, // withdraw the ROA
		2, 168, 122, 0, 0, 16, 0, 111, // now NotFound
	})
	// IPv6 ops (tag bit 3 set).
	f.Add([]byte{
		8, 32, 1, 13, 184, 32, 16, 200, // announce a 2001:db8-ish /32-48
		10, 32, 1, 13, 184, 48, 0, 200, // query a /48 under it
		9, 32, 1, 13, 184, 32, 16, 200, // withdraw it
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		state := map[rpki.VRP]struct{}{}
		live := NewLiveIndex(rpki.NewSet(nil))
		var queries []Route
		for len(data) >= 8 {
			op := data[:8]
			data = data[8:]
			tag := op[0]
			fam, famMax := prefix.IPv4, uint8(32)
			if tag&8 != 0 {
				fam, famMax = prefix.IPv6, 64 // keep v6 paths in the top quad range
			}
			l := op[5] % (famMax + 1)
			hi := uint64(binary.BigEndian.Uint32(op[1:5])) << 32
			if fam == prefix.IPv6 {
				// Spread fuzz entropy into the second 32 bits too.
				hi |= uint64(op[4])<<24 | uint64(op[3])<<16 | uint64(op[2])<<8 | uint64(op[1])
			}
			p, err := prefix.Make(fam, hi, 0, l)
			if err != nil {
				t.Fatal(err)
			}
			origin := rpki.ASN(op[7]) % 8
			switch tag % 3 {
			case 0: // announce
				ml := l + op[6]%(famMax-l+1)
				if ml > p.MaxLen() {
					ml = p.MaxLen()
				}
				v := rpki.VRP{Prefix: p, MaxLength: ml, AS: origin}
				live.Apply([]rpki.VRP{v}, nil)
				state[v] = struct{}{}
			case 1: // withdraw
				ml := l + op[6]%(famMax-l+1)
				if ml > p.MaxLen() {
					ml = p.MaxLen()
				}
				v := rpki.VRP{Prefix: p, MaxLength: ml, AS: origin}
				live.Apply(nil, []rpki.VRP{v})
				delete(state, v)
			case 2: // query
				queries = append(queries, Route{Prefix: p, Origin: origin})
			}
		}
		vrps := make([]rpki.VRP, 0, len(state))
		for v := range state {
			vrps = append(vrps, v)
			// Probe every table prefix with a right and a wrong origin too.
			queries = append(queries,
				Route{Prefix: v.Prefix, Origin: v.AS},
				Route{Prefix: v.Prefix, Origin: v.AS + 1})
		}
		set := rpki.NewSet(vrps)
		ix, cx, ref := NewIndex(set), NewCompactIndex(set), NewReference(set)
		if ix.Len() != set.Len() || cx.Len() != set.Len() || live.Len() != set.Len() {
			t.Fatalf("index %d / compact %d / live %d / set %d VRPs", ix.Len(), cx.Len(), live.Len(), set.Len())
		}
		for _, q := range queries {
			want := ref.Validate(q.Prefix, q.Origin)
			if got := ix.Validate(q.Prefix, q.Origin); got != want {
				t.Fatalf("Index.Validate(%s, %v) = %v, reference %v", q.Prefix, q.Origin, got, want)
			}
			if got := cx.Validate(q.Prefix, q.Origin); got != want {
				t.Fatalf("CompactIndex.Validate(%s, %v) = %v, reference %v", q.Prefix, q.Origin, got, want)
			}
			if got := live.Validate(q.Prefix, q.Origin); got != want {
				t.Fatalf("LiveIndex.Validate(%s, %v) = %v, reference %v", q.Prefix, q.Origin, got, want)
			}
		}
	})
}

// FuzzCompactIndex aims the fuzzer at the compact build itself: the same op
// encoding as FuzzIndex, but after every announce/withdraw the compact index
// is rebuilt from the current table and cross-examined against the arena
// Index — the per-delta differential — and the final table additionally goes
// through the CompactFromIndex path (build from the Index's canonical walk),
// the Reference, and an exact AppendVRPs comparison. Query ops probe both
// families at fuzzer-chosen lengths, including sub-stride ones.
func FuzzCompactIndex(f *testing.F) {
	f.Add([]byte{
		0, 168, 122, 0, 0, 16, 8, 111, // announce 168.122.0.0/16-24 => AS111
		2, 168, 122, 0, 0, 24, 0, 111, // covered subprefix, right origin
		0, 168, 122, 0, 0, 8, 0, 42, // short ancestor at another origin
		2, 168, 122, 0, 0, 4, 0, 42, // query shorter than every table prefix
		1, 168, 122, 0, 0, 16, 8, 111, // withdraw the first ROA
		2, 168, 122, 0, 0, 16, 0, 111,
	})
	f.Add([]byte{
		8, 32, 1, 13, 184, 32, 16, 200, // IPv6 announce
		10, 32, 1, 13, 184, 48, 0, 200, // IPv6 query under it
		10, 32, 1, 13, 184, 0, 0, 200, // IPv6 /0 query
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		state := map[rpki.VRP]struct{}{}
		var queries []Route
		rebuild := func() (*rpki.Set, *Index, *CompactIndex) {
			vrps := make([]rpki.VRP, 0, len(state))
			for v := range state {
				vrps = append(vrps, v)
			}
			set := rpki.NewSet(vrps)
			return set, NewIndex(set), NewCompactIndex(set)
		}
		for len(data) >= 8 {
			op := data[:8]
			data = data[8:]
			tag := op[0]
			fam, famMax := prefix.IPv4, uint8(32)
			if tag&8 != 0 {
				fam, famMax = prefix.IPv6, 64
			}
			l := op[5] % (famMax + 1)
			hi := uint64(binary.BigEndian.Uint32(op[1:5])) << 32
			if fam == prefix.IPv6 {
				hi |= uint64(op[4])<<24 | uint64(op[3])<<16 | uint64(op[2])<<8 | uint64(op[1])
			}
			p, err := prefix.Make(fam, hi, 0, l)
			if err != nil {
				t.Fatal(err)
			}
			origin := rpki.ASN(op[7]) % 8
			if tag%3 == 2 {
				queries = append(queries, Route{Prefix: p, Origin: origin})
				continue
			}
			ml := l + op[6]%(famMax-l+1)
			if ml > p.MaxLen() {
				ml = p.MaxLen()
			}
			v := rpki.VRP{Prefix: p, MaxLength: ml, AS: origin}
			if tag%3 == 0 {
				state[v] = struct{}{}
			} else {
				delete(state, v)
			}
			// Per-delta differential: the fresh compact build must answer the
			// delta's own prefix (and queries so far) exactly like the Index.
			_, ix, cx := rebuild()
			probes := append([]Route{{Prefix: p, Origin: origin}, {Prefix: p, Origin: origin + 1}}, queries...)
			for _, q := range probes {
				if got, want := cx.Validate(q.Prefix, q.Origin), ix.Validate(q.Prefix, q.Origin); got != want {
					t.Fatalf("after delta %v: CompactIndex.Validate(%s, %v) = %v, Index %v", v, q.Prefix, q.Origin, got, want)
				}
			}
		}
		set, ix, cx := rebuild()
		ref := NewReference(set)
		cfi := CompactFromIndex(ix)
		for _, v := range set.VRPs() {
			queries = append(queries,
				Route{Prefix: v.Prefix, Origin: v.AS},
				Route{Prefix: v.Prefix, Origin: v.AS + 1})
		}
		for _, q := range queries {
			want := ref.Validate(q.Prefix, q.Origin)
			if got := cx.Validate(q.Prefix, q.Origin); got != want {
				t.Fatalf("CompactIndex.Validate(%s, %v) = %v, reference %v", q.Prefix, q.Origin, got, want)
			}
			if got := cfi.Validate(q.Prefix, q.Origin); got != want {
				t.Fatalf("CompactFromIndex.Validate(%s, %v) = %v, reference %v", q.Prefix, q.Origin, got, want)
			}
		}
		got, want := cx.AppendVRPs(nil), ix.AppendVRPs(nil)
		if len(got) != len(want) {
			t.Fatalf("AppendVRPs: compact %d VRPs, index %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AppendVRPs[%d]: compact %v, index %v", i, got[i], want[i])
			}
		}
	})
}

// FuzzDiff drives a LiveIndex with a fuzzer-chosen announce/withdraw stream
// (the FuzzIndex op encoding, minus queries), snapshots the table halfway
// through, and pins Diff between the snapshot and the final table — and
// between an independent rebuild of the snapshot's table and the final
// table — bit-identical to the naive sorted-set difference. The first pair
// shares an arena lineage (the structural fast path); the rebuilt pair does
// not (the linear fallback); both must agree with the reference exactly.
func FuzzDiff(f *testing.F) {
	f.Add([]byte{
		0, 168, 122, 0, 0, 16, 0, 111, // announce 168.122.0.0/16-16 => AS111
		0, 168, 122, 0, 0, 16, 8, 111, // widen: /16-24 alongside it
		1, 168, 122, 0, 0, 16, 0, 111, // withdraw the first
		8, 32, 1, 13, 184, 32, 16, 200, // IPv6 announce
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		live := NewLiveIndex(rpki.NewSet(nil))
		nops := len(data) / 8
		var old *Index
		for i := 0; i < nops; i++ {
			if i == nops/2 {
				old = live.Snapshot()
			}
			op := data[i*8 : i*8+8]
			tag := op[0]
			fam, famMax := prefix.IPv4, uint8(32)
			if tag&8 != 0 {
				fam, famMax = prefix.IPv6, 64
			}
			l := op[5] % (famMax + 1)
			hi := uint64(binary.BigEndian.Uint32(op[1:5])) << 32
			if fam == prefix.IPv6 {
				hi |= uint64(op[4])<<24 | uint64(op[3])<<16 | uint64(op[2])<<8 | uint64(op[1])
			}
			p, err := prefix.Make(fam, hi, 0, l)
			if err != nil {
				t.Fatal(err)
			}
			ml := l + op[6]%(famMax-l+1)
			if ml > p.MaxLen() {
				ml = p.MaxLen()
			}
			v := rpki.VRP{Prefix: p, MaxLength: ml, AS: rpki.ASN(op[7]) % 8}
			if tag%2 == 0 {
				live.Apply([]rpki.VRP{v}, nil)
			} else {
				live.Apply(nil, []rpki.VRP{v})
			}
		}
		if old == nil {
			old = live.Snapshot()
		}
		nw := live.Snapshot()
		checkDiffAgainstNaive(t, old, nw)
		// Independent rebuild of the same old table: linear path, same answer.
		rebuilt := newIndexFromVRPs(old.AppendVRPs(nil))
		checkDiffAgainstNaive(t, rebuilt, nw)
	})
}
