package rov

import (
	"sync"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// This file is the serving-path validator: an instance of the core arena
// engine whose per-node payload is a {off, n} span into a parallel value
// slab of VRP entries. Building an Index is O(nodes) slab appends — two
// passes over the VRP list with no per-node slice or per-bit pointer
// allocation — and Validate walks two contiguous arrays (the node slab down
// the ancestor path, the entry slab across each span), so a router serving
// millions of origin-validation queries reads cache-adjacent memory.

// entry is one VRP payload at a trie node: the node's prefix is implied by
// its position, so only maxLength and origin AS remain.
type entry struct {
	maxLength uint8
	as        rpki.ASN
}

// span is the engine payload: the node's entries live at
// Index.entries[off : off+n]. The zero span is empty.
type span struct {
	off int32
	n   int32
}

// famIndex is one address family's trie: an engine slab and the root's slab
// index. Freshly built indexes root at node 0; LiveIndex snapshots root at
// whatever node the last path-copied update produced.
type famIndex struct {
	eng  core.Engine[span]
	root int32
}

// Index answers RFC 6811 queries in O(route prefix length). Build one with
// NewIndex; an Index is immutable and safe for concurrent readers. For a
// table that changes in place (RTR deltas), see LiveIndex.
//
// Published indexes are never written through: lock-free readers hold them
// with no synchronization, so every update path-copies into fresh cells and
// republishes (see LiveIndex.Apply). reprolint's snapshotwrite check
// enforces this outside the sanctioned construction paths in this package.
//
//repro:immutable
type Index struct {
	fams    [2]famIndex // famSlot order: IPv4, IPv6
	entries []entry     // shared value slab, addressed by node spans
	size    int
}

// famSlot maps an address family to its fams index.
func famSlot(f prefix.Family) int {
	if f == prefix.IPv4 {
		return 0
	}
	return 1
}

// slotFamily is famSlot's inverse.
func slotFamily(slot int) prefix.Family {
	if slot == 0 {
		return prefix.IPv4
	}
	return prefix.IPv6
}

// NewIndex builds a validation index over the set's VRPs. The returned
// index is published: treat it as frozen from this point on.
//
//repro:immutable
func NewIndex(s *rpki.Set) *Index {
	return newIndexFromVRPs(s.VRPs())
}

// termsScratch pools the per-build terminal-node index scratch shared by
// newIndexFromVRPs and the compact build: one int32 per VRP, dead the moment
// the build returns. LiveIndex compaction rebuilds on every garbage
// threshold crossing, so without the pool each compaction allocates (and
// immediately discards) a table-sized slice. Bounds mirror the engine slab
// pools: a few buffers, capped at paper-scale tables.
var termsScratch = core.NewBufPool[int32](4, 1<<20)

// newIndexFromVRPs builds the two-slab index in two passes: the first
// inserts every VRP's path and counts entries per terminal node, then a
// prefix-sum turns counts into slab offsets; the second drops each entry
// into its node's span. The input need not be sorted (LiveIndex compaction
// feeds walk order) and is not retained.
func newIndexFromVRPs(vrps []rpki.VRP) *Index {
	ix := &Index{size: len(vrps)}
	var perFam [2]int
	for _, v := range vrps {
		perFam[famSlot(v.Prefix.Family())]++
	}
	for slot := range ix.fams {
		// Pre-size modestly: at least one node per VRP of the family; path
		// sharing and growth appends cover the rest in O(log nodes)
		// allocations, and an absent family costs only its root node.
		ix.fams[slot].eng.Init(perFam[slot], span{}, nil)
		ix.fams[slot].root = 0
	}
	terms := termsScratch.Get(len(vrps))
	if terms == nil {
		terms = make([]int32, 0, len(vrps))
	}
	defer func() { termsScratch.Put(terms) }()
	for _, v := range vrps {
		f := &ix.fams[famSlot(v.Prefix.Family())]
		idx := f.eng.PathInsert(f.root, v.Prefix, span{})
		f.eng.Nodes[idx].Val.n++
		terms = append(terms, idx)
	}
	off := int32(0)
	for slot := range ix.fams {
		nodes := ix.fams[slot].eng.Nodes
		for j := range nodes {
			sp := &nodes[j].Val
			sp.off = off
			off += sp.n
			sp.n = 0 // reused as the fill cursor below
		}
	}
	ix.entries = make([]entry, off)
	for i, v := range vrps {
		f := &ix.fams[famSlot(v.Prefix.Family())]
		sp := &f.eng.Nodes[terms[i]].Val
		ix.entries[sp.off+sp.n] = entry{maxLength: v.MaxLength, as: v.AS}
		sp.n++
	}
	return ix
}

// Len returns the number of indexed VRPs.
func (ix *Index) Len() int { return ix.size }

// validateOn classifies (p, origin) against one family's slabs. Every entry
// on the ancestor path covers p by construction, so the state tightens from
// NotFound to Invalid at the first non-empty span and to Valid at the first
// matching entry.
//
//repro:noalloc
func validateOn(nodes []core.Node[span], root int32, entries []entry, p prefix.Prefix, origin rpki.ASN) State {
	state := NotFound
	idx := root
	for depth := uint8(0); ; depth++ {
		sp := nodes[idx].Val
		if sp.n > 0 {
			state = Invalid
			for _, e := range entries[sp.off : sp.off+sp.n] {
				if e.as == origin && p.Len() <= e.maxLength {
					return Valid
				}
			}
		}
		if depth >= p.Len() {
			return state
		}
		idx = nodes[idx].Children[p.Bit(depth)]
		if idx == core.NoChild {
			return state
		}
	}
}

// Validate classifies route (p, origin) per RFC 6811.
//
//repro:noalloc
func (ix *Index) Validate(p prefix.Prefix, origin rpki.ASN) State {
	if !p.IsValid() {
		return NotFound
	}
	f := &ix.fams[famSlot(p.Family())]
	return validateOn(f.eng.Nodes, f.root, ix.entries, p, origin)
}

// ValidateRoute is a convenience wrapper over (prefix, origin) pairs
// expressed as a VRP-shaped route.
func (ix *Index) ValidateRoute(p prefix.Prefix, origin rpki.ASN) (State, bool) {
	s := ix.Validate(p, origin)
	return s, s == Valid
}

// ValidateBatch classifies every route in one pass, writing states into dst
// (grown if needed) and returning it. The per-family slab headers are
// hoisted out of the loop, so a batch amortizes the root and bounds lookups
// that a Validate call pays per route. dst[i] corresponds to routes[i].
func (ix *Index) ValidateBatch(routes []Route, dst []State) []State {
	if cap(dst) < len(routes) {
		dst = make([]State, len(routes))
	} else {
		dst = dst[:len(routes)]
	}
	n4, r4 := ix.fams[0].eng.Nodes, ix.fams[0].root
	n6, r6 := ix.fams[1].eng.Nodes, ix.fams[1].root
	entries := ix.entries
	for i, q := range routes {
		switch q.Prefix.Family() {
		case prefix.IPv4:
			dst[i] = validateOn(n4, r4, entries, q.Prefix, q.Origin)
		case prefix.IPv6:
			dst[i] = validateOn(n6, r6, entries, q.Prefix, q.Origin)
		default:
			dst[i] = NotFound
		}
	}
	return dst
}

// batchBlock is the parallel batch work-unit size: big enough that channel
// handoff cost vanishes, small enough to level skew between workers.
const batchBlock = 512

// ValidateBatchParallel is ValidateBatch fanned out over a fixed pool of
// exactly min(workers, blocks) goroutines draining route blocks from a
// channel — the Compress worker-pool pattern. Workers write disjoint dst
// ranges, so the result is identical to the serial batch. Values < 2 (or
// batches of one block) run serially.
func (ix *Index) ValidateBatchParallel(routes []Route, dst []State, workers int) []State {
	if cap(dst) < len(routes) {
		dst = make([]State, len(routes))
	} else {
		dst = dst[:len(routes)]
	}
	blocks := (len(routes) + batchBlock - 1) / batchBlock
	if workers > blocks {
		workers = blocks
	}
	if workers < 2 {
		return ix.ValidateBatch(routes, dst)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for lo := range jobs {
				hi := min(lo+batchBlock, len(routes))
				ix.ValidateBatch(routes[lo:hi], dst[lo:hi])
			}
		}()
	}
	for lo := 0; lo < len(routes); lo += batchBlock {
		jobs <- lo
	}
	close(jobs)
	wg.Wait()
	return dst
}

// AppendVRPs appends the indexed VRP set to dst in per-family canonical
// prefix order and returns the extended slice. LiveIndex compaction
// rebuilds from it; callers can use it to export or diff a snapshot's
// table without retaining the index.
func (ix *Index) AppendVRPs(dst []rpki.VRP) []rpki.VRP {
	for slot := range ix.fams {
		f := &ix.fams[slot]
		if len(f.eng.Nodes) == 0 {
			continue
		}
		rootPfx, err := prefix.Make(slotFamily(slot), 0, 0, 0)
		if err != nil {
			panic(err) // unreachable: slotFamily yields valid families
		}
		f.eng.Walk(f.root, rootPfx, func(idx int32, p prefix.Prefix) {
			sp := f.eng.Nodes[idx].Val
			for _, e := range ix.entries[sp.off : sp.off+sp.n] {
				dst = append(dst, rpki.VRP{Prefix: p, MaxLength: e.maxLength, AS: e.as})
			}
		})
	}
	return dst
}

// VisitVRPs streams the indexed VRP set to fn in the same per-family
// canonical prefix order as AppendVRPs, without materializing a slice — the
// RTR server's full-table responses encode each VRP as it is visited. fn
// returning false stops delivery (the underlying walk still finishes, so an
// early stop saves fn calls, not traversal).
func (ix *Index) VisitVRPs(fn func(rpki.VRP) bool) {
	stopped := false
	for slot := range ix.fams {
		f := &ix.fams[slot]
		if stopped || len(f.eng.Nodes) == 0 {
			continue
		}
		rootPfx, err := prefix.Make(slotFamily(slot), 0, 0, 0)
		if err != nil {
			panic(err) // unreachable: slotFamily yields valid families
		}
		f.eng.Walk(f.root, rootPfx, func(idx int32, p prefix.Prefix) {
			if stopped {
				return
			}
			sp := f.eng.Nodes[idx].Val
			for _, e := range ix.entries[sp.off : sp.off+sp.n] {
				if !fn(rpki.VRP{Prefix: p, MaxLength: e.maxLength, AS: e.as}) {
					stopped = true
					return
				}
			}
		})
	}
}
