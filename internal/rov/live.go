package rov

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rpki"
)

// LiveIndex is a validation table that follows an RTR feed: announce and
// withdraw deltas apply in O(delta · prefix bits) — never a rebuild of the
// full set — while readers validate lock-free against immutable snapshots.
//
// The trick is that the arena is append-only and snapshots are persistent
// in the functional-data-structure sense. A published *Index is never
// mutated: Apply clones the nodes along each touched path to the slab tail
// (path copying), hangs the modified terminal span off the copies, and
// installs a new root, all in a new Index value that shares the slab
// backing arrays with its predecessor. Readers that loaded the old snapshot
// keep walking the old root over the old nodes; the atomic pointer swap
// publishes the new root with a happens-before edge over the appends.
// Superseded nodes and relocated spans become garbage in the shared slabs.
//
// When garbage outweighs live data, a background goroutine compacts:
// it rebuilds the live set into fresh slabs from an immutable snapshot —
// off the Apply path, so no delta ever pays the O(live set) rebuild in its
// latency — then replays the deltas that arrived during the rebuild and
// publishes through the same snapshot swap. Old snapshots stay intact.
//
// The published state is a view pairing two structures over the same table:
// the bit-at-a-time Index (always present — it is what deltas path-copy
// into) and, when the table has been quiescent long enough for a build to
// land, a CompactIndex serving the hot read path at a fraction of the
// latency. Deltas publish a bit-trie-only view immediately; each compaction
// (and NewLiveIndex/ResetTo, synchronously) re-derives the compact half.
// Readers take whichever the current view carries — the fallback between
// compactions is the bit trie, never a stall.
type LiveIndex struct {
	mu  sync.Mutex // serializes writers (Apply, ResetTo, compaction publish)
	cur atomic.Pointer[view]

	// Writer-side garbage accounting, guarded by mu: slab cells no longer
	// reachable from the *current* snapshot's roots.
	garbageNodes   int
	garbageEntries int

	// compacting marks an in-flight background compaction; while it is set,
	// Apply records each delta operation in the pending log so the
	// compactor can replay the updates its rebuild snapshot predates. The
	// log is one flat buffer with capacity reused across compactions, so
	// steady-state logging allocates nothing. Guarded by mu.
	compacting bool
	pending    []pendingOp
	// pendingLimit bounds the replay log (0 means maxPendingOps). When churn
	// outpaces the rebuild and the log hits the limit, Apply aborts the
	// compaction — gen++ makes the compactor discard its stale rebuild —
	// and the garbage counters, left intact, retrigger a fresh compaction
	// from a newer snapshot once the aborted one drains. Without the bound,
	// sustained churn (replayed MRT update streams) grows the log without
	// limit while the rebuild keeps falling further behind.
	pendingLimit  int
	compactAborts int
	// gen is bumped by ResetTo and by a replay-log-overflow abort; a
	// compaction that started against an older generation discards its
	// rebuild instead of resurrecting replaced (or stale) data.
	gen uint64

	// compactBuilds counts published compact snapshots (tests read it under
	// mu to assert the compact half actually cycles).
	compactBuilds int

	// compactHook, when set (tests), runs on the compactor goroutine before
	// the rebuild — a seam to stall compaction and observe Apply continuing.
	compactHook func()
}

// view is one published table version: the delta-updatable bit trie, always,
// and the compact read-path structure when one has been built for exactly
// this version (nil between a delta and the next compaction). The Index is
// embedded by value so publishing a delta costs one allocation, not two;
// Snapshot hands out interior pointers, which keep the whole view alive.
//
//repro:immutable
type view struct {
	bit     Index
	compact *CompactIndex
}

// pendingOp is one delta operation recorded for replay onto a compacted
// rebuild, in application order (an Apply's announces precede its
// withdraws, so announce+withdraw of one VRP nets to the withdraw).
type pendingOp struct {
	v        rpki.VRP
	announce bool
}

// maxPendingOps is the default replay-log bound: past it, a compaction is
// abandoned rather than chased (see LiveIndex.pendingLimit).
const maxPendingOps = 1 << 16

// NewLiveIndex builds a live table over the set's VRPs, compact snapshot
// included. Seeding with an empty set and applying the first full sync as
// one announce delta is equally valid.
func NewLiveIndex(s *rpki.Set) *LiveIndex {
	l := &LiveIndex{}
	l.cur.Store(&view{bit: *NewIndex(s), compact: NewCompactIndex(s)})
	l.compactBuilds++
	return l
}

// Snapshot returns the current immutable index. The snapshot stays valid —
// and keeps answering with its table version — for as long as the caller
// holds it, regardless of later Apply calls.
//
//repro:immutable
func (l *LiveIndex) Snapshot() *Index { return &l.cur.Load().bit }

// CompactSnapshot returns the compact index of the current table version, or
// nil when the current version has deltas the last compact build predates —
// the caller falls back to Snapshot (LiveIndex.Validate does exactly that).
// Like Snapshot, the returned value is immutable and stays valid regardless
// of later Apply calls.
//
//repro:immutable
func (l *LiveIndex) CompactSnapshot() *CompactIndex { return l.cur.Load().compact }

// Len returns the number of VRPs in the current table.
func (l *LiveIndex) Len() int { return l.Snapshot().Len() }

// Validate classifies (p, origin) against the current table, through the
// compact structure when the current version carries one.
func (l *LiveIndex) Validate(p prefix.Prefix, origin rpki.ASN) State {
	v := l.cur.Load()
	if v.compact != nil {
		return v.compact.Validate(p, origin)
	}
	return v.bit.Validate(p, origin)
}

// ValidateBatch classifies a batch against one consistent table version,
// through the compact structure when the current version carries one.
func (l *LiveIndex) ValidateBatch(routes []Route, dst []State) []State {
	v := l.cur.Load()
	if v.compact != nil {
		return v.compact.ValidateBatch(routes, dst)
	}
	return v.bit.ValidateBatch(routes, dst)
}

// Apply installs one RTR delta: announced VRPs are added, withdrawn VRPs
// removed, in that order (an RTR update may announce and withdraw the same
// VRP; withdraw wins, matching the rtr.Client table semantics). Announcing
// a VRP already in the table and withdrawing one that is absent are no-ops.
// The cost is O((len(announce)+len(withdraw)) · prefix bits) amortized; the
// set size never enters — compaction runs on a background goroutine, so
// even the delta that crosses the garbage threshold pays only its own
// path-copy work.
func (l *LiveIndex) Apply(announce, withdraw []rpki.VRP) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := &l.cur.Load().bit
	vw := &view{bit: Index{fams: old.fams, entries: old.entries, size: old.size}}
	nw := &vw.bit
	changed := false
	for _, v := range announce {
		if l.announce(nw, v) {
			changed = true
		}
	}
	for _, v := range withdraw {
		if l.withdraw(nw, v) {
			changed = true
		}
	}
	if changed {
		// The compact half of the view describes the pre-delta table; the
		// next compaction re-derives it. Readers fall back to the bit trie
		// in between. A delta that nets to nothing keeps the old view — and
		// with it any compact snapshot — intact.
		l.cur.Store(vw)
	}
	switch {
	case l.compacting:
		// A compaction is rebuilding from a snapshot that predates this
		// delta: record it (copied — the caller owns the slices) so the
		// compactor can replay it onto the rebuild before publishing.
		for _, v := range announce {
			l.pending = append(l.pending, pendingOp{v: v, announce: true})
		}
		for _, v := range withdraw {
			l.pending = append(l.pending, pendingOp{v: v})
		}
		limit := l.pendingLimit
		if limit <= 0 {
			limit = maxPendingOps
		}
		if len(l.pending) > limit {
			// Churn has outpaced the rebuild: abort and retry rather than
			// let the log grow without bound. The gen bump makes the
			// in-flight compactor discard its rebuild; the garbage counters
			// stay up, so once it drains, the next Apply starts a fresh
			// compaction from a snapshot that already includes this churn.
			l.gen++
			l.compactAborts++
			l.resetPending()
		}
	case l.needCompact(nw):
		l.compacting = true
		go l.compact(nw, l.gen, l.compactHook)
	}
}

// ResetTo atomically replaces the table with vrps (which must be free of
// duplicates — an RTR full-sync table is), rebuilding into fresh slabs.
// This is the reset-and-replace path for an RTR session the client could
// not diff against (state expired or lost across a cache restart): deltas
// no longer describe the new table, so the derived index is rebuilt once
// instead. Readers holding older snapshots are unaffected; an in-flight
// background compaction of the replaced table discards its rebuild.
func (l *LiveIndex) ResetTo(vrps []rpki.VRP) {
	nw := newIndexFromVRPs(vrps)
	cpt := newCompactFromVRPs(vrps)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gen++
	l.resetPending()
	l.garbageNodes, l.garbageEntries = 0, 0
	l.cur.Store(&view{bit: *nw, compact: cpt})
	l.compactBuilds++
}

// resetPending empties the replay log, keeping moderate capacity for reuse
// (the point of the flat buffer: steady-state logging allocates nothing)
// but releasing outsized buffers left by a churn burst. Callers hold mu.
func (l *LiveIndex) resetPending() {
	const keep = 1 << 16
	if cap(l.pending) > keep {
		l.pending = nil
	} else {
		l.pending = l.pending[:0]
	}
}

// compact rebuilds the live set of src into fresh slabs, replays the deltas
// applied while the rebuild ran, and publishes the result. It runs on its
// own goroutine and takes l.mu only for the final replay-and-swap, so Apply
// latency stays bounded by the delta size throughout. src is an immutable
// published snapshot: later Applies only append past its slab bounds.
func (l *LiveIndex) compact(src *Index, gen uint64, hook func()) {
	if hook != nil {
		hook()
	}
	rebuilt := newIndexFromVRPs(src.AppendVRPs(make([]rpki.VRP, 0, src.size)))
	l.mu.Lock()
	l.compacting = false
	if l.gen != gen {
		// ResetTo replaced the table while we rebuilt the old one, or the
		// replay log overflowed and Apply aborted us: either way the rebuild
		// is stale. Drop it; the garbage accounting (zeroed by ResetTo, left
		// intact by an abort) decides whether a fresh compaction follows.
		l.resetPending()
		l.mu.Unlock()
		return
	}
	l.garbageNodes, l.garbageEntries = 0, 0
	// Replay the net effect, not the op stream: for one VRP the last
	// recorded op decides presence (announce and withdraw are both
	// idempotent state-setters), and ops on distinct VRPs commute, so a
	// churn burst that announced and withdrew the same VRP many times
	// collapses to a single op instead of double-applying the whole window.
	quiet := len(l.pending) == 0
	if !quiet {
		last := make(map[rpki.VRP]bool, len(l.pending))
		for _, op := range l.pending {
			last[op.v] = op.announce
		}
		for v, ann := range last {
			if ann {
				l.announce(rebuilt, v)
			} else {
				l.withdraw(rebuilt, v)
			}
		}
	}
	l.resetPending()
	l.cur.Store(&view{bit: *rebuilt})
	l.mu.Unlock()
	// Still on the compactor goroutine, off every Apply path: derive the
	// compact read structure for the version just published — but only after
	// a rebuild no delta raced with. A delta during the rebuild means the
	// writer is churning, and a compact build for this version would be
	// invalidated before it lands; the bit trie serves until a compaction
	// runs quiescent.
	if quiet {
		l.publishCompact()
	}
}

// compactPublishAttempts bounds publishCompact's build-and-install loop: each
// failed attempt means a delta landed during the O(live set) build, so under
// sustained churn the compactor gives up rather than chase the writer — the
// next compaction (or quiescence) tries again. Readers lose nothing but the
// fast path; the bit trie keeps serving.
const compactPublishAttempts = 3

// publishCompact builds a CompactIndex for the currently published table
// version and installs it into the view — unless the version moved while the
// build ran, in which case it retries on the new version, a bounded number of
// times. The build runs outside mu (it is O(live set)); only the
// compare-and-install takes the writer lock, so Apply latency is unaffected.
func (l *LiveIndex) publishCompact() {
	for attempt := 0; attempt < compactPublishAttempts; attempt++ {
		v := l.cur.Load()
		if v.compact != nil {
			return
		}
		c := CompactFromIndex(&v.bit)
		l.mu.Lock()
		if l.cur.Load() == v {
			l.cur.Store(&view{bit: v.bit, compact: c})
			l.compactBuilds++
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
	}
}

// announce adds one VRP to the in-construction snapshot, reporting whether
// the table changed (false: the VRP was already present).
func (l *LiveIndex) announce(nw *Index, v rpki.VRP) bool {
	f := &nw.fams[famSlot(v.Prefix.Family())]
	e := entry{maxLength: v.MaxLength, as: v.AS}
	if idx := f.eng.PathFind(f.root, v.Prefix); idx >= 0 {
		sp := f.eng.Nodes[idx].Val
		for _, have := range nw.entries[sp.off : sp.off+sp.n] {
			if have == e {
				return false // already in the table
			}
		}
	}
	idx := l.pathCopy(f, v.Prefix)
	sp := f.eng.Nodes[idx].Val
	// Relocate the span to the slab tail with the new entry appended; the
	// old span cells become garbage (still read by older snapshots).
	off := int32(len(nw.entries))
	nw.entries = append(nw.entries, nw.entries[sp.off:sp.off+sp.n]...)
	nw.entries = append(nw.entries, e)
	f.eng.Nodes[idx].Val = span{off: off, n: sp.n + 1}
	l.garbageEntries += int(sp.n)
	nw.size++
	return true
}

// withdraw removes one VRP from the in-construction snapshot, reporting
// whether the table changed (false: the VRP was absent).
func (l *LiveIndex) withdraw(nw *Index, v rpki.VRP) bool {
	f := &nw.fams[famSlot(v.Prefix.Family())]
	idx := f.eng.PathFind(f.root, v.Prefix)
	if idx < 0 {
		return false
	}
	sp := f.eng.Nodes[idx].Val
	e := entry{maxLength: v.MaxLength, as: v.AS}
	pos := int32(-1)
	for i, have := range nw.entries[sp.off : sp.off+sp.n] {
		if have == e {
			pos = int32(i)
			break
		}
	}
	if pos < 0 {
		return false // not in the table
	}
	nidx := l.pathCopy(f, v.Prefix)
	if sp.n == 1 {
		// Span emptied. The node chain stays as structural garbage until
		// compaction prunes it.
		f.eng.Nodes[nidx].Val = span{}
	} else {
		off := int32(len(nw.entries))
		nw.entries = append(nw.entries, nw.entries[sp.off:sp.off+pos]...)
		nw.entries = append(nw.entries, nw.entries[sp.off+pos+1:sp.off+sp.n]...)
		f.eng.Nodes[nidx].Val = span{off: off, n: sp.n - 1}
	}
	l.garbageEntries += int(sp.n)
	nw.size--
	return true
}

// pathCopy clones the nodes along p's path — creating the ones that do not
// exist — onto the slab tail, reroots the family at the cloned root, and
// returns the new terminal's index. Nothing reachable from any published
// snapshot is written.
func (l *LiveIndex) pathCopy(f *famIndex, p prefix.Prefix) int32 {
	e := &f.eng
	cur := e.Clone(f.root)
	l.garbageNodes++
	f.root = cur
	for depth := uint8(0); depth < p.Len(); depth++ {
		bit := p.Bit(depth)
		var next int32
		if c := e.Nodes[cur].Children[bit]; c != core.NoChild {
			next = e.Clone(c)
			l.garbageNodes++
		} else {
			next = e.Alloc(span{})
		}
		e.Nodes[cur].Children[bit] = next
		cur = next
	}
	return cur
}

// needCompact reports whether superseded slab cells outweigh live ones.
// The floors keep small tables from compacting on every delta.
func (l *LiveIndex) needCompact(nw *Index) bool {
	totalNodes := len(nw.fams[0].eng.Nodes) + len(nw.fams[1].eng.Nodes)
	if 2*l.garbageNodes > totalNodes && totalNodes > 1024 {
		return true
	}
	return 2*l.garbageEntries > len(nw.entries) && len(nw.entries) > 1024
}
