package rpki

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/prefix"
)

// The CSV exchange format mirrors the output of the RIPE validator and of
// scan_roas: one "prefix,maxLength,asn" tuple per line, '#' comments and
// blank lines ignored. An optional header line "prefix,maxlength,asn" is
// tolerated.

// ReadCSV parses VRP tuples from r and returns a normalized Set.
func ReadCSV(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var vrps []VRP
	lineno, sawData := 0, false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawData && strings.EqualFold(line, "prefix,maxlength,asn") {
			sawData = true
			continue
		}
		sawData = true
		v, err := parseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("rpki: line %d: %w", lineno, err)
		}
		vrps = append(vrps, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rpki: reading VRP CSV: %w", err)
	}
	return NewSet(vrps), nil
}

func parseCSVLine(line string) (VRP, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 3 {
		return VRP{}, fmt.Errorf("want 3 fields, got %d in %q", len(fields), line)
	}
	p, err := prefix.Parse(strings.TrimSpace(fields[0]))
	if err != nil {
		return VRP{}, err
	}
	ml, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 10, 8)
	if err != nil {
		return VRP{}, fmt.Errorf("bad maxLength %q: %v", fields[1], err)
	}
	as, err := ParseASN(strings.TrimSpace(fields[2]))
	if err != nil {
		return VRP{}, err
	}
	v := VRP{Prefix: p, MaxLength: uint8(ml), AS: as}
	if err := v.Validate(); err != nil {
		return VRP{}, err
	}
	return v, nil
}

// WriteCSV writes the set in canonical order with a header line.
func WriteCSV(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("prefix,maxlength,asn\n"); err != nil {
		return err
	}
	for _, v := range s.VRPs() {
		if _, err := fmt.Fprintf(bw, "%s,%d,%d\n", v.Prefix, v.MaxLength, uint32(v.AS)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
