package rpki

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prefix"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestASN(t *testing.T) {
	if ASN(111).String() != "AS111" {
		t.Errorf("ASN.String = %q", ASN(111).String())
	}
	for _, s := range []string{"AS111", "as111", "111"} {
		a, err := ParseASN(s)
		if err != nil || a != 111 {
			t.Errorf("ParseASN(%q) = %v, %v", s, a, err)
		}
	}
	for _, s := range []string{"", "AS", "ASx", "4294967296", "-1"} {
		if _, err := ParseASN(s); err == nil {
			t.Errorf("ParseASN(%q) succeeded", s)
		}
	}
}

func TestROAPrefixValidate(t *testing.T) {
	ok := ROAPrefix{Prefix: mp("168.122.0.0/16"), MaxLength: 24}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid entry rejected: %v", err)
	}
	if err := (ROAPrefix{Prefix: mp("168.122.0.0/16"), MaxLength: 15}).Validate(); err == nil {
		t.Error("maxLength < len accepted")
	}
	if err := (ROAPrefix{Prefix: mp("168.122.0.0/16"), MaxLength: 33}).Validate(); err == nil {
		t.Error("maxLength > 32 accepted for IPv4")
	}
	if err := (ROAPrefix{Prefix: mp("2001:db8::/32"), MaxLength: 128}).Validate(); err != nil {
		t.Errorf("IPv6 /128 maxLength rejected: %v", err)
	}
	if err := (ROAPrefix{}).Validate(); err == nil {
		t.Error("zero entry accepted")
	}
}

func TestROAPrefixString(t *testing.T) {
	if s := (ROAPrefix{Prefix: mp("168.122.0.0/16"), MaxLength: 24}).String(); s != "168.122.0.0/16-24" {
		t.Errorf("got %q", s)
	}
	if s := (ROAPrefix{Prefix: mp("168.122.0.0/16"), MaxLength: 16}).String(); s != "168.122.0.0/16" {
		t.Errorf("got %q", s)
	}
}

func TestVRPMatchesCovers(t *testing.T) {
	v := VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111}
	// The paper's running example: the ROA (168.122.0.0/16-24, AS 111).
	cases := []struct {
		p       string
		as      ASN
		matches bool
	}{
		{"168.122.0.0/16", 111, true},
		{"168.122.225.0/24", 111, true},
		{"168.122.0.0/17", 111, true},
		{"168.122.0.0/25", 111, false}, // beyond maxLength
		{"168.122.0.0/24", 666, false}, // wrong origin
		{"168.123.0.0/24", 111, false}, // not covered
		{"168.0.0.0/8", 111, false},    // shorter than the ROA prefix
	}
	for _, c := range cases {
		if got := v.Matches(mp(c.p), c.as); got != c.matches {
			t.Errorf("Matches(%s, %v) = %v, want %v", c.p, c.as, got, c.matches)
		}
	}
	if !v.Covers(mp("168.122.0.0/25")) {
		t.Error("/25 is covered even though it exceeds maxLength")
	}
	if v.Covers(mp("168.0.0.0/8")) {
		t.Error("shorter prefix is not covered")
	}
}

func TestVRPAuthorizedCount(t *testing.T) {
	v := VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 18, AS: 111}
	if n := v.AuthorizedCount(); n != 7 {
		t.Errorf("AuthorizedCount = %d, want 7", n)
	}
	v32 := VRP{Prefix: mp("0.0.0.0/0"), MaxLength: 32, AS: 1}
	if n := v32.AuthorizedCount(); n != (1<<33)-1 {
		t.Errorf("AuthorizedCount /0-32 = %d", n)
	}
	v6 := VRP{Prefix: mp("::/0"), MaxLength: 128, AS: 1}
	if n := v6.AuthorizedCount(); n != math.MaxUint64 {
		t.Errorf("expected saturation, got %d", n)
	}
}

func TestROAExpansionAndValidate(t *testing.T) {
	r := ROA{AS: 111, Prefixes: []ROAPrefix{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 16},
		{Prefix: mp("168.122.225.0/24"), MaxLength: 24},
	}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	vrps := r.VRPs()
	if len(vrps) != 2 || vrps[0].AS != 111 || vrps[1].AS != 111 {
		t.Fatalf("VRPs = %v", vrps)
	}
	if err := (ROA{AS: 1}).Validate(); err == nil {
		t.Error("empty ROA accepted")
	}
	bad := ROA{AS: 1, Prefixes: []ROAPrefix{{Prefix: mp("10.0.0.0/8"), MaxLength: 4}}}
	if err := bad.Validate(); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestSetNormalization(t *testing.T) {
	v1 := VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 2}
	v2 := VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1}
	v3 := VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 9, AS: 1}
	s := NewSet([]VRP{v1, v2, v3, v1, v2})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", s.Len())
	}
	got := s.VRPs()
	if got[0] != v2 || got[1] != v3 || got[2] != v1 {
		t.Errorf("canonical order wrong: %v", got)
	}
	s2 := NewSet([]VRP{v3, v2, v1})
	if !s.Equal(s2) {
		t.Error("order-insensitive equality failed")
	}
	s2.Add(VRP{Prefix: mp("10.0.0.0/8"), MaxLength: 10, AS: 1})
	if s.Equal(s2) {
		t.Error("sets of different size equal")
	}
	c := s.Clone()
	c.Add(VRP{Prefix: mp("192.168.0.0/16"), MaxLength: 16, AS: 9})
	if s.Len() != 3 {
		t.Error("Clone is not independent")
	}
}

func TestByOrigin(t *testing.T) {
	s := NewSet([]VRP{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("2001:db8::/32"), MaxLength: 32, AS: 1},
		{Prefix: mp("11.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("12.0.0.0/8"), MaxLength: 8, AS: 2},
	})
	groups := s.ByOrigin()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (AS1/v4, AS1/v6, AS2/v4)", len(groups))
	}
	if groups[0].AS != 1 || groups[0].Family != prefix.IPv4 || len(groups[0].VRPs) != 2 {
		t.Errorf("group 0 wrong: %+v", groups[0])
	}
	if groups[1].AS != 1 || groups[1].Family != prefix.IPv6 || len(groups[1].VRPs) != 1 {
		t.Errorf("group 1 wrong: %+v", groups[1])
	}
	if groups[2].AS != 2 || len(groups[2].VRPs) != 1 {
		t.Errorf("group 2 wrong: %+v", groups[2])
	}
}

func TestComputeStats(t *testing.T) {
	s := NewSet([]VRP{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("10.0.0.0/16"), MaxLength: 24, AS: 1},
		{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 2},
	})
	st := s.ComputeStats()
	if st.Tuples != 3 || st.UsingMaxLength != 2 || st.Origins != 2 || st.IPv4 != 2 || st.IPv6 != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMaxPermissive(t *testing.T) {
	// 10.0.0.0/8 and 10.0.0.0/16 same AS: under max-permissive the /16 is
	// redundant. A different AS's contained prefix is not.
	s := NewSet([]VRP{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("10.0.0.0/16"), MaxLength: 16, AS: 1},
		{Prefix: mp("10.1.0.0/16"), MaxLength: 16, AS: 2},
		{Prefix: mp("2001:db8::/32"), MaxLength: 32, AS: 1},
	})
	m := s.MaxPermissive()
	if m.Len() != 3 {
		t.Fatalf("MaxPermissive Len = %d, want 3: %v", m.Len(), m.VRPs())
	}
	for _, v := range m.VRPs() {
		if v.MaxLength != v.Prefix.MaxLen() {
			t.Errorf("tuple %v not maximally permissive", v)
		}
	}
}

func TestMaxPermissiveChain(t *testing.T) {
	// A chain /8 ⊃ /12 ⊃ /16 of the same AS collapses to the /8 alone.
	s := NewSet([]VRP{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1},
		{Prefix: mp("10.16.0.0/12"), MaxLength: 12, AS: 1},
		{Prefix: mp("10.16.0.0/16"), MaxLength: 16, AS: 1},
	})
	m := s.MaxPermissive()
	if m.Len() != 1 || m.VRPs()[0].Prefix != mp("10.0.0.0/8") {
		t.Fatalf("chain did not collapse: %v", m.VRPs())
	}
}

func TestMaxPermissiveCoversSameRoutes(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) > 20 {
			seeds = seeds[:20]
		}
		var vrps []VRP
		for _, s := range seeds {
			l := uint8(8 + s%17) // /8../24
			p, err := prefix.Make(prefix.IPv4, uint64(s)<<32, 0, l)
			if err != nil {
				return false
			}
			vrps = append(vrps, VRP{Prefix: p, MaxLength: l, AS: ASN(s % 3)})
		}
		s := NewSet(vrps)
		m := s.MaxPermissive()
		// Every original authorization must still be matched.
		for _, v := range s.VRPs() {
			found := false
			for _, w := range m.VRPs() {
				if w.Matches(v.Prefix, v.AS) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return m.Len() <= s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSet([]VRP{
		{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111},
		{Prefix: mp("87.254.32.0/19"), MaxLength: 21, AS: 31283},
		{Prefix: mp("2001:db8::/32"), MaxLength: 48, AS: 64496},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", got.VRPs(), s.VRPs())
	}
}

func TestCSVParsing(t *testing.T) {
	in := `# comment
prefix,maxlength,asn
10.0.0.0/8,8,AS64496

10.0.0.0/8, 10 , 64497
`
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("parsed %d tuples, want 2", s.Len())
	}
	for _, bad := range []string{
		"10.0.0.0/8,8\n",
		"10.0.0.0/8,7,AS1\n",   // maxLength < len
		"10.0.0.0/8,33,AS1\n",  // maxLength > 32
		"10.0.0.0/8,8,ASX\n",   // bad ASN
		"10.0.0.0,8,AS1\n",     // bad prefix
		"10.0.0.0/8,8,1,extra", // wrong arity
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded", bad)
		}
	}
}

func TestVRPString(t *testing.T) {
	v := VRP{Prefix: mp("168.122.0.0/16"), MaxLength: 24, AS: 111}
	if v.String() != "168.122.0.0/16-24 => AS111" {
		t.Errorf("String = %q", v.String())
	}
}

func TestVRPCompareTotalOrder(t *testing.T) {
	f := func(a1, a2 uint32, p1, p2 uint32, l1, l2, m1, m2 uint8) bool {
		mk := func(as, p uint32, l, m uint8) VRP {
			l = l % 25
			pf, _ := prefix.Make(prefix.IPv4, uint64(p)<<32, 0, l)
			return VRP{Prefix: pf, MaxLength: l + m%(33-l), AS: ASN(as % 4)}
		}
		v, w := mk(a1, p1, l1, m1), mk(a2, p2, l2, m2)
		if v.Compare(w) != -w.Compare(v) {
			return false
		}
		return (v.Compare(w) == 0) == (v == w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
