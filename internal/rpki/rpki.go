// Package rpki defines the RPKI data model used throughout the repository:
// autonomous system numbers, Route Origin Authorizations (ROAs, RFC 6482),
// and Validated ROA Payloads (VRPs) — the (IP prefix, maxLength, origin AS)
// tuples that an RPKI local cache pushes to routers (Figure 1 of the paper)
// and that the compression algorithm of §7 operates on.
//
// A VRP (p, m, AS) authorizes AS to originate every subprefix q of p with
// p.Len() <= q.Len() <= m. A ROA groups a set of {prefix, maxLength} entries
// under one origin AS and one signature; expanding its entries yields VRPs.
package rpki

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/prefix"
)

// ASN is an autonomous system number.
type ASN uint32

// String formats the ASN in the conventional "AS64496" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// ParseASN parses "AS64496", "as64496" or a bare "64496".
func ParseASN(s string) (ASN, error) {
	if len(s) > 2 && (s[0] == 'A' || s[0] == 'a') && (s[1] == 'S' || s[1] == 's') {
		s = s[2:]
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("rpki: bad ASN %q: %v", s, err)
	}
	return ASN(n), nil
}

// ROAPrefix is one {prefix, maxLength} entry within a ROA.
type ROAPrefix struct {
	Prefix    prefix.Prefix
	MaxLength uint8
}

// Validate checks the RFC 6482 constraint len(prefix) <= maxLength <= family max.
func (rp ROAPrefix) Validate() error {
	if !rp.Prefix.IsValid() {
		return errors.New("rpki: invalid prefix in ROA entry")
	}
	if rp.MaxLength < rp.Prefix.Len() || rp.MaxLength > rp.Prefix.MaxLen() {
		return fmt.Errorf("rpki: maxLength %d out of range [%d,%d] for %s",
			rp.MaxLength, rp.Prefix.Len(), rp.Prefix.MaxLen(), rp.Prefix)
	}
	return nil
}

// UsesMaxLength reports whether the entry's maxLength exceeds the prefix
// length, i.e. whether it "uses the maxLength feature" in the paper's sense.
func (rp ROAPrefix) UsesMaxLength() bool { return rp.MaxLength > rp.Prefix.Len() }

// String renders the paper's notation, e.g. "168.122.0.0/16-24", omitting the
// "-m" suffix when maxLength equals the prefix length.
func (rp ROAPrefix) String() string {
	if rp.UsesMaxLength() {
		return rp.Prefix.String() + "-" + strconv.Itoa(int(rp.MaxLength))
	}
	return rp.Prefix.String()
}

// ROA is a Route Origin Authorization: a set of prefix entries authorized to
// one origin AS. (The cryptographic envelope lives in package rpkix.)
type ROA struct {
	AS       ASN
	Prefixes []ROAPrefix
}

// Validate checks every entry of the ROA.
func (r ROA) Validate() error {
	if len(r.Prefixes) == 0 {
		return errors.New("rpki: ROA with no prefixes")
	}
	for _, rp := range r.Prefixes {
		if err := rp.Validate(); err != nil {
			return fmt.Errorf("%w (in ROA for %s)", err, r.AS)
		}
	}
	return nil
}

// VRPs expands the ROA into its validated payload tuples.
func (r ROA) VRPs() []VRP {
	out := make([]VRP, 0, len(r.Prefixes))
	for _, rp := range r.Prefixes {
		out = append(out, VRP{Prefix: rp.Prefix, MaxLength: rp.MaxLength, AS: r.AS})
	}
	return out
}

// VRP is a Validated ROA Payload: the (IP prefix, maxLength, origin AS) tuple
// of RFC 6811 / RFC 6810. VRP is comparable and may be used as a map key.
type VRP struct {
	Prefix    prefix.Prefix
	MaxLength uint8
	AS        ASN
}

// Validate checks the maxLength range constraint.
func (v VRP) Validate() error {
	return ROAPrefix{Prefix: v.Prefix, MaxLength: v.MaxLength}.Validate()
}

// UsesMaxLength reports whether maxLength exceeds the prefix length.
func (v VRP) UsesMaxLength() bool { return v.MaxLength > v.Prefix.Len() }

// Covers reports whether the VRP covers route announcement (p, as) in the
// RFC 6811 sense: v.Prefix contains p (regardless of origin or maxLength).
func (v VRP) Covers(p prefix.Prefix) bool { return v.Prefix.Contains(p) }

// Matches reports whether the VRP authorizes origin as to announce p:
// the prefix is covered, its length does not exceed maxLength, and the
// origin matches.
func (v VRP) Matches(p prefix.Prefix, as ASN) bool {
	return v.AS == as && p.Len() <= v.MaxLength && v.Prefix.Contains(p)
}

// AuthorizedCount returns the number of distinct (prefix, AS) routes this VRP
// authorizes, saturating at the uint64 maximum.
func (v VRP) AuthorizedCount() uint64 { return v.Prefix.NumSubprefixesUpTo(v.MaxLength) }

// String renders "168.122.0.0/16-24 => AS111".
func (v VRP) String() string {
	return ROAPrefix{Prefix: v.Prefix, MaxLength: v.MaxLength}.String() + " => " + v.AS.String()
}

// Compare orders VRPs by AS, then prefix (canonical order), then maxLength.
func (v VRP) Compare(w VRP) int {
	switch {
	case v.AS != w.AS:
		if v.AS < w.AS {
			return -1
		}
		return 1
	}
	if c := v.Prefix.Compare(w.Prefix); c != 0 {
		return c
	}
	switch {
	case v.MaxLength < w.MaxLength:
		return -1
	case v.MaxLength > w.MaxLength:
		return 1
	}
	return 0
}

// Set is a normalized collection of VRPs: sorted, deduplicated. The zero
// value is an empty set ready to use.
type Set struct {
	vrps []VRP
}

// NewSet builds a normalized Set from the given tuples. The input slice is
// not retained.
func NewSet(vrps []VRP) *Set {
	s := &Set{vrps: append([]VRP(nil), vrps...)}
	s.normalize()
	return s
}

// debugSortedRuns enables an O(n) per-run order assertion inside
// SetFromSortedRuns. It is switched on by the package tests (and can be
// forced via the RPKI_DEBUG environment variable) to catch callers handing
// over runs that are not actually in canonical order.
var debugSortedRuns = os.Getenv("RPKI_DEBUG") != ""

// SetFromSortedRuns builds a normalized Set from runs of VRPs that are each
// already in canonical order (see VRP.Compare). It is the merge-based
// counterpart of NewSet for producers — like the per-trie tuple extraction
// of the compression pipeline — whose output is born sorted: instead of
// re-sorting the concatenation (O(n log n)) it concatenates when the runs
// are globally ordered end-to-end (the common case: per-(AS, family) runs
// emitted in canonical group order), falling back to a k-way heap merge when
// they are not. Exact duplicates are dropped either way. The input slices
// are not retained.
//
// Runs that are internally unsorted violate the contract and yield an
// unspecified (possibly unnormalized) Set; build with RPKI_DEBUG=1 or run
// the tests to assert the contract.
func SetFromSortedRuns(runs [][]VRP) *Set {
	total := 0
	ordered := true
	var last VRP
	haveLast := false
	for _, r := range runs {
		if debugSortedRuns {
			for i := 1; i < len(r); i++ {
				if r[i-1].Compare(r[i]) > 0 {
					panic(fmt.Sprintf("rpki: SetFromSortedRuns run out of order: %s > %s", r[i-1], r[i]))
				}
			}
		}
		total += len(r)
		if len(r) == 0 {
			continue
		}
		if haveLast && last.Compare(r[0]) > 0 {
			ordered = false
		}
		last, haveLast = r[len(r)-1], true
	}
	out := make([]VRP, 0, total)
	if ordered {
		for _, r := range runs {
			for _, v := range r {
				if n := len(out); n > 0 && out[n-1] == v {
					continue
				}
				out = append(out, v)
			}
		}
		return &Set{vrps: out}
	}
	return &Set{vrps: mergeRuns(runs, out)}
}

// mergeRuns k-way-merges individually sorted runs into out (dedup inline)
// using a min-heap of run heads keyed by their next VRP.
func mergeRuns(runs [][]VRP, out []VRP) []VRP {
	heads := make([][]VRP, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			heads = append(heads, r)
		}
	}
	// Build the heap: less = first VRP of each remaining run.
	less := func(a, b []VRP) bool { return a[0].Compare(b[0]) < 0 }
	for i := len(heads)/2 - 1; i >= 0; i-- {
		siftDown(heads, i, less)
	}
	for len(heads) > 0 {
		v := heads[0][0]
		if n := len(out); n == 0 || out[n-1] != v {
			out = append(out, v)
		}
		if rest := heads[0][1:]; len(rest) > 0 {
			heads[0] = rest
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		siftDown(heads, 0, less)
	}
	return out
}

func siftDown(h [][]VRP, i int, less func(a, b []VRP) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && less(h[l], h[m]) {
			m = l
		}
		if r < len(h) && less(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// SetFromROAs expands a slice of ROAs into a normalized Set.
func SetFromROAs(roas []ROA) *Set {
	var all []VRP
	for _, r := range roas {
		all = append(all, r.VRPs()...)
	}
	s := &Set{vrps: all}
	s.normalize()
	return s
}

func (s *Set) normalize() {
	sort.Slice(s.vrps, func(i, j int) bool { return s.vrps[i].Compare(s.vrps[j]) < 0 })
	out := s.vrps[:0]
	for i, v := range s.vrps {
		if i == 0 || v != s.vrps[i-1] {
			out = append(out, v)
		}
	}
	s.vrps = out
}

// Len returns the number of distinct tuples — the "# PDUs" quantity of
// Table 1.
func (s *Set) Len() int { return len(s.vrps) }

// VRPs returns the tuples in canonical order. The returned slice is shared;
// callers must not modify it.
func (s *Set) VRPs() []VRP { return s.vrps }

// Add inserts tuples and re-normalizes.
func (s *Set) Add(vrps ...VRP) {
	s.vrps = append(s.vrps, vrps...)
	s.normalize()
}

// Equal reports whether the two sets contain exactly the same tuples
// (syntactic equality; for semantic route-set equality see package core).
func (s *Set) Equal(t *Set) bool {
	if len(s.vrps) != len(t.vrps) {
		return false
	}
	for i := range s.vrps {
		if s.vrps[i] != t.vrps[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{vrps: append([]VRP(nil), s.vrps...)}
}

// ByOrigin partitions the set per (AS, family); the paper's algorithm builds
// one trie per AS per family. Order of groups follows canonical VRP order.
func (s *Set) ByOrigin() []OriginGroup {
	var out []OriginGroup
	for i := 0; i < len(s.vrps); {
		as, fam := s.vrps[i].AS, s.vrps[i].Prefix.Family()
		j := i
		for j < len(s.vrps) && s.vrps[j].AS == as && s.vrps[j].Prefix.Family() == fam {
			j++
		}
		out = append(out, OriginGroup{AS: as, Family: fam, VRPs: s.vrps[i:j]})
		i = j
	}
	return out
}

// OriginGroup is the slice of tuples for one (origin AS, address family).
type OriginGroup struct {
	AS     ASN
	Family prefix.Family
	VRPs   []VRP
}

// Stats summarizes a set the way §6 and §8 of the paper do.
type Stats struct {
	Tuples           int // total (prefix, maxLength, AS) tuples
	UsingMaxLength   int // tuples with maxLength > prefix length (§6: "12%")
	Origins          int // distinct origin ASes
	IPv4, IPv6       int // tuples per family
	AuthorizedRoutes uint64
}

// ComputeStats scans the set once and returns its summary.
func (s *Set) ComputeStats() Stats {
	var st Stats
	st.Tuples = len(s.vrps)
	seen := make(map[ASN]struct{})
	for _, v := range s.vrps {
		if v.UsesMaxLength() {
			st.UsingMaxLength++
		}
		if v.Prefix.Family() == prefix.IPv4 {
			st.IPv4++
		} else {
			st.IPv6++
		}
		seen[v.AS] = struct{}{}
		n := v.AuthorizedCount()
		if st.AuthorizedRoutes+n < st.AuthorizedRoutes { // saturate
			st.AuthorizedRoutes = ^uint64(0)
		} else {
			st.AuthorizedRoutes += n
		}
	}
	st.Origins = len(seen)
	return st
}

// MaxPermissive returns the maximally-permissive variant of the set (§6):
// every tuple's maxLength raised to the family maximum (/32 or /128), then
// re-normalized. The result bounds the compression achievable by maxLength
// and is, by construction, maximally vulnerable to forged-origin subprefix
// hijacks.
func (s *Set) MaxPermissive() *Set {
	out := make([]VRP, 0, len(s.vrps))
	for _, v := range s.vrps {
		v.MaxLength = v.Prefix.MaxLen()
		out = append(out, v)
	}
	t := &Set{vrps: out}
	t.normalize()
	// Drop tuples whose prefix is contained in another tuple of the same AS
	// with the same (maximal) maxLength: they authorize nothing extra. This
	// mirrors the paper's lower-bound count, which counts the prefixes that
	// "would still need to be included".
	t.vrps = dropContained(t.vrps)
	return t
}

// dropContained removes tuples contained in an earlier same-AS tuple whose
// maxLength already covers everything the contained tuple authorizes.
// Input must be in canonical order.
func dropContained(vrps []VRP) []VRP {
	out := vrps[:0]
	var stack []VRP
	for _, v := range vrps {
		// Pop ancestors that cannot contain v (different AS/family or not a
		// containing prefix). Canonical order guarantees ancestors precede
		// descendants.
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.AS == v.AS && top.Prefix.Contains(v.Prefix) {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.MaxLength >= v.MaxLength {
				continue // fully subsumed
			}
		}
		out = append(out, v)
		stack = append(stack, v)
	}
	return out
}
