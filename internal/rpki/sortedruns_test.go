package rpki

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/prefix"
)

// randomVRPs generates n random IPv4 VRPs over a handful of ASes, with
// duplicates likely.
func randomVRPs(rng *rand.Rand, n int) []VRP {
	out := make([]VRP, 0, n)
	for i := 0; i < n; i++ {
		l := uint8(4 + rng.Intn(20))
		p, err := prefix.Make(prefix.IPv4, rng.Uint64()&0xff00000000000000, 0, l)
		if err != nil {
			panic(err)
		}
		ml := l + uint8(rng.Intn(3))
		if ml > 32 {
			ml = 32
		}
		out = append(out, VRP{Prefix: p, MaxLength: ml, AS: ASN(rng.Intn(4))})
	}
	return out
}

// TestSetFromSortedRunsMatchesNewSet is the differential test pinning the
// merge-based constructor against the sort-based NewSet: for any collection
// of individually sorted runs, SetFromSortedRuns must equal NewSet of the
// concatenation — on both the globally-ordered concatenation path and the
// k-way merge fallback.
func TestSetFromSortedRunsMatchesNewSet(t *testing.T) {
	old := debugSortedRuns
	debugSortedRuns = true
	defer func() { debugSortedRuns = old }()

	rng := rand.New(rand.NewSource(7))
	sortRun := func(r []VRP) {
		sort.Slice(r, func(i, j int) bool { return r[i].Compare(r[j]) < 0 })
	}
	for trial := 0; trial < 200; trial++ {
		vrps := randomVRPs(rng, rng.Intn(120))
		k := 1 + rng.Intn(6)
		var runs [][]VRP
		if trial%2 == 0 {
			// Globally ordered runs: sort the whole list, split at random
			// boundaries (duplicates may straddle a boundary).
			sorted := append([]VRP(nil), vrps...)
			sortRun(sorted)
			for len(sorted) > 0 {
				cut := 1 + rng.Intn(len(sorted))
				runs = append(runs, sorted[:cut])
				sorted = sorted[cut:]
			}
			if rng.Intn(3) == 0 {
				runs = append(runs, nil) // empty run is legal
			}
		} else {
			// Unordered runs: deal VRPs into k buckets, sort each — the
			// concatenation is not globally ordered, forcing the merge path.
			buckets := make([][]VRP, k)
			for _, v := range vrps {
				b := rng.Intn(k)
				buckets[b] = append(buckets[b], v)
			}
			for _, b := range buckets {
				sortRun(b)
				runs = append(runs, b)
			}
		}
		var all []VRP
		for _, r := range runs {
			all = append(all, r...)
		}
		want := NewSet(all)
		got := SetFromSortedRuns(runs)
		if !got.Equal(want) {
			t.Fatalf("trial %d: SetFromSortedRuns diverged from NewSet\ngot:  %v\nwant: %v",
				trial, got.VRPs(), want.VRPs())
		}
	}
}

func TestSetFromSortedRunsEmpty(t *testing.T) {
	if s := SetFromSortedRuns(nil); s.Len() != 0 {
		t.Fatalf("nil runs -> %d tuples", s.Len())
	}
	if s := SetFromSortedRuns([][]VRP{nil, {}, nil}); s.Len() != 0 {
		t.Fatalf("empty runs -> %d tuples", s.Len())
	}
}

func TestSetFromSortedRunsDebugAssertion(t *testing.T) {
	old := debugSortedRuns
	debugSortedRuns = true
	defer func() { debugSortedRuns = old }()
	bad := [][]VRP{{
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 2},
		{Prefix: mp("10.0.0.0/8"), MaxLength: 8, AS: 1}, // out of order
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("debug assertion did not fire on an unsorted run")
		}
	}()
	SetFromSortedRuns(bad)
}
